(* Chapter 5 experiments: Multi-Ring Paxos scalability and the Delta/M/lambda
   parameter studies. *)

type Simnet.payload += Pkt

let msg = 8192

(* --- Fig 5.1: In-memory vs Recoverable Ring Paxos --------------------------- *)

let fig5_1 () =
  Util.header "Fig 5.1 - In-memory vs Recoverable Ring Paxos: latency vs throughput";
  Printf.printf "%-12s %12s %12s %10s %10s\n" "mode" "offered" "thr(Mbps)" "lat(ms)"
    "coordCPU%";
  List.iter
    (fun (name, durability) ->
      List.iter
        (fun offered ->
          let engine, net = Util.fresh () in
          let rec_ = Abcast.Recorder.create engine in
          let cfg = { Ringpaxos.Mring.default_config with durability } in
          let mr =
            Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:1
              ~learner_parts:(fun _ -> [ 0 ])
              ~deliver:(fun ~learner:_ ~inst:_ v ->
                Option.iter (Abcast.Recorder.value rec_) v)
          in
          let stop =
            Abcast.Loadgen.constant net ~rate_mbps:offered ~size:msg (fun sz ->
                ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz Pkt);
                true)
          in
          Sim.Engine.run engine ~until:2.0;
          stop ();
          let cpu =
            Util.cpu_pct
              (Simnet.cpu_busy (Simnet.proc_node (Ringpaxos.Mring.coordinator_proc mr)))
              ~from:0.7 ~till:2.0
          in
          let thr = Abcast.Recorder.mbps rec_ ~from:0.7 ~till:2.0 in
          let lat = Abcast.Recorder.lat_trimmed_ms rec_ in
          Printf.printf "%-12s %12.0f %12.1f %10.2f %10.1f\n" name offered thr lat cpu;
          Util.snap
            (Printf.sprintf "fig5.1/%s/%.0fMbps" name offered)
            ~mbps:thr ~lat_mean:lat ~cpu_pct:cpu
            ~counters:(Ringpaxos.Mring.counters mr))
        [ 100.0; 200.0; 300.0; 400.0; 500.0; 700.0; 900.0 ])
    [ ("in-memory", Ringpaxos.Mring.Memory); ("recoverable", Ringpaxos.Mring.Async_disk) ]

(* --- Fig 5.2: one ring, many partitions — no scaling ------------------------- *)

let fig5_2 () =
  Util.header "Fig 5.2 - partitioned dummy service on ONE Ring Paxos instance";
  Printf.printf "%-12s %14s\n" "partitions" "total(Mbps)";
  List.iter
    (fun parts ->
      let engine, net = Util.fresh () in
      let rec_ = Abcast.Recorder.create engine in
      let cfg = { Ringpaxos.Mring.default_config with partitions = parts } in
      let mr =
        Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:parts
          ~learner_parts:(fun l -> [ l ])
          ~deliver:(fun ~learner:_ ~inst:_ v -> Option.iter (Abcast.Recorder.value rec_) v)
      in
      let turn = ref 0 in
      let stop =
        Abcast.Loadgen.constant net ~rate_mbps:1500.0 ~size:msg (fun sz ->
            incr turn;
            ignore
              (Ringpaxos.Mring.submit mr ~proposer:(!turn mod 2) ~parts:[ !turn mod parts ]
                 ~size:sz Pkt);
            true)
      in
      Sim.Engine.run engine ~until:2.0;
      stop ();
      (* Aggregate service throughput = sum over partitions (each delivery
         callback above counts once per owning learner). *)
      let thr = Abcast.Recorder.mbps rec_ ~from:0.7 ~till:2.0 in
      Printf.printf "%-12d %14.1f\n" parts thr;
      Util.snap (Printf.sprintf "fig5.2/%dparts" parts) ~mbps:thr
        ~counters:(Ringpaxos.Mring.counters mr))
    [ 1; 2; 4; 8 ]

(* --- Fig 5.4/5.5: Multi-Ring Paxos scalability -------------------------------- *)

let run_multiring ?(durability = Ringpaxos.Mring.Memory) ~n_rings ~subs_all ~duration () =
  let engine, net = Util.fresh () in
  let rec_ = Abcast.Recorder.create engine in
  let n_learners = if subs_all then 1 else n_rings in
  let subs = if subs_all then fun _ -> List.init n_rings Fun.id else fun l -> [ l ] in
  let cfg =
    { Multiring.default_config with
      n_rings;
      lambda = 16_000.0;
      ring = { Ringpaxos.Mring.default_config with durability } }
  in
  let mr =
    Multiring.create net cfg ~n_learners ~subs ~proposers_per_ring:1
      ~deliver:(fun ~learner:_ ~group:_ it -> Abcast.Recorder.item rec_ it)
  in
  let stop =
    Abcast.Loadgen.constant net
      ~rate_mbps:(1000.0 *. float_of_int n_rings)
      ~size:msg
      (fun sz ->
        for g = 0 to n_rings - 1 do
          ignore (Multiring.multicast mr ~group:g ~proposer:0 ~size:sz Pkt)
        done;
        true)
  in
  Sim.Engine.run engine ~until:duration;
  stop ();
  ( Abcast.Recorder.mbps rec_ ~from:(duration /. 3.0) ~till:duration,
    Abcast.Recorder.lat_trimmed_ms rec_ )

let fig5_4 () =
  Util.header "Fig 5.4 - Multi-Ring Paxos scalability (one group per learner)";
  Printf.printf "%-22s %8s %14s %10s\n" "system" "rings" "total(Mbps)" "lat(ms)";
  List.iter
    (fun n ->
      let thr, lat = run_multiring ~n_rings:n ~subs_all:false ~duration:1.0 () in
      Printf.printf "%-22s %8d %14.1f %10.2f\n" "RAM Multi-Ring" n thr lat;
      Util.snap (Printf.sprintf "fig5.4/ram/%drings" n) ~mbps:thr ~lat_mean:lat)
    [ 1; 2; 4; 8 ];
  List.iter
    (fun n ->
      let thr, lat =
        run_multiring ~durability:Ringpaxos.Mring.Async_disk ~n_rings:n ~subs_all:false
          ~duration:1.5 ()
      in
      Printf.printf "%-22s %8d %14.1f %10.2f\n" "DISK Multi-Ring" n thr lat;
      Util.snap (Printf.sprintf "fig5.4/disk/%drings" n) ~mbps:thr ~lat_mean:lat)
    [ 1; 2; 4; 8 ];
  (* References: single Ring Paxos, LCR, Spread do not scale with groups. *)
  List.iter
    (fun (name, proto) ->
      let thr, _, lat = Fig3.run_proto proto 4 in
      Printf.printf "%-22s %8s %14.1f %10.2f\n" name "-" thr lat;
      Util.snap (Printf.sprintf "fig5.4/%s" name) ~mbps:thr ~lat_mean:lat)
    [ ("single M-Ring Paxos", Fig3.MRing); ("LCR", Fig3.Lcr); ("Spread", Fig3.Spread) ]

let fig5_5 () =
  Util.header "Fig 5.5 - learner subscribing to ALL groups";
  Printf.printf "%-22s %8s %14s %10s\n" "system" "rings" "learner(Mbps)" "lat(ms)";
  List.iter
    (fun (name, durability) ->
      List.iter
        (fun n ->
          let thr, lat =
            run_multiring ~durability ~n_rings:n ~subs_all:true ~duration:4.0 ()
          in
          Printf.printf "%-22s %8d %14.1f %10.2f\n" name n thr lat;
          Util.snap (Printf.sprintf "fig5.5/%s/%drings" name n) ~mbps:thr ~lat_mean:lat)
        [ 1; 2; 4 ])
    [ ("RAM Multi-Ring", Ringpaxos.Mring.Memory);
      ("DISK Multi-Ring", Ringpaxos.Mring.Async_disk) ]

(* --- ablation: gamma groups mapped onto delta rings (§5.2.4) ---------------- *)

let fig5_5b () =
  Util.header
    "Ablation (5.2.4) - 8 groups on fewer rings: single-group learner's waste";
  Printf.printf "%-8s %12s %14s %14s\n" "rings" "thr(Mbps)" "useful items" "foreign items";
  List.iter
    (fun n_rings ->
      let engine, net = Util.fresh () in
      let rec_ = Abcast.Recorder.create engine in
      let cfg =
        { Multiring.default_config with n_rings; n_groups = 8; lambda = 16_000.0 }
      in
      (* Learner 0 subscribes to group 0 only; a second learner takes all
         groups so every ring carries traffic. *)
      let subs = function 0 -> [ 0 ] | _ -> List.init 8 Fun.id in
      let mr =
        Multiring.create net cfg ~n_learners:2 ~subs ~proposers_per_ring:1
          ~deliver:(fun ~learner ~group:_ it ->
            if learner = 0 then Abcast.Recorder.item rec_ it)
      in
      let turn = ref 0 in
      let stop =
        Abcast.Loadgen.constant net ~rate_mbps:800.0 ~size:msg (fun sz ->
            incr turn;
            ignore (Multiring.multicast mr ~group:(!turn mod 8) ~proposer:0 ~size:sz Pkt);
            true)
      in
      Sim.Engine.run engine ~until:1.0;
      stop ();
      let thr = Abcast.Recorder.mbps rec_ ~from:0.4 ~till:1.0 in
      Printf.printf "%-8d %12.1f %14d %14d\n" n_rings thr (Abcast.Recorder.items rec_)
        (Multiring.foreign_items mr 0);
      Util.snap (Printf.sprintf "fig5.5b/%drings" n_rings) ~mbps:thr
        ~counters:
          [ ("useful_items", Abcast.Recorder.items rec_);
            ("foreign_items", Multiring.foreign_items mr 0) ])
    [ 8; 4; 2; 1 ]

(* --- Figs 5.6/5.7: Delta and M ------------------------------------------------ *)

let delta_m_run ~delta ~m ~offered =
  let engine, net = Util.fresh () in
  let rec_ = Abcast.Recorder.create engine in
  let cfg = { Multiring.default_config with n_rings = 2; delta; m; lambda = 16_000.0 } in
  let mr =
    Multiring.create net cfg ~n_learners:1
      ~subs:(fun _ -> [ 0; 1 ])
      ~proposers_per_ring:1
      ~deliver:(fun ~learner:_ ~group:_ it -> Abcast.Recorder.item rec_ it)
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:offered ~size:msg (fun sz ->
        ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
        ignore (Multiring.multicast mr ~group:1 ~proposer:0 ~size:sz Pkt);
        true)
  in
  Sim.Engine.run engine ~until:1.5;
  stop ();
  let coord_cpu =
    Util.cpu_pct
      (Simnet.cpu_busy (Simnet.proc_node (Ringpaxos.Mring.coordinator_proc (Multiring.ring mr 0))))
      ~from:0.5 ~till:1.5
  in
  ( Abcast.Recorder.mbps rec_ ~from:0.5 ~till:1.5,
    Abcast.Recorder.lat_trimmed_ms rec_,
    coord_cpu )

let fig5_6 () =
  Util.header "Fig 5.6 - impact of Delta (2 rings, learner on both)";
  Printf.printf "%-10s %10s %12s %10s %10s\n" "Delta" "offered" "thr(Mbps)" "lat(ms)"
    "coordCPU%";
  List.iter
    (fun delta ->
      List.iter
        (fun offered ->
          let thr, lat, cpu = delta_m_run ~delta ~m:1 ~offered in
          Printf.printf "%-10.3f %10.0f %12.1f %10.2f %10.1f\n" (delta *. 1e3) offered thr
            lat cpu;
          Util.snap
            (Printf.sprintf "fig5.6/delta%.3fms/%.0fMbps" (delta *. 1e3) offered)
            ~mbps:thr ~lat_mean:lat ~cpu_pct:cpu)
        [ 100.0; 400.0; 800.0 ])
    [ 1.0e-3; 1.0e-2; 1.0e-1 ]

let fig5_7 () =
  Util.header "Fig 5.7 - impact of M (2 rings, learner on both)";
  Printf.printf "%-6s %10s %12s %10s %10s\n" "M" "offered" "thr(Mbps)" "lat(ms)" "lrnCPU%";
  List.iter
    (fun m ->
      List.iter
        (fun offered ->
          let thr, lat, cpu = delta_m_run ~delta:1.0e-3 ~m ~offered in
          Printf.printf "%-6d %10.0f %12.1f %10.2f %10.1f\n" m offered thr lat cpu;
          Util.snap
            (Printf.sprintf "fig5.7/m%d/%.0fMbps" m offered)
            ~mbps:thr ~lat_mean:lat ~cpu_pct:cpu)
        [ 100.0; 400.0; 800.0 ])
    [ 1; 10; 100 ]

(* --- Figs 5.8-5.10: lambda timelines ------------------------------------------ *)

let lambda_timeline ~fig ~name ~lambda ~load =
  let engine, net = Util.fresh () in
  let lat = Sim.Stats.Latency.create () in
  let recent = ref [] in
  let cfg = { Multiring.default_config with n_rings = 2; lambda } in
  let mr =
    Multiring.create net cfg ~n_learners:1
      ~subs:(fun _ -> [ 0; 1 ])
      ~proposers_per_ring:1
      ~deliver:(fun ~learner:_ ~group:_ (it : Paxos.Value.item) ->
        let l = (Sim.Engine.now engine -. it.born) *. 1e3 in
        Sim.Stats.Latency.add lat l;
        recent := (Sim.Engine.now engine, l) :: !recent)
  in
  let stop = load net mr in
  Sim.Engine.run engine ~until:6.0;
  stop ();
  Printf.printf "  lambda=%s: " name;
  (* average latency per 2s window *)
  List.iter
    (fun w ->
      let xs = List.filter (fun (t, _) -> t >= w -. 1.2 && t < w) !recent in
      let avg =
        if xs = [] then 0.0
        else List.fold_left (fun a (_, l) -> a +. l) 0.0 xs /. float_of_int (List.length xs)
      in
      Printf.printf "t<%.0fs:%6.1fms " w avg;
      Util.snap
        (Printf.sprintf "%s/%s/t%.1f" fig name w)
        ~lat_mean:avg
        ~counters:[ ("buffered", Multiring.learner_buffer mr 0) ])
    [ 1.2; 2.4; 3.6; 4.8; 6.0 ];
  Printf.printf " halted=%b buffered=%d\n" (Multiring.learner_halted mr 0)
    (Multiring.learner_buffer mr 0)

let staircase_equal net mr =
  (* Both rings ramp 100 -> 400 Mbps in steps (Fig 5.8's staircase). *)
  Abcast.Loadgen.staircase net
    ~steps:[ (0.0, 100.0); (1.5, 200.0); (3.0, 300.0); (4.5, 400.0) ]
    ~size:msg
    (fun sz ->
      ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
      ignore (Multiring.multicast mr ~group:1 ~proposer:0 ~size:sz Pkt);
      true)

let staircase_skewed net mr =
  (* Ring 0 at twice ring 1's rate (Fig 5.9). *)
  Abcast.Loadgen.staircase net
    ~steps:[ (0.0, 100.0); (1.5, 200.0); (3.0, 300.0); (4.5, 400.0) ]
    ~size:msg
    (fun sz ->
      ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
      ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
      ignore (Multiring.multicast mr ~group:1 ~proposer:0 ~size:sz Pkt);
      true)

let oscillating net mr =
  (* Rates oscillate with a 2x average skew (Fig 5.10). *)
  Abcast.Loadgen.oscillating net ~period:1.0 ~low_mbps:100.0 ~high_mbps:500.0 ~size:msg
    (fun sz ->
      ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
      ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
      ignore (Multiring.multicast mr ~group:1 ~proposer:0 ~size:sz Pkt);
      true)

(* Message rate of one 8 KB stream at R Mbps is R*1e6/65536 msg/s. *)
let lam rate_mbps = rate_mbps *. 1e6 /. float_of_int (msg * 8)

let fig5_8 () =
  Util.header "Fig 5.8 - impact of lambda, equal constant rates (staircase to 400 Mbps)";
  lambda_timeline ~fig:"fig5.8" ~name:"0 (no skips)" ~lambda:0.0 ~load:staircase_equal;
  lambda_timeline ~fig:"fig5.8" ~name:"1000 msg/s" ~lambda:1000.0 ~load:staircase_equal;
  lambda_timeline ~fig:"fig5.8" ~name:"5000 msg/s" ~lambda:5000.0 ~load:staircase_equal;
  Printf.printf "  (reference: 400 Mbps of 8 KB messages = %.0f msg/s)\n" (lam 400.0)

let fig5_9 () =
  Util.header "Fig 5.9 - impact of lambda, ring 0 at twice ring 1's rate";
  lambda_timeline ~fig:"fig5.9" ~name:"1000 msg/s" ~lambda:1000.0 ~load:staircase_skewed;
  lambda_timeline ~fig:"fig5.9" ~name:"5000 msg/s" ~lambda:5000.0 ~load:staircase_skewed;
  lambda_timeline ~fig:"fig5.9" ~name:"9000 msg/s" ~lambda:9000.0 ~load:staircase_skewed

let fig5_10 () =
  Util.header "Fig 5.10 - impact of lambda, oscillating rates";
  lambda_timeline ~fig:"fig5.10" ~name:"5000 msg/s" ~lambda:5000.0 ~load:oscillating;
  lambda_timeline ~fig:"fig5.10" ~name:"9000 msg/s" ~lambda:9000.0 ~load:oscillating;
  lambda_timeline ~fig:"fig5.10" ~name:"12000 msg/s" ~lambda:12000.0 ~load:oscillating

(* --- Fig 5.11: coordinator failure --------------------------------------------- *)

let fig5_11 () =
  Util.header "Fig 5.11 - ring-0 coordinator failure at t=10s";
  Printf.printf
    "(failure detection deliberately slowed to ~2s, as the paper forces a 3s restart)\n";
  let engine, net = Util.fresh () in
  let recv = Array.init 2 (fun _ -> Sim.Stats.Rate.create ()) in
  let delv = Sim.Stats.Rate.create () in
  let cfg =
    { Multiring.default_config with
      n_rings = 2;
      lambda = 8000.0;
      ring = { Ringpaxos.Mring.default_config with hb_timeout = 2.0 } }
  in
  let mr =
    Multiring.create net cfg ~n_learners:1
      ~subs:(fun _ -> [ 0; 1 ])
      ~proposers_per_ring:1
      ~deliver:(fun ~learner:_ ~group:_ (it : Paxos.Value.item) ->
        Sim.Stats.Rate.add delv ~now:(Sim.Engine.now engine) ~bytes:it.isize)
  in
  (* Track per-ring receive throughput through the ring-level recorders. *)
  let last = Array.make 2 0 in
  let stop_probe =
    Simnet.every net ~period:0.5 (fun () ->
        for g = 0 to 1 do
          let now_count = Multiring.received mr ~learner:0 ~group:g in
          Sim.Stats.Rate.add recv.(g) ~now:(Sim.Engine.now engine)
            ~bytes:((now_count - last.(g)) * msg);
          last.(g) <- now_count
        done)
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:500.0 ~size:msg (fun sz ->
        ignore (Multiring.multicast mr ~group:0 ~proposer:0 ~size:sz Pkt);
        ignore (Multiring.multicast mr ~group:1 ~proposer:0 ~size:sz Pkt);
        true)
  in
  ignore (Simnet.after net 10.0 (fun () -> Multiring.kill_ring_coordinator mr 0));
  Sim.Engine.run engine ~until:20.0;
  stop ();
  stop_probe ();
  Printf.printf "%-6s %14s %14s %16s\n" "t(s)" "recv0(Mbps)" "recv1(Mbps)" "deliver(Mbps)";
  List.iter
    (fun t ->
      let deliver = Sim.Stats.Rate.mbps delv ~from:(t -. 1.0) ~till:t in
      Printf.printf "%-6.1f %14.1f %14.1f %16.1f\n" t
        (Sim.Stats.Rate.mbps recv.(0) ~from:(t -. 1.0) ~till:t)
        (Sim.Stats.Rate.mbps recv.(1) ~from:(t -. 1.0) ~till:t)
        deliver;
      Util.snap (Printf.sprintf "fig5.11/t%.1f" t) ~mbps:deliver)
    [ 5.0; 8.0; 9.0; 10.0; 11.0; 12.0; 13.0; 14.0; 15.0; 16.0; 18.0; 20.0 ]

let all () =
  fig5_1 ();
  fig5_2 ();
  fig5_4 ();
  fig5_5 ();
  fig5_5b ();
  fig5_6 ();
  fig5_7 ();
  fig5_8 ();
  fig5_9 ();
  fig5_10 ();
  fig5_11 ()
