(* Chapter 6 experiments: parallel state-machine replication. *)

let n_objects = 4096
let duration = 1.0
let warm = 0.4

let run ?(approach = Psmr.Psmr) ?(n_workers = 4) ?(dep_pct = 0) ?(skew = 0.0) ~clients () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 11) in
  let rng = Sim.Rng.create 12 in
  let zipf =
    if skew > 0.0 then Some (Sim.Rng.Zipf.create rng ~n:n_objects ~s:skew) else None
  in
  let gen _ =
    let obj =
      match zipf with Some z -> Sim.Rng.Zipf.draw z | None -> Sim.Rng.int rng n_objects
    in
    { Psmr.obj; dependent = Sim.Rng.int rng 100 < dep_pct; size = 128 }
  in
  (* 10 us/command for SDPE's scheduler: command parsing plus conflict
     tracking, the CBASE-style cost the paper's comparison assumes. *)
  let config =
    { Psmr.default_config with approach; n_workers; exec_cost = 2.0e-5; sched_cost = 1.0e-5 }
  in
  let sys = Psmr.create net config ~n_clients:clients ~gen in
  Psmr.start sys;
  Sim.Engine.run engine ~until:duration;
  let m = Psmr.metrics sys in
  (Smr.Metrics.kcps m ~from:warm ~till:duration, Smr.Metrics.lat_mean_ms m)

let approaches =
  [ ("Sequential", Psmr.Sequential);
    ("Pipelined", Psmr.Pipelined);
    ("SDPE", Psmr.Sdpe);
    ("P-SMR", Psmr.Psmr) ]

let sweep ~fig ~dep_pct title =
  Util.header title;
  Printf.printf "%-12s %8s %10s %10s\n" "approach" "clients" "kcps" "lat(ms)";
  List.iter
    (fun (name, approach) ->
      List.iter
        (fun clients ->
          let k, l = run ~approach ~dep_pct ~clients () in
          Printf.printf "%-12s %8d %10.1f %10.2f\n" name clients k l;
          Util.snap (Printf.sprintf "%s/%s/%dc" fig name clients)
            ~events_per_sec:(k *. 1000.0) ~lat_mean:l)
        [ 16; 64; 200 ])
    approaches

let fig6_3 () = sweep ~fig:"fig6.3" ~dep_pct:0 "Fig 6.3 - independent commands (4 workers)"
let fig6_4 () = sweep ~fig:"fig6.4" ~dep_pct:100 "Fig 6.4 - dependent commands (4 workers)"

let fig6_5 () =
  Util.header "Fig 6.5 - mixed workloads: % of dependent commands (4 workers, 200 clients)";
  Printf.printf "%-12s %8s %10s %10s\n" "approach" "dep%" "kcps" "lat(ms)";
  List.iter
    (fun (name, approach) ->
      List.iter
        (fun dep_pct ->
          let k, l = run ~approach ~dep_pct ~clients:200 () in
          Printf.printf "%-12s %8d %10.1f %10.2f\n" name dep_pct k l;
          Util.snap (Printf.sprintf "fig6.5/%s/%ddep" name dep_pct)
            ~events_per_sec:(k *. 1000.0) ~lat_mean:l)
        [ 0; 10; 25; 50; 100 ])
    approaches

let scalability ~fig ~skew title =
  Util.header title;
  Printf.printf "%-12s %8s %10s %10s\n" "approach" "workers" "kcps" "lat(ms)";
  List.iter
    (fun (name, approach) ->
      List.iter
        (fun w ->
          let k, l = run ~approach ~n_workers:w ~skew ~clients:200 () in
          Printf.printf "%-12s %8d %10.1f %10.2f\n" name w k l;
          Util.snap (Printf.sprintf "%s/%s/%dworkers" fig name w)
            ~events_per_sec:(k *. 1000.0) ~lat_mean:l)
        [ 1; 2; 4; 8 ])
    [ ("SDPE", Psmr.Sdpe); ("P-SMR", Psmr.Psmr) ]

let fig6_6 () = scalability ~fig:"fig6.6" ~skew:0.0 "Fig 6.6 - scalability, uniform workload"
let fig6_7 () =
  scalability ~fig:"fig6.7" ~skew:1.0 "Fig 6.7 - scalability, skewed (zipf s=1) workload"

let table6_1 () =
  Util.header "Table 6.1 - approaches to parallelizing SMR";
  print_string (Psmr.render_table_6_1 ())

let all () =
  table6_1 ();
  fig6_3 ();
  fig6_4 ();
  fig6_5 ();
  fig6_6 ();
  fig6_7 ()
