(* Shared plumbing for the experiment harness: environments, load
   generation and paper-style output formatting. *)

type Simnet.payload += Payload of int

(* --trace plumbing: when `--trace <path>` was given, every network the
   harness builds records into one shared tracer (each [fresh] opens a new
   pid namespace in it) and main.ml writes the Chrome JSON once the
   requested runs finish.  Experiments that want a latency-decomposition
   table for one specific run install a [local_tracer] around it. *)
let trace_path : string option ref = ref None
let tracer : Trace.t option ref = ref None
let local_tracer : Trace.t option ref = ref None

(* Fail fast on an unwritable path, before hours of experiments run. *)
let set_trace_output path =
  (try close_out (open_out path)
   with Sys_error e ->
     Printf.eprintf "cannot write --trace output: %s\n" e;
     exit 1);
  trace_path := Some path;
  tracer := Some (Trace.create ())

(* [traced f] runs [f tr] with [tr] installed as the tracer of every
   network built inside.  When a global --trace capture is active it is
   reused (so the export still covers the whole invocation); otherwise a
   fresh tracer scopes the decomposition to exactly this run. *)
let traced f =
  match !tracer with
  | Some tr -> f tr
  | None ->
      let tr = Trace.create () in
      local_tracer := Some tr;
      Fun.protect ~finally:(fun () -> local_tracer := None) (fun () -> f tr)

let fresh ?(seed = 7) ?config () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create ?config engine (Sim.Rng.create seed) in
  (match (!tracer, !local_tracer) with
  | (Some _ as tr), _ | None, (Some _ as tr) -> Simnet.set_tracer net tr
  | None, None -> ());
  (engine, net)

let header title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n%!" title line

let cpu_pct busy ~from ~till = Sim.Stats.Busy.utilization busy ~from ~till

(* --json plumbing: experiments append machine-readable snapshots here
   and main.ml writes them all out once the requested runs finish. *)
let json_path : string option ref = ref None
let snapshots : Sim.Stats.Snapshot.t list ref = ref []

(* Fail fast on an unwritable path, before hours of experiments run. *)
let set_json_output path =
  (try close_out (open_out path)
   with Sys_error e ->
     Printf.eprintf "cannot write --json output: %s\n" e;
     exit 1);
  json_path := Some path

let snapshot s = if !json_path <> None then snapshots := s :: !snapshots

(* Scalar-row shorthand: most experiments print derived numbers (a
   throughput, a latency average) rather than keeping raw accumulators
   per row; [snap] records the same values under --json. *)
let snap ?mbps ?events_per_sec ?lat_mean ?cpu_pct ?counters label =
  snapshot
    (Sim.Stats.Snapshot.scalar ?mbps ?events_per_sec ?lat_mean ?cpu_pct ?counters ~label ())

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "[\n";
      List.iteri
        (fun i s ->
          if i > 0 then output_string oc ",\n";
          output_string oc "  ";
          output_string oc (Sim.Stats.Snapshot.to_json s))
        (List.rev !snapshots);
      output_string oc "\n]\n";
      close_out oc;
      Printf.printf "wrote %d metric snapshots to %s\n%!" (List.length !snapshots) path

let write_trace () =
  match (!trace_path, !tracer) with
  | Some path, Some tr ->
      Trace.write_chrome_json tr path;
      let dropped = Trace.dropped tr in
      Printf.printf "wrote %d trace events to %s%s\n%!" (Trace.events tr) path
        (if dropped > 0 then Printf.sprintf " (%d oldest dropped)" dropped else "")
  | _ -> ()
