(* Shared plumbing for the experiment harness: environments, load
   generation and paper-style output formatting. *)

type Simnet.payload += Payload of int

let fresh ?(seed = 7) ?config () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create ?config engine (Sim.Rng.create seed) in
  (engine, net)

let header title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n%!" title line

let cpu_pct busy ~from ~till = Sim.Stats.Busy.utilization busy ~from ~till

(* --json plumbing: experiments append machine-readable snapshots here
   and main.ml writes them all out once the requested runs finish. *)
let json_path : string option ref = ref None
let snapshots : Sim.Stats.Snapshot.t list ref = ref []

(* Fail fast on an unwritable path, before hours of experiments run. *)
let set_json_output path =
  (try close_out (open_out path)
   with Sys_error e ->
     Printf.eprintf "cannot write --json output: %s\n" e;
     exit 1);
  json_path := Some path

let snapshot s = if !json_path <> None then snapshots := s :: !snapshots

(* Scalar-row shorthand: most experiments print derived numbers (a
   throughput, a latency average) rather than keeping raw accumulators
   per row; [snap] records the same values under --json. *)
let snap ?mbps ?events_per_sec ?lat_mean ?cpu_pct ?counters label =
  snapshot
    (Sim.Stats.Snapshot.scalar ?mbps ?events_per_sec ?lat_mean ?cpu_pct ?counters ~label ())

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "[\n";
      List.iteri
        (fun i s ->
          if i > 0 then output_string oc ",\n";
          output_string oc "  ";
          output_string oc (Sim.Stats.Snapshot.to_json s))
        (List.rev !snapshots);
      output_string oc "\n]\n";
      close_out oc;
      Printf.printf "wrote %d metric snapshots to %s\n%!" (List.length !snapshots) path
