(* Chapter 7 experiments: Paxos libraries in the cloud. *)

let table7_1 () =
  Util.header "Tables 7.1/7.2 - evaluated configurations";
  print_string (Cloud.render_configs ());
  print_newline ()

let fig7_2 () =
  Util.header "Fig 7.2 - peak performance in the cloud";
  Printf.printf "%-14s %12s %10s %10s\n" "library" "thr(Mbps)" "kcps" "lat(ms)";
  List.iter
    (fun lib ->
      let r = Cloud.run ~lib ~duration:6.0 () in
      Printf.printf "%-14s %12.1f %10.1f %10.2f\n" (Cloud.lib_name lib) r.Cloud.mbps
        r.Cloud.kcps r.Cloud.lat_ms;
      Util.snap
        (Printf.sprintf "fig7.2/%s" (Cloud.lib_name lib))
        ~mbps:r.Cloud.mbps ~events_per_sec:(r.Cloud.kcps *. 1000.0)
        ~lat_mean:r.Cloud.lat_ms)
    Cloud.all_libs

let failure_figure ~fig ~lib ~hetero title =
  Util.header title;
  let r = Cloud.run ~lib ~hetero ~kill_leader_at:6.0 ~duration:18.0 () in
  Printf.printf "(leader killed at t=6s; steady %.1f Mbps; outage %.1fs; recovered=%b)\n"
    r.Cloud.mbps r.Cloud.outage r.Cloud.recovered;
  Util.snap (fig ^ "/summary") ~mbps:r.Cloud.mbps
    ~counters:
      [ ("outage_ms", int_of_float (r.Cloud.outage *. 1000.0));
        ("recovered", if r.Cloud.recovered then 1 else 0) ];
  Printf.printf "%-6s %12s\n" "t(s)" "Mbps";
  List.iter
    (fun (t, v) ->
      if Float.rem t 1.0 < 0.26 then begin
        Printf.printf "%-6.1f %12.1f\n" t v;
        Util.snap (Printf.sprintf "%s/t%.1f" fig t) ~mbps:v
      end)
    r.Cloud.series

let fig7_3 () =
  failure_figure ~fig:"fig7.3" ~lib:Cloud.S_paxos ~hetero:true
    "Fig 7.3 - S-Paxos, heterogeneous configuration, leader crash"

let fig7_4 () =
  failure_figure ~fig:"fig7.4" ~lib:Cloud.Openreplica ~hetero:true
    "Fig 7.4 - OpenReplica, heterogeneous configuration, leader crash"

let fig7_5 () =
  failure_figure ~fig:"fig7.5" ~lib:Cloud.U_ring ~hetero:true
    "Fig 7.5 - U-Ring Paxos, heterogeneous configuration, coordinator crash"

let fig7_6 () =
  failure_figure ~fig:"fig7.6" ~lib:Cloud.Libpaxos ~hetero:false
    "Fig 7.6 - Libpaxos, coordinator crash"

let fig7_7 () =
  failure_figure ~fig:"fig7.7" ~lib:Cloud.Libpaxos_plus ~hetero:false
    "Fig 7.7 - Libpaxos+, coordinator crash"

let all () =
  table7_1 ();
  fig7_2 ();
  fig7_3 ();
  fig7_4 ();
  fig7_5 ();
  fig7_6 ();
  fig7_7 ()
