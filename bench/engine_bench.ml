(* `-- engine`: microbench of the discrete-event core, wheel vs heap
   backend, on the three patterns that dominate real experiment runs:
   schedule-heavy (every fired event re-arms), cancel-heavy (the
   failure-detector / Retry cancel-on-ack pattern) and a mixed
   simnet-like blend.  A fourth workload drives the integer-tick
   scheduling path and asserts the zero-allocation claim.  Results go to
   stdout and BENCH_engine.json so CI records the trajectory. *)

let out_file = "BENCH_engine.json"

type sample = {
  workload : string;
  backend : string;
  events : int;
  elapsed_s : float;
  events_per_sec : float;
  minor_words_per_event : float;
}

(* Cheap deterministic int stream (the sim RNG draws floats; here every
   draw must stay in int registers). *)
let lcg state = ((state * 0x2545F4914F6CDD1D) + 0x3779B97F4A7C15) land max_int

let backend_name = function `Wheel -> "wheel" | `Heap -> "heap"

let measure ~workload ~backend ~events f =
  let w0 = Gc.minor_words () in
  let t0 = Sys.time () in
  let fired = f () in
  let elapsed = Sys.time () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let elapsed = if elapsed <= 0.0 then 1e-9 else elapsed in
  ignore events;
  { workload;
    backend = backend_name backend;
    events = fired;
    elapsed_s = elapsed;
    events_per_sec = float_of_int fired /. elapsed;
    minor_words_per_event = words /. float_of_int (max 1 fired) }

(* Every fired event re-arms itself at a pseudo-random short delay:
   the pure schedule+fire path, one shared closure per timer chain. *)
let schedule_heavy backend =
  let e = Sim.Engine.create ~backend () in
  let target = 1_500_000 in
  let fires = ref 0 in
  let rng = ref 0x12345 in
  let rec arm () =
    incr fires;
    if !fires < target then begin
      rng := lcg !rng;
      let d = float_of_int (1 + (!rng land 0xFFF)) *. 1e-6 in
      ignore (Sim.Engine.schedule e ~delay:d arm)
    end
  in
  for i = 1 to 2048 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i *. 1e-6) arm)
  done;
  measure ~workload:"schedule-heavy" ~backend ~events:target (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* Failure-detector re-arm: each monitor fire cancels its outstanding
   long timeout, arms a fresh one (which will in turn be cancelled) and
   re-arms itself — 2 schedules + 1 cancel per fired event, with ~half
   the queue cancelled at any time. *)
let cancel_heavy backend =
  let e = Sim.Engine.create ~backend () in
  let target = 1_000_000 in
  let monitors = 1024 in
  let fires = ref 0 in
  let noop () = () in
  let handles = Array.make monitors (Sim.Engine.schedule e ~delay:9.0e3 noop) in
  let rng = ref 0xBEEF in
  let monitor i =
    let rec fire () =
      incr fires;
      if !fires < target then begin
        Sim.Engine.cancel e handles.(i);
        handles.(i) <- Sim.Engine.schedule e ~delay:0.5 noop;
        rng := lcg !rng;
        let d = float_of_int (16 + (!rng land 0x3FF)) *. 1e-6 in
        ignore (Sim.Engine.schedule e ~delay:d fire)
      end
    in
    fire
  in
  for i = 0 to monitors - 1 do
    Sim.Engine.cancel e handles.(i);
    handles.(i) <- Sim.Engine.schedule e ~delay:0.5 noop;
    ignore (Sim.Engine.schedule e ~delay:(float_of_int (i + 1) *. 1e-6) (monitor i))
  done;
  measure ~workload:"cancel-heavy" ~backend ~events:target (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* Simnet-like blend: short transmit chains, 100 ms heartbeats (a deeper
   wheel level), a retry armed every 8th fire and cancelled (acked) on
   the next fire of the same chain, and a far-future (overflow-level)
   watchdog per chain. *)
let mixed backend =
  let e = Sim.Engine.create ~backend () in
  let target = 1_200_000 in
  let chains = 256 in
  let fires = ref 0 in
  let noop () = () in
  let retries = Array.make chains (Sim.Engine.schedule e ~delay:9.0e3 noop) in
  let rng = ref 0xC0FFEE in
  let chain i =
    let rec fire () =
      incr fires;
      if !fires < target then begin
        Sim.Engine.cancel e retries.(i);
        rng := lcg !rng;
        if !rng land 7 = 0 then
          retries.(i) <- Sim.Engine.schedule e ~delay:0.05 noop;
        rng := lcg !rng;
        let d = float_of_int (25 + (!rng land 0xFF)) *. 1e-6 in
        ignore (Sim.Engine.schedule e ~delay:d fire)
      end
    in
    fire
  in
  let rec heartbeat () =
    incr fires;
    if !fires < target then ignore (Sim.Engine.schedule e ~delay:0.1 heartbeat)
  in
  for i = 0 to chains - 1 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int (i + 1) *. 1e-6) (chain i));
    ignore (Sim.Engine.schedule e ~delay:2.0e3 noop)
  done;
  ignore (Sim.Engine.schedule e ~delay:0.1 heartbeat);
  measure ~workload:"mixed-simnet" ~backend ~events:target (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* Integer-tick scheduling: after a warm-up pass grows the pool and the
   slot arrays, a steady-state schedule/fire cycle through
   [schedule_ticks] must allocate nothing at all on the wheel. *)
let zero_alloc backend =
  let e = Sim.Engine.create ~backend () in
  let fires = ref 0 in
  let limit = ref 0 in
  let rng = ref 0xFEED in
  let rec arm () =
    incr fires;
    if !fires < !limit then begin
      rng := lcg !rng;
      ignore (Sim.Engine.schedule_ticks e ~ticks:(1 + (!rng land 0x3FF)) arm)
    end
  in
  let seed () =
    for i = 1 to 512 do
      ignore (Sim.Engine.schedule_ticks e ~ticks:i arm)
    done
  in
  (* Warm-up: grow pool, slots and heaps to steady-state capacity. *)
  limit := 100_000;
  seed ();
  Sim.Engine.run_all e;
  fires := 0;
  limit := 1_000_000;
  seed ();
  measure ~workload:"zero-alloc-ticks" ~backend ~events:!limit (fun () ->
      Sim.Engine.run_all e;
      !fires)

let json_of_sample s =
  Printf.sprintf
    "{\"workload\":%S,\"backend\":%S,\"events\":%d,\"elapsed_s\":%.6f,\"events_per_sec\":%.1f,\"minor_words_per_event\":%.4f}"
    s.workload s.backend s.events s.elapsed_s s.events_per_sec
    s.minor_words_per_event

let run () =
  Util.header "Engine microbench (events/sec, minor words/event)";
  let workloads = [ schedule_heavy; cancel_heavy; mixed; zero_alloc ] in
  let samples =
    List.concat_map (fun w -> [ w `Wheel; w `Heap ]) workloads
  in
  Printf.printf "%-18s %-6s %12s %14s %10s\n" "workload" "engine" "events"
    "events/sec" "words/ev";
  List.iter
    (fun s ->
      Printf.printf "%-18s %-6s %12d %14.0f %10.4f\n" s.workload s.backend
        s.events s.events_per_sec s.minor_words_per_event)
    samples;
  let find w b =
    List.find (fun s -> s.workload = w && s.backend = backend_name b) samples
  in
  let speedup w =
    (find w `Wheel).events_per_sec /. (find w `Heap).events_per_sec
  in
  let mixed_speedup = speedup "mixed-simnet" in
  Printf.printf "\nwheel/heap speedup: schedule %.2fx, cancel %.2fx, mixed %.2fx\n"
    (speedup "schedule-heavy") (speedup "cancel-heavy") mixed_speedup;
  Printf.printf "zero-alloc path (wheel): %.4f minor words/event\n"
    (find "zero-alloc-ticks" `Wheel).minor_words_per_event;
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\n\"bench\":\"engine\",\n\"ticks_per_second\":%d,\n\"samples\":[\n%s\n],\n\"summary\":{\"schedule_speedup\":%.3f,\"cancel_speedup\":%.3f,\"mixed_speedup_wheel_over_heap\":%.3f,\"zero_alloc_minor_words_per_event\":%.4f}\n}\n"
    Sim.Engine.ticks_per_second
    (String.concat ",\n" (List.map json_of_sample samples))
    (speedup "schedule-heavy") (speedup "cancel-heavy") mixed_speedup
    (find "zero-alloc-ticks" `Wheel).minor_words_per_event;
  close_out oc;
  Printf.printf "wrote %s\n%!" out_file
