(* `-- engine`: microbench of the discrete-event core, wheel vs heap
   backend, on the three patterns that dominate real experiment runs:
   schedule-heavy (every fired event re-arms), cancel-heavy (the
   failure-detector / Retry cancel-on-ack pattern) and a mixed
   simnet-like blend.  A fourth workload drives the integer-tick
   scheduling path and asserts the zero-allocation claim.  Results go to
   stdout and BENCH_engine.json so CI records the trajectory. *)

let out_file = "BENCH_engine.json"

type sample = {
  workload : string;
  backend : string;
  events : int;
  elapsed_s : float;
  events_per_sec : float;
  minor_words_per_event : float;
}

(* Cheap deterministic int stream (the sim RNG draws floats; here every
   draw must stay in int registers). *)
let lcg state = ((state * 0x2545F4914F6CDD1D) + 0x3779B97F4A7C15) land max_int

let backend_name = function `Wheel -> "wheel" | `Heap -> "heap"

let measure ~workload ~backend ~events f =
  let w0 = Gc.minor_words () in
  let t0 = Sys.time () in
  let fired = f () in
  let elapsed = Sys.time () -. t0 in
  let words = Gc.minor_words () -. w0 in
  let elapsed = if elapsed <= 0.0 then 1e-9 else elapsed in
  ignore events;
  { workload;
    backend = backend_name backend;
    events = fired;
    elapsed_s = elapsed;
    events_per_sec = float_of_int fired /. elapsed;
    minor_words_per_event = words /. float_of_int (max 1 fired) }

(* Every fired event re-arms itself at a pseudo-random short delay:
   the pure schedule+fire path, one shared closure per timer chain. *)
let schedule_heavy backend =
  let e = Sim.Engine.create ~backend () in
  let target = 1_500_000 in
  let fires = ref 0 in
  let rng = ref 0x12345 in
  let rec arm () =
    incr fires;
    if !fires < target then begin
      rng := lcg !rng;
      let d = float_of_int (1 + (!rng land 0xFFF)) *. 1e-6 in
      ignore (Sim.Engine.schedule e ~delay:d arm)
    end
  in
  for i = 1 to 2048 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i *. 1e-6) arm)
  done;
  measure ~workload:"schedule-heavy" ~backend ~events:target (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* Failure-detector re-arm: each monitor fire cancels its outstanding
   long timeout, arms a fresh one (which will in turn be cancelled) and
   re-arms itself — 2 schedules + 1 cancel per fired event, with ~half
   the queue cancelled at any time. *)
let cancel_heavy backend =
  let e = Sim.Engine.create ~backend () in
  let target = 1_000_000 in
  let monitors = 1024 in
  let fires = ref 0 in
  let noop () = () in
  let handles = Array.make monitors (Sim.Engine.schedule e ~delay:9.0e3 noop) in
  let rng = ref 0xBEEF in
  let monitor i =
    let rec fire () =
      incr fires;
      if !fires < target then begin
        Sim.Engine.cancel e handles.(i);
        handles.(i) <- Sim.Engine.schedule e ~delay:0.5 noop;
        rng := lcg !rng;
        let d = float_of_int (16 + (!rng land 0x3FF)) *. 1e-6 in
        ignore (Sim.Engine.schedule e ~delay:d fire)
      end
    in
    fire
  in
  for i = 0 to monitors - 1 do
    Sim.Engine.cancel e handles.(i);
    handles.(i) <- Sim.Engine.schedule e ~delay:0.5 noop;
    ignore (Sim.Engine.schedule e ~delay:(float_of_int (i + 1) *. 1e-6) (monitor i))
  done;
  measure ~workload:"cancel-heavy" ~backend ~events:target (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* Simnet-like blend: short transmit chains, 100 ms heartbeats (a deeper
   wheel level), a retry armed every 8th fire and cancelled (acked) on
   the next fire of the same chain, and a far-future (overflow-level)
   watchdog per chain. *)
let mixed backend =
  let e = Sim.Engine.create ~backend () in
  let target = 1_200_000 in
  let chains = 256 in
  let fires = ref 0 in
  let noop () = () in
  let retries = Array.make chains (Sim.Engine.schedule e ~delay:9.0e3 noop) in
  let rng = ref 0xC0FFEE in
  let chain i =
    let rec fire () =
      incr fires;
      if !fires < target then begin
        Sim.Engine.cancel e retries.(i);
        rng := lcg !rng;
        if !rng land 7 = 0 then
          retries.(i) <- Sim.Engine.schedule e ~delay:0.05 noop;
        rng := lcg !rng;
        let d = float_of_int (25 + (!rng land 0xFF)) *. 1e-6 in
        ignore (Sim.Engine.schedule e ~delay:d fire)
      end
    in
    fire
  in
  let rec heartbeat () =
    incr fires;
    if !fires < target then ignore (Sim.Engine.schedule e ~delay:0.1 heartbeat)
  in
  for i = 0 to chains - 1 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int (i + 1) *. 1e-6) (chain i));
    ignore (Sim.Engine.schedule e ~delay:2.0e3 noop)
  done;
  ignore (Sim.Engine.schedule e ~delay:0.1 heartbeat);
  measure ~workload:"mixed-simnet" ~backend ~events:target (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* Integer-tick scheduling: after a warm-up pass grows the pool and the
   slot arrays, a steady-state schedule/fire cycle through
   [schedule_ticks] must allocate nothing at all on the wheel. *)
let zero_alloc backend =
  let e = Sim.Engine.create ~backend () in
  let fires = ref 0 in
  let limit = ref 0 in
  let rng = ref 0xFEED in
  let rec arm () =
    incr fires;
    if !fires < !limit then begin
      rng := lcg !rng;
      ignore (Sim.Engine.schedule_ticks e ~ticks:(1 + (!rng land 0x3FF)) arm)
    end
  in
  let seed () =
    for i = 1 to 512 do
      ignore (Sim.Engine.schedule_ticks e ~ticks:i arm)
    done
  in
  (* Warm-up: grow pool, slots and heaps to steady-state capacity. *)
  limit := 100_000;
  seed ();
  Sim.Engine.run_all e;
  fires := 0;
  limit := 1_000_000;
  seed ();
  measure ~workload:"zero-alloc-ticks" ~backend ~events:!limit (fun () ->
      Sim.Engine.run_all e;
      !fires)

(* --- simnet message-path workloads (pooled vs boxed) --------------------

   Same virtual run in both modes (the modes are schedule- and
   RNG-identical by construction), so messages/sec compares wall time for
   identical work and minor words/message isolates the allocation shape.
   Jitter and base loss are disabled so the unicast workload exercises the
   pure zero-allocation Deliver path. *)

let simnet_config =
  { Simnet.default_config with latency = 1.0e-6; latency_jitter = 0.0 }

let mode_name = function `Pooled -> "pooled" | `Boxed -> "boxed"

(* Build both modes of a workload up front, warm each to steady state
   (pool, rings and wheel slots grown), then run them in alternating
   virtual-time slices.  Interleaving means both modes sample the same
   machine conditions — CPU frequency, cache pressure, neighbours — so
   the pooled/boxed ratio is stable even when absolute throughput drifts
   between runs.  Each virtual run is deterministic, so the allocation
   counts are exact regardless of slicing. *)
let sim_measure_pair ~workload ~warmup ~until ~slices setup =
  let ep, fp = setup `Pooled in
  let eb, fb = setup `Boxed in
  Gc.compact ();
  Sim.Engine.run ep ~until:warmup;
  Sim.Engine.run eb ~until:warmup;
  let f0p = !fp and f0b = !fb in
  let tp = ref 0.0 and tb = ref 0.0 and wp = ref 0.0 and wb = ref 0.0 in
  let step = (until -. warmup) /. float_of_int slices in
  for k = 1 to slices do
    let stop = warmup +. (step *. float_of_int k) in
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    Sim.Engine.run ep ~until:stop;
    tp := !tp +. (Sys.time () -. t0);
    wp := !wp +. (Gc.minor_words () -. w0);
    let w0 = Gc.minor_words () in
    let t0 = Sys.time () in
    Sim.Engine.run eb ~until:stop;
    tb := !tb +. (Sys.time () -. t0);
    wb := !wb +. (Gc.minor_words () -. w0)
  done;
  let sample mode n elapsed words =
    let elapsed = if elapsed <= 0.0 then 1e-9 else elapsed in
    { workload;
      backend = mode_name mode;
      events = n;
      elapsed_s = elapsed;
      events_per_sec = float_of_int n /. elapsed;
      minor_words_per_event = words /. float_of_int (max 1 n) }
  in
  [ sample `Pooled (!fp - f0p) !tp !wp; sample `Boxed (!fb - f0b) !tb !wb ]

(* Steady unicast ping-pong over TCP-like connections: 8 independent
   pairs, each handler echoes the message back.  The measured interval
   must allocate nothing in pooled mode (CI gates on it). *)
let net_unicast (mode : Simnet.mode) =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 4242 in
  let net = Simnet.create ~config:simnet_config ~mode e rng in
  let fires = ref 0 in
  for i = 0 to 7 do
    let na = Simnet.add_node net (Printf.sprintf "a%d" i) in
    let nb = Simnet.add_node net (Printf.sprintf "b%d" i) in
    let pa = Simnet.add_proc net na "pa" in
    let pb = Simnet.add_proc net nb "pb" in
    Simnet.set_handler pb (fun m ->
        incr fires;
        Simnet.send net ~src:pb ~dst:pa ~size:m.size m.payload);
    Simnet.set_handler pa (fun m ->
        incr fires;
        Simnet.send net ~src:pa ~dst:pb ~size:m.size m.payload);
    Simnet.send net ~src:pa ~dst:pb ~size:512 Simnet.Noop
  done;
  (e, fires)

(* Switch fan-out: one multicast round of 8 deliveries at a time; the
   last receiver of a round fires the next round. *)
let net_fanout (mode : Simnet.mode) =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 4243 in
  let net = Simnet.create ~config:simnet_config ~mode e rng in
  let fires = ref 0 in
  let ns = Simnet.add_node net "sender" in
  let ps = Simnet.add_proc net ns "ps" in
  let g = Simnet.new_group net "fan" in
  let pending = ref 0 in
  for i = 0 to 7 do
    let n = Simnet.add_node net (Printf.sprintf "r%d" i) in
    let p = Simnet.add_proc net n "pr" in
    Simnet.join g p;
    Simnet.set_handler p (fun m ->
        incr fires;
        decr pending;
        if !pending = 0 then begin
          pending := 8;
          Simnet.mcast net ~src:ps g ~size:m.size m.payload
        end)
  done;
  pending := 8;
  Simnet.mcast net ~src:ps g ~size:512 Simnet.Noop;
  (e, fires)

(* Window-limited flow: a 4 KB receive window against 1 KB messages keeps
   a ~64-message backlog parked on the connection, so every delivery goes
   through a backlog push + drain (ring in pooled mode, tuple queue in
   boxed mode). *)
let net_backlog (mode : Simnet.mode) =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 4244 in
  let net = Simnet.create ~config:simnet_config ~mode e rng in
  let fires = ref 0 in
  let na = Simnet.add_node net "src" in
  let nb = Simnet.add_node net "dst" in
  let pa = Simnet.add_proc net na "pa" in
  let pb = Simnet.add_proc net nb "pb" in
  Simnet.set_rcvbuf pb 4096;
  Simnet.set_handler pb (fun m ->
      incr fires;
      Simnet.send net ~src:pa ~dst:pb ~size:m.size m.payload);
  for _ = 1 to 64 do
    Simnet.send net ~src:pa ~dst:pb ~size:1024 Simnet.Noop
  done;
  (e, fires)

(* The blend the acceptance criterion gates on: ping-pong pairs,
   deeply backlogged window-limited flows and a periodic multicast
   fan-out sharing one network.  The window flows keep thousands of
   messages parked on connections the way an SMR sender parks a deep
   proposal window: in boxed mode every parked message survives minor
   collections and is promoted, so the major heap churns at the message
   rate; in pooled mode the parked population lives in preallocated
   slots and the GC never sees it. *)
let net_mixed (mode : Simnet.mode) =
  let e = Sim.Engine.create () in
  let rng = Sim.Rng.create 4245 in
  let net = Simnet.create ~config:simnet_config ~mode e rng in
  let fires = ref 0 in
  let g = Simnet.new_group net "all" in
  for i = 0 to 1 do
    let na = Simnet.add_node net (Printf.sprintf "a%d" i) in
    let nb = Simnet.add_node net (Printf.sprintf "b%d" i) in
    let pa = Simnet.add_proc net na "pa" in
    let pb = Simnet.add_proc net nb "pb" in
    Simnet.join g pa;
    Simnet.join g pb;
    Simnet.set_handler pb (fun m ->
        incr fires;
        if m.dst >= 0 then Simnet.send net ~src:pb ~dst:pa ~size:m.size m.payload);
    Simnet.set_handler pa (fun m ->
        incr fires;
        if m.dst >= 0 then Simnet.send net ~src:pa ~dst:pb ~size:m.size m.payload);
    Simnet.send net ~src:pa ~dst:pb ~size:256 Simnet.Noop
  done;
  for i = 0 to 7 do
    let nc = Simnet.add_node net (Printf.sprintf "win-src%d" i) in
    let nd = Simnet.add_node net (Printf.sprintf "win-dst%d" i) in
    let pc = Simnet.add_proc net nc "pc" in
    let pd = Simnet.add_proc net nd "pd" in
    (* 1 MB window over 1 KB messages: ~1024 message records in flight
       per flow, each alive for the whole window's worth of service
       time — long enough to survive minor collections in boxed mode. *)
    Simnet.set_rcvbuf pd (1024 * 1024);
    Simnet.set_handler pd (fun m ->
        incr fires;
        Simnet.send net ~src:pc ~dst:pd ~size:m.size m.payload);
    for _ = 1 to 2048 do
      Simnet.send net ~src:pc ~dst:pd ~size:1024 Simnet.Noop
    done
  done;
  let nm = Simnet.add_node net "mc" in
  let pm = Simnet.add_proc net nm "pm" in
  let (_cancel : unit -> unit) =
    Simnet.every_tk net
      ~ticks:(Sim.Engine.ticks_of_duration 5.0e-5)
      (fun () -> Simnet.mcast net ~src:pm g ~size:256 Simnet.Noop)
  in
  (e, fires)

let json_of_sample s =
  Printf.sprintf
    "{\"workload\":%S,\"backend\":%S,\"events\":%d,\"elapsed_s\":%.6f,\"events_per_sec\":%.1f,\"minor_words_per_event\":%.4f}"
    s.workload s.backend s.events s.elapsed_s s.events_per_sec
    s.minor_words_per_event

let run () =
  Util.header "Engine microbench (events/sec, minor words/event)";
  let workloads = [ schedule_heavy; cancel_heavy; mixed; zero_alloc ] in
  let samples =
    List.concat_map (fun w -> [ w `Wheel; w `Heap ]) workloads
  in
  Printf.printf "%-18s %-6s %12s %14s %10s\n" "workload" "engine" "events"
    "events/sec" "words/ev";
  List.iter
    (fun s ->
      Printf.printf "%-18s %-6s %12d %14.0f %10.4f\n" s.workload s.backend
        s.events s.events_per_sec s.minor_words_per_event)
    samples;
  let find w b =
    List.find (fun s -> s.workload = w && s.backend = backend_name b) samples
  in
  let speedup w =
    (find w `Wheel).events_per_sec /. (find w `Heap).events_per_sec
  in
  let mixed_speedup = speedup "mixed-simnet" in
  Printf.printf "\nwheel/heap speedup: schedule %.2fx, cancel %.2fx, mixed %.2fx\n"
    (speedup "schedule-heavy") (speedup "cancel-heavy") mixed_speedup;
  Printf.printf "zero-alloc path (wheel): %.4f minor words/event\n"
    (find "zero-alloc-ticks" `Wheel).minor_words_per_event;
  Util.header "Simnet message path (messages/sec, minor words/message)";
  let net_workloads =
    [ ("net-unicast", net_unicast, 0.5, 8.5);
      ("net-fanout", net_fanout, 0.5, 6.5);
      ("net-backlog", net_backlog, 0.5, 6.5);
      ("net-mixed", net_mixed, 0.25, 2.75) ]
  in
  let net_samples =
    List.concat_map
      (fun (workload, setup, warmup, until) ->
        sim_measure_pair ~workload ~warmup ~until ~slices:16 setup)
      net_workloads
  in
  Printf.printf "%-18s %-6s %12s %14s %10s\n" "workload" "simnet" "messages"
    "msgs/sec" "words/msg";
  List.iter
    (fun s ->
      Printf.printf "%-18s %-6s %12d %14.0f %10.4f\n" s.workload s.backend
        s.events s.events_per_sec s.minor_words_per_event)
    net_samples;
  let nfind w m =
    List.find (fun s -> s.workload = w && s.backend = mode_name m) net_samples
  in
  let nspeedup w =
    (nfind w `Pooled).events_per_sec /. (nfind w `Boxed).events_per_sec
  in
  let unicast_words = (nfind "net-unicast" `Pooled).minor_words_per_event in
  Printf.printf
    "\npooled/boxed speedup: unicast %.2fx, fanout %.2fx, backlog %.2fx, mixed %.2fx\n"
    (nspeedup "net-unicast") (nspeedup "net-fanout") (nspeedup "net-backlog")
    (nspeedup "net-mixed");
  Printf.printf "pooled unicast Deliver path: %.4f minor words/message\n"
    unicast_words;
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\n\
     \"bench\":\"engine\",\n\
     \"ticks_per_second\":%d,\n\
     \"samples\":[\n\
     %s\n\
     ],\n\
     \"simnet_samples\":[\n\
     %s\n\
     ],\n\
     \"summary\":{\"schedule_speedup\":%.3f,\"cancel_speedup\":%.3f,\"mixed_speedup_wheel_over_heap\":%.3f,\"zero_alloc_minor_words_per_event\":%.4f,\"simnet_unicast_minor_words_per_msg\":%.4f,\"simnet_mixed_speedup_pooled_over_boxed\":%.3f}\n\
     }\n"
    Sim.Engine.ticks_per_second
    (String.concat ",\n" (List.map json_of_sample samples))
    (String.concat ",\n" (List.map json_of_sample net_samples))
    (speedup "schedule-heavy") (speedup "cancel-heavy") mixed_speedup
    (find "zero-alloc-ticks" `Wheel).minor_words_per_event
    unicast_words (nspeedup "net-mixed");
  close_out oc;
  Printf.printf "wrote %s\n%!" out_file
