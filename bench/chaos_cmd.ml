(* `bench/main.exe -- chaos [--seeds N] [--protocol P] [--duration S]`:
   run the seeded fault schedules of lib/fault per protocol family and
   print one verdict line per (protocol, seed).  Exits non-zero when any
   safety invariant is violated, so CI can gate on it. *)

let usage () =
  prerr_endline
    "usage: chaos [--seeds N] [--protocol P] [--duration S]\n\
     protocols: all | mring | uring | multiring | spaxos | lcr | smr | kv-lease";
  exit 1

let run args =
  let seeds = ref 5 in
  let duration = ref 4.0 in
  let protos = ref [] in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: n :: rest ->
        (match int_of_string_opt n with Some n when n > 0 -> seeds := n | _ -> usage ());
        parse rest
    | "--duration" :: s :: rest ->
        (match float_of_string_opt s with Some s when s > 0.0 -> duration := s | _ -> usage ());
        parse rest
    | "--protocol" :: p :: rest ->
        if p = "all" then protos := Fault.Chaos.protocols
        else if List.mem p Fault.Chaos.protocols then protos := !protos @ [ p ]
        else usage ();
        parse rest
    | _ -> usage ()
  in
  parse args;
  let protocols = if !protos = [] then Fault.Chaos.protocols else !protos in
  Util.header
    (Printf.sprintf "Chaos: %d seeds x [%s], %.1fs horizon" !seeds
       (String.concat " " protocols) !duration);
  let failures = Fault.Chaos.run_all ~protocols ~seeds:!seeds ~duration:!duration () in
  if failures > 0 then exit 1
