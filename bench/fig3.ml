(* Chapter 3 experiments: communication patterns, Ring Paxos versus other
   atomic broadcast protocols, and the M-Ring/U-Ring parameter studies. *)

type Simnet.payload += Pkt of int

let pkt = 8192

(* --- Fig 3.2: one-to-many — unicast vs multicast vs pipeline -------------- *)

let one_to_many strategy n_receivers =
  let engine, net = Util.fresh () in
  let sender_node = Simnet.add_node net "sender" in
  let sender = Simnet.add_proc net sender_node "sender" in
  let receivers =
    Array.init n_receivers (fun i ->
        let nd = Simnet.add_node net (Printf.sprintf "r%d" i) in
        Simnet.add_proc net nd (Printf.sprintf "r%d" i))
  in
  let group = Simnet.new_group net "g" in
  Array.iter (fun r -> Simnet.join group r) receivers;
  (* Receiver 0's delivered bytes stand for "throughput per receiver". *)
  let send_packet () =
    match strategy with
    | `Unicast ->
        Array.iter (fun r -> Simnet.send net ~src:sender ~dst:r ~size:pkt (Pkt 0)) receivers
    | `Multicast -> Simnet.mcast net ~src:sender group ~size:pkt (Pkt 0)
    | `Pipeline ->
        (* Sender pushes to the first receiver; each forwards to its
           successor (handlers installed below). *)
        Simnet.send net ~src:sender ~dst:receivers.(0) ~size:pkt (Pkt 0)
  in
  if strategy = `Pipeline then
    Array.iteri
      (fun i r ->
        Simnet.set_handler r (fun m ->
            if i + 1 < n_receivers then
              Simnet.send net ~src:r ~dst:receivers.(i + 1) ~size:m.size m.payload))
      receivers;
  (* Offer 1 Gbps of application packets. *)
  let stop =
    Simnet.every net ~period:(float_of_int (pkt * 8) /. 1.0e9) (fun () -> send_packet ())
  in
  Sim.Engine.run engine ~until:2.0;
  stop ();
  let thr =
    Sim.Stats.Rate.mbps (Simnet.recv_rate receivers.(0)) ~from:0.5 ~till:2.0
  in
  let cpu = Util.cpu_pct (Simnet.cpu_busy sender_node) ~from:0.5 ~till:2.0 in
  let sname =
    match strategy with `Unicast -> "unicast" | `Multicast -> "multicast" | `Pipeline -> "pipeline"
  in
  Util.snapshot
    (Sim.Stats.Snapshot.make
       ~rate:(Simnet.recv_rate receivers.(0))
       ~busy:(Simnet.cpu_busy sender_node)
       ~label:(Printf.sprintf "fig3.2/%s/%d" sname n_receivers)
       ~from:0.5 ~till:2.0 ());
  (thr, cpu)

let fig3_2 () =
  Util.header "Fig 3.2 - one-to-many: throughput/receiver (Mbps) and sender CPU (%)";
  Printf.printf "%-10s %10s %10s %10s %10s %10s %10s\n" "receivers" "uni-thr" "uni-cpu"
    "mc-thr" "mc-cpu" "pipe-thr" "pipe-cpu";
  List.iter
    (fun n ->
      let ut, uc = one_to_many `Unicast n in
      let mt, mc = one_to_many `Multicast n in
      let pt, pc = one_to_many `Pipeline n in
      Printf.printf "%-10d %10.0f %10.0f %10.0f %10.0f %10.0f %10.0f\n" n ut uc mt mc pt pc)
    [ 2; 5; 10; 15; 20; 25 ]

(* --- Fig 3.3: multicast loss vs aggregate rate and #senders ---------------- *)

let mcast_loss n_senders rate_mbps =
  let engine, net = Util.fresh () in
  let group = Simnet.new_group net "g" in
  for i = 0 to 13 do
    let nd = Simnet.add_node net (Printf.sprintf "r%d" i) in
    Simnet.join group (Simnet.add_proc net nd (Printf.sprintf "r%d" i))
  done;
  let senders =
    Array.init n_senders (fun i ->
        let nd = Simnet.add_node net (Printf.sprintf "s%d" i) in
        Simnet.add_proc net nd (Printf.sprintf "s%d" i))
  in
  let per_sender = rate_mbps /. float_of_int n_senders in
  let stops =
    Array.map
      (fun s ->
        Simnet.every net ~period:(float_of_int (pkt * 8) /. (per_sender *. 1e6)) (fun () ->
            Simnet.mcast net ~src:s group ~size:pkt (Pkt 0)))
      senders
  in
  Sim.Engine.run engine ~until:2.0;
  Array.iter (fun stop -> stop ()) stops;
  let sent = Simnet.mcast_packets net * 14 in
  if sent = 0 then 0.0
  else 100.0 *. float_of_int (Simnet.switch_drops net) /. float_of_int sent

let fig3_3 () =
  Util.header "Fig 3.3 - ip-multicast loss (%) vs aggregate rate, 14 receivers";
  Printf.printf "%-12s %10s %10s %10s\n" "rate(Mbps)" "1 sender" "2 senders" "5 senders";
  List.iter
    (fun rate ->
      let l1 = mcast_loss 1 rate and l2 = mcast_loss 2 rate and l5 = mcast_loss 5 rate in
      Printf.printf "%-12.0f %10.2f %10.2f %10.2f\n" rate l1 l2 l5;
      List.iter
        (fun (n, loss) ->
          Util.snap
            (Printf.sprintf "fig3.3/%dsenders/%.0fMbps" n rate)
            ~mbps:rate
            ~counters:[ ("loss_basis_points", int_of_float (loss *. 100.0)) ])
        [ (1, l1); (2, l2); (5, l5) ])
    [ 200.0; 400.0; 600.0; 800.0; 850.0; 900.0; 950.0; 1000.0 ]

(* --- Fig 3.4: many-to-one — pipeline vs unicast ----------------------------- *)

let many_to_one strategy size =
  let engine, net = Util.fresh () in
  let coord_node = Simnet.add_node net "coord" in
  let coord = Simnet.add_proc net coord_node "coord" in
  let acc_nodes = Array.init 4 (fun i -> Simnet.add_node net (Printf.sprintf "a%d" i)) in
  let accs = Array.mapi (fun i nd -> Simnet.add_proc net nd (Printf.sprintf "a%d" i)) acc_nodes in
  let receive_count = ref 0 in
  Simnet.set_handler coord (fun _ -> incr receive_count);
  (match strategy with
  | `Unicast -> ()
  | `Pipeline ->
      (* Acceptor i forwards (with batching: sizes accumulate) to i+1; the
         last sends to the coordinator. *)
      Array.iteri
        (fun i a ->
          Simnet.set_handler a (fun m ->
              let dst = if i + 1 < 4 then accs.(i + 1) else coord in
              Simnet.send net ~src:a ~dst ~size:(m.size + size) m.payload))
        accs);
  (* Each acceptor originates messages at its share of 1 Gbps. *)
  let per_acc = 0.9e9 /. 4.0 in
  let origin i =
    match strategy with
    | `Unicast -> Simnet.send net ~src:accs.(i) ~dst:coord ~size (Pkt i)
    | `Pipeline ->
        (* Only the head originates; the body grows along the chain. *)
        if i = 0 then Simnet.send net ~src:accs.(0) ~dst:accs.(1) ~size (Pkt 0)
  in
  let stops =
    Array.init 4 (fun i ->
        Simnet.every net ~period:(float_of_int (size * 8) /. per_acc) (fun () -> origin i))
  in
  Sim.Engine.run engine ~until:2.0;
  Array.iter (fun s -> s ()) stops;
  let thr = Sim.Stats.Rate.mbps (Simnet.recv_rate coord) ~from:0.5 ~till:2.0 in
  let insts = Sim.Stats.Rate.events_per_sec (Simnet.recv_rate coord) ~from:0.5 ~till:2.0 in
  let coord_cpu = Util.cpu_pct (Simnet.cpu_busy coord_node) ~from:0.5 ~till:2.0 in
  let acc_cpu = Util.cpu_pct (Simnet.cpu_busy acc_nodes.(2)) ~from:0.5 ~till:2.0 in
  (thr, insts, coord_cpu, acc_cpu)

let fig3_4 () =
  Util.header "Fig 3.4 - many-to-one: pipeline vs unicast (4 acceptors -> coordinator)";
  Printf.printf "%-8s %-9s %12s %12s %10s %10s\n" "size" "strategy" "thr(Mbps)" "inst/s"
    "coordCPU%" "accCPU%";
  List.iter
    (fun size ->
      List.iter
        (fun (name, s) ->
          let thr, insts, cc, ac = many_to_one s size in
          Printf.printf "%-8d %-9s %12.0f %12.0f %10.0f %10.0f\n" size name thr insts cc ac;
          Util.snap
            (Printf.sprintf "fig3.4/%s/%d" name size)
            ~mbps:thr ~events_per_sec:insts ~cpu_pct:cc)
        [ ("unicast", `Unicast); ("pipeline", `Pipeline) ])
    [ 512; 1024; 2048; 4096; 8192 ]

(* --- protocol throughput helpers (Figs 3.7/3.8, Table 3.2) ------------------ *)

type proto = MRing | URing | Lcr | Libpaxos | Pfsb | SPaxos | Spread

let proto_name = function
  | MRing -> "M-Ring Paxos"
  | URing -> "U-Ring Paxos"
  | Lcr -> "LCR"
  | Libpaxos -> "Libpaxos"
  | Pfsb -> "PFSB"
  | SPaxos -> "S-Paxos"
  | Spread -> "Spread"

let best_size = function
  | MRing -> Abcast.Presets.message_size `Mring
  | URing -> Abcast.Presets.message_size `Uring
  | Lcr -> Abcast.Presets.message_size `Lcr
  | Libpaxos -> Abcast.Presets.message_size `Libpaxos
  | Pfsb -> Abcast.Presets.message_size `Pfsb
  | SPaxos -> Abcast.Presets.message_size `Spaxos
  | Spread -> Abcast.Presets.message_size `Spread

(* One run of [proto] with [n] receivers at the given offered load; returns
   (Mbps per receiver, messages per second, latency ms). *)
let run_proto_at ?(durability = Ringpaxos.Mring.Memory) ?(duration = 1.5) ?msg_size
    ?mring_f ~offered_mbps proto n =
  let engine, net = Util.fresh () in
  let rec_ = Abcast.Recorder.create engine in
  let size = match msg_size with Some s -> s | None -> best_size proto in
  let record_value v = Abcast.Recorder.value rec_ v in
  let stop =
    match proto with
    | MRing ->
        let f = Option.value ~default:Ringpaxos.Mring.default_config.f mring_f in
        let cfg = { Ringpaxos.Mring.default_config with durability; f } in
        let mr =
          Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:(Stdlib.max 1 n)
            ~learner_parts:(fun _ -> [ 0 ])
            ~deliver:(fun ~learner ~inst:_ v ->
              if learner = 0 then Option.iter record_value v)
        in
        let turn = ref 0 in
        Abcast.Loadgen.constant net ~rate_mbps:offered_mbps ~size (fun sz ->
            incr turn;
            ignore (Ringpaxos.Mring.submit mr ~proposer:(!turn land 1) ~size:sz (Pkt 0));
            true)
    | URing ->
        let cfg = { Ringpaxos.Uring.default_config with durability } in
        let n = Stdlib.max 5 n in
        let ur =
          Ringpaxos.Uring.create net cfg ~positions:(Ringpaxos.Uring.standard_positions ~n)
            ~deliver:(fun ~learner ~inst:_ v -> if learner = 0 then record_value v)
        in
        let turn = ref 0 in
        Abcast.Loadgen.constant net ~rate_mbps:offered_mbps ~size (fun sz ->
            incr turn;
            ignore (Ringpaxos.Uring.submit ur ~proposer:(!turn mod n) ~size:sz (Pkt 0));
            true)
    | Lcr ->
        let cfg = { Abcast.Lcr.default_config with n = Stdlib.max 2 n; durability } in
        let lcr =
          Abcast.Lcr.create net cfg ~deliver:(fun ~learner v ->
              if learner = 0 then record_value v)
        in
        let turn = ref 0 in
        Abcast.Loadgen.constant net ~rate_mbps:offered_mbps ~size (fun sz ->
            incr turn;
            Abcast.Lcr.broadcast lcr ~from:(!turn mod cfg.n) ~size:sz (Pkt 0))
    | Libpaxos | Pfsb ->
        let cfg =
          if proto = Libpaxos then Abcast.Presets.libpaxos else Abcast.Presets.pfsb
        in
        let bp =
          Paxos.Basic.create net cfg ~n_acceptors:3 ~n_standby:0 ~n_proposers:1
            ~n_learners:(Stdlib.max 1 n)
            ~deliver:(fun ~learner ~inst:_ v -> if learner = 0 then record_value v)
        in
        Abcast.Loadgen.constant net
          ~rate_mbps:(Stdlib.min offered_mbps 80.0)
          ~size
          (fun sz ->
            ignore (Paxos.Basic.submit bp ~proposer:0 ~size:sz (Pkt 0));
            true)
    | SPaxos ->
        let sp =
          Abcast.Spaxos.create net Abcast.Spaxos.default_config ~deliver:(fun ~learner v ->
              if learner = 0 then record_value v)
        in
        let turn = ref 0 in
        (* S-Paxos saturates its replicas' CPU near ~350 Mbps; over-driving
           it collapses the leader's ordering loop. *)
        Abcast.Loadgen.constant net ~rate_mbps:(Stdlib.min offered_mbps 310.0) ~size (fun sz ->
            incr turn;
            ignore (Abcast.Spaxos.submit sp ~replica:(!turn mod 3) ~size:sz (Pkt 0));
            true)
    | Spread ->
        let tot =
          Abcast.Totem.create net Abcast.Totem.default_config ~deliver:(fun ~learner v ->
              if learner = 0 then record_value v)
        in
        let turn = ref 0 in
        Abcast.Loadgen.constant net ~rate_mbps:(Stdlib.min offered_mbps 400.0) ~size (fun sz ->
            incr turn;
            Abcast.Totem.broadcast tot ~from:(!turn mod 3) ~size:sz (Pkt 0))
  in
  Sim.Engine.run engine ~until:duration;
  stop ();
  let from = duration /. 3.0 in
  ( Abcast.Recorder.mbps rec_ ~from ~till:duration,
    Abcast.Recorder.msgs_per_sec rec_ ~from ~till:duration,
    Abcast.Recorder.lat_trimmed_ms rec_ )

(* Throughput is measured at saturating load; response time in a second run
   at 60 % of the measured peak, as queueing at saturated client buffers
   would otherwise dominate the latency (the paper's latency points are
   taken below the saturation knee). *)
let run_proto ?durability ?duration ?msg_size ?mring_f ?decomp proto n =
  let thr, msgs, _ =
    run_proto_at ?durability ?duration ?msg_size ?mring_f ~offered_mbps:1500.0 proto n
  in
  let lat_run () =
    let _, _, lat =
      run_proto_at ?durability ?duration ?msg_size ?mring_f
        ~offered_mbps:(Stdlib.max 2.0 (0.6 *. thr))
        proto n
    in
    lat
  in
  (* With [decomp] the latency run records into a tracer and the caller
     receives the per-stage breakdown of exactly that run. *)
  let lat =
    match decomp with
    | None -> lat_run ()
    | Some k ->
        Util.traced (fun tr ->
            let lat = lat_run () in
            k tr;
            lat)
  in
  (thr, msgs, lat)

let fig3_7 () =
  Util.header "Fig 3.7 - Ring Paxos vs other protocols: Mbps and msg/s per receiver";
  Printf.printf "%-14s %10s %12s %12s\n" "protocol" "receivers" "thr(Mbps)" "msg/s";
  List.iter
    (fun proto ->
      List.iter
        (fun n ->
          let thr, msgs, _ = run_proto proto n in
          Printf.printf "%-14s %10d %12.1f %12.0f\n" (proto_name proto) n thr msgs;
          Util.snap
            (Printf.sprintf "fig3.7/%s/%d" (proto_name proto) n)
            ~mbps:thr ~events_per_sec:msgs)
        [ 5; 10; 25 ])
    [ MRing; URing; Lcr; SPaxos; Spread; Libpaxos; Pfsb ]

let table3_2 () =
  Util.header "Table 3.2 - protocol efficiency at 10 processes (best message size)";
  Printf.printf "%-14s %10s %12s %12s\n" "protocol" "msg size" "thr(Mbps)" "efficiency";
  List.iter
    (fun proto ->
      let thr, _, _ = run_proto proto 10 in
      Printf.printf "%-14s %10d %12.1f %11.1f%%\n" (proto_name proto) (best_size proto) thr
        (thr /. 1000.0 *. 100.0);
      Util.snap (Printf.sprintf "table3.2/%s" (proto_name proto)) ~mbps:thr)
    [ Lcr; URing; MRing; SPaxos; Spread; Pfsb; Libpaxos ]

let table3_1 () =
  Util.header "Table 3.1 - analytic comparison of atomic broadcast algorithms";
  print_string (Abcast.Analysis.render ())

let fig3_8 () =
  Util.header "Fig 3.8 - throughput and latency vs processes in the ring";
  Printf.printf "%-14s %10s %12s %12s\n" "protocol" "processes" "thr(Mbps)" "lat(ms)";
  List.iter
    (fun (proto, sizes) ->
      List.iter
        (fun n ->
          (* For M-Ring Paxos the x-axis is the ring itself: f+1 = n. *)
          let mring_f = if proto = MRing then Some (n - 1) else None in
          let ctrs = ref [] and lat_tr = ref None in
          let thr, _, lat =
            run_proto ?mring_f
              ~decomp:(fun tr ->
                ctrs := Trace.decomp_counters tr;
                lat_tr := Some tr)
              proto n
          in
          Printf.printf "%-14s %10d %12.1f %12.2f\n" (proto_name proto) n thr lat;
          (* Per-stage breakdown of the latency run (M-Ring only, to keep
             the figure's output readable). *)
          (match !lat_tr with
          | Some tr when proto = MRing -> Trace.print_decomposition tr
          | _ -> ());
          Util.snap
            (Printf.sprintf "fig3.8/%s/%d" (proto_name proto) n)
            ~mbps:thr ~lat_mean:lat ~counters:!ctrs)
        sizes)
    [ (MRing, [ 3; 5; 9; 15 ]);
      (URing, [ 5; 9; 15 ]);
      (Lcr, [ 3; 5; 9; 15 ]);
      (SPaxos, [ 3 ]) ]

let fig3_9 () =
  Util.header "Fig 3.9 - synchronous disk writes: latency vs ring size";
  Printf.printf "%-14s %10s %12s %12s\n" "protocol" "processes" "thr(Mbps)" "lat(ms)";
  List.iter
    (fun (proto, sizes) ->
      List.iter
        (fun n ->
          let mring_f = if proto = MRing then Some (n - 1) else None in
          let thr, _, lat =
            run_proto ~durability:Ringpaxos.Mring.Sync_disk ?mring_f proto n
          in
          Printf.printf "%-14s %10d %12.1f %12.2f\n" (proto_name proto) n thr lat;
          Util.snap
            (Printf.sprintf "fig3.9/%s/%d" (proto_name proto) n)
            ~mbps:thr ~lat_mean:lat)
        sizes)
    [ (MRing, [ 3; 5; 9 ]); (URing, [ 5; 9 ]); (Lcr, [ 3; 5; 9 ]) ];
  Printf.printf "\nLatency CDF with 9 processes in the ring (M-Ring Paxos):\n";
  let engine, net = Util.fresh () in
  let rec_ = Abcast.Recorder.create engine in
  let cfg =
    { Ringpaxos.Mring.default_config with f = 4; durability = Ringpaxos.Mring.Sync_disk }
  in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:1 ~n_learners:1
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ v -> Option.iter (Abcast.Recorder.value rec_) v)
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:100.0 ~size:8192 (fun sz ->
        ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz (Pkt 0));
        true)
  in
  Sim.Engine.run engine ~until:2.0;
  stop ();
  List.iter
    (fun (ms, frac) -> Printf.printf "  %6.2f ms  p%2.0f\n" ms (frac *. 100.0))
    (Abcast.Recorder.lat_cdf rec_ ~points:10)

let fig3_10 () =
  Util.header "Fig 3.10 - message size impact on M-Ring Paxos (8 KB batches)";
  Printf.printf "%-8s %12s %10s %12s %12s\n" "size" "thr(Mbps)" "lat(ms)" "msg/s" "batches/s";
  List.iter
    (fun size ->
      let thr, msgs, lat = run_proto ~msg_size:size MRing 3 in
      let batches = msgs /. Stdlib.max 1.0 (8192.0 /. float_of_int size) in
      Printf.printf "%-8d %12.1f %10.2f %12.0f %12.0f\n" size thr lat msgs batches;
      Util.snap (Printf.sprintf "fig3.10/%d" size) ~mbps:thr ~lat_mean:lat
        ~events_per_sec:msgs)
    [ 200; 1024; 2048; 4096; 8192 ]

let fig3_11 () =
  Util.header "Fig 3.11 - message size impact on U-Ring Paxos (32 KB batches)";
  Printf.printf "%-8s %12s %10s %12s %12s\n" "size" "thr(Mbps)" "lat(ms)" "msg/s" "batches/s";
  List.iter
    (fun size ->
      let thr, msgs, lat = run_proto ~msg_size:size URing 5 in
      let batches = msgs /. Stdlib.max 1.0 (32768.0 /. float_of_int size) in
      Printf.printf "%-8d %12.1f %10.2f %12.0f %12.0f\n" size thr lat msgs batches;
      Util.snap (Printf.sprintf "fig3.11/%d" size) ~mbps:thr ~lat_mean:lat
        ~events_per_sec:msgs)
    [ 200; 1024; 2048; 4096; 8192; 32768 ]

(* --- Figs 3.12/3.13: socket buffer sizes ----------------------------------- *)

let buffer_sweep_at proto buf offered =
      let engine, net = Util.fresh () in
      let rec_ = Abcast.Recorder.create engine in
      let record v = Abcast.Recorder.value rec_ v in
      let stop =
        match proto with
        | `MRing ->
            let mr =
              Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:2
                ~n_learners:2
                ~learner_parts:(fun _ -> [ 0 ])
                ~deliver:(fun ~learner ~inst:_ v -> if learner = 0 then Option.iter record v)
            in
            Array.iter (fun p -> Simnet.set_rcvbuf p buf) (Ringpaxos.Mring.acceptor_procs mr);
            Simnet.set_rcvbuf (Ringpaxos.Mring.learner_proc mr 0) buf;
            Simnet.set_rcvbuf (Ringpaxos.Mring.learner_proc mr 1) buf;
            let turn = ref 0 in
            Abcast.Loadgen.constant net ~rate_mbps:offered ~size:8192 (fun sz ->
                incr turn;
                ignore (Ringpaxos.Mring.submit mr ~proposer:(!turn land 1) ~size:sz (Pkt 0));
                true)
        | `URing ->
            let ur =
              Ringpaxos.Uring.create net Ringpaxos.Uring.default_config
                ~positions:(Ringpaxos.Uring.standard_positions ~n:5)
                ~deliver:(fun ~learner ~inst:_ v -> if learner = 0 then record v)
            in
            for i = 0 to 4 do
              Simnet.set_rcvbuf (Ringpaxos.Uring.position_proc ur i) buf
            done;
            let turn = ref 0 in
            Abcast.Loadgen.constant net ~rate_mbps:offered ~size:8192 (fun sz ->
                incr turn;
                ignore (Ringpaxos.Uring.submit ur ~proposer:(!turn mod 5) ~size:sz (Pkt 0));
                true)
      in
      Sim.Engine.run engine ~until:2.0;
      stop ();
      (Abcast.Recorder.mbps rec_ ~from:0.7 ~till:2.0, Abcast.Recorder.lat_trimmed_ms rec_)

(* Throughput at saturation; latency in a second pass at 60 % of it. *)
let buffer_sweep label proto =
  List.iter
    (fun buf ->
      let thr, _ = buffer_sweep_at proto buf 1500.0 in
      let _, lat = buffer_sweep_at proto buf (Stdlib.max 2.0 (0.6 *. thr)) in
      let bufname =
        if buf >= 1024 * 1024 then Printf.sprintf "%dM" (buf / 1024 / 1024)
        else Printf.sprintf "%dK" (buf / 1024)
      in
      Printf.printf "%-10s %12.1f %10.2f\n" bufname thr lat;
      Util.snap (Printf.sprintf "%s/%s" label bufname) ~mbps:thr ~lat_mean:lat)
    [ 100 * 1024;
      1024 * 1024;
      4 * 1024 * 1024;
      8 * 1024 * 1024;
      16 * 1024 * 1024;
      32 * 1024 * 1024 ]

let fig3_12 () =
  Util.header "Fig 3.12 - socket buffer size impact on M-Ring Paxos";
  Printf.printf "%-10s %12s %10s\n" "buffer" "thr(Mbps)" "lat(ms)";
  buffer_sweep "fig3.12" `MRing

let fig3_13 () =
  Util.header "Fig 3.13 - socket buffer size impact on U-Ring Paxos";
  Printf.printf "%-10s %12s %10s\n" "buffer" "thr(Mbps)" "lat(ms)";
  buffer_sweep "fig3.13" `URing

(* --- Fig 3.14: flow control timeline ---------------------------------------- *)

let fig3_14 () =
  Util.header "Fig 3.14 - M-Ring Paxos flow control";
  let engine, net = Util.fresh () in
  let cfg = { Ringpaxos.Mring.default_config with fc_threshold = 32 } in
  let rates = Array.init 3 (fun _ -> Sim.Stats.Rate.create ()) in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:3
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner ~inst:_ v ->
        match v with
        | Some v ->
            Sim.Stats.Rate.add rates.(learner) ~now:(Sim.Engine.now engine) ~bytes:v.size
        | None -> ())
  in
  (* 850 Mbps aggregate from two learner-proposers. *)
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:850.0 ~size:8192 (fun sz ->
        ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz (Pkt 0));
        ignore (Ringpaxos.Mring.submit mr ~proposer:1 ~size:sz (Pkt 0));
        true)
  in
  ignore (Simnet.after net 10.0 (fun () -> Ringpaxos.Mring.set_learner_delay mr 1 2.0e-3));
  ignore (Simnet.after net 20.0 (fun () -> Ringpaxos.Mring.set_learner_delay mr 1 0.0));
  Sim.Engine.run engine ~until:30.0;
  stop ();
  Printf.printf "(slow learner from t=10s to t=20s)\n";
  Printf.printf "%-6s %12s %12s %12s %10s %10s\n" "t(s)" "lrn0(Mbps)" "slow(Mbps)"
    "lrn2(Mbps)" "window" "drops";
  List.iter
    (fun t ->
      let m i = Sim.Stats.Rate.mbps rates.(i) ~from:(t -. 2.5) ~till:t in
      Printf.printf "%-6.1f %12.1f %12.1f %12.1f %10d %10d\n" t (m 0) (m 1) (m 2)
        (Ringpaxos.Mring.current_window mr)
        (Ringpaxos.Mring.coord_drops mr);
      Util.snap
        (Printf.sprintf "fig3.14/t%.1f" t)
        ~mbps:(m 1)
        ~counters:
          [ ("window", Ringpaxos.Mring.current_window mr);
            ("coord_drops", Ringpaxos.Mring.coord_drops mr) ])
    [ 2.5; 5.0; 7.5; 10.0; 12.5; 15.0; 17.5; 20.0; 22.5; 25.0; 27.5; 30.0 ];
  Util.snap "fig3.14/counters" ~counters:(Ringpaxos.Mring.counters mr)

(* --- Tables 3.3/3.4: CPU and memory per role --------------------------------- *)

let table3_3 () =
  Util.header "Table 3.3 - CPU and memory per role, M-Ring Paxos at peak";
  let engine, net = Util.fresh () in
  let mr =
    Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ _ -> ())
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:1200.0 ~size:8192 (fun sz ->
        ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz (Pkt 0));
        ignore (Ringpaxos.Mring.submit mr ~proposer:1 ~size:sz (Pkt 0));
        true)
  in
  Sim.Engine.run engine ~until:3.0;
  stop ();
  let report role proc =
    let cpu = Util.cpu_pct (Simnet.cpu_busy (Simnet.proc_node proc)) ~from:1.0 ~till:3.0 in
    Printf.printf "%-12s %8.1f%% %10d KB\n" role cpu (Simnet.mem proc / 1024);
    Util.snap
      (Printf.sprintf "table3.3/%s" role)
      ~cpu_pct:cpu
      ~counters:[ ("mem_kb", Simnet.mem proc / 1024) ]
  in
  Printf.printf "%-12s %9s %13s\n" "role" "CPU" "memory";
  report "proposer" (Ringpaxos.Mring.proposer_proc mr 0);
  report "coordinator" (Ringpaxos.Mring.coordinator_proc mr);
  report "acceptor" (Ringpaxos.Mring.acceptor_procs mr).(0);
  report "learner" (Ringpaxos.Mring.learner_proc mr 0);
  Util.snap "table3.3/counters" ~counters:(Ringpaxos.Mring.counters mr)

let table3_4 () =
  Util.header "Table 3.4 - CPU and memory per role, U-Ring Paxos at peak";
  let engine, net = Util.fresh () in
  let ur =
    Ringpaxos.Uring.create net Ringpaxos.Uring.default_config
      ~positions:(Ringpaxos.Uring.standard_positions ~n:5)
      ~deliver:(fun ~learner:_ ~inst:_ _ -> ())
  in
  let turn = ref 0 in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:1200.0 ~size:8192 (fun sz ->
        incr turn;
        ignore (Ringpaxos.Uring.submit ur ~proposer:(!turn mod 5) ~size:sz (Pkt 0));
        true)
  in
  Sim.Engine.run engine ~until:3.0;
  stop ();
  Printf.printf "%-26s %9s\n" "role" "CPU";
  let p = Ringpaxos.Uring.position_proc ur 1 in
  let cpu = Util.cpu_pct (Simnet.cpu_busy (Simnet.proc_node p)) ~from:1.0 ~till:3.0 in
  Printf.printf "%-26s %8.1f%%\n" "proposer-acceptor-learner" cpu;
  Util.snap "table3.4/proposer-acceptor-learner" ~cpu_pct:cpu

let all () =
  fig3_2 ();
  fig3_3 ();
  fig3_4 ();
  table3_1 ();
  fig3_7 ();
  table3_2 ();
  fig3_8 ();
  fig3_9 ();
  fig3_10 ();
  fig3_11 ();
  fig3_12 ();
  fig3_13 ();
  fig3_14 ();
  table3_3 ();
  table3_4 ()
