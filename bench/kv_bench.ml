(* `-- kv`: the replicated KV service end to end — client proxy → batcher
   → Multi-Ring ordered delivery → dependency-aware executor → btree —
   under the YCSB core workloads, with the lease read tier on and off.
   Three slices:

   1. a preset sweep (YCSB A-F) quoting per-class p50/p99/p999;
   2. a leases x workers grid on YCSB-A (update-heavy) and YCSB-C
      (read-only), the headline local-read comparison;
   3. a sustained-throughput ladder on YCSB-C: the highest offered rate
      whose read p99 stays inside a fixed budget, leases on vs off.

   A final verify slice replays a small history-recording run through the
   linearizability checker.  Results go to stdout and BENCH_kv.json; CI
   gates on the leases-on read p99 beating leases-off on YCSB-C, the
   linearizability verdict and a throughput floor. *)

let out_file = "BENCH_kv.json"
let grid_rate = 2_000.0
let until = 1.0
let drain = 0.5
let p99_budget_ms = 5.0
let ladder_rates = [ 1_000.0; 2_000.0; 4_000.0; 8_000.0; 16_000.0; 32_000.0 ]

type run = {
  preset : Kv.Ycsb.preset;
  leases : bool;
  workers : int;
  rate : float;
  issued : int;
  drops : int;
  completed : int;
  ops_per_sec : float;
  local_reads : int;
  local_nacks : int;
  read_p50 : float;  (** worst read class, ms *)
  read_p99 : float;
  read_p999 : float;
  rows : Kv.Slo.row list;
  table : string;
}

(* One open-loop run at a fixed offered rate; the drain window lets every
   deferred write response and read fallback land before meters are read. *)
let run_once ?(seed = 7) ~preset ~leases ~workers ~rate () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  let config = { Kv.default_config with leases; n_workers = workers } in
  let sys = Kv.create net config ~n_clients:4 in
  let wl =
    Kv.Ycsb.workload preset
      (Sim.Rng.create (seed + 1))
      ~rate:(Smr.Workload.Open_loop.Constant rate)
  in
  Kv.start_open sys wl ~until;
  Sim.Engine.run engine ~until:(until +. drain);
  let slo = Kv.slo sys in
  let rows = Kv.Slo.rows slo in
  let completed = List.fold_left (fun a (r : Kv.Slo.row) -> a + r.count) 0 rows in
  (* Read-path tail: the worse of the local and ordered read classes, so a
     lease tier that serves most reads locally cannot hide the latency of
     the reads it strands on the fallback path. *)
  let read_rows =
    List.filter
      (fun (r : Kv.Slo.row) -> r.cls = "read" || r.cls = "read-local")
      rows
  in
  let worst f = List.fold_left (fun a r -> Float.max a (f r)) 0.0 read_rows in
  { preset;
    leases;
    workers;
    rate;
    issued = Kv.issued sys;
    drops = Kv.drops sys;
    completed;
    ops_per_sec = float_of_int completed /. until;
    local_reads = Kv.counter sys "kv_local_reads";
    local_nacks = Kv.counter sys "kv_local_nacks";
    read_p50 = worst (fun r -> r.Kv.Slo.p50_ms);
    read_p99 = worst (fun r -> r.Kv.Slo.p99_ms);
    read_p999 = worst (fun r -> r.Kv.Slo.p999_ms);
    rows;
    table = Kv.Slo.render slo }

let preset_sweep () =
  Util.header
    "YCSB presets (3 replicas, 2 workers, leases on, 2 kops/s offered)";
  List.map
    (fun preset ->
      let r = run_once ~preset ~leases:true ~workers:2 ~rate:grid_rate () in
      Printf.printf "%s — %s  (%.0f ops/s, %d local reads)\n%s\n"
        (Kv.Ycsb.name preset) (Kv.Ycsb.describe preset) r.ops_per_sec
        r.local_reads r.table;
      Util.snap
        (Printf.sprintf "kv/%s" (Kv.Ycsb.name preset))
        ~events_per_sec:r.ops_per_sec
        ~counters:[ ("local_reads", r.local_reads); ("drops", r.drops) ];
      r)
    Kv.Ycsb.all

let grid () =
  Util.header "Lease tier on/off x executor workers (YCSB-A and YCSB-C)";
  Printf.printf "%-7s %-6s %7s %12s %10s %10s %10s %10s\n" "preset" "leases"
    "workers" "ops/s" "local" "nacks" "p99(ms)" "p999(ms)";
  let cells = ref [] in
  List.iter
    (fun preset ->
      List.iter
        (fun leases ->
          List.iter
            (fun workers ->
              let r = run_once ~preset ~leases ~workers ~rate:grid_rate () in
              Printf.printf "%-7s %-6b %7d %12.0f %10d %10d %10.3f %10.3f\n"
                (Kv.Ycsb.name r.preset) r.leases r.workers r.ops_per_sec
                r.local_reads r.local_nacks r.read_p99 r.read_p999;
              Util.snap
                (Printf.sprintf "kv/grid/%s/%s/%dw" (Kv.Ycsb.name preset)
                   (if leases then "leases" else "ordered")
                   workers)
                ~events_per_sec:r.ops_per_sec
                ~counters:[ ("local_reads", r.local_reads) ];
              cells := r :: !cells)
            [ 1; 2; 4 ])
        [ true; false ])
    [ Kv.Ycsb.A; Kv.Ycsb.C ];
  List.rev !cells

(* Walk the offered-rate ladder until the read tail leaves the budget;
   the sustained rate is the last one inside it. *)
let ladder leases =
  let rec go sustained acc = function
    | [] -> (sustained, List.rev acc)
    | rate :: rest ->
        let r = run_once ~preset:Kv.Ycsb.C ~leases ~workers:2 ~rate () in
        Printf.printf "%-7s %12.0f %12.0f %10.3f %10d\n"
          (if leases then "leases" else "ordered")
          rate r.ops_per_sec r.read_p99 r.drops;
        let acc = r :: acc in
        if r.read_p99 <= p99_budget_ms then go rate acc rest
        else (sustained, List.rev acc)
  in
  go 0.0 [] ladder_rates

let verify_slice () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 19) in
  let config =
    { Kv.default_config with
      leases = true;
      lease_dur = 0.05;
      lease_backoff = 0.02;
      read_timeout = 0.05;
      initial_keys = 0;
      key_range = 64;
      record_history = true }
  in
  let sys = Kv.create net config ~n_clients:4 in
  let wl =
    Smr.Workload.Open_loop.create
      ~ops:
        [ (Smr.Workload.Open_loop.Read, 50); (Smr.Workload.Open_loop.Update, 50) ]
      ~dist:(Smr.Workload.Open_loop.Zipf 0.99)
      (Sim.Rng.create 20) ~key_range:64
      ~rate:(Smr.Workload.Open_loop.Constant 300.0)
  in
  Kv.start_open sys wl ~until;
  Sim.Engine.run engine ~until:(until +. drain);
  let lin = Kv.check_history sys in
  let agree =
    let f0 = Kv.state_fingerprint_at sys 0 in
    List.for_all
      (fun r -> Kv.state_fingerprint_at sys r = f0)
      [ 1; 2 ]
  in
  Printf.printf
    "verify: linearizable=%b replicas_agree=%b (%d ops, %d local reads)\n" lin
    agree
    (List.length (Kv.history sys))
    (Kv.counter sys "kv_local_reads");
  (lin, agree)

let json_of_run (r : run) =
  Printf.sprintf
    "{\"preset\":%S,\"leases\":%b,\"workers\":%d,\"offered_rate\":%.0f,\
     \"issued\":%d,\"drops\":%d,\"completed\":%d,\"ops_per_sec\":%.1f,\
     \"local_reads\":%d,\"local_nacks\":%d,\
     \"read_p50_ms\":%.4f,\"read_p99_ms\":%.4f,\"read_p999_ms\":%.4f,\
     \"classes\":[%s]}"
    (Kv.Ycsb.name r.preset) r.leases r.workers r.rate r.issued r.drops
    r.completed r.ops_per_sec r.local_reads r.local_nacks r.read_p50
    r.read_p99 r.read_p999
    (String.concat "," (List.map Kv.Slo.json_row r.rows))

let run () =
  let presets = preset_sweep () in
  let cells = grid () in
  Util.header
    (Printf.sprintf "Sustained YCSB-C throughput at read p99 <= %.1f ms"
       p99_budget_ms);
  Printf.printf "%-7s %12s %12s %10s %10s\n" "tier" "offered" "ops/s"
    "p99(ms)" "drops";
  let sustained_on, ladder_on = ladder true in
  let sustained_off, ladder_off = ladder false in
  Printf.printf
    "sustained at budget: leases on %.0f ops/s, leases off %.0f ops/s\n"
    sustained_on sustained_off;
  let lin, agree = verify_slice () in
  let find ~preset ~leases ~workers =
    List.find
      (fun r -> r.preset = preset && r.leases = leases && r.workers = workers)
      cells
  in
  let c_on = find ~preset:Kv.Ycsb.C ~leases:true ~workers:2 in
  let c_off = find ~preset:Kv.Ycsb.C ~leases:false ~workers:2 in
  let a_on = find ~preset:Kv.Ycsb.A ~leases:true ~workers:2 in
  (* The lease-served class alone, free of the startup transient (the few
     reads issued before the first grants land go ordered and would
     otherwise dominate the leases-on p99). *)
  let local_p99 =
    match List.find_opt (fun (r : Kv.Slo.row) -> r.cls = "read-local") c_on.rows with
    | Some r -> r.p99_ms
    | None -> nan
  in
  Printf.printf
    "YCSB-C read p99: %.3f ms with leases vs %.3f ms ordered (%.0f%% local)\n"
    c_on.read_p99 c_off.read_p99
    (100.0
    *. float_of_int c_on.local_reads
    /. float_of_int (max 1 c_on.completed));
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\n\
     \"bench\":\"kv\",\n\
     \"offered_rate_grid\":%.0f,\n\
     \"p99_budget_ms\":%.1f,\n\
     \"presets\":[\n%s\n],\n\
     \"grid\":[\n%s\n],\n\
     \"ladder\":[\n%s\n],\n\
     \"summary\":{\"ycsb_c_leases_on_read_p99_ms\":%.4f,\
     \"ycsb_c_leases_off_read_p99_ms\":%.4f,\
     \"ycsb_c_local_read_p99_ms\":%.4f,\
     \"ycsb_c_local_read_fraction\":%.4f,\
     \"ycsb_a_ops_per_sec\":%.1f,\
     \"sustained_ops_leases_on\":%.0f,\
     \"sustained_ops_leases_off\":%.0f,\
     \"linearizable\":%b,\"replicas_agree\":%b}\n\
     }\n"
    grid_rate p99_budget_ms
    (String.concat ",\n" (List.map json_of_run presets))
    (String.concat ",\n" (List.map json_of_run cells))
    (String.concat ",\n" (List.map json_of_run (ladder_on @ ladder_off)))
    c_on.read_p99 c_off.read_p99 local_p99
    (float_of_int c_on.local_reads /. float_of_int (max 1 c_on.completed))
    a_on.ops_per_sec sustained_on sustained_off lin agree;
  close_out oc;
  Printf.printf "wrote %s\n%!" out_file
