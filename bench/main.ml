(* Experiment harness: regenerates every table and figure of the paper's
   evaluation sections.  Run `dune exec bench/main.exe -- list` to see all
   experiment ids, `-- <id>` for one, or no argument for everything. *)

let experiments : (string * string * (unit -> unit)) list =
  [ ("fig3.2", "one-to-many: unicast vs multicast vs pipeline", Fig3.fig3_2);
    ("fig3.3", "multicast loss vs senders", Fig3.fig3_3);
    ("fig3.4", "many-to-one: pipeline vs unicast", Fig3.fig3_4);
    ("table3.1", "analytic protocol comparison", Fig3.table3_1);
    ("fig3.7", "Ring Paxos vs other protocols", Fig3.fig3_7);
    ("table3.2", "protocol efficiency", Fig3.table3_2);
    ("fig3.8", "ring size impact", Fig3.fig3_8);
    ("fig3.9", "synchronous disk writes", Fig3.fig3_9);
    ("fig3.10", "message size: M-Ring Paxos", Fig3.fig3_10);
    ("fig3.11", "message size: U-Ring Paxos", Fig3.fig3_11);
    ("fig3.12", "socket buffers: M-Ring Paxos", Fig3.fig3_12);
    ("fig3.13", "socket buffers: U-Ring Paxos", Fig3.fig3_13);
    ("fig3.14", "flow control timeline", Fig3.fig3_14);
    ("table3.3", "CPU/memory per role: M-Ring", Fig3.table3_3);
    ("table3.4", "CPU/memory per role: U-Ring", Fig3.table3_4);
    ("fig4.3", "cost of replication (CS vs SMR)", Fig4.fig4_3);
    ("fig4.4", "CS vs SMR, 1-8 replicas", Fig4.fig4_4);
    ("fig4.5", "speculation: queries", Fig4.fig4_5);
    ("fig4.6", "speculation: batched updates", Fig4.fig4_6);
    ("fig4.7", "state partitioning", Fig4.fig4_7);
    ("fig4.8", "cross-partition queries, 2 replicas", Fig4.fig4_8);
    ("fig4.9", "cross-partition queries, 3 replicas", Fig4.fig4_9);
    ("fig4.10", "speculation + partitioning", Fig4.fig4_10);
    ("fig5.1", "in-memory vs recoverable Ring Paxos", Fig5.fig5_1);
    ("fig5.2", "one ring does not scale with partitions", Fig5.fig5_2);
    ("fig5.4", "Multi-Ring scalability", Fig5.fig5_4);
    ("fig5.5", "learner subscribing to all groups", Fig5.fig5_5);
    ("fig5.5b", "ablation: gamma groups over delta rings", Fig5.fig5_5b);
    ("fig5.6", "impact of Delta", Fig5.fig5_6);
    ("fig5.7", "impact of M", Fig5.fig5_7);
    ("fig5.8", "impact of lambda: equal rates", Fig5.fig5_8);
    ("fig5.9", "impact of lambda: skewed rates", Fig5.fig5_9);
    ("fig5.10", "impact of lambda: oscillating rates", Fig5.fig5_10);
    ("fig5.11", "ring coordinator failure", Fig5.fig5_11);
    ("table6.1", "parallel SMR approaches", Fig6.table6_1);
    ("fig6.3", "P-SMR: independent commands", Fig6.fig6_3);
    ("fig6.4", "P-SMR: dependent commands", Fig6.fig6_4);
    ("fig6.5", "P-SMR: mixed workloads", Fig6.fig6_5);
    ("fig6.6", "P-SMR: scalability, uniform", Fig6.fig6_6);
    ("fig6.7", "P-SMR: scalability, skewed", Fig6.fig6_7);
    ("table7.1", "cloud configurations", Fig7.table7_1);
    ("fig7.2", "cloud peak performance", Fig7.fig7_2);
    ("fig7.3", "S-Paxos under failures", Fig7.fig7_3);
    ("fig7.4", "OpenReplica under failures", Fig7.fig7_4);
    ("fig7.5", "U-Ring Paxos under failures", Fig7.fig7_5);
    ("fig7.6", "Libpaxos under failures", Fig7.fig7_6);
    ("fig7.7", "Libpaxos+ under failures", Fig7.fig7_7);
    ("micro", "bechamel micro-benchmarks", Micro.run);
    ("engine", "event-engine microbench, wheel vs heap (emits BENCH_engine.json)",
     Engine_bench.run);
    ("psmr",
     "parallel-executor sweep, conflict rate x workers (emits BENCH_psmr.json)",
     Psmr_bench.run);
    ("kv",
     "replicated KV + lease read tier, YCSB presets (emits BENCH_kv.json)",
     Kv_bench.run) ]

let list_experiments () =
  Printf.printf "%-10s %s\n" "id" "description";
  List.iter (fun (id, descr, _) -> Printf.printf "%-10s %s\n" id descr) experiments

let run_one id =
  match List.find_opt (fun (id', _, _) -> id' = id) experiments with
  | Some (_, _, f) ->
      f ();
      flush stdout
  | None ->
      Printf.eprintf "unknown experiment %S; try `list`\n" id;
      exit 1

let chapters =
  [ ("ch3", Fig3.all); ("ch4", Fig4.all); ("ch5", Fig5.all); ("ch6", Fig6.all);
    ("ch7", Fig7.all) ]

(* Strip `--json <path>` (machine-readable metrics dump), `--trace <path>`
   (Chrome trace_event capture), `--engine <wheel|heap>` (event-queue
   backend selection) and `--simnet <pooled|boxed>` (message-path mode)
   from the argument list before experiment dispatch. *)
let rec extract_output_flags = function
  | [] -> []
  | [ "--json" ] ->
      prerr_endline "--json requires a file path";
      exit 1
  | "--json" :: path :: rest ->
      Util.set_json_output path;
      extract_output_flags rest
  | [ "--trace" ] ->
      prerr_endline "--trace requires a file path";
      exit 1
  | "--trace" :: path :: rest ->
      Util.set_trace_output path;
      extract_output_flags rest
  | [ "--engine" ] ->
      prerr_endline "--engine requires a backend (wheel|heap)";
      exit 1
  | "--engine" :: b :: rest ->
      Sim.Engine.set_default_backend (Sim.Engine.backend_of_string b);
      extract_output_flags rest
  | [ "--simnet" ] ->
      prerr_endline "--simnet requires a mode (pooled|boxed)";
      exit 1
  | "--simnet" :: m :: rest ->
      Simnet.set_default_mode (Simnet.mode_of_string m);
      extract_output_flags rest
  | a :: rest -> a :: extract_output_flags rest

let () =
  (match extract_output_flags (List.tl (Array.to_list Sys.argv)) with
  (* `chaos` owns the rest of the argument list (seeded fault schedules
     with per-run verdicts; see lib/fault). *)
  | "chaos" :: rest -> Chaos_cmd.run rest
  | [] | [ "all" ] ->
      List.iter
        (fun (id, _, f) ->
          ignore id;
          f ();
          flush stdout)
        experiments
  | [ "list" ] -> list_experiments ()
  | args ->
      List.iter
        (fun a ->
          match List.assoc_opt a chapters with
          | Some f ->
              f ();
              flush stdout
          | None -> run_one a)
        args);
  Util.write_json ();
  Util.write_trace ()
