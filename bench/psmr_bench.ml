(* `-- psmr`: dependency-aware parallel executor sweep (conflict rate x
   worker count, pessimistic and optimistic modes), against a sequential
   baseline executing the same command stream.  The executor is driven
   directly (self-clocked, no network) so the sweep isolates scheduling:
   speedup, rollback/conflict counters, commit-latency percentiles and a
   state-fingerprint check against the sequential reference.  A final
   end-to-end slice runs the executor approaches behind Multi-Ring Paxos,
   closed- and open-loop.  Results go to stdout and BENCH_psmr.json; CI
   gates on the low-conflict speedup and the state check. *)

let out_file = "BENCH_psmr.json"
let n_commands = 20_000
let n_hot_keys = 8
let window = 256 (* outstanding commands: self-clocked pacing *)

type cell = {
  mode : string;
  n_workers : int;
  conflict_pct : int;
  commands : int;
  makespan : float;
  speedup : float;
  rollbacks : int;
  conflicts : int;
  p50_ms : float;
  p99_ms : float;
  util_pct : float;
  state_match : bool;
}

(* A command stream with a tunable conflict rate: [conflict_pct] of the
   commands hit one of a few hot keys (read-modify-write, so they
   conflict with each other); the rest touch a key no other command
   uses. *)
let gen_stream ~seed ~n ~conflict_pct =
  let rng = Sim.Rng.create seed in
  Array.init n (fun i ->
      if Sim.Rng.int rng 100 < conflict_pct then 1 + Sim.Rng.int rng n_hot_keys
      else 1 + n_hot_keys + i)

type run_result = {
  rr_makespan : float;
  rr_rollbacks : int;
  rr_conflicts : int;
  rr_p50 : float;
  rr_p99 : float;
  rr_util : float;
  rr_fingerprint : int;
}

(* Feed the stream self-clocked: command i is submitted when command
   i - window committed, so the executor stays saturated with a bounded
   outstanding set in every configuration. *)
let run_stream ~mode ~n_workers stream =
  let svc = Smr.Btree_service.create ~initial_keys:1_000 ~key_range:1_000_000 ~seed:1 () in
  let ex = Psmr.Executor.create ~mode ~n_workers svc.Smr.Btree_service.service in
  let n = Array.length stream in
  let commits = Array.make n 0.0 in
  let lat = Sim.Stats.Latency.create () in
  Array.iteri
    (fun i key ->
      let now = if i < window then 0.0 else commits.(i - window) in
      let ks = Btree.Keyset.singleton key in
      let r =
        Psmr.Executor.submit ex ~now ~uid:i ~reads:ks ~writes:ks
          (Smr.Btree_service.Insert { key; value = i })
      in
      commits.(i) <- r.Psmr.Executor.r_commit;
      Sim.Stats.Latency.add lat (r.Psmr.Executor.r_commit -. now))
    stream;
  let makespan = Psmr.Executor.last_commit ex in
  { rr_makespan = makespan;
    rr_rollbacks = Psmr.Executor.rollbacks ex;
    rr_conflicts = Psmr.Executor.conflicts ex;
    rr_p50 = Sim.Stats.Latency.percentile lat 0.50 *. 1e3;
    rr_p99 = Sim.Stats.Latency.percentile lat 0.99 *. 1e3;
    rr_util = Psmr.Executor.utilization ex ~from:0.0 ~till:makespan;
    rr_fingerprint = Smr.Btree_service.fingerprint svc }

let mode_name = function
  | Psmr.Executor.Pessimistic -> "pessimistic"
  | Psmr.Executor.Optimistic -> "optimistic"

let sweep () =
  let cells = ref [] in
  List.iter
    (fun conflict_pct ->
      let stream = gen_stream ~seed:42 ~n:n_commands ~conflict_pct in
      let seq = run_stream ~mode:Psmr.Executor.Pessimistic ~n_workers:1 stream in
      List.iter
        (fun mode ->
          List.iter
            (fun n_workers ->
              let r = run_stream ~mode ~n_workers stream in
              cells :=
                { mode = mode_name mode;
                  n_workers;
                  conflict_pct;
                  commands = n_commands;
                  makespan = r.rr_makespan;
                  speedup = seq.rr_makespan /. r.rr_makespan;
                  rollbacks = r.rr_rollbacks;
                  conflicts = r.rr_conflicts;
                  p50_ms = r.rr_p50;
                  p99_ms = r.rr_p99;
                  util_pct = r.rr_util;
                  state_match = r.rr_fingerprint = seq.rr_fingerprint }
                :: !cells)
            [ 1; 2; 4; 8 ])
        [ Psmr.Executor.Pessimistic; Psmr.Executor.Optimistic ])
    [ 0; 10; 25; 50 ];
  List.rev !cells

(* Rollback determinism and state safety across seeds: same seed => same
   rollback count; every mode/worker combination ends with the byte-same
   tree as the sequential reference. *)
let seed_checks () =
  let ok = ref true and det = ref true in
  List.iter
    (fun seed ->
      List.iter
        (fun conflict_pct ->
          let stream = gen_stream ~seed ~n:5_000 ~conflict_pct in
          let seq = run_stream ~mode:Psmr.Executor.Pessimistic ~n_workers:1 stream in
          List.iter
            (fun mode ->
              let a = run_stream ~mode ~n_workers:4 stream in
              let b = run_stream ~mode ~n_workers:4 stream in
              if a.rr_fingerprint <> seq.rr_fingerprint then ok := false;
              if a.rr_rollbacks <> b.rr_rollbacks then det := false)
            [ Psmr.Executor.Pessimistic; Psmr.Executor.Optimistic ])
        [ 0; 10; 50 ])
    [ 1; 2; 3 ];
  (!ok, !det)

(* End-to-end: the executor approaches behind Multi-Ring Paxos.  One
   closed-loop run per approach, plus an open-loop run driven by the
   zipf/rate-curve workload generator. *)
let end_to_end () =
  Util.header "End-to-end (Multi-Ring Paxos + executor replicas)";
  Printf.printf "%-12s %-6s %10s %10s %10s %10s\n" "approach" "loop" "kcps"
    "lat(ms)" "rollbacks" "drops";
  let duration = 0.4 and warm = 0.15 in
  let e2e approach name =
    let engine, net = Util.fresh ~seed:11 () in
    let rng = Sim.Rng.create 12 in
    let gen _ =
      { Psmr.obj = Sim.Rng.int rng 4096;
        dependent = Sim.Rng.int rng 100 < 5;
        size = 128 }
    in
    let config = { Psmr.default_config with approach; exec_cost = 2.0e-5 } in
    let sys = Psmr.create net config ~n_clients:64 ~gen in
    Psmr.start sys;
    Sim.Engine.run engine ~until:duration;
    let m = Psmr.metrics sys in
    let kcps = Smr.Metrics.kcps m ~from:warm ~till:duration in
    let lat = Smr.Metrics.lat_mean_ms m in
    Printf.printf "%-12s %-6s %10.1f %10.2f %10d %10s\n" name "closed" kcps lat
      (Psmr.rollbacks sys) "-";
    Util.snap (Printf.sprintf "psmr/e2e/%s/closed" name)
      ~events_per_sec:(kcps *. 1000.0) ~lat_mean:lat;
    (kcps, Psmr.rollbacks sys)
  in
  let dep_kcps, _ = e2e Psmr.Depaware "depaware" in
  let opt_kcps, opt_rb = e2e Psmr.Optimistic "optimistic" in
  (* Open loop: a diurnal rate curve with a hot-key storm in the middle,
     standing in for an uncontrolled client population. *)
  let engine, net = Util.fresh ~seed:11 () in
  let config = { Psmr.default_config with approach = Psmr.Optimistic; exec_cost = 2.0e-5 } in
  let sys =
    Psmr.create net config ~n_clients:64 ~gen:(fun _ ->
        { Psmr.obj = 0; dependent = false; size = 128 })
  in
  let wl =
    Smr.Workload.Open_loop.create ~zipf_s:0.8 ~read_pct:30
      ~hot_storm:(0.15, 0.1, 60)
      (Sim.Rng.create 21) ~key_range:1_000_000
      ~rate:(Smr.Workload.Open_loop.Diurnal { base = 20_000.0; peak = 40_000.0; period = 0.4 })
  in
  Psmr.start_open sys wl ~until:duration;
  Sim.Engine.run engine ~until:(duration +. 0.1);
  let m = Psmr.metrics sys in
  let ol_kcps = Smr.Metrics.kcps m ~from:warm ~till:duration in
  let ol_lat = Smr.Metrics.lat_mean_ms m in
  Printf.printf "%-12s %-6s %10.1f %10.2f %10d %10d\n" "optimistic" "open"
    ol_kcps ol_lat (Psmr.rollbacks sys) (Psmr.open_drops sys);
  Util.snap "psmr/e2e/optimistic/open" ~events_per_sec:(ol_kcps *. 1000.0)
    ~lat_mean:ol_lat;
  (dep_kcps, opt_kcps, opt_rb, ol_kcps)

let json_of_cell c =
  Printf.sprintf
    "{\"mode\":%S,\"workers\":%d,\"conflict_pct\":%d,\"commands\":%d,\
     \"makespan_s\":%.6f,\"speedup\":%.3f,\"rollbacks\":%d,\"conflicts\":%d,\
     \"p50_ms\":%.4f,\"p99_ms\":%.4f,\"util_pct\":%.1f,\"state_match\":%b}"
    c.mode c.n_workers c.conflict_pct c.commands c.makespan c.speedup
    c.rollbacks c.conflicts c.p50_ms c.p99_ms c.util_pct c.state_match

let run () =
  Util.header
    "P-SMR executor sweep (speedup vs sequential, rollbacks, p50/p99 ms)";
  let cells = sweep () in
  Printf.printf "%-12s %7s %9s %9s %9s %9s %9s %9s %6s\n" "mode" "workers"
    "conflict%" "speedup" "rollback" "p50(ms)" "p99(ms)" "util%" "state";
  List.iter
    (fun c ->
      Printf.printf "%-12s %7d %9d %9.2f %9d %9.3f %9.3f %9.1f %6s\n" c.mode
        c.n_workers c.conflict_pct c.speedup c.rollbacks c.p50_ms c.p99_ms
        c.util_pct
        (if c.state_match then "ok" else "DIVERGED");
      Util.snap
        (Printf.sprintf "psmr/%s/%dw/%dpct" c.mode c.n_workers c.conflict_pct)
        ~events_per_sec:(float_of_int c.commands /. c.makespan)
        ~counters:
          [ ("rollbacks", c.rollbacks); ("conflicts", c.conflicts);
            ("state_match", if c.state_match then 1 else 0) ])
    cells;
  let find mode workers pct =
    List.find
      (fun c -> c.mode = mode && c.n_workers = workers && c.conflict_pct = pct)
      cells
  in
  let pess = find "pessimistic" 4 10 and opt = find "optimistic" 4 10 in
  let opt50 = find "optimistic" 4 50 in
  let states_ok, det_ok = seed_checks () in
  let all_match = List.for_all (fun c -> c.state_match) cells && states_ok in
  Printf.printf
    "\n4-worker speedup at 10%% conflict: pessimistic %.2fx, optimistic %.2fx\n"
    pess.speedup opt.speedup;
  Printf.printf "optimistic rollback rate at 50%% conflict: %.3f\n"
    (float_of_int opt50.rollbacks /. float_of_int opt50.commands);
  Printf.printf "state matches sequential on every cell/seed: %b\n" all_match;
  Printf.printf "rollback counts deterministic by seed: %b\n" det_ok;
  let dep_kcps, opt_kcps, e2e_rb, ol_kcps = end_to_end () in
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\n\
     \"bench\":\"psmr\",\n\
     \"commands_per_cell\":%d,\n\
     \"samples\":[\n\
     %s\n\
     ],\n\
     \"summary\":{\"pessimistic_speedup_4w_low_conflict\":%.3f,\
     \"optimistic_speedup_4w_low_conflict\":%.3f,\
     \"optimistic_rollback_rate_high_conflict\":%.4f,\
     \"optimistic_rollbacks_high_conflict\":%d,\
     \"optimistic_conflicts_high_conflict\":%d,\
     \"optimistic_state_matches_sequential\":%b,\
     \"rollbacks_deterministic\":%b,\
     \"e2e_depaware_kcps\":%.1f,\"e2e_optimistic_kcps\":%.1f,\
     \"e2e_rollbacks\":%d,\"e2e_openloop_kcps\":%.1f}\n\
     }\n"
    n_commands
    (String.concat ",\n" (List.map json_of_cell cells))
    pess.speedup opt.speedup
    (float_of_int opt50.rollbacks /. float_of_int opt50.commands)
    opt50.rollbacks opt50.conflicts all_match det_ok dep_kcps opt_kcps e2e_rb
    ol_kcps;
  close_out oc;
  Printf.printf "wrote %s\n%!" out_file
