(* Chapter 4 experiments: the cost of replication, speculative execution and
   state partitioning over the replicated B+-tree service. *)

module W = Smr.Workload
module BS = Smr.Btree_service

let key_range = 100_000
let query_span = 1000
let duration = 1.2
let warm = 0.5

(* One service per replica, holding only its partition's keys (dense
   population, as in the paper's 12M-key trees). *)
let dense_service ~n_parts p =
  let bs = BS.create () in
  let plo = (p * (key_range + 1) / n_parts) + if p = 0 then 1 else 0 in
  let phi = ((p + 1) * (key_range + 1) / n_parts) - 1 in
  for k = Stdlib.max 1 plo to phi do
    ignore (Btree.insert bs.tree k k)
  done;
  bs

let run_cs kind clients =
  let engine, net = Util.fresh () in
  let wl = W.create ~query_span (Sim.Rng.create 5) kind ~key_range ~n_partitions:1 in
  let bs = dense_service ~n_parts:1 0 in
  let cs =
    Smr.Cs.create net ~n_threads:1 ~service:bs.service ~n_clients:clients
      ~gen:(fun _ -> W.next wl)
  in
  Smr.Cs.start cs;
  Sim.Engine.run engine ~until:duration;
  let m = Smr.Cs.metrics cs in
  (Smr.Metrics.kcps m ~from:warm ~till:duration, Smr.Metrics.lat_mean_ms m)

let run_smr ?(partitions = 1) ?(replicas = 1) ?(speculative = false) ?(cross_pct = 0)
    ?(batch = true) kind clients =
  let engine, net = Util.fresh () in
  let wl =
    W.create ~cross_pct ~query_span (Sim.Rng.create 5) kind ~key_range
      ~n_partitions:partitions
  in
  let services =
    Array.init (partitions * replicas) (fun l -> dense_service ~n_parts:partitions (l / replicas))
  in
  let mring =
    { Ringpaxos.Mring.default_config with
      partitions;
      batch_bytes = (if batch then 8192 else 0) }
  in
  let cfg =
    { Smr.System.default_config with mring; replicas_per_partition = replicas; speculative }
  in
  let sys =
    Smr.System.create net cfg
      ~services:(fun l -> services.(l).service)
      ~n_clients:clients
      ~gen:(fun _ -> W.next wl)
  in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:duration;
  let m = Smr.System.metrics sys in
  (Smr.Metrics.kcps m ~from:warm ~till:duration, Smr.Metrics.lat_mean_ms m, sys)

let workloads =
  [ ("Queries", W.Queries, true);
    ("Ins/Del(single)", W.Ins_del_single, false);
    ("Ins/Del(batch)", W.Ins_del_batch, true) ]

let fig4_3 () =
  Util.header "Fig 4.1/4.3 - client-server (CS) vs SMR: Kcps and latency (ms)";
  Printf.printf "%-16s %8s %10s %10s %10s %10s\n" "workload" "clients" "CS-kcps" "CS-lat"
    "SMR-kcps" "SMR-lat";
  List.iter
    (fun (name, kind, batch) ->
      List.iter
        (fun c ->
          let ck, cl = run_cs kind c in
          let sk, sl, _ = run_smr ~batch kind c in
          Printf.printf "%-16s %8d %10.1f %10.2f %10.1f %10.2f\n" name c ck cl sk sl;
          Util.snap (Printf.sprintf "fig4.3/%s/cs/%d" name c)
            ~events_per_sec:(ck *. 1000.0) ~lat_mean:cl;
          Util.snap (Printf.sprintf "fig4.3/%s/smr/%d" name c)
            ~events_per_sec:(sk *. 1000.0) ~lat_mean:sl)
        [ 4; 40; 160 ])
    workloads

let fig4_4 () =
  Util.header "Fig 4.4 - CS vs SMR with 1/2/4/8 replicas (120 clients)";
  Printf.printf "%-16s %10s %10s %10s\n" "workload" "replicas" "kcps" "lat(ms)";
  List.iter
    (fun (name, kind, batch) ->
      let ck, cl = run_cs kind 120 in
      Printf.printf "%-16s %10s %10.1f %10.2f\n" name "CS" ck cl;
      Util.snap (Printf.sprintf "fig4.4/%s/cs" name) ~events_per_sec:(ck *. 1000.0)
        ~lat_mean:cl;
      List.iter
        (fun r ->
          let sk, sl, _ = run_smr ~replicas:r ~batch kind 120 in
          Printf.printf "%-16s %10d %10.1f %10.2f\n" name r sk sl;
          Util.snap (Printf.sprintf "fig4.4/%s/%dreplicas" name r)
            ~events_per_sec:(sk *. 1000.0) ~lat_mean:sl)
        [ 1; 2; 4; 8 ])
    workloads

let spec_sweep label kind clients_list =
  Printf.printf "%-9s %8s %12s %12s %12s %12s\n" "replicas" "clients" "smr-kcps" "smr-lat"
    "spec-kcps" "spec-lat";
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          (* Each variant runs under its own tracer so the --json rows
             carry the per-stage latency decomposition of that run. *)
          let sctrs = ref [] and pctrs = ref [] in
          let sk, sl, _ =
            Util.traced (fun tr ->
                let res = run_smr ~replicas:r kind c in
                sctrs := Trace.decomp_counters tr;
                res)
          in
          let pk, pl, _ =
            Util.traced (fun tr ->
                let res = run_smr ~replicas:r ~speculative:true kind c in
                pctrs := Trace.decomp_counters tr;
                res)
          in
          Printf.printf "%-9d %8d %12.1f %12.2f %12.1f %12.2f\n" r c sk sl pk pl;
          Util.snap (Printf.sprintf "%s/smr/%dr/%dc" label r c)
            ~events_per_sec:(sk *. 1000.0) ~lat_mean:sl ~counters:!sctrs;
          Util.snap (Printf.sprintf "%s/spec/%dr/%dc" label r c)
            ~events_per_sec:(pk *. 1000.0) ~lat_mean:pl ~counters:!pctrs)
        clients_list)
    [ 1; 2; 4; 8 ]

let fig4_5 () =
  Util.header "Fig 4.5 - speculative execution, Queries workload";
  spec_sweep "fig4.5" W.Queries [ 4; 40 ]

let fig4_6 () =
  Util.header "Fig 4.6 - speculative execution, Ins/Del (batch) workload";
  spec_sweep "fig4.6" W.Ins_del_batch [ 20; 160 ]

let fig4_7 () =
  Util.header "Fig 4.7 - state partitioning (2 replicas/partition, no cross-partition)";
  Printf.printf "%-16s %12s %10s %10s %10s\n" "workload" "partitions" "kcps" "lat(ms)"
    "speedup";
  (* Enough clients to saturate even the 4-partition deployments. *)
  List.iter
    (fun (name, kind, clients) ->
      let base, _, _ = run_smr ~replicas:2 kind clients in
      List.iter
        (fun p ->
          let k, l, _ = run_smr ~partitions:p ~replicas:2 kind clients in
          Printf.printf "%-16s %12d %10.1f %10.2f %9.1fx\n" name p k l (k /. base);
          Util.snap (Printf.sprintf "fig4.7/%s/%dparts" name p)
            ~events_per_sec:(k *. 1000.0) ~lat_mean:l)
        [ 1; 2; 4 ])
    [ ("Queries", W.Queries, 160); ("Ins/Del(batch)", W.Ins_del_batch, 500) ]

let cross_partition_figure label ~replicas =
  Printf.printf "%-8s %8s %10s %10s %12s %12s\n" "cross%" "clients" "kcps" "lat(ms)"
    "execCPU%" "respCPU%";
  List.iter
    (fun cross ->
      List.iter
        (fun c ->
          let k, l, sys = run_smr ~partitions:2 ~replicas ~cross_pct:cross W.Queries c in
          let exec = Smr.System.exec_utilization sys ~learner:0 ~from:warm ~till:duration in
          let resp =
            Util.cpu_pct
              (Simnet.cpu_busy (Simnet.proc_node (Smr.System.replica_proc sys ~learner:0)))
              ~from:warm ~till:duration
          in
          Printf.printf "%-8d %8d %10.1f %10.2f %12.1f %12.1f\n" cross c k l exec resp;
          Util.snap (Printf.sprintf "%s/%dcross/%dc" label cross c)
            ~events_per_sec:(k *. 1000.0) ~lat_mean:l ~cpu_pct:exec)
        [ 60; 200 ])
    [ 0; 25; 50; 75; 100 ]

let fig4_8 () =
  Util.header "Fig 4.8 - cross-partition queries, 2 partitions x 2 replicas";
  cross_partition_figure "fig4.8" ~replicas:2

let fig4_9 () =
  Util.header "Fig 4.9 - cross-partition queries, 2 partitions x 3 replicas";
  cross_partition_figure "fig4.9" ~replicas:3

let fig4_10 () =
  (* Moderate load: at saturation the executor queue dwarfs the ordering
     delay and speculation has no window of opportunity (§4.2.1). *)
  Util.header "Fig 4.10 - speculation + partitioning (2x2, Queries, 24 clients)";
  Printf.printf "%-8s %14s %14s %12s %12s\n" "cross%" "plain-kcps" "spec-kcps" "d-thr(%)"
    "d-lat(%)";
  List.iter
    (fun cross ->
      let k0, l0, _ = run_smr ~partitions:2 ~replicas:2 ~cross_pct:cross W.Queries 24 in
      let k1, l1, _ =
        run_smr ~partitions:2 ~replicas:2 ~cross_pct:cross ~speculative:true W.Queries 24
      in
      Printf.printf "%-8d %14.1f %14.1f %12.1f %12.1f\n" cross k0 k1
        ((k1 -. k0) /. k0 *. 100.0)
        ((l0 -. l1) /. l0 *. 100.0);
      Util.snap (Printf.sprintf "fig4.10/plain/%dcross" cross)
        ~events_per_sec:(k0 *. 1000.0) ~lat_mean:l0;
      Util.snap (Printf.sprintf "fig4.10/spec/%dcross" cross)
        ~events_per_sec:(k1 *. 1000.0) ~lat_mean:l1)
    [ 0; 25; 50; 75; 100 ]

let all () =
  fig4_3 ();
  fig4_4 ();
  fig4_5 ();
  fig4_6 ();
  fig4_7 ();
  fig4_8 ();
  fig4_9 ();
  fig4_10 ()
