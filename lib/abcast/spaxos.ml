type config = {
  f : int;
  batch_bytes : int;
  batch_timeout : float;
  window : int;
  cpu_per_batch : float;
  gc_pause_every : float;
  gc_pause : float;
  hb_period : float;
  hb_timeout : float;
}

let default_config =
  { f = 1;
    batch_bytes = 32 * 1024;
    batch_timeout = 5.0e-4;
    window = 64;
    cpu_per_batch = 3.0e-4;
    gc_pause_every = 0.4;
    gc_pause = 0.03;
    hb_period = 0.02;
    hb_timeout = 0.25 }

let hdr = 64

type bid = int * int (* replica, seq *)

type Simnet.payload +=
  | Request of Paxos.Value.item
  | Forward of { bid : bid; value : Paxos.Value.t }
  | BatchAck of { bid : bid; from : int }
  | Order2a of { inst : int; rnd : int; bid : bid }
  | Order2b of { inst : int; rnd : int; from : int }
  | OrderDec of { inst : int; bid : bid }
  | SHb of { from : int }

type batch_info = {
  mutable b_value : Paxos.Value.t option;
  b_ackers : (int, unit) Hashtbl.t;  (* replicas known to hold the batch *)
}

type replica = {
  r_proc : Simnet.proc;
  r_client : Simnet.proc;  (* client stub feeding this replica *)
  r_idx : int;
  (* batching of locally received client requests *)
  r_batch : unit Protocol.Batcher.t;
  mutable r_inflight : int;  (* client bytes submitted, not yet sealed *)
  mutable r_next_seq : int;
  (* batch store *)
  r_batches : (bid, batch_info) Hashtbl.t;
  (* leader state *)
  mutable r_is_leader : bool;
  mutable r_rnd : int;
  mutable r_next_inst : int;
  mutable r_outstanding : int;
  r_unordered : bid Queue.t;
  r_proposals : (int, bid) Hashtbl.t;  (* leader: inst -> bid, pre-quorum *)
  r_votes : (int, int) Hashtbl.t;
  (* learner state *)
  mutable r_next_del : int;
  r_decisions : (int, bid) Hashtbl.t;
  r_delivered_bids : (bid, unit) Hashtbl.t;
}

type t = {
  net : Simnet.t;
  cfg : config;
  rng : Sim.Rng.t;
  replicas : replica array;
  deliver : learner:int -> Paxos.Value.t -> unit;
  mutable fd : Protocol.Failure_detector.t option;
  mutable next_uid : int;
  mutable delivered : int;
}

let n t = Array.length t.replicas

let leader t =
  let found = ref None in
  Array.iter
    (fun r -> if r.r_is_leader && Simnet.is_alive r.r_proc && !found = None then found := Some r)
    t.replicas;
  !found

let info_of r bid =
  match Hashtbl.find_opt r.r_batches bid with
  | Some i -> i
  | None ->
      let i = { b_value = None; b_ackers = Hashtbl.create 8 } in
      Hashtbl.add r.r_batches bid i;
      i

let stable t r bid =
  match Hashtbl.find_opt r.r_batches bid with
  | Some i -> i.b_value <> None && Hashtbl.length i.b_ackers >= t.cfg.f + 1
  | None -> false

let rec try_deliver t r =
  match Hashtbl.find_opt r.r_decisions r.r_next_del with
  | Some bid when stable t r bid -> begin
      match Hashtbl.find_opt r.r_batches bid with
      | Some { b_value = Some v; _ } ->
          Hashtbl.remove r.r_decisions r.r_next_del;
          r.r_next_del <- r.r_next_del + 1;
          if not (Hashtbl.mem r.r_delivered_bids bid) then begin
            Hashtbl.add r.r_delivered_bids bid ();
            if r.r_idx = 0 then t.delivered <- t.delivered + 1;
            t.deliver ~learner:r.r_idx v
          end;
          try_deliver t r
      | _ -> ()
    end
  | _ -> ()

(* --- leader ordering (Paxos on batch ids) ------------------------------- *)

let rec order_drain t l =
  if l.r_is_leader && Simnet.is_alive l.r_proc then
    while l.r_outstanding < t.cfg.window && not (Queue.is_empty l.r_unordered) do
      let bid = Queue.pop l.r_unordered in
      let inst = l.r_next_inst in
      l.r_next_inst <- inst + 1;
      l.r_outstanding <- l.r_outstanding + 1;
      Hashtbl.replace l.r_votes inst 0;
      Array.iter
        (fun r ->
          if r.r_idx <> l.r_idx then
            Simnet.send t.net ~src:l.r_proc ~dst:r.r_proc ~size:hdr
              (Order2a { inst; rnd = l.r_rnd; bid }))
        t.replicas;
      Hashtbl.replace l.r_proposals inst bid
    done

and on_order2b t l inst =
  match Hashtbl.find_opt l.r_votes inst with
  | Some k ->
      let k = k + 1 in
      Hashtbl.replace l.r_votes inst k;
      (* Counting the leader's own vote, f more replies close the quorum. *)
      if k = t.cfg.f then begin
        l.r_outstanding <- l.r_outstanding - 1;
        let bid = Hashtbl.find l.r_proposals inst in
        Hashtbl.remove l.r_proposals inst;
        Hashtbl.replace l.r_decisions inst bid;
        Array.iter
          (fun r ->
            if r.r_idx <> l.r_idx then
              Simnet.send t.net ~src:l.r_proc ~dst:r.r_proc ~size:hdr (OrderDec { inst; bid }))
          t.replicas;
        try_deliver t l;
        order_drain t l
      end
  | None -> ()

(* --- batching ------------------------------------------------------------ *)

let disseminate t r =
  match Protocol.Batcher.seal r.r_batch () with
  | [] -> ()
  | items ->
      r.r_next_seq <- r.r_next_seq + 1;
      let bid = (r.r_idx, r.r_next_seq) in
      t.next_uid <- t.next_uid + 1;
      let v = Paxos.Value.make ~vid:t.next_uid items in
      r.r_inflight <- Stdlib.max 0 (r.r_inflight - v.size);
      let info = info_of r bid in
      info.b_value <- Some v;
      Hashtbl.replace info.b_ackers r.r_idx ();
      Simnet.charge_cpu t.net r.r_proc t.cfg.cpu_per_batch;
      Array.iter
        (fun q ->
          if q.r_idx <> r.r_idx then
            Simnet.send t.net ~src:r.r_proc ~dst:q.r_proc ~size:(v.size + hdr)
              (Forward { bid; value = v }))
        t.replicas;
      (* Hand the id to the leader for ordering. *)
      (match leader t with
      | Some l when l.r_idx = r.r_idx ->
          Queue.push bid l.r_unordered;
          order_drain t l
      | _ -> ())

(* The seal threshold counts submitted bytes still in flight from the client
   stubs, not just arrived ones, mirroring S-Paxos's client-side batching. *)
let rec batch_tick t r =
  if r.r_inflight >= t.cfg.batch_bytes then disseminate t r
  else
    Protocol.Batcher.arm_timeout r.r_batch t.net ~timeout:t.cfg.batch_timeout (fun () ->
        if Simnet.is_alive r.r_proc then begin
          disseminate t r;
          batch_tick t r
        end)

(* --- GC pauses ------------------------------------------------------------ *)

let rec gc_loop t r =
  let delay = Sim.Rng.exponential t.rng ~mean:t.cfg.gc_pause_every in
  ignore
    (Simnet.after t.net delay (fun () ->
         if Simnet.is_alive r.r_proc then begin
           let pause = Sim.Rng.exponential t.rng ~mean:t.cfg.gc_pause in
           Simnet.charge_cpu t.net r.r_proc pause;
           gc_loop t r
         end))

(* --- leader failover -------------------------------------------------------- *)

let failure_detection t =
  let emit () =
    match leader t with
    | Some l ->
        Array.iter
          (fun r ->
            if r.r_idx <> l.r_idx && Simnet.is_alive r.r_proc then
              Simnet.send t.net ~src:l.r_proc ~dst:r.r_proc ~size:hdr
                (SHb { from = l.r_idx }))
          t.replicas
    | None -> ()
  in
  let on_suspect ~stale =
    let candidates =
      Array.to_list t.replicas
      |> List.filter (fun r -> Simnet.is_alive r.r_proc && stale r.r_idx)
    in
    match candidates with
    | r :: _ ->
        r.r_is_leader <- true;
        r.r_rnd <- r.r_rnd + n t + 1;
        (* The new leader re-orders every stable batch it has not yet
           seen decided; duplicates are suppressed at delivery. *)
        r.r_next_inst <- Stdlib.max r.r_next_inst r.r_next_del;
        Hashtbl.iter
          (fun bid info ->
            if info.b_value <> None && not (Hashtbl.mem r.r_delivered_bids bid) then
              Queue.push bid r.r_unordered)
          r.r_batches;
        order_drain t r
    | [] -> ()
  in
  t.fd <-
    Some
      (Protocol.Failure_detector.create t.net ~hb_period:t.cfg.hb_period
         ~hb_timeout:t.cfg.hb_timeout
         ~leader:(fun () -> leader t <> None)
         ~emit ~on_suspect)

(* --- handlers ----------------------------------------------------------------- *)

let handler t r (msg : Simnet.msg) =
  match msg.payload with
  | Request item ->
      ignore (Protocol.Batcher.enqueue r.r_batch ~key:() item);
      batch_tick t r
  | Forward { bid; value } ->
      Simnet.charge_cpu t.net r.r_proc t.cfg.cpu_per_batch;
      let info = info_of r bid in
      info.b_value <- Some value;
      (* Holding the batch implies the originator and this replica ack it. *)
      Hashtbl.replace info.b_ackers (fst bid) ();
      Hashtbl.replace info.b_ackers r.r_idx ();
      if r.r_is_leader then begin
        Queue.push bid r.r_unordered;
        order_drain t r
      end;
      Array.iter
        (fun q ->
          if q.r_idx <> r.r_idx then
            Simnet.send t.net ~src:r.r_proc ~dst:q.r_proc ~size:hdr
              (BatchAck { bid; from = r.r_idx }))
        t.replicas;
      try_deliver t r
  | BatchAck { bid; from } ->
      let info = info_of r bid in
      Hashtbl.replace info.b_ackers from ();
      try_deliver t r
  | Order2a { inst; rnd; bid } ->
      if rnd >= r.r_rnd then begin
        r.r_rnd <- rnd;
        Hashtbl.replace r.r_decisions inst bid;
        (match leader t with
        | Some l ->
            Simnet.send t.net ~src:r.r_proc ~dst:l.r_proc ~size:hdr
              (Order2b { inst; rnd; from = r.r_idx })
        | None -> ());
        try_deliver t r
      end
  | Order2b { inst; rnd; from = _ } -> if r.r_is_leader && rnd = r.r_rnd then on_order2b t r inst
  | OrderDec { inst; bid } ->
      Hashtbl.replace r.r_decisions inst bid;
      try_deliver t r
  | SHb { from } ->
      (match t.fd with
      | Some fd -> Protocol.Failure_detector.heartbeat fd r.r_idx
      | None -> ());
      if from <> r.r_idx && r.r_is_leader && from < r.r_idx then r.r_is_leader <- false
  | _ -> ()

let create net cfg ~deliver =
  let count = (2 * cfg.f) + 1 in
  let replicas =
    Array.init count (fun i ->
        let node = Simnet.add_node net (Printf.sprintf "spx-%d" i) in
        let proc = Simnet.add_proc net node (Printf.sprintf "spx-%d" i) in
        let cnode = Simnet.add_node net (Printf.sprintf "spx-cl%d" i) in
        let client = Simnet.add_proc net cnode (Printf.sprintf "spx-cl%d" i) in
        { r_proc = proc;
          r_client = client;
          r_idx = i;
          r_batch = Protocol.Batcher.create ~batch_bytes:cfg.batch_bytes ();
          r_inflight = 0;
          r_next_seq = 0;
          r_batches = Hashtbl.create 4096;
          r_is_leader = i = 0;
          r_rnd = 0;
          r_next_inst = 0;
          r_outstanding = 0;
          r_unordered = Queue.create ();
          r_proposals = Hashtbl.create 256;
          r_votes = Hashtbl.create 256;
          r_next_del = 0;
          r_decisions = Hashtbl.create 4096;
          r_delivered_bids = Hashtbl.create 4096 })
  in
  let t =
    { net;
      cfg;
      rng = Sim.Rng.create 77;
      replicas;
      deliver;
      fd = None;
      next_uid = 0;
      delivered = 0 }
  in
  Array.iter
    (fun r ->
      Simnet.set_handler r.r_proc (handler t r);
      if cfg.gc_pause > 0.0 then gc_loop t r)
    replicas;
  failure_detection t;
  t

let submit t ~replica ~size app =
  let r = t.replicas.(replica) in
  if r.r_inflight + size > 4 * 1024 * 1024 then false
  else begin
    t.next_uid <- t.next_uid + 1;
    let item = { Paxos.Value.uid = t.next_uid; isize = size; app; born = Simnet.now t.net } in
    (* Requests reach the replica over TCP from a client stub, so the
       replica pays the receive cost the paper attributes to S-Paxos's
       request-dissemination layer. *)
    r.r_inflight <- r.r_inflight + size;
    Simnet.send t.net ~src:r.r_client ~dst:r.r_proc ~size:(size + hdr) (Request item);
    true
  end

let replica_proc t i = t.replicas.(i).r_proc
let n_replicas t = Array.length t.replicas

let kill_leader t =
  match leader t with Some l -> Simnet.kill t.net l.r_proc | None -> ()

let kill_replica t i = Simnet.kill t.net t.replicas.(i).r_proc

let delivered t = t.delivered
