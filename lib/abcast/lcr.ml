type config = {
  n : int;
  clock_period : float;
  durability : Ringpaxos.Mring.durability;
}

let default_config = { n = 5; clock_period = 2.0e-3; durability = Ringpaxos.Mring.Memory }

let hdr = 48

type Simnet.payload +=
  | Body of { sender : int; ts : int; value : Paxos.Value.t }
  | Clock of { origin : int; clock : int }

module Key = struct
  type t = int * int (* ts, sender *)

  let compare = compare
end

module Pending = Map.Make (Key)

type member = {
  m_proc : Simnet.proc;
  m_idx : int;
  m_disk : Storage.Disk.t option;
  mutable m_clock : int;
  m_known : int array;  (* last announced clock per member *)
  m_seen : int array;  (* highest body timestamp stored per sender *)
  mutable m_pending : Paxos.Value.t Pending.t;
  mutable m_unacked_bytes : int;  (* own bodies not yet delivered locally *)
  mutable m_buffer : int;
}

type t = {
  net : Simnet.t;
  cfg : config;
  members : member array;
  mutable ring : int list;  (* alive members, ring order *)
  deliver : learner:int -> Paxos.Value.t -> unit;
  mutable next_uid : int;
  mutable delivered : int;
}

let successor t idx =
  let rec after = function
    | a :: b :: rest -> if a = idx then Some b else after (b :: rest)
    | [ a ] -> if a = idx then List.nth_opt t.ring 0 else None
    | [] -> None
  in
  match after t.ring with
  | Some nxt when nxt <> idx -> Some t.members.(nxt)
  | _ -> None

let alive t idx = Simnet.is_alive t.members.(idx).m_proc

(* Deliver every pending body whose timestamp is covered by what all alive
   members have announced: no earlier-stamped body can still be in flight
   (announcements travel FIFO behind the bodies they cover). *)
let try_deliver t m =
  let bound = ref max_int in
  Array.iteri (fun q c -> if alive t q then bound := Stdlib.min !bound c) m.m_known;
  let continue = ref true in
  while !continue do
    match Pending.min_binding_opt m.m_pending with
    | Some ((ts, sender), v) when ts <= !bound ->
        m.m_pending <- Pending.remove (ts, sender) m.m_pending;
        if sender = m.m_idx then
          m.m_unacked_bytes <- m.m_unacked_bytes - v.Paxos.Value.size;
        if m.m_idx = 0 then t.delivered <- t.delivered + 1;
        t.deliver ~learner:m.m_idx v
    | _ -> continue := false
  done

let store_body t m sender ts (v : Paxos.Value.t) =
  m.m_clock <- Stdlib.max m.m_clock ts + 1;
  m.m_known.(sender) <- Stdlib.max m.m_known.(sender) ts;
  m.m_pending <- Pending.add (ts, sender) v m.m_pending;
  try_deliver t m

let forward_body t m sender ts v =
  match successor t m.m_idx with
  | Some next when next.m_idx <> sender ->
      Simnet.send t.net ~src:m.m_proc ~dst:next.m_proc ~size:(v.Paxos.Value.size + hdr)
        (Body { sender; ts; value = v })
  | _ -> ()

let handler t m (msg : Simnet.msg) =
  match msg.payload with
  | Body { sender; ts; value } ->
      (* Per-sender timestamps are strictly increasing and links are FIFO,
         so anything at or below the watermark is a duplicate.  Without
         this check a body whose sender has been removed from the ring
         circulates forever: the forwarding stop condition ("next hop is
         the sender") can no longer trigger, and every revolution would
         re-store and re-deliver it. *)
      if ts <= m.m_seen.(sender) then ()
      else begin
      m.m_seen.(sender) <- ts;
      let continue () =
        store_body t m sender ts value;
        forward_body t m sender ts value
      in
      (match (t.cfg.durability, m.m_disk) with
      | Ringpaxos.Mring.Sync_disk, Some d ->
          Storage.Disk.write_sync d ~bytes:value.size continue
      | Ringpaxos.Mring.Async_disk, Some d ->
          Storage.Disk.write_async d ~bytes:value.size;
          continue ()
      | _ -> continue ())
      end
  | Clock { origin; clock } ->
      m.m_known.(origin) <- Stdlib.max m.m_known.(origin) clock;
      (match successor t m.m_idx with
      | Some next when next.m_idx <> origin ->
          Simnet.send t.net ~src:m.m_proc ~dst:next.m_proc ~size:hdr (Clock { origin; clock })
      | _ -> ());
      try_deliver t m
  | _ -> ()

let clock_loop t m =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.clock_period (fun () ->
        if Simnet.is_alive m.m_proc then begin
          m.m_known.(m.m_idx) <- m.m_clock;
          match successor t m.m_idx with
          | Some next ->
              Simnet.send t.net ~src:m.m_proc ~dst:next.m_proc ~size:hdr
                (Clock { origin = m.m_idx; clock = m.m_clock })
          | None -> ()
        end)
  in
  ()

let create net cfg ~deliver =
  let members =
    Array.init cfg.n (fun i ->
        let node = Simnet.add_node net (Printf.sprintf "lcr-%d" i) in
        let proc = Simnet.add_proc net node (Printf.sprintf "lcr-%d" i) in
        let disk =
          if cfg.durability <> Ringpaxos.Mring.Memory then
            Some (Storage.Disk.create (Simnet.engine net) (Printf.sprintf "lcr-disk%d" i))
          else None
        in
        { m_proc = proc;
          m_idx = i;
          m_disk = disk;
          m_clock = 0;
          m_known = Array.make cfg.n 0;
          m_seen = Array.make cfg.n 0;
          m_pending = Pending.empty;
          m_unacked_bytes = 0;
          m_buffer = 2 * 1024 * 1024 })
  in
  let t =
    { net;
      cfg;
      members;
      ring = List.init cfg.n Fun.id;
      deliver;
      next_uid = 0;
      delivered = 0 }
  in
  Array.iter
    (fun m ->
      Simnet.set_handler m.m_proc (handler t m);
      clock_loop t m)
    members;
  t

let broadcast t ~from ~size app =
  let m = t.members.(from) in
  if m.m_unacked_bytes + size > m.m_buffer then false
  else begin
    t.next_uid <- t.next_uid + 1;
    let v =
      Paxos.Value.single ~vid:t.next_uid ~uid:t.next_uid ~size ~born:(Simnet.now t.net) app
    in
    m.m_clock <- m.m_clock + 1;
    let ts = m.m_clock in
    m.m_seen.(m.m_idx) <- ts;
    m.m_unacked_bytes <- m.m_unacked_bytes + size;
    store_body t m m.m_idx ts v;
    forward_body t m m.m_idx ts v;
    true
  end

let proc t i = t.members.(i).m_proc

let kill t i =
  Simnet.kill t.net t.members.(i).m_proc;
  (* LCR assumes perfect failure detection: the ring is rebuilt at once. *)
  t.ring <- List.filter (fun j -> j <> i) t.ring

let delivered t = t.delivered

let disk t i = t.members.(i).m_disk
