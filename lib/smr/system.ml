type config = {
  mring : Ringpaxos.Mring.config;
  replicas_per_partition : int;
  speculative : bool;
  read_only : Simnet.payload -> bool;
}

let default_read_only = function
  | Btree_service.Query _ -> true
  | _ -> false

let default_config =
  { mring = Ringpaxos.Mring.default_config;
    replicas_per_partition = 2;
    speculative = false;
    read_only = default_read_only }

type Simnet.payload += Resp of { uid : int; part : int }

type spec_entry = {
  sp_vid : int;
  sp_seq : int;
  sp_fin : float;
  sp_resps : (int * int * int) list;  (* client, bytes, uid *)
  sp_undos : (unit -> unit) list;
  sp_cost : float;
}

type replica = {
  rp_lrn : int;
  rp_part : int;
  rp_slot : int;
  rp_service : Service.t;
  mutable rp_exec_free : float;
  rp_exec_busy : Sim.Stats.Busy.t;
  rp_spec : (int, spec_entry) Hashtbl.t;
  mutable rp_spec_seq : int;
  mutable rp_conf_seq : int;
  mutable rp_executed : int;
  mutable rp_rollbacks : int;
}

type client = {
  cl_idx : int;
  mutable cl_uid : int;
  mutable cl_waiting : int;
  mutable cl_born : float;
  mutable cl_bytes : int;
}

type t = {
  net : Simnet.t;
  cfg : config;
  mutable mr : Ringpaxos.Mring.t option;
  replicas : replica array;
  clients : client array;
  gen : int -> Workload.command;
  metrics : Metrics.t;
}

let the_mr t = match t.mr with Some m -> m | None -> assert false

let trace t f = match Simnet.tracer t.net with Some tr -> f tr | None -> ()

(* --- execution -------------------------------------------------------------- *)

(* Execute the items of a value this replica is responsible for; returns the
   responses owed, the undo closures (newest first) and the virtual cost. *)
let run_items t r (v : Paxos.Value.t) =
  let resps = ref [] and undos = ref [] and cost = ref 0.0 in
  List.iter
    (fun (it : Paxos.Value.item) ->
      let responder =
        Paxos.Value.uid_seq it.uid mod t.cfg.replicas_per_partition = r.rp_slot
      in
      let read_only = t.cfg.read_only it.app in
      if (not read_only) || responder then begin
        let o = r.rp_service.execute it.app in
        r.rp_executed <- r.rp_executed + 1;
        cost := !cost +. o.cost;
        (match o.undo with Some u -> undos := u :: !undos | None -> ());
        if responder then
          resps := (Paxos.Value.uid_origin it.uid, o.resp_size, it.uid) :: !resps
      end)
    v.items;
  (List.rev !resps, !undos, !cost)

(* Book [cost] on the replica's executor thread; returns completion time. *)
let book t r cost =
  let now = Simnet.now t.net in
  let start = if now > r.rp_exec_free then now else r.rp_exec_free in
  let fin = start +. cost in
  r.rp_exec_free <- fin;
  Sim.Stats.Busy.add ~at:start r.rp_exec_busy cost;
  trace t (fun tr ->
      if cost > 0.0 then
        Trace.span tr ~pid:(Simnet.pid (Ringpaxos.Mring.learner_proc (the_mr t) r.rp_lrn))
          ~cat:"exec" ~name:"execute" ~ts:start ~dur:cost);
  fin

let send_resps t r ~at resps =
  ignore
    (Sim.Engine.at (Simnet.engine t.net) ~time:at (fun () ->
         List.iter
           (fun (client, bytes, uid) ->
             if client < Array.length t.clients then
               Simnet.send t.net
                 ~src:(Ringpaxos.Mring.learner_proc (the_mr t) r.rp_lrn)
                 ~dst:(Ringpaxos.Mring.proposer_proc (the_mr t) client)
                 ~size:bytes
                 (Resp { uid; part = r.rp_part }))
           resps))

let exec_now t r v =
  let resps, _undos, cost = run_items t r v in
  let fin = book t r cost in
  send_resps t r ~at:fin resps

(* Undo every unconfirmed speculative execution, newest arrival first, and
   charge the executor for the wasted and undo work (§4.2.1). *)
let rollback_all t r =
  let entries =
    Hashtbl.fold (fun inst e acc -> (inst, e) :: acc) r.rp_spec []
    |> List.sort (fun (_, a) (_, b) -> compare b.sp_seq a.sp_seq)
  in
  let cost = ref 0.0 in
  List.iter
    (fun (inst, e) ->
      List.iter (fun u -> u ()) e.sp_undos;
      cost := !cost +. e.sp_cost +. r.rp_service.rollback_cost;
      r.rp_rollbacks <- r.rp_rollbacks + 1;
      Hashtbl.remove r.rp_spec inst)
    entries;
  ignore (book t r !cost);
  r.rp_conf_seq <- r.rp_spec_seq

let on_speculative t r inst (v : Paxos.Value.t) =
  let resps, undos, cost = run_items t r v in
  let fin = book t r cost in
  let seq = r.rp_spec_seq in
  r.rp_spec_seq <- seq + 1;
  Hashtbl.replace r.rp_spec inst
    { sp_vid = v.vid; sp_seq = seq; sp_fin = fin; sp_resps = resps; sp_undos = undos;
      sp_cost = cost }

let on_deliver t r inst v =
  match v with
  | None -> ()
  | Some (v : Paxos.Value.t) -> (
      match Hashtbl.find_opt r.rp_spec inst with
      | Some e when e.sp_vid = v.vid && e.sp_seq = r.rp_conf_seq ->
          (* Speculation confirmed: answer as soon as both the execution and
             the ordering have finished — the min(Δo, Δe) saving. *)
          Hashtbl.remove r.rp_spec inst;
          r.rp_conf_seq <- r.rp_conf_seq + 1;
          let at = Stdlib.max (Simnet.now t.net) e.sp_fin in
          send_resps t r ~at e.sp_resps
      | Some _ ->
          rollback_all t r;
          exec_now t r v
      | None ->
          if Hashtbl.length r.rp_spec > 0 then rollback_all t r;
          exec_now t r v)

(* --- clients ------------------------------------------------------------------ *)

let rec submit_next t c =
  let cmd = t.gen c.cl_idx in
  let uid =
    Ringpaxos.Mring.submit (the_mr t) ~proposer:c.cl_idx ~parts:cmd.parts ~size:cmd.size cmd.op
  in
  if uid < 0 then
    (* Client buffer full (cannot happen in a closed loop, but be safe). *)
    ignore (Simnet.after t.net 1.0e-3 (fun () -> submit_next t c))
  else begin
    c.cl_uid <- uid;
    c.cl_waiting <- List.length cmd.parts;
    c.cl_born <- Simnet.now t.net;
    c.cl_bytes <- 0
  end

let client_on_resp t c (m : Simnet.msg) uid =
  if uid = c.cl_uid && c.cl_waiting > 0 then begin
    c.cl_waiting <- c.cl_waiting - 1;
    c.cl_bytes <- c.cl_bytes + m.size;
    if c.cl_waiting = 0 then begin
      trace t (fun tr ->
          Trace.instant tr ~id:uid
            ~pid:(Simnet.pid (Ringpaxos.Mring.proposer_proc (the_mr t) c.cl_idx))
            ~cat:"proto" ~name:"response" ~ts:(Simnet.now t.net));
      Metrics.command t.metrics ~born:c.cl_born ~bytes:c.cl_bytes;
      submit_next t c
    end
  end

(* --- construction ---------------------------------------------------------------- *)

let create net cfg ~services ~n_clients ~gen =
  let n_parts = Stdlib.max 1 cfg.mring.partitions in
  let n_replicas = n_parts * cfg.replicas_per_partition in
  let metrics = Metrics.create (Simnet.engine net) in
  let replicas =
    Array.init n_replicas (fun l ->
        { rp_lrn = l;
          rp_part = l / cfg.replicas_per_partition;
          rp_slot = l mod cfg.replicas_per_partition;
          rp_service = services l;
          rp_exec_free = 0.0;
          rp_exec_busy = Sim.Stats.Busy.create ();
          rp_spec = Hashtbl.create 256;
          rp_spec_seq = 0;
          rp_conf_seq = 0;
          rp_executed = 0;
          rp_rollbacks = 0 })
  in
  let clients =
    Array.init n_clients (fun i ->
        { cl_idx = i; cl_uid = -1; cl_waiting = 0; cl_born = 0.0; cl_bytes = 0 })
  in
  let t = { net; cfg; mr = None; replicas; clients; gen; metrics } in
  let deliver ~learner ~inst v = on_deliver t replicas.(learner) inst v in
  let speculative =
    if cfg.speculative then
      Some (fun ~learner ~inst v -> on_speculative t replicas.(learner) inst v)
    else None
  in
  let mr =
    Ringpaxos.Mring.create ?speculative net cfg.mring ~n_proposers:n_clients
      ~n_learners:n_replicas
      ~learner_parts:(fun l -> [ l / cfg.replicas_per_partition ])
      ~deliver
  in
  t.mr <- Some mr;
  (* Attach client response handling on top of the proposer protocol. *)
  Array.iter
    (fun c ->
      let p = Ringpaxos.Mring.proposer_proc mr c.cl_idx in
      let prev = Simnet.handler_of p in
      Simnet.set_handler p (fun m ->
          match m.payload with
          | Resp { uid; part = _ } -> client_on_resp t c m uid
          | _ -> prev m))
    t.clients;
  t

let start t =
  Array.iter
    (fun c ->
      let stagger = 1.0e-5 *. float_of_int c.cl_idx in
      ignore (Simnet.after t.net (0.001 +. stagger) (fun () -> submit_next t c)))
    t.clients

let metrics t = t.metrics
let mring t = the_mr t

let exec_utilization t ~learner ~from ~till =
  Sim.Stats.Busy.utilization t.replicas.(learner).rp_exec_busy ~from ~till

let replica_proc t ~learner = Ringpaxos.Mring.learner_proc (the_mr t) learner
let executed t ~learner = t.replicas.(learner).rp_executed
let rollbacks t ~learner = t.replicas.(learner).rp_rollbacks
let n_replicas t = Array.length t.replicas
