(** Workload generators for the Chapter 4 experiments (§4.4.2):

    - [Queries]: range queries over an interval of [query_span] keys, keys
      uniform; a configurable percentage straddles a partition boundary and
      becomes a cross-partition command (§4.4.5).
    - [Ins_del_single]: one insert or delete per command.
    - [Ins_del_batch]: seven updates per command (§4.4.2).

    Commands are 256 bytes on the wire. *)

type kind = Queries | Ins_del_single | Ins_del_batch

type command = {
  op : Simnet.payload;
  parts : int list;  (** partitions the command must reach *)
  size : int;  (** request bytes *)
}

type t

val create :
  ?cross_pct:int ->
  ?query_span:int ->
  Sim.Rng.t ->
  kind ->
  key_range:int ->
  n_partitions:int ->
  t

(** [next t] generates the next command. *)
val next : t -> command

(** [partition_of ~key_range ~n_partitions key] is the owning partition. *)
val partition_of : key_range:int -> n_partitions:int -> int -> int

(** Open-loop workload generation for the parallel-executor experiments:
    Poisson arrivals at a time-varying rate (nothing waits for responses,
    so the generator stands in for millions of closed-loop clients),
    zipf-skewed or uniform keys, a read/write mix, and optional
    hot-partition storms.  Every arrival carries the read/write key-sets
    the dependency-aware executor schedules by. *)
module Open_loop : sig
  (** Instantaneous arrival rate as a function of time. *)
  type curve =
    | Constant of float
    | Ramp of { from_rate : float; to_rate : float; over : float }
    | Diurnal of { base : float; peak : float; period : float }
        (** sinusoidal day: [base] at the trough, [peak] at the crest *)
    | Storm of { base : float; peak : float; at : float; len : float }
        (** [peak] arrivals during [\[at, at+len)], [base] otherwise *)
    | Seq of (curve * float) list
        (** piecewise composition: each [(curve, dur)] segment runs for
            [dur] seconds of half-open interval [\[start, start+dur)] —
            the boundary instant belongs to the {e next} segment only, so
            a ramp→storm transition never evaluates (or issues) the
            boundary tick twice.  Inner curves see segment-local time;
            the last segment runs forever. *)

  (** Operation classes for the YCSB-style mixes: [Read] is a single-key
      point query, [Scan] a [query_span]-key range query, [Update]/[Rmw]
      overwrite an existing key (read-modify-write: the insert returns the
      previous value), [Insert] allocates a fresh key above every key
      allocated so far. *)
  type op_kind = Read | Update | Insert | Scan | Rmw

  (** Key-choice distribution: [Zipf s] skews towards small keys,
      [Latest s] skews towards the most recently {!Insert}ed keys (the
      zipf draw is a recency rank counted down from the newest key). *)
  type key_dist = Uniform | Zipf of float | Latest of float

  type arrival = {
    at : float;  (** arrival time (monotone across calls) *)
    op : Simnet.payload;  (** a {!Btree_service} operation *)
    reads : Btree.Keyset.t;
    writes : Btree.Keyset.t;
    size : int;  (** request bytes *)
  }

  type t

  (** [create rng ~key_range ~rate] — [zipf_s] > 0 skews keys (0 =
      uniform); [read_pct] of commands are range queries of [query_span]
      keys, the rest single-key inserts/deletes (read-modify-write);
      [hot_storm = (start, len, pct)] redirects [pct]% of keys drawn in
      [\[start, start+len)] to the bottom 1% of the key space.

      [ops] replaces the legacy [read_pct] mix with a weighted
      {!op_kind} list (e.g. YCSB-A is [[(Update, 50); (Read, 50)]]);
      [dist] overrides the [zipf_s] shorthand with an explicit key
      distribution.  Updates carry monotonically increasing values, so
      every write in a run is unique — handy for linearizability
      histories. *)
  val create :
    ?zipf_s:float ->
    ?read_pct:int ->
    ?query_span:int ->
    ?hot_storm:float * float * int ->
    ?ops:(op_kind * int) list ->
    ?dist:key_dist ->
    Sim.Rng.t ->
    key_range:int ->
    rate:curve ->
    t

  (** [next t] draws the next arrival; advances the generator clock. *)
  val next : t -> arrival

  (** [peek t] is the arrival the next {!next} will return, without
      consuming it: drivers bound by a horizon look ahead and leave an
      arrival past the horizon unconsumed, so {!generated} counts exactly
      the arrivals handed out (issued + dropped), never a discarded
      lookahead. *)
  val peek : t -> arrival

  (** The rate the curve prescribes at a given time. *)
  val rate_at : t -> float -> float

  (** Arrivals consumed through {!next} (a {!peek}ed-but-unconsumed
      arrival is not counted). *)
  val generated : t -> int

  (** Time of the last arrival drawn (including a pending {!peek}). *)
  val clock : t -> float

  (** Highest key allocated so far ([key_range] until the first
      {!Insert}). *)
  val max_key : t -> int
end
