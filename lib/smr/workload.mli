(** Workload generators for the Chapter 4 experiments (§4.4.2):

    - [Queries]: range queries over an interval of [query_span] keys, keys
      uniform; a configurable percentage straddles a partition boundary and
      becomes a cross-partition command (§4.4.5).
    - [Ins_del_single]: one insert or delete per command.
    - [Ins_del_batch]: seven updates per command (§4.4.2).

    Commands are 256 bytes on the wire. *)

type kind = Queries | Ins_del_single | Ins_del_batch

type command = {
  op : Simnet.payload;
  parts : int list;  (** partitions the command must reach *)
  size : int;  (** request bytes *)
}

type t

val create :
  ?cross_pct:int ->
  ?query_span:int ->
  Sim.Rng.t ->
  kind ->
  key_range:int ->
  n_partitions:int ->
  t

(** [next t] generates the next command. *)
val next : t -> command

(** [partition_of ~key_range ~n_partitions key] is the owning partition. *)
val partition_of : key_range:int -> n_partitions:int -> int -> int

(** Open-loop workload generation for the parallel-executor experiments:
    Poisson arrivals at a time-varying rate (nothing waits for responses,
    so the generator stands in for millions of closed-loop clients),
    zipf-skewed or uniform keys, a read/write mix, and optional
    hot-partition storms.  Every arrival carries the read/write key-sets
    the dependency-aware executor schedules by. *)
module Open_loop : sig
  (** Instantaneous arrival rate as a function of time. *)
  type curve =
    | Constant of float
    | Ramp of { from_rate : float; to_rate : float; over : float }
    | Diurnal of { base : float; peak : float; period : float }
        (** sinusoidal day: [base] at the trough, [peak] at the crest *)
    | Storm of { base : float; peak : float; at : float; len : float }
        (** [peak] arrivals during [\[at, at+len)], [base] otherwise *)

  type arrival = {
    at : float;  (** arrival time (monotone across calls) *)
    op : Simnet.payload;  (** a {!Btree_service} operation *)
    reads : Btree.Keyset.t;
    writes : Btree.Keyset.t;
    size : int;  (** request bytes *)
  }

  type t

  (** [create rng ~key_range ~rate] — [zipf_s] > 0 skews keys (0 =
      uniform); [read_pct] of commands are range queries of [query_span]
      keys, the rest single-key inserts/deletes (read-modify-write);
      [hot_storm = (start, len, pct)] redirects [pct]% of keys drawn in
      [\[start, start+len)] to the bottom 1% of the key space. *)
  val create :
    ?zipf_s:float ->
    ?read_pct:int ->
    ?query_span:int ->
    ?hot_storm:float * float * int ->
    Sim.Rng.t ->
    key_range:int ->
    rate:curve ->
    t

  (** [next t] draws the next arrival; advances the generator clock. *)
  val next : t -> arrival

  (** The rate the curve prescribes at a given time. *)
  val rate_at : t -> float -> float

  val generated : t -> int

  (** Time of the last arrival generated. *)
  val clock : t -> float
end
