type op = {
  kind : [ `Read of int option | `Write of int ];
  inv : float;
  res : float;
}

(* Exhaustive Wing-Gong search over one object, generic in the operation
   alphabet: at each step, an operation may be linearized next only if no
   remaining operation responded before it was invoked.  [applies state k]
   says whether [k] can legally fire in [state]; [apply] is its sequential
   semantics.  Both register and key-value instantiations below share this
   core. *)
let search ~applies ~apply ~init (ops : ('k * float * float) array) =
  let n = Array.length ops in
  let used = Array.make n false in
  let rec go state placed =
    if placed = n then true
    else begin
      let min_res = ref infinity in
      for i = 0 to n - 1 do
        let _, _, res = ops.(i) in
        if (not used.(i)) && res < !min_res then min_res := res
      done;
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let kind, inv, _ = ops.(!i) in
        if (not used.(!i)) && inv <= !min_res && applies state kind then begin
          used.(!i) <- true;
          if go (apply state kind) (placed + 1) then ok := true
          else used.(!i) <- false
        end;
        incr i
      done;
      !ok
    end
  in
  go init 0

let applies state = function
  | `Write _ -> true
  | `Read v -> v = state

let apply state = function `Write v -> Some v | `Read _ -> state

let check ~init history =
  let arr =
    Array.of_list (List.map (fun o -> (o.kind, o.inv, o.res)) history)
  in
  search ~applies ~apply ~init arr

module Kv = struct
  type op = {
    key : int;
    kind : [ `Read of int option | `Write of int option ];
    inv : float;
    res : float;
  }

  (* Linearizability is compositional (local): a history over many keys is
     linearizable iff each key's sub-history is, so the exhaustive search
     runs per key.  A key's register holds [int option]: [`Write (Some v)]
     is an insert/update, [`Write None] a delete, and a read observes the
     stored value or [None] when absent.  (Multi-key atomic scans are out
     of scope for this checker: record only their single-key reads.) *)
  let kv_applies state = function
    | `Write _ -> true
    | `Read v -> v = state

  let kv_apply state = function `Write v -> v | `Read _ -> state

  let check ~init history =
    let by_key : (int, (_ * float * float) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun o ->
        match Hashtbl.find_opt by_key o.key with
        | Some l -> l := (o.kind, o.inv, o.res) :: !l
        | None -> Hashtbl.add by_key o.key (ref [ (o.kind, o.inv, o.res) ]))
      history;
    Hashtbl.fold
      (fun key ops ok ->
        ok
        && search ~applies:kv_applies ~apply:kv_apply ~init:(init key)
             (Array.of_list !ops))
      by_key true
end

let sequentially_consistent ~init histories =
  (* Search for an interleaving that respects each process's program order
     (by invocation time) and register semantics; real time is ignored. *)
  let queues =
    Array.of_list
      (List.map
         (fun ops -> Array.of_list (List.sort (fun a b -> compare a.inv b.inv) ops))
         histories)
  in
  let idx = Array.make (Array.length queues) 0 in
  let total = Array.fold_left (fun acc q -> acc + Array.length q) 0 queues in
  let rec go state placed =
    if placed = total then true
    else begin
      let ok = ref false in
      let p = ref 0 in
      while (not !ok) && !p < Array.length queues do
        let q = queues.(!p) in
        if idx.(!p) < Array.length q && applies state q.(idx.(!p)).kind then begin
          let op = q.(idx.(!p)) in
          idx.(!p) <- idx.(!p) + 1;
          if go (apply state op.kind) (placed + 1) then ok := true
          else idx.(!p) <- idx.(!p) - 1
        end;
        incr p
      done;
      !ok
    end
  in
  go init 0
