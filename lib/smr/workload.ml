type kind = Queries | Ins_del_single | Ins_del_batch

type command = {
  op : Simnet.payload;
  parts : int list;
  size : int;
}

type t = {
  rng : Sim.Rng.t;
  kind : kind;
  key_range : int;
  n_partitions : int;
  cross_pct : int;
  query_span : int;
}

let cmd_size = 256

let partition_of ~key_range ~n_partitions key =
  let p = key * n_partitions / (key_range + 1) in
  Stdlib.max 0 (Stdlib.min (n_partitions - 1) p)

let create ?(cross_pct = 0) ?(query_span = 1000) rng kind ~key_range ~n_partitions =
  { rng; kind; key_range; n_partitions; cross_pct; query_span }

let parts_of_range t lo hi =
  let p1 = partition_of ~key_range:t.key_range ~n_partitions:t.n_partitions lo in
  let p2 = partition_of ~key_range:t.key_range ~n_partitions:t.n_partitions hi in
  if p1 = p2 then [ p1 ] else List.init (p2 - p1 + 1) (fun i -> p1 + i)

let gen_query t =
  let span = t.query_span in
  let lo =
    if t.n_partitions > 1 && Sim.Rng.int t.rng 100 < t.cross_pct then begin
      (* Straddle a random partition boundary. *)
      let b = 1 + Sim.Rng.int t.rng (t.n_partitions - 1) in
      let boundary = b * (t.key_range + 1) / t.n_partitions in
      boundary - (span / 2)
    end
    else begin
      (* Fully inside a random partition. *)
      let p = Sim.Rng.int t.rng t.n_partitions in
      let plo = p * (t.key_range + 1) / t.n_partitions in
      let phi = ((p + 1) * (t.key_range + 1) / t.n_partitions) - span in
      plo + Sim.Rng.int t.rng (Stdlib.max 1 (phi - plo))
    end
  in
  let lo = Stdlib.max 1 lo in
  let hi = lo + span - 1 in
  { op = Btree_service.Query { lo; hi }; parts = parts_of_range t lo hi; size = cmd_size }

let gen_update t =
  let key = 1 + Sim.Rng.int t.rng t.key_range in
  let op =
    if Sim.Rng.bool t.rng 0.5 then Btree_service.Insert { key; value = key }
    else Btree_service.Delete { key }
  in
  (op, partition_of ~key_range:t.key_range ~n_partitions:t.n_partitions key)

let next t =
  match t.kind with
  | Queries -> gen_query t
  | Ins_del_single ->
      let op, p = gen_update t in
      { op; parts = [ p ]; size = cmd_size }
  | Ins_del_batch ->
      (* Seven updates, all in the same partition so the command is
         single-partition (§4.4.2). *)
      let p = Sim.Rng.int t.rng t.n_partitions in
      let plo = p * (t.key_range + 1) / t.n_partitions in
      let phi = ((p + 1) * (t.key_range + 1) / t.n_partitions) - 1 in
      let ops =
        List.init 7 (fun _ ->
            let key = plo + 1 + Sim.Rng.int t.rng (Stdlib.max 1 (phi - plo)) in
            if Sim.Rng.bool t.rng 0.5 then Btree_service.Insert { key; value = key }
            else Btree_service.Delete { key })
      in
      { op = Btree_service.Batch ops; parts = [ p ]; size = cmd_size }

(* --- open-loop generation ----------------------------------------------------- *)

module Open_loop = struct
  type curve =
    | Constant of float
    | Ramp of { from_rate : float; to_rate : float; over : float }
    | Diurnal of { base : float; peak : float; period : float }
    | Storm of { base : float; peak : float; at : float; len : float }
    | Seq of (curve * float) list

  type op_kind = Read | Update | Insert | Scan | Rmw

  type key_dist = Uniform | Zipf of float | Latest of float

  type arrival = {
    at : float;
    op : Simnet.payload;
    reads : Btree.Keyset.t;
    writes : Btree.Keyset.t;
    size : int;
  }

  type t = {
    ol_rng : Sim.Rng.t;
    ol_key_range : int;
    ol_read_pct : int;
    ol_span : int;
    ol_rate : curve;
    ol_zipf : Sim.Rng.Zipf.gen option;
    ol_hot : (float * float * int) option;  (* start, len, pct from hot 1% *)
    ol_ops : (op_kind * int) list option;  (* weighted mix; None = legacy *)
    ol_dist : key_dist;
    mutable ol_max_key : int;  (* highest key Insert has allocated *)
    mutable ol_fresh : int;  (* unique write values *)
    mutable ol_pending : arrival option;  (* one-slot lookahead for peek *)
    mutable ol_clock : float;
    mutable ol_generated : int;
  }

  let pi = 4.0 *. atan 1.0

  (* Segments of a [Seq] are half-open [start, start + dur): an instant
     landing exactly on a boundary belongs to the next segment only, so a
     boundary tick is never evaluated (or issued) under both curves.  The
     last segment keeps running on its local clock forever.  Inner curves
     see segment-local time, so Ramp/Storm offsets compose naturally. *)
  let rec rate_of curve now =
    match curve with
    | Constant r -> r
    | Ramp { from_rate; to_rate; over } ->
        if now >= over then to_rate
        else from_rate +. ((to_rate -. from_rate) *. now /. over)
    | Diurnal { base; peak; period } ->
        (* Sinusoidal day: base at the trough, peak at the crest. *)
        let phase = sin (2.0 *. pi *. now /. period) in
        base +. ((peak -. base) *. (0.5 *. (1.0 +. phase)))
    | Storm { base; peak; at; len } ->
        if now >= at && now < at +. len then peak else base
    | Seq segs ->
        let rec walk start = function
          | [] -> 0.0
          | [ (c, _) ] -> rate_of c (now -. start)
          | (c, d) :: rest ->
              if now < start +. d then rate_of c (now -. start)
              else walk (start +. d) rest
        in
        walk 0.0 segs

  let rate_at t now = rate_of t.ol_rate now

  let create ?(zipf_s = 0.0) ?(read_pct = 50) ?(query_span = 100) ?hot_storm
      ?ops ?dist rng ~key_range ~rate =
    let dist =
      match dist with
      | Some d -> d
      | None -> if zipf_s > 0.0 then Zipf zipf_s else Uniform
    in
    let zipf =
      match dist with
      | Zipf s | Latest s -> Some (Sim.Rng.Zipf.create rng ~n:key_range ~s)
      | Uniform -> None
    in
    { ol_rng = rng;
      ol_key_range = key_range;
      ol_read_pct = read_pct;
      ol_span = query_span;
      ol_rate = rate;
      ol_zipf = zipf;
      ol_hot = hot_storm;
      ol_ops = ops;
      ol_dist = dist;
      ol_max_key = key_range;
      ol_fresh = 0;
      ol_pending = None;
      ol_clock = 0.0;
      ol_generated = 0 }

  let draw_key t =
    let hot_now =
      match t.ol_hot with
      | Some (start, len, pct) ->
          t.ol_clock >= start
          && t.ol_clock < start +. len
          && Sim.Rng.int t.ol_rng 100 < pct
      | None -> false
    in
    if hot_now then
      (* Hot-partition storm: hammer the bottom 1% of the key space. *)
      1 + Sim.Rng.int t.ol_rng (Stdlib.max 1 (t.ol_key_range / 100))
    else
      match (t.ol_dist, t.ol_zipf) with
      | Latest _, Some z ->
          (* Skew towards the most recently inserted keys: the zipf draw is
             a recency rank counted down from the newest key. *)
          let rank = Sim.Rng.Zipf.draw z in
          Stdlib.max 1 (t.ol_max_key - rank)
      | _, Some z -> 1 + Sim.Rng.Zipf.draw z
      | _, None -> 1 + Sim.Rng.int t.ol_rng t.ol_key_range

  let fresh_value t =
    t.ol_fresh <- t.ol_fresh + 1;
    t.ol_fresh

  let read_arrival t key =
    { at = t.ol_clock;
      op = Btree_service.Query { lo = key; hi = key };
      reads = Btree.Keyset.singleton key;
      writes = Btree.Keyset.empty;
      size = cmd_size }

  let scan_arrival t key =
    let hi = Stdlib.min t.ol_max_key (key + t.ol_span - 1) in
    { at = t.ol_clock;
      op = Btree_service.Query { lo = key; hi };
      reads = Btree.Keyset.range ~lo:key ~hi;
      writes = Btree.Keyset.empty;
      size = cmd_size }

  let update_arrival t key =
    (* Updates read the key they overwrite (insert returns the old value),
       so they are read-modify-write for conflict purposes. *)
    { at = t.ol_clock;
      op = Btree_service.Insert { key; value = fresh_value t };
      reads = Btree.Keyset.singleton key;
      writes = Btree.Keyset.singleton key;
      size = cmd_size }

  let insert_arrival t =
    t.ol_max_key <- t.ol_max_key + 1;
    let key = t.ol_max_key in
    { at = t.ol_clock;
      op = Btree_service.Insert { key; value = fresh_value t };
      reads = Btree.Keyset.singleton key;
      writes = Btree.Keyset.singleton key;
      size = cmd_size }

  let mixed_arrival t ops =
    let total = List.fold_left (fun acc (_, w) -> acc + Stdlib.max 0 w) 0 ops in
    let roll = Sim.Rng.int t.ol_rng (Stdlib.max 1 total) in
    let kind =
      let rec pick acc = function
        | [] -> Read
        | (k, w) :: rest ->
            let acc = acc + Stdlib.max 0 w in
            if roll < acc then k else pick acc rest
      in
      pick 0 ops
    in
    match kind with
    | Read -> read_arrival t (draw_key t)
    | Scan -> scan_arrival t (draw_key t)
    | Update | Rmw -> update_arrival t (draw_key t)
    | Insert -> insert_arrival t

  (* Advance the generator clock and produce one arrival.  Does NOT count
     it as generated: that happens when [next] hands it to the caller, so
     a lookahead the driver discards (first arrival past its horizon)
     never inflates the issued-ops denominator. *)
  let draw t =
    (* Poisson arrivals at the instantaneous rate: open loop, nothing waits
       for a response, so the generator stands in for an unbounded client
       population (a rate of 1e6/s models a million closed-loop clients at
       one command per second each). *)
    let rate = Stdlib.max 1e-9 (rate_at t t.ol_clock) in
    let dt = Sim.Rng.exponential t.ol_rng ~mean:(1.0 /. rate) in
    t.ol_clock <- t.ol_clock +. dt;
    match t.ol_ops with
    | Some ops -> mixed_arrival t ops
    | None ->
        (* Legacy mix: [read_pct] range scans, the rest single-key
           insert/delete read-modify-writes (draw-for-draw identical to the
           pre-mix generator, so seeded runs reproduce). *)
        let key = draw_key t in
        if Sim.Rng.int t.ol_rng 100 < t.ol_read_pct then begin
          let hi = Stdlib.min t.ol_key_range (key + t.ol_span - 1) in
          { at = t.ol_clock;
            op = Btree_service.Query { lo = key; hi };
            reads = Btree.Keyset.range ~lo:key ~hi;
            writes = Btree.Keyset.empty;
            size = cmd_size }
        end
        else begin
          let op =
            if Sim.Rng.bool t.ol_rng 0.5 then Btree_service.Insert { key; value = key }
            else Btree_service.Delete { key }
          in
          { at = t.ol_clock;
            op;
            reads = Btree.Keyset.singleton key;
            writes = Btree.Keyset.singleton key;
            size = cmd_size }
        end

  let next t =
    let a =
      match t.ol_pending with
      | Some a ->
          t.ol_pending <- None;
          a
      | None -> draw t
    in
    t.ol_generated <- t.ol_generated + 1;
    a

  let peek t =
    match t.ol_pending with
    | Some a -> a
    | None ->
        let a = draw t in
        t.ol_pending <- Some a;
        a

  let generated t = t.ol_generated
  let clock t = t.ol_clock
  let max_key t = t.ol_max_key
end
