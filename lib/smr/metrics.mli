(** Client-side measurement: completed commands per second and response
    time, as reported in the Chapter 4/6 figures. *)

type t

val create : Sim.Engine.t -> t

(** [command t ~born ~bytes] records a completed command. *)
val command : t -> born:float -> bytes:int -> unit

val completed : t -> int

(** Kilo-commands per second over a window (the paper's Kcps). *)
val kcps : t -> from:float -> till:float -> float

val mbps : t -> from:float -> till:float -> float
val lat_mean_ms : t -> float
val lat_p99_ms : t -> float

(** {1 Parallel-executor counters}

    Speculative execution reports re-executions here: [rollbacks] counts
    commands undone and re-executed, [conflicts] the read-write conflicts
    detected at commit.  Totals are summed across every replica that
    executes the stream (replicas are deterministic, so per-replica counts
    are equal). *)

val note_rollbacks : t -> int -> unit
val note_conflicts : t -> int -> unit
val rollbacks : t -> int
val conflicts : t -> int
