type Simnet.payload +=
  | CsRequest of { uid : int; client : int; op : Simnet.payload; born : float }
  | CsResp of { uid : int; born : float }

type t = {
  net : Simnet.t;
  service : Service.t;
  server : Simnet.proc;
  clients : Simnet.proc array;
  threads : float array;  (* per-executor-thread next-free time *)
  busy : Sim.Stats.Busy.t;
  gen : int -> Workload.command;
  metrics : Metrics.t;
  mutable next_uid : int;
}

let hdr = 64

(* Dispatch to the executor thread that frees up first. *)
let book t cost =
  let now = Simnet.now t.net in
  let best = ref 0 in
  Array.iteri (fun i free -> if free < t.threads.(!best) then best := i) t.threads;
  let start = Stdlib.max now t.threads.(!best) in
  let fin = start +. cost in
  t.threads.(!best) <- fin;
  Sim.Stats.Busy.add ~at:start t.busy cost;
  fin

let rec submit_next t client_idx =
  let cmd = t.gen client_idx in
  t.next_uid <- t.next_uid + 1;
  Simnet.send t.net ~src:t.clients.(client_idx) ~dst:t.server ~size:(cmd.size + hdr)
    (CsRequest { uid = t.next_uid; client = client_idx; op = cmd.op; born = Simnet.now t.net })

and server_handler t (m : Simnet.msg) =
  match m.payload with
  | CsRequest { uid; client; op; born } ->
      let o = t.service.execute op in
      let fin = book t o.cost in
      ignore
        (Sim.Engine.at (Simnet.engine t.net) ~time:fin (fun () ->
             Simnet.send t.net ~src:t.server ~dst:t.clients.(client) ~size:o.resp_size
               (CsResp { uid; born })))
  | _ -> ()

and client_handler t idx (m : Simnet.msg) =
  match m.payload with
  | CsResp { uid = _; born } ->
      Metrics.command t.metrics ~born ~bytes:m.size;
      submit_next t idx
  | _ -> ()

let create net ~n_threads ~service ~n_clients ~gen =
  let snode = Simnet.add_node net "cs-server" in
  let server = Simnet.add_proc net snode "cs-server" in
  let clients =
    Array.init n_clients (fun i ->
        let n = Simnet.add_node net (Printf.sprintf "cs-client%d" i) in
        Simnet.add_proc net n (Printf.sprintf "cs-client%d" i))
  in
  let t =
    { net;
      service;
      server;
      clients;
      threads = Array.make (Stdlib.max 1 n_threads) 0.0;
      busy = Sim.Stats.Busy.create ();
      gen;
      metrics = Metrics.create (Simnet.engine net);
      next_uid = 0 }
  in
  Simnet.set_handler server (server_handler t);
  Array.iteri (fun i p -> Simnet.set_handler p (client_handler t i)) clients;
  t

let start t =
  Array.iteri
    (fun i _ ->
      ignore (Simnet.after t.net (0.001 +. (1.0e-5 *. float_of_int i)) (fun () -> submit_next t i)))
    t.clients

let metrics t = t.metrics
let server_proc t = t.server
