type t = {
  engine : Sim.Engine.t;
  rate : Sim.Stats.Rate.t;
  lat : Sim.Stats.Latency.t;
  mutable rollbacks : int;
  mutable conflicts : int;
}

let create engine =
  { engine;
    rate = Sim.Stats.Rate.create ();
    lat = Sim.Stats.Latency.create ();
    rollbacks = 0;
    conflicts = 0 }

let command t ~born ~bytes =
  let now = Sim.Engine.now t.engine in
  Sim.Stats.Rate.add t.rate ~now ~bytes;
  Sim.Stats.Latency.add t.lat (now -. born)

let note_rollbacks t n = t.rollbacks <- t.rollbacks + n
let note_conflicts t n = t.conflicts <- t.conflicts + n
let rollbacks t = t.rollbacks
let conflicts t = t.conflicts

let completed t = Sim.Stats.Rate.events t.rate
let kcps t ~from ~till = Sim.Stats.Rate.events_per_sec t.rate ~from ~till /. 1e3
let mbps t ~from ~till = Sim.Stats.Rate.mbps t.rate ~from ~till
let lat_mean_ms t = Sim.Stats.Latency.mean t.lat *. 1e3
let lat_p99_ms t = Sim.Stats.Latency.percentile t.lat 0.99 *. 1e3
