(** Linearizability checker for single-register histories (Chapter 2's
    consistency definitions), used by the test suite to validate the SMR
    layer end to end.

    The checker performs an exhaustive Wing-Gong style search, so it is
    meant for the small histories tests produce (tens of operations). *)

type op = {
  kind : [ `Read of int option  (** observed value *) | `Write of int ];
  inv : float;  (** invocation time *)
  res : float;  (** response time *)
}

(** [check ~init history] decides whether the completed operations can be
    reordered to respect both register semantics and real time. *)
val check : init:int option -> op list -> bool

(** Multi-key histories, for the replicated KV service (lease-served local
    reads included).  Linearizability is compositional, so the exhaustive
    search runs independently per key; a stale read served off an expired
    or unrevoked lease after a conflicting write committed shows up as an
    unlinearizable sub-history for that key. *)
module Kv : sig
  type op = {
    key : int;
    kind :
      [ `Read of int option  (** observed value; [None] = key absent *)
      | `Write of int option  (** [Some v] insert/update, [None] delete *) ];
    inv : float;  (** invocation time *)
    res : float;  (** response time *)
  }

  (** [check ~init history] — [init key] is the value stored at [key]
      before the history began ([None] if absent). *)
  val check : init:(int -> int option) -> op list -> bool
end

(** [sequentially_consistent ~init histories] checks the weaker condition of
    §2.2.5: per-process order only.  [histories] groups ops by process. *)
val sequentially_consistent : init:int option -> op list list -> bool
