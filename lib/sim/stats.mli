(** Measurement helpers shared by every experiment.

    The conventions follow the paper's evaluation sections: throughput in
    megabits per second of application payload, latency in milliseconds,
    CPU as the fraction of wall (simulation) time a resource was busy.

    All accumulators are streaming and constant-memory: they bucket time
    into a fixed-width ring (default 100 ms buckets, ~102 s of history) so
    recording a sample is O(1) amortised and windowed queries are
    O(buckets), independent of how many samples were recorded.  Windows
    that reach further back than the retained horizon see zero
    contribution from the evicted region; every simulation in this repo
    runs far shorter than the default horizon. *)

(** Monotonically growing counter of events and bytes, with windowed
    rates and per-window time series (used for the timeline figures). *)
module Rate : sig
  type t

  (** [create ()] records nothing until the first {!add}.
      [bucket_width] (seconds, default 0.1) and [buckets] (default 1024)
      bound memory: only the last [bucket_width *. buckets] seconds are
      retained for windowed queries; lifetime totals are always exact. *)
  val create : ?bucket_width:float -> ?buckets:int -> unit -> t

  (** [add t ~now ~bytes] records one event of [bytes] payload at time [now]. *)
  val add : t -> now:float -> bytes:int -> unit

  (** [add_cell t ~now_cell ~bytes] is [add] with the timestamp read from
      the engine clock cell ({!Sim.Engine.now_cell}): no boxed float
      crosses the call, so the simnet packet path records rates with zero
      allocation.  Accounting is identical to [add ~now:now_cell.(0)]. *)
  val add_cell : t -> now_cell:float array -> bytes:int -> unit

  val events : t -> int
  val bytes : t -> int

  (** [mbps t ~from ~till] is payload throughput over the interval, in
      Mbps.  Exact when [from]/[till] fall on bucket edges; otherwise the
      edge buckets are prorated assuming uniform density. *)
  val mbps : t -> from:float -> till:float -> float

  (** [events_per_sec t ~from ~till] is the event rate over the interval. *)
  val events_per_sec : t -> from:float -> till:float -> float

  (** [series t ~window ~till] buckets recorded events into windows of
      [window] seconds from time 0 and returns [(window_end, mbps)] pairs. *)
  val series : t -> window:float -> till:float -> (float * float) list
end

(** Latency sample recorder with percentiles and CDF extraction.

    NaN samples are dropped on {!add} (tracked by {!dropped_nan}), so
    every derived statistic is well-defined; sorting uses [Float.compare]. *)
module Latency : sig
  type t

  (** [create ()] keeps every sample.  [create ~reservoir:k ()] keeps a
      uniform reservoir of at most [k] samples (Algorithm R, with a
      deterministic replacement stream) for multi-minute runs: {!count},
      {!mean} and {!max} stay exact, percentiles become estimates over
      the reservoir. *)
  val create : ?reservoir:int -> unit -> t

  val add : t -> float -> unit

  (** [count t] is the number of (non-NaN) samples recorded. *)
  val count : t -> int

  (** [dropped_nan t] is the number of NaN samples ignored by {!add}. *)
  val dropped_nan : t -> int

  (** [mean t] in the sample unit; [0.] when empty. *)
  val mean : t -> float

  (** [percentile t p] with [p] clamped to [\[0,1\]] (NaN treated as 0);
      [0.] when empty. *)
  val percentile : t -> float -> float

  (** [max t] is the largest sample ever recorded (exact even in
      reservoir mode); [0.] when empty. *)
  val max : t -> float

  (** [trimmed_mean t ~drop_top] is the mean after discarding the highest
      fraction [drop_top] of samples (the paper discards the top 5 % in the
      recoverable experiments). *)
  val trimmed_mean : t -> drop_top:float -> float

  (** [cdf t ~points] is an evenly spaced [(value, cum_fraction)] sketch. *)
  val cdf : t -> points:int -> (float * float) list
end

(** Busy-time accounting for a serially used resource (CPU, NIC, disk). *)
module Busy : sig
  type t

  (** Ring parameters as for {!Rate.create}. *)
  val create : ?bucket_width:float -> ?buckets:int -> unit -> t

  (** [add ~at t dur] accounts the busy interval [\[at, at +. dur)].
      Without [~at] the interval is assumed to start where the previous
      one ended (back-to-back work from time 0), which keeps legacy
      callers meaningful; timestamped attribution is strictly better. *)
  val add : ?at:float -> t -> float -> unit

  (** [add_at t ~now dur] is [add ~at:now t dur]. *)
  val add_at : t -> now:float -> float -> unit

  (** [add_tk t ~start_tk ~dur_tk] accounts the busy interval starting at
      engine tick [start_tk] lasting [dur_tk] ticks (2^20 ticks/second).
      Identical accounting to {!add} over the equivalent floats, with an
      int-only signature so tick-grid resource acquisitions allocate
      nothing. *)
  val add_tk : t -> start_tk:int -> dur_tk:int -> unit

  val total : t -> float

  (** [utilization t ~from ~till] is busy time {e inside} the window
      divided by the window length, as a percentage clamped to
      [\[0,100\]].  Busy intervals are split exactly across buckets, so
      bucket-aligned windows are exact and unaligned window edges are
      prorated. *)
  val utilization : t -> from:float -> till:float -> float

  (** [busy_in t ~from ~till] is the busy time (seconds) inside the window. *)
  val busy_in : t -> from:float -> till:float -> float

  (** [reset_window t ~now] marks the start of a measurement window. *)
  val reset_window : t -> now:float -> unit

  (** [window_utilization t ~now] is utilization since the last
      {!reset_window}, as a percentage. *)
  val window_utilization : t -> now:float -> float
end

(** One machine-readable metrics record for a measurement window,
    aggregating whichever of rate / latency / busy accumulators a run
    kept.  [bench/main.exe -- <exp> --json <file>] dumps a list of these. *)
module Snapshot : sig
  type t = {
    label : string;
    from_ : float;
    till : float;
    events : int;
    bytes : int;
    mbps : float;
    events_per_sec : float;
    lat_count : int;
    lat_mean : float;
    lat_p50 : float;
    lat_p95 : float;
    lat_p99 : float;
    lat_max : float;
    cpu_pct : float;
    counters : (string * int) list;
        (** protocol event counters (sorted name/count pairs), e.g. from
            {!Protocol.Counters.snapshot}; empty when a run kept none *)
  }

  (** [make ?rate ?latency ?busy ?counters ~label ~from ~till ()] evaluates
      the supplied accumulators over [\[from, till)]; omitted ones report
      zeros. *)
  val make :
    ?rate:Rate.t ->
    ?latency:Latency.t ->
    ?busy:Busy.t ->
    ?counters:(string * int) list ->
    label:string ->
    from:float ->
    till:float ->
    unit ->
    t

  (** [scalar ~label ()] records a row of already-reduced metrics — most
      experiments print derived throughput/latency scalars rather than
      keeping raw accumulators per row. *)
  val scalar :
    ?mbps:float ->
    ?events_per_sec:float ->
    ?lat_mean:float ->
    ?cpu_pct:float ->
    ?counters:(string * int) list ->
    label:string ->
    unit ->
    t

  (** [to_json t] is a single JSON object (no trailing newline). *)
  val to_json : t -> string
end
