(* Streaming, constant-memory measurement accumulators.

   Everything here sits on the innermost loop of the simulator: every
   packet, disk write and command funnels through [Rate]/[Busy]/[Latency]
   across the protocol libraries and the bench harness.  The accumulators
   therefore keep fixed-width time-bucket rings -- O(buckets) memory and
   query cost, O(1) amortised per sample -- instead of retaining every
   sample, which previously made [Rate] O(n) per query and unbounded in
   memory. *)

let default_bucket_width = 0.1
let default_buckets = 1024 (* ~102 s of history at the default width *)

(* Bucket index of [time].  The epsilon absorbs float-division noise so a
   sample recorded exactly on a bucket edge lands in the bucket that
   starts there (0.5 /. 0.1 evaluates below 5.0 in binary floats). *)
let bucket_index ~width time =
  int_of_float (floor ((time /. width) +. 1e-9))

(* Shared ring bookkeeping: which contiguous range of absolute bucket
   indices [first, last] is currently retained, and where each lives in a
   circular store of [cap] slots owned by the caller. *)
module Ring = struct
  type t = {
    width : float;
    cap : int;
    mutable first : int; (* lowest retained bucket index *)
    mutable last : int;  (* highest bucket index written; -1 when empty *)
  }

  let create ~width ~cap = { width; cap; first = 0; last = -1 }

  let slot t b = b mod t.cap

  let bucket t time = Stdlib.max 0 (bucket_index ~width:t.width time)

  (* Make bucket [b] addressable, recycling (via [clear]) any slots whose
     previous tenants fall off the horizon.  [-1] means [b] is older
     than the retained window: the caller should drop the per-bucket part
     (lifetime totals are kept separately).  Returns a bare int (not an
     option) so the per-sample path allocates nothing; callers pass a
     preallocated [clear] closure for the same reason. *)
  let locate_i t b ~clear =
    if t.last < 0 then begin
      t.first <- b;
      t.last <- b;
      let s = slot t b in
      clear s;
      s
    end
    else if b < t.first then -1
    else begin
      if b > t.last then begin
        let lo = Stdlib.max (t.last + 1) (b - t.cap + 1) in
        for i = lo to b do
          clear (slot t i)
        done;
        t.last <- b;
        if b - t.first >= t.cap then t.first <- b - t.cap + 1
      end;
      slot t b
    end

  (* [fold_window t ~from ~till f acc] folds [f acc slot covered_fraction]
     over the retained buckets intersecting [from, till).  Edge buckets
     contribute the fraction of the bucket the window covers, so
     bucket-aligned windows are exact and unaligned ones assume uniform
     density within the edge buckets. *)
  let fold_window t ~from ~till f acc =
    if t.last < 0 || till <= from then acc
    else begin
      let b0 = Stdlib.max t.first (bucket t from) in
      let b1 = Stdlib.min t.last (bucket t till) in
      let acc = ref acc in
      for b = b0 to b1 do
        let bs = float_of_int b *. t.width in
        let be = bs +. t.width in
        let lo = Stdlib.max from bs and hi = Stdlib.min till be in
        if hi > lo then begin
          let frac = (hi -. lo) /. t.width in
          let frac = if frac > 1.0 then 1.0 else frac in
          acc := f !acc (slot t b) frac
        end
      done;
      !acc
    end
end

module Rate = struct
  type t = {
    ring : Ring.t;
    ev : int array; (* events per retained bucket *)
    by : int array; (* bytes per retained bucket *)
    mutable events : int;
    mutable bytes : int;
    (* Preallocated slot-recycling closure: [Ring.locate_i] takes it on
       every sample, so building it per call would put one closure per
       packet on the minor heap. *)
    clear : int -> unit;
  }

  let create ?(bucket_width = default_bucket_width) ?(buckets = default_buckets) () =
    let cap = Stdlib.max 1 buckets in
    let ev = Array.make cap 0 in
    let by = Array.make cap 0 in
    { ring = Ring.create ~width:bucket_width ~cap;
      ev;
      by;
      events = 0;
      bytes = 0;
      clear =
        (fun s ->
          ev.(s) <- 0;
          by.(s) <- 0) }

  let add t ~now ~bytes =
    t.events <- t.events + 1;
    t.bytes <- t.bytes + bytes;
    let b = Ring.bucket t.ring now in
    (* -1 = older than the retained horizon: lifetime totals only *)
    let s = Ring.locate_i t.ring b ~clear:t.clear in
    if s >= 0 then begin
      t.ev.(s) <- t.ev.(s) + 1;
      t.by.(s) <- t.by.(s) + bytes
    end

  (* Same accounting as [add], with the timestamp read out of the engine
     clock cell: an unboxed load, so the packet path records rates with
     zero allocation. *)
  let add_cell t ~now_cell ~bytes =
    t.events <- t.events + 1;
    t.bytes <- t.bytes + bytes;
    let now = Array.unsafe_get (now_cell : float array) 0 in
    let b = bucket_index ~width:t.ring.Ring.width now in
    let b = if b < 0 then 0 else b in
    let s = Ring.locate_i t.ring b ~clear:t.clear in
    if s >= 0 then begin
      t.ev.(s) <- t.ev.(s) + 1;
      t.by.(s) <- t.by.(s) + bytes
    end

  let events t = t.events
  let bytes t = t.bytes

  let in_window t ~from ~till =
    Ring.fold_window t.ring ~from ~till
      (fun (n, b) s frac ->
        (n +. (frac *. float_of_int t.ev.(s)), b +. (frac *. float_of_int t.by.(s))))
      (0.0, 0.0)

  let mbps t ~from ~till =
    let span = till -. from in
    if span <= 0.0 then 0.0
    else
      let _, b = in_window t ~from ~till in
      b *. 8.0 /. span /. 1e6

  let events_per_sec t ~from ~till =
    let span = till -. from in
    if span <= 0.0 then 0.0 else fst (in_window t ~from ~till) /. span

  let series t ~window ~till =
    let nbuckets = Stdlib.max 1 (int_of_float (ceil (till /. window))) in
    List.init nbuckets (fun i ->
        let ws = window *. float_of_int i in
        let we = window *. float_of_int (i + 1) in
        let _, b = in_window t ~from:ws ~till:(Stdlib.min we till) in
        (we, b *. 8.0 /. window /. 1e6))
end

module Latency = struct
  type t = {
    reservoir : int; (* 0 = keep every sample *)
    mutable data : float array;
    mutable len : int;
    mutable n : int; (* finite samples recorded (NaN adds are dropped) *)
    mutable nans : int;
    mutable sum : float;
    mutable max_s : float;
    mutable cache : float array; (* sorted copy, rebuilt lazily per query generation *)
    mutable dirty : bool;
    mutable seed : int; (* deterministic stream for reservoir replacement *)
  }

  let create ?(reservoir = 0) () =
    { reservoir = Stdlib.max 0 reservoir;
      data = [||];
      len = 0;
      n = 0;
      nans = 0;
      sum = 0.0;
      max_s = neg_infinity;
      cache = [||];
      dirty = false;
      seed = 0x2545F491 }

  (* 48-bit LCG (java.util.Random constants); only used to pick reservoir
     victims, so statistical quality requirements are mild but determinism
     matters. *)
  let rand_below t n =
    t.seed <- ((t.seed * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    (t.seed lsr 17) mod n

  let append t x =
    if t.len = Array.length t.data then begin
      let ncap = Stdlib.max 64 (2 * t.len) in
      let nd = Array.make ncap 0.0 in
      Array.blit t.data 0 nd 0 t.len;
      t.data <- nd
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let add t x =
    if Float.is_nan x then t.nans <- t.nans + 1
    else begin
      t.n <- t.n + 1;
      t.sum <- t.sum +. x;
      if x > t.max_s then t.max_s <- x;
      if t.reservoir = 0 || t.len < t.reservoir then append t x
      else begin
        (* Algorithm R: after the reservoir fills, the i-th sample
           replaces a random slot with probability reservoir/i. *)
        let j = rand_below t t.n in
        if j < t.reservoir then t.data.(j) <- x
      end;
      t.dirty <- true
    end

  let count t = t.n
  let dropped_nan t = t.nans
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let max t = if t.n = 0 then 0.0 else t.max_s

  let sorted t =
    if t.dirty || Array.length t.cache <> t.len then begin
      let a = Array.sub t.data 0 t.len in
      Array.sort Float.compare a;
      t.cache <- a;
      t.dirty <- false
    end;
    t.cache

  let percentile t p =
    if t.len = 0 then 0.0
    else begin
      let p = if Float.is_nan p then 0.0 else Stdlib.min 1.0 (Stdlib.max 0.0 p) in
      let a = sorted t in
      let idx = int_of_float (p *. float_of_int (t.len - 1)) in
      a.(Stdlib.max 0 (Stdlib.min (t.len - 1) idx))
    end

  let trimmed_mean t ~drop_top =
    if t.len = 0 then 0.0
    else begin
      let a = sorted t in
      let keep =
        Stdlib.max 1 (int_of_float (float_of_int t.len *. (1.0 -. drop_top)))
      in
      let keep = Stdlib.min t.len keep in
      let sum = ref 0.0 in
      for i = 0 to keep - 1 do
        sum := !sum +. a.(i)
      done;
      !sum /. float_of_int keep
    end

  let cdf t ~points =
    if t.len = 0 then []
    else begin
      let a = sorted t in
      List.init points (fun i ->
          let frac = float_of_int (i + 1) /. float_of_int points in
          let idx =
            Stdlib.min (t.len - 1) (int_of_float (frac *. float_of_int (t.len - 1)))
          in
          (a.(idx), frac))
    end
end

module Busy = struct
  (* The float scalars live in a flat float array rather than mutable
     record fields: in a mixed record every write to a mutable float
     field boxes, and [add] runs per resource acquisition on the packet
     path. Slots: 0 total, 1 cursor (assumed start of the next
     un-timestamped add), 2 window_start, 3 window_busy, 4-5 the
     (start, dur) arguments of the pending [record_span] call. *)
  type t = {
    ring : Ring.t;
    per_bucket : float array; (* busy seconds per retained bucket *)
    fl : float array;
    clear : int -> unit; (* preallocated, see {!Rate.t} *)
  }

  let total_i = 0
  let cursor_i = 1
  let wstart_i = 2
  let wbusy_i = 3
  let span_start_i = 4
  let span_dur_i = 5

  let create ?(bucket_width = default_bucket_width) ?(buckets = default_buckets) () =
    let cap = Stdlib.max 1 buckets in
    let per_bucket = Array.make cap 0.0 in
    { ring = Ring.create ~width:bucket_width ~cap;
      per_bucket;
      fl = Array.make 6 0.0;
      clear = (fun s -> per_bucket.(s) <- 0.0) }

  (* Record the busy interval [fl.(4), fl.(4) +. fl.(5)), split exactly
     across the buckets it spans.  The interval arrives through the
     scratch slots of [fl] so no boxed float crosses the call. *)
  let record_span t =
    let start = Array.unsafe_get t.fl span_start_i in
    let dur = Array.unsafe_get t.fl span_dur_i in
    let fin = start +. dur in
    let b0 = Ring.bucket t.ring start in
    let b1 = Ring.bucket t.ring fin in
    for b = b0 to b1 do
      let bs = float_of_int b *. t.ring.Ring.width in
      let be = bs +. t.ring.Ring.width in
      let lo = Stdlib.max start bs and hi = Stdlib.min fin be in
      if hi > lo then begin
        let s = Ring.locate_i t.ring b ~clear:t.clear in
        if s >= 0 then t.per_bucket.(s) <- t.per_bucket.(s) +. (hi -. lo)
      end
    done

  (* [record_span] for the tick path, with [Ring.bucket] inlined by hand
     and monomorphic float compares: a float argument crossing a function
     boundary is boxed without flambda, and [Stdlib.max]/[min] box both
     arguments through the polymorphic call.  Runs once per resource
     acquisition on the packet path, so it must not allocate.  The float
     [record_span] above stays as-is: it serves the boxed reference mode
     and the unquantized [charge_cpu]/[exec] bookings, and computes
     identical bucket sums. *)
  let record_span_tk t =
    let start = Array.unsafe_get t.fl span_start_i in
    let dur = Array.unsafe_get t.fl span_dur_i in
    let fin = start +. dur in
    let width = t.ring.Ring.width in
    let b0 = int_of_float (floor ((start /. width) +. 1e-9)) in
    let b0 = if b0 < 0 then 0 else b0 in
    let b1 = int_of_float (floor ((fin /. width) +. 1e-9)) in
    let b1 = if b1 < 0 then 0 else b1 in
    for b = b0 to b1 do
      let bs = float_of_int b *. width in
      let be = bs +. width in
      let lo = if start > bs then start else bs
      and hi = if fin < be then fin else be in
      if hi > lo then begin
        let s = Ring.locate_i t.ring b ~clear:t.clear in
        if s >= 0 then t.per_bucket.(s) <- t.per_bucket.(s) +. (hi -. lo)
      end
    done

  let add ?at t dur =
    t.fl.(total_i) <- t.fl.(total_i) +. dur;
    t.fl.(wbusy_i) <- t.fl.(wbusy_i) +. dur;
    if dur > 0.0 then begin
      let start = match at with Some s -> s | None -> t.fl.(cursor_i) in
      t.fl.(span_start_i) <- start;
      t.fl.(span_dur_i) <- dur;
      record_span t;
      let fin = start +. dur in
      if fin > t.fl.(cursor_i) then t.fl.(cursor_i) <- fin
    end

  let add_at t ~now dur = add ~at:now t dur

  (* Tick-grid variant with an int-only signature: identical accounting
     to [add ~at:(start_tk / tps) (dur_tk / tps)], with every float a
     local or an array slot, so resource acquisition on the packet path
     records busy time with zero allocation. *)
  let ticks_per_second_f = float_of_int Wheel.ticks_per_second

  let add_tk t ~start_tk ~dur_tk =
    let start = float_of_int start_tk /. ticks_per_second_f in
    let dur = float_of_int dur_tk /. ticks_per_second_f in
    let fl = t.fl in
    Array.unsafe_set fl total_i (Array.unsafe_get fl total_i +. dur);
    Array.unsafe_set fl wbusy_i (Array.unsafe_get fl wbusy_i +. dur);
    if dur > 0.0 then begin
      Array.unsafe_set fl span_start_i start;
      Array.unsafe_set fl span_dur_i dur;
      record_span_tk t;
      let fin = start +. dur in
      if fin > Array.unsafe_get fl cursor_i then Array.unsafe_set fl cursor_i fin
    end

  let total t = t.fl.(total_i)

  let busy_in t ~from ~till =
    Ring.fold_window t.ring ~from ~till
      (fun acc s frac -> acc +. (frac *. t.per_bucket.(s)))
      0.0

  let utilization t ~from ~till =
    let span = till -. from in
    if span <= 0.0 then 0.0
    else
      let pct = busy_in t ~from ~till /. span *. 100.0 in
      Stdlib.min 100.0 (Stdlib.max 0.0 pct)

  let reset_window t ~now =
    t.fl.(wstart_i) <- now;
    t.fl.(wbusy_i) <- 0.0

  let window_utilization t ~now =
    let span = now -. t.fl.(wstart_i) in
    if span <= 0.0 then 0.0
    else Stdlib.min 100.0 (Stdlib.max 0.0 (t.fl.(wbusy_i) /. span *. 100.0))
end

module Snapshot = struct
  type t = {
    label : string;
    from_ : float;
    till : float;
    events : int;
    bytes : int;
    mbps : float;
    events_per_sec : float;
    lat_count : int;
    lat_mean : float;
    lat_p50 : float;
    lat_p95 : float;
    lat_p99 : float;
    lat_max : float;
    cpu_pct : float;
    counters : (string * int) list;
  }

  let make ?rate ?latency ?busy ?(counters = []) ~label ~from ~till () =
    let events, bytes, mbps, eps =
      match rate with
      | None -> (0, 0, 0.0, 0.0)
      | Some r ->
          ( Rate.events r,
            Rate.bytes r,
            Rate.mbps r ~from ~till,
            Rate.events_per_sec r ~from ~till )
    in
    let lat_count, lat_mean, lat_p50, lat_p95, lat_p99, lat_max =
      match latency with
      | None -> (0, 0.0, 0.0, 0.0, 0.0, 0.0)
      | Some l ->
          ( Latency.count l,
            Latency.mean l,
            Latency.percentile l 0.5,
            Latency.percentile l 0.95,
            Latency.percentile l 0.99,
            Latency.max l )
    in
    let cpu_pct =
      match busy with None -> 0.0 | Some b -> Busy.utilization b ~from ~till
    in
    { label; from_ = from; till; events; bytes; mbps; events_per_sec = eps;
      lat_count; lat_mean; lat_p50; lat_p95; lat_p99; lat_max; cpu_pct; counters }

  (* Most figures print already-reduced numbers (a throughput, a latency
     average); [scalar] records such a row without the raw accumulators. *)
  let scalar ?(mbps = 0.0) ?(events_per_sec = 0.0) ?(lat_mean = 0.0) ?(cpu_pct = 0.0)
      ?(counters = []) ~label () =
    { label; from_ = 0.0; till = 0.0; events = 0; bytes = 0; mbps; events_per_sec;
      lat_count = 0; lat_mean; lat_p50 = 0.0; lat_p95 = 0.0; lat_p99 = 0.0; lat_max = 0.0;
      cpu_pct; counters }

  let json_number f =
    if Float.is_nan f || Float.abs f = infinity then "null"
    else Printf.sprintf "%.6g" f

  let to_json t =
    let b = Buffer.create 256 in
    let field name v = Buffer.add_string b (Printf.sprintf "%S:%s" name v) in
    Buffer.add_char b '{';
    field "label" (Printf.sprintf "%S" t.label);
    Buffer.add_char b ',';
    field "from" (json_number t.from_);
    Buffer.add_char b ',';
    field "till" (json_number t.till);
    Buffer.add_char b ',';
    field "events" (string_of_int t.events);
    Buffer.add_char b ',';
    field "bytes" (string_of_int t.bytes);
    Buffer.add_char b ',';
    field "mbps" (json_number t.mbps);
    Buffer.add_char b ',';
    field "events_per_sec" (json_number t.events_per_sec);
    Buffer.add_char b ',';
    field "lat_count" (string_of_int t.lat_count);
    Buffer.add_char b ',';
    field "lat_mean" (json_number t.lat_mean);
    Buffer.add_char b ',';
    field "lat_p50" (json_number t.lat_p50);
    Buffer.add_char b ',';
    field "lat_p95" (json_number t.lat_p95);
    Buffer.add_char b ',';
    field "lat_p99" (json_number t.lat_p99);
    Buffer.add_char b ',';
    field "lat_max" (json_number t.lat_max);
    Buffer.add_char b ',';
    field "cpu_pct" (json_number t.cpu_pct);
    Buffer.add_char b ',';
    Buffer.add_string b "\"counters\":{";
    List.iteri
      (fun i (name, n) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%S:%d" name n))
      t.counters;
    Buffer.add_char b '}';
    Buffer.add_char b '}';
    Buffer.contents b
end
