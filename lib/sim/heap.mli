(** Array-based binary min-heap, polymorphic in the element type.

    The comparison function is fixed at creation time.  Used by the
    discrete-event engine as the pending-event queue, and exposed publicly
    because several protocol implementations need ordered buffers
    (e.g. out-of-order instance reassembly at learners). *)

type 'a t

(** [create cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : ('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> 'a -> unit

(** [pop h] removes and returns the minimum element.  The vacated slot is
    overwritten so the element is collectable once the caller drops it;
    the heap retains at most one filler element (the first ever pushed).
    The backing array keeps its capacity across transient empties — a
    heap that ping-pongs between 0 and 1 elements never reallocates; use
    {!clear} to release storage.
    @raise Invalid_argument if the heap is empty. *)
val pop : 'a t -> 'a

(** [peek h] returns the minimum element without removing it. *)
val peek : 'a t -> 'a option

(** [clear h] removes every element and releases the backing storage. *)
val clear : 'a t -> unit

(** [to_list h] is the (unsorted) list of elements currently stored. *)
val to_list : 'a t -> 'a list
