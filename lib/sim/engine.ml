(* Discrete-event engine over a pluggable queue: the timing wheel
   (default, zero-allocation steady state) or the original boxed-event
   binary heap, kept as the reference backend for equivalence tests and
   benchmarks.  Both fire events in (time, order) order, so a seeded run
   is byte-identical across backends. *)

type backend = [ `Wheel | `Heap ]

let default = ref `Wheel
let set_default_backend b = default := b
let get_default_backend () = !default

let backend_of_string = function
  | "wheel" -> `Wheel
  | "heap" -> `Heap
  | s -> invalid_arg (Printf.sprintf "Engine.backend_of_string: %S" s)

(* Reference backend: one boxed record per event; cancellation marks the
   record through a handle table keyed by sequence number. *)
type hev = { ht : float; horder : int; mutable hcancelled : bool; haction : unit -> unit }

type hstate = { heap : hev Heap.t; tbl : (int, hev) Hashtbl.t; mutable hlive : int }

type queue = Qwheel of Wheel.t | Qheap of hstate

type t = {
  mutable seq : int;
  (* The clock lives in a float array so the wheel's firing loop can
     update it without boxing. *)
  now_cell : float array;
  q : queue;
}

type handle = int

let compare_hev a b =
  let c = Float.compare a.ht b.ht in
  if c <> 0 then c else Int.compare a.horder b.horder

let create ?backend () =
  let b = match backend with Some b -> b | None -> !default in
  { seq = 0;
    now_cell = Array.make 1 0.0;
    q =
      (match b with
      | `Wheel -> Qwheel (Wheel.create ())
      | `Heap ->
          Qheap { heap = Heap.create compare_hev; tbl = Hashtbl.create 64; hlive = 0 }) }

let backend t = match t.q with Qwheel _ -> `Wheel | Qheap _ -> `Heap

let now t = t.now_cell.(0)

(* Read-only exposure of the clock cell: hot callers (simnet) read the
   current time without the boxed float that [now] returns. *)
let now_cell t = t.now_cell

let ticks_per_second = Wheel.ticks_per_second

let tick_scale = float_of_int ticks_per_second
let tick_width = 1.0 /. tick_scale

(* Duration -> ticks, rounded to nearest so quantization error stays
   within half a tick (~0.48 us) in both directions. *)
let ticks_of_duration d =
  let x = (d *. tick_scale) +. 0.5 in
  if x <= 0.0 then 0 else int_of_float x

(* Absolute time -> tick grid, truncating: the tick whose window contains
   [ts].  Grid-aligned times (every event fired through the tick path)
   round-trip exactly. *)
let ticks_of_time ts = if ts <= 0.0 then 0 else int_of_float (ts *. tick_scale)

let time_of_ticks tk = float_of_int tk *. tick_width

let heap_add hs ~time ~order f =
  let ev = { ht = time; horder = order; hcancelled = false; haction = f } in
  Heap.push hs.heap ev;
  Hashtbl.replace hs.tbl order ev;
  hs.hlive <- hs.hlive + 1;
  order

let at t ~time f =
  let nw = Array.unsafe_get t.now_cell 0 in
  let time = if time < nw then nw else time in
  t.seq <- t.seq + 1;
  match t.q with
  | Qwheel w -> Wheel.add w ~time ~order:t.seq f
  | Qheap hs -> heap_add hs ~time ~order:t.seq f

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(Array.unsafe_get t.now_cell 0 +. delay) f

let schedule_ticks t ~ticks f =
  let ticks = if ticks < 0 then 0 else ticks in
  t.seq <- t.seq + 1;
  match t.q with
  | Qwheel w -> Wheel.add_ticks w ~now:t.now_cell ~ticks ~order:t.seq f
  | Qheap hs ->
      let time =
        Array.unsafe_get t.now_cell 0
        +. (float_of_int ticks /. float_of_int ticks_per_second)
      in
      heap_add hs ~time ~order:t.seq f

let at_ticks t ~tick f =
  t.seq <- t.seq + 1;
  match t.q with
  | Qwheel w -> Wheel.add_abs w ~now:t.now_cell ~tick ~order:t.seq f
  | Qheap hs ->
      let nw = Array.unsafe_get t.now_cell 0 in
      let time = float_of_int tick *. tick_width in
      let time = if time < nw then nw else time in
      heap_add hs ~time ~order:t.seq f

let cancel t h =
  match t.q with
  | Qwheel w -> ignore (Wheel.cancel w h)
  | Qheap hs -> (
      match Hashtbl.find_opt hs.tbl h with
      | Some ev when not ev.hcancelled ->
          ev.hcancelled <- true;
          Hashtbl.remove hs.tbl h;
          hs.hlive <- hs.hlive - 1
      | _ -> ())

let pending t =
  match t.q with Qwheel w -> Wheel.live w | Qheap hs -> hs.hlive

let default_max = 200_000_000

(* Reference-backend firing loop, with the same budget semantics as the
   wheel: cancelled records drain for free, at most [max_events] live
   events fire, and the guard trips only when a fireable event remains. *)
let heap_run hs t ~until ~max_events ~who =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek hs.heap with
    | None -> continue := false
    | Some ev when ev.ht > until -> continue := false
    | Some ev ->
        if ev.hcancelled then ignore (Heap.pop hs.heap)
        else begin
          if !fired >= max_events then
            failwith (who ^ ": event budget exhausted");
          ignore (Heap.pop hs.heap);
          Hashtbl.remove hs.tbl ev.horder;
          hs.hlive <- hs.hlive - 1;
          t.now_cell.(0) <- ev.ht;
          ev.haction ();
          incr fired
        end
  done

let run_until t ~until ~max_events ~who =
  match t.q with
  | Qwheel w -> (
      try ignore (Wheel.run w ~now:t.now_cell ~until ~max_events)
      with Wheel.Budget -> failwith (who ^ ": event budget exhausted"))
  | Qheap hs -> heap_run hs t ~until ~max_events ~who

let run ?(max_events = default_max) t ~until =
  run_until t ~until ~max_events ~who:"Engine.run";
  if t.now_cell.(0) < until then t.now_cell.(0) <- until

let run_all ?(max_events = default_max) t =
  run_until t ~until:infinity ~max_events ~who:"Engine.run_all"
