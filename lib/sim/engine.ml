type t = {
  mutable now : float;
  mutable seq : int;
  mutable live : int;
  heap : event Heap.t;
}

and event = { time : float; order : int; h : handle; action : unit -> unit }

and handle = { mutable cancelled : bool; owner : t }

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.order b.order

let create () = { now = 0.0; seq = 0; live = 0; heap = Heap.create compare_event }

let now t = t.now

let at t ~time f =
  let time = if time < t.now then t.now else time in
  let h = { cancelled = false; owner = t } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap { time; order = t.seq; h; action = f };
  h

let schedule t ~delay f =
  let delay = if delay < 0.0 then 0.0 else delay in
  at t ~time:(t.now +. delay) f

(* [live] is decremented here rather than when the event is eventually
   popped, so [pending] counts only uncancelled events. *)
let cancel h =
  if not h.cancelled then begin
    h.cancelled <- true;
    h.owner.live <- h.owner.live - 1
  end

let step t =
  let ev = Heap.pop t.heap in
  if not ev.h.cancelled then begin
    t.live <- t.live - 1;
    t.now <- ev.time;
    ev.action ()
  end

let default_max = 200_000_000

let run ?(max_events = default_max) t ~until =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some ev when ev.time > until -> continue := false
    | Some _ ->
        step t;
        incr fired;
        if !fired > max_events then failwith "Engine.run: event budget exhausted"
  done;
  if t.now < until then t.now <- until

let run_all ?(max_events = default_max) t =
  let fired = ref 0 in
  while not (Heap.is_empty t.heap) do
    step t;
    incr fired;
    if !fired > max_events then failwith "Engine.run_all: event budget exhausted"
  done

let pending t = t.live
