(** Hierarchical timing wheel: the pending-event queue of {!Engine}.

    Four wheels of 256 slots each, keyed on integer ticks of virtual time
    (2^20 ticks per second, ~0.95 us resolution), with a binary heap of
    pooled record indices as the far-future overflow level and a second
    index heap (the "firing heap") holding the events of the tick window
    currently being drained.  Event records live in a struct-of-arrays
    pool and are recycled across fire/cancel cycles, so the steady-state
    [add_ticks]/[cancel]/[run] path allocates nothing: no event boxes, no
    handle records, no closure re-wrapping.

    Determinism contract (same as the engine's): events fire in
    [(time, order)] order, so same-instant events fire in scheduling
    order.  Within a tick the firing heap orders by the exact [float]
    time, which keeps the schedule byte-identical to a plain binary-heap
    queue over the same events.

    Cancelled events are purged lazily: [cancel] only marks the record,
    and a sweep reclaims marked records once they are at least half of
    the queue (and at least 64), bounding the memory of long-horizon
    runs that re-arm timers forever. *)

type t

(** Raised by {!run} when more than [max_events] events would fire. *)
exception Budget

val create : unit -> t

(** Virtual-time resolution: ticks per simulated second (2^20). *)
val ticks_per_second : int

(** [add t ~time ~order f] queues [f] at absolute [time]; [order] breaks
    same-time ties (callers pass a monotonically increasing sequence
    number).  Returns a generation-stamped integer handle for {!cancel}.
    Times are clamped into the far-future overflow level when they exceed
    the wheel horizon (~2^61 ticks), including [infinity]. *)
val add : t -> time:float -> order:int -> (unit -> unit) -> int

(** [add_ticks t ~now ~ticks ~order f] queues [f] at
    [now.(0) +. ticks / ticks_per_second].  Taking the delay as an
    integer and the clock as a float cell keeps every float unboxed, so
    this entry point allocates nothing at all. *)
val add_ticks : t -> now:float array -> ticks:int -> order:int -> (unit -> unit) -> int

(** [add_abs t ~now ~tick ~order f] queues [f] at absolute engine tick
    [tick] (i.e. [tick /. ticks_per_second] seconds), clamped to the
    clock when the tick is already past.  Like {!add_ticks} every float
    stays unboxed, so scheduling allocates nothing; unlike it the event
    lands exactly on the tick grid regardless of where the clock
    currently sits. *)
val add_abs : t -> now:float array -> tick:int -> order:int -> (unit -> unit) -> int

(** [cancel t h] prevents the event from firing.  Returns [true] when the
    handle named a live pending event (stale and duplicate handles are
    rejected by the generation stamp).  May trigger a lazy purge. *)
val cancel : t -> int -> bool

(** Number of pending, uncancelled events. *)
val live : t -> int

(** Queue occupancy including cancelled-but-unpurged records (tests). *)
val queued : t -> int

(** [run t ~now ~until ~max_events] fires events with [time <= until] in
    [(time, order)] order, writing each event's time into [now.(0)]
    before its action runs, and returns the number fired.  Cancelled
    records encountered on the way are recycled without counting against
    [max_events].  @raise Budget when a fireable event remains after
    [max_events] have fired. *)
val run : t -> now:float array -> until:float -> max_events:int -> int

(** Immediately reclaim cancelled records (tests; [cancel] also triggers
    this automatically past the lazy threshold). *)
val purge : t -> unit
