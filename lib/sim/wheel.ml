(* Hierarchical timing wheel over pooled event records.  See wheel.mli for
   the design contract; the invariants maintained throughout:

   - [fire_heap] holds every queued event whose tick is <= [cur_tick],
     ordered by (time, order).
   - wheel slots hold only events with tick > [cur_tick]; the slot under
     each level's cursor is empty.
   - [overflow] holds events more than 2^32 ticks ahead (or past the
     2^61-tick horizon), ordered by (time, order).

   [advance] preserves these by jumping [cur_tick] to the earliest
   occupied slot window (never past it) and cascading that window down
   before anything fires. *)

exception Budget

let bits = 8
let wheel_slots = 256 (* 1 lsl bits *)
let slot_mask = wheel_slots - 1
let levels = 4
let ticks_per_second = 1 lsl 20
let tick_scale = float_of_int ticks_per_second
let tick_width = 1.0 /. tick_scale

(* Ticks saturate at 2^61 so times beyond the wheel horizon (including
   [infinity]) order purely by their float time in the overflow heap. *)
let max_tick = 1 lsl 61

let horizon_s = float_of_int max_tick /. tick_scale

let gen_mask = 0x7FFFFFFF

let nop () = ()

(* Index heap: a binary min-heap of pool indices; ordering lives in the
   pool arrays, so push/pop never allocate (the backing array grows by
   doubling, amortised). *)
type ih = { mutable hdata : int array; mutable hlen : int }

type t = {
  (* Event-record pool, struct-of-arrays so the float column stays flat
     (writes never box). *)
  mutable p_time : float array;
  mutable p_tick : int array;
  mutable p_order : int array;
  mutable p_gen : int array;
  mutable p_state : int array; (* 0 free, 1 pending, 2 cancelled *)
  mutable p_action : (unit -> unit) array;
  mutable p_free : int array; (* free-list links *)
  mutable free_head : int;
  (* levels * wheel_slots buckets of record indices. *)
  s_data : int array array;
  s_len : int array;
  (* Occupancy bitmap, 32 slots per word, plus occupied-slot counts per
     level so [advance] skips empty levels without scanning. *)
  occ : int array;
  lvl_occupied : int array;
  mutable cur_tick : int;
  fire : ih;
  overflow : ih;
  mutable n_live : int;
  mutable n_cancelled : int;
}

let create () =
  let cap = 64 in
  let t =
    { p_time = Array.make cap 0.0;
      p_tick = Array.make cap 0;
      p_order = Array.make cap 0;
      p_gen = Array.make cap 0;
      p_state = Array.make cap 0;
      p_action = Array.make cap nop;
      p_free = Array.init cap (fun i -> i + 1);
      free_head = 0;
      s_data = Array.make (levels * wheel_slots) [||];
      s_len = Array.make (levels * wheel_slots) 0;
      occ = Array.make (levels * wheel_slots / 32) 0;
      lvl_occupied = Array.make levels 0;
      cur_tick = 0;
      fire = { hdata = [||]; hlen = 0 };
      overflow = { hdata = [||]; hlen = 0 };
      n_live = 0;
      n_cancelled = 0 }
  in
  t.p_free.(cap - 1) <- -1;
  t

let live t = t.n_live
let queued t = t.n_live + t.n_cancelled

(* ---------- pool ---------- *)

let grow_pool t =
  let cap = Array.length t.p_time in
  let ncap = cap * 2 in
  t.p_time <- (let a = Array.make ncap 0.0 in Array.blit t.p_time 0 a 0 cap; a);
  let grow_int old =
    let a = Array.make ncap 0 in
    Array.blit old 0 a 0 cap;
    a
  in
  t.p_tick <- grow_int t.p_tick;
  t.p_order <- grow_int t.p_order;
  t.p_gen <- grow_int t.p_gen;
  t.p_state <- grow_int t.p_state;
  t.p_free <- grow_int t.p_free;
  let a = Array.make ncap nop in
  Array.blit t.p_action 0 a 0 cap;
  t.p_action <- a;
  for i = cap to ncap - 2 do
    t.p_free.(i) <- i + 1
  done;
  t.p_free.(ncap - 1) <- -1;
  t.free_head <- cap

let alloc_idx t =
  if t.free_head < 0 then grow_pool t;
  let idx = t.free_head in
  t.free_head <- t.p_free.(idx);
  idx

let recycle t idx =
  t.p_action.(idx) <- nop;
  t.p_state.(idx) <- 0;
  t.p_gen.(idx) <- (t.p_gen.(idx) + 1) land gen_mask;
  t.p_free.(idx) <- t.free_head;
  t.free_head <- idx

(* ---------- index heaps, keyed by (p_time, p_order) ---------- *)

let ih_less t a b =
  let ta = Array.unsafe_get t.p_time a and tb = Array.unsafe_get t.p_time b in
  ta < tb
  || (ta = tb && Array.unsafe_get t.p_order a < Array.unsafe_get t.p_order b)

let ih_push t h idx =
  let len = h.hlen in
  if len = Array.length h.hdata then begin
    let a = Array.make (if len = 0 then 16 else len * 2) 0 in
    Array.blit h.hdata 0 a 0 len;
    h.hdata <- a
  end;
  h.hdata.(len) <- idx;
  h.hlen <- len + 1;
  let i = ref len in
  let d = h.hdata in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if ih_less t d.(!i) d.(parent) then begin
      let tmp = d.(!i) in
      d.(!i) <- d.(parent);
      d.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let ih_sift_down t h i0 =
  let d = h.hdata and len = h.hlen in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < len && ih_less t d.(l) d.(!m) then m := l;
    if r < len && ih_less t d.(r) d.(!m) then m := r;
    if !m <> !i then begin
      let tmp = d.(!i) in
      d.(!i) <- d.(!m);
      d.(!m) <- tmp;
      i := !m
    end
    else continue := false
  done

let ih_pop t h =
  let top = h.hdata.(0) in
  h.hlen <- h.hlen - 1;
  if h.hlen > 0 then begin
    h.hdata.(0) <- h.hdata.(h.hlen);
    ih_sift_down t h 0
  end;
  top

(* ---------- wheel slots ---------- *)

let set_occ t si =
  t.occ.(si lsr 5) <- t.occ.(si lsr 5) lor (1 lsl (si land 31));
  t.lvl_occupied.(si lsr bits) <- t.lvl_occupied.(si lsr bits) + 1

let clear_occ t si =
  t.occ.(si lsr 5) <- t.occ.(si lsr 5) land lnot (1 lsl (si land 31));
  t.lvl_occupied.(si lsr bits) <- t.lvl_occupied.(si lsr bits) - 1

let slot_push t si idx =
  let len = t.s_len.(si) in
  let arr = t.s_data.(si) in
  let arr =
    if len = Array.length arr then begin
      let a = Array.make (if len = 0 then 8 else len * 2) 0 in
      Array.blit arr 0 a 0 len;
      t.s_data.(si) <- a;
      a
    end
    else arr
  in
  arr.(len) <- idx;
  t.s_len.(si) <- len + 1;
  if len = 0 then set_occ t si

(* Route a record to the right level by its distance from [cur_tick].
   delta <= 0 means "due now": straight to the firing heap. *)
let add_at_tick t idx tick =
  let d = tick - t.cur_tick in
  if d <= 0 then ih_push t t.fire idx
  else if d < wheel_slots then slot_push t (tick land slot_mask) idx
  else if d < 1 lsl 16 then slot_push t (wheel_slots + ((tick asr 8) land slot_mask)) idx
  else if d < 1 lsl 24 then slot_push t ((2 * wheel_slots) + ((tick asr 16) land slot_mask)) idx
  else if d < 1 lsl 32 then slot_push t ((3 * wheel_slots) + ((tick asr 24) land slot_mask)) idx
  else ih_push t t.overflow idx

let add t ~time ~order f =
  let idx = alloc_idx t in
  t.p_time.(idx) <- time;
  t.p_order.(idx) <- order;
  t.p_action.(idx) <- f;
  t.p_state.(idx) <- 1;
  let tick = if time >= horizon_s then max_tick else int_of_float (time *. tick_scale) in
  t.p_tick.(idx) <- tick;
  t.n_live <- t.n_live + 1;
  add_at_tick t idx tick;
  (idx lsl 31) lor t.p_gen.(idx)

let add_ticks t ~now ~ticks ~order f =
  let idx = alloc_idx t in
  let time = Array.unsafe_get now 0 +. (float_of_int ticks *. tick_width) in
  t.p_time.(idx) <- time;
  t.p_order.(idx) <- order;
  t.p_action.(idx) <- f;
  t.p_state.(idx) <- 1;
  let tick = if time >= horizon_s then max_tick else int_of_float (time *. tick_scale) in
  t.p_tick.(idx) <- tick;
  t.n_live <- t.n_live + 1;
  add_at_tick t idx tick;
  (idx lsl 31) lor t.p_gen.(idx)

(* Absolute-tick entry point: the event lands exactly on the tick grid
   (time = tick * 2^-20 s), clamped to the clock when the tick is in the
   past, like [Engine.at].  Tick-grid floats below 2^52 round-trip
   exactly through [int_of_float (time *. tick_scale)], so the stored
   tick equals the argument whenever no clamping happened. *)
let add_abs t ~now ~tick ~order f =
  let idx = alloc_idx t in
  let nw = Array.unsafe_get now 0 in
  let time = float_of_int tick *. tick_width in
  let time = if time < nw then nw else time in
  t.p_time.(idx) <- time;
  t.p_order.(idx) <- order;
  t.p_action.(idx) <- f;
  t.p_state.(idx) <- 1;
  let tick = if time >= horizon_s then max_tick else int_of_float (time *. tick_scale) in
  t.p_tick.(idx) <- tick;
  t.n_live <- t.n_live + 1;
  add_at_tick t idx tick;
  (idx lsl 31) lor t.p_gen.(idx)

(* ---------- purge of cancelled records ---------- *)

let ih_compact t h =
  let d = h.hdata in
  let w = ref 0 in
  for r = 0 to h.hlen - 1 do
    let idx = d.(r) in
    if t.p_state.(idx) = 1 then begin
      d.(!w) <- idx;
      incr w
    end
    else recycle t idx
  done;
  h.hlen <- !w;
  for i = (!w / 2) - 1 downto 0 do
    ih_sift_down t h i
  done

let purge t =
  for si = 0 to (levels * wheel_slots) - 1 do
    let len = t.s_len.(si) in
    if len > 0 then begin
      let arr = t.s_data.(si) in
      let w = ref 0 in
      for r = 0 to len - 1 do
        let idx = arr.(r) in
        if t.p_state.(idx) = 1 then begin
          arr.(!w) <- idx;
          incr w
        end
        else recycle t idx
      done;
      t.s_len.(si) <- !w;
      if !w = 0 then clear_occ t si
    end
  done;
  ih_compact t t.fire;
  ih_compact t t.overflow;
  t.n_cancelled <- 0

let cancel t h =
  let idx = h asr 31 in
  let gen = h land gen_mask in
  if
    idx >= 0
    && idx < Array.length t.p_state
    && t.p_state.(idx) = 1
    && t.p_gen.(idx) = gen
  then begin
    t.p_state.(idx) <- 2;
    t.n_live <- t.n_live - 1;
    t.n_cancelled <- t.n_cancelled + 1;
    (* Lazy reclamation: once cancelled records are half the queue (and
       enough to matter), sweep them out so re-arm-forever workloads
       stay O(live events). *)
    if t.n_cancelled >= 64 && 2 * t.n_cancelled >= t.n_live + t.n_cancelled then
      purge t;
    true
  end
  else false

(* ---------- cursor advance ---------- *)

(* Scan the occupancy words of one level for the first occupied slot in
   [lo, hi]; -1 if none.  A top-level function (not a local closure) so
   the firing loop stays allocation-free. *)
let scan_occ t base lo hi =
  if lo > hi then -1
  else begin
    let res = ref (-1) in
    let w0 = lo lsr 5 in
    let w = ref w0 in
    let w1 = hi lsr 5 in
    while !res < 0 && !w <= w1 do
      let word = ref t.occ.(base + !w) in
      if !w = w0 then word := !word land ((-1) lsl (lo land 31));
      if !w = w1 && hi land 31 < 31 then
        word := !word land ((1 lsl ((hi land 31) + 1)) - 1);
      if !word <> 0 then begin
        let x = !word land (- !word) in
        let bit = ref 0 in
        let v = ref x in
        while !v land 1 = 0 do
          v := !v lsr 1;
          incr bit
        done;
        res := (!w lsl 5) lor !bit
      end
      else incr w
    done;
    !res
  end

(* First occupied slot of [level] in circular order strictly after the
   cursor (the cursor's own slot is empty by invariant); -1 if the level
   is empty. *)
let next_occupied t level cs =
  let base = level * (wheel_slots / 32) in
  let s = scan_occ t base (cs + 1) (wheel_slots - 1) in
  if s >= 0 then s else scan_occ t base 0 cs

(* Absolute tick at which [slot] of [level] becomes the cursor slot:
   the start of its window in the current revolution, or the next one if
   the cursor already passed it. *)
let due_tick t level slot =
  let c = t.cur_tick asr (bits * level) in
  let cs = c land slot_mask in
  let high = c asr bits in
  let rev = if slot > cs then high else high + 1 in
  ((rev lsl bits) lor slot) lsl (bits * level)

(* Jump [cur_tick] to the earliest occupied window and cascade that
   window's events down (deepest level first, so redistributed events are
   seen by the lower levels in the same pass).  Returns false when the
   whole structure is empty.  The firing heap may still be empty after a
   successful advance (the window's events all live deeper); callers
   loop, and each iteration strictly increases [cur_tick]. *)
let advance t =
  let best = ref max_int in
  (* Fast path: if level 0 has an occupied slot ahead of the cursor in
     the current 256-tick block, its due tick precedes every
     higher-level window (those start at 256-aligned ticks strictly
     after [cur_tick]), so the higher levels need no scan at all — and
     after the jump only that one slot can need cascading (the
     higher-level cursor slots are unchanged).  [fast0] records that
     both shortcuts apply. *)
  let fast0 = ref false in
  let cs0 = t.cur_tick land slot_mask in
  if t.lvl_occupied.(0) > 0 then begin
    let s0 = scan_occ t 0 (cs0 + 1) (wheel_slots - 1) in
    if s0 >= 0 then begin
      best := t.cur_tick land lnot slot_mask lor s0;
      fast0 := true
    end
    else begin
      let s = scan_occ t 0 0 cs0 in
      if s >= 0 then best := due_tick t 0 s
    end
  end;
  if not !fast0 then
    for level = 1 to levels - 1 do
      if t.lvl_occupied.(level) > 0 then begin
        let cs = (t.cur_tick asr (bits * level)) land slot_mask in
        let s = next_occupied t level cs in
        if s >= 0 then begin
          let d = due_tick t level s in
          if d < !best then best := d
        end
      end
    done;
  if t.overflow.hlen > 0 then begin
    let tk = t.p_tick.(t.overflow.hdata.(0)) in
    if tk < !best then begin
      best := tk;
      fast0 := false
    end
  end;
  if !best = max_int then false
  else begin
    t.cur_tick <- !best;
    (if !fast0 then begin
       (* Within one block a level-0 slot holds a single tick value, now
          equal to [cur_tick]: its events go straight to the firing
          heap. *)
       let si = t.cur_tick land slot_mask in
       let len = t.s_len.(si) in
       if len > 0 then begin
         let arr = t.s_data.(si) in
         t.s_len.(si) <- 0;
         clear_occ t si;
         for i = 0 to len - 1 do
           ih_push t t.fire arr.(i)
         done
       end
     end
     else
       for level = levels - 1 downto 0 do
         let s = (t.cur_tick asr (bits * level)) land slot_mask in
         let si = (level * wheel_slots) + s in
         let len = t.s_len.(si) in
         if len > 0 then begin
           let arr = t.s_data.(si) in
           t.s_len.(si) <- 0;
           clear_occ t si;
           for i = 0 to len - 1 do
             let idx = arr.(i) in
             add_at_tick t idx t.p_tick.(idx)
           done
         end
       done);
    while
      t.overflow.hlen > 0 && t.p_tick.(t.overflow.hdata.(0)) <= t.cur_tick
    do
      ih_push t t.fire (ih_pop t t.overflow)
    done;
    true
  end

(* ---------- the firing loop ---------- *)

let run t ~now ~until ~max_events =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    (* Cancelled records surface here and are recycled without being
       charged to the event budget. *)
    while t.fire.hlen > 0 && t.p_state.(t.fire.hdata.(0)) <> 1 do
      let idx = ih_pop t t.fire in
      t.n_cancelled <- t.n_cancelled - 1;
      recycle t idx
    done;
    if t.fire.hlen = 0 then begin
      if not (advance t) then continue := false
    end
    else begin
      let top = t.fire.hdata.(0) in
      let tm = Array.unsafe_get t.p_time top in
      if tm > until then continue := false
      else begin
        if !fired >= max_events then raise Budget;
        ignore (ih_pop t t.fire);
        let f = t.p_action.(top) in
        recycle t top;
        t.n_live <- t.n_live - 1;
        Array.unsafe_set now 0 tm;
        f ();
        incr fired
      end
    end
  done;
  !fired
