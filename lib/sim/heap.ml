type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  (* Filler written into vacated slots so popped elements (and whatever
     their closures capture) become collectable.  Holds at most one
     element -- the first ever pushed -- which is the only value a heap
     may pin beyond its live contents; dropped again when the heap
     empties. *)
  mutable dummy : 'a array;
}

let create cmp = { cmp; data = [||]; size = 0; dummy = [||] }

let is_empty h = h.size = 0

let length h = h.size

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap h.dummy.(0) in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let push h x =
  if Array.length h.dummy = 0 then h.dummy <- [| x |];
  grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let release_storage h =
  h.data <- [||];
  h.dummy <- [||]

(* Capacity is kept across transient empties: a ping-pong workload (one
   event in flight at a time, the `run ~until` idle pattern) must not
   reallocate the backing array from scratch on every push.  Only [clear]
   releases storage; an empty heap pins just the filler element. *)
let pop h =
  if h.size = 0 then invalid_arg "Heap.pop: empty heap";
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- h.dummy.(0);
    sift_down h 0
  end
  else h.data.(0) <- h.dummy.(0);
  top

let peek h = if h.size = 0 then None else Some h.data.(0)

let clear h =
  h.size <- 0;
  release_storage h

let to_list h =
  let rec go i acc = if i < 0 then acc else go (i - 1) (h.data.(i) :: acc) in
  go (h.size - 1) []
