(** Discrete-event simulation engine.

    Time is a [float] in seconds.  Events scheduled for the same instant run
    in scheduling order (a monotonically increasing sequence number breaks
    ties), which keeps runs deterministic. *)

type t

(** Cancellation handle for a scheduled event. *)
type handle

(** [create ()] is a fresh engine with the clock at [0.0]. *)
val create : unit -> t

(** [now t] is the current simulation time in seconds. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at [now t +. delay].
    Negative delays are clamped to zero. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [at t ~time f] runs [f] at absolute [time] (clamped to [now t]). *)
val at : t -> time:float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing; idempotent.  The event is
    uncounted from {!pending} immediately (not when its slot drains). *)
val cancel : handle -> unit

(** [run t ~until] processes events in time order until the queue drains or
    the clock would pass [until]; the clock is left at [min until last_event].
    Raises [Failure] if more than [max_events] fire (runaway guard,
    default 200 million). *)
val run : ?max_events:int -> t -> until:float -> unit

(** [run_all t] processes events until the queue is empty. *)
val run_all : ?max_events:int -> t -> unit

(** [pending t] is the number of scheduled (uncancelled) events. *)
val pending : t -> int
