(** Discrete-event simulation engine.

    Time is a [float] in seconds.  Events scheduled for the same instant run
    in scheduling order (a monotonically increasing sequence number breaks
    ties), which keeps runs deterministic.

    Two queue backends implement that contract identically: the default
    hierarchical {!Wheel} (pooled event records, zero allocation on the
    steady-state schedule/fire path) and the original binary heap of boxed
    events, kept as the reference for equivalence tests and benchmarks.  A
    seeded run is byte-identical across backends. *)

type t

(** Cancellation handle for a scheduled event: a generation-stamped
    immediate integer, so scheduling allocates nothing. *)
type handle

type backend = [ `Wheel | `Heap ]

(** [create ()] is a fresh engine with the clock at [0.0], using the
    [backend] given here or else the process-wide default. *)
val create : ?backend:backend -> unit -> t

(** Process-wide default backend for subsequent {!create} calls (the
    experiment harness sets this from [--engine <wheel|heap>]). *)
val set_default_backend : backend -> unit

val get_default_backend : unit -> backend

(** @raise Invalid_argument on anything but ["wheel"] or ["heap"]. *)
val backend_of_string : string -> backend

val backend : t -> backend

(** [now t] is the current simulation time in seconds. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at [now t +. delay].
    Negative delays are clamped to zero. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** Virtual-time resolution of {!schedule_ticks}: 2^20 ticks per second
    (~0.95 us). *)
val ticks_per_second : int

(** [schedule_ticks t ~ticks f] runs [f] at [now t] plus [ticks] engine
    ticks (clamped to zero).  Taking the delay as an integer keeps the
    whole scheduling path free of float boxing, so hot callers can arm
    timers with zero allocation. *)
val schedule_ticks : t -> ticks:int -> (unit -> unit) -> handle

(** [at_ticks t ~tick f] runs [f] at absolute engine tick [tick]
    ([tick /. ticks_per_second] seconds, clamped to [now t] when past).
    Zero-allocation like {!schedule_ticks}, but the event lands exactly
    on the tick grid even when the clock currently sits off-grid — the
    simnet hot path schedules every hop this way so both its
    implementations produce identical event times. *)
val at_ticks : t -> tick:int -> (unit -> unit) -> handle

(** [ticks_of_duration d] is [d] seconds in engine ticks, rounded to
    nearest (error at most half a tick, ~0.48 us); never negative. *)
val ticks_of_duration : float -> int

(** [ticks_of_time ts] is the tick whose window contains absolute time
    [ts] (truncating); grid-aligned times round-trip exactly. *)
val ticks_of_time : float -> int

(** [time_of_ticks tk] is the absolute time of tick [tk], in seconds. *)
val time_of_ticks : int -> float

(** [now_cell t] is the engine clock as a 1-element float array — the
    cell the firing loop writes — so hot paths can read the time without
    the boxed float {!now} returns.  Read-only for callers. *)
val now_cell : t -> float array

(** [at t ~time f] runs [f] at absolute [time] (clamped to [now t]). *)
val at : t -> time:float -> (unit -> unit) -> handle

(** [cancel t h] prevents the event from firing; idempotent, and a no-op
    once the event has fired.  The event is uncounted from {!pending}
    immediately; its queue slot is reclaimed lazily. *)
val cancel : t -> handle -> unit

(** [run t ~until] processes events with [time <= until] until the queue
    drains or the next event lies beyond [until]; the clock is left at
    [max until last_event_time].  Raises [Failure] if more than
    [max_events] events fire (runaway guard, default 200 million):
    exactly [max_events] may fire, and cancelled events drain for free. *)
val run : ?max_events:int -> t -> until:float -> unit

(** [run_all t] processes events until the queue is empty. *)
val run_all : ?max_events:int -> t -> unit

(** [pending t] is the number of scheduled (uncancelled) events. *)
val pending : t -> int
