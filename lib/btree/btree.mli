(** In-memory B+-tree over [int] keys and values — the replicated service of
    Chapter 4 (§4.4.2: insert, delete and range queries over 8-byte
    integers).

    Leaves are linked for efficient range scans.  The structure is
    deterministic: replicas applying the same operation sequence hold
    structurally identical trees, which the SMR tests rely on. *)

type t

(** [create ~order ()] makes an empty tree; [order] is the maximum number of
    keys per node (default 64, minimum 4). *)
val create : ?order:int -> unit -> t

(** [insert t k v] inserts or overwrites; returns the previous value. *)
val insert : t -> int -> int -> int option

(** [delete t k] removes [k]; returns the value it had. *)
val delete : t -> int -> int option

val find : t -> int -> int option

(** [range t ~lo ~hi] is the [(key, value)] pairs with [lo <= key <= hi],
    in ascending key order. *)
val range : t -> lo:int -> hi:int -> (int * int) list

(** [range_count t ~lo ~hi] counts without materialising. *)
val range_count : t -> lo:int -> hi:int -> int

(** Number of keys stored. *)
val size : t -> int

val min_key : t -> int option
val max_key : t -> int option

(** [iter t f] visits all pairs in ascending key order. *)
val iter : t -> (int -> int -> unit) -> unit

(** [check t] verifies structural invariants (sorted keys, node occupancy,
    leaf links, consistent depth); raises [Failure] on violation. *)
val check : t -> unit

(** [populate t ~n ~key_range ~seed] inserts [n] distinct random keys
    (value = key), for experiment setup. *)
val populate : t -> n:int -> key_range:int -> seed:int -> unit

(** Key-set conflict predicate for parallel executors: normalised sets of
    inclusive key ranges with a linear-merge overlap test.  Two commands
    conflict when either's write set intersects the other's read or write
    set; read-read sharing is always safe. *)
module Keyset : sig
  type t

  val empty : t

  (** The whole key space ([min_int, max_int]): a command that conflicts
      with everything, e.g. a multi-object update of unknown footprint. *)
  val full : t

  val is_empty : t -> bool
  val singleton : int -> t

  (** [range ~lo ~hi] is empty when [hi < lo]. *)
  val range : lo:int -> hi:int -> t

  (** [of_ranges l] sorts, de-duplicates and merges overlapping or
      adjacent ranges; empty ranges are dropped. *)
  val of_ranges : (int * int) list -> t

  (** The normalised ranges, ascending and disjoint. *)
  val ranges : t -> (int * int) list

  val overlaps : t -> t -> bool

  (** [subset a b] — every key of [a] lies in [b] (the lease read tier
      asks whether a read's key-set is covered by a held lease). *)
  val subset : t -> t -> bool

  (** [conflict ~r1 ~w1 ~r2 ~w2] — command 1 reads [r1] / writes [w1],
      command 2 reads [r2] / writes [w2]. *)
  val conflict : r1:t -> w1:t -> r2:t -> w2:t -> bool
end
