type leaf = {
  mutable lkeys : int array;
  mutable lvals : int array;
  mutable next : leaf option;
}

type node = Leaf of leaf | Internal of internal

and internal = {
  mutable ikeys : int array;  (* separators; length = children - 1 *)
  mutable children : node array;
}

type t = { order : int; mutable root : node; mutable size : int }

let create ?(order = 64) () =
  let order = Stdlib.max 4 order in
  { order; root = Leaf { lkeys = [||]; lvals = [||]; next = None }; size = 0 }

(* --- array helpers ------------------------------------------------------- *)

let arr_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let arr_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

(* First index with a.(i) >= key, by binary search. *)
let lower_bound a key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

(* Child to descend into for [key]: first separator greater than key. *)
let child_index ikeys key =
  let lo = ref 0 and hi = ref (Array.length ikeys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ikeys.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- find ------------------------------------------------------------------ *)

let rec leaf_for node key =
  match node with
  | Leaf l -> l
  | Internal n -> leaf_for n.children.(child_index n.ikeys key) key

let find t key =
  let l = leaf_for t.root key in
  let i = lower_bound l.lkeys key in
  if i < Array.length l.lkeys && l.lkeys.(i) = key then Some l.lvals.(i) else None

(* --- insert ----------------------------------------------------------------- *)

type split = NoSplit | Split of int * node

let split_leaf t l =
  let n = Array.length l.lkeys in
  if n <= t.order then NoSplit
  else begin
    let mid = n / 2 in
    let right =
      { lkeys = Array.sub l.lkeys mid (n - mid);
        lvals = Array.sub l.lvals mid (n - mid);
        next = l.next }
    in
    l.lkeys <- Array.sub l.lkeys 0 mid;
    l.lvals <- Array.sub l.lvals 0 mid;
    l.next <- Some right;
    Split (right.lkeys.(0), Leaf right)
  end

let split_internal t n =
  let k = Array.length n.ikeys in
  if k <= t.order then NoSplit
  else begin
    let mid = k / 2 in
    let sep = n.ikeys.(mid) in
    let right =
      { ikeys = Array.sub n.ikeys (mid + 1) (k - mid - 1);
        children = Array.sub n.children (mid + 1) (Array.length n.children - mid - 1) }
    in
    n.ikeys <- Array.sub n.ikeys 0 mid;
    n.children <- Array.sub n.children 0 (mid + 1);
    Split (sep, Internal right)
  end

let rec insert_rec t node key value =
  match node with
  | Leaf l ->
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && l.lkeys.(i) = key then begin
        let old = l.lvals.(i) in
        l.lvals.(i) <- value;
        (Some old, NoSplit)
      end
      else begin
        l.lkeys <- arr_insert l.lkeys i key;
        l.lvals <- arr_insert l.lvals i value;
        t.size <- t.size + 1;
        (None, split_leaf t l)
      end
  | Internal n -> (
      let i = child_index n.ikeys key in
      let old, sp = insert_rec t n.children.(i) key value in
      match sp with
      | NoSplit -> (old, NoSplit)
      | Split (sep, right) ->
          n.ikeys <- arr_insert n.ikeys i sep;
          n.children <- arr_insert n.children (i + 1) right;
          (old, split_internal t n))

let insert t key value =
  let old, sp = insert_rec t t.root key value in
  (match sp with
  | NoSplit -> ()
  | Split (sep, right) ->
      t.root <- Internal { ikeys = [| sep |]; children = [| t.root; right |] });
  old

(* --- delete ------------------------------------------------------------------ *)

let min_keys t = t.order / 2

let leaf_len = function Leaf l -> Array.length l.lkeys | Internal n -> Array.length n.ikeys

(* Rebalance child [i] of internal [n] after a deletion left it under
   occupancy: borrow from a sibling when possible, otherwise merge. *)
let rebalance t n i =
  let borrow_from_left () =
    match (n.children.(i - 1), n.children.(i)) with
    | Leaf left, Leaf cur ->
        let k = Array.length left.lkeys - 1 in
        cur.lkeys <- arr_insert cur.lkeys 0 left.lkeys.(k);
        cur.lvals <- arr_insert cur.lvals 0 left.lvals.(k);
        left.lkeys <- arr_remove left.lkeys k;
        left.lvals <- arr_remove left.lvals k;
        n.ikeys.(i - 1) <- cur.lkeys.(0)
    | Internal left, Internal cur ->
        let k = Array.length left.ikeys - 1 in
        cur.ikeys <- arr_insert cur.ikeys 0 n.ikeys.(i - 1);
        cur.children <- arr_insert cur.children 0 left.children.(k + 1);
        n.ikeys.(i - 1) <- left.ikeys.(k);
        left.ikeys <- arr_remove left.ikeys k;
        left.children <- arr_remove left.children (k + 1)
    | _ -> assert false
  in
  let borrow_from_right () =
    match (n.children.(i), n.children.(i + 1)) with
    | Leaf cur, Leaf right ->
        cur.lkeys <- arr_insert cur.lkeys (Array.length cur.lkeys) right.lkeys.(0);
        cur.lvals <- arr_insert cur.lvals (Array.length cur.lvals) right.lvals.(0);
        right.lkeys <- arr_remove right.lkeys 0;
        right.lvals <- arr_remove right.lvals 0;
        n.ikeys.(i) <- right.lkeys.(0)
    | Internal cur, Internal right ->
        cur.ikeys <- arr_insert cur.ikeys (Array.length cur.ikeys) n.ikeys.(i);
        cur.children <- arr_insert cur.children (Array.length cur.children) right.children.(0);
        n.ikeys.(i) <- right.ikeys.(0);
        right.ikeys <- arr_remove right.ikeys 0;
        right.children <- arr_remove right.children 0
    | _ -> assert false
  in
  let merge_into_left j =
    (* Merge child j+1 into child j and drop separator j. *)
    (match (n.children.(j), n.children.(j + 1)) with
    | Leaf a, Leaf b ->
        a.lkeys <- Array.append a.lkeys b.lkeys;
        a.lvals <- Array.append a.lvals b.lvals;
        a.next <- b.next
    | Internal a, Internal b ->
        a.ikeys <- Array.concat [ a.ikeys; [| n.ikeys.(j) |]; b.ikeys ];
        a.children <- Array.append a.children b.children
    | _ -> assert false);
    n.ikeys <- arr_remove n.ikeys j;
    n.children <- arr_remove n.children (j + 1)
  in
  let m = min_keys t in
  if i > 0 && leaf_len n.children.(i - 1) > m then borrow_from_left ()
  else if i < Array.length n.children - 1 && leaf_len n.children.(i + 1) > m then
    borrow_from_right ()
  else if i > 0 then merge_into_left (i - 1)
  else merge_into_left i

let rec delete_rec t node key =
  match node with
  | Leaf l ->
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && l.lkeys.(i) = key then begin
        let old = l.lvals.(i) in
        l.lkeys <- arr_remove l.lkeys i;
        l.lvals <- arr_remove l.lvals i;
        t.size <- t.size - 1;
        Some old
      end
      else None
  | Internal n ->
      let i = child_index n.ikeys key in
      let old = delete_rec t n.children.(i) key in
      if old <> None && leaf_len n.children.(i) < min_keys t then rebalance t n i;
      old

let delete t key =
  let old = delete_rec t t.root key in
  (match t.root with
  | Internal n when Array.length n.children = 1 -> t.root <- n.children.(0)
  | _ -> ());
  old

(* --- range ------------------------------------------------------------------- *)

let range t ~lo ~hi =
  let rec walk l acc =
    let n = Array.length l.lkeys in
    let rec scan i acc =
      if i >= n then
        match l.next with
        | Some nx when n = 0 || l.lkeys.(n - 1) <= hi -> walk nx acc
        | _ -> acc
      else if l.lkeys.(i) > hi then acc
      else scan (i + 1) ((l.lkeys.(i), l.lvals.(i)) :: acc)
    in
    scan (lower_bound l.lkeys lo) acc
  in
  List.rev (walk (leaf_for t.root lo) [])

let range_count t ~lo ~hi =
  let rec walk l acc =
    let n = Array.length l.lkeys in
    let rec scan i acc =
      if i >= n then
        match l.next with
        | Some nx when n = 0 || l.lkeys.(n - 1) <= hi -> walk nx acc
        | _ -> acc
      else if l.lkeys.(i) > hi then acc
      else scan (i + 1) (acc + 1)
    in
    scan (lower_bound l.lkeys lo) acc
  in
  walk (leaf_for t.root lo) 0

let size t = t.size

let min_key t =
  let rec leftmost = function
    | Leaf l -> if Array.length l.lkeys = 0 then None else Some l.lkeys.(0)
    | Internal n -> leftmost n.children.(0)
  in
  leftmost t.root

let max_key t =
  let rec rightmost = function
    | Leaf l ->
        let n = Array.length l.lkeys in
        if n = 0 then None else Some l.lkeys.(n - 1)
    | Internal n -> rightmost n.children.(Array.length n.children - 1)
  in
  rightmost t.root

let iter t f =
  let rec walk = function
    | None -> ()
    | Some l ->
        Array.iteri (fun i k -> f k l.lvals.(i)) l.lkeys;
        walk l.next
  in
  walk (Some (leaf_for t.root min_int))

(* --- invariants ---------------------------------------------------------------- *)

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec depth = function
    | Leaf _ -> 0
    | Internal n -> 1 + depth n.children.(0)
  in
  let d = depth t.root in
  let count = ref 0 in
  let rec go node lo hi level =
    (match node with
    | Leaf l ->
        if level <> d then fail "leaves at unequal depth";
        count := !count + Array.length l.lkeys;
        Array.iteri
          (fun i k ->
            if k < lo || k >= hi then fail "leaf key %d out of bounds [%d,%d)" k lo hi;
            if i > 0 && l.lkeys.(i - 1) >= k then fail "leaf keys not strictly sorted")
          l.lkeys
    | Internal n ->
        let nc = Array.length n.children in
        if Array.length n.ikeys <> nc - 1 then fail "separator/child count mismatch";
        if nc < 2 then fail "internal node with fewer than 2 children";
        if level > 0 && Array.length n.ikeys < min_keys t then fail "internal underflow";
        Array.iteri
          (fun i k ->
            if k < lo || k >= hi then fail "separator out of bounds";
            if i > 0 && n.ikeys.(i - 1) >= k then fail "separators not sorted")
          n.ikeys;
        Array.iteri
          (fun i c ->
            let clo = if i = 0 then lo else n.ikeys.(i - 1) in
            let chi = if i = nc - 1 then hi else n.ikeys.(i) in
            go c clo chi (level + 1))
          n.children)
  in
  go t.root min_int max_int 0;
  if !count <> t.size then fail "size %d but %d keys found" t.size !count;
  (* Leaf chain covers all keys in sorted order. *)
  let prev = ref min_int and chained = ref 0 in
  iter t (fun k _ ->
      if k <= !prev then fail "leaf chain out of order";
      prev := k;
      incr chained);
  if !chained <> t.size then fail "leaf chain misses keys"

let populate t ~n ~key_range ~seed =
  (* Simple deterministic LCG so the btree library stays dependency-free. *)
  let state = ref (Int64.of_int (seed + 1)) in
  let next () =
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical !state 17)
  in
  let inserted = ref 0 in
  while !inserted < n do
    let k = 1 + (next () mod key_range) in
    let k = if k < 0 then -k else k in
    if insert t k k = None then incr inserted
  done

(* --- key-set conflict predicate --------------------------------------------- *)

module Keyset = struct
  (* Sorted, disjoint, inclusive key ranges.  Normalisation at construction
     makes [overlaps] a linear merge-walk, so the parallel executor's
     conflict checks cost O(ranges) per candidate pair. *)
  type t = (int * int) array

  let empty : t = [||]
  let full : t = [| (min_int, max_int) |]
  let is_empty (t : t) = Array.length t = 0
  let singleton k : t = [| (k, k) |]
  let range ~lo ~hi : t = if hi < lo then empty else [| (lo, hi) |]
  let ranges (t : t) = Array.to_list t

  let of_ranges l =
    let l = List.filter (fun (lo, hi) -> lo <= hi) l in
    let l = List.sort (fun (a, _) (b, _) -> compare a b) l in
    match l with
    | [] -> empty
    | (lo0, hi0) :: rest ->
        let acc = ref [] and lo = ref lo0 and hi = ref hi0 in
        List.iter
          (fun (l', h') ->
            (* Merge overlapping or adjacent ranges. *)
            if !hi < max_int && l' > !hi + 1 then begin
              acc := (!lo, !hi) :: !acc;
              lo := l';
              hi := h'
            end
            else if h' > !hi then hi := h')
          rest;
        acc := (!lo, !hi) :: !acc;
        Array.of_list (List.rev !acc)

  let overlaps (a : t) (b : t) =
    let na = Array.length a and nb = Array.length b in
    let rec go i j =
      if i >= na || j >= nb then false
      else
        let alo, ahi = a.(i) and blo, bhi = b.(j) in
        if ahi < blo then go (i + 1) j
        else if bhi < alo then go i (j + 1)
        else true
    in
    go 0 0

  (* [subset a b]: every key of [a] lies in [b].  Since both sides are
     sorted and disjoint, each range of [a] must fit inside a single range
     of [b] (a range spanning a gap of [b] covers keys outside it), so one
     merge-walk suffices.  The empty set is a subset of everything. *)
  let subset (a : t) (b : t) =
    let na = Array.length a and nb = Array.length b in
    let rec go i j =
      if i >= na then true
      else if j >= nb then false
      else
        let alo, ahi = a.(i) and blo, bhi = b.(j) in
        if bhi < alo then go i (j + 1)
        else blo <= alo && ahi <= bhi && go (i + 1) j
    in
    go 0 0

  (* Two commands conflict when one's writes intersect the other's reads or
     writes (read-read sharing is always safe). *)
  let conflict ~r1 ~w1 ~r2 ~w2 =
    overlaps w1 w2 || overlaps w1 r2 || overlaps r1 w2
end
