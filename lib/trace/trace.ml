type kind = Span | Instant | Count | Async_b | Async_e

type event = {
  e_ts : float;
  e_dur : float;
  e_kind : kind;
  e_pid : int;
  e_cat : string;
  e_name : string;
  e_id : int;
  e_v : int;
}

type t = {
  mutable on : bool;
  limit : int;
  (* Circular event ring, grown geometrically up to [limit] so a disabled
     or lightly used tracer stays small. *)
  mutable ring : event array;
  mutable len : int;  (* events held *)
  mutable head : int;  (* next write position once the ring is full *)
  mutable total : int;  (* events ever recorded *)
  names : (int, string) Hashtbl.t;  (* effective pid -> display name *)
  mutable pid_base : int;
  mutable max_pid : int;
  (* open async intervals: (cat, name, effective pid, id) -> begin ts *)
  pending : (string * string * int * int, float) Hashtbl.t;
  (* (role, stage) -> duration accumulator, seconds *)
  decomp : (string * string, Sim.Stats.Latency.t) Hashtbl.t;
}

let dummy =
  { e_ts = 0.0; e_dur = 0.0; e_kind = Instant; e_pid = 0; e_cat = ""; e_name = "";
    e_id = -1; e_v = 0 }

let create ?(limit = 1 lsl 18) () =
  { on = true;
    limit = Stdlib.max 1 limit;
    ring = [||];
    len = 0;
    head = 0;
    total = 0;
    names = Hashtbl.create 64;
    pid_base = 0;
    max_pid = -1;
    pending = Hashtbl.create 256;
    decomp = Hashtbl.create 32 }

let enabled t = t.on

let set_enabled t on =
  t.on <- on;
  (* Disabling mid-run abandons open async intervals; keeping them would
     let a later re-enable match an end against a begin from a window the
     trace no longer covers. *)
  if not on then Hashtbl.reset t.pending

let clear t =
  t.ring <- [||];
  t.len <- 0;
  t.head <- 0;
  t.total <- 0;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.decomp

let events t = t.len
let dropped t = t.total - t.len

let eff t pid = if pid < 0 then pid else t.pid_base + pid

let register t ~pid ~name =
  let p = eff t pid in
  if p > t.max_pid then t.max_pid <- p;
  Hashtbl.replace t.names p name

let new_run t = t.pid_base <- t.max_pid + 1

(* Role of a process: its registered name with trailing digits stripped,
   so "mr-acc0".."mr-acc4" aggregate into one decomposition row. *)
let role_of t pid =
  if pid < 0 then "global"
  else
    match Hashtbl.find_opt t.names pid with
    | None -> "?"
    | Some name ->
        let n = String.length name in
        let rec stem i =
          if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then stem (i - 1) else i
        in
        let k = stem n in
        if k = 0 then name else String.sub name 0 k

let push t e =
  if e.e_pid > t.max_pid then t.max_pid <- e.e_pid;
  let cap = Array.length t.ring in
  if t.len < cap then begin
    t.ring.(t.len) <- e;
    t.len <- t.len + 1
  end
  else if cap < t.limit then begin
    let cap' = Stdlib.min t.limit (Stdlib.max 1024 (cap * 2)) in
    let r = Array.make cap' dummy in
    Array.blit t.ring 0 r 0 cap;
    t.ring <- r;
    t.ring.(t.len) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest. *)
    t.ring.(t.head) <- e;
    t.head <- (t.head + 1) mod cap
  end;
  t.total <- t.total + 1

let note_decomp t ~pid ~cat ~dur =
  let key = (role_of t pid, cat) in
  let acc =
    match Hashtbl.find_opt t.decomp key with
    | Some l -> l
    | None ->
        let l = Sim.Stats.Latency.create ~reservoir:4096 () in
        Hashtbl.add t.decomp key l;
        l
  in
  Sim.Stats.Latency.add acc dur

let span ?(id = -1) t ~pid ~cat ~name ~ts ~dur =
  if t.on then begin
    let pid = eff t pid in
    push t { e_ts = ts; e_dur = dur; e_kind = Span; e_pid = pid; e_cat = cat;
             e_name = name; e_id = id; e_v = 0 };
    note_decomp t ~pid ~cat ~dur
  end

let instant ?(id = -1) t ~pid ~cat ~name ~ts =
  if t.on then
    push t { e_ts = ts; e_dur = 0.0; e_kind = Instant; e_pid = eff t pid; e_cat = cat;
             e_name = name; e_id = id; e_v = 0 }

let counter t ~pid ~name ~ts v =
  if t.on then
    push t { e_ts = ts; e_dur = 0.0; e_kind = Count; e_pid = eff t pid; e_cat = "counter";
             e_name = name; e_id = -1; e_v = v }

let abegin t ~pid ~cat ~name ~id ~ts =
  if t.on then begin
    let pid = eff t pid in
    Hashtbl.replace t.pending (cat, name, pid, id) ts;
    push t { e_ts = ts; e_dur = 0.0; e_kind = Async_b; e_pid = pid; e_cat = cat;
             e_name = name; e_id = id; e_v = 0 }
  end

let aend t ~pid ~cat ~name ~id ~ts =
  if t.on then begin
    let pid = eff t pid in
    let key = (cat, name, pid, id) in
    match Hashtbl.find_opt t.pending key with
    | None -> ()  (* begin evicted, or closed twice *)
    | Some ts0 ->
        Hashtbl.remove t.pending key;
        push t { e_ts = ts; e_dur = 0.0; e_kind = Async_e; e_pid = pid; e_cat = cat;
                 e_name = name; e_id = id; e_v = 0 };
        note_decomp t ~pid ~cat ~dur:(ts -. ts0)
  end

(* --- export ------------------------------------------------------------- *)

let iter_events t f =
  let cap = Array.length t.ring in
  if t.len < cap || t.head = 0 then
    for i = 0 to t.len - 1 do
      f t.ring.(i)
    done
  else
    for i = 0 to t.len - 1 do
      f t.ring.((t.head + i) mod cap)
    done

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Timestamps are exported in microseconds at nanosecond resolution; fixed
   formatting keeps same-seed exports byte-identical. *)
let us ts = Printf.sprintf "%.3f" (ts *. 1.0e6)

let to_chrome_json t =
  let b = Buffer.create (256 + (t.len * 96)) in
  Buffer.add_string b "[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  (* Process-name metadata, sorted by pid for determinism. *)
  let pids = Hashtbl.fold (fun p n acc -> (p, n) :: acc) t.names [] in
  List.iter
    (fun (p, n) ->
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           p (json_escape n)))
    (List.sort compare pids);
  iter_events t (fun e ->
      let common =
        Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":0,\"ts\":%s"
          (json_escape e.e_name) (json_escape e.e_cat) e.e_pid (us e.e_ts)
      in
      match e.e_kind with
      | Span ->
          let id = if e.e_id >= 0 then Printf.sprintf ",\"args\":{\"id\":%d}" e.e_id else "" in
          emit (Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%s%s}" common (us e.e_dur) id)
      | Instant ->
          let id = if e.e_id >= 0 then Printf.sprintf ",\"args\":{\"id\":%d}" e.e_id else "" in
          emit (Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"p\"%s}" common id)
      | Count -> emit (Printf.sprintf "{%s,\"ph\":\"C\",\"args\":{\"v\":%d}}" common e.e_v)
      | Async_b -> emit (Printf.sprintf "{%s,\"ph\":\"b\",\"id\":%d}" common e.e_id)
      | Async_e -> emit (Printf.sprintf "{%s,\"ph\":\"e\",\"id\":%d}" common e.e_id));
  Buffer.add_string b "]\n";
  Buffer.contents b

let write_chrome_json t path =
  let oc = open_out path in
  output_string oc (to_chrome_json t);
  close_out oc

(* --- latency decomposition ---------------------------------------------- *)

let decomposition t =
  let rows =
    Hashtbl.fold
      (fun (role, stage) acc l ->
        ( role,
          ( stage,
            Sim.Stats.Latency.count acc,
            Sim.Stats.Latency.percentile acc 0.50,
            Sim.Stats.Latency.percentile acc 0.99 ) )
        :: l)
      t.decomp []
  in
  let by_role = Hashtbl.create 8 in
  List.iter
    (fun (role, row) ->
      let prev = match Hashtbl.find_opt by_role role with Some l -> l | None -> [] in
      Hashtbl.replace by_role role (row :: prev))
    rows;
  Hashtbl.fold (fun role l acc -> (role, List.sort compare l) :: acc) by_role []
  |> List.sort compare

let decomp_counters t =
  List.concat_map
    (fun (role, stages) ->
      List.concat_map
        (fun (stage, n, p50, p99) ->
          let k suffix = Printf.sprintf "%s/%s/%s" role stage suffix in
          [ (k "n", n);
            (k "p50_us", int_of_float (Float.round (p50 *. 1.0e6)));
            (k "p99_us", int_of_float (Float.round (p99 *. 1.0e6))) ])
        stages)
    (decomposition t)

let print_decomposition t =
  let d = decomposition t in
  if d <> [] then begin
    Printf.printf "  %-12s %-10s %10s %12s %12s\n" "role" "stage" "samples" "p50(us)" "p99(us)";
    List.iter
      (fun (role, stages) ->
        List.iter
          (fun (stage, n, p50, p99) ->
            Printf.printf "  %-12s %-10s %10d %12.1f %12.1f\n" role stage n (p50 *. 1.0e6)
              (p99 *. 1.0e6))
          stages)
      d
  end
