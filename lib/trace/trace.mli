(** Deterministic causal tracing for the simulator.

    A {!t} is a bounded ring of typed events — spans (a named interval of
    virtual time on one process), instants, counters and async
    begin/end pairs (intervals that start and end in different callbacks,
    matched by [(cat, name, pid, id)]).  Producers stamp events with the
    simulation clock, so a trace is a pure function of the seed: the same
    seed yields a byte-identical export, which makes traces diffable
    across PRs and turns the tracer into a regression oracle.

    Recording is allocation-free while the tracer is disabled
    ({!set_enabled} [false]): every record entry point checks one flag
    and returns, and the event ring is not even allocated until the
    first event lands.  Recording never schedules simulator events,
    never draws from an RNG and never blocks, so enabling a tracer
    cannot perturb a run — measured throughput and latency are identical
    with tracing on or off.

    Exports: Chrome [trace_event] JSON ({!write_chrome_json}), loadable
    in Perfetto / [chrome://tracing], and an in-simulator
    latency-decomposition report ({!decomposition}) aggregating span
    durations into per-(role, stage) percentile tables. *)

type t

(** [create ()] makes an enabled tracer.  [limit] bounds the event ring
    (default 2^18 events); once full, the oldest events are evicted and
    counted by {!dropped}. *)
val create : ?limit:int -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Drop all recorded events, async matches and decomposition state
    (identity registrations survive). *)
val clear : t -> unit

(** {1 Identity}

    Events carry a process id.  [register] attaches a display name; the
    {e role} used to group the decomposition tables is the name with any
    trailing digits stripped ("mr-acc2" → "mr-acc").  Negative pids are
    reserved for global (processless) events such as timer fires. *)

val register : t -> pid:int -> name:string -> unit

(** [new_run t] opens a fresh pid namespace: subsequent events and
    registrations for pid [p] are exported as [base + p], so successive
    simulator instances sharing one tracer do not collide. *)
val new_run : t -> unit

(** {1 Recording}

    All of these are no-ops when the tracer is disabled.  [id] is the
    causal id ([trace_id] of the message being processed); omit it (or
    pass a negative value) when there is none. *)

(** [span t ~pid ~cat ~name ~ts ~dur] records a complete interval
    [\[ts, ts+dur)] and feeds the (role, cat) decomposition accumulator. *)
val span : ?id:int -> t -> pid:int -> cat:string -> name:string -> ts:float -> dur:float -> unit

val instant : ?id:int -> t -> pid:int -> cat:string -> name:string -> ts:float -> unit

(** [counter t ~pid ~name ~ts v] records a sampled value (rendered as a
    counter track). *)
val counter : t -> pid:int -> name:string -> ts:float -> int -> unit

(** [abegin]/[aend] open and close an async interval matched by
    [(cat, name, pid, id)].  The matched duration feeds the (role, cat)
    decomposition accumulator at close time; an unmatched [aend] records
    nothing. *)
val abegin : t -> pid:int -> cat:string -> name:string -> id:int -> ts:float -> unit

val aend : t -> pid:int -> cat:string -> name:string -> id:int -> ts:float -> unit

(** {1 Inspection & export} *)

(** Events currently held in the ring. *)
val events : t -> int

(** Events evicted because the ring was full. *)
val dropped : t -> int

(** Chrome trace_event JSON (array form).  Deterministic: metadata
    sorted by pid, events in record order, fixed float formatting. *)
val to_chrome_json : t -> string

val write_chrome_json : t -> string -> unit

(** {1 Latency decomposition} *)

(** [decomposition t] is, per role (sorted), the list of stages (sorted)
    with [(stage, samples, p50, p99)] — durations in seconds. *)
val decomposition : t -> (string * (string * int * float * float) list) list

(** Flattened for {!Sim.Stats.Snapshot} counters:
    ["role/stage/n"], ["role/stage/p50_us"], ["role/stage/p99_us"]. *)
val decomp_counters : t -> (string * int) list

(** Human-readable per-role stage table on stdout (used by the bench
    harness when a run keeps a local tracer). *)
val print_decomposition : t -> unit
