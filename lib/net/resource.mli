(** A serially used resource (CPU, NIC link, disk head).

    Acquisitions are FIFO: a request at time [at] starts at
    [max at free_at] and occupies the resource for [dur] seconds.
    Busy time is accounted for utilization reporting. *)

type t

val create : string -> t

val name : t -> string

(** [acquire t ~at ~dur] reserves the resource and returns
    [(start, finish)] of the granted slot. *)
val acquire : t -> at:float -> dur:float -> float * float

(** [acquire_tk t ~at_tk ~dur_tk] is tick-grid [acquire]: the slot starts
    at [max at_tk (ceil free_at)] engine ticks and runs [dur_tk] ticks;
    returns the finish tick.  Int-only signature — the packet path books
    NIC and CPU time through here with zero allocation.  Mixes safely
    with float {!acquire} on the same resource (each sees the other's
    bookings). *)
val acquire_tk : t -> at_tk:int -> dur_tk:int -> int

(** Start tick granted by the most recent {!acquire_tk} (for tracing the
    queueing split without returning a tuple). *)
val last_start_tk : t -> int

(** [free_at t] is the earliest instant a new acquisition can start. *)
val free_at : t -> float

(** [backlog t ~now] is how far the resource is booked past [now]. *)
val backlog : t -> now:float -> float

(** [backlog_gt t ~now_tk ~limit_tk] is [backlog > limit] on the tick
    grid, without boxing any float. *)
val backlog_gt : t -> now_tk:int -> limit_tk:int -> bool

val busy : t -> Sim.Stats.Busy.t
