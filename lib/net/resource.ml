(* [free_at] lives in a 1-element float array: a mutable float field in
   this mixed record would box on every write, and [acquire_tk] runs four
   times per delivered message on the packet path. *)
type t = {
  name : string;
  fl : float array; (* 0: free_at *)
  mutable last_start_tk : int;
  busy : Sim.Stats.Busy.t;
}

let tick_scale = float_of_int Sim.Engine.ticks_per_second
let tick_width = 1.0 /. tick_scale

let create name =
  { name; fl = Array.make 1 0.0; last_start_tk = 0; busy = Sim.Stats.Busy.create () }

let name t = t.name

let acquire t ~at ~dur =
  let fa = Array.unsafe_get t.fl 0 in
  let start = if at > fa then at else fa in
  let finish = start +. dur in
  Array.unsafe_set t.fl 0 finish;
  Sim.Stats.Busy.add ~at:start t.busy dur;
  (start, finish)

(* Tick-grid acquisition: starts at the later of [at_tk] and the tick
   the resource frees up (rounded up, so work booked through the float
   [acquire] path is still respected), finishes [dur_tk] ticks later.
   Int-only signature and array-slot floats keep the call allocation
   free; the granted start lands in [last_start_tk] for callers that
   trace queueing delay. *)
let acquire_tk t ~at_tk ~dur_tk =
  let fa = Array.unsafe_get t.fl 0 in
  let fa_tk = int_of_float (ceil (fa *. tick_scale)) in
  let start_tk = if at_tk > fa_tk then at_tk else fa_tk in
  let finish_tk = start_tk + dur_tk in
  Array.unsafe_set t.fl 0 (float_of_int finish_tk *. tick_width);
  Sim.Stats.Busy.add_tk t.busy ~start_tk ~dur_tk;
  t.last_start_tk <- start_tk;
  finish_tk

let last_start_tk t = t.last_start_tk

let free_at t = Array.unsafe_get t.fl 0

let backlog t ~now =
  let fa = Array.unsafe_get t.fl 0 in
  if fa > now then fa -. now else 0.0

(* [backlog t ~now > limit] with an int-only signature (all float math
   local, nothing boxed). *)
let backlog_gt t ~now_tk ~limit_tk =
  (Array.unsafe_get t.fl 0 *. tick_scale) -. float_of_int now_tk > float_of_int limit_tk

let busy t = t.busy
