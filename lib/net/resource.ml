type t = {
  name : string;
  mutable free_at : float;
  busy : Sim.Stats.Busy.t;
}

let create name = { name; free_at = 0.0; busy = Sim.Stats.Busy.create () }

let name t = t.name

let acquire t ~at ~dur =
  let start = if at > t.free_at then at else t.free_at in
  let finish = start +. dur in
  t.free_at <- finish;
  Sim.Stats.Busy.add ~at:start t.busy dur;
  (start, finish)

let free_at t = t.free_at

let backlog t ~now = if t.free_at > now then t.free_at -. now else 0.0

let busy t = t.busy
