(** Simulated local-area network: nodes, processes, links and a switch.

    The model reproduces the mechanisms the dissertation's evaluation relies
    on: link serialisation at gigabit speed, per-process CPU cost of sending
    and receiving, finite UDP socket buffers (overflow drops), TCP-like
    reliable unicast with a receive-window backpressure, switch-level
    ip-multicast whose loss rate grows with the aggregate rate and with the
    number of concurrent senders (Fig. 3.3), process crashes and recoveries,
    and heterogeneous machines (Ch. 7).

    Protocols attach payloads by extending {!payload} and pattern-matching
    in their handlers; the network treats payloads as opaque and sizes are
    declared explicitly by the sender.

    {2 Message lifetime}

    Message records are pooled (in the default {!mode}): the record passed
    to a handler is {e borrowed} — it is valid until the handler returns,
    after which the network reclaims and reuses it.  A protocol that needs
    the record beyond the handler must {!retain} it (and {!release} it
    later); copying the fields out is usually simpler.  Payloads are NOT
    pooled: the payload value a handler extracts stays valid forever. *)

(** Extensible message payload; each protocol adds its own constructors. *)
type payload = ..

type payload += Noop

type node
type proc
type group
type conn
type t

(** Simnet-internal pooling and routing state carried by each message. *)
type minternal

type msg = private {
  mutable src : int;  (** sender pid *)
  mutable dst : int;  (** receiver pid, [-1] when delivered via multicast *)
  mutable size : int;  (** application payload bytes *)
  mutable payload : payload;
  mutable sent_tk : int;
      (** simulation time of the send call, in engine ticks
          (2^20 ticks/second); {!sent_at} converts to seconds *)
  mutable tid : int;
      (** causal trace id: allocated per send (deterministic counter)
          unless the sender threads one through, so a command can be
          followed across protocol hops in a {!Trace.t} export *)
  m_i : minternal;  (** internal; opaque to protocols *)
}

(** [sent_at m] is the send time in seconds (quantized to the tick grid). *)
val sent_at : msg -> float

(** Per-process CPU cost model (seconds); all fields mutable so experiments
    can calibrate individual roles. *)
type costs = {
  mutable recv_per_msg : float;
  mutable recv_per_byte : float;
  mutable send_per_msg : float;
  mutable send_per_byte : float;
}

type config = {
  latency : float;  (** one-way propagation delay, seconds *)
  latency_jitter : float;  (** uniform fraction of [latency] added per msg *)
  bandwidth : float;  (** bits per second per NIC direction *)
  mtu : int;
  frame_overhead : int;  (** header bytes added per MTU frame *)
  multicast_available : bool;
  mcast_capacity : float;  (** aggregate switch multicast capacity, bit/s *)
  udp_base_loss : float;  (** floor loss probability for UDP/multicast *)
  default_rcvbuf : int;  (** default UDP socket buffer, bytes *)
  default_costs : unit -> costs;
}

val default_config : config

(** {1 Message-path modes}

    Two implementations of the message path share every computation that
    affects timing, randomness, statistics and tracing, so a seeded run is
    byte-identical across modes.  [`Pooled] (the default) recycles message
    records through a freelist, schedules each hop through continuations
    preallocated at record birth and parks window-limited sends in a ring
    of parallel arrays — the steady-state unicast path allocates nothing.
    [`Boxed] allocates a fresh record and fresh hop closures per message
    and queues backlogged sends as tuples: the pre-pooling reference that
    equivalence tests and benchmarks compare against. *)

type mode = [ `Pooled | `Boxed ]

(** Process-wide default mode for subsequent {!create} calls (the
    experiment harness sets this from [--simnet <pooled|boxed>]). *)
val set_default_mode : mode -> unit

val get_default_mode : unit -> mode

(** @raise Invalid_argument on anything but ["pooled"] or ["boxed"]. *)
val mode_of_string : string -> mode

val mode : t -> mode

val create : ?config:config -> ?mode:mode -> Sim.Engine.t -> Sim.Rng.t -> t

val engine : t -> Sim.Engine.t
val config : t -> config
val now : t -> float

(** [now_tk t] is the current time in engine ticks (truncating, like
    {!Sim.Engine.ticks_of_time}).  Int result: reading the clock on a hot
    path allocates nothing. *)
val now_tk : t -> int

(** {1 Topology} *)

(** [add_node t name] creates a machine. [cpu_factor] scales every CPU cost
    on this machine (>1 = slower, used for heterogeneous cloud instances);
    [lat_factor] scales propagation latency of its links. *)
val add_node : ?cpu_factor:float -> ?lat_factor:float -> t -> string -> node

val add_proc : t -> node -> string -> proc

val pid : proc -> int
val proc_name : proc -> string
val proc_node : proc -> node
val node_name : node -> string

(** [proc_of t pid] looks a process up by id. *)
val proc_of : t -> int -> proc

val set_handler : proc -> (msg -> unit) -> unit

(** [handler_of p] returns the current handler, so a layer can wrap the one
    a protocol installed (e.g. client logic on top of a proposer). *)
val handler_of : proc -> msg -> unit

(** {1 Communication} *)

(** Reliable, ordered unicast (TCP-like).  Never drops; when the receiver's
    window ([rcvbuf]) is full of un-consumed bytes the sender queues and the
    transfer resumes as the receiver's handler drains messages.  [tid]
    threads an existing causal id through (a fresh one is allocated
    otherwise). *)
val send : ?tid:int -> t -> src:proc -> dst:proc -> size:int -> payload -> unit

(** Unreliable unicast (UDP): dropped on receive-buffer overflow or base
    loss. *)
val udp : ?tid:int -> t -> src:proc -> dst:proc -> size:int -> payload -> unit

val new_group : t -> string -> group
val join : group -> proc -> unit
val leave : group -> proc -> unit
val members : group -> proc list

(** [mcast t ~src g ~size p] ip-multicasts to every member of [g] except
    [src] (set [loopback:true] to include the sender).  Unavailable
    multicast ([multicast_available = false]) raises [Failure]. *)
val mcast :
  ?loopback:bool -> ?tid:int -> t -> src:proc -> group -> size:int -> payload -> unit

(** {1 Message pool}

    No-ops in [`Boxed] mode (records are ordinary GC values there). *)

(** [retain t m] extends [m]'s lifetime past the handler return; the
    record stays valid until a matching {!release}. *)
val retain : t -> msg -> unit

(** [release t m] returns a retained record to the pool.
    @raise Invalid_argument on a double release (refcount already zero). *)
val release : t -> msg -> unit

(** Generation stamp of the record's pool slot, bumped each time the slot
    is recycled — lets a test detect that a stale reference now names a
    different message. *)
val msg_generation : msg -> int

val msg_refcount : msg -> int

(** Records ever created by the pool (high-water mark of concurrently
    live messages, since records recycle). *)
val pool_allocated : t -> int

(** Records currently sitting in the freelist. *)
val pool_free : t -> int

(** {1 Timers} *)

val after : t -> float -> (unit -> unit) -> Sim.Engine.handle

(** [after_tk t ~ticks f] runs [f] in [ticks] engine ticks
    ({!Sim.Engine.ticks_per_second} = 2^20/s).  Integer delay: arming a
    timeout allocates nothing. *)
val after_tk : t -> ticks:int -> (unit -> unit) -> Sim.Engine.handle

(** [cancel t h] revokes a timer returned by {!after}.  Idempotent and
    safe after the timer has fired (handles are generation-stamped, so a
    stale handle never cancels a newer timer). *)
val cancel : t -> Sim.Engine.handle -> unit

(** [every t ~period f] runs [f] every [period] seconds until the returned
    thunk is called. *)
val every : t -> period:float -> (unit -> unit) -> unit -> unit

(** [every_tk t ~ticks f] is {!every} on the tick grid; each re-arm reuses
    one closure, so periodic timers run allocation-free. *)
val every_tk : t -> ticks:int -> (unit -> unit) -> unit -> unit

(** [charge_cpu t p dur] books [dur] seconds of CPU work on the process's
    machine without a completion callback (protocol calibration knob). *)
val charge_cpu : t -> proc -> float -> unit

(** [exec t p ~dur k] books [dur] seconds of CPU work and runs [k] when the
    work completes (service execution in the SMR layers). *)
val exec : t -> proc -> dur:float -> (unit -> unit) -> unit

(** {1 Failures} *)

(** [kill t p] crashes the process: queued and future messages to it are
    discarded, its timers must be guarded by {!is_alive} by the protocol. *)
val kill : t -> proc -> unit

val recover : t -> proc -> unit
val is_alive : proc -> bool

(** {1 Fault injection}

    A fault tap rules on every (message, destination) pair before the
    receiver side of the link model runs — unicast, UDP and multicast
    alike (multicast deliveries carry [dst = -1] in the message but the
    tap still receives the concrete destination process).  Sender-side
    costs have already been charged when the tap runs, so a dropped
    message consumed NIC and CPU at the sender exactly like a real one. *)

type fault =
  | Deliver  (** let the message through untouched *)
  | Drop  (** lose it (TCP window accounting stays correct) *)
  | Delay of float  (** add this many seconds to the arrival time *)
  | Duplicate of float  (** deliver now and once more after this delay *)

(** [set_fault_tap t (Some f)] installs the tap; [None] removes it. *)
val set_fault_tap : t -> (msg -> dst:proc -> fault) option -> unit

(** Messages discarded by the fault tap (distinct from {!drops}). *)
val fault_drops : t -> int

(** [set_cpu_factor n f] rescales every CPU cost on the machine from now
    on (slow-CPU fault episodes); in-progress work is unaffected. *)
val set_cpu_factor : node -> float -> unit

val node_cpu_factor : node -> float

(** {1 Tuning} *)

val set_rcvbuf : proc -> int -> unit
val rcvbuf : proc -> int

(** Bytes currently held in the UDP receive buffer (accepted, not yet
    served); invariant [0 <= rcvbuf_used p] across kill/recover. *)
val rcvbuf_used : proc -> int

val costs_of : proc -> costs

(** [set_mem p bytes] lets a protocol report its resident buffer footprint
    (Tables 3.3/3.4). *)
val set_mem : proc -> int -> unit

val mem : proc -> int

(** {1 Measurement} *)

(** Application bytes delivered to the process handler. *)
val recv_rate : proc -> Sim.Stats.Rate.t

(** Application bytes handed to the network by the process. *)
val sent_rate : proc -> Sim.Stats.Rate.t

(** Messages dropped on their way to this process (loss + overflow). *)
val drops : proc -> int

(** Lost multicast packets counted at the switch (for Fig. 3.3). *)
val switch_drops : t -> int

val mcast_packets : t -> int

(** CPU accounting of the machine a process runs on. *)
val cpu_busy : node -> Sim.Stats.Busy.t

(** [wire_size t size] is the on-the-wire size including framing. *)
val wire_size : t -> int -> int

(** {1 Tracing}

    With a tracer installed the network records spans for every resource
    acquisition (queueing and service split), wire propagation, socket
    buffer levels and drop instants.  Recording never schedules events or
    consumes randomness: a run is bit-identical with tracing on or off. *)

(** [set_tracer t (Some tr)] installs a tracer (opening a fresh pid
    namespace in it and registering existing processes); [None] removes
    it. *)
val set_tracer : t -> Trace.t option -> unit

val tracer : t -> Trace.t option
