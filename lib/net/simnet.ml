type payload = ..

type payload += Noop

type msg = {
  src : int;
  dst : int;
  size : int;
  payload : payload;
  sent_at : float;
  tid : int;
}

type costs = {
  mutable recv_per_msg : float;
  mutable recv_per_byte : float;
  mutable send_per_msg : float;
  mutable send_per_byte : float;
}

type node = {
  node_id : int;
  nname : string;
  cpu : Resource.t;
  nic_out : Resource.t;
  nic_in : Resource.t;
  mutable cpu_factor : float;
  lat_factor : float;
}

type proc = {
  p_id : int;
  p_name : string;
  p_node : node;
  mutable handler : msg -> unit;
  mutable alive : bool;
  mutable rcvbuf_cap : int;
  mutable rcvbuf_used : int;
  (* Bumped by [recover]: deliveries that charged the buffer in an earlier
     incarnation must not credit it back after the reset (their epoch no
     longer matches), or the counter goes negative and overflow drops stop
     firing. *)
  mutable rcvbuf_epoch : int;
  p_costs : costs;
  p_recv : Sim.Stats.Rate.t;
  p_sent : Sim.Stats.Rate.t;
  mutable p_drops : int;
  mutable p_mem : int;
}

type group = {
  g_id : int;
  g_name : string;
  mutable g_members : proc list;
  (* Per-group multicast rate tracking: a switch replicates a group's
     traffic only onto its members' egress ports, so disjoint groups do not
     share capacity (this is what lets Multi-Ring Paxos scale). *)
  mutable g_rate : float;
  mutable g_last : float;
  mutable g_pending_bits : float;
  g_senders : (int, float) Hashtbl.t;
}

(* Per-(src,dst) reliable-connection state: [in_flight] counts bytes accepted
   by the network but not yet consumed by the receiver's handler; sends that
   would exceed the receiver window wait in [backlog]. *)
type conn = {
  mutable in_flight : int;
  backlog : (int * payload * float * int) Queue.t;  (* size, payload, sent_at, tid *)
  (* Bumped when [kill] resets the connection: window credits from
     deliveries accepted under the old incarnation must not decrement the
     fresh [in_flight] (which would drive it negative and let later sends
     overrun the receiver window). *)
  mutable c_epoch : int;
}

type config = {
  latency : float;
  latency_jitter : float;
  bandwidth : float;
  mtu : int;
  frame_overhead : int;
  multicast_available : bool;
  mcast_capacity : float;
  udp_base_loss : float;
  default_rcvbuf : int;
  default_costs : unit -> costs;
}

let default_costs () =
  { recv_per_msg = 4.0e-6;
    recv_per_byte = 1.8e-9;
    send_per_msg = 4.5e-6;
    send_per_byte = 4.5e-9 }

let default_config =
  { latency = 5.0e-5;
    latency_jitter = 0.05;
    bandwidth = 1.0e9;
    mtu = 1500;
    frame_overhead = 52;
    multicast_available = true;
    mcast_capacity = 1.0e9;
    udp_base_loss = 0.0;
    default_rcvbuf = 16 * 1024 * 1024;
    default_costs }

(* Verdict of the fault tap for one (message, destination) pair. *)
type fault = Deliver | Drop | Delay of float | Duplicate of float

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  cfg : config;
  mutable nodes : node list;
  procs : (int, proc) Hashtbl.t;
  mutable nprocs : int;
  mutable ngroups : int;
  conns : (int * int, conn) Hashtbl.t;
  mutable mc_drops : int;
  mutable mc_packets : int;
  mutable fault_tap : (msg -> dst:proc -> fault) option;
  mutable fault_drops : int;
  mutable tracer : Trace.t option;
  mutable next_tid : int;
}

let create ?(config = default_config) engine rng =
  { engine;
    rng;
    cfg = config;
    nodes = [];
    procs = Hashtbl.create 64;
    nprocs = 0;
    ngroups = 0;
    conns = Hashtbl.create 64;
    mc_drops = 0;
    mc_packets = 0;
    fault_tap = None;
    fault_drops = 0;
    tracer = None;
    next_tid = 0 }

let engine t = t.engine
let config t = t.cfg
let now t = Sim.Engine.now t.engine

let add_node ?(cpu_factor = 1.0) ?(lat_factor = 1.0) t name =
  let id = List.length t.nodes in
  let n =
    { node_id = id;
      nname = name;
      cpu = Resource.create (name ^ ".cpu");
      nic_out = Resource.create (name ^ ".out");
      nic_in = Resource.create (name ^ ".in");
      cpu_factor;
      lat_factor }
  in
  t.nodes <- n :: t.nodes;
  n

let add_proc t node name =
  let p =
    { p_id = t.nprocs;
      p_name = name;
      p_node = node;
      handler = (fun _ -> ());
      alive = true;
      rcvbuf_cap = t.cfg.default_rcvbuf;
      rcvbuf_used = 0;
      rcvbuf_epoch = 0;
      p_costs = t.cfg.default_costs ();
      p_recv = Sim.Stats.Rate.create ();
      p_sent = Sim.Stats.Rate.create ();
      p_drops = 0;
      p_mem = 0 }
  in
  Hashtbl.add t.procs t.nprocs p;
  t.nprocs <- t.nprocs + 1;
  (match t.tracer with
  | Some tr -> Trace.register tr ~pid:p.p_id ~name
  | None -> ());
  p

(* [set_tracer] opens a fresh pid namespace in the tracer (several nets may
   share one trace file) and registers every existing process; processes
   added later register themselves.  Recording never schedules events or
   consumes randomness, so installing a tracer cannot change a run. *)
let set_tracer t tr =
  t.tracer <- tr;
  match tr with
  | Some tr ->
      Trace.new_run tr;
      Hashtbl.iter (fun pid p -> Trace.register tr ~pid ~name:p.p_name) t.procs
  | None -> ()

let tracer t = t.tracer

(* Fresh per-message causal id.  A plain counter, deterministic and
   allocated whether or not a tracer is installed, so trace-on and
   trace-off runs execute identically. *)
let alloc_tid t =
  t.next_tid <- t.next_tid + 1;
  t.next_tid

let pid p = p.p_id
let proc_name p = p.p_name
let proc_node p = p.p_node
let node_name n = n.nname

let proc_of t id =
  match Hashtbl.find_opt t.procs id with
  | Some p -> p
  | None -> invalid_arg "Simnet.proc_of: unknown pid"

let set_handler p f = p.handler <- f

let handler_of p = p.handler
let set_rcvbuf p n = p.rcvbuf_cap <- n
let rcvbuf p = p.rcvbuf_cap
let rcvbuf_used p = p.rcvbuf_used
let costs_of p = p.p_costs
let set_mem p n = p.p_mem <- n
let mem p = p.p_mem
let recv_rate p = p.p_recv
let sent_rate p = p.p_sent
let drops p = p.p_drops
let switch_drops t = t.mc_drops
let mcast_packets t = t.mc_packets
let cpu_busy n = Resource.busy n.cpu
let is_alive p = p.alive

let wire_size t size =
  let payload_per_frame = t.cfg.mtu - 48 in
  let frames = (size + payload_per_frame - 1) / payload_per_frame in
  let frames = if frames < 1 then 1 else frames in
  size + (frames * t.cfg.frame_overhead)

let trans_time t size = float_of_int (wire_size t size) *. 8.0 /. t.cfg.bandwidth

let prop_delay t src dst =
  let base = t.cfg.latency *. 0.5 *. (src.p_node.lat_factor +. dst.p_node.lat_factor) in
  base *. (1.0 +. Sim.Rng.float t.rng t.cfg.latency_jitter)

(* Charge the sender CPU and the outgoing link; returns when the last bit
   leaves the sender NIC.  Each resource acquisition splits into queueing
   (start - request) and service time; the tracer records both. *)
let sender_side t ~tid src size =
  let c = src.p_costs in
  let at = now t in
  let cpu_dur =
    (c.send_per_msg +. (c.send_per_byte *. float_of_int size)) *. src.p_node.cpu_factor
  in
  let cpu_start, cpu_done = Resource.acquire src.p_node.cpu ~at ~dur:cpu_dur in
  let tx_dur = trans_time t size in
  let tx_start, tx_done = Resource.acquire src.p_node.nic_out ~at:cpu_done ~dur:tx_dur in
  Sim.Stats.Rate.add src.p_sent ~now:at ~bytes:size;
  (match t.tracer with
  | None -> ()
  | Some tr ->
      let pid = src.p_id in
      if cpu_start > at then
        Trace.span tr ~id:tid ~pid ~cat:"queue" ~name:"send-cpu-wait" ~ts:at
          ~dur:(cpu_start -. at);
      Trace.span tr ~id:tid ~pid ~cat:"cpu" ~name:"send-cpu" ~ts:cpu_start ~dur:cpu_dur;
      if tx_start > cpu_done then
        Trace.span tr ~id:tid ~pid ~cat:"queue" ~name:"nic-out-wait" ~ts:cpu_done
          ~dur:(tx_start -. cpu_done);
      Trace.span tr ~id:tid ~pid ~cat:"wire" ~name:"nic-out" ~ts:tx_start ~dur:tx_dur);
  tx_done

(* Deliver [m] to [dst]: occupy the incoming link, then the receiver CPU,
   then invoke the handler.  [on_consumed] fires when the handler returns
   (used to open the TCP window).  UDP messages are dropped when the socket
   buffer cannot hold them. *)
let receiver_side_raw t ~udp ~arrival dst (m : msg) ~on_consumed =
  let eng = t.engine in
  ignore
    (Sim.Engine.at eng ~time:arrival (fun () ->
         if not dst.alive then begin
           dst.p_drops <- dst.p_drops + 1;
           on_consumed ()
         end
         else begin
           let rx_dur = trans_time t m.size in
           let rx_start, rx_done = Resource.acquire dst.p_node.nic_in ~at:arrival ~dur:rx_dur in
           (match t.tracer with
           | None -> ()
           | Some tr ->
               let pid = dst.p_id in
               if rx_start > arrival then
                 Trace.span tr ~id:m.tid ~pid ~cat:"queue" ~name:"nic-in-wait" ~ts:arrival
                   ~dur:(rx_start -. arrival);
               Trace.span tr ~id:m.tid ~pid ~cat:"wire" ~name:"nic-in" ~ts:rx_start ~dur:rx_dur);
           ignore
             (Sim.Engine.at eng ~time:rx_done (fun () ->
                  if not dst.alive then begin
                    dst.p_drops <- dst.p_drops + 1;
                    on_consumed ()
                  end
                  else if udp && dst.rcvbuf_used + m.size > dst.rcvbuf_cap then begin
                    dst.p_drops <- dst.p_drops + 1;
                    (match t.tracer with
                    | Some tr ->
                        Trace.instant tr ~id:m.tid ~pid:dst.p_id ~cat:"proto"
                          ~name:"rcvbuf-drop" ~ts:rx_done
                    | None -> ());
                    on_consumed ()
                  end
                  else begin
                    dst.rcvbuf_used <- dst.rcvbuf_used + m.size;
                    (* [recover] zeroes the buffer and bumps the epoch; a
                       delivery accepted before the crash must not credit
                       the fresh buffer back at its (post-recovery) service
                       time. *)
                    let epoch = dst.rcvbuf_epoch in
                    (match t.tracer with
                    | Some tr ->
                        Trace.counter tr ~pid:dst.p_id ~name:"rcvbuf" ~ts:rx_done
                          dst.rcvbuf_used
                    | None -> ());
                    let c = dst.p_costs in
                    let cpu_dur =
                      (c.recv_per_msg +. (c.recv_per_byte *. float_of_int m.size))
                      *. dst.p_node.cpu_factor
                    in
                    let cpu_start, served =
                      Resource.acquire dst.p_node.cpu ~at:rx_done ~dur:cpu_dur
                    in
                    (match t.tracer with
                    | None -> ()
                    | Some tr ->
                        let pid = dst.p_id in
                        if cpu_start > rx_done then
                          Trace.span tr ~id:m.tid ~pid ~cat:"queue" ~name:"recv-cpu-wait"
                            ~ts:rx_done ~dur:(cpu_start -. rx_done);
                        Trace.span tr ~id:m.tid ~pid ~cat:"cpu" ~name:"recv-cpu" ~ts:cpu_start
                          ~dur:cpu_dur);
                    ignore
                      (Sim.Engine.at eng ~time:served (fun () ->
                           if dst.rcvbuf_epoch = epoch then
                             dst.rcvbuf_used <- dst.rcvbuf_used - m.size;
                           if dst.alive then begin
                             Sim.Stats.Rate.add dst.p_recv ~now:served ~bytes:m.size;
                             dst.handler m
                           end
                           else dst.p_drops <- dst.p_drops + 1;
                           on_consumed ()))
                  end))
         end))

(* Every unicast, UDP and multicast delivery funnels through here; the fault
   tap (when installed) rules on each (message, destination) pair.  A [Drop]
   must still fire [on_consumed] at the would-be arrival time, otherwise the
   sender's TCP window accounting leaks [in_flight] bytes and the connection
   wedges; a [Duplicate] copy uses a no-op [on_consumed] so the window is
   credited exactly once. *)
let receiver_side t ~udp ~arrival dst (m : msg) ~on_consumed =
  match t.fault_tap with
  | None -> receiver_side_raw t ~udp ~arrival dst m ~on_consumed
  | Some tap -> (
      match tap m ~dst with
      | Deliver -> receiver_side_raw t ~udp ~arrival dst m ~on_consumed
      | Drop ->
          t.fault_drops <- t.fault_drops + 1;
          dst.p_drops <- dst.p_drops + 1;
          ignore (Sim.Engine.at t.engine ~time:arrival (fun () -> on_consumed ()))
      | Delay d ->
          receiver_side_raw t ~udp ~arrival:(arrival +. Float.max 0.0 d) dst m ~on_consumed
      | Duplicate d ->
          receiver_side_raw t ~udp ~arrival dst m ~on_consumed;
          receiver_side_raw t ~udp
            ~arrival:(arrival +. Float.max 0.0 d)
            dst m
            ~on_consumed:(fun () -> ()))

let set_fault_tap t tap = t.fault_tap <- tap
let fault_drops t = t.fault_drops
let set_cpu_factor n f = n.cpu_factor <- f
let node_cpu_factor n = n.cpu_factor

let conn_of t src dst =
  let key = (src.p_id, dst.p_id) in
  match Hashtbl.find_opt t.conns key with
  | Some c -> c
  | None ->
      let c = { in_flight = 0; backlog = Queue.create (); c_epoch = 0 } in
      Hashtbl.add t.conns key c;
      c

let trace_wire t ~tid src ~tx_done ~arrival =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Trace.span tr ~id:tid ~pid:src.p_id ~cat:"wire" ~name:"prop" ~ts:tx_done
        ~dur:(arrival -. tx_done)

let rec tcp_transmit t src dst size payload sent_at tid =
  let tx_done = sender_side t ~tid src size in
  let arrival = tx_done +. prop_delay t src dst in
  trace_wire t ~tid src ~tx_done ~arrival;
  let m = { src = src.p_id; dst = dst.p_id; size; payload; sent_at; tid } in
  let conn = conn_of t src dst in
  let epoch = conn.c_epoch in
  receiver_side t ~udp:false ~arrival dst m ~on_consumed:(fun () ->
      if conn.c_epoch = epoch then begin
        conn.in_flight <- conn.in_flight - size;
        tcp_drain t src dst conn
      end)

and tcp_drain t src dst conn =
  let window = dst.rcvbuf_cap in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt conn.backlog with
    | Some (size, _, _, _) when conn.in_flight + size <= window || conn.in_flight = 0 ->
        let size, payload, sent_at, tid = Queue.pop conn.backlog in
        conn.in_flight <- conn.in_flight + size;
        tcp_transmit t src dst size payload sent_at tid
    | _ -> continue := false
  done

let send ?tid t ~src ~dst ~size payload =
  let tid = match tid with Some x -> x | None -> alloc_tid t in
  let conn = conn_of t src dst in
  let window = dst.rcvbuf_cap in
  if Queue.is_empty conn.backlog && (conn.in_flight + size <= window || conn.in_flight = 0)
  then begin
    conn.in_flight <- conn.in_flight + size;
    tcp_transmit t src dst size payload (now t) tid
  end
  else Queue.push (size, payload, now t, tid) conn.backlog

let udp ?tid t ~src ~dst ~size payload =
  let tid = match tid with Some x -> x | None -> alloc_tid t in
  if Sim.Rng.bool t.rng t.cfg.udp_base_loss then dst.p_drops <- dst.p_drops + 1
  else begin
    let tx_done = sender_side t ~tid src size in
    let arrival = tx_done +. prop_delay t src dst in
    trace_wire t ~tid src ~tx_done ~arrival;
    let m = { src = src.p_id; dst = dst.p_id; size; payload; sent_at = now t; tid } in
    receiver_side t ~udp:true ~arrival dst m ~on_consumed:(fun () -> ())
  end

let new_group t name =
  t.ngroups <- t.ngroups + 1;
  { g_id = t.ngroups;
    g_name = name;
    g_members = [];
    g_rate = 0.0;
    g_last = 0.0;
    g_pending_bits = 0.0;
    g_senders = Hashtbl.create 8 }

let join g p = if not (List.memq p g.g_members) then g.g_members <- p :: g.g_members
let leave g p = g.g_members <- List.filter (fun q -> q != p) g.g_members
let members g = g.g_members

(* Per-group multicast-rate tracking: exponential moving average; the
   sender set decays after 100 ms of silence. *)
let mc_update t g src bits =
  let n = now t in
  Hashtbl.replace g.g_senders src.p_id n;
  g.g_pending_bits <- g.g_pending_bits +. bits;
  let dt = n -. g.g_last in
  (* Packets sent at the same instant accumulate until time advances, so
     simultaneous senders are counted at their true aggregate rate. *)
  if dt > 0.0 then begin
    g.g_last <- n;
    let inst = g.g_pending_bits /. dt in
    g.g_pending_bits <- 0.0;
    (* A ~50 ms time constant: short line-rate bursts are absorbed the way
       switch buffers absorb them; only sustained overload drops packets. *)
    let alpha = Float.min 1.0 (dt /. 0.05) in
    g.g_rate <- ((1.0 -. alpha) *. g.g_rate) +. (alpha *. inst)
  end;
  ignore t

let mc_active_senders t g =
  let n = now t in
  Hashtbl.fold (fun _ last acc -> if n -. last < 0.1 then acc + 1 else acc) g.g_senders 0

(* Loss probability of a multicast packet within one group: zero below a
   threshold that shrinks as concurrent senders are added, then rising
   linearly (Fig. 3.3's mechanism).  Groups are independent: a switch
   replicates each group only onto its own members' egress ports. *)
let mc_loss_prob t g =
  let cap = t.cfg.mcast_capacity in
  let n = mc_active_senders t g in
  let thr = cap *. (0.97 -. (0.055 *. log (float_of_int (Stdlib.max 1 n)))) in
  if g.g_rate <= thr then t.cfg.udp_base_loss
  else
    let p = (g.g_rate -. thr) /. (0.25 *. cap) in
    Float.min 0.30 (Float.max t.cfg.udp_base_loss p)

let mcast ?(loopback = false) ?tid t ~src g ~size payload =
  if not t.cfg.multicast_available then
    failwith "Simnet.mcast: ip-multicast unavailable in this deployment";
  let tid = match tid with Some x -> x | None -> alloc_tid t in
  let sent_at = now t in
  let tx_done = sender_side t ~tid src size in
  (* The switch sees the packet when the NIC has finished serialising it, so
     back-to-back bursts are paced at line rate before the loss model runs. *)
  ignore
    (Sim.Engine.at t.engine ~time:tx_done (fun () ->
         t.mc_packets <- t.mc_packets + 1;
         mc_update t g src (float_of_int (wire_size t size) *. 8.0);
         let p_loss = mc_loss_prob t g in
         List.iter
           (fun dst ->
             if dst != src || loopback then begin
               (* An egress port whose queue has run away also sheds the
                  packet (switch egress buffering is finite). *)
               let port_overrun = Resource.backlog dst.p_node.nic_in ~now:tx_done > 0.02 in
               if port_overrun || Sim.Rng.bool t.rng p_loss then begin
                 dst.p_drops <- dst.p_drops + 1;
                 t.mc_drops <- t.mc_drops + 1;
                 match t.tracer with
                 | Some tr ->
                     Trace.instant tr ~id:tid ~pid:dst.p_id ~cat:"proto" ~name:"switch-drop"
                       ~ts:tx_done
                 | None -> ()
               end
               else begin
                 let arrival = tx_done +. prop_delay t src dst in
                 trace_wire t ~tid src ~tx_done ~arrival;
                 let m = { src = src.p_id; dst = -1; size; payload; sent_at; tid } in
                 receiver_side t ~udp:true ~arrival dst m ~on_consumed:(fun () -> ())
               end
             end)
           g.g_members))

let after t delay f = Sim.Engine.schedule t.engine ~delay f

let cancel t h = Sim.Engine.cancel t.engine h

let every t ~period f =
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      f ();
      ignore (Sim.Engine.schedule t.engine ~delay:period tick)
    end
  in
  ignore (Sim.Engine.schedule t.engine ~delay:period tick);
  fun () -> stopped := true

let charge_cpu t p dur =
  if dur > 0.0 then
    ignore (Resource.acquire p.p_node.cpu ~at:(now t) ~dur:(dur *. p.p_node.cpu_factor))

let exec t p ~dur k =
  let at = now t in
  let dur = dur *. p.p_node.cpu_factor in
  let start, finish = Resource.acquire p.p_node.cpu ~at ~dur in
  (match t.tracer with
  | None -> ()
  | Some tr ->
      if start > at then
        Trace.span tr ~pid:p.p_id ~cat:"queue" ~name:"exec-wait" ~ts:at ~dur:(start -. at);
      Trace.span tr ~pid:p.p_id ~cat:"exec" ~name:"exec" ~ts:start ~dur);
  ignore (Sim.Engine.at t.engine ~time:finish (fun () -> if p.alive then k ()))

let kill t p =
  p.alive <- false;
  Hashtbl.iter
    (fun (src, dst) conn ->
      (* Connection state to a crashed process is reset so a later recovery
         starts from a clean window; the epoch bump stops in-flight window
         credits from the old incarnation reaching the fresh counter. *)
      if dst = p.p_id then begin
        conn.in_flight <- 0;
        Queue.clear conn.backlog;
        conn.c_epoch <- conn.c_epoch + 1
      end
      (* The crashed process's own un-transmitted sends are volatile state:
         they must not resurrect and transmit after recovery (bytes already
         accepted in flight stay accounted — they are on the wire, and
         their deliveries drain [in_flight] normally). *)
      else if src = p.p_id then Queue.clear conn.backlog)
    t.conns

let recover _t p =
  p.alive <- true;
  p.rcvbuf_used <- 0;
  (* Deliveries accepted before the crash still hold credits against the
     old buffer; the epoch bump voids them (see [receiver_side_raw]). *)
  p.rcvbuf_epoch <- p.rcvbuf_epoch + 1
