type payload = ..

type payload += Noop

(* Tick grid shared with the engine: 2^20 ticks per second.  All hot-path
   times are integer ticks; the float equivalents below are exact for any
   tick count < 2^52, so converting back and forth loses nothing. *)
let tick_scale = float_of_int Sim.Engine.ticks_per_second
let tick_width = 1.0 /. tick_scale

let[@inline] tf tk = float_of_int tk *. tick_width

(* Round-to-nearest quantization of a duration (matches
   [Sim.Engine.ticks_of_duration]); never negative. *)
let[@inline] tk_of_dur d =
  let x = (d *. tick_scale) +. 0.5 in
  if x <= 0.0 then 0 else int_of_float x

let nop () = ()

type costs = {
  mutable recv_per_msg : float;
  mutable recv_per_byte : float;
  mutable send_per_msg : float;
  mutable send_per_byte : float;
}

type node = {
  node_id : int;
  nname : string;
  cpu : Resource.t;
  nic_out : Resource.t;
  nic_in : Resource.t;
  mutable cpu_factor : float;
  lat_factor : float;
}

(* The message record is pooled: [m_i] carries the pooling/routing state
   (slot, generation, refcount, per-hop continuations) while the public
   fields are rewritten in place on every reuse.  In boxed mode each send
   allocates a fresh record (slot = -1) and the pool is bypassed — the
   reference implementation the benchmarks compare against. *)
type msg = {
  mutable src : int;
  mutable dst : int;
  mutable size : int;
  mutable payload : payload;
  mutable sent_tk : int;
  mutable tid : int;
  m_i : minternal;
}

and minternal = {
  slot : int; (* pool registry index; -1 = boxed (not pooled) *)
  mutable gen : int; (* bumped on recycle: stale refs are detectable *)
  mutable rc : int; (* 1 while in flight; [retain] adds references *)
  mutable udp : bool;
  mutable credit : bool; (* should credit the TCP window when consumed *)
  mutable srcp : proc;
  mutable dstp : proc; (* concrete destination (dst = -1 for multicast) *)
  mutable cn : conn;
  mutable cepoch : int; (* conn epoch at send: stale credits are voided *)
  mutable bufep : int; (* rcvbuf epoch at accept: stale credits voided *)
  mutable arr_tk : int; (* arrival tick at the destination NIC *)
  (* Per-hop continuations, built once at record birth so steady-state
     scheduling allocates no closures. *)
  mutable k1 : unit -> unit; (* arrival: occupy nic_in *)
  mutable k2 : unit -> unit; (* rx done: buffer accept, occupy cpu *)
  mutable k3 : unit -> unit; (* served: run handler, reclaim *)
  mutable kc : unit -> unit; (* consume-only (fault drops) *)
}

and proc = {
  p_id : int;
  p_name : string;
  p_node : node;
  mutable handler : msg -> unit;
  mutable alive : bool;
  mutable rcvbuf_cap : int;
  mutable rcvbuf_used : int;
  (* Bumped by [recover]: deliveries that charged the buffer in an earlier
     incarnation must not credit it back after the reset (their epoch no
     longer matches), or the counter goes negative and overflow drops stop
     firing. *)
  mutable rcvbuf_epoch : int;
  p_costs : costs;
  p_recv : Sim.Stats.Rate.t;
  p_sent : Sim.Stats.Rate.t;
  mutable p_drops : int;
  mutable p_mem : int;
}

(* Per-(src,dst) reliable-connection state: [in_flight] counts bytes accepted
   by the network but not yet consumed by the receiver's handler; sends that
   would exceed the receiver window wait in the backlog.  Pooled mode keeps
   the backlog in a grow-only ring of parallel arrays (no allocation per
   deferred send once the ring has grown); boxed mode uses the legacy queue
   of tuples. *)
and conn = {
  mutable in_flight : int;
  (* Bumped when [kill] resets the connection: window credits from
     deliveries accepted under the old incarnation must not decrement the
     fresh [in_flight] (which would drive it negative and let later sends
     overrun the receiver window). *)
  mutable c_epoch : int;
  mutable b_size : int array;
  mutable b_sent : int array;
  mutable b_tid : int array;
  mutable b_pay : payload array;
  mutable b_head : int;
  mutable b_len : int;
  b_queue : (int * payload * int * int) Queue.t; (* boxed-mode backlog *)
}

type group = {
  g_id : int;
  g_name : string;
  mutable g_members : proc list;
  (* Per-group multicast rate tracking: a switch replicates a group's
     traffic only onto its members' egress ports, so disjoint groups do not
     share capacity (this is what lets Multi-Ring Paxos scale). *)
  mutable g_rate : float;
  mutable g_last : float;
  mutable g_pending_bits : float;
  g_senders : (int, float) Hashtbl.t;
}

type config = {
  latency : float;
  latency_jitter : float;
  bandwidth : float;
  mtu : int;
  frame_overhead : int;
  multicast_available : bool;
  mcast_capacity : float;
  udp_base_loss : float;
  default_rcvbuf : int;
  default_costs : unit -> costs;
}

let default_costs () =
  { recv_per_msg = 4.0e-6;
    recv_per_byte = 1.8e-9;
    send_per_msg = 4.5e-6;
    send_per_byte = 4.5e-9 }

let default_config =
  { latency = 5.0e-5;
    latency_jitter = 0.05;
    bandwidth = 1.0e9;
    mtu = 1500;
    frame_overhead = 52;
    multicast_available = true;
    mcast_capacity = 1.0e9;
    udp_base_loss = 0.0;
    default_rcvbuf = 16 * 1024 * 1024;
    default_costs }

(* Verdict of the fault tap for one (message, destination) pair. *)
type fault = Deliver | Drop | Delay of float | Duplicate of float

(* Two implementations of the message path share every computation that
   affects timing, randomness, statistics and tracing, so a seeded run is
   byte-identical across modes.  They differ only in allocation shape:
   [`Pooled] (default) recycles message records, schedules hops through
   per-record preallocated closures and parks backlogged sends in a ring;
   [`Boxed] allocates a fresh record and fresh hop closures per message —
   the pre-pooling reference used by equivalence tests and benchmarks. *)
type mode = [ `Pooled | `Boxed ]

let default_mode : mode ref = ref `Pooled
let set_default_mode m = default_mode := m
let get_default_mode () = !default_mode

let mode_of_string = function
  | "pooled" -> `Pooled
  | "boxed" -> `Boxed
  | s -> invalid_arg ("Simnet.mode_of_string: " ^ s)

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  cfg : config;
  pooled : bool;
  cell : float array; (* the engine clock cell; reads don't box *)
  mutable nodes : node list;
  procs : (int, proc) Hashtbl.t;
  mutable nprocs : int;
  mutable ngroups : int;
  conns : (int, conn) Hashtbl.t; (* key = src lsl 20 lor dst *)
  mutable mc_drops : int;
  mutable mc_packets : int;
  mutable fault_tap : (msg -> dst:proc -> fault) option;
  mutable fault_drops : int;
  mutable tracer : Trace.t option;
  mutable next_tid : int;
  dummy_proc : proc;
  dummy_conn : conn;
  (* Message pool: [all] registers every record ever born (for audits),
     [free] is the recycle stack. *)
  mutable all : msg array;
  mutable n_all : int;
  mutable free : msg array;
  mutable n_free : int;
}

let new_conn () =
  { in_flight = 0;
    c_epoch = 0;
    b_size = Array.make 8 0;
    b_sent = Array.make 8 0;
    b_tid = Array.make 8 0;
    b_pay = Array.make 8 Noop;
    b_head = 0;
    b_len = 0;
    b_queue = Queue.create () }

let create ?(config = default_config) ?mode engine rng =
  let mode = match mode with Some m -> m | None -> !default_mode in
  let dummy_node =
    { node_id = -1;
      nname = "<none>";
      cpu = Resource.create "<none>.cpu";
      nic_out = Resource.create "<none>.out";
      nic_in = Resource.create "<none>.in";
      cpu_factor = 1.0;
      lat_factor = 1.0 }
  in
  let dummy_proc =
    { p_id = -1;
      p_name = "<none>";
      p_node = dummy_node;
      handler = (fun _ -> ());
      alive = false;
      rcvbuf_cap = 0;
      rcvbuf_used = 0;
      rcvbuf_epoch = 0;
      p_costs = default_costs ();
      p_recv = Sim.Stats.Rate.create ();
      p_sent = Sim.Stats.Rate.create ();
      p_drops = 0;
      p_mem = 0 }
  in
  { engine;
    rng;
    cfg = config;
    pooled = (mode = `Pooled);
    cell = Sim.Engine.now_cell engine;
    nodes = [];
    procs = Hashtbl.create 64;
    nprocs = 0;
    ngroups = 0;
    conns = Hashtbl.create 64;
    mc_drops = 0;
    mc_packets = 0;
    fault_tap = None;
    fault_drops = 0;
    tracer = None;
    next_tid = 0;
    dummy_proc;
    dummy_conn = new_conn ();
    all = [||];
    n_all = 0;
    free = [||];
    n_free = 0 }

let engine t = t.engine
let config t = t.cfg
let now t = Sim.Engine.now t.engine
let mode t : mode = if t.pooled then `Pooled else `Boxed

(* Current tick, truncating like [Sim.Engine.ticks_of_time]: events fired
   on the grid read their own tick back exactly. *)
let[@inline] now_tk t = int_of_float (Array.unsafe_get t.cell 0 *. tick_scale)

let add_node ?(cpu_factor = 1.0) ?(lat_factor = 1.0) t name =
  let id = List.length t.nodes in
  let n =
    { node_id = id;
      nname = name;
      cpu = Resource.create (name ^ ".cpu");
      nic_out = Resource.create (name ^ ".out");
      nic_in = Resource.create (name ^ ".in");
      cpu_factor;
      lat_factor }
  in
  t.nodes <- n :: t.nodes;
  n

let add_proc t node name =
  let p =
    { p_id = t.nprocs;
      p_name = name;
      p_node = node;
      handler = (fun _ -> ());
      alive = true;
      rcvbuf_cap = t.cfg.default_rcvbuf;
      rcvbuf_used = 0;
      rcvbuf_epoch = 0;
      p_costs = t.cfg.default_costs ();
      p_recv = Sim.Stats.Rate.create ();
      p_sent = Sim.Stats.Rate.create ();
      p_drops = 0;
      p_mem = 0 }
  in
  Hashtbl.add t.procs t.nprocs p;
  t.nprocs <- t.nprocs + 1;
  (match t.tracer with
  | Some tr -> Trace.register tr ~pid:p.p_id ~name
  | None -> ());
  p

(* [set_tracer] opens a fresh pid namespace in the tracer (several nets may
   share one trace file) and registers every existing process; processes
   added later register themselves.  Recording never schedules events or
   consumes randomness, so installing a tracer cannot change a run. *)
let set_tracer t tr =
  t.tracer <- tr;
  match tr with
  | Some tr ->
      Trace.new_run tr;
      Hashtbl.iter (fun pid p -> Trace.register tr ~pid ~name:p.p_name) t.procs
  | None -> ()

let tracer t = t.tracer

(* Fresh per-message causal id.  A plain counter, deterministic and
   allocated whether or not a tracer is installed, so trace-on and
   trace-off runs execute identically. *)
let alloc_tid t =
  t.next_tid <- t.next_tid + 1;
  t.next_tid

let pid p = p.p_id
let proc_name p = p.p_name
let proc_node p = p.p_node
let node_name n = n.nname

let proc_of t id =
  match Hashtbl.find_opt t.procs id with
  | Some p -> p
  | None -> invalid_arg "Simnet.proc_of: unknown pid"

let set_handler p f = p.handler <- f

let handler_of p = p.handler
let set_rcvbuf p n = p.rcvbuf_cap <- n
let rcvbuf p = p.rcvbuf_cap
let rcvbuf_used p = p.rcvbuf_used
let costs_of p = p.p_costs
let set_mem p n = p.p_mem <- n
let mem p = p.p_mem
let recv_rate p = p.p_recv
let sent_rate p = p.p_sent
let drops p = p.p_drops
let switch_drops t = t.mc_drops
let mcast_packets t = t.mc_packets
let cpu_busy n = Resource.busy n.cpu
let is_alive p = p.alive
let sent_at (m : msg) = float_of_int m.sent_tk *. tick_width

let wire_size t size =
  let payload_per_frame = t.cfg.mtu - 48 in
  let frames = (size + payload_per_frame - 1) / payload_per_frame in
  let frames = if frames < 1 then 1 else frames in
  size + (frames * t.cfg.frame_overhead)

(* Serialisation time of [size] payload bytes, in ticks (rounded to
   nearest).  The float arithmetic is local, so nothing boxes. *)
let[@inline] trans_tk t size =
  let secs = float_of_int (wire_size t size) *. 8.0 /. t.cfg.bandwidth in
  let x = (secs *. tick_scale) +. 0.5 in
  if x <= 0.0 then 0 else int_of_float x

(* Propagation delay in ticks.  The jitter draw is skipped when the config
   disables jitter, which keeps the zero-jitter fast path free of the boxed
   float [Rng.float] returns; both message-path modes share this function,
   so their RNG streams stay identical. *)
let[@inline] prop_tk t src dst =
  let base = t.cfg.latency *. 0.5 *. (src.p_node.lat_factor +. dst.p_node.lat_factor) in
  let d =
    if t.cfg.latency_jitter = 0.0 then base
    else base *. (1.0 +. Sim.Rng.float t.rng t.cfg.latency_jitter)
  in
  let x = (d *. tick_scale) +. 0.5 in
  if x <= 0.0 then 0 else int_of_float x

let set_fault_tap t tap = t.fault_tap <- tap
let fault_drops t = t.fault_drops
let set_cpu_factor n f = n.cpu_factor <- f
let node_cpu_factor n = n.cpu_factor

(* Connections are keyed by a packed pid pair (20 bits each), so lookup
   hashes an immediate int and allocates nothing. *)
let[@inline] conn_key src dst = (src lsl 20) lor (dst land 0xFFFFF)

let conn_of t src dst =
  let key = conn_key src.p_id dst.p_id in
  match Hashtbl.find t.conns key with
  | c -> c
  | exception Not_found ->
      let c = new_conn () in
      Hashtbl.add t.conns key c;
      c

(* Backlog ring: push may grow (doubling, compacting to index 0); pop is
   from the head.  Payload slots are cleared on pop/clear so the ring never
   roots dead payloads. *)
let ring_push conn ~size ~payload ~sent_tk ~tid =
  let cap = Array.length conn.b_size in
  if conn.b_len = cap then begin
    let ncap = cap * 2 in
    let ns = Array.make ncap 0
    and nn = Array.make ncap 0
    and nt = Array.make ncap 0
    and np = Array.make ncap Noop in
    for i = 0 to conn.b_len - 1 do
      let j = (conn.b_head + i) land (cap - 1) in
      ns.(i) <- conn.b_size.(j);
      nn.(i) <- conn.b_sent.(j);
      nt.(i) <- conn.b_tid.(j);
      np.(i) <- conn.b_pay.(j)
    done;
    conn.b_size <- ns;
    conn.b_sent <- nn;
    conn.b_tid <- nt;
    conn.b_pay <- np;
    conn.b_head <- 0
  end;
  let mask = Array.length conn.b_size - 1 in
  let idx = (conn.b_head + conn.b_len) land mask in
  Array.unsafe_set conn.b_size idx size;
  Array.unsafe_set conn.b_sent idx sent_tk;
  Array.unsafe_set conn.b_tid idx tid;
  conn.b_pay.(idx) <- payload;
  conn.b_len <- conn.b_len + 1

let clear_backlog conn =
  let mask = Array.length conn.b_size - 1 in
  for i = 0 to conn.b_len - 1 do
    conn.b_pay.((conn.b_head + i) land mask) <- Noop
  done;
  conn.b_head <- 0;
  conn.b_len <- 0;
  Queue.clear conn.b_queue

(* Wire-propagation span, emitted at send time in both modes (also for
   messages a fault tap later drops or delays, like the pre-tap model). *)
let trace_prop t ~tid src ~tx_done_tk ~arr_tk =
  match t.tracer with
  | None -> ()
  | Some tr when Trace.enabled tr ->
      Trace.span tr ~id:tid ~pid:src.p_id ~cat:"wire" ~name:"prop" ~ts:(tf tx_done_tk)
        ~dur:(tf (arr_tk - tx_done_tk))
  | Some _ -> ()

(* Charge the sender CPU and the outgoing link; returns the tick when the
   last bit leaves the sender NIC.  Each resource acquisition splits into
   queueing (start - request) and service time; the tracer records both.
   The first wait span is measured from the true (possibly off-grid) clock
   so trace output is identical across modes and unchanged by quantization
   of later hops. *)
let sender_side_tk t ~tid src size =
  let c = src.p_costs in
  let now_f = Array.unsafe_get t.cell 0 in
  let at_tk = now_tk t in
  let cpu_tk =
    let d = (c.send_per_msg +. (c.send_per_byte *. float_of_int size)) *. src.p_node.cpu_factor in
    let x = (d *. tick_scale) +. 0.5 in
    if x <= 0.0 then 0 else int_of_float x
  in
  (* Boxed mode books the identical slot through the legacy float
     [Resource.acquire]: every input is an exact grid float, so the booking
     and busy accounting match [acquire_tk] bit for bit — only the tuple
     and boxed floats it allocates differ, which is the reference cost the
     benchmarks measure. *)
  let cpu_done_tk, cpu_start_tk =
    if t.pooled then begin
      let f = Resource.acquire_tk src.p_node.cpu ~at_tk ~dur_tk:cpu_tk in
      (f, Resource.last_start_tk src.p_node.cpu)
    end
    else begin
      let s, f = Resource.acquire src.p_node.cpu ~at:(tf at_tk) ~dur:(tf cpu_tk) in
      (int_of_float (f *. tick_scale), int_of_float (s *. tick_scale))
    end
  in
  let tx_tk = trans_tk t size in
  let tx_done_tk, tx_start_tk =
    if t.pooled then begin
      let f = Resource.acquire_tk src.p_node.nic_out ~at_tk:cpu_done_tk ~dur_tk:tx_tk in
      (f, Resource.last_start_tk src.p_node.nic_out)
    end
    else begin
      let s, f = Resource.acquire src.p_node.nic_out ~at:(tf cpu_done_tk) ~dur:(tf tx_tk) in
      (int_of_float (f *. tick_scale), int_of_float (s *. tick_scale))
    end
  in
  (* identical accounting either way; the boxed reference keeps the
     legacy float entry point (the [~now] argument boxes at the call) *)
  if t.pooled then Sim.Stats.Rate.add_cell src.p_sent ~now_cell:t.cell ~bytes:size
  else Sim.Stats.Rate.add src.p_sent ~now:(Array.unsafe_get t.cell 0) ~bytes:size;
  (match t.tracer with
  | None -> ()
  | Some tr when Trace.enabled tr ->
      let pid = src.p_id in
      let cpu_start = tf cpu_start_tk in
      if cpu_start > now_f then
        Trace.span tr ~id:tid ~pid ~cat:"queue" ~name:"send-cpu-wait" ~ts:now_f
          ~dur:(cpu_start -. now_f);
      Trace.span tr ~id:tid ~pid ~cat:"cpu" ~name:"send-cpu" ~ts:cpu_start ~dur:(tf cpu_tk);
      let cpu_done = tf cpu_done_tk in
      let tx_start = tf tx_start_tk in
      if tx_start > cpu_done then
        Trace.span tr ~id:tid ~pid ~cat:"queue" ~name:"nic-out-wait" ~ts:cpu_done
          ~dur:(tx_start -. cpu_done);
      Trace.span tr ~id:tid ~pid ~cat:"wire" ~name:"nic-out" ~ts:tx_start ~dur:(tf tx_tk)
  | Some _ -> ());
  tx_done_tk

(* ------------------------------------------------------------------ *)
(* The message path.  One pipeline, two scheduling disciplines:       *)
(* pooled mode arms the record's preallocated continuations with      *)
(* [Engine.at_ticks]; boxed mode builds a fresh closure per hop and   *)
(* schedules it at the same absolute grid time with [Engine.at].      *)
(* Both make identical engine insertions (times, order), consume the  *)
(* RNG identically and emit identical trace records.                  *)
(* ------------------------------------------------------------------ *)

let rec stage_arrival t m =
  let i = m.m_i in
  let dst = i.dstp in
  if not dst.alive then begin
    dst.p_drops <- dst.p_drops + 1;
    finish_msg t m
  end
  else begin
    let at_tk = now_tk t in
    let rx_tk = trans_tk t m.size in
    let rx_done_tk, rx_start_tk =
      if t.pooled then begin
        let f = Resource.acquire_tk dst.p_node.nic_in ~at_tk ~dur_tk:rx_tk in
        (f, Resource.last_start_tk dst.p_node.nic_in)
      end
      else begin
        let s, f = Resource.acquire dst.p_node.nic_in ~at:(tf at_tk) ~dur:(tf rx_tk) in
        (int_of_float (f *. tick_scale), int_of_float (s *. tick_scale))
      end
    in
    (match t.tracer with
    | None -> ()
    | Some tr when Trace.enabled tr ->
        let pid = dst.p_id in
        let arrival = Array.unsafe_get t.cell 0 in
        let rx_start = tf rx_start_tk in
        if rx_start > arrival then
          Trace.span tr ~id:m.tid ~pid ~cat:"queue" ~name:"nic-in-wait" ~ts:arrival
            ~dur:(rx_start -. arrival);
        Trace.span tr ~id:m.tid ~pid ~cat:"wire" ~name:"nic-in" ~ts:rx_start ~dur:(tf rx_tk)
    | Some _ -> ());
    if t.pooled then ignore (Sim.Engine.at_ticks t.engine ~tick:rx_done_tk i.k2)
    else ignore (Sim.Engine.at t.engine ~time:(tf rx_done_tk) (fun () -> stage_rxdone t m))
  end

and stage_rxdone t m =
  let i = m.m_i in
  let dst = i.dstp in
  if not dst.alive then begin
    dst.p_drops <- dst.p_drops + 1;
    finish_msg t m
  end
  else if i.udp && dst.rcvbuf_used + m.size > dst.rcvbuf_cap then begin
    dst.p_drops <- dst.p_drops + 1;
    (match t.tracer with
    | Some tr when Trace.enabled tr ->
        Trace.instant tr ~id:m.tid ~pid:dst.p_id ~cat:"proto" ~name:"rcvbuf-drop"
          ~ts:(Array.unsafe_get t.cell 0)
    | _ -> ());
    finish_msg t m
  end
  else begin
    dst.rcvbuf_used <- dst.rcvbuf_used + m.size;
    (* [recover] zeroes the buffer and bumps the epoch; a delivery accepted
       before the crash must not credit the fresh buffer back at its
       (post-recovery) service time. *)
    i.bufep <- dst.rcvbuf_epoch;
    (match t.tracer with
    | Some tr when Trace.enabled tr ->
        Trace.counter tr ~pid:dst.p_id ~name:"rcvbuf" ~ts:(Array.unsafe_get t.cell 0)
          dst.rcvbuf_used
    | _ -> ());
    let c = dst.p_costs in
    let at_tk = now_tk t in
    let cpu_tk =
      let d = (c.recv_per_msg +. (c.recv_per_byte *. float_of_int m.size)) *. dst.p_node.cpu_factor in
      let x = (d *. tick_scale) +. 0.5 in
      if x <= 0.0 then 0 else int_of_float x
    in
    let served_tk, cpu_start_tk =
      if t.pooled then begin
        let f = Resource.acquire_tk dst.p_node.cpu ~at_tk ~dur_tk:cpu_tk in
        (f, Resource.last_start_tk dst.p_node.cpu)
      end
      else begin
        let s, f = Resource.acquire dst.p_node.cpu ~at:(tf at_tk) ~dur:(tf cpu_tk) in
        (int_of_float (f *. tick_scale), int_of_float (s *. tick_scale))
      end
    in
    (match t.tracer with
    | None -> ()
    | Some tr when Trace.enabled tr ->
        let pid = dst.p_id in
        let rx_done = Array.unsafe_get t.cell 0 in
        let cpu_start = tf cpu_start_tk in
        if cpu_start > rx_done then
          Trace.span tr ~id:m.tid ~pid ~cat:"queue" ~name:"recv-cpu-wait" ~ts:rx_done
            ~dur:(cpu_start -. rx_done);
        Trace.span tr ~id:m.tid ~pid ~cat:"cpu" ~name:"recv-cpu" ~ts:cpu_start ~dur:(tf cpu_tk)
    | Some _ -> ());
    if t.pooled then ignore (Sim.Engine.at_ticks t.engine ~tick:served_tk i.k3)
    else ignore (Sim.Engine.at t.engine ~time:(tf served_tk) (fun () -> stage_served t m))
  end

and stage_served t m =
  let i = m.m_i in
  let dst = i.dstp in
  if dst.rcvbuf_epoch = i.bufep then dst.rcvbuf_used <- dst.rcvbuf_used - m.size;
  if dst.alive then begin
    if t.pooled then Sim.Stats.Rate.add_cell dst.p_recv ~now_cell:t.cell ~bytes:m.size
    else Sim.Stats.Rate.add dst.p_recv ~now:(Array.unsafe_get t.cell 0) ~bytes:m.size;
    dst.handler m
  end
  else dst.p_drops <- dst.p_drops + 1;
  finish_msg t m

(* Every terminal point of a message's life funnels here: credit the TCP
   window (unless the connection epoch moved), reclaim the record, then
   drain the sender's backlog.  The reclaim happens before the drain so a
   freed slot can carry the very next transmission. *)
and finish_msg t m =
  let i = m.m_i in
  let cn = i.cn in
  let srcp = i.srcp in
  let dstp = i.dstp in
  let size = m.size in
  let credit = i.credit && cn.c_epoch = i.cepoch in
  release_msg t m;
  if credit then begin
    cn.in_flight <- cn.in_flight - size;
    tcp_drain t srcp dstp cn
  end

and release_msg t m =
  let i = m.m_i in
  if i.slot >= 0 then begin
    if i.rc <= 0 then invalid_arg "Simnet: message released twice";
    i.rc <- i.rc - 1;
    if i.rc = 0 then begin
      i.gen <- i.gen + 1;
      m.payload <- Noop;
      i.srcp <- t.dummy_proc;
      i.dstp <- t.dummy_proc;
      i.cn <- t.dummy_conn;
      push_free t m
    end
  end

and push_free t m =
  let cap = Array.length t.free in
  if t.n_free = cap then begin
    let nf = Array.make (if cap = 0 then 64 else cap * 2) m in
    Array.blit t.free 0 nf 0 t.n_free;
    t.free <- nf
  end;
  Array.unsafe_set t.free t.n_free m;
  t.n_free <- t.n_free + 1

and register_msg t m =
  let cap = Array.length t.all in
  if t.n_all = cap then begin
    let na = Array.make (if cap = 0 then 64 else cap * 2) m in
    Array.blit t.all 0 na 0 t.n_all;
    t.all <- na
  end;
  t.all.(t.n_all) <- m;
  t.n_all <- t.n_all + 1

(* Birth of a pooled record: the hop continuations capture the record once
   and are reused for its whole life across recycles. *)
and birth t =
  let i =
    { slot = t.n_all;
      gen = 0;
      rc = 0;
      udp = false;
      credit = false;
      srcp = t.dummy_proc;
      dstp = t.dummy_proc;
      cn = t.dummy_conn;
      cepoch = 0;
      bufep = 0;
      arr_tk = 0;
      k1 = nop;
      k2 = nop;
      k3 = nop;
      kc = nop }
  in
  let m = { src = 0; dst = 0; size = 0; payload = Noop; sent_tk = 0; tid = 0; m_i = i } in
  i.k1 <- (fun () -> stage_arrival t m);
  i.k2 <- (fun () -> stage_rxdone t m);
  i.k3 <- (fun () -> stage_served t m);
  i.kc <- (fun () -> finish_msg t m);
  register_msg t m;
  m

and acquire_msg t =
  if not t.pooled then begin
    (* Boxed reference mode: a fresh record per message, reclaimed by the
       GC; the hop continuations stay [nop] (fresh closures are built at
       each scheduling point instead, reproducing the legacy shape). *)
    let i =
      { slot = -1;
        gen = 0;
        rc = 1;
        udp = false;
        credit = false;
        srcp = t.dummy_proc;
        dstp = t.dummy_proc;
        cn = t.dummy_conn;
        cepoch = 0;
        bufep = 0;
        arr_tk = 0;
        k1 = nop;
        k2 = nop;
        k3 = nop;
        kc = nop }
    in
    { src = 0; dst = 0; size = 0; payload = Noop; sent_tk = 0; tid = 0; m_i = i }
  end
  else begin
    if t.n_free = 0 then push_free t (birth t);
    t.n_free <- t.n_free - 1;
    let m = Array.unsafe_get t.free t.n_free in
    m.m_i.rc <- 1;
    m
  end

(* Fault-tap dispatch for one (message, destination) pair, then scheduling
   of the arrival hop.  A [Drop] still runs the consume hop at the would-be
   arrival time, otherwise the sender's TCP window accounting leaks
   [in_flight] bytes and the connection wedges; a [Duplicate] copy carries
   no window credit so the window is credited exactly once. *)
and transmit t m ~arrival_tk =
  let i = m.m_i in
  match t.fault_tap with
  | None ->
      i.arr_tk <- arrival_tk;
      sched_arrival t m
  | Some tap -> (
      match tap m ~dst:i.dstp with
      | Deliver ->
          i.arr_tk <- arrival_tk;
          sched_arrival t m
      | Drop ->
          t.fault_drops <- t.fault_drops + 1;
          i.dstp.p_drops <- i.dstp.p_drops + 1;
          if t.pooled then ignore (Sim.Engine.at_ticks t.engine ~tick:arrival_tk i.kc)
          else ignore (Sim.Engine.at t.engine ~time:(tf arrival_tk) (fun () -> finish_msg t m))
      | Delay d ->
          i.arr_tk <- arrival_tk + tk_of_dur (Float.max 0.0 d);
          sched_arrival t m
      | Duplicate d ->
          i.arr_tk <- arrival_tk;
          sched_arrival t m;
          let dup = acquire_msg t in
          let di = dup.m_i in
          dup.src <- m.src;
          dup.dst <- m.dst;
          dup.size <- m.size;
          dup.payload <- m.payload;
          dup.sent_tk <- m.sent_tk;
          dup.tid <- m.tid;
          di.udp <- i.udp;
          di.credit <- false;
          di.srcp <- i.srcp;
          di.dstp <- i.dstp;
          di.cn <- t.dummy_conn;
          di.cepoch <- 0;
          di.arr_tk <- arrival_tk + tk_of_dur (Float.max 0.0 d);
          sched_arrival t dup)

and sched_arrival t m =
  let i = m.m_i in
  if t.pooled then ignore (Sim.Engine.at_ticks t.engine ~tick:i.arr_tk i.k1)
  else ignore (Sim.Engine.at t.engine ~time:(tf i.arr_tk) (fun () -> stage_arrival t m))

and tcp_transmit t srcp dstp cn size payload sent_tk tid =
  let tx_done_tk = sender_side_tk t ~tid srcp size in
  let arr_tk = tx_done_tk + prop_tk t srcp dstp in
  trace_prop t ~tid srcp ~tx_done_tk ~arr_tk;
  let m = acquire_msg t in
  let i = m.m_i in
  m.src <- srcp.p_id;
  m.dst <- dstp.p_id;
  m.size <- size;
  m.payload <- payload;
  m.sent_tk <- sent_tk;
  m.tid <- tid;
  i.udp <- false;
  i.credit <- true;
  i.srcp <- srcp;
  i.dstp <- dstp;
  i.cn <- cn;
  i.cepoch <- cn.c_epoch;
  transmit t m ~arrival_tk:arr_tk

and tcp_drain t srcp dstp cn =
  let window = dstp.rcvbuf_cap in
  if t.pooled then begin
    let continue = ref true in
    while !continue && cn.b_len > 0 do
      let head = cn.b_head in
      let size = Array.unsafe_get cn.b_size head in
      if cn.in_flight + size <= window || cn.in_flight = 0 then begin
        let payload = cn.b_pay.(head) in
        let sent_tk = Array.unsafe_get cn.b_sent head in
        let tid = Array.unsafe_get cn.b_tid head in
        cn.b_pay.(head) <- Noop;
        cn.b_head <- (head + 1) land (Array.length cn.b_size - 1);
        cn.b_len <- cn.b_len - 1;
        cn.in_flight <- cn.in_flight + size;
        tcp_transmit t srcp dstp cn size payload sent_tk tid
      end
      else continue := false
    done
  end
  else begin
    let continue = ref true in
    while !continue do
      match Queue.peek_opt cn.b_queue with
      | Some (size, _, _, _) when cn.in_flight + size <= window || cn.in_flight = 0 ->
          let size, payload, sent_tk, tid = Queue.pop cn.b_queue in
          cn.in_flight <- cn.in_flight + size;
          tcp_transmit t srcp dstp cn size payload sent_tk tid
      | _ -> continue := false
    done
  end

let send ?tid t ~src ~dst ~size payload =
  let tid = match tid with Some x -> x | None -> alloc_tid t in
  let cn = conn_of t src dst in
  let window = dst.rcvbuf_cap in
  let backlog_empty = if t.pooled then cn.b_len = 0 else Queue.is_empty cn.b_queue in
  if backlog_empty && (cn.in_flight + size <= window || cn.in_flight = 0) then begin
    cn.in_flight <- cn.in_flight + size;
    tcp_transmit t src dst cn size payload (now_tk t) tid
  end
  else if t.pooled then ring_push cn ~size ~payload ~sent_tk:(now_tk t) ~tid
  else Queue.push (size, payload, now_tk t, tid) cn.b_queue

let udp ?tid t ~src ~dst ~size payload =
  let tid = match tid with Some x -> x | None -> alloc_tid t in
  (* The base-loss draw is skipped when the config disables it (shared by
     both modes, so RNG streams stay identical). *)
  if t.cfg.udp_base_loss > 0.0 && Sim.Rng.bool t.rng t.cfg.udp_base_loss then
    dst.p_drops <- dst.p_drops + 1
  else begin
    let tx_done_tk = sender_side_tk t ~tid src size in
    let arr_tk = tx_done_tk + prop_tk t src dst in
    trace_prop t ~tid src ~tx_done_tk ~arr_tk;
    let m = acquire_msg t in
    let i = m.m_i in
    m.src <- src.p_id;
    m.dst <- dst.p_id;
    m.size <- size;
    m.payload <- payload;
    m.sent_tk <- now_tk t;
    m.tid <- tid;
    i.udp <- true;
    i.credit <- false;
    i.srcp <- src;
    i.dstp <- dst;
    i.cn <- t.dummy_conn;
    i.cepoch <- 0;
    transmit t m ~arrival_tk:arr_tk
  end

let new_group t name =
  t.ngroups <- t.ngroups + 1;
  { g_id = t.ngroups;
    g_name = name;
    g_members = [];
    g_rate = 0.0;
    g_last = 0.0;
    g_pending_bits = 0.0;
    g_senders = Hashtbl.create 8 }

let join g p = if not (List.memq p g.g_members) then g.g_members <- p :: g.g_members
let leave g p = g.g_members <- List.filter (fun q -> q != p) g.g_members
let members g = g.g_members

(* Per-group multicast-rate tracking: exponential moving average; the
   sender set decays after 100 ms of silence. *)
let mc_update t g src bits =
  let n = now t in
  Hashtbl.replace g.g_senders src.p_id n;
  g.g_pending_bits <- g.g_pending_bits +. bits;
  let dt = n -. g.g_last in
  (* Packets sent at the same instant accumulate until time advances, so
     simultaneous senders are counted at their true aggregate rate. *)
  if dt > 0.0 then begin
    g.g_last <- n;
    let inst = g.g_pending_bits /. dt in
    g.g_pending_bits <- 0.0;
    (* A ~50 ms time constant: short line-rate bursts are absorbed the way
       switch buffers absorb them; only sustained overload drops packets. *)
    let alpha = Float.min 1.0 (dt /. 0.05) in
    g.g_rate <- ((1.0 -. alpha) *. g.g_rate) +. (alpha *. inst)
  end;
  ignore t

let mc_active_senders t g =
  let n = now t in
  Hashtbl.fold (fun _ last acc -> if n -. last < 0.1 then acc + 1 else acc) g.g_senders 0

(* Loss probability of a multicast packet within one group: zero below a
   threshold that shrinks as concurrent senders are added, then rising
   linearly (Fig. 3.3's mechanism).  Groups are independent: a switch
   replicates each group only onto its own members' egress ports. *)
let mc_loss_prob t g =
  let cap = t.cfg.mcast_capacity in
  let n = mc_active_senders t g in
  let thr = cap *. (0.97 -. (0.055 *. log (float_of_int (Stdlib.max 1 n)))) in
  if g.g_rate <= thr then t.cfg.udp_base_loss
  else
    let p = (g.g_rate -. thr) /. (0.25 *. cap) in
    Float.min 0.30 (Float.max t.cfg.udp_base_loss p)

(* Egress-port overrun threshold: 20 ms of booked backlog (truncated to the
   grid; every nic_in booking is tick-aligned so the comparison is exact). *)
let overrun_tk = int_of_float (0.02 *. tick_scale)

let mcast ?(loopback = false) ?tid t ~src g ~size payload =
  if not t.cfg.multicast_available then
    failwith "Simnet.mcast: ip-multicast unavailable in this deployment";
  let tid = match tid with Some x -> x | None -> alloc_tid t in
  let sent_tk = now_tk t in
  let tx_done_tk = sender_side_tk t ~tid src size in
  (* The switch sees the packet when the NIC has finished serialising it, so
     back-to-back bursts are paced at line rate before the loss model runs.
     The switch closure is per-call in both modes (fan-out is not the
     zero-allocation path; the per-destination records still pool). *)
  ignore
    (Sim.Engine.at_ticks t.engine ~tick:tx_done_tk (fun () ->
         t.mc_packets <- t.mc_packets + 1;
         mc_update t g src (float_of_int (wire_size t size) *. 8.0);
         let p_loss = mc_loss_prob t g in
         List.iter
           (fun dst ->
             if dst != src || loopback then begin
               (* An egress port whose queue has run away also sheds the
                  packet (switch egress buffering is finite). *)
               let port_overrun =
                 Resource.backlog_gt dst.p_node.nic_in ~now_tk:tx_done_tk ~limit_tk:overrun_tk
               in
               if port_overrun || (p_loss > 0.0 && Sim.Rng.bool t.rng p_loss) then begin
                 dst.p_drops <- dst.p_drops + 1;
                 t.mc_drops <- t.mc_drops + 1;
                 match t.tracer with
                 | Some tr when Trace.enabled tr ->
                     Trace.instant tr ~id:tid ~pid:dst.p_id ~cat:"proto" ~name:"switch-drop"
                       ~ts:(Array.unsafe_get t.cell 0)
                 | _ -> ()
               end
               else begin
                 let arr_tk = tx_done_tk + prop_tk t src dst in
                 trace_prop t ~tid src ~tx_done_tk ~arr_tk;
                 let m = acquire_msg t in
                 let i = m.m_i in
                 m.src <- src.p_id;
                 m.dst <- -1;
                 m.size <- size;
                 m.payload <- payload;
                 m.sent_tk <- sent_tk;
                 m.tid <- tid;
                 i.udp <- true;
                 i.credit <- false;
                 i.srcp <- src;
                 i.dstp <- dst;
                 i.cn <- t.dummy_conn;
                 i.cepoch <- 0;
                 transmit t m ~arrival_tk:arr_tk
               end
             end)
           g.g_members))

(* {1 Message-pool public API} *)

let retain _t m =
  let i = m.m_i in
  if i.slot >= 0 then i.rc <- i.rc + 1

let release t m = release_msg t m
let msg_generation m = m.m_i.gen
let msg_refcount m = m.m_i.rc
let pool_allocated t = t.n_all
let pool_free t = t.n_free

(* {1 Timers} *)

let after t delay f = Sim.Engine.schedule t.engine ~delay f

let after_tk t ~ticks f = Sim.Engine.schedule_ticks t.engine ~ticks f

let cancel t h = Sim.Engine.cancel t.engine h

let every t ~period f =
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      f ();
      ignore (Sim.Engine.schedule t.engine ~delay:period tick)
    end
  in
  ignore (Sim.Engine.schedule t.engine ~delay:period tick);
  fun () -> stopped := true

(* Tick-period variant: the recurring closure is allocated once and each
   re-arm passes an integer, so periodic protocol timers (heartbeats,
   batch flushes) run allocation-free. *)
let every_tk t ~ticks f =
  let stopped = ref false in
  let rec tick () =
    if not !stopped then begin
      f ();
      ignore (Sim.Engine.schedule_ticks t.engine ~ticks tick)
    end
  in
  ignore (Sim.Engine.schedule_ticks t.engine ~ticks tick);
  fun () -> stopped := true

let charge_cpu t p dur =
  if dur > 0.0 then
    ignore (Resource.acquire p.p_node.cpu ~at:(now t) ~dur:(dur *. p.p_node.cpu_factor))

let exec t p ~dur k =
  let at = now t in
  let dur = dur *. p.p_node.cpu_factor in
  let start, finish = Resource.acquire p.p_node.cpu ~at ~dur in
  (match t.tracer with
  | None -> ()
  | Some tr when Trace.enabled tr ->
      if start > at then
        Trace.span tr ~pid:p.p_id ~cat:"queue" ~name:"exec-wait" ~ts:at ~dur:(start -. at);
      Trace.span tr ~pid:p.p_id ~cat:"exec" ~name:"exec" ~ts:start ~dur
  | Some _ -> ());
  ignore (Sim.Engine.at t.engine ~time:finish (fun () -> if p.alive then k ()))

let kill t p =
  p.alive <- false;
  Hashtbl.iter
    (fun key conn ->
      let src = key lsr 20 and dst = key land 0xFFFFF in
      (* Connection state to a crashed process is reset so a later recovery
         starts from a clean window; the epoch bump stops in-flight window
         credits from the old incarnation reaching the fresh counter. *)
      if dst = p.p_id then begin
        conn.in_flight <- 0;
        clear_backlog conn;
        conn.c_epoch <- conn.c_epoch + 1
      end
      (* The crashed process's own un-transmitted sends are volatile state:
         they must not resurrect and transmit after recovery (bytes already
         accepted in flight stay accounted — they are on the wire, and
         their deliveries drain [in_flight] normally). *)
      else if src = p.p_id then clear_backlog conn)
    t.conns

let recover _t p =
  p.alive <- true;
  p.rcvbuf_used <- 0;
  (* Deliveries accepted before the crash still hold credits against the
     old buffer; the epoch bump voids them (see [stage_served]). *)
  p.rcvbuf_epoch <- p.rcvbuf_epoch + 1
