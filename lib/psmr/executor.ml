(* Dependency-aware parallel executor over the btree service.

   Each decided command declares the key ranges it reads and writes
   (Btree.Keyset).  A dependency tracker keeps the commands whose simulated
   execution or commit is still in flight; a new command is dispatched to
   one of [n_workers] simulated worker threads as soon as its conflicting
   predecessors have finished — there is no all-workers barrier.

   Two modes ("Rethinking State-Machine Replication for Parallelism",
   arXiv 1311.6183, and "Optimistic Parallel State-Machine Replication",
   arXiv 1404.6721):

   - [Pessimistic]: a command waits for every conflicting predecessor to
     finish before it starts, so conflicting commands never overlap and
     independent commands run on any free worker.

   - [Optimistic]: a command starts speculatively on the first free worker.
     At commit (commits happen in log order) the tracker checks whether a
     predecessor whose writes intersect this command's reads was still
     executing when the command started — if so the speculative execution
     read stale state: the command's writes are undone, a rollback cost is
     charged, and the command re-executes once the conflicting predecessors
     have finished.  Re-execution can itself detect a later conflict, so
     the check loops until the command ran against settled state.

   State is applied to the underlying service in log order (submissions are
   ordered), so every replica running the same stream holds an identical
   tree; the speculative timing model charges the extra work rollbacks
   cause without perturbing determinism.  A rolled-back command's writes
   are undone before anything else executes, so they are never observable
   (see CORRECTNESS.md).

   Per-stage spans — queue (dependency wait), dispatch (worker wait),
   execute, rollback, commit (in-order commit wait) — feed the lib/trace
   latency decomposition when a tracer is installed. *)

type mode = Pessimistic | Optimistic

type report = {
  r_ready : float;  (** dependencies settled (pessimistic) / submit time *)
  r_start : float;  (** first speculative execution start *)
  r_fin : float;  (** final execution finish (after any re-executions) *)
  r_commit : float;  (** in-order commit time *)
  r_rollbacks : int;  (** re-executions this command needed *)
}

type inflight = {
  i_writes : Btree.Keyset.t;
  i_reads : Btree.Keyset.t;
  i_fin : float;
  i_commit : float;
}

type t = {
  mode : mode;
  service : Smr.Service.t;
  workers : float array;  (* per-worker next-free time *)
  busy : Sim.Stats.Busy.t;
  tracer : Trace.t option;
  pid : int;
  mutable active : inflight list;  (* commands whose execution may still be in flight *)
  mutable clock : float;  (* latest submission time seen *)
  mutable last_commit : float;
  mutable executed : int;
  mutable rollbacks : int;
  mutable conflicts : int;
}

let create ?tracer ?(pid = -1) ~mode ~n_workers service =
  { mode;
    service;
    workers = Array.make (Stdlib.max 1 n_workers) 0.0;
    busy = Sim.Stats.Busy.create ();
    tracer;
    pid;
    active = [];
    clock = 0.0;
    last_commit = 0.0;
    executed = 0;
    rollbacks = 0;
    conflicts = 0 }

let span t ~id ~cat ~name ~ts ~dur =
  match t.tracer with
  | Some tr when dur > 0.0 -> Trace.span tr ~id ~pid:t.pid ~cat ~name ~ts ~dur
  | _ -> ()

let min_free t = Array.fold_left Stdlib.min t.workers.(0) t.workers

let argmin_free t =
  let w = ref 0 in
  Array.iteri (fun i f -> if f < t.workers.(!w) then w := i) t.workers;
  !w

(* An active entry can no longer delay anyone once its execution finished
   before every worker is free again: any later submission starts at or
   after [max clock min_free], so entries below that watermark are dead. *)
let prune t =
  let wm = Stdlib.max t.clock (min_free t) in
  t.active <- List.filter (fun e -> e.i_fin > wm) t.active

let commit_in_order t fin =
  let commit = Stdlib.max fin t.last_commit in
  t.last_commit <- commit;
  commit

let submit t ~now ~uid ~reads ~writes op =
  t.clock <- Stdlib.max t.clock now;
  let now = t.clock in
  prune t;
  let report =
    match t.mode with
    | Pessimistic ->
        (* Dispatch once every conflicting predecessor has finished. *)
        let ready =
          List.fold_left
            (fun acc e ->
              if
                e.i_fin > acc
                && Btree.Keyset.conflict ~r1:reads ~w1:writes ~r2:e.i_reads
                     ~w2:e.i_writes
              then e.i_fin
              else acc)
            now t.active
        in
        let w = argmin_free t in
        let start = Stdlib.max ready t.workers.(w) in
        let o = t.service.execute op in
        let fin = start +. o.cost in
        t.workers.(w) <- fin;
        Sim.Stats.Busy.add ~at:start t.busy o.cost;
        let commit = commit_in_order t fin in
        span t ~id:uid ~cat:"queue" ~name:"dep-wait" ~ts:now ~dur:(ready -. now);
        span t ~id:uid ~cat:"dispatch" ~name:"worker-wait" ~ts:ready ~dur:(start -. ready);
        span t ~id:uid ~cat:"execute" ~name:"execute" ~ts:start ~dur:o.cost;
        span t ~id:uid ~cat:"commit" ~name:"commit-wait" ~ts:fin ~dur:(commit -. fin);
        { r_ready = ready; r_start = start; r_fin = fin; r_commit = commit;
          r_rollbacks = 0 }
    | Optimistic ->
        (* Execute speculatively on the first free worker; validate at
           commit and roll back if a conflicting predecessor was still
           running when we started. *)
        let w = argmin_free t in
        let start0 = Stdlib.max now t.workers.(w) in
        let rb = t.service.rollback_cost in
        let rec attempt start (o : Smr.Service.outcome) n_roll =
          let fin = start +. o.cost in
          let stale =
            List.filter
              (fun e -> e.i_fin > start && Btree.Keyset.overlaps e.i_writes reads)
              t.active
          in
          if stale = [] then (start, fin, o, n_roll)
          else begin
            t.conflicts <- t.conflicts + 1;
            t.rollbacks <- t.rollbacks + 1;
            (match o.undo with Some u -> u () | None -> ());
            Sim.Stats.Busy.add ~at:fin t.busy rb;
            span t ~id:uid ~cat:"rollback" ~name:"rollback" ~ts:fin ~dur:rb;
            let settled =
              List.fold_left (fun a e -> Stdlib.max a e.i_fin) 0.0 stale
            in
            let start' = Stdlib.max settled (fin +. rb) in
            let o' = t.service.execute op in
            Sim.Stats.Busy.add ~at:start' t.busy o'.cost;
            span t ~id:uid ~cat:"execute" ~name:"re-execute" ~ts:start' ~dur:o'.cost;
            attempt start' o' (n_roll + 1)
          end
        in
        let o0 = t.service.execute op in
        Sim.Stats.Busy.add ~at:start0 t.busy o0.cost;
        span t ~id:uid ~cat:"dispatch" ~name:"worker-wait" ~ts:now ~dur:(start0 -. now);
        span t ~id:uid ~cat:"execute" ~name:"execute" ~ts:start0
          ~dur:o0.Smr.Service.cost;
        let _, fin, _, n_roll = attempt start0 o0 0 in
        t.workers.(w) <- fin;
        let commit = commit_in_order t fin in
        span t ~id:uid ~cat:"commit" ~name:"commit-wait" ~ts:fin ~dur:(commit -. fin);
        { r_ready = now; r_start = start0; r_fin = fin; r_commit = commit;
          r_rollbacks = n_roll }
  in
  t.executed <- t.executed + 1;
  t.active <-
    { i_reads = reads; i_writes = writes; i_fin = report.r_fin;
      i_commit = report.r_commit }
    :: t.active;
  report

let executed t = t.executed
let rollbacks t = t.rollbacks
let conflicts t = t.conflicts
let last_commit t = t.last_commit
let n_workers t = Array.length t.workers
let inflight t = List.length t.active

let conflict_rate t =
  if t.executed = 0 then 0.0
  else float_of_int t.conflicts /. float_of_int t.executed

let utilization t ~from ~till =
  Sim.Stats.Busy.utilization t.busy ~from ~till
  /. float_of_int (Array.length t.workers)
