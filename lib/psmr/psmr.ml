module Executor = Executor

type approach = Sequential | Pipelined | Sdpe | Psmr | Depaware | Optimistic

type command = {
  obj : int;
  dependent : bool;
  size : int;
}

type kv_command = {
  kv_op : Simnet.payload;
  kv_reads : Btree.Keyset.t;
  kv_writes : Btree.Keyset.t;
  kv_size : int;
}

type config = {
  approach : approach;
  n_workers : int;
  n_replicas : int;
  ring : Ringpaxos.Mring.config;
  lambda : float;
  delta : float;
  merge_m : int;
  exec_cost : float;
  sched_cost : float;
  initial_keys : int;
  key_range : int;
}

let default_config =
  { approach = Psmr;
    n_workers = 4;
    n_replicas = 2;
    ring = Ringpaxos.Mring.default_config;
    lambda = 50_000.0;
    delta = 1.0e-3;
    merge_m = 8;
    exec_cost = 8.0e-6;
    sched_cost = 2.0e-6;
    initial_keys = 10_000;
    key_range = 1_000_000 }

type Simnet.payload +=
  | PCmd of { obj : int; dependent : bool }
  | PKv of { op : Simnet.payload; reads : Btree.Keyset.t; writes : Btree.Keyset.t }
  | PResp of { uid : int }

type barrier = {
  mutable b_arrived : int;
  mutable b_ready : float;
  b_joined : bool array;
}

type replica = {
  rep_idx : int;
  workers : float array;  (* per-worker-thread next-free time *)
  busy : Sim.Stats.Busy.t;
  queues : (float * int * Paxos.Value.item) Queue.t array;  (* per worker *)
  barriers : (int, barrier) Hashtbl.t;  (* uid -> barrier *)
  obj_last : (int, float) Hashtbl.t;  (* SDPE conflict tracking *)
  mutable sched_free : float;
  mutable exec_count : int;
  mutable barrier_count : int;
  mutable exec : Executor.t option;  (* Depaware/Optimistic executor *)
  mutable kv : Smr.Btree_service.t option;  (* its replicated state *)
}

type client = {
  cl_idx : int;
  mutable cl_uid : int;
  mutable cl_born : float;
}

type t = {
  net : Simnet.t;
  cfg : config;
  mutable mring : Multiring.t option;
  replicas : replica array;
  clients : client array;
  gen : int -> command;
  kv_gen : int -> kv_command;
  metrics : Smr.Metrics.t;
  ol_inflight : (int, float) Hashtbl.t;  (* open-loop uid -> born *)
  mutable ol_drops : int;
  mutable ol_issued : int;  (* open-loop commands accepted by a proposer *)
  mutable ol_rr : int;  (* open-loop proposer round-robin *)
}

let the_mr t = match t.mring with Some m -> m | None -> assert false

let all_group t = t.cfg.n_workers (* group id subscribed by every worker *)

let uses_executor = function Depaware | Optimistic -> true | _ -> false

let responder_replica t uid = Paxos.Value.uid_seq uid mod t.cfg.n_replicas

let respond t rep ~learner ~uid ~at =
  if responder_replica t uid = rep.rep_idx then begin
    (* Ring-proposer 0 is the skip controller, so application client c is
       ring proposer c+1.  The uid carries the full proposer id (see
       Value.make_uid) — the old 8-bit decode wrapped past 255 clients and
       responses went to the wrong proposer, wedging the closed loop. *)
    let client = Paxos.Value.uid_origin uid - 1 in
    if client >= 0 && client < Array.length t.clients then
      ignore
        (Sim.Engine.at (Simnet.engine t.net) ~time:at (fun () ->
             Simnet.send t.net
               ~src:(Multiring.learner_proc (the_mr t) learner)
               ~dst:(Multiring.proposer_proc (the_mr t) ~group:0 ~proposer:client)
               ~size:64 (PResp { uid })))
  end

(* --- P-SMR worker pump -------------------------------------------------------- *)

let barrier_of t rep uid =
  match Hashtbl.find_opt rep.barriers uid with
  | Some b -> b
  | None ->
      let b =
        { b_arrived = 0; b_ready = 0.0; b_joined = Array.make t.cfg.n_workers false }
      in
      Hashtbl.add rep.barriers uid b;
      b

(* All workers joined [uid]'s barrier: the lowest-numbered worker executes
   (§6.3.3).  A worker's queue head is normally the barrier entry itself,
   but a same-tick interleave (e.g. a batched sink delivery) can leave an
   independent command ahead of it — those were delivered first, so drain
   them (execute, respond) before popping the barrier entry, and fold the
   drained work into the barrier's ready time.  The previous code asserted
   the head was the barrier entry and crashed on any interleave. *)
let rec complete_barrier t rep ~uid b =
  let ready = ref b.b_ready in
  for i = 0 to t.cfg.n_workers - 1 do
    let rec drain () =
      match Queue.peek_opt rep.queues.(i) with
      | Some (arrived, g, it') when g < t.cfg.n_workers ->
          ignore (Queue.pop rep.queues.(i));
          let start = Stdlib.max arrived rep.workers.(i) in
          let fin = start +. t.cfg.exec_cost in
          rep.workers.(i) <- fin;
          Sim.Stats.Busy.add ~at:start rep.busy t.cfg.exec_cost;
          rep.exec_count <- rep.exec_count + 1;
          respond t rep ~learner:((rep.rep_idx * t.cfg.n_workers) + i)
            ~uid:it'.Paxos.Value.uid ~at:fin;
          drain ()
      | Some (_, g, it') when g = all_group t && it'.Paxos.Value.uid = uid ->
          ignore (Queue.pop rep.queues.(i))
      | _ ->
          (* A worker counted as arrived must hold the barrier entry. *)
          assert false
    in
    drain ();
    ready := Stdlib.max !ready rep.workers.(i)
  done;
  let fin = !ready +. t.cfg.exec_cost in
  for i = 0 to t.cfg.n_workers - 1 do
    rep.workers.(i) <- fin
  done;
  Sim.Stats.Busy.add ~at:!ready rep.busy t.cfg.exec_cost;
  rep.exec_count <- rep.exec_count + 1;
  rep.barrier_count <- rep.barrier_count + 1;
  Hashtbl.remove rep.barriers uid;
  respond t rep ~learner:(rep.rep_idx * t.cfg.n_workers) ~uid ~at:fin;
  for i = 0 to t.cfg.n_workers - 1 do
    pump t rep i
  done

and pump t rep w =
  match Queue.peek_opt rep.queues.(w) with
  | None -> ()
  | Some (arrived, group, it) ->
      if group < t.cfg.n_workers then begin
        (* Independent command: this worker alone executes it. *)
        ignore (Queue.pop rep.queues.(w));
        let start = Stdlib.max arrived rep.workers.(w) in
        let fin = start +. t.cfg.exec_cost in
        rep.workers.(w) <- fin;
        Sim.Stats.Busy.add ~at:start rep.busy t.cfg.exec_cost;
        rep.exec_count <- rep.exec_count + 1;
        respond t rep ~learner:((rep.rep_idx * t.cfg.n_workers) + w)
          ~uid:it.Paxos.Value.uid ~at:fin;
        pump t rep w
      end
      else begin
        (* Dependent command: all workers synchronise on a barrier. *)
        let b = barrier_of t rep it.Paxos.Value.uid in
        if not b.b_joined.(w) then begin
          b.b_joined.(w) <- true;
          b.b_arrived <- b.b_arrived + 1;
          b.b_ready <- Stdlib.max b.b_ready (Stdlib.max arrived rep.workers.(w));
          if b.b_arrived = t.cfg.n_workers then
            complete_barrier t rep ~uid:it.Paxos.Value.uid b
        end
      end

let psmr_deliver t ~learner ~group it =
  let rep = t.replicas.(learner / t.cfg.n_workers) in
  let w = learner mod t.cfg.n_workers in
  Queue.push (Simnet.now t.net, group, it) rep.queues.(w);
  pump t rep w

(* --- dependency-aware parallel executor (Depaware / Optimistic) --------------- *)

let kv_deliver t ~learner (it : Paxos.Value.item) =
  let rep = t.replicas.(learner) in
  match it.app with
  | PKv { op; reads; writes } ->
      let ex = match rep.exec with Some e -> e | None -> assert false in
      let r =
        Executor.submit ex ~now:(Simnet.now t.net) ~uid:it.uid ~reads ~writes op
      in
      rep.exec_count <- rep.exec_count + 1;
      if r.Executor.r_rollbacks > 0 then begin
        Smr.Metrics.note_rollbacks t.metrics r.Executor.r_rollbacks;
        Smr.Metrics.note_conflicts t.metrics r.Executor.r_rollbacks
      end;
      respond t rep ~learner ~uid:it.uid ~at:r.Executor.r_commit
  | _ -> ()

(* --- single-stream approaches -------------------------------------------------- *)

let sdpe_deliver t ~learner (it : Paxos.Value.item) =
  let rep = t.replicas.(learner) in
  let now = Simnet.now t.net in
  (* Scheduler thread parses the command and tracks conflicts. *)
  rep.sched_free <- Stdlib.max now rep.sched_free +. t.cfg.sched_cost;
  let dispatched = rep.sched_free in
  (match it.app with
  | PCmd { obj; dependent } ->
      let fin =
        if dependent then begin
          (* Conflicts with everything: wait for all workers. *)
          let start = Array.fold_left Stdlib.max dispatched rep.workers in
          let fin = start +. t.cfg.exec_cost in
          Array.iteri (fun i _ -> rep.workers.(i) <- fin) rep.workers;
          rep.barrier_count <- rep.barrier_count + 1;
          fin
        end
        else begin
          let w = obj mod t.cfg.n_workers in
          let after_obj =
            Stdlib.max dispatched
              (Option.value ~default:0.0 (Hashtbl.find_opt rep.obj_last obj))
          in
          let start = Stdlib.max after_obj rep.workers.(w) in
          let fin = start +. t.cfg.exec_cost in
          rep.workers.(w) <- fin;
          Hashtbl.replace rep.obj_last obj fin;
          fin
        end
      in
      Sim.Stats.Busy.add ~at:(fin -. t.cfg.exec_cost) rep.busy t.cfg.exec_cost;
      rep.exec_count <- rep.exec_count + 1;
      respond t rep ~learner ~uid:it.uid ~at:fin
  | _ -> ())

let serial_deliver t ~learner (it : Paxos.Value.item) =
  (* Sequential and pipelined SMR: one executor thread. *)
  let rep = t.replicas.(learner) in
  let now = Simnet.now t.net in
  let start = Stdlib.max now rep.workers.(0) in
  let fin = start +. t.cfg.exec_cost in
  rep.workers.(0) <- fin;
  Sim.Stats.Busy.add ~at:start rep.busy t.cfg.exec_cost;
  rep.exec_count <- rep.exec_count + 1;
  respond t rep ~learner ~uid:it.Paxos.Value.uid ~at:fin

let sequential_deliver t ~learner (it : Paxos.Value.item) =
  (* Sequential SMR executes on the same thread that handles delivery: the
     service time also occupies the replica's process CPU. *)
  let rep = t.replicas.(learner) in
  let learner_proc = Multiring.learner_proc (the_mr t) learner in
  Simnet.charge_cpu t.net learner_proc t.cfg.exec_cost;
  serial_deliver t ~learner it;
  ignore rep

(* --- clients --------------------------------------------------------------------- *)

let group_of t cmd = if cmd.dependent then all_group t else cmd.obj mod t.cfg.n_workers

let rec submit_next t c =
  let group, size, payload =
    if uses_executor t.cfg.approach then begin
      let kv = t.kv_gen c.cl_idx in
      (0, kv.kv_size, PKv { op = kv.kv_op; reads = kv.kv_reads; writes = kv.kv_writes })
    end
    else begin
      let cmd = t.gen c.cl_idx in
      let group = match t.cfg.approach with Psmr -> group_of t cmd | _ -> 0 in
      (group, cmd.size, PCmd { obj = cmd.obj; dependent = cmd.dependent })
    end
  in
  let uid = Multiring.multicast (the_mr t) ~group ~proposer:c.cl_idx ~size payload in
  if uid < 0 then ignore (Simnet.after t.net 1.0e-3 (fun () -> submit_next t c))
  else begin
    c.cl_uid <- uid;
    c.cl_born <- Simnet.now t.net
  end

(* Default key-set mapping when no [kv_gen] is given: an independent
   command is a read-modify-write of the single key its object names; a
   dependent command declares the whole key space. *)
let kv_of_command cmd =
  if cmd.dependent then
    { kv_op = Smr.Btree_service.Batch [];
      kv_reads = Btree.Keyset.full;
      kv_writes = Btree.Keyset.full;
      kv_size = cmd.size }
  else
    { kv_op = Smr.Btree_service.Insert { key = cmd.obj + 1; value = cmd.obj };
      kv_reads = Btree.Keyset.singleton (cmd.obj + 1);
      kv_writes = Btree.Keyset.singleton (cmd.obj + 1);
      kv_size = cmd.size }

let create ?kv_gen net cfg ~n_clients ~gen =
  let metrics = Smr.Metrics.create (Simnet.engine net) in
  let replicas =
    Array.init cfg.n_replicas (fun r ->
        { rep_idx = r;
          workers = Array.make (Stdlib.max 1 cfg.n_workers) 0.0;
          busy = Sim.Stats.Busy.create ();
          queues = Array.init (Stdlib.max 1 cfg.n_workers) (fun _ -> Queue.create ());
          barriers = Hashtbl.create 256;
          obj_last = Hashtbl.create 1024;
          sched_free = 0.0;
          exec_count = 0;
          barrier_count = 0;
          exec = None;
          kv = None })
  in
  let clients =
    Array.init n_clients (fun i -> { cl_idx = i; cl_uid = -1; cl_born = 0.0 })
  in
  let kv_gen =
    match kv_gen with Some f -> f | None -> fun i -> kv_of_command (gen i)
  in
  let t =
    { net; cfg; mring = None; replicas; clients; gen; kv_gen; metrics;
      ol_inflight = Hashtbl.create 4096; ol_drops = 0; ol_issued = 0;
      ol_rr = 0 }
  in
  let n_rings, n_learners, subs, nodes =
    match cfg.approach with
    | Psmr ->
        let nodes =
          Array.init (cfg.n_replicas * cfg.n_workers) (fun l ->
              l / cfg.n_workers)
        in
        let machines =
          Array.init cfg.n_replicas (fun r -> Simnet.add_node net (Printf.sprintf "psmr-rep%d" r))
        in
        ( cfg.n_workers + 1,
          cfg.n_replicas * cfg.n_workers,
          (fun l -> [ l mod cfg.n_workers; cfg.n_workers ]),
          Some (Array.map (fun r -> machines.(r)) nodes) )
    | _ -> (1, cfg.n_replicas, (fun _ -> [ 0 ]), None)
  in
  let mcfg =
    { Multiring.ring = cfg.ring;
      n_rings;
      n_groups = 0;
      lambda = cfg.lambda;
      delta = cfg.delta;
      m = cfg.merge_m;
      buffer_items = 500_000 }
  in
  let deliver ~learner ~group it =
    match cfg.approach with
    | Psmr -> psmr_deliver t ~learner ~group it
    | Depaware | Optimistic -> kv_deliver t ~learner it
    | Sdpe -> sdpe_deliver t ~learner it
    | Pipelined -> serial_deliver t ~learner it
    | Sequential -> sequential_deliver t ~learner it
  in
  let mr =
    Multiring.create ?learner_nodes:nodes net mcfg ~n_learners ~subs
      ~proposers_per_ring:n_clients ~deliver
  in
  t.mring <- Some mr;
  if uses_executor cfg.approach then begin
    let mode =
      match cfg.approach with
      | Optimistic -> Executor.Optimistic
      | _ -> Executor.Pessimistic
    in
    Array.iter
      (fun rep ->
        (* Every replica holds its own btree, populated from the same seed
           so the replicated state starts identical. *)
        let svc =
          Smr.Btree_service.create ~initial_keys:cfg.initial_keys
            ~key_range:cfg.key_range ~seed:1 ()
        in
        rep.kv <- Some svc;
        rep.exec <-
          Some
            (Executor.create
               ?tracer:(Simnet.tracer net)
               ~pid:(Simnet.pid (Multiring.learner_proc mr rep.rep_idx))
               ~mode ~n_workers:cfg.n_workers svc.Smr.Btree_service.service))
      replicas
  end;
  (* Client response handling on the ring-0 proposer processes. *)
  Array.iter
    (fun c ->
      let p = Multiring.proposer_proc mr ~group:0 ~proposer:c.cl_idx in
      let prev = Simnet.handler_of p in
      Simnet.set_handler p (fun m ->
          match m.payload with
          | PResp { uid } when uid = c.cl_uid ->
              Smr.Metrics.command t.metrics ~born:c.cl_born ~bytes:m.size;
              submit_next t c
          | PResp { uid } when Hashtbl.mem t.ol_inflight uid ->
              (* Open-loop commands: latency measured from generation. *)
              let born = Hashtbl.find t.ol_inflight uid in
              Hashtbl.remove t.ol_inflight uid;
              Smr.Metrics.command t.metrics ~born ~bytes:m.size
          | _ -> prev m))
    clients;
  t

let start t =
  Array.iter
    (fun c ->
      ignore
        (Simnet.after t.net (0.001 +. (1.0e-5 *. float_of_int c.cl_idx)) (fun () ->
             submit_next t c)))
    t.clients

(* Open-loop driving: arrivals come from the workload generator (which
   stands in for an unbounded client population), paced by its rate curve;
   nothing waits for responses.  Commands are multicast round-robin across
   the client proposers; a proposer whose window is full drops the arrival
   (counted in [open_drops]) — the overload signal of an open loop. *)
let start_open t wl ~until =
  let n = Array.length t.clients in
  if n = 0 then invalid_arg "Psmr.start_open: no client proposers";
  let engine = Simnet.engine t.net in
  let rec arm () =
    (* Peek, don't consume: the first arrival past the horizon stays in the
       generator, so [Open_loop.generated] counts exactly the commands this
       driver issued or dropped — not a discarded lookahead. *)
    let a = Smr.Workload.Open_loop.peek wl in
    if a.Smr.Workload.Open_loop.at <= until then begin
      ignore (Smr.Workload.Open_loop.next wl);
      ignore
        (Sim.Engine.at engine ~time:a.at (fun () ->
             let c = t.clients.(t.ol_rr mod n) in
             t.ol_rr <- t.ol_rr + 1;
             let uid =
               Multiring.multicast (the_mr t) ~group:0 ~proposer:c.cl_idx
                 ~size:a.size
                 (PKv { op = a.op; reads = a.reads; writes = a.writes })
             in
             (* A full proposer window drops the arrival: overload shows up
                in [open_drops], never in the latency meters (no inflight
                entry, so no response is ever matched) nor the issued-ops
                denominator ([open_issued] counts successes only). *)
             if uid < 0 then t.ol_drops <- t.ol_drops + 1
             else begin
               t.ol_issued <- t.ol_issued + 1;
               Hashtbl.replace t.ol_inflight uid (Simnet.now t.net)
             end;
             arm ()))
    end
  in
  arm ()

let open_drops t = t.ol_drops
let open_issued t = t.ol_issued

let metrics t = t.metrics

(* --- per-replica and aggregated counters ----------------------------------------
   These used to read only replica 0, silently reporting one replica's
   counters as the system's on multi-replica runs. *)

let barriers_at t r = t.replicas.(r).barrier_count
let executed_at t r = t.replicas.(r).exec_count

let barriers t =
  Array.fold_left (fun acc r -> acc + r.barrier_count) 0 t.replicas

let executed t = Array.fold_left (fun acc r -> acc + r.exec_count) 0 t.replicas

let worker_utilization_at t r ~from ~till =
  let rep = t.replicas.(r) in
  match rep.exec with
  | Some e -> Executor.utilization e ~from ~till
  | None ->
      Sim.Stats.Busy.utilization rep.busy ~from ~till
      /. float_of_int (Stdlib.max 1 t.cfg.n_workers)

let worker_utilization t ~from ~till =
  let sum = ref 0.0 in
  Array.iter
    (fun r -> sum := !sum +. worker_utilization_at t r.rep_idx ~from ~till)
    t.replicas;
  !sum /. float_of_int (Stdlib.max 1 t.cfg.n_replicas)

let rollbacks t =
  Array.fold_left
    (fun acc r -> match r.exec with Some e -> acc + Executor.rollbacks e | None -> acc)
    0 t.replicas

let conflicts t =
  Array.fold_left
    (fun acc r -> match r.exec with Some e -> acc + Executor.conflicts e | None -> acc)
    0 t.replicas

let conflict_rate t =
  let ex = executed t in
  if ex = 0 then 0.0 else float_of_int (conflicts t) /. float_of_int ex

let state_fingerprint_at t r =
  match t.replicas.(r).kv with
  | Some svc -> Smr.Btree_service.fingerprint svc
  | None -> 0

let table_6_1 =
  [ ("Sequential SMR", "total order", "sequential", "none");
    ("Pipelined SMR", "total order", "sequential", "staged agreement");
    ("SDPE (CBASE)", "total order", "parallel", "replica-side scheduler");
    ("Execute-Verify (Eve)", "optimistic", "parallel", "verify + rollback");
    ("PDPE / P-SMR", "partial order (multicast)", "parallel", "client-side mapping") ]

let render_table_6_1 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-22s %-27s %-12s %s\n" "Approach" "Ordering" "Execution"
       "Parallelisation mechanism");
  List.iter
    (fun (a, o, e, m) ->
      Buffer.add_string buf (Printf.sprintf "%-22s %-27s %-12s %s\n" a o e m))
    table_6_1;
  Buffer.contents buf

(* --- white-box testing hooks ------------------------------------------------------ *)

module Testing = struct
  let enqueue t ~replica ~worker ~group ~uid =
    let rep = t.replicas.(replica) in
    let it =
      { Paxos.Value.uid; isize = 0; app = Simnet.Noop; born = Simnet.now t.net }
    in
    Queue.push (Simnet.now t.net, group, it) rep.queues.(worker)

  let pump t ~replica ~worker = pump t t.replicas.(replica) worker

  let join t ~replica ~worker ~uid =
    let rep = t.replicas.(replica) in
    let b = barrier_of t rep uid in
    if not b.b_joined.(worker) then begin
      b.b_joined.(worker) <- true;
      b.b_arrived <- b.b_arrived + 1;
      b.b_ready <- Stdlib.max b.b_ready rep.workers.(worker);
      if b.b_arrived = t.cfg.n_workers then complete_barrier t rep ~uid b
    end

  let queue_length t ~replica ~worker =
    Queue.length t.replicas.(replica).queues.(worker)

  (* The response-routing decode used by [respond]: which client index a
     response for [uid] goes to, and which replica sends it. *)
  let responder_client _t ~uid = Paxos.Value.uid_origin uid - 1
  let responder_replica t ~uid = responder_replica t uid
end
