type approach = Sequential | Pipelined | Sdpe | Psmr

type command = {
  obj : int;
  dependent : bool;
  size : int;
}

type config = {
  approach : approach;
  n_workers : int;
  n_replicas : int;
  ring : Ringpaxos.Mring.config;
  lambda : float;
  delta : float;
  merge_m : int;
  exec_cost : float;
  sched_cost : float;
}

let default_config =
  { approach = Psmr;
    n_workers = 4;
    n_replicas = 2;
    ring = Ringpaxos.Mring.default_config;
    lambda = 50_000.0;
    delta = 1.0e-3;
    merge_m = 8;
    exec_cost = 8.0e-6;
    sched_cost = 2.0e-6 }

type Simnet.payload +=
  | PCmd of { obj : int; dependent : bool }
  | PResp of { uid : int }

type barrier = {
  mutable b_arrived : int;
  mutable b_ready : float;
  b_joined : bool array;
}

type replica = {
  rep_idx : int;
  workers : float array;  (* per-worker-thread next-free time *)
  busy : Sim.Stats.Busy.t;
  queues : (float * int * Paxos.Value.item) Queue.t array;  (* per worker *)
  barriers : (int, barrier) Hashtbl.t;  (* uid -> barrier *)
  obj_last : (int, float) Hashtbl.t;  (* SDPE conflict tracking *)
  mutable sched_free : float;
  mutable exec_count : int;
  mutable barrier_count : int;
}

type client = {
  cl_idx : int;
  mutable cl_uid : int;
  mutable cl_born : float;
}

type t = {
  net : Simnet.t;
  cfg : config;
  mutable mring : Multiring.t option;
  replicas : replica array;
  clients : client array;
  gen : int -> command;
  metrics : Smr.Metrics.t;
}

let the_mr t = match t.mring with Some m -> m | None -> assert false

let all_group t = t.cfg.n_workers (* group id subscribed by every worker *)

let responder_replica t uid = (uid lsr 8) mod t.cfg.n_replicas

let respond t rep ~learner ~uid ~at =
  if responder_replica t uid = rep.rep_idx then begin
    (* Ring-proposer 0 is the skip controller, so application client c is
       ring proposer c+1. *)
    let client = (uid land 0xff) - 1 in
    if client >= 0 && client < Array.length t.clients then
      ignore
        (Sim.Engine.at (Simnet.engine t.net) ~time:at (fun () ->
             Simnet.send t.net
               ~src:(Multiring.learner_proc (the_mr t) learner)
               ~dst:(Multiring.proposer_proc (the_mr t) ~group:0 ~proposer:client)
               ~size:64 (PResp { uid })))
  end

(* --- P-SMR worker pump -------------------------------------------------------- *)

let barrier_of t rep uid =
  match Hashtbl.find_opt rep.barriers uid with
  | Some b -> b
  | None ->
      let b =
        { b_arrived = 0; b_ready = 0.0; b_joined = Array.make t.cfg.n_workers false }
      in
      Hashtbl.add rep.barriers uid b;
      b

let rec pump t rep w =
  match Queue.peek_opt rep.queues.(w) with
  | None -> ()
  | Some (arrived, group, it) ->
      if group < t.cfg.n_workers then begin
        (* Independent command: this worker alone executes it. *)
        ignore (Queue.pop rep.queues.(w));
        let start = Stdlib.max arrived rep.workers.(w) in
        let fin = start +. t.cfg.exec_cost in
        rep.workers.(w) <- fin;
        Sim.Stats.Busy.add ~at:start rep.busy t.cfg.exec_cost;
        rep.exec_count <- rep.exec_count + 1;
        respond t rep ~learner:((rep.rep_idx * t.cfg.n_workers) + w)
          ~uid:it.Paxos.Value.uid ~at:fin;
        pump t rep w
      end
      else begin
        (* Dependent command: all workers synchronise on a barrier; the
           lowest-numbered worker executes (§6.3.3). *)
        let b = barrier_of t rep it.Paxos.Value.uid in
        if not b.b_joined.(w) then begin
          b.b_joined.(w) <- true;
          b.b_arrived <- b.b_arrived + 1;
          b.b_ready <- Stdlib.max b.b_ready (Stdlib.max arrived rep.workers.(w));
          if b.b_arrived = t.cfg.n_workers then begin
            let fin = b.b_ready +. t.cfg.exec_cost in
            for i = 0 to t.cfg.n_workers - 1 do
              (match Queue.peek_opt rep.queues.(i) with
              | Some (_, g, it') when g = all_group t && it'.Paxos.Value.uid = it.uid ->
                  ignore (Queue.pop rep.queues.(i))
              | _ -> assert false);
              rep.workers.(i) <- fin
            done;
            Sim.Stats.Busy.add ~at:b.b_ready rep.busy t.cfg.exec_cost;
            rep.exec_count <- rep.exec_count + 1;
            rep.barrier_count <- rep.barrier_count + 1;
            Hashtbl.remove rep.barriers it.uid;
            respond t rep ~learner:(rep.rep_idx * t.cfg.n_workers) ~uid:it.uid ~at:fin;
            for i = 0 to t.cfg.n_workers - 1 do
              pump t rep i
            done
          end
        end
      end

let psmr_deliver t ~learner ~group it =
  let rep = t.replicas.(learner / t.cfg.n_workers) in
  let w = learner mod t.cfg.n_workers in
  Queue.push (Simnet.now t.net, group, it) rep.queues.(w);
  pump t rep w

(* --- single-stream approaches -------------------------------------------------- *)

let sdpe_deliver t ~learner (it : Paxos.Value.item) =
  let rep = t.replicas.(learner) in
  let now = Simnet.now t.net in
  (* Scheduler thread parses the command and tracks conflicts. *)
  rep.sched_free <- Stdlib.max now rep.sched_free +. t.cfg.sched_cost;
  let dispatched = rep.sched_free in
  (match it.app with
  | PCmd { obj; dependent } ->
      let fin =
        if dependent then begin
          (* Conflicts with everything: wait for all workers. *)
          let start = Array.fold_left Stdlib.max dispatched rep.workers in
          let fin = start +. t.cfg.exec_cost in
          Array.iteri (fun i _ -> rep.workers.(i) <- fin) rep.workers;
          rep.barrier_count <- rep.barrier_count + 1;
          fin
        end
        else begin
          let w = obj mod t.cfg.n_workers in
          let after_obj =
            Stdlib.max dispatched
              (Option.value ~default:0.0 (Hashtbl.find_opt rep.obj_last obj))
          in
          let start = Stdlib.max after_obj rep.workers.(w) in
          let fin = start +. t.cfg.exec_cost in
          rep.workers.(w) <- fin;
          Hashtbl.replace rep.obj_last obj fin;
          fin
        end
      in
      Sim.Stats.Busy.add ~at:(fin -. t.cfg.exec_cost) rep.busy t.cfg.exec_cost;
      rep.exec_count <- rep.exec_count + 1;
      respond t rep ~learner ~uid:it.uid ~at:fin
  | _ -> ())

let serial_deliver t ~learner (it : Paxos.Value.item) =
  (* Sequential and pipelined SMR: one executor thread. *)
  let rep = t.replicas.(learner) in
  let now = Simnet.now t.net in
  let start = Stdlib.max now rep.workers.(0) in
  let fin = start +. t.cfg.exec_cost in
  rep.workers.(0) <- fin;
  Sim.Stats.Busy.add ~at:start rep.busy t.cfg.exec_cost;
  rep.exec_count <- rep.exec_count + 1;
  respond t rep ~learner ~uid:it.Paxos.Value.uid ~at:fin

let sequential_deliver t ~learner (it : Paxos.Value.item) =
  (* Sequential SMR executes on the same thread that handles delivery: the
     service time also occupies the replica's process CPU. *)
  let rep = t.replicas.(learner) in
  let learner_proc = Multiring.learner_proc (the_mr t) learner in
  Simnet.charge_cpu t.net learner_proc t.cfg.exec_cost;
  serial_deliver t ~learner it;
  ignore rep

(* --- clients --------------------------------------------------------------------- *)

let group_of t cmd = if cmd.dependent then all_group t else cmd.obj mod t.cfg.n_workers

let rec submit_next t c =
  let cmd = t.gen c.cl_idx in
  let group = match t.cfg.approach with Psmr -> group_of t cmd | _ -> 0 in
  let uid =
    Multiring.multicast (the_mr t) ~group ~proposer:c.cl_idx ~size:cmd.size
      (PCmd { obj = cmd.obj; dependent = cmd.dependent })
  in
  if uid < 0 then ignore (Simnet.after t.net 1.0e-3 (fun () -> submit_next t c))
  else begin
    c.cl_uid <- uid;
    c.cl_born <- Simnet.now t.net
  end

let create net cfg ~n_clients ~gen =
  let metrics = Smr.Metrics.create (Simnet.engine net) in
  let replicas =
    Array.init cfg.n_replicas (fun r ->
        { rep_idx = r;
          workers = Array.make (Stdlib.max 1 cfg.n_workers) 0.0;
          busy = Sim.Stats.Busy.create ();
          queues = Array.init (Stdlib.max 1 cfg.n_workers) (fun _ -> Queue.create ());
          barriers = Hashtbl.create 256;
          obj_last = Hashtbl.create 1024;
          sched_free = 0.0;
          exec_count = 0;
          barrier_count = 0 })
  in
  let clients =
    Array.init n_clients (fun i -> { cl_idx = i; cl_uid = -1; cl_born = 0.0 })
  in
  let t = { net; cfg; mring = None; replicas; clients; gen; metrics } in
  let n_rings, n_learners, subs, nodes =
    match cfg.approach with
    | Psmr ->
        let nodes =
          Array.init (cfg.n_replicas * cfg.n_workers) (fun l ->
              l / cfg.n_workers)
        in
        let machines =
          Array.init cfg.n_replicas (fun r -> Simnet.add_node net (Printf.sprintf "psmr-rep%d" r))
        in
        ( cfg.n_workers + 1,
          cfg.n_replicas * cfg.n_workers,
          (fun l -> [ l mod cfg.n_workers; cfg.n_workers ]),
          Some (Array.map (fun r -> machines.(r)) nodes) )
    | _ -> (1, cfg.n_replicas, (fun _ -> [ 0 ]), None)
  in
  let mcfg =
    { Multiring.ring = cfg.ring;
      n_rings;
      n_groups = 0;
      lambda = cfg.lambda;
      delta = cfg.delta;
      m = cfg.merge_m;
      buffer_items = 500_000 }
  in
  let deliver ~learner ~group it =
    match cfg.approach with
    | Psmr -> psmr_deliver t ~learner ~group it
    | Sdpe -> sdpe_deliver t ~learner it
    | Pipelined -> serial_deliver t ~learner it
    | Sequential -> sequential_deliver t ~learner it
  in
  let mr =
    Multiring.create ?learner_nodes:nodes net mcfg ~n_learners ~subs
      ~proposers_per_ring:n_clients ~deliver
  in
  t.mring <- Some mr;
  (* Client response handling on the ring-0 proposer processes. *)
  Array.iter
    (fun c ->
      let p = Multiring.proposer_proc mr ~group:0 ~proposer:c.cl_idx in
      let prev = Simnet.handler_of p in
      Simnet.set_handler p (fun m ->
          match m.payload with
          | PResp { uid } when uid = c.cl_uid ->
              Smr.Metrics.command t.metrics ~born:c.cl_born ~bytes:m.size;
              submit_next t c
          | _ -> prev m))
    clients;
  t

let start t =
  Array.iter
    (fun c ->
      ignore
        (Simnet.after t.net (0.001 +. (1.0e-5 *. float_of_int c.cl_idx)) (fun () ->
             submit_next t c)))
    t.clients

let metrics t = t.metrics
let barriers t = t.replicas.(0).barrier_count
let executed t = t.replicas.(0).exec_count

let worker_utilization t ~from ~till =
  let r = t.replicas.(0) in
  Sim.Stats.Busy.utilization r.busy ~from ~till
  /. float_of_int (Stdlib.max 1 t.cfg.n_workers)

let table_6_1 =
  [ ("Sequential SMR", "total order", "sequential", "none");
    ("Pipelined SMR", "total order", "sequential", "staged agreement");
    ("SDPE (CBASE)", "total order", "parallel", "replica-side scheduler");
    ("Execute-Verify (Eve)", "optimistic", "parallel", "verify + rollback");
    ("PDPE / P-SMR", "partial order (multicast)", "parallel", "client-side mapping") ]

let render_table_6_1 () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-22s %-27s %-12s %s\n" "Approach" "Ordering" "Execution"
       "Parallelisation mechanism");
  List.iter
    (fun (a, o, e, m) ->
      Buffer.add_string buf (Printf.sprintf "%-22s %-27s %-12s %s\n" a o e m))
    table_6_1;
  Buffer.contents buf
