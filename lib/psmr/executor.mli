(** Dependency-aware parallel executor with optimistic conflict detection.

    Commands declare read/write key-sets ({!Btree.Keyset}) over the
    replicated btree service; a dependency tracker dispatches each command
    to one of N simulated worker threads as soon as its conflicting
    predecessors finish ([Pessimistic], after arXiv 1311.6183), or
    speculatively with read-write conflict detection and rollback at
    commit ([Optimistic], after arXiv 1404.6721).

    Submissions must arrive in log (decided) order with monotone [now];
    state is applied to the service in that order, so replicas running the
    same stream stay identical and the final state always equals the
    sequential reference.  Commits are in log order too.  Per-stage spans
    (queue / dispatch / execute / rollback / commit) feed the {!Trace}
    latency decomposition when a tracer is installed. *)

type mode = Pessimistic | Optimistic

type report = {
  r_ready : float;  (** dependencies settled (pessimistic) / submit time *)
  r_start : float;  (** first (speculative) execution start *)
  r_fin : float;  (** final execution finish, after any re-executions *)
  r_commit : float;  (** in-order commit time *)
  r_rollbacks : int;  (** re-executions this command needed *)
}

type t

(** [create ~mode ~n_workers service] — [tracer]/[pid] route the stage
    spans into a latency decomposition. *)
val create :
  ?tracer:Trace.t -> ?pid:int -> mode:mode -> n_workers:int -> Smr.Service.t -> t

(** [submit t ~now ~uid ~reads ~writes op] schedules, executes and commits
    one decided command.  [now] must be monotone across calls (an earlier
    value is clamped to the latest seen). *)
val submit :
  t ->
  now:float ->
  uid:int ->
  reads:Btree.Keyset.t ->
  writes:Btree.Keyset.t ->
  Simnet.payload ->
  report

val executed : t -> int

(** Commands that were rolled back and re-executed (counted once per
    re-execution). *)
val rollbacks : t -> int

(** Read-write conflicts detected at commit. *)
val conflicts : t -> int

(** [conflicts / executed]. *)
val conflict_rate : t -> float

(** Commit time of the latest committed command. *)
val last_commit : t -> float

val n_workers : t -> int

(** Commands the dependency tracker still holds as potentially in flight. *)
val inflight : t -> int

(** Mean worker utilisation over a window, percent. *)
val utilization : t -> from:float -> till:float -> float
