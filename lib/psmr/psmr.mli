(** Parallel State-Machine Replication — Chapter 6.

    Six execution models over the same client interface (Fig. 6.1):

    - [Sequential]: classic SMR; ordering and execution share the replica's
      single thread.
    - [Pipelined]: multithreaded replica stages, still sequential
      execution on a dedicated executor thread.
    - [Sdpe] (sequential delivery, parallel execution — CBASE-like): one
      totally ordered stream; a scheduler thread dispatches commands to
      worker threads, tracking conflicts; the scheduler's per-command cost
      eventually bottlenecks.
    - [Psmr]: Parallel SMR proper (§6.3): one Multi-Ring Paxos group per
      worker plus a group subscribed by all workers; client proxies map
      independent commands to a single worker's group and dependent
      commands to the all-workers group, where execution synchronises on a
      barrier — no replica-side scheduler at all.
    - [Depaware]: a single totally ordered stream of commands carrying
      read/write key-sets over the replicated btree; a dependency tracker
      ({!Executor}, after arXiv 1311.6183) dispatches each command as soon
      as its conflicting predecessors finish — no all-workers barrier for
      multi-key commands.
    - [Optimistic]: same stream, but commands execute speculatively and
      are validated at commit; read-write conflicts roll the command back
      and re-execute it (arXiv 1404.6721).

    For [Sequential]/[Pipelined]/[Sdpe]/[Psmr], commands name an abstract
    object; two commands conflict when they touch the same object and at
    least one writes ([dependent] marks commands that conflict with
    everything).  For [Depaware]/[Optimistic], commands are btree
    operations with declared {!Btree.Keyset} footprints ({!kv_command}). *)

(** The dependency-aware parallel executor itself, usable standalone. *)
module Executor = Executor

type approach = Sequential | Pipelined | Sdpe | Psmr | Depaware | Optimistic

type command = {
  obj : int;  (** object the command accesses *)
  dependent : bool;  (** conflicts with every other command *)
  size : int;
}

(** A btree command with its declared conflict footprint, for the
    [Depaware]/[Optimistic] executor approaches. *)
type kv_command = {
  kv_op : Simnet.payload;  (** a {!Smr.Btree_service} operation *)
  kv_reads : Btree.Keyset.t;
  kv_writes : Btree.Keyset.t;
  kv_size : int;
}

type config = {
  approach : approach;
  n_workers : int;  (** worker threads per replica *)
  n_replicas : int;
  ring : Ringpaxos.Mring.config;
  lambda : float;
  delta : float;
  merge_m : int;
  exec_cost : float;  (** service time per command, seconds *)
  sched_cost : float;  (** SDPE scheduler cost per command, seconds *)
  initial_keys : int;  (** btree preload for executor approaches *)
  key_range : int;  (** btree key space for executor approaches *)
}

val default_config : config

type t

(** [create net cfg ~n_clients ~gen] builds the system.  [kv_gen]
    generates commands for the executor approaches; when absent one is
    derived from [gen] (independent commands become single-key
    read-modify-writes, dependent commands declare the full key space). *)
val create :
  ?kv_gen:(int -> kv_command) ->
  Simnet.t ->
  config ->
  n_clients:int ->
  gen:(int -> command) ->
  t

(** Start the closed-loop clients (each resubmits on response). *)
val start : t -> unit

(** [start_open t wl ~until] drives the system from an open-loop workload
    generator instead of closed-loop clients: arrivals are multicast
    round-robin over the client proposers as they are generated, without
    waiting for responses, until the virtual time bound.  Executor
    approaches only (arrivals are {!kv_command}s). *)
val start_open : t -> Smr.Workload.Open_loop.t -> until:float -> unit

(** Open-loop arrivals dropped because the proposer's window was full.
    Drops never enter the latency meters or the issued-ops denominator:
    [Workload.Open_loop.generated wl = open_issued t + open_drops t] holds
    once the drive completes. *)
val open_drops : t -> int

(** Open-loop arrivals accepted by a proposer (issued into the ring). *)
val open_issued : t -> int

val metrics : t -> Smr.Metrics.t

(** Barriers executed (dependent commands), summed across replicas. *)
val barriers : t -> int

(** Commands executed, summed across replicas and workers. *)
val executed : t -> int

(** Mean worker-thread utilisation across replicas over a window,
    percent. *)
val worker_utilization : t -> from:float -> till:float -> float

(** Per-replica variants of the aggregated counters above. *)

val barriers_at : t -> int -> int
val executed_at : t -> int -> int
val worker_utilization_at : t -> int -> from:float -> till:float -> float

(** Executor-approach counters, summed across replicas (zero otherwise). *)

val rollbacks : t -> int
val conflicts : t -> int

(** [conflicts / executed]. *)
val conflict_rate : t -> float

(** Fingerprint of a replica's btree state (executor approaches; 0
    otherwise).  Replicas executing the same stream must agree. *)
val state_fingerprint_at : t -> int -> int

(** The qualitative comparison of Table 6.1. *)
val table_6_1 : (string * string * string * string) list

val render_table_6_1 : unit -> string

(** White-box hooks for the barrier regression tests: construct worker
    queue states directly (bypassing delivery) and drive the pump/join
    logic on them.  Not for production use. *)
module Testing : sig
  (** Enqueue a synthetic item on one worker's queue without pumping.
      [group = n_workers] marks a dependent (all-workers) entry. *)
  val enqueue : t -> replica:int -> worker:int -> group:int -> uid:int -> unit

  (** Run the worker's pump loop (what delivery does after enqueueing). *)
  val pump : t -> replica:int -> worker:int -> unit

  (** Force a worker to join [uid]'s barrier regardless of its queue head,
      modelling a join that raced an interleaved independent delivery. *)
  val join : t -> replica:int -> worker:int -> uid:int -> unit

  val queue_length : t -> replica:int -> worker:int -> int

  (** The response-routing decode used internally: the client index a
      response for [uid] is sent to, and the replica that sends it.  The
      former must survive client indexes past 255 (the old 8-bit uid
      origin field wrapped). *)
  val responder_client : t -> uid:int -> int

  val responder_replica : t -> uid:int -> int
end
