type role = Acceptor | Proposer | Learner

type config = {
  f : int;
  window : int;
  batch_bytes : int;
  batch_timeout : float;
  durability : Mring.durability;
  buffer_bytes : int;
  hb_period : float;
  hb_timeout : float;
  resubmit_timeout : float;
}

let default_config =
  { f = 2;
    window = 64;
    batch_bytes = 32 * 1024;
    batch_timeout = 5.0e-4;
    durability = Mring.Memory;
    buffer_bytes = 80 * 1024 * 1024;
    hb_period = 0.02;
    hb_timeout = 0.25;
    resubmit_timeout = 0.5 }

let hdr = 64

type Simnet.payload +=
  | UForward of Paxos.Value.item
  | UP1a of { rnd : int; coord : int }
  | UP1b of {
      rnd : int;
      acc : int;
      next : int;  (* the acceptor's contiguous delivery floor *)
      votes : (int * int * Paxos.Value.t) list;
    }
  | UP2ab of { inst : int; rnd : int; value : Paxos.Value.t; votes : int }
  | UDecision of { inst : int; value : Paxos.Value.t; origin : int; with_value : bool }
  | UHb of { coord : int }
  | UNewRing of { ring : int list; coord : int }

type member = {
  m_proc : Simnet.proc;
  m_pos : int;
  m_roles : role list;
  m_acc_idx : int;  (* -1 when not an acceptor *)
  m_lrn_idx : int;
  m_prop_idx : int;
  m_disk : Storage.Disk.t option;
  (* acceptor state *)
  mutable a_rnd : int;
  a_votes : (int, int * Paxos.Value.t) Hashtbl.t;
  (* learner state: decisions pending in-order release *)
  l_od : Paxos.Value.t Protocol.Ordered_delivery.t;
  (* every decision this member has learned, by instance.  Because the
     pump releases instances contiguously, the log is complete below
     [Ordered_delivery.next l_od] — which is what lets a coordinator
     serve catch-up for members cut off behind a dead ring segment. *)
  m_log : (int, Paxos.Value.t) Hashtbl.t;
  (* value-dissemination bookkeeping: instances seen via Phase 2A/2B *)
  m_seen : (int, unit) Hashtbl.t;
  (* proposer state *)
  p_pending : (int, Paxos.Value.item) Protocol.Retry.tracker;
  mutable p_unacked_bytes : int;
  mutable p_buffer : int;
  (* coordinator state (used by whichever member currently leads) *)
  mutable c_rnd : int;
  mutable c_phase1_ok : bool;
  mutable c_p1b : int;
  c_claimed : (int, int * Paxos.Value.t) Hashtbl.t;
  mutable c_next_inst : int;
  mutable c_outstanding : int;
  c_batch : unit Protocol.Batcher.t;
  c_seen_uids : (int, unit) Hashtbl.t;
  c_preq : Paxos.Value.item Queue.t;
      (* proposals received before Phase 1 completed, replayed in arrival
         order once [c_seen_uids] has been seeded *)
  mutable c_reports : (int * int) list;
      (* (position, delivery floor) reported by Phase 1 replies; served
         with catch-up decisions once Phase 1 completes *)
}

type t = {
  net : Simnet.t;
  cfg : config;
  members : member array;
  mutable ring : int list;  (* alive positions, ring order, coordinator first *)
  mutable coord_pos : int;
  acc_positions : int array;  (* position of acceptor i *)
  deliver : learner:int -> inst:int -> Paxos.Value.t -> unit;
  mutable fd : Protocol.Failure_detector.t option;
  mutable next_uid : int;
  mutable next_vid : int;
  mutable decided : int;
}

let standard_positions ~n = Array.make n [ Proposer; Acceptor; Learner ]

let coord t = t.members.(t.coord_pos)

let trace t f = match Simnet.tracer t.net with Some tr -> f tr | None -> ()

let successor t pos =
  let rec after = function
    | a :: b :: rest -> if a = pos then Some b else after (b :: rest)
    | [ a ] -> if a = pos then List.nth_opt t.ring 0 else None
    | [] -> None
  in
  match after t.ring with
  | Some next when next <> pos -> Some t.members.(next)
  | _ -> None

let is_acceptor m = m.m_acc_idx >= 0
let is_learner m = m.m_lrn_idx >= 0

let send_succ t m ~size payload =
  match successor t m.m_pos with
  | Some next -> Simnet.send t.net ~src:m.m_proc ~dst:next.m_proc ~size payload
  | None -> ()

(* --- delivery ----------------------------------------------------------- *)

let advance_deliveries t m =
  Protocol.Ordered_delivery.pump m.l_od (fun inst v ->
      if is_learner m then t.deliver ~learner:m.m_lrn_idx ~inst v;
      (* A proposer acknowledges its own items when it sees them decided. *)
      List.iter
        (fun (it : Paxos.Value.item) ->
          match Protocol.Retry.ack m.p_pending it.uid with
          | Some _ -> m.p_unacked_bytes <- m.p_unacked_bytes - it.isize
          | None -> ())
        v.Paxos.Value.items;
      true)

let record_decision t m inst v =
  Hashtbl.replace m.m_log inst v;
  if Protocol.Ordered_delivery.offer m.l_od ~inst v then advance_deliveries t m

(* --- coordinator --------------------------------------------------------- *)

let propose_instance t c inst (v : Paxos.Value.t) =
  trace t (fun tr ->
      Trace.abegin tr ~pid:(Simnet.pid c.m_proc) ~cat:"ordering" ~name:"consensus" ~id:inst
        ~ts:(Simnet.now t.net));
  c.c_outstanding <- c.c_outstanding + 1;
  (* The coordinator is the first acceptor: it votes locally, durably if
     configured, then starts the combined Phase 2A/2B down the ring. *)
  Hashtbl.replace c.a_votes inst (c.c_rnd, v);
  Hashtbl.replace c.m_seen inst ();
  let forward () = send_succ t c ~size:(v.size + hdr) (UP2ab { inst; rnd = c.c_rnd; value = v; votes = 1 }) in
  match (t.cfg.durability, c.m_disk) with
  | Mring.Sync_disk, Some d -> Storage.Disk.write_sync d ~bytes:v.size forward
  | Mring.Async_disk, Some d ->
      Storage.Disk.write_async d ~bytes:v.size;
      forward ()
  | _ -> forward ()

let rec drain t c =
  if c.c_phase1_ok && c.m_pos = t.coord_pos && Simnet.is_alive c.m_proc then begin
    let claimed = Hashtbl.fold (fun i x acc -> (i, x) :: acc) c.c_claimed [] in
    Hashtbl.reset c.c_claimed;
    List.iter
      (fun (inst, (_, v)) ->
        if (not (Protocol.Ordered_delivery.has c.l_od inst))
           && inst >= Protocol.Ordered_delivery.next c.l_od
        then propose_instance t c inst v;
        if inst >= c.c_next_inst then c.c_next_inst <- inst + 1)
      (List.sort compare claimed);
    while c.c_outstanding < t.cfg.window && Protocol.Batcher.ready c.c_batch <> None do
      propose_batch t c
    done;
    Protocol.Batcher.arm_timeout c.c_batch t.net ~timeout:t.cfg.batch_timeout (fun () ->
        if c.m_pos = t.coord_pos && Simnet.is_alive c.m_proc && c.c_phase1_ok
           && c.c_outstanding < t.cfg.window
        then propose_batch t c;
        drain t c)
  end

and propose_batch t c =
  match Protocol.Batcher.seal c.c_batch () with
  | [] -> ()
  | items ->
      t.next_vid <- t.next_vid + 1;
      let v = Paxos.Value.make ~vid:t.next_vid items in
      let inst = c.c_next_inst in
      c.c_next_inst <- inst + 1;
      propose_instance t c inst v

let start_phase1 t c =
  c.c_rnd <- Stdlib.max c.c_rnd c.a_rnd + Array.length t.members + 1;
  c.a_rnd <- Stdlib.max c.a_rnd c.c_rnd;
  c.c_phase1_ok <- false;
  c.c_p1b <- 0;
  c.c_reports <- [];
  (* The coordinator's own votes count toward Phase 1 too.  Without them,
     a decided instance whose only voter in the Phase 1 quorum is the
     coordinator itself would be replayed from a stale lower-round claim
     — deciding a different value for the same instance. *)
  Hashtbl.iter
    (fun inst ((vrnd, vval) : int * Paxos.Value.t) ->
      match Hashtbl.find_opt c.c_claimed inst with
      | Some (r, _) when r >= vrnd -> ()
      | _ -> Hashtbl.replace c.c_claimed inst (vrnd, vval))
    c.a_votes;
  Array.iter
    (fun pos ->
      let a = t.members.(pos) in
      if a.m_pos <> c.m_pos && Simnet.is_alive a.m_proc then
        Simnet.send t.net ~src:c.m_proc ~dst:a.m_proc ~size:hdr
          (UP1a { rnd = c.c_rnd; coord = c.m_pos }))
    t.acc_positions

(* --- ring message handling ------------------------------------------------ *)

(* Rank of a position in the current ring (coordinator = 0). *)
let ring_rank t pos =
  let rec go i = function
    | [] -> -1
    | p :: rest -> if p = pos then i else go (i + 1) rest
  in
  go 0 t.ring

(* Bytes of [v] the process at ring rank [k] has not yet seen: an item
   proposed at rank [r] crossed every rank > [r] on its way to the
   coordinator, and ranks that processed the Phase 2A/2B saw the whole
   batch.  Forwarding only the unseen bytes makes each value cross each
   link exactly once, which is the source of U-Ring Paxos's efficiency. *)
let unseen_bytes t next inst (v : Paxos.Value.t) =
  if Hashtbl.mem next.m_seen inst then 0
  else begin
    let k = ring_rank t next.m_pos in
    List.fold_left
      (fun acc (it : Paxos.Value.item) ->
        let origin_rank = ring_rank t (Paxos.Value.uid_origin it.uid) in
        if origin_rank >= 0 && k > origin_rank then acc else acc + it.isize)
      0 v.items
  end

let forward_decision t m inst v origin =
  match successor t m.m_pos with
  | Some next when next.m_pos <> origin ->
      let payload_bytes = unseen_bytes t next inst v in
      Simnet.send t.net ~src:m.m_proc ~dst:next.m_proc ~size:(payload_bytes + hdr)
        (UDecision { inst; value = v; origin; with_value = payload_bytes > 0 })
  | _ -> ()

(* Re-send the decisions a Phase 1 reply revealed the sender is missing:
   a member downstream of a dead ring position loses the decisions that
   were in flight through it and, with the ring since rebuilt around the
   gap, would otherwise never learn them.  The coordinator's [m_log] is
   complete below its own delivery floor, so it can serve any instance in
   [from, floor). *)
let catchup t c ~pos ~from =
  let upto = Protocol.Ordered_delivery.next c.l_od in
  if pos <> c.m_pos && from < upto then begin
    let dst = t.members.(pos) in
    (* A catch-up decision is point-to-point: claim the receiver's
       successor as origin so [forward_decision] stops immediately. *)
    let origin =
      match successor t dst.m_pos with Some s -> s.m_pos | None -> dst.m_pos
    in
    for inst = from to upto - 1 do
      match Hashtbl.find_opt c.m_log inst with
      | Some v ->
          Simnet.send t.net ~src:c.m_proc ~dst:dst.m_proc ~size:(v.size + hdr)
            (UDecision { inst; value = v; origin; with_value = true })
      | None -> ()
    done
  end

let on_p2ab t m inst rnd (v : Paxos.Value.t) votes =
  Hashtbl.replace m.m_seen inst ();
  let continue votes =
    if votes >= t.cfg.f + 1 then begin
      (* This member closes the quorum: it is the "last acceptor". *)
      trace t (fun tr ->
          let now = Simnet.now t.net in
          (* The interval was opened on the proposing coordinator. *)
          Trace.aend tr ~pid:(Simnet.pid (coord t).m_proc) ~cat:"ordering" ~name:"consensus"
            ~id:inst ~ts:now;
          Trace.instant tr ~id:inst ~pid:(Simnet.pid m.m_proc) ~cat:"proto" ~name:"decision"
            ~ts:now);
      t.decided <- t.decided + 1;
      record_decision t m inst v;
      forward_decision t m inst v m.m_pos
    end
    else send_succ t m ~size:(v.size + hdr) (UP2ab { inst; rnd; value = v; votes })
  in
  if is_acceptor m && rnd >= m.a_rnd then begin
    m.a_rnd <- rnd;
    Hashtbl.replace m.a_votes inst (rnd, v);
    let votes = votes + 1 in
    match (t.cfg.durability, m.m_disk) with
    | Mring.Sync_disk, Some d -> Storage.Disk.write_sync d ~bytes:v.size (fun () -> continue votes)
    | Mring.Async_disk, Some d ->
        Storage.Disk.write_async d ~bytes:v.size;
        let lag = Storage.Disk.backlog d ~now:(Simnet.now t.net) -. 0.05 in
        if lag > 0.0 then ignore (Simnet.after t.net lag (fun () -> continue votes))
        else continue votes
    | _ -> continue votes
  end
  else continue votes

let on_decision t m inst (v : Paxos.Value.t) origin =
  record_decision t m inst v;
  if m.m_pos = t.coord_pos then begin
    m.c_outstanding <- Stdlib.max 0 (m.c_outstanding - 1);
    drain t m
  end;
  forward_decision t m inst v origin

(* --- failures -------------------------------------------------------------- *)

let rebuild_ring t new_coord_pos =
  let alive =
    Array.to_list t.members
    |> List.filter (fun m -> Simnet.is_alive m.m_proc)
    |> List.map (fun m -> m.m_pos)
  in
  (* Keep ring order, rotated so the coordinator is first. *)
  let rec rotate = function
    | [] -> []
    | x :: rest as l -> if x = new_coord_pos then l else rotate (rest @ [ x ])
  in
  t.ring <- rotate alive;
  t.coord_pos <- new_coord_pos;
  let c = t.members.(new_coord_pos) in
  (* A fresh coordinator must not reuse instances already delivered. *)
  c.c_next_inst <-
    Hashtbl.fold (fun i _ acc -> Stdlib.max (i + 1) acc) c.a_votes
      (Stdlib.max c.c_next_inst (Protocol.Ordered_delivery.next c.l_od));
  (* Instances that were in flight when the ring broke will be re-proposed
     from the Phase 1 claims and counted afresh; carrying their old count
     over would wedge the window shut (each replay decides only once but
     would have been counted twice). *)
  c.c_outstanding <- 0;
  List.iter
    (fun pos ->
      let m = t.members.(pos) in
      if pos <> new_coord_pos then
        Simnet.send t.net ~src:c.m_proc ~dst:m.m_proc ~size:hdr
          (UNewRing { ring = t.ring; coord = new_coord_pos }))
    t.ring;
  start_phase1 t c

(* While the coordinator lives it pings ring members (dead ones trigger a
   reconfiguration that bypasses them); once it dies, the first alive
   acceptor in ring order whose heartbeats went stale takes over. *)
let failure_detection t =
  let emit () =
    let c = coord t in
    let dead = List.filter (fun p -> not (Simnet.is_alive t.members.(p).m_proc)) t.ring in
    if dead <> [] then rebuild_ring t t.coord_pos
    else
      List.iter
        (fun p ->
          if p <> t.coord_pos then
            Simnet.send t.net ~src:c.m_proc ~dst:t.members.(p).m_proc ~size:hdr
              (UHb { coord = t.coord_pos }))
        t.ring
  in
  let on_suspect ~stale =
    let candidate =
      Array.to_list t.acc_positions
      |> List.filter (fun p -> Simnet.is_alive t.members.(p).m_proc && stale p)
      |> function
      | [] -> None
      | p :: _ -> Some p
    in
    match candidate with Some p -> rebuild_ring t p | None -> ()
  in
  t.fd <-
    Some
      (Protocol.Failure_detector.create t.net ~hb_period:t.cfg.hb_period
         ~hb_timeout:t.cfg.hb_timeout
         ~leader:(fun () -> Simnet.is_alive (coord t).m_proc)
         ~emit ~on_suspect)

let heard_from_coord t m =
  match t.fd with
  | Some fd -> Protocol.Failure_detector.heartbeat fd m.m_pos
  | None -> ()

let prop_resubmission t m =
  ignore
    (Protocol.Retry.every t.net ~name:"resubmit" ~period:t.cfg.resubmit_timeout (fun () ->
         if Simnet.is_alive m.m_proc && m.m_prop_idx >= 0 then
           Protocol.Retry.iter_due m.p_pending ~now:(Simnet.now t.net)
             ~older_than:t.cfg.resubmit_timeout
             (fun _uid (it : Paxos.Value.item) ->
               send_succ t m ~size:(it.isize + hdr) (UForward it))))

(* --- handler ----------------------------------------------------------------- *)

(* Admit a proposal into the coordinator's batch.  Must only run once
   Phase 1 has completed: before that the coordinator cannot know which
   items are already decided, and a proposer resubmission (a member whose
   delivery is lagging keeps retrying items that were in fact decided)
   would get the same item decided under a second instance. *)
let coord_admit c (item : Paxos.Value.item) =
  if not (Hashtbl.mem c.c_seen_uids item.uid) then
    if Protocol.Batcher.enqueue c.c_batch ~key:() item then begin
      Hashtbl.add c.c_seen_uids item.uid ();
      true
    end
    else false
  else false

let handler t m (msg : Simnet.msg) =
  match msg.payload with
  | UForward item ->
      if m.m_pos = t.coord_pos then begin
        if not m.c_phase1_ok then Queue.push item m.c_preq
        else if coord_admit m item then drain t m
      end
      else send_succ t m ~size:(item.isize + hdr) (UForward item)
  | UP1a { rnd; coord } ->
      if rnd > m.a_rnd then begin
        m.a_rnd <- rnd;
        let votes = Hashtbl.fold (fun i (vr, vv) l -> (i, vr, vv) :: l) m.a_votes [] in
        Simnet.send t.net ~src:m.m_proc ~dst:t.members.(coord).m_proc
          ~size:(hdr + (List.length votes * 24))
          (UP1b
             { rnd;
               acc = m.m_acc_idx;
               next = Protocol.Ordered_delivery.next m.l_od;
               votes })
      end
  | UP1b { rnd; acc; next; votes } ->
      if m.m_pos = t.coord_pos && rnd = m.c_rnd then begin
        let pos = t.acc_positions.(acc) in
        if m.c_phase1_ok then
          (* A straggler reply past quorum: no claims to merge (the round
             is settled), but its delivery floor may still reveal a gap
             worth serving. *)
          catchup t m ~pos ~from:next
        else begin
          List.iter
            (fun (inst, vrnd, vval) ->
              match Hashtbl.find_opt m.c_claimed inst with
              | Some (r, _) when r >= vrnd -> ()
              | _ -> Hashtbl.replace m.c_claimed inst (vrnd, vval))
            votes;
          m.c_reports <- (pos, next) :: m.c_reports;
          m.c_p1b <- m.c_p1b + 1;
          if m.c_p1b + 1 >= (Array.length t.acc_positions / 2) + 1 then begin
            m.c_phase1_ok <- true;
            (* Mark every item known decided or voted as seen, so proposer
               resubmissions of them are not re-decided under fresh
               instances: the log covers everything this member delivered,
               the claims (own votes included) everything the quorum
               voted.  Undecided claims are replayed by [drain], so
               suppressing their resubmission loses nothing. *)
            let see (v : Paxos.Value.t) =
              List.iter (fun it -> Hashtbl.replace m.c_seen_uids it.Paxos.Value.uid ()) v.items
            in
            Hashtbl.iter (fun _ v -> see v) m.m_log;
            Hashtbl.iter (fun _ ((_, v) : int * Paxos.Value.t) -> see v) m.c_claimed;
            (* Serve the delivery gaps the Phase 1 replies revealed. *)
            List.iter (fun (pos, from) -> catchup t m ~pos ~from) m.c_reports;
            m.c_reports <- [];
            (* Replay proposals buffered during Phase 1, in arrival order. *)
            while not (Queue.is_empty m.c_preq) do
              ignore (coord_admit m (Queue.pop m.c_preq))
            done;
            drain t m
          end
        end
      end
  | UP2ab { inst; rnd; value; votes } -> on_p2ab t m inst rnd value votes
  | UDecision { inst; value; origin; with_value = _ } -> on_decision t m inst value origin
  | UHb { coord = _ } -> heard_from_coord t m
  | UNewRing { ring; coord } ->
      t.ring <- ring;
      t.coord_pos <- coord;
      heard_from_coord t m
  | _ -> ()

(* --- construction --------------------------------------------------------------- *)

let create net cfg ~positions ~deliver =
  let n = Array.length positions in
  let n_accs = Array.fold_left (fun acc rs -> if List.mem Acceptor rs then acc + 1 else acc) 0 positions in
  if n_accs < (2 * cfg.f) + 1 then
    invalid_arg "Uring.create: needs at least 2f+1 acceptor positions";
  let acc_count = ref 0 and lrn_count = ref 0 and prop_count = ref 0 in
  let members =
    Array.init n (fun i ->
        let roles = positions.(i) in
        let node = Simnet.add_node net (Printf.sprintf "ur-%d" i) in
        let proc = Simnet.add_proc net node (Printf.sprintf "ur-%d" i) in
        let m_acc_idx =
          if List.mem Acceptor roles then begin
            let k = !acc_count in
            incr acc_count;
            k
          end
          else -1
        in
        let m_lrn_idx =
          if List.mem Learner roles then begin
            let k = !lrn_count in
            incr lrn_count;
            k
          end
          else -1
        in
        let m_prop_idx =
          if List.mem Proposer roles then begin
            let k = !prop_count in
            incr prop_count;
            k
          end
          else -1
        in
        let m_disk =
          if m_acc_idx >= 0 && cfg.durability <> Mring.Memory then
            Some (Storage.Disk.create (Simnet.engine net) (Printf.sprintf "ur-disk%d" i))
          else None
        in
        { m_proc = proc;
          m_pos = i;
          m_roles = roles;
          m_acc_idx;
          m_lrn_idx;
          m_prop_idx;
          m_disk;
          a_rnd = 0;
          a_votes = Hashtbl.create 4096;
          l_od = Protocol.Ordered_delivery.create ();
          m_log = Hashtbl.create 4096;
          m_seen = Hashtbl.create 4096;
          p_pending = Protocol.Retry.tracker ();
          p_unacked_bytes = 0;
          p_buffer = 2 * 1024 * 1024;
          c_rnd = 0;
          c_phase1_ok = false;
          c_p1b = 0;
          c_claimed = Hashtbl.create 64;
          c_next_inst = 0;
          c_outstanding = 0;
          c_batch =
            Protocol.Batcher.create ~buffer_bytes:cfg.buffer_bytes
              ~batch_bytes:cfg.batch_bytes ();
          c_seen_uids = Hashtbl.create 4096;
          c_preq = Queue.create ();
          c_reports = [] })
  in
  (* The coordinator is the first acceptor in ring order. *)
  let coord_pos =
    let rec find i = if members.(i).m_acc_idx = 0 then i else find (i + 1) in
    find 0
  in
  let acc_positions = Array.make n_accs 0 in
  Array.iter (fun m -> if m.m_acc_idx >= 0 then acc_positions.(m.m_acc_idx) <- m.m_pos) members;
  (* Ring order starts at the coordinator. *)
  let ring = List.init n (fun i -> (coord_pos + i) mod n) in
  let t =
    { net; cfg; members; ring; coord_pos; acc_positions; deliver;
      fd = None; next_uid = 0; next_vid = 0; decided = 0 }
  in
  Array.iter
    (fun m ->
      Simnet.set_handler m.m_proc (handler t m);
      if m.m_prop_idx >= 0 then prop_resubmission t m)
    members;
  failure_detection t;
  start_phase1 t members.(coord_pos);
  t

let submit t ~proposer ~size app =
  let m = Array.to_list t.members |> List.find (fun m -> m.m_prop_idx = proposer) in
  if m.p_unacked_bytes + size > m.p_buffer then -1
  else begin
    t.next_uid <- t.next_uid + 1;
    (* The uid encodes the originating ring position, so forwarding can
       tell which processes already saw an item on its way to the
       coordinator (the value crosses each link exactly once, §3.3.3). *)
    let uid = Paxos.Value.make_uid ~seq:t.next_uid ~origin:m.m_pos in
    let item = { Paxos.Value.uid; isize = size; app; born = Simnet.now t.net } in
    Protocol.Retry.watch m.p_pending ~now:(Simnet.now t.net) uid item;
    m.p_unacked_bytes <- m.p_unacked_bytes + size;
    if m.m_pos = t.coord_pos then begin
      if not m.c_phase1_ok then Queue.push item m.c_preq
      else if coord_admit m item then drain t m
    end
    else send_succ t m ~size:(size + hdr) (UForward item);
    uid
  end

let coordinator_proc t = (coord t).m_proc
let position_proc t i = t.members.(i).m_proc

let learner_proc t i =
  (Array.to_list t.members |> List.find (fun m -> m.m_lrn_idx = i)).m_proc

let proposer_proc t i =
  (Array.to_list t.members |> List.find (fun m -> m.m_prop_idx = i)).m_proc

let n_positions t = Array.length t.members

let kill_position t i = Simnet.kill t.net t.members.(i).m_proc
let kill_coordinator t = Simnet.kill t.net (coord t).m_proc

let decided t = t.decided

let disk t i =
  if i < Array.length t.acc_positions then t.members.(t.acc_positions.(i)).m_disk else None
