type durability = Memory | Sync_disk | Async_disk

type config = {
  f : int;
  window : int;
  batch_bytes : int;
  batch_timeout : float;
  durability : durability;
  buffer_bytes : int;
  fc_threshold : int;
  fc_recover_period : float;
  hb_period : float;
  hb_timeout : float;
  retrans_timeout : float;
  gc_period : float;
  partitions : int;
  send_rate : float;  (** coordinator pacing, bits/s of Phase 2A traffic *)
  reconfig_alpha : int;
      (** a membership change decided at instance [i] activates at
          [i + reconfig_alpha] (the paper's alpha parameter for
          log-ordered reconfiguration) *)
  proposer_buffer : int;
      (** per-proposer unacknowledged-bytes bound; [submit] returns -1
          (drop) once exceeded.  Small values force open-loop overflow for
          drop-accounting tests. *)
}

let default_config =
  { f = 2;
    window = 64;
    batch_bytes = 8192;
    batch_timeout = 5.0e-4;
    durability = Memory;
    buffer_bytes = 160 * 1024 * 1024;
    fc_threshold = 64;
    fc_recover_period = 0.1;
    hb_period = 0.02;
    hb_timeout = 0.25;
    retrans_timeout = 5.0e-3;
    gc_period = 0.1;
    partitions = 1;
    send_rate = 0.85e9;
    reconfig_alpha = 64;
    proposer_buffer = 16 * 1024 * 1024 }

let hdr = 64

module Batcher = Protocol.Batcher
module Od = Protocol.Ordered_delivery
module Retry = Protocol.Retry

(* An application item annotated with its destination partitions. *)
type Simnet.payload +=
  | Propose of { item : Paxos.Value.item; parts : int list }
  | P1a of { rnd : int; ring : int list; coord : int }
  | P1b of {
      rnd : int;
      acc : int;
      floor : int;
      votes : (int * int * Paxos.Value.t * int list) list;
      done_uids : int list;
          (* item uids of this acceptor's GC-pruned decided votes: a new
             coordinator with no vote history of its own (a promoted spare)
             needs them to suppress proposer resubmissions of items that
             were decided, delivered and pruned before its tenure *)
    }
  | P2a of { inst : int; rnd : int; value : Paxos.Value.t; parts : int list }
  | P2b of { inst : int; rnd : int; vid : int }
  | Decision of { inst : int; vid : int; parts : int list; uids : int list }
  | SlowDown of { learner : int; pending : int }
  | Version of { learner : int; version : int }
  | Gc of { floor : int }
  | RetransReq of { inst : int; count : int; learner : int }
  | RepairReq of { insts : int list; learner : int; fwd : int }
      (* [learner >= 0] addresses replies to a learner; [learner < 0]
         encodes acceptor [-1 - learner] (a joiner catching up).  [fwd]
         counts forwarding hops so an instance nobody holds cannot
         ping-pong between the coordinator and a spare forever. *)
  | Retrans of { inst : int; value : Paxos.Value.t; parts : int list }
  | MaxDec of { upto : int }
  | Hb of { acc : int; epoch : int }
  | NewCoord of { acc : int }
  | ReconfigCmd of {
      ring : int list;  (* new ring, coordinator last *)
      add_lrns : int list;
      rm_lrns : int list;
      retire : int list;  (* acceptors leaving the system entirely *)
    }
      (* A membership change is an ordinary item ordered through the log
         (after "Reconfigurable SMR from Non-Reconfigurable Building
         Blocks"): deciding it at instance [i] schedules activation at
         [i + reconfig_alpha]. *)

(* A joining acceptor replays the decided prefix below the activation
   instance through the learners' gap-repair machinery: a unit-valued
   [Od] tracks which instances below [cu_upto] have been recovered. *)
type catchup = {
  cu_od : unit Protocol.Ordered_delivery.t;
  cu_repair : Protocol.Ordered_delivery.repair;
  cu_upto : int;  (* the epoch's activation instance *)
}

type acc = {
  x_proc : Simnet.proc;
  x_idx : int;  (* global acceptor index *)
  mutable x_rnd : int;
  mutable x_ring : int list;  (* current ring view, coordinator last *)
  mutable x_is_coord : bool;
  mutable x_retired : bool;  (* removed from the system by reconfiguration *)
  mutable x_catchup : catchup option;
  x_votes : (int, int * Paxos.Value.t * int list) Hashtbl.t;
  x_decided : (int, int * int list) Hashtbl.t;
  x_durable : (int, bool) Hashtbl.t;  (* inst -> write completed *)
  x_held : (int, int * int) Hashtbl.t;  (* inst -> (rnd, vid): P2B awaiting P2A/durability *)
  x_disk : Storage.Disk.t option;
  x_done_uids : (int, unit) Hashtbl.t;
      (* item uids of votes pruned by GC — all decided; see [acc_gc] *)
  mutable x_mem : int;
  mutable x_gc_floor : int;
  mutable x_max_dec : int;  (* highest instance known decided *)
  (* coordinator-only state, live on whichever acceptor currently leads *)
  mutable c_rnd : int;
  mutable c_phase1_ok : bool;
  mutable c_p1b : int;
  c_claimed : (int, int * Paxos.Value.t * int list) Hashtbl.t;
  mutable c_next_inst : int;
  mutable c_outstanding : int;
  c_batch : int list Batcher.t;
      (* pending proposals, batched per destination-partition set *)
  c_insts : (int, Paxos.Value.t * int list) Retry.tracker;
      (* proposed, undecided; stamped for Phase 2A retransmission *)
  mutable c_window : int;  (* flow-controlled window *)
  mutable c_decided : int;
  c_versions : (int, int) Hashtbl.t;  (* learner -> version *)
  mutable c_gc_floor : int;
  c_seen_uids : (int, unit) Hashtbl.t;  (* duplicate-proposal suppression *)
  c_preq : (Paxos.Value.item * int list) Queue.t;
      (* proposals received before Phase 1 completed, replayed in arrival
         order once the claimed votes have seeded [c_seen_uids] *)
  mutable c_rate_window : float;  (* start of the pacing window *)
  mutable c_rate_bits : float;  (* Phase 2A bits sent in the window *)
  mutable c_rate_timer : bool;  (* a deferred drain is scheduled *)
  mutable c_rate_limit : float;  (* adaptive pacing limit (AIMD), bit/s *)
  mutable c_rc_fill : int;
      (* hole-filling cursor of the handoff drain; -1 = not started.
         Reset whenever this acceptor is (re-)promoted, because a new
         coordinator must rescan from the GC floor. *)
}

type lrn = {
  l_proc : Simnet.proc;
  l_idx : int;
  l_parts : int list;
  l_od : (int * int list) Od.t;  (* inst -> (vid, parts) *)
  l_vals : (int, Paxos.Value.t) Hashtbl.t;  (* vid -> value *)
  mutable l_delay : float;  (* processing cost per delivered instance *)
  l_sink : (int * Paxos.Value.t option) Od.sink;  (* in-order, unprocessed *)
  mutable l_fc_sent : bool;
  l_repair : Od.repair;
  mutable l_active : bool;
      (* staged learners wait inactive for their epoch's activation;
         removed learners go inactive and deliver only their prefix *)
}

type prop = {
  p_proc : Simnet.proc;
  p_idx : int;
  p_pending : (int, Paxos.Value.item * int list) Retry.tracker;
      (* uid -> unacknowledged item, stamped with its last send *)
  mutable p_unacked_bytes : int;
  mutable p_buffer : int;  (* client-side buffer bound, bytes *)
}

(* A pending membership change, from proposal to activation.  The record
   lives on [t] (one at a time): it is derived from the log — the
   [ReconfigCmd] value and its instance — so any coordinator, including
   one taking over mid-handoff, reconstructs and resumes it from the
   claimed votes of Phase 1. *)
type reconfig = {
  rc_uid : int;  (* item uid of the ReconfigCmd, for resubmission dedup *)
  rc_epoch : int;
  rc_inst : int;  (* instance carrying the command *)
  rc_activate : int;  (* rc_inst + reconfig_alpha *)
  rc_ring : int list;
  rc_add_lrns : int list;
  rc_rm_lrns : int list;
  rc_retire : int list;
  rc_decided : bool;
}

type t = {
  net : Simnet.t;
  cfg : config;
  ctrs : Protocol.Counters.t;  (* per-instance event counters *)
  mutable accs : acc array;  (* 2f+1 at creation; add_acceptor grows it *)
  mutable lrns : lrn array;
  props : prop array;
  part_groups : Simnet.group array;  (* Phase 2A dissemination, per partition *)
  dec_group : Simnet.group;  (* decisions, gc *)
  deliver : learner:int -> inst:int -> Paxos.Value.t option -> unit;
  speculative : (learner:int -> inst:int -> Paxos.Value.t -> unit) option;
  mutable fd : Protocol.Failure_detector.t option;
  mutable next_uid : int;
  mutable next_vid : int;
  mutable cur_ring : int list;  (* last installed ring, failover fallback *)
  mutable epoch : int;  (* membership epoch, bumped at each activation *)
  mutable rc : reconfig option;  (* the pending membership change, if any *)
  done_rc_uids : (int, unit) Hashtbl.t;
      (* uids of activated ReconfigCmds: a claimed-vote replay of an old
         reconfiguration instance must not re-activate a past epoch *)
}

let dbg t name = Protocol.Counters.incr t.ctrs name
let counters t = Protocol.Counters.snapshot t.ctrs

let trace t f = match Simnet.tracer t.net with Some tr -> f tr | None -> ()

let n_acceptors cfg = (2 * cfg.f) + 1

let coord_opt t =
  let found = ref None in
  Array.iter
    (fun a ->
      if a.x_is_coord && (not a.x_retired) && Simnet.is_alive a.x_proc && !found = None then
        found := Some a)
    t.accs;
  !found

let ring_of t = match coord_opt t with Some c -> c.x_ring | None -> t.cur_ring

(* Successor of acceptor [idx] in the current ring; the ring is stored with
   the coordinator last, and the chain starts at the first element. *)
let successor ring idx =
  let rec go = function
    | a :: b :: rest -> if a = idx then Some b else go (b :: rest)
    | _ -> None
  in
  go ring

let intersects l1 l2 = List.exists (fun x -> List.mem x l2) l1

(* --- reconfiguration bookkeeping --------------------------------------- *)

(* The not-yet-activated ReconfigCmd carried by a value, if any. *)
let rc_of_value t (v : Paxos.Value.t) =
  List.find_map
    (fun (it : Paxos.Value.item) ->
      match it.app with
      | ReconfigCmd { ring; add_lrns; rm_lrns; retire }
        when not (Hashtbl.mem t.done_rc_uids it.uid) ->
          Some (it.uid, ring, add_lrns, rm_lrns, retire)
      | _ -> None)
    v.items

(* Record (or refresh) the pending membership change whenever a value
   carrying a ReconfigCmd is proposed or decided.  The activation instance
   is pinned to the proposal instance, so the coordinator caps its pipeline
   at [inst + alpha] from the moment of proposal; a takeover that replays
   the claimed vote re-derives the same record, and a takeover after the
   proposal was lost entirely re-derives it at the resubmission's fresh
   instance. *)
let note_rc t inst (v : Paxos.Value.t) ~decided =
  match rc_of_value t v with
  | None -> ()
  | Some (uid, ring, add_lrns, rm_lrns, retire) ->
      let was = match t.rc with Some rc when rc.rc_uid = uid -> rc.rc_decided | _ -> false in
      t.rc <-
        Some
          { rc_uid = uid;
            rc_epoch = t.epoch + 1;
            rc_inst = inst;
            rc_activate = inst + t.cfg.reconfig_alpha;
            rc_ring = ring;
            rc_add_lrns = add_lrns;
            rc_rm_lrns = rm_lrns;
            rc_retire = retire;
            rc_decided = decided || was }

(* New proposals must stay below the pending activation instance so the
   pipeline is provably drained when the epoch turns over. *)
let under_rc_cap t c =
  match t.rc with Some rc -> c.c_next_inst < rc.rc_activate | None -> true

let cancel_catchup a =
  match a.x_catchup with
  | Some cu ->
      (* Draining the synthetic backlog ends the repair cycle. *)
      Od.fast_forward cu.cu_od cu.cu_upto;
      a.x_catchup <- None
  | None -> ()

(* --- memory accounting ------------------------------------------------ *)

let acc_update_mem a =
  let bytes = ref 0 in
  Hashtbl.iter (fun _ (_, v, _) -> bytes := !bytes + v.Paxos.Value.size) a.x_votes;
  a.x_mem <- !bytes;
  Simnet.set_mem a.x_proc (!bytes + (Hashtbl.length a.x_decided * 16))

let lrn_update_mem l =
  let bytes = ref 0 in
  Hashtbl.iter (fun _ v -> bytes := !bytes + v.Paxos.Value.size) l.l_vals;
  Simnet.set_mem l.l_proc (!bytes + (Od.size l.l_od * 16))

(* --- coordinator ------------------------------------------------------- *)

(* The decision multicast doubles as the commit notification: it carries the
   committed item uids and proposers subscribe to the decision group, so no
   per-proposer acknowledgment traffic is needed (proposers are learners,
   §3.2). *)
let mcast_decision t c inst vid parts (v : Paxos.Value.t) =
  let uids = List.map (fun (it : Paxos.Value.item) -> it.uid) v.items in
  Simnet.mcast t.net ~src:c.x_proc t.dec_group
    ~size:(hdr + (8 * List.length uids))
    (Decision { inst; vid; parts; uids })

(* The coordinator votes locally when it proposes; with synchronous
   durability the vote must reach disk before the final decision can be
   multicast. *)
let coord_local_vote t c inst rnd (v : Paxos.Value.t) parts =
  let duplicate =
    match Hashtbl.find_opt c.x_votes inst with
    | Some (r, v', _) -> r = rnd && v'.Paxos.Value.vid = v.vid
    | None -> false
  in
  if not duplicate then begin
    Hashtbl.replace c.x_votes inst (rnd, v, parts);
    Hashtbl.replace c.x_durable inst (t.cfg.durability <> Sync_disk);
    (match (t.cfg.durability, c.x_disk) with
    | Sync_disk, Some d ->
        Storage.Disk.write_sync d ~bytes:v.size (fun () -> Hashtbl.replace c.x_durable inst true)
    | Async_disk, Some d -> Storage.Disk.write_async d ~bytes:v.size
    | _ -> ());
    acc_update_mem c
  end

(* [parts] is canonicalised (sorted, duplicate-free) by [propose_batch], so
   each destination group is multicast to exactly once. *)
let mcast_p2a t c inst (v : Paxos.Value.t) parts =
  trace t (fun tr ->
      Trace.instant tr ~id:inst ~pid:(Simnet.pid c.x_proc) ~cat:"proto" ~name:"p2a"
        ~ts:(Simnet.now t.net));
  let p2a = P2a { inst; rnd = c.c_rnd; value = v; parts } in
  List.iter
    (fun p -> Simnet.mcast t.net ~src:c.x_proc t.part_groups.(p) ~size:(v.size + hdr) p2a)
    parts

let propose_instance t c inst (v : Paxos.Value.t) parts =
  trace t (fun tr ->
      Trace.abegin tr ~pid:(Simnet.pid c.x_proc) ~cat:"ordering" ~name:"consensus" ~id:inst
        ~ts:(Simnet.now t.net));
  note_rc t inst v ~decided:false;
  Retry.watch c.c_insts ~now:(Simnet.now t.net) inst (v, parts);
  c.c_rate_bits <-
    c.c_rate_bits +. (float_of_int (v.size + hdr) *. 8.0 *. float_of_int (List.length parts));
  c.c_outstanding <- c.c_outstanding + 1;
  coord_local_vote t c inst c.c_rnd v parts;
  mcast_p2a t c inst v parts

let alive_acceptors t =
  Array.to_list t.accs
  |> List.filter (fun a -> (not a.x_retired) && Simnet.is_alive a.x_proc)

let install_ring t new_coord ring =
  t.cur_ring <- ring;
  Array.iter
    (fun a ->
      a.x_ring <- ring;
      a.x_is_coord <- a.x_idx = new_coord.x_idx;
      (* Group membership follows ring membership so promoted spares start
         receiving Phase 2A and decision multicasts. *)
      let op = if List.mem a.x_idx ring then Simnet.join else Simnet.leave in
      Array.iter (fun g -> op g a.x_proc) t.part_groups;
      op t.dec_group a.x_proc)
    t.accs

let start_phase1 t c =
  c.c_rnd <- Stdlib.max c.c_rnd c.x_rnd + Array.length t.accs + 1;
  c.x_rnd <- Stdlib.max c.x_rnd c.c_rnd;
  c.c_phase1_ok <- false;
  c.c_p1b <- 0;
  Array.iter
    (fun a ->
      if Simnet.is_alive a.x_proc && a.x_idx <> c.x_idx then
        Simnet.send t.net ~src:c.x_proc ~dst:a.x_proc ~size:hdr
          (P1a { rnd = c.c_rnd; ring = c.x_ring; coord = c.x_idx }))
    t.accs

let rec drain t c =
  if c.c_phase1_ok && c.x_is_coord && Simnet.is_alive c.x_proc then begin
    let claimed = Hashtbl.fold (fun i x acc -> (i, x) :: acc) c.c_claimed [] in
    Hashtbl.reset c.c_claimed;
    List.iter
      (fun (inst, (_, v, parts)) ->
        (* A coordinator taking over mid-reconfiguration reconstructs the
           pending membership change from the claimed votes. *)
        note_rc t inst v ~decided:(Hashtbl.mem c.x_decided inst);
        if not (Retry.mem c.c_insts inst) && not (Hashtbl.mem c.x_decided inst) then
          propose_instance t c inst v parts;
        if inst >= c.c_next_inst then c.c_next_inst <- inst + 1)
      (List.sort compare claimed);
    (* Coordinator-side flow control: Phase 2A traffic is paced below the
       rate the network can multicast without loss (§3.3.6). *)
    let pace_ok () =
      let now = Simnet.now t.net in
      if now -. c.c_rate_window > 0.01 then begin
        c.c_rate_window <- now;
        c.c_rate_bits <- 0.0
      end;
      c.c_rate_bits < c.c_rate_limit *. 0.01
    in
    let continue = ref true in
    while !continue && c.c_outstanding < c.c_window && under_rc_cap t c && pace_ok () do
      match Batcher.ready c.c_batch with
      | Some parts -> propose_batch t c parts
      | None -> continue := false
    done;
    if Batcher.ready c.c_batch <> None && c.c_outstanding < c.c_window
       && under_rc_cap t c
       && (not (pace_ok ())) && not c.c_rate_timer
    then begin
      c.c_rate_timer <- true;
      ignore
        (Simnet.after t.net 0.002 (fun () ->
             dbg t "rate_timer"; c.c_rate_timer <- false; drain t c))
    end;
    Batcher.arm_timeout c.c_batch t.net ~timeout:t.cfg.batch_timeout (fun () ->
        dbg t "batch_timer";
        if c.x_is_coord && Simnet.is_alive c.x_proc && c.c_phase1_ok
           && c.c_outstanding < c.c_window && under_rc_cap t c
        then begin
          (* Seal the largest partial batch. *)
          match Batcher.largest c.c_batch with
          | Some (parts, _) -> propose_batch t c parts
          | None -> ()
        end;
        drain t c);
    reconfig_drive t c
  end

and propose_batch t c parts =
  match Batcher.seal c.c_batch parts with
  | [] -> ()
  | items ->
      t.next_vid <- t.next_vid + 1;
      let v = Paxos.Value.make ~vid:t.next_vid items in
      let parts = List.sort_uniq compare parts in
      let parts = if parts = [] then [ 0 ] else parts in
      let inst = c.c_next_inst in
      c.c_next_inst <- inst + 1;
      propose_instance t c inst v parts

(* Handoff drain: once the membership change is decided, fill every
   instance below the activation point — holes get a no-op, which is safe
   because a decided instance is claimed by every Phase-1 majority, so an
   unclaimed hole is provably undecided — then wait for the in-flight
   Phase 2 pipeline to reach zero before turning the epoch over. *)
and reconfig_drive t c =
  match t.rc with
  | Some rc
    when rc.rc_decided && c.x_is_coord && c.c_phase1_ok && Simnet.is_alive c.x_proc ->
      if c.c_rc_fill < rc.rc_activate then begin
        let i = ref (Stdlib.max 0 (Stdlib.max c.c_rc_fill c.x_gc_floor)) in
        while !i < rc.rc_activate do
          if not (Retry.mem c.c_insts !i) && not (Hashtbl.mem c.x_decided !i) then begin
            dbg t "reconfig_noop";
            propose_noop t c !i
          end;
          incr i
        done;
        c.c_rc_fill <- rc.rc_activate;
        if c.c_next_inst < rc.rc_activate then c.c_next_inst <- rc.rc_activate
      end;
      if c.c_outstanding = 0 && c.c_next_inst >= rc.rc_activate then
        activate_reconfig t c rc
  | _ -> ()

and propose_noop t c inst =
  t.next_vid <- t.next_vid + 1;
  propose_instance t c inst (Paxos.Value.skip ~vid:t.next_vid) [ 0 ]

(* The epoch turns over: install the new ring and learner set, thread the
   epoch through the failure detector, hand the coordinator role (and its
   decided-map bookkeeping) to the new ring's coordinator, and start
   catch-up for ring members that lack the prior epoch's history. *)
and activate_reconfig t c rc =
  Hashtbl.replace t.done_rc_uids rc.rc_uid ();
  t.rc <- None;
  t.epoch <- rc.rc_epoch;
  dbg t "reconfig_activate";
  let old_ring = t.cur_ring in
  (* Retired acceptors leave every dissemination group; their history
     stays readable over unicast for repair traffic. *)
  List.iter
    (fun idx ->
      if idx >= 0 && idx < Array.length t.accs then begin
        let a = t.accs.(idx) in
        a.x_retired <- true;
        cancel_catchup a;
        Array.iter (fun g -> Simnet.leave g a.x_proc) t.part_groups;
        Simnet.leave t.dec_group a.x_proc
      end)
    rc.rc_retire;
  (* Removed learners stop at the boundary: leaving the groups means no
     decision at or past the activation instance ever reaches them, so
     they deliver exactly a prefix of the stream. *)
  List.iter
    (fun li ->
      if li >= 0 && li < Array.length t.lrns then begin
        let l = t.lrns.(li) in
        l.l_active <- false;
        List.iter
          (fun p ->
            if p < Array.length t.part_groups then Simnet.leave t.part_groups.(p) l.l_proc)
          l.l_parts;
        Simnet.leave t.dec_group l.l_proc
      end)
    rc.rc_rm_lrns;
  (* Added learners join exactly at the boundary: their delivery cursor
     starts at the activation instance, so their stream is the new
     epoch's suffix — no catch-up, no gap. *)
  List.iter
    (fun li ->
      if li >= 0 && li < Array.length t.lrns then begin
        let l = t.lrns.(li) in
        l.l_active <- true;
        Od.fast_forward l.l_od rc.rc_activate;
        List.iter
          (fun p ->
            if p < Array.length t.part_groups then Simnet.join t.part_groups.(p) l.l_proc)
          l.l_parts;
        Simnet.join t.dec_group l.l_proc
      end)
    rc.rc_add_lrns;
  (* A removed learner's last version report must not gate GC forever. *)
  Array.iter (fun a -> List.iter (Hashtbl.remove a.c_versions) rc.rc_rm_lrns) t.accs;
  let nc = t.accs.(List.nth rc.rc_ring (List.length rc.rc_ring - 1)) in
  if nc.x_idx <> c.x_idx then begin
    (* Handoff state transfer: the outgoing coordinator hands its decided
       map and GC bookkeeping to the incoming one, so Phase 1's claimed
       votes over the old epoch are recognised as decided instead of
       being replayed as fresh proposals. *)
    Hashtbl.iter
      (fun i d -> if not (Hashtbl.mem nc.x_decided i) then Hashtbl.replace nc.x_decided i d)
      c.x_decided;
    (* The uids of GC-pruned decided votes travel with the role: a spare
       promoted by the handoff has no vote history of its own, and Phase 1
       claims can no longer produce votes the ring already pruned — without
       these uids a proposer that missed a decision would get its item
       re-decided under a second instance. *)
    Hashtbl.iter (fun uid () -> Hashtbl.replace nc.x_done_uids uid ()) c.x_done_uids;
    if c.x_max_dec > nc.x_max_dec then nc.x_max_dec <- c.x_max_dec;
    nc.c_gc_floor <- Stdlib.max nc.c_gc_floor c.c_gc_floor;
    nc.x_gc_floor <- Stdlib.max nc.x_gc_floor c.x_gc_floor;
    Hashtbl.iter
      (fun l v ->
        match Hashtbl.find_opt nc.c_versions l with
        | Some v' when v' >= v -> ()
        | _ -> Hashtbl.replace nc.c_versions l v)
      c.c_versions;
    c.c_phase1_ok <- false;
    (* Items still batched here were never proposed; their proposers
       resubmit to the new coordinator on the NewCoord announcement. *)
    Batcher.clear c.c_batch
  end;
  (match t.fd with
  | Some fd ->
      let members =
        Array.to_list t.accs
        |> List.filter (fun a -> not a.x_retired)
        |> List.map (fun a -> a.x_idx)
      in
      Protocol.Failure_detector.set_epoch fd ~epoch:rc.rc_epoch ~members
  | None -> ());
  let floor = Stdlib.max c.x_gc_floor c.c_gc_floor in
  promote_coordinator t nc ~at_least:rc.rc_activate ~ring:rc.rc_ring ();
  (* Ring members without the prior epoch's history replay it in the
     background; activation does not wait for them. *)
  List.iter
    (fun idx ->
      if not (List.mem idx old_ring) then start_catchup t t.accs.(idx) ~floor ~upto:rc.rc_activate)
    rc.rc_ring

(* Promote [a] to coordinator of [ring] and run Phase 1.  Shared between
   failover ([become_coordinator]) and planned handoff
   ([activate_reconfig], which pins the next instance to the activation
   point via [at_least]). *)
and promote_coordinator t a ?(at_least = 0) ~ring () =
  install_ring t a ring;
  a.c_rnd <- Stdlib.max a.c_rnd a.x_rnd;
  a.c_window <- t.cfg.window;
  (* A previous coordinator tenure may have left tracked instances and an
     outstanding count behind; Phase 1's claimed votes re-cover anything
     still undecided, so the trackers restart empty. *)
  Retry.clear a.c_insts;
  a.c_outstanding <- 0;
  a.c_rc_fill <- -1;
  a.c_next_inst <-
    Hashtbl.fold (fun i _ acc -> Stdlib.max (i + 1) acc) a.x_votes
      (Stdlib.max (Stdlib.max a.c_next_inst a.x_gc_floor) at_least);
  (* Every value this acceptor voted for may already be decided, so its
     items must never be proposed again under a fresh instance.  The
     resubmissions triggered by the NewCoord announcement are buffered
     until Phase 1 completes (see the Propose handler), by which point the
     claimed votes have extended this seeding to every decided value. *)
  Hashtbl.iter
    (fun _ ((_, v, _) : int * Paxos.Value.t * int list) ->
      List.iter (fun it -> Hashtbl.replace a.c_seen_uids it.Paxos.Value.uid ()) v.items)
    a.x_votes;
  (* ...including votes GC already pruned.  An in-ring acceptor voted on
     every decided instance (decisions need all f+1 ring votes), so its
     own vote history is a complete record of the decided uids. *)
  Hashtbl.iter (fun uid () -> Hashtbl.replace a.c_seen_uids uid ()) a.x_done_uids;
  (* The coordinator's own votes count toward Phase 1 too.  Without them,
     a decided instance whose only voter in the Phase 1 quorum is the
     coordinator itself would be replayed from a stale lower-round claim
     — deciding a different value for the same instance. *)
  Hashtbl.iter
    (fun inst ((vrnd, vval, parts) : int * Paxos.Value.t * int list) ->
      match Hashtbl.find_opt a.c_claimed inst with
      | Some (r, _, _) when r >= vrnd -> ()
      | _ -> Hashtbl.replace a.c_claimed inst (vrnd, vval, parts))
    a.x_votes;
  let announce dst = Simnet.send t.net ~src:a.x_proc ~dst ~size:hdr (NewCoord { acc = a.x_idx }) in
  Array.iter (fun p -> announce p.p_proc) t.props;
  Array.iter (fun l -> if l.l_active then announce l.l_proc) t.lrns;
  start_phase1 t a

(* A joining ring member replays the decided prefix below the activation
   instance (above the GC floor — everything below was already applied by
   f+1 learners and will never be repaired again) through the same
   targeted gap-repair machinery the learners use. *)
and start_catchup t a ~floor ~upto =
  cancel_catchup a;
  let od = Od.create () in
  Od.fast_forward od (Stdlib.max 0 floor);
  Od.note_max od (upto - 1);
  let cu = { cu_od = od; cu_repair = Od.repairer (); cu_upto = upto } in
  a.x_catchup <- Some cu;
  dbg t "catchup_start";
  (* Credit history the acceptor already holds (an old spare re-joining). *)
  Hashtbl.iter
    (fun i _ -> if i < upto && Hashtbl.mem a.x_votes i then ignore (Od.offer od ~inst:i ()))
    a.x_decided;
  catchup_pump t a

and catchup_pump t a =
  match a.x_catchup with
  | None -> ()
  | Some cu ->
      Od.pump cu.cu_od (fun _ () -> true);
      if Od.backlog cu.cu_od = 0 then begin
        a.x_catchup <- None;
        dbg t "catchup_done"
      end
      else catchup_cycle t a cu

and catchup_cycle t a cu =
  Od.request_repairs cu.cu_repair cu.cu_od t.net ~timeout:t.cfg.retrans_timeout
    ~cooldown:(4.0 *. t.cfg.retrans_timeout)
    ~alive:(fun () -> Simnet.is_alive a.x_proc)
    ~complete:(fun _ () -> true)
    ~send:(fun insts ->
      match catchup_source t a with
      | Some src ->
          dbg t "catchup_req";
          Simnet.send t.net ~src:a.x_proc ~dst:src.x_proc ~size:(hdr + List.length insts)
            (RepairReq { insts; learner = -1 - a.x_idx; fwd = 0 })
      | None -> ())

(* Repair source for a catching-up acceptor: spread over the ring like the
   learners' preferential acceptors, falling back to any alive acceptor
   (an out-of-ring one still holds the previous epoch's history). *)
and catchup_source t a =
  let ring = ring_of t in
  let n = List.length ring in
  let rec pick k =
    if k >= n then None
    else
      let idx = List.nth ring ((a.x_idx + k) mod n) in
      let b = t.accs.(idx) in
      if idx <> a.x_idx && Simnet.is_alive b.x_proc then Some b else pick (k + 1)
  in
  match pick 0 with
  | Some b -> Some b
  | None ->
      Array.fold_left
        (fun acc b ->
          if acc = None && b.x_idx <> a.x_idx && Simnet.is_alive b.x_proc then Some b else acc)
        None t.accs

let coord_decide t c inst vid =
  match Retry.find c.c_insts inst with
  | Some (v, parts) when v.Paxos.Value.vid = vid ->
      (* The coordinator is the last acceptor: the arriving Phase 2B closes
         the majority provided its own vote is durable. *)
      let fire () =
        if not (Hashtbl.mem c.x_decided inst) then begin
          trace t (fun tr ->
              let now = Simnet.now t.net and pid = Simnet.pid c.x_proc in
              Trace.aend tr ~pid ~cat:"ordering" ~name:"consensus" ~id:inst ~ts:now;
              Trace.instant tr ~id:inst ~pid ~cat:"proto" ~name:"decision" ~ts:now);
          ignore (Retry.ack c.c_insts inst);
          Hashtbl.add c.x_decided inst (vid, parts);
          if inst > c.x_max_dec then c.x_max_dec <- inst;
          c.c_outstanding <- c.c_outstanding - 1;
          c.c_decided <- c.c_decided + 1;
          note_rc t inst v ~decided:true;
          mcast_decision t c inst vid parts v;
          drain t c
        end
      in
      (* A pruned durability entry means the instance was garbage collected
         after being applied by f+1 learners — treat it as durable. *)
      let durable () = match Hashtbl.find_opt c.x_durable inst with Some b -> b | None -> true in
      let rec wait_durable () =
        dbg t "wait_durable";
        if durable () then fire ()
        else if c.x_is_coord && Simnet.is_alive c.x_proc then
          ignore (Simnet.after t.net 1.0e-4 wait_durable)
      in
      wait_durable ()
  | _ -> ()

(* --- flow control ------------------------------------------------------ *)

let fc_slow_down t c =
  (* Multiplicative decrease on both the instance window and the pacing
     rate; the recovery loop grows them back additively (§3.3.6). *)
  c.c_window <- Stdlib.max 1 (c.c_window / 2);
  c.c_rate_limit <- Stdlib.max 5.0e7 (c.c_rate_limit /. 2.0);
  drain t c

(* Window regrowth: additive increase back toward the configured window and
   pacing rate (§3.3.6). *)
let fc_recovery t =
  ignore
    (Retry.every t.net ~name:"fc_recover" ~period:t.cfg.fc_recover_period (fun () ->
         match coord_opt t with
         | Some c when c.c_window < t.cfg.window || c.c_rate_limit < t.cfg.send_rate ->
             c.c_window <- Stdlib.min t.cfg.window (c.c_window + Stdlib.max 1 (c.c_window / 2));
             c.c_rate_limit <- Stdlib.min t.cfg.send_rate (c.c_rate_limit *. 1.25);
             drain t c
         | _ -> ()))

(* --- acceptor ---------------------------------------------------------- *)

let forward_p2b t a inst rnd vid =
  match successor a.x_ring a.x_idx with
  | Some next ->
      Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(next).x_proc ~size:hdr (P2b { inst; rnd; vid })
  | None -> if a.x_is_coord then coord_decide t a inst vid

let acc_try_forward t a inst =
  match Hashtbl.find_opt a.x_held inst with
  | Some (rnd, vid) -> begin
      match Hashtbl.find_opt a.x_votes inst with
      | Some (_, v, _) when v.Paxos.Value.vid = vid && Hashtbl.find_opt a.x_durable inst = Some true ->
          Hashtbl.remove a.x_held inst;
          forward_p2b t a inst rnd vid
      | _ -> ()
    end
  | None -> ()

let acc_on_p2a t a inst rnd (v : Paxos.Value.t) parts =
  (* A retransmitted Phase 2A for a value already voted (and possibly still
     being persisted) must not trigger another vote or disk write. *)
  let duplicate =
    match Hashtbl.find_opt a.x_votes inst with
    | Some (r, v', _) -> r = rnd && v'.Paxos.Value.vid = v.vid
    | None -> false
  in
  if duplicate then begin
    (* A retransmitted P2A means the coordinator still lacks this instance.
       Mid-chain acceptors re-forward from their held P2B, but the chain
       head holds nothing — its spontaneous P2B may have been the lost
       message (e.g. a partition hit right after the vote), so it must
       re-send or the chain can never restart: the round is unchanged, so
       every further retransmission stays a duplicate. *)
    if
      (not a.x_is_coord) && a.x_ring <> []
      && List.hd a.x_ring = a.x_idx
      && Hashtbl.find_opt a.x_durable inst = Some true
    then forward_p2b t a inst rnd v.vid
    else acc_try_forward t a inst
  end
  else if rnd >= a.x_rnd then begin
    a.x_rnd <- rnd;
    Hashtbl.replace a.x_votes inst (rnd, v, parts);
    acc_update_mem a;
    let after_durable () =
      Hashtbl.replace a.x_durable inst true;
      (* First in-ring acceptor spontaneously starts the Phase 2B chain. *)
      if (not a.x_is_coord) && a.x_ring <> [] && List.hd a.x_ring = a.x_idx then
        forward_p2b t a inst rnd v.vid
      else acc_try_forward t a inst
    in
    match (t.cfg.durability, a.x_disk) with
    | Sync_disk, Some d -> Storage.Disk.write_sync d ~bytes:v.size after_durable
    | Async_disk, Some d ->
        (* Asynchronous writes: the vote proceeds immediately unless the
           device has fallen too far behind — a bounded dirty buffer, which
           is what makes Recoverable Ring Paxos disk-bound (Fig. 5.1). *)
        Storage.Disk.write_async d ~bytes:v.size;
        let lag = Storage.Disk.backlog d ~now:(Simnet.now t.net) -. 0.05 in
        if lag > 0.0 then ignore (Simnet.after t.net lag after_durable)
        else after_durable ()
    | _ -> after_durable ()
  end

let acc_on_p2b t a inst rnd vid =
  if a.x_is_coord then coord_decide t a inst vid
  else begin
    match Hashtbl.find_opt a.x_votes inst with
    | Some (_, v, _) when v.Paxos.Value.vid = vid && Hashtbl.find_opt a.x_durable inst = Some true
      ->
        forward_p2b t a inst rnd vid
    | _ ->
        (* Phase 2A not yet ip-delivered (or not yet durable): hold the vote
           and ask the coordinator to retransmit if the gap persists. *)
        Hashtbl.replace a.x_held inst (rnd, vid);
        ignore
          (Simnet.after t.net t.cfg.retrans_timeout (fun () ->
               if Hashtbl.mem a.x_held inst && Simnet.is_alive a.x_proc then begin
                 match coord_opt t with
                 | Some c ->
                     Simnet.send t.net ~src:a.x_proc ~dst:c.x_proc ~size:hdr
                       (RetransReq { inst; count = 1; learner = -1 - a.x_idx })
                 | None -> ()
               end))
  end

(* --- learner ------------------------------------------------------------ *)

let pref_acceptor t l =
  (* Preferential acceptor: spread learners across the ring. *)
  let ring = ring_of t in
  let n = List.length ring in
  let rec pick k =
    if k >= n then None
    else
      let idx = List.nth ring ((l.l_idx + k) mod n) in
      if Simnet.is_alive t.accs.(idx).x_proc then Some t.accs.(idx) else pick (k + 1)
  in
  match pick 0 with Some a -> Some a | None -> coord_opt t

let lrn_pump t l =
  Od.drain_sink l.l_sink t.net l.l_proc
    ~cost:(fun () -> l.l_delay)
    (fun (inst, v) -> t.deliver ~learner:l.l_idx ~inst v)

let lrn_fc_check t l =
  (* The learner's buffer pressure is both unprocessed decisions and the
     backlog of decided-but-not-yet-deliverable instances (losses it is
     still repairing) — §3.3.6. *)
  let pending = Od.sink_length l.l_sink + Od.backlog l.l_od in
  if pending > t.cfg.fc_threshold && not l.l_fc_sent then begin
    match pref_acceptor t l with
    | Some a ->
        l.l_fc_sent <- true;
        Simnet.send t.net ~src:l.l_proc ~dst:a.x_proc ~size:hdr
          (SlowDown { learner = l.l_idx; pending });
        ignore (Simnet.after t.net 0.05 (fun () -> l.l_fc_sent <- false))
    | None -> ()
  end

(* Ask the preferential acceptor for the concrete missing instances —
   decided at or beyond the delivery cursor but lacking either the decision
   or the value (§3.3.4). *)
let repair_cycle t l =
  Od.request_repairs l.l_repair l.l_od t.net ~timeout:t.cfg.retrans_timeout
    ~cooldown:(4.0 *. t.cfg.retrans_timeout)
    ~alive:(fun () -> Simnet.is_alive l.l_proc)
    ~complete:(fun _ (vid, _) -> Hashtbl.mem l.l_vals vid)
    ~send:(fun insts ->
      trace t (fun tr ->
          Trace.instant tr ~pid:(Simnet.pid l.l_proc) ~cat:"proto" ~name:"repair-req"
            ~ts:(Simnet.now t.net));
      match pref_acceptor t l with
      | Some a ->
          Simnet.send t.net ~src:l.l_proc ~dst:a.x_proc ~size:(hdr + List.length insts)
            (RepairReq { insts; learner = l.l_idx; fwd = 0 })
      | None -> ())

(* Release everything deliverable in instance order; what remains blocked is
   either an instance whose decision was lost (repairable once a later
   decision reveals the gap) or one whose value has not arrived. *)
let lrn_drain t l =
  Od.pump l.l_od (fun inst (vid, parts) ->
      let release v =
        trace t (fun tr ->
            Trace.aend tr ~pid:(Simnet.pid l.l_proc) ~cat:"ordering" ~name:"deliver-wait"
              ~id:((inst * 256) + l.l_idx) ~ts:(Simnet.now t.net));
        Od.sink_push l.l_sink (inst, v);
        lrn_fc_check t l;
        lrn_pump t l;
        true
      in
      if not (intersects parts l.l_parts) then release None
      else
        match Hashtbl.find_opt l.l_vals vid with
        | Some v ->
            Hashtbl.remove l.l_vals vid;
            lrn_update_mem l;
            release (Some v)
        | None ->
            (* Decision known but value lost: fetch it from the
               preferential acceptor. *)
            false);
  if Od.backlog l.l_od > 0 then repair_cycle t l

(* Speculative delivery exposes values in ip-multicast arrival order, before
   their order is decided (Chapter 4); the replica layer detects and rolls
   back the rare arrival/decision mismatches. *)
let lrn_on_p2a t l inst (v : Paxos.Value.t) =
  Hashtbl.replace l.l_vals v.vid v;
  (match t.speculative with
  | Some spec ->
      Od.speculate l.l_od ~inst (fun () ->
          trace t (fun tr ->
              Trace.instant tr ~id:inst ~pid:(Simnet.pid l.l_proc) ~cat:"proto"
                ~name:"speculate" ~ts:(Simnet.now t.net));
          spec ~learner:l.l_idx ~inst v)
  | None -> ());
  lrn_update_mem l;
  lrn_drain t l

let lrn_on_decision t l inst vid parts =
  Od.note_max l.l_od inst;
  if Od.offer l.l_od ~inst (vid, parts) then begin
    trace t (fun tr ->
        Trace.abegin tr ~pid:(Simnet.pid l.l_proc) ~cat:"ordering" ~name:"deliver-wait"
          ~id:((inst * 256) + l.l_idx) ~ts:(Simnet.now t.net));
    lrn_drain t l
  end
  else if Od.backlog l.l_od > 0 then
    (* A duplicate decision can still widen the gap through [note_max]
       (e.g. a decision addressed to another partition re-delivered after
       the repair cycle went quiescent): restart repairs here, because the
       drain path above did not run. *)
    repair_cycle t l;
  lrn_fc_check t l

(* Learners periodically report their delivery version so acceptors can both
   garbage collect and tell a learner when it has fallen behind. *)
let version_reports t l =
  ignore
    (Retry.every t.net ~name:"version" ~period:t.cfg.gc_period (fun () ->
         if Simnet.is_alive l.l_proc && l.l_active then begin
           match pref_acceptor t l with
           | Some a ->
               Simnet.send t.net ~src:l.l_proc ~dst:a.x_proc ~size:hdr
                 (Version { learner = l.l_idx; version = Od.next l.l_od })
           | None -> ()
         end))

(* --- garbage collection ------------------------------------------------- *)

let acc_gc t a floor =
  trace t (fun tr ->
      Trace.instant tr ~pid:(Simnet.pid a.x_proc) ~cat:"proto" ~name:"gc"
        ~ts:(Simnet.now t.net));
  a.x_gc_floor <- Stdlib.max a.x_gc_floor floor;
  (* The GC floor only advances past applied instances, so every pruned
     vote is for a decided value.  Remember its item uids: if this
     acceptor later takes over as coordinator, they seed [c_seen_uids] so
     a proposer that missed the decision (lossy multicast) cannot get the
     same item decided under a second instance. *)
  Hashtbl.iter
    (fun i ((_, v, _) : int * Paxos.Value.t * int list) ->
      if i < floor then
        List.iter (fun it -> Hashtbl.replace a.x_done_uids it.Paxos.Value.uid ()) v.items)
    a.x_votes;
  let prune tbl = Hashtbl.iter (fun i _ -> if i < floor then Hashtbl.remove tbl i) (Hashtbl.copy tbl) in
  prune a.x_votes;
  prune a.x_decided;
  prune a.x_durable;
  acc_update_mem a

let coord_on_version t c learner version =
  Hashtbl.replace c.c_versions learner version;
  let active = Array.fold_left (fun n l -> if l.l_active then n + 1 else n) 0 t.lrns in
  if active > 0 && Hashtbl.length c.c_versions >= active then begin
    let floor = Hashtbl.fold (fun _ v acc -> Stdlib.min v acc) c.c_versions max_int in
    if floor > c.c_gc_floor then begin
      c.c_gc_floor <- floor;
      Simnet.mcast t.net ~src:c.x_proc t.dec_group ~size:hdr (Gc { floor });
      acc_gc t c floor
    end
  end

(* Resubmit items that have gone unacknowledged for a full timeout (lost to
   coordinator buffer overflow or to a coordinator crash). *)
let prop_resubmission t p =
  ignore
    (Retry.every t.net ~name:"resubmit" ~period:0.5 (fun () ->
         if Simnet.is_alive p.p_proc then
           match coord_opt t with
           | Some c ->
               Retry.iter_due p.p_pending ~now:(Simnet.now t.net) ~older_than:0.5
                 (fun _uid (it, parts) ->
                   Simnet.send t.net ~src:p.p_proc ~dst:c.x_proc
                     ~size:(it.Paxos.Value.isize + hdr) (Propose { item = it; parts }))
           | None -> ()))

(* --- failure handling ---------------------------------------------------- *)

let become_coordinator t a =
  (* Lay out a fresh ring of alive acceptors — preserving the current ring
     size and preferring its surviving members — with [a] as coordinator
     (last), then run Phase 1 with a higher round. *)
  let target = Stdlib.max 1 (List.length t.cur_ring) in
  let others = alive_acceptors t |> List.filter (fun b -> b.x_idx <> a.x_idx) in
  let in_ring, spares = List.partition (fun b -> List.mem b.x_idx t.cur_ring) others in
  let chosen = List.filteri (fun i _ -> i < target - 1) (in_ring @ spares) in
  let ring = List.map (fun b -> b.x_idx) chosen @ [ a.x_idx ] in
  promote_coordinator t a ~ring ()

(* Undecided instances whose Phase 2A multicast may have been lost are
   re-multicast so the ring's Phase 2B chain can restart (§3.3.4). *)
let p2a_retransmission t =
  ignore
    (Retry.every ~counters:t.ctrs t.net ~name:"p2a_retrans" ~period:t.cfg.retrans_timeout
       (fun () ->
         match coord_opt t with
         | Some c ->
             Retry.iter_due c.c_insts ~now:(Simnet.now t.net)
               ~older_than:(2.0 *. t.cfg.retrans_timeout)
               (fun inst (v, parts) -> mcast_p2a t c inst v parts)
         | None -> ()))

(* The shared failure detector drives both directions of §3.3.4's failure
   handling: while a coordinator leads it heartbeats the other acceptors and
   swaps dead ring members for spares; once none leads, the first alive
   acceptor whose heartbeats went stale takes over. *)
let failure_detection t =
  let emit () =
    match coord_opt t with
    | None -> ()
    | Some c ->
        (* Coordinator heartbeats every alive non-retired acceptor (spares
           included, so a spare's promotion timeout measures real
           silence)... *)
        Array.iter
          (fun a ->
            if a.x_idx <> c.x_idx && (not a.x_retired) && Simnet.is_alive a.x_proc then
              Simnet.send t.net ~src:c.x_proc ~dst:a.x_proc ~size:hdr
                (Hb { acc = c.x_idx; epoch = t.epoch }))
          t.accs;
        (* ...and reconfigures, swapping dead ring members for spares. *)
        List.iter
          (fun idx ->
            if idx <> c.x_idx && not (Simnet.is_alive t.accs.(idx).x_proc) then
              let spares =
                alive_acceptors t |> List.filter (fun b -> not (List.mem b.x_idx c.x_ring))
              in
              match spares with
              | spare :: _ ->
                  install_ring t c
                    (List.map (fun i -> if i = idx then spare.x_idx else i) c.x_ring);
                  start_phase1 t c
              | [] -> ())
          c.x_ring
  in
  let on_suspect ~stale =
    (* Coordinator dead: the first alive in-ring acceptor (then any spare)
       takes over once the heartbeat timeout expires. *)
    let in_ring =
      List.filter_map
        (fun idx ->
          let a = t.accs.(idx) in
          if Simnet.is_alive a.x_proc && stale idx then Some a else None)
        t.cur_ring
    in
    let candidates =
      if in_ring <> [] then in_ring
      else List.filter (fun a -> stale a.x_idx) (alive_acceptors t)
    in
    match candidates with
    | a :: _ -> become_coordinator t a
    | [] -> ()
  in
  t.fd <-
    Some
      (Protocol.Failure_detector.create t.net ~hb_period:t.cfg.hb_period
         ~hb_timeout:t.cfg.hb_timeout
         ~leader:(fun () -> coord_opt t <> None)
         ~emit ~on_suspect)

(* --- handlers ------------------------------------------------------------ *)

(* Admit a proposal into the coordinator's batch.  Must only run once
   Phase 1 has completed: before that the coordinator cannot know which
   items are already decided, and a resubmitted item could be re-proposed
   under a second instance and delivered twice. *)
let coord_admit a (item : Paxos.Value.item) parts =
  if not (Hashtbl.mem a.c_seen_uids item.uid) then
    if Batcher.enqueue a.c_batch ~key:(List.sort_uniq compare parts) item then begin
      Hashtbl.add a.c_seen_uids item.uid ();
      true
    end
    else false
  else false

(* A ReconfigCmd is never batched with application items: it gets its own
   instance immediately, so the activation point [inst + alpha] is pinned
   the moment it is proposed.  One membership change is in flight at a
   time — while [t.rc] is pending, further commands are dropped and ride
   the proposer's resubmission loop until the current one activates. *)
let coord_propose_reconfig t c (item : Paxos.Value.item) =
  let busy = match t.rc with Some rc -> rc.rc_uid <> item.uid | None -> false in
  if
    (not busy)
    && (not (Hashtbl.mem c.c_seen_uids item.uid))
    && not (Hashtbl.mem t.done_rc_uids item.uid)
  then begin
    Hashtbl.add c.c_seen_uids item.uid ();
    dbg t "reconfig_propose";
    t.next_vid <- t.next_vid + 1;
    let v = Paxos.Value.make ~vid:t.next_vid [ item ] in
    let inst = c.c_next_inst in
    c.c_next_inst <- inst + 1;
    propose_instance t c inst v [ 0 ]
  end

let coord_ingest t c (item : Paxos.Value.item) parts =
  match item.app with
  | ReconfigCmd _ -> coord_propose_reconfig t c item
  | _ -> if coord_admit c item parts then drain t c

let acc_handler t a (m : Simnet.msg) =
  match m.payload with
  | Propose { item; parts } ->
      if a.x_is_coord then
        if not a.c_phase1_ok then
          (* Buffer, in arrival order, until the claimed votes of Phase 1
             have seeded [c_seen_uids] with every decided item. *)
          Queue.push (item, parts) a.c_preq
        else coord_ingest t a item parts
  | P1a { rnd; ring; coord = cidx } ->
      if rnd > a.x_rnd then begin
        a.x_rnd <- rnd;
        a.x_ring <- ring;
        a.x_is_coord <- a.x_idx = cidx;
        let votes =
          Hashtbl.fold (fun i (vr, vv, ps) l -> (i, vr, vv, ps) :: l) a.x_votes []
        in
        let done_uids = Hashtbl.fold (fun uid () l -> uid :: l) a.x_done_uids [] in
        Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(cidx).x_proc
          ~size:(hdr + (List.length votes * 24) + (List.length done_uids * 8))
          (P1b { rnd; acc = a.x_idx; floor = a.x_gc_floor; votes; done_uids })
      end
  | P1b { rnd; acc = _; floor; votes; done_uids } ->
      if a.x_is_coord && rnd = a.c_rnd && not a.c_phase1_ok then begin
        if floor > a.c_next_inst then a.c_next_inst <- floor;
        (* Decided-and-pruned items exist only as uids now; without them a
           promoted spare would happily re-order a resubmission of an item
           every learner already applied.  Any Phase-1 majority contains a
           ring member of every earlier epoch (quorum intersection), so
           merging each reply's pruned uids covers all such items.  They
           also go into [x_done_uids] so a later planned handoff (which
           transfers that table to the next coordinator) carries them on. *)
        List.iter
          (fun uid ->
            Hashtbl.replace a.c_seen_uids uid ();
            Hashtbl.replace a.x_done_uids uid ())
          done_uids;
        List.iter
          (fun (inst, vrnd, vval, parts) ->
            match Hashtbl.find_opt a.c_claimed inst with
            | Some (r, _, _) when r >= vrnd -> ()
            | _ -> Hashtbl.replace a.c_claimed inst (vrnd, vval, parts))
          votes;
        a.c_p1b <- a.c_p1b + 1;
        (* Counting its own state, the coordinator needs [n/2] more replies
           for a majority of the n-acceptor pool.  Retired acceptors stay in
           the pool and keep answering Phase 1 — quorums taken before and
           after a reconfiguration therefore always intersect. *)
        if a.c_p1b >= Array.length t.accs / 2 then begin
          a.c_phase1_ok <- true;
          (* The claimed votes of a majority cover every decided value
             (quorum intersection), so marking their uids seen stops a
             proposer resubmission from re-deciding an item under a second
             instance.  Undecided claimed values are replayed by [drain]
             below, so suppressing their resubmission loses nothing. *)
          Hashtbl.iter
            (fun _ ((_, v, _) : int * Paxos.Value.t * int list) ->
              List.iter
                (fun it -> Hashtbl.replace a.c_seen_uids it.Paxos.Value.uid ())
                v.items)
            a.c_claimed;
          (* Replay proposals buffered during Phase 1, in arrival order. *)
          while not (Queue.is_empty a.c_preq) do
            let item, parts = Queue.pop a.c_preq in
            match item.Paxos.Value.app with
            | ReconfigCmd _ -> coord_propose_reconfig t a item
            | _ -> ignore (coord_admit a item parts)
          done;
          drain t a
        end
      end
  | P2a { inst; rnd; value; parts } -> if not a.x_is_coord then acc_on_p2a t a inst rnd value parts
  | P2b { inst; rnd; vid } -> acc_on_p2b t a inst rnd vid
  | Decision { inst; vid; parts; uids = _ } ->
      if inst > a.x_max_dec then a.x_max_dec <- inst;
      if not a.x_is_coord then Hashtbl.replace a.x_decided inst (vid, parts)
  | SlowDown _ as sd ->
      (* Forward along the ring until the coordinator reacts. *)
      if a.x_is_coord then fc_slow_down t a
      else begin
        match successor a.x_ring a.x_idx with
        | Some next -> Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(next).x_proc ~size:hdr sd
        | None -> ()
      end
  | Version { learner; version } ->
      (* Tell the learner how far decisions actually reach, so a learner
         that lost the tail of the decision stream discovers the gap and
         repairs it through its normal targeted requests. *)
      if
        version <= a.x_max_dec && learner >= 0
        && learner < Array.length t.lrns
        && t.lrns.(learner).l_active
      then
        Simnet.send t.net ~src:a.x_proc ~dst:t.lrns.(learner).l_proc ~size:hdr
          (MaxDec { upto = a.x_max_dec });
      if a.x_is_coord then coord_on_version t a learner version
      else begin
        match successor a.x_ring a.x_idx with
        | Some next ->
            Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(next).x_proc ~size:hdr
              (Version { learner; version })
        | None -> ()
      end
  | Gc { floor } -> (
      acc_gc t a floor;
      (* The prefix below the advancing floor was applied by f+1 learners
         and will never be repaired again: a catching-up joiner skips it. *)
      match a.x_catchup with
      | Some cu ->
          Od.fast_forward cu.cu_od (Stdlib.min floor cu.cu_upto);
          catchup_pump t a
      | None -> ())
  | RetransReq { inst; count; learner } -> begin
      (* learner >= 0: a learner asks for decided values in a range;
         learner < 0 encodes an acceptor asking for a lost Phase 2A. *)
      if learner < 0 then begin
        match Hashtbl.find_opt a.x_votes inst with
        | Some (_, v, ps) ->
            Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(-1 - learner).x_proc
              ~size:(v.size + hdr)
              (Retrans { inst; value = v; parts = ps })
        | None -> ()
      end
      else ignore count
    end
  | RepairReq { insts; learner; fwd } -> begin
      (* Serve every decided instance this acceptor knows; forward the rest
         (ring member -> coordinator -> an out-of-ring acceptor, which may
         still hold history the ring has garbage collected).  [fwd] bounds
         the forwarding chain so a request for an instance nobody holds
         cannot circulate forever; the requester's repair cycle re-asks. *)
      let reply_dst =
        if learner >= 0 then t.lrns.(learner).l_proc else t.accs.(-1 - learner).x_proc
      in
      let missing = ref [] in
      List.iter
        (fun i ->
          (* Only genuinely decided instances may be served: a vote — even
             the coordinator's own — can still lose its instance to a
             takeover (the proposal multicast lost, the voter crashed), and
             a repair response is taken as a decision by the requester. *)
          let decided = Hashtbl.mem a.x_decided i in
          match Hashtbl.find_opt a.x_votes i with
          | Some (_, v, ps) when decided ->
              Simnet.send t.net ~src:a.x_proc ~dst:reply_dst ~size:(v.size + hdr)
                (Retrans { inst = i; value = v; parts = ps })
          | _ -> missing := i :: !missing)
        insts;
      if !missing <> [] && fwd < 2 then begin
        let fwd_to b =
          Simnet.send t.net ~src:a.x_proc ~dst:b.x_proc ~size:hdr
            (RepairReq { insts = List.rev !missing; learner; fwd = fwd + 1 })
        in
        let in_ring = List.mem a.x_idx (ring_of t) in
        if a.x_is_coord then begin
          (* The coordinator lacking the value: try an acceptor outside the
             ring (a spare or a retired member of a previous epoch). *)
          match
            Array.fold_left
              (fun acc b ->
                if
                  acc = None && b.x_idx <> a.x_idx
                  && (not (List.mem b.x_idx (ring_of t)))
                  && Simnet.is_alive b.x_proc
                then Some b
                else acc)
              None t.accs
          with
          | Some b -> fwd_to b
          | None -> ()
        end
        else if in_ring then begin
          match coord_opt t with
          | Some c when c.x_idx <> a.x_idx -> fwd_to c
          | _ -> ()
        end
      end
    end
  | Retrans { inst; value; parts } -> begin
      match a.x_catchup with
      | Some cu when inst < cu.cu_upto ->
          (* Catch-up import: store the decided prefix directly — the
             instance is already decided, so no vote is re-forwarded along
             the ring. *)
          if not (Hashtbl.mem a.x_votes inst) then begin
            Hashtbl.replace a.x_votes inst (a.x_rnd, value, parts);
            Hashtbl.replace a.x_durable inst true;
            acc_update_mem a
          end;
          if not (Hashtbl.mem a.x_decided inst) then
            Hashtbl.replace a.x_decided inst (value.Paxos.Value.vid, parts);
          if inst > a.x_max_dec then a.x_max_dec <- inst;
          ignore (Od.offer cu.cu_od ~inst ());
          catchup_pump t a
      | _ ->
          (* An acceptor recovering a lost Phase 2A. *)
          acc_on_p2a t a inst a.x_rnd value parts;
          acc_try_forward t a inst
    end
  | Hb { acc = _; epoch } -> (
      match t.fd with
      | Some fd -> Protocol.Failure_detector.heartbeat ~epoch fd a.x_idx
      | None -> ())
  | _ -> ()

let lrn_handler t l (m : Simnet.msg) =
  match m.payload with
  | P2a { inst; rnd = _; value; parts = _ } -> lrn_on_p2a t l inst value
  | Decision { inst; vid; parts; uids = _ } -> lrn_on_decision t l inst vid parts
  | Retrans { inst; value; parts } ->
      (* A repair response supplies both the decision and the value. *)
      Hashtbl.replace l.l_vals value.Paxos.Value.vid value;
      Od.note_max l.l_od inst;
      if Od.offer l.l_od ~inst (value.vid, parts) then
        trace t (fun tr ->
            Trace.abegin tr ~pid:(Simnet.pid l.l_proc) ~cat:"ordering" ~name:"deliver-wait"
              ~id:((inst * 256) + l.l_idx) ~ts:(Simnet.now t.net));
      lrn_drain t l
  | Gc { floor } ->
      Od.drop_below l.l_od (Stdlib.min floor (Od.next l.l_od))
  | MaxDec { upto } ->
      if upto > Od.max_seen l.l_od then begin
        Od.note_max l.l_od upto;
        lrn_drain t l;
        repair_cycle t l
      end
  | NewCoord _ -> ()
  | _ -> ()

let prop_handler t p (m : Simnet.msg) =
  match m.payload with
  | Decision { uids; _ } ->
      List.iter
        (fun uid ->
          match Retry.ack p.p_pending uid with
          | Some (it, _) -> p.p_unacked_bytes <- p.p_unacked_bytes - it.Paxos.Value.isize
          | None -> ())
        uids
  | NewCoord { acc } ->
      (* Resubmit everything not yet acknowledged to the new coordinator. *)
      Retry.iter p.p_pending (fun uid (it, parts) ->
          Retry.touch p.p_pending ~now:(Simnet.now t.net) uid;
          Simnet.send t.net ~src:p.p_proc ~dst:t.accs.(acc).x_proc
            ~size:(it.Paxos.Value.isize + hdr)
            (Propose { item = it; parts }))
  | _ -> ()

(* --- construction --------------------------------------------------------- *)

let create ?speculative ?learner_nodes net cfg ~n_proposers ~n_learners ~learner_parts
    ~deliver =
  let n_acc = n_acceptors cfg in
  let mk_proc role i =
    let node = Simnet.add_node net (Printf.sprintf "mr-%s%d" role i) in
    Simnet.add_proc net node (Printf.sprintf "mr-%s%d" role i)
  in
  let mk_lrn_proc i =
    match learner_nodes with
    | Some nodes when i < Array.length nodes ->
        Simnet.add_proc net nodes.(i) (Printf.sprintf "mr-lrn%d" i)
    | _ -> mk_proc "lrn" i
  in
  let accs =
    Array.init n_acc (fun i ->
        let proc = mk_proc "acc" i in
        let disk =
          match cfg.durability with
          | Memory -> None
          | Sync_disk | Async_disk ->
              Some (Storage.Disk.create (Simnet.engine net) (Printf.sprintf "disk%d" i))
        in
        { x_proc = proc;
          x_idx = i;
          x_rnd = 0;
          x_ring = [];
          x_is_coord = false;
          x_retired = false;
          x_catchup = None;
          x_votes = Hashtbl.create 4096;
          x_decided = Hashtbl.create 4096;
          x_durable = Hashtbl.create 4096;
          x_held = Hashtbl.create 64;
          x_disk = disk;
          x_done_uids = Hashtbl.create 4096;
          x_mem = 0;
          x_gc_floor = 0;
          x_max_dec = -1;
          c_rnd = 0;
          c_phase1_ok = false;
          c_p1b = 0;
          c_claimed = Hashtbl.create 64;
          c_next_inst = 0;
          c_outstanding = 0;
          c_batch = Batcher.create ~buffer_bytes:cfg.buffer_bytes ~batch_bytes:cfg.batch_bytes ();
          c_insts = Retry.tracker ();
          c_window = cfg.window;
          c_decided = 0;
          c_versions = Hashtbl.create 16;
          c_gc_floor = 0;
          c_seen_uids = Hashtbl.create 4096;
          c_preq = Queue.create ();
          c_rate_window = 0.0;
          c_rate_bits = 0.0;
          c_rate_timer = false;
          c_rate_limit = cfg.send_rate;
          c_rc_fill = -1 })
  in
  let lrns =
    Array.init n_learners (fun i ->
        { l_proc = mk_lrn_proc i;
          l_idx = i;
          l_parts = learner_parts i;
          l_od = Od.create ();
          l_vals = Hashtbl.create 4096;
          l_delay = 0.0;
          l_sink = Od.sink ();
          l_fc_sent = false;
          l_repair = Od.repairer ();
          l_active = true })
  in
  let props =
    Array.init n_proposers (fun i ->
        { p_proc = mk_proc "prop" i;
          p_idx = i;
          p_pending = Retry.tracker ();
          p_unacked_bytes = 0;
          p_buffer = cfg.proposer_buffer })
  in
  (* Initial ring: acceptors 0..f-1 then f as coordinator. *)
  let ring = List.init (cfg.f + 1) Fun.id in
  let coord_idx = cfg.f in
  let part_groups =
    Array.init (Stdlib.max 1 cfg.partitions) (fun p ->
        Simnet.new_group net (Printf.sprintf "part%d" p))
  in
  let dec_group = Simnet.new_group net "decision" in
  (* In-ring acceptors subscribe everywhere; learners to their partitions. *)
  Array.iter
    (fun a ->
      if List.mem a.x_idx ring then begin
        Array.iter (fun g -> Simnet.join g a.x_proc) part_groups;
        Simnet.join dec_group a.x_proc
      end)
    accs;
  Array.iter
    (fun l ->
      List.iter
        (fun p -> if p < Array.length part_groups then Simnet.join part_groups.(p) l.l_proc)
        l.l_parts;
      Simnet.join dec_group l.l_proc)
    lrns;
  Array.iter (fun p -> Simnet.join dec_group p.p_proc) props;
  let t =
    { net; cfg; ctrs = Protocol.Counters.create (); accs; lrns; props; part_groups;
      dec_group; deliver; speculative; fd = None; next_uid = 0; next_vid = 0;
      cur_ring = ring; epoch = 0; rc = None; done_rc_uids = Hashtbl.create 16 }
  in
  Array.iter
    (fun a ->
      a.x_ring <- ring;
      a.x_is_coord <- a.x_idx = coord_idx;
      Simnet.set_handler a.x_proc (acc_handler t a))
    accs;
  Array.iter
    (fun l ->
      Simnet.set_handler l.l_proc (lrn_handler t l);
      version_reports t l)
    lrns;
  Array.iter
    (fun p ->
      Simnet.set_handler p.p_proc (prop_handler t p);
      prop_resubmission t p)
    props;
  failure_detection t;
  fc_recovery t;
  p2a_retransmission t;
  start_phase1 t accs.(coord_idx);
  t

let submit t ~proposer ?(parts = [ 0 ]) ~size app =
  let p = t.props.(proposer) in
  if p.p_unacked_bytes + size > p.p_buffer then -1
  else begin
    t.next_uid <- t.next_uid + 1;
    let uid = Paxos.Value.make_uid ~seq:t.next_uid ~origin:proposer in
    let item = { Paxos.Value.uid; isize = size; app; born = Simnet.now t.net } in
    Retry.watch p.p_pending ~now:(Simnet.now t.net) uid (item, parts);
    p.p_unacked_bytes <- p.p_unacked_bytes + size;
    (match coord_opt t with
    | Some c ->
        Simnet.send t.net ~src:p.p_proc ~dst:c.x_proc ~size:(size + hdr) (Propose { item; parts })
    | None -> () (* resubmitted when a NewCoord announcement arrives *));
    uid
  end

let coordinator_proc t =
  match coord_opt t with
  | Some c -> c.x_proc
  | None -> t.accs.(List.hd (List.rev t.cur_ring)).x_proc
let acceptor_procs t = Array.map (fun a -> a.x_proc) t.accs
let learner_proc t i = t.lrns.(i).l_proc
let proposer_proc t i = t.props.(i).p_proc
let ring_size t = List.length (ring_of t)

let kill_coordinator t =
  match coord_opt t with Some c -> Simnet.kill t.net c.x_proc | None -> ()

(* Crash-recovery model (§3.3.5): a crash loses everything not on stable
   storage.  With [Memory] durability the acceptor restarts empty (safe only
   under the majority-never-fails assumption); with the disk modes its
   promises and votes survive and are reloaded before it rejoins. *)
let crash_acceptor t idx =
  let a = t.accs.(idx) in
  Simnet.kill t.net a.x_proc;
  Hashtbl.reset a.x_held;
  Hashtbl.reset a.c_claimed;
  Retry.clear a.c_insts;
  Batcher.clear a.c_batch;
  (* [c_seen_uids] is volatile: keeping it across a restart would suppress
     resubmissions of items that died with the cleared batch.  A later
     Phase 1 re-seeds it from claimed votes before proposals are admitted. *)
  Hashtbl.reset a.c_seen_uids;
  Queue.clear a.c_preq;
  a.c_phase1_ok <- false;
  a.c_outstanding <- 0;
  a.c_rc_fill <- -1;
  cancel_catchup a;
  if t.cfg.durability = Memory then begin
    Hashtbl.reset a.x_votes;
    Hashtbl.reset a.x_decided;
    Hashtbl.reset a.x_durable;
    Hashtbl.reset a.x_done_uids;
    a.x_rnd <- 0;
    acc_update_mem a
  end

let restart_acceptor t idx =
  let a = t.accs.(idx) in
  match (t.cfg.durability, a.x_disk) with
  | Memory, _ | _, None -> Simnet.recover t.net a.x_proc
  | _, Some d ->
      (* Reload the persisted state before rejoining. *)
      let bytes = Stdlib.max (64 * 1024) a.x_mem in
      let dur = float_of_int bytes *. 8.0 /. (Storage.Disk.config d).bandwidth in
      ignore (Simnet.after t.net dur (fun () -> Simnet.recover t.net a.x_proc))

let kill_ring_acceptor t pos =
  let ring = ring_of t in
  let idx = List.nth ring pos in
  Simnet.kill t.net t.accs.(idx).x_proc

let set_learner_delay t i d = t.lrns.(i).l_delay <- d

let learner_pending t i = Od.sink_length t.lrns.(i).l_sink

let decided t = Array.fold_left (fun acc a -> acc + a.c_decided) 0 t.accs

let current_window t =
  match coord_opt t with Some c -> c.c_window | None -> 0

let coord_drops t =
  Array.fold_left (fun acc a -> acc + Batcher.drops a.c_batch) 0 t.accs

let debug_dump t =
  (match coord_opt t with
  | Some c ->
      Printf.printf "  coord=acc%d outst=%d insts=%d pend=%dB decided=%d rate_bits=%.0f\n"
        c.x_idx c.c_outstanding
        (Retry.length c.c_insts)
        (Batcher.pending_bytes c.c_batch)
        c.c_decided c.c_rate_bits
  | None -> Printf.printf "  no coord\n");
  Array.iter
    (fun a ->
      if not a.x_is_coord && List.mem a.x_idx t.cur_ring then
        Printf.printf "  acc%d votes=%d held=%d rnd=%d\n" a.x_idx (Hashtbl.length a.x_votes)
          (Hashtbl.length a.x_held) a.x_rnd)
    t.accs;
  Array.iter
    (fun l ->
      let od = l.l_od in
      Printf.printf "  lrn%d next=%d dec=%d vals=%d queue=%d maxdec=%d repair=%b has_dec_next=%b\n"
        l.l_idx (Od.next od) (Od.size od)
        (Hashtbl.length l.l_vals)
        (Od.sink_length l.l_sink)
        (Od.max_seen od) (Od.repairing l.l_repair)
        (Od.has od (Od.next od)))
    t.lrns

let disk t pos =
  let ring = ring_of t in
  if pos < List.length ring then t.accs.(List.nth ring pos).x_disk else None

(* --- dynamic membership --------------------------------------------------- *)

let epoch t = t.epoch
let membership t = t.cur_ring
let reconfiguring t = t.rc <> None
let catching_up t idx = t.accs.(idx).x_catchup <> None
let learner_active t i = t.lrns.(i).l_active

(* Grow the acceptor pool with a fresh spare.  It answers Phase 1 and
   repair traffic immediately but joins no ring (and no multicast group)
   until a reconfiguration elects it. *)
let add_acceptor t =
  let i = Array.length t.accs in
  let node = Simnet.add_node t.net (Printf.sprintf "mr-acc%d" i) in
  let proc = Simnet.add_proc t.net node (Printf.sprintf "mr-acc%d" i) in
  let disk =
    match t.cfg.durability with
    | Memory -> None
    | Sync_disk | Async_disk ->
        Some (Storage.Disk.create (Simnet.engine t.net) (Printf.sprintf "disk%d" i))
  in
  let a =
    { x_proc = proc;
      x_idx = i;
      x_rnd = 0;
      x_ring = t.cur_ring;
      x_is_coord = false;
      x_retired = false;
      x_catchup = None;
      x_votes = Hashtbl.create 4096;
      x_decided = Hashtbl.create 4096;
      x_durable = Hashtbl.create 4096;
      x_held = Hashtbl.create 64;
      x_disk = disk;
      x_done_uids = Hashtbl.create 4096;
      x_mem = 0;
      x_gc_floor = 0;
      x_max_dec = -1;
      c_rnd = 0;
      c_phase1_ok = false;
      c_p1b = 0;
      c_claimed = Hashtbl.create 64;
      c_next_inst = 0;
      c_outstanding = 0;
      c_batch =
        Batcher.create ~buffer_bytes:t.cfg.buffer_bytes ~batch_bytes:t.cfg.batch_bytes ();
      c_insts = Retry.tracker ();
      c_window = t.cfg.window;
      c_decided = 0;
      c_versions = Hashtbl.create 16;
      c_gc_floor = 0;
      c_seen_uids = Hashtbl.create 4096;
      c_preq = Queue.create ();
      c_rate_window = 0.0;
      c_rate_bits = 0.0;
      c_rate_timer = false;
      c_rate_limit = t.cfg.send_rate;
      c_rc_fill = -1 }
  in
  t.accs <- Array.append t.accs [| a |];
  Simnet.set_handler proc (acc_handler t a);
  i

(* Create an inactive learner: it joins no group and reports no version
   until a reconfiguration naming it in [add_learners] activates, at which
   point it starts delivering exactly from the activation instance. *)
let stage_learner t ~parts =
  let i = Array.length t.lrns in
  let node = Simnet.add_node t.net (Printf.sprintf "mr-lrn%d" i) in
  let proc = Simnet.add_proc t.net node (Printf.sprintf "mr-lrn%d" i) in
  let l =
    { l_proc = proc;
      l_idx = i;
      l_parts = parts;
      l_od = Od.create ();
      l_vals = Hashtbl.create 4096;
      l_delay = 0.0;
      l_sink = Od.sink ();
      l_fc_sent = false;
      l_repair = Od.repairer ();
      l_active = false }
  in
  t.lrns <- Array.append t.lrns [| l |];
  Simnet.set_handler proc (lrn_handler t l);
  version_reports t l;
  i

(* Submit a membership change as an ordinary proposal (through proposer 0's
   resubmission machinery, so a coordinator crash cannot lose it).  The new
   ring lists acceptor indexes with the coordinator last.  Validation only
   checks what would break safety or liveness outright; everything else —
   timing, failover interleavings, competing commands — is resolved by the
   log order. *)
let reconfigure t ?(add_learners = []) ?(remove_learners = []) ?(retire = []) ~ring () =
  let n = Array.length t.accs in
  let valid_acc i = i >= 0 && i < n && not t.accs.(i).x_retired in
  if ring = [] then invalid_arg "Mring.reconfigure: empty ring";
  if not (List.for_all valid_acc ring) then
    invalid_arg "Mring.reconfigure: ring member out of range or retired";
  if List.length (List.sort_uniq compare ring) <> List.length ring then
    invalid_arg "Mring.reconfigure: duplicate ring member";
  if not (List.for_all valid_acc retire) then
    invalid_arg "Mring.reconfigure: retiree out of range or already retired";
  if List.exists (fun i -> List.mem i ring) retire then
    invalid_arg "Mring.reconfigure: cannot retire a member of the new ring";
  (* Decisions carry all ring votes; any Phase-1 majority of the pool must
     claim every decided value, so the ring must intersect every majority:
     |ring| + majority > n. *)
  let majority = (n / 2) + 1 in
  if List.length ring < n - majority + 1 then
    invalid_arg "Mring.reconfigure: ring too small for quorum intersection";
  let valid_lrn i = i >= 0 && i < Array.length t.lrns in
  if not (List.for_all valid_lrn add_learners) then
    invalid_arg "Mring.reconfigure: added learner out of range";
  if not (List.for_all valid_lrn remove_learners) then
    invalid_arg "Mring.reconfigure: removed learner out of range";
  submit t ~proposer:0 ~parts:[ 0 ] ~size:64
    (ReconfigCmd { ring; add_lrns = add_learners; rm_lrns = remove_learners; retire })
