(** M-Ring Paxos — Algorithm 2 of the dissertation (multicast-based).

    A majority quorum of [f + 1] acceptors is arranged in a logical directed
    ring whose last process is the coordinator (itself an acceptor); the
    remaining [f] acceptors are spares.  Proposals reach the coordinator over
    reliable unicast; Phase 2A messages (value + unique value id) are
    ip-multicast to the in-ring acceptors and the learners; Phase 2B messages
    carry ids only and circulate along the ring; the final decision is a
    small ip-multicast of the chosen value's id.

    Implemented features from §3.3: batching into fixed-size packets,
    a window of overlapping instances, window-based flow control driven by
    learner slow-down notifications, garbage collection driven by learner
    versions, message-loss recovery through preferential acceptors,
    coordinator failure detection and ring reconfiguration with spares,
    synchronous/asynchronous disk durability (§3.5.5, Ch. 5), speculative
    delivery (Ch. 4) and state partitioning over multiple multicast groups
    (Ch. 4). *)

type t

type durability = Memory | Sync_disk | Async_disk

type config = {
  f : int;  (** tolerated acceptor failures; the ring has [f+1] members *)
  window : int;
  batch_bytes : int;
  batch_timeout : float;
  durability : durability;
  buffer_bytes : int;  (** circular proposal buffer (160 MB in §3.5.2) *)
  fc_threshold : int;  (** learner pending-decision threshold *)
  fc_recover_period : float;  (** window regrowth cadence *)
  hb_period : float;
  hb_timeout : float;
  retrans_timeout : float;
  gc_period : float;
  partitions : int;  (** multicast groups for state partitioning; 1 = plain *)
  send_rate : float;  (** coordinator Phase 2A pacing, bits per second *)
  reconfig_alpha : int;
      (** a membership change decided at instance [i] activates at
          [i + reconfig_alpha] — the activation lag of log-ordered
          reconfiguration *)
  proposer_buffer : int;
      (** per-proposer unacknowledged-bytes bound; {!submit} returns -1
          once exceeded (16 MB default).  Shrink it to force open-loop
          window-overflow drops in tests. *)
}

val default_config : config

(** [create net cfg ~n_proposers ~n_learners ~learner_parts ~deliver] builds
    the deployment.  [learner_parts i] lists the partitions learner [i]
    subscribes to (use [[0]] or [all] when [partitions = 1]).

    [learner_nodes] places learner processes on existing machines (used by
    Multi-Ring Paxos, whose learners subscribe to several rings from one
    machine and must share its NIC and CPU).

    [deliver ~learner ~inst v] fires in instance order at each learner;
    [v = None] marks an instance addressed only to partitions the learner
    does not subscribe to.  [speculative ~learner ~inst v] (optional) fires
    as soon as the learner ip-delivers the Phase 2A message, before the
    decision — Chapter 4's speculative delivery. *)
val create :
  ?speculative:(learner:int -> inst:int -> Paxos.Value.t -> unit) ->
  ?learner_nodes:Simnet.node array ->
  Simnet.t ->
  config ->
  n_proposers:int ->
  n_learners:int ->
  learner_parts:(int -> int list) ->
  deliver:(learner:int -> inst:int -> Paxos.Value.t option -> unit) ->
  t

(** [submit t ~proposer ?parts ~size app] proposes an application message to
    the given partitions (default [[0]]); returns the item uid, or [-1] if
    the proposal was dropped because the coordinator buffer is full. *)
val submit : t -> proposer:int -> ?parts:int list -> size:int -> Simnet.payload -> int

(** {1 Handles for failure injection and measurement} *)

val coordinator_proc : t -> Simnet.proc

(** All acceptor processes, in-ring first, then spares. *)
val acceptor_procs : t -> Simnet.proc array

val learner_proc : t -> int -> Simnet.proc
val proposer_proc : t -> int -> Simnet.proc
val ring_size : t -> int

val kill_coordinator : t -> unit
val kill_ring_acceptor : t -> int -> unit  (** by position, 0 = first *)

(** [crash_acceptor t i] crashes acceptor [i] (global index), losing every
    piece of state not on stable storage (§3.3.5): with [Memory] durability
    the acceptor is wiped; with the disk modes promises and votes survive. *)
val crash_acceptor : t -> int -> unit

(** [restart_acceptor t i] restarts a crashed acceptor, reloading its
    persisted state from disk first when durability is enabled. *)
val restart_acceptor : t -> int -> unit

(** Per-learner processing cost per delivered instance, seconds — used by
    the flow-control experiment to create a slow learner. *)
val set_learner_delay : t -> int -> float -> unit

(** Decisions learner [i] is holding, not yet processed (flow control). *)
val learner_pending : t -> int -> int

val decided : t -> int
val current_window : t -> int

(** Proposals dropped at the coordinator because its buffer overflowed. *)
val coord_drops : t -> int

(** Dump internal state to stdout (debugging aid). *)
val debug_dump : t -> unit

(** Protocol event counters accumulated since startup, per instance
    (sorted name/count pairs; see {!Protocol.Counters}). *)
val counters : t -> (string * int) list

(** Disk attached to acceptor position [i] of the ring (durable modes). *)
val disk : t -> int -> Storage.Disk.t option

(** {1 Dynamic membership}

    A membership change is an ordinary command ordered through the log:
    deciding it at instance [i] schedules its activation at
    [i + reconfig_alpha].  Until activation the coordinator caps its
    pipeline below the activation instance, fills any undecided holes with
    no-ops and waits for in-flight instances to drain, so the epoch
    boundary is a decided prefix — no delivery is lost or duplicated
    across it.  At activation the new ring is installed, removed members
    retire (they keep answering Phase 1 and repair requests, preserving
    quorum intersection), joining ring members replay the decided prefix
    in the background, added learners start delivering exactly at the
    activation instance, and the failure detector moves to the new epoch
    so suspicions from the old one cannot fire. *)

(** [add_acceptor t] grows the acceptor pool with a fresh spare and
    returns its global index.  The spare serves Phase 1 and repair
    traffic but joins no ring until a reconfiguration elects it. *)
val add_acceptor : t -> int

(** [stage_learner t ~parts] creates an inactive learner subscribed to
    [parts] and returns its index; it delivers nothing until a
    reconfiguration activates it. *)
val stage_learner : t -> parts:int list -> int

(** [reconfigure t ?add_learners ?remove_learners ?retire ~ring ()]
    submits a membership change: [ring] lists the new ring's acceptor
    indexes, coordinator last.  Returns the command's item uid ([-1] if
    the proposal buffer is full; the command is retried by the proposer's
    resubmission loop either way).  Raises [Invalid_argument] when [ring]
    is empty, repeats a member, names a retired or out-of-range acceptor,
    retires a member of the new ring, or is too small to intersect every
    Phase-1 majority of the pool. *)
val reconfigure :
  t ->
  ?add_learners:int list ->
  ?remove_learners:int list ->
  ?retire:int list ->
  ring:int list ->
  unit ->
  int

(** The current membership epoch (0 at creation, +1 per activation). *)
val epoch : t -> int

(** The current ring, coordinator last. *)
val membership : t -> int list

(** A membership change is pending (proposed or decided, not yet active). *)
val reconfiguring : t -> bool

(** Acceptor [i] is still replaying the decided prefix of the epoch it
    joined in. *)
val catching_up : t -> int -> bool

(** Learner [i] delivers (inactive learners are staged or removed). *)
val learner_active : t -> int -> bool
