(** Deterministic, seeded fault injection over {!Simnet}.

    An injector owns the network's fault tap and two private random
    streams split from its seed: one rolls the per-message dice, the
    other is handed to scenario code to draw the fault schedule
    ({!sched_rng}).  Equal seeds therefore replay the exact same fault
    timeline, message for message, which is what makes a chaos failure
    reproducible from its seed alone.

    Faults compose in a fixed precedence: a severed link ({!cut},
    {!partition}) always drops; otherwise the first active matching rule
    rolls drop, then duplicate, then jitter.  Crash/recover of protocol
    processes stays protocol-specific — schedule it with {!at} and
    record it with {!note} so it appears in the event log. *)

type t

(** [create net ~seed] installs the tap on [net]. *)
val create : Simnet.t -> seed:int -> t

(** Detach the tap; scheduled rule activations become inert. *)
val remove : t -> unit

(** The schedule stream: scenario code draws fault times, victims and
    probabilities from it (never from the network's own rng). *)
val sched_rng : t -> Sim.Rng.t

(** [at t time f] runs [f] at absolute simulation time [time]. *)
val at : t -> float -> (unit -> unit) -> unit

(** Append a labelled entry to the event log at the current time. *)
val note : t -> string -> unit

(** Timestamped fault events in chronological order. *)
val events : t -> (float * string) list

(** Messages dropped because of a cut link or a drop rule. *)
val drops : t -> int

(** {1 Link cuts and partitions} *)

(** [cut t ~src ~dst] severs the directed link (pids); reference
    counted, so overlapping partitions compose. *)
val cut : t -> src:int -> dst:int -> unit

val heal : t -> src:int -> dst:int -> unit

(** [partition t ~at ~dur ~sym ~group_a ~group_b label] cuts every
    [group_a]→[group_b] link at [at] (both directions when [sym],
    default) and heals them [dur] later. *)
val partition :
  t ->
  at:float ->
  dur:float ->
  ?sym:bool ->
  group_a:int list ->
  group_b:int list ->
  string ->
  unit

(** {1 Probabilistic link chaos} *)

(** [rule t ~at ~dur ?drop ?dup ?jitter ~applies label] activates, for
    [dur] seconds starting at [at], a rule that for each matching
    (message, destination): drops with probability [drop], else
    duplicates with probability [dup] (the copy lags by a uniform draw
    in [0, jitter]), else delays by a uniform draw in [0, jitter].
    Multicast deliveries are matched with [msg.dst = -1]. *)
val rule :
  t ->
  at:float ->
  dur:float ->
  ?drop:float ->
  ?dup:float ->
  ?jitter:float ->
  applies:(Simnet.msg -> dst:Simnet.proc -> bool) ->
  string ->
  unit

(** [custom t ~at ~dur ~decide label] activates an arbitrary verdict
    function for the window — e.g. a per-link constant delay, which
    (unlike [rule]'s per-message jitter) preserves TCP FIFO order. *)
val custom :
  t ->
  at:float ->
  dur:float ->
  decide:(Simnet.msg -> dst:Simnet.proc -> Simnet.fault) ->
  string ->
  unit

(** {1 Slow-CPU episodes} *)

(** [slow_cpu t ~at ~dur ~factor node] multiplies the node's CPU cost
    factor by [factor] for [dur] seconds, then restores it. *)
val slow_cpu : t -> at:float -> dur:float -> factor:float -> Simnet.node -> unit
