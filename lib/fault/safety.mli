(** Continuous atomic-broadcast safety auditor.

    One auditor taps the delivery stream of every learner of a protocol
    under chaos.  Each delivery is checked incrementally (O(1)):

    - {e no-creation}: the uid was broadcast;
    - {e no-duplication}: the learner has not delivered it before;
    - {e total order / agreement prefix}: learner [l]'s k-th delivery
      must equal the k-th entry of the canonical sequence (extended by
      whichever learner gets there first).

    The prefix check assumes learners deliver {e gap-free identical
    streams} — true for every protocol wired into the chaos harness,
    whose learners all subscribe to the full message stream.  The final
    {!verdict} additionally runs the general pairwise oracles of
    {!Abcast.Properties} over the complete logs, so the incremental
    shortcut never stands alone. *)

type t

val create : name:string -> n_learners:int -> t

(** Record an accepted broadcast of an application-level uid. *)
val broadcast : t -> int -> unit

(** Record a delivery; incremental invariant checks run immediately. *)
val delivered : t -> learner:int -> int -> unit

val broadcast_count : t -> int

(** Per-learner delivery counts. *)
val delivered_counts : t -> int array

type verdict = {
  ok : bool;
  violations : string list;  (** capped at 20, oldest first *)
  broadcast : int;
  delivered : int array;
}

(** [verdict ?alive ?agreement t] re-checks the complete logs with
    {!Abcast.Properties.integrity} and {!Abcast.Properties.total_order};
    when [agreement] (default [true]), uniform agreement at quiescence is
    checked across the learners listed in [alive] (default: all). *)
val verdict : ?alive:int list -> ?agreement:bool -> t -> verdict
