(** Seeded chaos scenarios: one deterministic fault schedule per
    (protocol, seed) pair, audited by {!Safety} (atomic-broadcast
    invariants) or {!Smr.Linearizability} (the [smr] scenario).

    Each scenario matches the faults it injects to the protocol's fault
    model (see CORRECTNESS.md, "Fault matrix"): M-Ring sees acceptor
    crashes (with restart under durable modes), learner partitions,
    multicast drop/duplicate/jitter and slow CPUs; U-Ring, whose model
    excludes message loss, sees fail-stop position kills, link lag and
    slow CPUs; and so on.  Load always stops at 60 % of the run and all
    faults heal by 80 %, leaving a quiescence window in which uniform
    agreement must be restored.

    Re-running a (protocol, seed) pair replays the identical fault
    timeline — the seed is the repro. *)

type outcome = {
  protocol : string;
  seed : int;
  ok : bool;
  summary : string;  (** counts fragment for the verdict line *)
  violations : string list;
  events : (float * string) list;  (** the fault timeline *)
}

(** Scenario names accepted by {!run_one}: ["mring"; "mring-pressure";
    "mring-reconfig"; "mring-join"; "uring"; "multiring";
    "multiring-reconfig"; "spaxos"; "lcr"; "smr"; "kv-lease"].
    ["kv-lease"] runs the replicated KV service with its lease read tier
    under chaos — a lease-holding replica partitioned mid-lease, a window
    where revocation acknowledgements are lost (forcing the lease-expiry
    deadline path), multicast chaos over the log — and layers
    {!Smr.Linearizability.Kv} (local reads included), replica-state
    convergence and write-response drain checks on top of the
    atomic-broadcast auditor.  The reconfiguration
    scenarios exercise dynamic membership: ["mring-reconfig"] retires a
    founding member and crashes the founding coordinator inside the
    handoff window, then elects the newcomer while activating a staged
    learner; ["mring-join"] partitions a joining acceptor mid-catch-up
    under multicast drop/dup/jitter; ["multiring-reconfig"] swaps one
    ring's coordinator under the deterministic merge (crashing it
    mid-handoff on odd seeds). *)
val protocols : string list

(** [run_one ~protocol ~seed ~duration ()] builds a fresh simulation,
    runs the scenario and returns its verdict.
    @raise Invalid_argument on an unknown protocol name. *)
val run_one : protocol:string -> seed:int -> duration:float -> unit -> outcome

(** [run_all ~protocols ~seeds ~duration ()] runs seeds [0..seeds-1] for
    each protocol, prints one verdict line per run and a final summary;
    returns the number of failed runs. *)
val run_all : protocols:string list -> seeds:int -> duration:float -> unit -> int
