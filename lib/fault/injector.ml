type rule = {
  mutable active : bool;
  decide : Sim.Rng.t -> Simnet.msg -> dst:Simnet.proc -> Simnet.fault;
}

type t = {
  net : Simnet.t;
  dice : Sim.Rng.t;
  sched : Sim.Rng.t;
  (* Keyed by packed (src, dst) pid pair — 20 bits each, matching the
     simnet pid space — so the per-message cut lookup in [tap] hashes an
     immediate int instead of allocating a tuple. *)
  cuts : (int, int) Hashtbl.t;
  mutable rules : rule list;
  mutable log : (float * string) list;
  mutable r_drops : int;
}

let cut_key src dst = (src lsl 20) lor (dst land 0xFFFFF)

let note t label = t.log <- (Simnet.now t.net, label) :: t.log
let events t = List.rev t.log
let sched_rng t = t.sched
let drops t = t.r_drops

(* The tap rules on every (message, destination) pair.  A severed link
   wins over everything; otherwise the first active matching rule
   decides.  All dice come from [t.dice], never from the network's rng,
   so installing an injector does not perturb the simulation's own
   random sequence. *)
let tap t (m : Simnet.msg) ~dst =
  if Hashtbl.mem t.cuts (cut_key m.src (Simnet.pid dst)) then begin
    t.r_drops <- t.r_drops + 1;
    Simnet.Drop
  end
  else
    let rec first = function
      | [] -> Simnet.Deliver
      | r :: rest ->
          if r.active then
            match r.decide t.dice m ~dst with
            | Simnet.Deliver -> first rest
            | f ->
                (match f with Simnet.Drop -> t.r_drops <- t.r_drops + 1 | _ -> ());
                f
          else first rest
    in
    first t.rules

let create net ~seed =
  let root = Sim.Rng.create seed in
  let t =
    { net;
      dice = Sim.Rng.split root;
      sched = Sim.Rng.split root;
      cuts = Hashtbl.create 64;
      rules = [];
      log = [];
      r_drops = 0 }
  in
  Simnet.set_fault_tap net (Some (fun m ~dst -> tap t m ~dst));
  t

let remove t = Simnet.set_fault_tap t.net None

let at t time f = ignore (Sim.Engine.at (Simnet.engine t.net) ~time f)

(* --- link cuts ----------------------------------------------------------- *)

let cut t ~src ~dst =
  let k = cut_key src dst in
  let n = match Hashtbl.find_opt t.cuts k with Some n -> n | None -> 0 in
  Hashtbl.replace t.cuts k (n + 1)

let heal t ~src ~dst =
  let k = cut_key src dst in
  match Hashtbl.find_opt t.cuts k with
  | Some n when n > 1 -> Hashtbl.replace t.cuts k (n - 1)
  | Some _ -> Hashtbl.remove t.cuts k
  | None -> ()

let partition t ~at:t0 ~dur ?(sym = true) ~group_a ~group_b label =
  let each f =
    List.iter (fun a -> List.iter (fun b -> f a b) group_b) group_a
  in
  at t t0 (fun () ->
      note t (Printf.sprintf "partition(%s)" label);
      each (fun a b ->
          cut t ~src:a ~dst:b;
          if sym then cut t ~src:b ~dst:a));
  at t (t0 +. dur) (fun () ->
      note t (Printf.sprintf "heal(%s)" label);
      each (fun a b ->
          heal t ~src:a ~dst:b;
          if sym then heal t ~src:b ~dst:a))

(* --- windowed rules ------------------------------------------------------ *)

let add_window t ~at:t0 ~dur label decide =
  let r = { active = false; decide } in
  t.rules <- t.rules @ [ r ];
  at t t0 (fun () ->
      note t (Printf.sprintf "start(%s)" label);
      r.active <- true);
  at t (t0 +. dur) (fun () ->
      note t (Printf.sprintf "stop(%s)" label);
      r.active <- false)

let rule t ~at ~dur ?(drop = 0.0) ?(dup = 0.0) ?(jitter = 0.0) ~applies label =
  add_window t ~at ~dur label (fun dice m ~dst ->
      if not (applies m ~dst) then Simnet.Deliver
      else if drop > 0.0 && Sim.Rng.bool dice drop then Simnet.Drop
      else if dup > 0.0 && Sim.Rng.bool dice dup then
        Simnet.Duplicate (Sim.Rng.float dice (Float.max 1.0e-6 jitter))
      else if jitter > 0.0 then Simnet.Delay (Sim.Rng.float dice jitter)
      else Simnet.Deliver)

let custom t ~at ~dur ~decide label =
  add_window t ~at ~dur label (fun _dice m ~dst -> decide m ~dst)

(* --- slow-CPU episodes --------------------------------------------------- *)

let slow_cpu t ~at:t0 ~dur ~factor node =
  at t t0 (fun () ->
      let old = Simnet.node_cpu_factor node in
      note t (Printf.sprintf "slow_cpu(%s,x%.1f)" (Simnet.node_name node) factor);
      Simnet.set_cpu_factor node (old *. factor);
      at t (Simnet.now t.net +. dur) (fun () ->
          note t (Printf.sprintf "cpu_restore(%s)" (Simnet.node_name node));
          Simnet.set_cpu_factor node old))
