(* Chaos scenarios.  Each runner builds a fresh engine + network, wires a
   Safety auditor into the protocol's delivery callback using app-level
   command ids (uniform across protocols, independent of internal uids),
   draws a fault schedule from the injector's seeded rng, runs to the
   horizon and returns the verdict.  Determinism: creation order is fixed,
   the injector's dice never touch the network's rng, and every schedule
   draw comes from the injector's schedule stream. *)

type Simnet.payload += Cmd of int
type Simnet.payload += SmrCmd of { op_id : int; client : int; write : int option }

type outcome = {
  protocol : string;
  seed : int;
  ok : bool;
  summary : string;
  violations : string list;
  events : (float * string) list;
}

let protocols =
  [ "mring"; "mring-pressure"; "mring-reconfig"; "mring-join"; "uring"; "multiring";
    "multiring-reconfig"; "spaxos"; "lcr"; "smr"; "kv-lease" ]

let mk_env seed =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create (0x5EED0 + seed)) in
  (engine, net)

let cmd_ids (v : Paxos.Value.t) =
  List.filter_map
    (fun (it : Paxos.Value.item) -> match it.app with Cmd i -> Some i | _ -> None)
    v.items

(* Open-loop load: [submit] fires every [period] until [until]. *)
let drive net ~until ~period submit =
  let stop = Simnet.every net ~period (fun () -> if Simnet.now net < until then submit ()) in
  ignore (Simnet.after net (until +. period) (fun () -> stop ()))

let pick rng lo hi = lo +. Sim.Rng.float rng (hi -. lo)

(* Per-link constant extra delay: unlike per-message jitter this keeps
   TCP FIFO order within the episode, so it stays inside the fault model
   of the purely-unicast protocols. *)
let link_lag inj ~at ~dur ~max_lag label =
  let rng = Injector.sched_rng inj in
  let lags = Hashtbl.create 64 in
  Injector.custom inj ~at ~dur label ~decide:(fun (m : Simnet.msg) ~dst ->
      let k = (m.src, Simnet.pid dst) in
      let lag =
        match Hashtbl.find_opt lags k with
        | Some l -> l
        | None ->
            let l = Sim.Rng.float rng max_lag in
            Hashtbl.add lags k l;
            l
      in
      if lag > 0.0 then Simnet.Delay lag else Simnet.Deliver)

let mcast_only (m : Simnet.msg) ~dst:_ = m.dst = -1

let finish ~protocol ~seed ~(verdict : Safety.verdict) ~events ~extra =
  let delivered =
    String.concat ";" (Array.to_list (Array.map string_of_int verdict.delivered))
  in
  { protocol;
    seed;
    ok = verdict.ok;
    summary = Printf.sprintf "bcast=%d dlv=[%s]%s" verdict.broadcast delivered extra;
    violations = verdict.violations;
    events }

(* --- M-Ring Paxos --------------------------------------------------------- *)

(* Fault classes (all inside the §3.3 fault model): acceptor crash —
   coordinator included — with restart under Async_disk (seed parity picks
   the durability mode; Memory-mode crashes are fail-stop, §3.3.5),
   a learner partition healed before quiescence (exercises the §3.3.4
   retransmission protocol), multicast drop/duplicate/jitter, slow CPU. *)
let run_mring ~seed ~duration () =
  let _engine, net = mk_env seed in
  let durable = seed land 1 = 0 in
  let cfg =
    { Ringpaxos.Mring.default_config with
      f = 2;
      durability = (if durable then Ringpaxos.Mring.Async_disk else Ringpaxos.Mring.Memory) }
  in
  let aud = Safety.create ~name:"mring" ~n_learners:2 in
  let deliver ~learner ~inst:_ = function
    | Some v -> List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v)
    | None -> ()
  in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 257) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      if Ringpaxos.Mring.submit mr ~proposer:(id mod 2) ~size:256 (Cmd id) >= 0 then
        Safety.broadcast aud id);
  let t0 = 0.15 *. duration and t1 = 0.65 *. duration in
  (* 1. acceptor crash (any of the 2f+1, so sometimes the coordinator). *)
  let accs = Ringpaxos.Mring.acceptor_procs mr in
  let victim = Sim.Rng.int rng (Array.length accs) in
  let tc = pick rng t0 (0.45 *. duration) in
  Injector.at inj tc (fun () ->
      Injector.note inj (Printf.sprintf "crash(acc%d)" victim);
      Ringpaxos.Mring.crash_acceptor mr victim);
  if durable then begin
    let tr = tc +. pick rng (0.1 *. duration) (0.25 *. duration) in
    Injector.at inj tr (fun () ->
        Injector.note inj (Printf.sprintf "restart(acc%d)" victim);
        Ringpaxos.Mring.restart_acceptor mr victim)
  end;
  (* 2. multicast chaos episode. *)
  Injector.rule inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.2 0.5)
    ~drop:(pick rng 0.02 0.10)
    ~dup:0.02 ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  (* 3. partition one learner from everyone, then heal. *)
  let lp = Sim.Rng.int rng 2 in
  let lpid = Simnet.pid (Ringpaxos.Mring.learner_proc mr lp) in
  let rest =
    List.filter
      (fun p -> p <> lpid)
      (List.concat
         [ Array.to_list (Array.map Simnet.pid accs);
           List.init 2 (fun i -> Simnet.pid (Ringpaxos.Mring.learner_proc mr i));
           List.init 2 (fun i -> Simnet.pid (Ringpaxos.Mring.proposer_proc mr i)) ])
  in
  Injector.partition inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.15 0.35)
    ~group_a:[ lpid ] ~group_b:rest
    (Printf.sprintf "learner%d" lp);
  (* 4. slow CPU on the other learner's machine. *)
  Injector.slow_cpu inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.3 0.6)
    ~factor:(pick rng 2.0 4.0)
    (Simnet.proc_node (Ringpaxos.Mring.learner_proc mr (1 - lp)));
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  finish ~protocol:"mring" ~seed ~verdict ~events:(Injector.events inj)
    ~extra:(Printf.sprintf " drops=%d" (Injector.drops inj))

(* --- M-Ring under receive-buffer pressure --------------------------------- *)

(* Crash-recovery accounting scenario.  Small acceptor receive buffers and
   a real per-message service cost keep [rcvbuf_used] high, so an acceptor
   dies with bytes still in service and with P2b/heartbeat traffic queued
   on its outgoing connections.  Before the epoch guards landed in
   [Simnet], the stale decrements landing after [recover] drove the buffer
   gauge negative (masking overload drops from then on) and the crashed
   sender's connection backlog replayed into the ring.  The run checks the
   gauge invariant explicitly: at quiescence no acceptor's [rcvbuf_used]
   may be negative.  Durability is Async_disk unconditionally so every
   seed replays a crash + restart. *)
let run_mring_pressure ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg =
    { Ringpaxos.Mring.default_config with
      f = 2;
      durability = Ringpaxos.Mring.Async_disk }
  in
  let aud = Safety.create ~name:"mring-pressure" ~n_learners:2 in
  let deliver ~learner ~inst:_ = function
    | Some v -> List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v)
    | None -> ()
  in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver
  in
  let accs = Ringpaxos.Mring.acceptor_procs mr in
  Array.iter
    (fun p ->
      Simnet.set_rcvbuf p (64 * 1024);
      (Simnet.costs_of p).recv_per_msg <- 8.0e-5)
    accs;
  let inj = Injector.create net ~seed:((seed * 7919) + 263) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:2.5e-4 (fun () ->
      incr next;
      let id = !next in
      if Ringpaxos.Mring.submit mr ~proposer:(id mod 2) ~size:2048 (Cmd id) >= 0 then
        Safety.broadcast aud id);
  let victim = Sim.Rng.int rng (Array.length accs) in
  let tc = pick rng (0.15 *. duration) (0.45 *. duration) in
  (* Slow the victim's machine ahead of the crash so a service queue (and
     so a non-zero buffer gauge) is standing when the kill lands. *)
  Injector.slow_cpu inj
    ~at:(tc -. (0.1 *. duration))
    ~dur:(0.12 *. duration)
    ~factor:(pick rng 20.0 40.0)
    (Simnet.proc_node accs.(victim));
  Injector.at inj tc (fun () ->
      Injector.note inj (Printf.sprintf "crash(acc%d)" victim);
      Ringpaxos.Mring.crash_acceptor mr victim);
  let trs = tc +. pick rng (0.05 *. duration) (0.2 *. duration) in
  Injector.at inj trs (fun () ->
      Injector.note inj (Printf.sprintf "restart(acc%d)" victim);
      Ringpaxos.Mring.restart_acceptor mr victim);
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  let gauge_violations =
    Array.to_list accs
    |> List.mapi (fun i p -> (i, Simnet.rcvbuf_used p))
    |> List.filter (fun (_, used) -> used < 0)
    |> List.map (fun (i, used) ->
           Printf.sprintf "mring-pressure: rcvbuf gauge negative on acc%d (%d)" i used)
  in
  let o =
    finish ~protocol:"mring-pressure" ~seed ~verdict ~events:(Injector.events inj)
      ~extra:(Printf.sprintf " drops=%d" (Injector.drops inj))
  in
  { o with
    ok = o.ok && gauge_violations = [];
    violations = o.violations @ gauge_violations }

(* --- M-Ring dynamic reconfiguration ---------------------------------------- *)

(* Ring reconfiguration under chaos: grow the pool with a fresh acceptor
   and stage a fresh learner, then reconfigure twice mid-run — first to a
   ring of survivors led by a former spare (retiring one founding member),
   then to a ring containing the newcomer while activating the staged
   learner.  The founding coordinator is crashed a random instant after
   the first command is submitted, so across seeds the crash lands before
   the proposal, mid-drain, or just after activation — the
   kill-the-coordinator-mid-handoff race of the reconfiguration protocol.
   Multicast chaos overlaps the handoff window.  On top of the auditor's
   agreement/order checks the scenario asserts validity (both original
   learners deliver every accepted command by the horizon) and that at
   least one epoch activated. *)
let run_mring_reconfig ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg = { Ringpaxos.Mring.default_config with f = 2 } in
  let aud = Safety.create ~name:"mring-reconfig" ~n_learners:2 in
  let deliver ~learner ~inst:_ = function
    (* The learner added mid-run delivers only its epoch's suffix, so it
       stays outside the auditor's full-history agreement check. *)
    | Some v when learner < 2 ->
        List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v)
    | _ -> ()
  in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver
  in
  let joiner = Ringpaxos.Mring.add_acceptor mr in
  let new_lrn = Ringpaxos.Mring.stage_learner mr ~parts:[ 0 ] in
  let inj = Injector.create net ~seed:((seed * 7919) + 264) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      if Ringpaxos.Mring.submit mr ~proposer:(id mod 2) ~size:256 (Cmd id) >= 0 then
        Safety.broadcast aud id);
  (* Initial ring is [0; 1; 2] with acc2 coordinating; accs 3,4 are spares,
     [joiner] = 5 is the newcomer. *)
  let tr1 = pick rng (0.15 *. duration) (0.3 *. duration) in
  Injector.at inj tr1 (fun () ->
      Injector.note inj "reconfig1([1;4;3] -acc0)";
      ignore (Ringpaxos.Mring.reconfigure mr ~retire:[ 0 ] ~ring:[ 1; 4; 3 ] ()));
  (* Crash the founding coordinator somewhere inside the handoff window. *)
  Injector.at inj (tr1 +. pick rng 0.0 0.02) (fun () ->
      Injector.note inj "crash(acc2)";
      Ringpaxos.Mring.crash_acceptor mr 2);
  Injector.rule inj ~at:tr1 ~dur:(pick rng 0.2 0.4)
    ~drop:(pick rng 0.02 0.08)
    ~dup:0.02 ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  let tr2 = pick rng (0.45 *. duration) (0.55 *. duration) in
  Injector.at inj tr2 (fun () ->
      Injector.note inj "reconfig2([4;5;3] +lrn2)";
      ignore
        (Ringpaxos.Mring.reconfigure mr ~add_learners:[ new_lrn ]
           ~ring:[ 4; joiner; 3 ] ()));
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  let validity =
    List.concat_map
      (fun l ->
        if verdict.delivered.(l) <> verdict.broadcast then
          [ Printf.sprintf "mring-reconfig: learner %d delivered %d of %d accepted commands"
              l verdict.delivered.(l) verdict.broadcast ]
        else [])
      [ 0; 1 ]
  in
  let epochs =
    if Ringpaxos.Mring.epoch mr < 1 then
      [ Printf.sprintf "mring-reconfig: no epoch activated by the horizon (epoch=%d)"
          (Ringpaxos.Mring.epoch mr) ]
    else []
  in
  let o =
    finish ~protocol:"mring-reconfig" ~seed ~verdict ~events:(Injector.events inj)
      ~extra:
        (Printf.sprintf " epoch=%d ring=[%s]" (Ringpaxos.Mring.epoch mr)
           (String.concat ";" (List.map string_of_int (Ringpaxos.Mring.membership mr))))
  in
  { o with
    ok = o.ok && validity = [] && epochs = [];
    violations = o.violations @ validity @ epochs }

(* Joining-acceptor catch-up under chaos: a fresh acceptor is elected into
   the ring and must replay the decided prefix below the activation
   instance through gap repair — while a partition cuts it off mid-way
   (healed before the horizon) and multicast drop/dup/jitter corrupts the
   repair traffic itself.  Asserts that catch-up completes, an epoch
   activated, and both learners deliver every accepted command. *)
let run_mring_join ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg = { Ringpaxos.Mring.default_config with f = 1 } in
  let aud = Safety.create ~name:"mring-join" ~n_learners:2 in
  let deliver ~learner ~inst:_ = function
    | Some v -> List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v)
    | None -> ()
  in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver
  in
  let joiner = Ringpaxos.Mring.add_acceptor mr in
  let inj = Injector.create net ~seed:((seed * 7919) + 265) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      if Ringpaxos.Mring.submit mr ~proposer:(id mod 2) ~size:256 (Cmd id) >= 0 then
        Safety.broadcast aud id);
  (* Initial ring [0; 1], coordinator acc1, spare acc2; [joiner] = 3 enters
     the ring (keeping acc1 as coordinator) and catches up. *)
  let tr = pick rng (0.2 *. duration) (0.35 *. duration) in
  Injector.at inj tr (fun () ->
      Injector.note inj "reconfig([3;1])";
      ignore (Ringpaxos.Mring.reconfigure mr ~ring:[ joiner; 1 ] ()));
  (* Partition the joiner mid-catch-up, heal before the horizon. *)
  let jpid = Simnet.pid (Ringpaxos.Mring.acceptor_procs mr).(joiner) in
  let rest =
    List.concat
      [ List.init 3 (fun i -> Simnet.pid (Ringpaxos.Mring.acceptor_procs mr).(i));
        List.init 2 (fun i -> Simnet.pid (Ringpaxos.Mring.learner_proc mr i));
        List.init 2 (fun i -> Simnet.pid (Ringpaxos.Mring.proposer_proc mr i)) ]
  in
  Injector.partition inj
    ~at:(tr +. pick rng 0.01 0.05)
    ~dur:(pick rng 0.1 0.2)
    ~group_a:[ jpid ] ~group_b:rest "joiner";
  Injector.rule inj
    ~at:(pick rng (0.15 *. duration) (0.65 *. duration))
    ~dur:(pick rng 0.2 0.5)
    ~drop:(pick rng 0.02 0.10)
    ~dup:0.02 ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  let extra_violations =
    List.concat
      [ (if Ringpaxos.Mring.catching_up mr joiner then
           [ "mring-join: joiner still catching up at the horizon" ]
         else []);
        (if Ringpaxos.Mring.epoch mr < 1 then
           [ "mring-join: no epoch activated by the horizon" ]
         else []);
        List.concat_map
          (fun l ->
            if verdict.delivered.(l) <> verdict.broadcast then
              [ Printf.sprintf "mring-join: learner %d delivered %d of %d accepted commands"
                  l verdict.delivered.(l) verdict.broadcast ]
            else [])
          [ 0; 1 ] ]
  in
  let o =
    finish ~protocol:"mring-join" ~seed ~verdict ~events:(Injector.events inj)
      ~extra:
        (Printf.sprintf " epoch=%d catchup=%b" (Ringpaxos.Mring.epoch mr)
           (Ringpaxos.Mring.catching_up mr joiner))
  in
  { o with
    ok = o.ok && extra_violations = [];
    violations = o.violations @ extra_violations }

(* --- U-Ring Paxos --------------------------------------------------------- *)

(* U-Ring's model excludes message loss (no learner gap repair; decisions
   circulate once), so its chaos is fail-stop only: up to f position
   kills, per-link constant lag (preserves TCP FIFO) and slow CPU. *)
let run_uring ~seed ~duration () =
  let _engine, net = mk_env seed in
  let n = 5 in
  let cfg = { Ringpaxos.Uring.default_config with f = 2 } in
  let aud = Safety.create ~name:"uring" ~n_learners:n in
  let ur =
    Ringpaxos.Uring.create net cfg
      ~positions:(Ringpaxos.Uring.standard_positions ~n)
      ~deliver:(fun ~learner ~inst:_ v ->
        List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v))
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 258) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      (* Submit through a live proposer; a dead one would silently eat it. *)
      let rec alive_from p k =
        if k = 0 then None
        else if Simnet.is_alive (Ringpaxos.Uring.proposer_proc ur p) then Some p
        else alive_from ((p + 1) mod n) (k - 1)
      in
      match alive_from (id mod n) n with
      | Some p ->
          ignore (Ringpaxos.Uring.submit ur ~proposer:p ~size:256 (Cmd id));
          Safety.broadcast aud id
      | None -> ());
  let t0 = 0.15 *. duration and t1 = 0.65 *. duration in
  let kills = 1 + Sim.Rng.int rng 2 in
  let victims = Array.init n Fun.id in
  Sim.Rng.shuffle rng victims;
  for k = 0 to kills - 1 do
    let v = victims.(k) in
    Injector.at inj (pick rng t0 (0.5 *. duration)) (fun () ->
        Injector.note inj (Printf.sprintf "kill(pos%d)" v);
        Ringpaxos.Uring.kill_position ur v)
  done;
  link_lag inj ~at:(pick rng t0 t1) ~dur:(pick rng 0.2 0.5) ~max_lag:2.0e-4 "link-lag";
  Injector.slow_cpu inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.3 0.6)
    ~factor:(pick rng 2.0 3.0)
    (Simnet.proc_node (Ringpaxos.Uring.position_proc ur victims.(n - 1)));
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let alive =
    List.filter
      (fun l -> Simnet.is_alive (Ringpaxos.Uring.learner_proc ur l))
      (List.init n Fun.id)
  in
  let verdict = Safety.verdict ~alive aud in
  finish ~protocol:"uring" ~seed ~verdict ~events:(Injector.events inj)
    ~extra:(Printf.sprintf " killed=%d" kills)

(* --- Multi-Ring Paxos ------------------------------------------------------ *)

(* Two rings (f = 1 each), both learners subscribe to both groups, so the
   deterministic merge must agree everywhere.  Faults: one ring
   coordinator kill (§5's Fig. 5.11 scenario), multicast chaos, slow CPU
   on a learner machine.  The skip controller keeps the idle group moving. *)
let run_multiring ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg =
    { Multiring.default_config with
      ring = { Ringpaxos.Mring.default_config with f = 1 };
      n_rings = 2;
      lambda = 2000.0;
      delta = 5.0e-3;
      m = 2 }
  in
  let aud = Safety.create ~name:"multiring" ~n_learners:2 in
  let mr =
    Multiring.create net cfg ~n_learners:2
      ~subs:(fun _ -> [ 0; 1 ])
      ~proposers_per_ring:1
      ~deliver:(fun ~learner ~group:_ (it : Paxos.Value.item) ->
        match it.app with Cmd i -> Safety.delivered aud ~learner i | _ -> ())
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 259) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      if Multiring.multicast mr ~group:(id mod 2) ~proposer:0 ~size:256 (Cmd id) >= 0 then
        Safety.broadcast aud id);
  let t0 = 0.15 *. duration and t1 = 0.65 *. duration in
  let ring = Sim.Rng.int rng 2 in
  Injector.at inj (pick rng t0 (0.45 *. duration)) (fun () ->
      Injector.note inj (Printf.sprintf "kill_coord(ring%d)" ring);
      Multiring.kill_ring_coordinator mr ring);
  Injector.rule inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.2 0.4)
    ~drop:(pick rng 0.02 0.08)
    ~dup:0.02 ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  Injector.slow_cpu inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.3 0.5)
    ~factor:(pick rng 2.0 3.0)
    (Simnet.proc_node (Multiring.learner_proc mr (Sim.Rng.int rng 2)));
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  finish ~protocol:"multiring" ~seed ~verdict ~events:(Injector.events inj)
    ~extra:(Printf.sprintf " skips=%d" (Multiring.skips_proposed mr ring))

(* --- Multi-Ring reconfiguration -------------------------------------------- *)

(* Per-ring reconfiguration under the deterministic merge: one of the two
   rings swaps its coordinator for a spare mid-run (on odd seeds the old
   coordinator is additionally crashed inside the handoff window), with
   multicast chaos overlapping.  Both learners subscribe to both groups,
   so any skew the reconfiguring ring introduces — lost skip slots, a
   stalled group, a duplicated boundary instance — surfaces as a merge
   disagreement or stall at the auditor.  Asserts the ring's epoch
   advanced by the horizon. *)
let run_multiring_reconfig ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg =
    { Multiring.default_config with
      ring = { Ringpaxos.Mring.default_config with f = 1 };
      n_rings = 2;
      lambda = 2000.0;
      delta = 5.0e-3;
      m = 2 }
  in
  let aud = Safety.create ~name:"multiring-reconfig" ~n_learners:2 in
  let mr =
    Multiring.create net cfg ~n_learners:2
      ~subs:(fun _ -> [ 0; 1 ])
      ~proposers_per_ring:1
      ~deliver:(fun ~learner ~group:_ (it : Paxos.Value.item) ->
        match it.app with Cmd i -> Safety.delivered aud ~learner i | _ -> ())
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 266) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      if Multiring.multicast mr ~group:(id mod 2) ~proposer:0 ~size:256 (Cmd id) >= 0 then
        Safety.broadcast aud id);
  let t0 = 0.15 *. duration and t1 = 0.65 *. duration in
  (* Each ring starts as [0; 1] with acc1 coordinating and acc2 spare:
     promote the spare to coordinator of the chosen ring. *)
  let ring = Sim.Rng.int rng 2 in
  let tr = pick rng t0 (0.4 *. duration) in
  Injector.at inj tr (fun () ->
      Injector.note inj (Printf.sprintf "reconfig(ring%d:[0;2])" ring);
      ignore (Multiring.reconfigure_ring mr ring ~ring:[ 0; 2 ]));
  if seed land 1 = 1 then
    Injector.at inj (tr +. pick rng 0.0 0.02) (fun () ->
        Injector.note inj (Printf.sprintf "kill_coord(ring%d)" ring);
        Multiring.kill_ring_coordinator mr ring);
  Injector.rule inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.2 0.4)
    ~drop:(pick rng 0.02 0.08)
    ~dup:0.02 ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  let epochs =
    if Multiring.ring_epoch mr ring < 1 then
      [ Printf.sprintf "multiring-reconfig: ring %d epoch did not advance" ring ]
    else []
  in
  let o =
    finish ~protocol:"multiring-reconfig" ~seed ~verdict ~events:(Injector.events inj)
      ~extra:
        (Printf.sprintf " epoch=%d skips=%d" (Multiring.ring_epoch mr ring)
           (Multiring.skips_proposed mr ring))
  in
  { o with ok = o.ok && epochs = []; violations = o.violations @ epochs }

(* --- S-Paxos ---------------------------------------------------------------- *)

let run_spaxos ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg = Abcast.Spaxos.default_config in
  let n = (2 * cfg.f) + 1 in
  let aud = Safety.create ~name:"spaxos" ~n_learners:n in
  let sp =
    Abcast.Spaxos.create net cfg ~deliver:(fun ~learner v ->
        List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v))
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 260) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      let rec alive_from p k =
        if k = 0 then None
        else if Simnet.is_alive (Abcast.Spaxos.replica_proc sp p) then Some p
        else alive_from ((p + 1) mod n) (k - 1)
      in
      match alive_from (id mod n) n with
      | Some p ->
          if Abcast.Spaxos.submit sp ~replica:p ~size:256 (Cmd id) then
            Safety.broadcast aud id
      | None -> ());
  let t0 = 0.15 *. duration in
  Injector.at inj (pick rng t0 (0.45 *. duration)) (fun () ->
      Injector.note inj "kill_leader";
      Abcast.Spaxos.kill_leader sp);
  link_lag inj
    ~at:(pick rng t0 (0.65 *. duration))
    ~dur:(pick rng 0.2 0.4) ~max_lag:2.0e-4 "link-lag";
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let alive =
    List.filter
      (fun l -> Simnet.is_alive (Abcast.Spaxos.replica_proc sp l))
      (List.init n Fun.id)
  in
  let verdict = Safety.verdict ~alive aud in
  finish ~protocol:"spaxos" ~seed ~verdict ~events:(Injector.events inj) ~extra:""

(* --- LCR -------------------------------------------------------------------- *)

(* LCR assumes perfect failure detection; one member is killed and the
   oracle reconfigures the ring (messages in transit may be lost — the
   model's documented weakness, so validity is not asserted).  Agreement
   and total order must still hold among the survivors. *)
let run_lcr ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg = Abcast.Lcr.default_config in
  let n = cfg.n in
  let aud = Safety.create ~name:"lcr" ~n_learners:n in
  let lcr =
    Abcast.Lcr.create net cfg ~deliver:(fun ~learner v ->
        List.iter (fun i -> Safety.delivered aud ~learner i) (cmd_ids v))
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 261) in
  let rng = Injector.sched_rng inj in
  let next = ref 0 in
  drive net ~until:(0.6 *. duration) ~period:1.0e-3 (fun () ->
      incr next;
      let id = !next in
      let rec alive_from p k =
        if k = 0 then None
        else if Simnet.is_alive (Abcast.Lcr.proc lcr p) then Some p
        else alive_from ((p + 1) mod n) (k - 1)
      in
      match alive_from (id mod n) n with
      | Some p ->
          if Abcast.Lcr.broadcast lcr ~from:p ~size:256 (Cmd id) then
            Safety.broadcast aud id
      | None -> ());
  let t0 = 0.15 *. duration in
  let victim = Sim.Rng.int rng n in
  Injector.at inj (pick rng t0 (0.45 *. duration)) (fun () ->
      Injector.note inj (Printf.sprintf "kill(%d)" victim);
      Abcast.Lcr.kill lcr victim);
  link_lag inj
    ~at:(pick rng t0 (0.65 *. duration))
    ~dur:(pick rng 0.2 0.4) ~max_lag:2.0e-4 "link-lag";
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let alive =
    List.filter (fun l -> Simnet.is_alive (Abcast.Lcr.proc lcr l)) (List.init n Fun.id)
  in
  let verdict = Safety.verdict ~alive aud in
  finish ~protocol:"lcr" ~seed ~verdict ~events:(Injector.events inj) ~extra:""

(* --- SMR register linearizability ------------------------------------------ *)

(* A single-register SMR over M-Ring (f = 1): two replica-learners apply
   writes in delivery order; two clients issue reads and writes open-loop,
   every op through the ring (reads execute at the client's designated
   replica when the command is applied there).  Every write value is
   unique, so a duplicated or reordered apply surfaces as a
   non-linearizable read.  Faults: coordinator kill + multicast chaos. *)
let run_smr ~seed ~duration () =
  let _engine, net = mk_env seed in
  let cfg = { Ringpaxos.Mring.default_config with f = 1 } in
  let reg = Array.make 2 None in
  (* op_id -> (client, inv, write, completion) *)
  let ops : (int, int * float * int option * (float * int option) option ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let deliver ~learner ~inst:_ = function
    | None -> ()
    | Some (v : Paxos.Value.t) ->
        List.iter
          (fun (it : Paxos.Value.item) ->
            match it.app with
            | SmrCmd { op_id; client; write } ->
                (match write with Some x -> reg.(learner) <- Some x | None -> ());
                if learner = client mod 2 then begin
                  match Hashtbl.find_opt ops op_id with
                  | Some (_, _, _, ({ contents = None } as slot)) ->
                      slot := Some (Simnet.now net, reg.(learner))
                  | _ -> ()
                end
            | _ -> ())
          v.items
  in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 262) in
  let rng = Injector.sched_rng inj in
  let opc = Sim.Rng.split rng in
  let next_op = ref 0 in
  let client_tick client () =
    incr next_op;
    let op_id = !next_op in
    let write = if Sim.Rng.bool opc 0.5 then Some op_id else None in
    if
      Ringpaxos.Mring.submit mr ~proposer:client ~size:128
        (SmrCmd { op_id; client; write })
      >= 0
    then Hashtbl.add ops op_id (client, Simnet.now net, write, ref None)
  in
  drive net ~until:(0.6 *. duration) ~period:0.12 (client_tick 0);
  ignore
    (Simnet.after net 0.06 (fun () ->
         drive net ~until:(0.6 *. duration) ~period:0.12 (client_tick 1)));
  let t0 = 0.15 *. duration in
  Injector.at inj (pick rng t0 (0.45 *. duration)) (fun () ->
      Injector.note inj "kill_coordinator";
      Ringpaxos.Mring.kill_coordinator mr);
  Injector.rule inj
    ~at:(pick rng t0 (0.6 *. duration))
    ~dur:(pick rng 0.2 0.4)
    ~drop:(pick rng 0.02 0.08)
    ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  (* Build the history: completed ops respond at their apply time; a
     pending write may already have taken effect, so it stays in the
     history with the horizon as its response time; pending reads carry
     no information and are dropped. *)
  let history =
    Hashtbl.fold
      (fun _op_id (_, inv, write, slot) acc ->
        match (!slot, write) with
        | Some (res, obs), None -> { Smr.Linearizability.kind = `Read obs; inv; res } :: acc
        | Some (res, _), Some x -> { Smr.Linearizability.kind = `Write x; inv; res } :: acc
        | None, Some x -> { Smr.Linearizability.kind = `Write x; inv; res = duration } :: acc
        | None, None -> acc)
      ops []
  in
  let completed = List.length (List.filter (fun (o : Smr.Linearizability.op) -> o.res < duration) history) in
  let lin = Smr.Linearizability.check ~init:None history in
  { protocol = "smr";
    seed;
    ok = lin;
    summary =
      Printf.sprintf "ops=%d completed=%d linearizable=%b" (Hashtbl.length ops) completed lin;
    violations = (if lin then [] else [ "smr: history is not linearizable" ]);
    events = Injector.events inj }

(* --- replicated KV with the lease read tier -------------------------------- *)

(* The lease tier's dangerous windows, under chaos:

   1. the current {e lease holders} are partitioned away mid-lease, so
      conflicting writes cannot collect their acknowledgements and must
      respond through the lease-expiry deadline;
   2. a revocation window where the acknowledgements themselves are lost
      (KWAck drop episode), again forcing the deadline path;
   3. a light multicast chaos episode over the ordered log.

   All faults heal by 80 % of the run.  The verdict layers the ordered-log
   auditor (agreement / no-dup / no-creation over KOp + KGrant uids,
   deliveries filtered to broadcast uids because learners also see skip
   items) with the KV-level oracles: the recorded read/write history must
   be linearizable — local lease reads included — replicas must converge
   to identical trees, and every deferred write response must have drained
   by the horizon. *)
let run_kv_lease ~seed ~duration () =
  let _engine, net = mk_env seed in
  let n_replicas = 3 and n_clients = 2 in
  let cfg =
    { Kv.default_config with
      n_replicas;
      leases = true;
      lease_dur = 0.1;
      lease_backoff = 0.05;
      read_timeout = 0.05;
      initial_keys = 0;
      key_range = 64;
      record_history = true }
  in
  let aud = Safety.create ~name:"kv-lease" ~n_learners:n_replicas in
  let known = Hashtbl.create 1024 in
  let sys =
    Kv.create net cfg ~n_clients
      ~on_broadcast:(fun ~uid ->
        Hashtbl.replace known uid ();
        Safety.broadcast aud uid)
      ~on_deliver:(fun ~replica ~uid ->
        if Hashtbl.mem known uid then Safety.delivered aud ~learner:replica uid)
  in
  let inj = Injector.create net ~seed:((seed * 7919) + 267) in
  let rng = Injector.sched_rng inj in
  let wl =
    Smr.Workload.Open_loop.create
      ~ops:[ (Smr.Workload.Open_loop.Read, 50); (Smr.Workload.Open_loop.Update, 50) ]
      ~dist:(Smr.Workload.Open_loop.Zipf 0.99)
      (Sim.Rng.create (0xCAFE + seed))
      ~key_range:cfg.Kv.key_range
      ~rate:(Smr.Workload.Open_loop.Constant 250.0)
  in
  Kv.start_open sys wl ~until:(0.6 *. duration);
  let t0 = 0.15 *. duration and t1 = 0.55 *. duration in
  (* 1. cut a lease holder off mid-lease (its reads and their responses
     still route, so clients see timeouts, not silence); healed well
     before quiescence so gap repair catches the replica up. *)
  let victim = Sim.Rng.int rng n_replicas in
  let vpid = Simnet.pid (Kv.replica_proc sys victim) in
  let rest =
    List.filter
      (fun p -> p <> vpid)
      (List.concat
         [ List.init n_replicas (fun r -> Simnet.pid (Kv.replica_proc sys r));
           List.init n_clients (fun c -> Simnet.pid (Kv.client_proc sys c)) ])
  in
  Injector.partition inj
    ~at:(pick rng t0 (0.35 *. duration))
    ~dur:(pick rng (0.1 *. duration) (0.2 *. duration))
    ~group_a:[ vpid ] ~group_b:rest
    (Printf.sprintf "lease-holder%d" victim);
  (* 2. lose the revocation acknowledgements themselves for a window:
     every deferred write in it must fall back to the lease deadline. *)
  Injector.rule inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng (0.1 *. duration) (0.2 *. duration))
    ~drop:1.0
    ~applies:(fun (m : Simnet.msg) ~dst:_ ->
      match m.payload with Kv.KWAck _ -> true | _ -> false)
    "wack-loss";
  (* 3. light multicast chaos over the ordered log. *)
  Injector.rule inj
    ~at:(pick rng t0 t1)
    ~dur:(pick rng 0.2 0.4)
    ~drop:(pick rng 0.02 0.06)
    ~dup:0.02 ~jitter:2.0e-4 ~applies:mcast_only "mcast-chaos";
  Sim.Engine.run (Simnet.engine net) ~until:duration;
  let verdict = Safety.verdict aud in
  let fingerprint_violations =
    let f0 = Kv.state_fingerprint_at sys 0 in
    List.concat_map
      (fun r ->
        if Kv.state_fingerprint_at sys r <> f0 then
          [ Printf.sprintf "kv-lease: replica %d diverged from replica 0" r ]
        else [])
      (List.init (n_replicas - 1) (fun i -> i + 1))
  in
  let kv_violations =
    List.concat
      [ (if Kv.check_history sys then []
         else [ "kv-lease: history is not linearizable" ]);
        fingerprint_violations;
        (if Kv.pending_writes sys > 0 then
           [ Printf.sprintf "kv-lease: %d write responses never drained"
               (Kv.pending_writes sys) ]
         else []);
        (if Kv.counter sys "kv_lease_grants" = 0 then
           [ "kv-lease: no lease grants flowed" ]
         else []);
        (if Kv.counter sys "kv_local_reads" + Kv.counter sys "kv_local_nacks" = 0
         then [ "kv-lease: lease read tier never exercised" ]
         else []) ]
  in
  let o =
    finish ~protocol:"kv-lease" ~seed ~verdict ~events:(Injector.events inj)
      ~extra:
        (Printf.sprintf " local=%d nack=%d deadline=%d grants=%d lin=%b"
           (Kv.counter sys "kv_local_reads")
           (Kv.counter sys "kv_local_nacks")
           (Kv.counter sys "kv_deadline_responses")
           (Kv.counter sys "kv_lease_grants")
           (Kv.check_history sys))
  in
  { o with
    ok = o.ok && kv_violations = [];
    violations = o.violations @ kv_violations }

(* --- dispatch --------------------------------------------------------------- *)

let run_one ~protocol ~seed ~duration () =
  match protocol with
  | "mring" -> run_mring ~seed ~duration ()
  | "mring-pressure" -> run_mring_pressure ~seed ~duration ()
  | "mring-reconfig" -> run_mring_reconfig ~seed ~duration ()
  | "mring-join" -> run_mring_join ~seed ~duration ()
  | "uring" -> run_uring ~seed ~duration ()
  | "multiring" -> run_multiring ~seed ~duration ()
  | "multiring-reconfig" -> run_multiring_reconfig ~seed ~duration ()
  | "spaxos" -> run_spaxos ~seed ~duration ()
  | "lcr" -> run_lcr ~seed ~duration ()
  | "smr" -> run_smr ~seed ~duration ()
  | "kv-lease" -> run_kv_lease ~seed ~duration ()
  | p -> invalid_arg ("Chaos.run_one: unknown protocol " ^ p)

let pp_events events =
  let shown = List.filteri (fun i _ -> i < 8) events in
  let frags = List.map (fun (t, l) -> Printf.sprintf "%.2f:%s" t l) shown in
  let suffix = if List.length events > 8 then ";..." else "" in
  String.concat ";" frags ^ suffix

let run_all ~protocols:ps ~seeds ~duration () =
  let failures = ref 0 in
  List.iter
    (fun protocol ->
      for seed = 0 to seeds - 1 do
        let o = run_one ~protocol ~seed ~duration () in
        if not o.ok then incr failures;
        Printf.printf "chaos %-10s seed %02d  %-4s %s  faults=[%s]\n" o.protocol o.seed
          (if o.ok then "ok" else "FAIL")
          o.summary (pp_events o.events);
        List.iter (fun v -> Printf.printf "    violation: %s\n" v) o.violations;
        flush stdout
      done)
    ps;
  Printf.printf "chaos: %d/%d runs ok\n%!"
    ((List.length ps * seeds) - !failures)
    (List.length ps * seeds);
  !failures
