type t = {
  s_name : string;
  n : int;
  bcast : (int, unit) Hashtbl.t;
  mutable nbcast : int;
  logs : int list array; (* newest first *)
  seen : (int, unit) Hashtbl.t array;
  mutable canon : int array;
  mutable canon_len : int;
  pos : int array;
  mutable viols : string list; (* newest first *)
  mutable nviols : int;
}

let create ~name ~n_learners =
  { s_name = name;
    n = n_learners;
    bcast = Hashtbl.create 4096;
    nbcast = 0;
    logs = Array.make n_learners [];
    seen = Array.init n_learners (fun _ -> Hashtbl.create 4096);
    canon = Array.make 1024 0;
    canon_len = 0;
    pos = Array.make n_learners 0;
    viols = [];
    nviols = 0 }

let violation t msg =
  t.nviols <- t.nviols + 1;
  if t.nviols <= 20 then t.viols <- (t.s_name ^ ": " ^ msg) :: t.viols

let broadcast t uid =
  if not (Hashtbl.mem t.bcast uid) then begin
    Hashtbl.add t.bcast uid ();
    t.nbcast <- t.nbcast + 1
  end

let canon_push t uid =
  if t.canon_len = Array.length t.canon then begin
    let bigger = Array.make (2 * t.canon_len) 0 in
    Array.blit t.canon 0 bigger 0 t.canon_len;
    t.canon <- bigger
  end;
  t.canon.(t.canon_len) <- uid;
  t.canon_len <- t.canon_len + 1

let delivered t ~learner uid =
  t.logs.(learner) <- uid :: t.logs.(learner);
  if not (Hashtbl.mem t.bcast uid) then
    violation t (Printf.sprintf "no-creation: learner %d delivered %d, never broadcast" learner uid);
  if Hashtbl.mem t.seen.(learner) uid then
    violation t (Printf.sprintf "no-duplication: learner %d delivered %d twice" learner uid)
  else Hashtbl.add t.seen.(learner) uid ();
  let k = t.pos.(learner) in
  if k < t.canon_len then begin
    if t.canon.(k) <> uid then
      violation t
        (Printf.sprintf "total-order: learner %d delivered %d at position %d, expected %d"
           learner uid k t.canon.(k))
  end
  else canon_push t uid;
  t.pos.(learner) <- k + 1

let broadcast_count t = t.nbcast
let delivered_counts t = Array.map List.length t.logs

type verdict = {
  ok : bool;
  violations : string list;
  broadcast : int;
  delivered : int array;
}

let verdict ?alive ?(agreement = true) t =
  let logs = Array.to_list (Array.map List.rev t.logs) in
  let broadcast_list = Hashtbl.fold (fun k () acc -> k :: acc) t.bcast [] in
  if not (Abcast.Properties.integrity ~broadcast:broadcast_list logs) then
    violation t "oracle: integrity";
  if not (Abcast.Properties.total_order logs) then violation t "oracle: total order";
  if agreement then begin
    let idx = match alive with Some l -> l | None -> List.init t.n Fun.id in
    let alive_logs = List.map (fun i -> List.rev t.logs.(i)) idx in
    if not (Abcast.Properties.agreement alive_logs) then
      violation t "oracle: uniform agreement (alive learners differ at quiescence)"
  end;
  { ok = t.nviols = 0;
    violations = List.rev t.viols;
    broadcast = t.nbcast;
    delivered = delivered_counts t }
