(** The six core YCSB workloads (Cooper et al., SoCC'10) as presets over
    {!Smr.Workload.Open_loop}: weighted read/update/insert/scan/rmw mixes
    over zipf or latest-key distributions.  [workload] builds a generator
    the {!Kv} system drives open-loop. *)

type preset = A | B | C | D | E | F

val all : preset list

(** "ycsb-a" ... "ycsb-f". *)
val name : preset -> string

(** Accepts "ycsb-a" or the shorthand "a". *)
val of_name : string -> preset option

val describe : preset -> string

val ops : preset -> (Smr.Workload.Open_loop.op_kind * int) list
val dist : preset -> Smr.Workload.Open_loop.key_dist

(** [workload p rng ~rate] — [key_range] defaults to 100k preloadable
    keys, [query_span] to 50-key scans (workload E). *)
val workload :
  ?key_range:int ->
  ?query_span:int ->
  preset ->
  Sim.Rng.t ->
  rate:Smr.Workload.Open_loop.curve ->
  Smr.Workload.Open_loop.t
