(** A replicated key-value service over the full stack — client proxy →
    {!Protocol.Batcher} (inside the ring proposers) → Multi-Ring ordered
    delivery → {!Psmr.Executor} dependency-aware execution →
    {!Smr.Btree_service} storage — plus a lease-based read-serving tier:

    - every replica periodically proposes itself a {e lease} through the
      ordered log (a grant carries an absolute expiry stamped at submit
      time); the lease table is log-driven, so replicas agree on it at
      every log position;
    - a lease holder answers single-key reads {e locally}, without a
      consensus round, while its own lease is valid and covers the keys
      ({!Btree.Keyset.subset});
    - a conflicting write {e invalidates} overlapping leases when applied
      (the lease epoch bumps), and the write's client response is held
      until every other replica holding a covering lease has acknowledged
      applying it — or that lease's deadline has provably passed;
    - a client whose local read is refused (or times out against a dead
      replica) falls back to the ordered path and backs off that replica.

    Validity checks compare against the simulation's single virtual clock,
    i.e. perfect clock synchronisation — the classical lease assumption,
    here exact by construction.  The design follows quorum leases (Moraru
    et al., SoCC'14) specialised to full-replica leases.

    Histories (reads with observed values, uniquely-valued writes) can be
    recorded and checked against {!Smr.Linearizability.Kv}. *)

module Ycsb = Ycsb
module Slo = Slo

type config = {
  n_replicas : int;
  n_workers : int;  (** executor worker threads per replica *)
  ring : Ringpaxos.Mring.config;
  lambda : float;
  delta : float;
  merge_m : int;
  leases : bool;  (** grant leases and serve local reads *)
  lease_dur : float;  (** lease length, seconds of virtual time *)
  lease_margin : float;  (** slack past expiry before a deadline response *)
  lease_backoff : float;  (** client-side nack/timeout backoff per replica *)
  read_timeout : float;  (** local-read timeout against a dead replica *)
  initial_keys : int;
  key_range : int;
  record_history : bool;  (** keep a {!Smr.Linearizability.Kv} history *)
}

val default_config : config

type Simnet.payload +=
  | KOp of { op : Simnet.payload; reads : Btree.Keyset.t; writes : Btree.Keyset.t }
  | KGrant of { replica : int; keys : Btree.Keyset.t; until : float }
  | KResp of { uid : int; obs : int option }
  | KWAck of { uid : int; replica : int }
  | KReadReq of { rid : int; client : int; lo : int; hi : int }
  | KReadResp of { rid : int; ok : bool; obs : int option }

type t

(** [create net cfg ~n_clients] builds the deployment: one ring,
    [n_clients] client proxies, [cfg.n_replicas] learner replicas (each
    with its own btree and executor).  [on_broadcast]/[on_deliver] tap the
    ordered stream for an external safety auditor (chaos harness). *)
val create :
  ?on_broadcast:(uid:int -> unit) ->
  ?on_deliver:(replica:int -> uid:int -> unit) ->
  Simnet.t ->
  config ->
  n_clients:int ->
  t

(** [start_open t wl ~until] drives arrivals from an open-loop workload
    (e.g. a {!Ycsb} preset) until the virtual-time horizon: single-key
    reads go to the lease tier when one is available, everything else
    through the ordered log.  Also starts the lease-renewal loops. *)
val start_open : t -> Smr.Workload.Open_loop.t -> until:float -> unit

(** Per-class latency meters ("read-local", "read", "update", "insert",
    "scan"). *)
val slo : t -> Slo.t

(** Event counters (kv_local_reads, kv_local_nacks, kv_lease_grants,
    kv_lease_invalidations, kv_wacks, kv_deadline_responses,
    kv_read_timeouts, kv_drops, ...). *)
val counters : t -> (string * int) list

val counter : t -> string -> int

(** Ordered-path commands accepted by a proposer. *)
val issued : t -> int

(** Ordered-path commands dropped by a full proposer window. *)
val drops : t -> int

val inflight_count : t -> int

(** Write responses still deferred on lease acknowledgements. *)
val pending_writes : t -> int

val pending_local_reads : t -> int

(** Commands executed, summed across replicas. *)
val executed : t -> int

(** Fingerprint of replica [r]'s btree (replicas must agree). *)
val state_fingerprint_at : t -> int -> int

(** Whether [replica]'s own lease is currently valid by its own view. *)
val lease_valid : t -> replica:int -> bool

(** Conflicting-write invalidations [replica] has applied to its own
    lease. *)
val lease_epoch : t -> replica:int -> int

val replica_proc : t -> int -> Simnet.proc
val client_proc : t -> int -> Simnet.proc

(** The recorded history (requires [record_history]); writes that were
    issued and applied but never acknowledged are kept with an open
    response time. *)
val history : t -> Smr.Linearizability.Kv.op list

(** Run {!Smr.Linearizability.Kv.check} over {!history} against the
    pre-run tree contents. *)
val check_history : t -> bool

(** White-box hooks for the broken-lease regression test. *)
module Testing : sig
  (** Make every replica keep serving local reads even when its lease has
      expired or been invalidated — the bug the linearizability checker
      must catch. *)
  val break_leases : t -> unit
end
