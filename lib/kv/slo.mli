(** Per-operation-class SLO meters.

    Latencies are bucketed by class (read-local, read, update, insert,
    scan, ...) into streaming {!Sim.Stats.Latency} recorders; reports
    quote p50/p99/p999 rather than means, following "The Performance of
    Paxos in the Cloud" (arXiv 1404.6719): tail latency, not the average,
    is what production SLOs bind. *)

type row = {
  cls : string;
  count : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

type t

val create : unit -> t

(** [add t ~cls lat] records one latency sample (seconds). *)
val add : t -> cls:string -> float -> unit

(** Classes in first-seen order (the order {!rows} reports). *)
val classes : t -> string list

(** The raw recorder of a class, if any sample was recorded. *)
val latency : t -> string -> Sim.Stats.Latency.t option

val row_of : t -> string -> row
val rows : t -> row list

(** A fixed-width SLO table (header + one line per class). *)
val render : t -> string

(** One row as a JSON object (no trailing newline). *)
val json_row : row -> string
