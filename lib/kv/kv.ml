module Ycsb = Ycsb
module Slo = Slo
module OL = Smr.Workload.Open_loop

type config = {
  n_replicas : int;
  n_workers : int;
  ring : Ringpaxos.Mring.config;
  lambda : float;
  delta : float;
  merge_m : int;
  leases : bool;
  lease_dur : float;
  lease_margin : float;
  lease_backoff : float;
  read_timeout : float;
  initial_keys : int;
  key_range : int;
  record_history : bool;
}

let default_config =
  { n_replicas = 3;
    n_workers = 2;
    ring = Ringpaxos.Mring.default_config;
    lambda = 50_000.0;
    delta = 1.0e-3;
    merge_m = 8;
    leases = true;
    lease_dur = 0.5;
    lease_margin = 1.0e-3;
    lease_backoff = 0.05;
    read_timeout = 0.25;
    initial_keys = 10_000;
    key_range = 100_000;
    record_history = false }

type Simnet.payload +=
  | KOp of { op : Simnet.payload; reads : Btree.Keyset.t; writes : Btree.Keyset.t }
  | KGrant of { replica : int; keys : Btree.Keyset.t; until : float }
  | KResp of { uid : int; obs : int option }
  | KWAck of { uid : int; replica : int }
  | KReadReq of { rid : int; client : int; lo : int; hi : int }
  | KReadResp of { rid : int; ok : bool; obs : int option }

(* One replica's view of every replica's lease.  The table is log-driven
   (grants and invalidations are ordered log entries applied identically
   everywhere), so replicas agree on its state at every log position; only
   the wall-clock validity check [now < ls_until] is local — sound because
   the simulation's virtual clock is globally synchronised (a perfect
   clock-sync assumption, documented in DESIGN.md). *)
type lease = {
  mutable ls_keys : Btree.Keyset.t;
  mutable ls_until : float;  (* 0 = invalidated or never granted *)
  mutable ls_epoch : int;  (* bumped by every conflicting-write invalidation *)
}

type replica = {
  r_idx : int;
  r_svc : Smr.Btree_service.t;
  mutable r_exec : Psmr.Executor.t option;  (* set once the ring exists *)
  r_leases : lease array;
}

let exec_of rep = match rep.r_exec with Some e -> e | None -> assert false

type hist_intent = HRead of int | HWrite of int * int option

type infl = {
  i_born : float;
  i_cls : string;
  i_hist : hist_intent option;
}

type wpend = {
  mutable w_need : int list;  (* replicas whose WAck is still missing *)
  w_client : int;
  w_replica : int;  (* the responder *)
  w_obs : int option;
  w_size : int;
  w_commit : float;
}

type pread = {
  p_client : int;
  p_key : int;
  p_born : float;
  p_arr : OL.arrival;
  p_replica : int;
  p_timer : Sim.Engine.handle;
}

type t = {
  net : Simnet.t;
  cfg : config;
  n_clients : int;
  mutable mr : Multiring.t option;
  reps : replica array;
  ctrs : Protocol.Counters.t;
  slo : Slo.t;
  inflight : (int, infl) Hashtbl.t;  (* ordered-path uid -> issue record *)
  wpend : (int, wpend) Hashtbl.t;  (* deferred write responses (responder) *)
  early_acks : (int, int list ref) Hashtbl.t;  (* WAcks before commit *)
  done_uids : (int, unit) Hashtbl.t;  (* responded: straggler acks die here *)
  applied : (int, unit) Hashtbl.t;  (* writes applied somewhere (history) *)
  pending_reads : (int, pread) Hashtbl.t;  (* rid -> local read in flight *)
  backoff : float array;  (* per-replica: no local reads until this time *)
  init_vals : (int, int) Hashtbl.t;  (* pre-run tree contents (history) *)
  mutable hist : Smr.Linearizability.Kv.op list;
  mutable next_rid : int;
  mutable rr : int;  (* ordered-path client round-robin *)
  mutable read_rr : int;  (* local-read replica round-robin *)
  mutable issued : int;
  mutable drops : int;
  mutable broken_leases : bool;  (* Testing: serve despite expiry/revocation *)
  on_broadcast : (uid:int -> unit) option;
  on_deliver : (replica:int -> uid:int -> unit) option;
}

let the_mr t = match t.mr with Some m -> m | None -> assert false

let responder_replica t uid =
  Paxos.Value.uid_seq uid mod t.cfg.n_replicas

let learner_proc t r = Multiring.learner_proc (the_mr t) r

let client_proc t c = Multiring.proposer_proc (the_mr t) ~group:0 ~proposer:c

let trace t f =
  match Simnet.tracer t.net with Some tr -> f tr | None -> ()

(* --- history recording -------------------------------------------------------- *)

let record_read t ~key ~obs ~inv ~res =
  if t.cfg.record_history then
    t.hist <-
      { Smr.Linearizability.Kv.key; kind = `Read obs; inv; res } :: t.hist

let record_write t ~key ~value ~inv ~res =
  if t.cfg.record_history then
    t.hist <-
      { Smr.Linearizability.Kv.key; kind = `Write value; inv; res } :: t.hist

let complete t inf ~obs ~res =
  Slo.add t.slo ~cls:inf.i_cls (res -. inf.i_born);
  match inf.i_hist with
  | Some (HRead key) -> record_read t ~key ~obs ~inv:inf.i_born ~res
  | Some (HWrite (key, value)) -> record_write t ~key ~value ~inv:inf.i_born ~res
  | None -> ()

(* --- responses ------------------------------------------------------------------ *)

let respond_now t ~replica ~uid ~client ~obs ~size ~at =
  Hashtbl.replace t.done_uids uid ();
  Hashtbl.remove t.early_acks uid;
  ignore
    (Sim.Engine.at (Simnet.engine t.net) ~time:at (fun () ->
         Simnet.send t.net ~src:(learner_proc t replica)
           ~dst:(client_proc t client) ~size (KResp { uid; obs })))

(* --- ordered delivery ----------------------------------------------------------- *)

let resp_size_of op =
  match op with
  | Smr.Btree_service.Query { lo; hi } when hi > lo -> 8192
  | _ -> 256

let apply_grant t rep ~replica ~keys ~until =
  let e = rep.r_leases.(replica) in
  e.ls_keys <- keys;
  e.ls_until <- until;
  if rep.r_idx = 0 then Protocol.Counters.incr t.ctrs "kv_lease_grants_applied";
  if rep.r_idx = replica then
    trace t (fun tr ->
        Trace.instant tr
          ~pid:(Simnet.pid (learner_proc t rep.r_idx))
          ~cat:"lease" ~name:"grant" ~ts:(Simnet.now t.net))

let apply_op t rep (it : Paxos.Value.item) ~op ~reads ~writes =
  let uid = it.Paxos.Value.uid in
  let now = Simnet.now t.net in
  let wrote = not (Btree.Keyset.is_empty writes) in
  let responder = responder_replica t uid in
  let mine = responder = rep.r_idx in
  (* Replicas whose lease covers this write at its apply point — computed
     before invalidation.  Only lease entries valid right now defer the
     writer's response; an expired entry cannot serve reads anyway. *)
  let holders = ref [] in
  if t.cfg.leases && wrote then
    Array.iteri
      (fun j e ->
        if e.ls_until > now && Btree.Keyset.overlaps writes e.ls_keys then
          holders := (j, e.ls_until) :: !holders)
      rep.r_leases;
  (* Conflicting writes invalidate overlapping leases when applied: the
     epoch bumps and local serving stops until a fresh grant is ordered. *)
  if t.cfg.leases && wrote then
    Array.iteri
      (fun j e ->
        if e.ls_until > 0.0 && Btree.Keyset.overlaps writes e.ls_keys then begin
          e.ls_until <- 0.0;
          e.ls_epoch <- e.ls_epoch + 1;
          if rep.r_idx = 0 then
            Protocol.Counters.incr t.ctrs "kv_lease_invalidations";
          if j = rep.r_idx then
            trace t (fun tr ->
                Trace.instant tr
                  ~pid:(Simnet.pid (learner_proc t rep.r_idx))
                  ~cat:"lease" ~name:"revoke" ~ts:now)
        end)
      rep.r_leases;
  (* The observed value for single-key reads, at this log position (all
     earlier ops already applied to the tree, later ones not yet). *)
  let obs =
    if t.cfg.record_history || mine then
      match op with
      | Smr.Btree_service.Query { lo; hi } when lo = hi ->
          Btree.find rep.r_svc.Smr.Btree_service.tree lo
      | _ -> None
    else None
  in
  let r = Psmr.Executor.submit (exec_of rep) ~now ~uid ~reads ~writes op in
  if t.cfg.record_history && wrote && not (Hashtbl.mem t.applied uid) then
    Hashtbl.replace t.applied uid ();
  (* A non-responder holding a conflicting lease acks the write once it has
     applied it (after which its local reads see the new value); the
     responder holds the client response until every such ack arrives or
     the lease's deadline passes. *)
  if (not mine) && t.cfg.leases && wrote
     && List.mem_assoc rep.r_idx !holders
  then
    ignore
      (Sim.Engine.at (Simnet.engine t.net) ~time:r.Psmr.Executor.r_commit
         (fun () ->
           Simnet.send t.net ~src:(learner_proc t rep.r_idx)
             ~dst:(learner_proc t responder) ~size:64
             (KWAck { uid; replica = rep.r_idx })));
  if mine then begin
    let client = Paxos.Value.uid_origin uid - 1 in
    if client >= 0 && client < t.n_clients then begin
      let size = resp_size_of op in
      let commit = r.Psmr.Executor.r_commit in
      let need = List.filter (fun (j, _) -> j <> rep.r_idx) !holders in
      let acked =
        match Hashtbl.find_opt t.early_acks uid with
        | Some l ->
            Hashtbl.remove t.early_acks uid;
            !l
        | None -> []
      in
      let need = List.filter (fun (j, _) -> not (List.mem j acked)) need in
      if need = [] then
        respond_now t ~replica:rep.r_idx ~uid ~client ~obs ~size ~at:commit
      else begin
        let deadline =
          List.fold_left (fun m (_, u) -> Stdlib.max m u) 0.0 need
          +. t.cfg.lease_margin
        in
        let deadline = Stdlib.max deadline commit in
        Hashtbl.replace t.wpend uid
          { w_need = List.map fst need;
            w_client = client;
            w_replica = rep.r_idx;
            w_obs = obs;
            w_size = size;
            w_commit = commit };
        trace t (fun tr ->
            Trace.abegin tr
              ~pid:(Simnet.pid (learner_proc t rep.r_idx))
              ~cat:"lease" ~name:"write-defer" ~id:uid ~ts:now);
        (* A holder that never acks (dead, partitioned) stops blocking once
           its lease has provably expired. *)
        ignore
          (Sim.Engine.at (Simnet.engine t.net) ~time:deadline (fun () ->
               if Hashtbl.mem t.wpend uid then begin
                 let w = Hashtbl.find t.wpend uid in
                 Hashtbl.remove t.wpend uid;
                 Protocol.Counters.incr t.ctrs "kv_deadline_responses";
                 trace t (fun tr ->
                     Trace.aend tr
                       ~pid:(Simnet.pid (learner_proc t w.w_replica))
                       ~cat:"lease" ~name:"write-defer" ~id:uid
                       ~ts:(Simnet.now t.net));
                 respond_now t ~replica:w.w_replica ~uid ~client:w.w_client
                   ~obs:w.w_obs ~size:w.w_size ~at:(Simnet.now t.net)
               end))
      end
    end
  end

let deliver t ~learner ~group:_ (it : Paxos.Value.item) =
  let rep = t.reps.(learner) in
  (match t.on_deliver with
  | Some f -> f ~replica:learner ~uid:it.Paxos.Value.uid
  | None -> ());
  match it.Paxos.Value.app with
  | KGrant { replica; keys; until } -> apply_grant t rep ~replica ~keys ~until
  | KOp { op; reads; writes } -> apply_op t rep it ~op ~reads ~writes
  | _ -> ()

(* --- client side ----------------------------------------------------------------- *)

type op_class =
  | CRead of int
  | CScan
  | CUpdate of int * int option
  | CInsert of int * int option
  | COther

let class_of t (a : OL.arrival) =
  match a.OL.op with
  | Smr.Btree_service.Query { lo; hi } -> if lo = hi then CRead lo else CScan
  | Smr.Btree_service.Insert { key; value } ->
      if key <= t.cfg.key_range then CUpdate (key, Some value)
      else CInsert (key, Some value)
  | Smr.Btree_service.Delete { key } -> CUpdate (key, None)
  | _ -> COther

let ordered_issue t ~born (a : OL.arrival) =
  let c = t.rr mod t.n_clients in
  t.rr <- t.rr + 1;
  let uid =
    Multiring.multicast (the_mr t) ~group:0 ~proposer:c ~size:a.OL.size
      (KOp { op = a.OL.op; reads = a.OL.reads; writes = a.OL.writes })
  in
  if uid < 0 then begin
    t.drops <- t.drops + 1;
    Protocol.Counters.incr t.ctrs "kv_drops"
  end
  else begin
    t.issued <- t.issued + 1;
    (match t.on_broadcast with Some f -> f ~uid | None -> ());
    let cls, hist =
      match class_of t a with
      | CRead key -> ("read", Some (HRead key))
      | CScan -> ("scan", None)
      | CUpdate (k, v) -> ("update", Some (HWrite (k, v)))
      | CInsert (k, v) -> ("insert", Some (HWrite (k, v)))
      | COther -> ("other", None)
    in
    Hashtbl.replace t.inflight uid { i_born = born; i_cls = cls; i_hist = hist }
  end

(* Next replica not in nack/timeout backoff, round-robin. *)
let pick_replica t =
  let n = t.cfg.n_replicas in
  let now = Simnet.now t.net in
  let rec go k =
    if k >= n then None
    else begin
      let j = (t.read_rr + k) mod n in
      if now >= t.backoff.(j) then Some j else go (k + 1)
    end
  in
  match go 0 with
  | Some j ->
      t.read_rr <- j + 1;
      Some j
  | None -> None

let local_read t (a : OL.arrival) ~key ~replica =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let c = t.rr mod t.n_clients in
  t.rr <- t.rr + 1;
  let born = Simnet.now t.net in
  (* A dead or partitioned replica never answers: time out and fall back
     to the ordered path (latency keeps the failed attempt). *)
  let timer =
    Simnet.after t.net t.cfg.read_timeout (fun () ->
        match Hashtbl.find_opt t.pending_reads rid with
        | None -> ()
        | Some p ->
            Hashtbl.remove t.pending_reads rid;
            Protocol.Counters.incr t.ctrs "kv_read_timeouts";
            t.backoff.(p.p_replica) <-
              Simnet.now t.net +. t.cfg.lease_backoff;
            ordered_issue t ~born:p.p_born p.p_arr)
  in
  Hashtbl.replace t.pending_reads rid
    { p_client = c; p_key = key; p_born = born; p_arr = a; p_replica = replica;
      p_timer = timer };
  Simnet.send t.net ~src:(client_proc t c) ~dst:(learner_proc t replica)
    ~size:64
    (KReadReq { rid; client = c; lo = key; hi = key })

let issue t (a : OL.arrival) =
  match class_of t a with
  | CRead key when t.cfg.leases -> begin
      match pick_replica t with
      | Some j -> local_read t a ~key ~replica:j
      | None -> ordered_issue t ~born:(Simnet.now t.net) a
    end
  | _ -> ordered_issue t ~born:(Simnet.now t.net) a

(* --- replica-side handlers (local reads, write acks) --------------------------- *)

let serve_read t rep ~rid ~client ~lo ~hi =
  let e = rep.r_leases.(rep.r_idx) in
  let now = Simnet.now t.net in
  let proc = learner_proc t rep.r_idx in
  let valid = t.broken_leases || now < e.ls_until in
  let covered = Btree.Keyset.subset (Btree.Keyset.range ~lo ~hi) e.ls_keys in
  if t.cfg.leases && valid && covered then begin
    Protocol.Counters.incr t.ctrs "kv_local_reads";
    let oc =
      rep.r_svc.Smr.Btree_service.service.Smr.Service.execute
        (Smr.Btree_service.Query { lo; hi })
    in
    let obs =
      if lo = hi then Btree.find rep.r_svc.Smr.Btree_service.tree lo else None
    in
    trace t (fun tr ->
        Trace.span tr ~pid:(Simnet.pid proc) ~cat:"lease" ~name:"local-read"
          ~ts:now ~dur:oc.Smr.Service.cost);
    Simnet.exec t.net proc ~dur:oc.Smr.Service.cost (fun () ->
        Simnet.send t.net ~src:proc ~dst:(client_proc t client)
          ~size:oc.Smr.Service.resp_size
          (KReadResp { rid; ok = true; obs }))
  end
  else begin
    Protocol.Counters.incr t.ctrs "kv_local_nacks";
    Simnet.send t.net ~src:proc ~dst:(client_proc t client) ~size:64
      (KReadResp { rid; ok = false; obs = None })
  end

let handle_wack t ~uid ~replica =
  Protocol.Counters.incr t.ctrs "kv_wacks";
  if not (Hashtbl.mem t.done_uids uid) then begin
    match Hashtbl.find_opt t.wpend uid with
    | Some w ->
        w.w_need <- List.filter (fun j -> j <> replica) w.w_need;
        if w.w_need = [] then begin
          Hashtbl.remove t.wpend uid;
          trace t (fun tr ->
              Trace.aend tr
                ~pid:(Simnet.pid (learner_proc t w.w_replica))
                ~cat:"lease" ~name:"write-defer" ~id:uid
                ~ts:(Simnet.now t.net));
          respond_now t ~replica:w.w_replica ~uid ~client:w.w_client
            ~obs:w.w_obs ~size:w.w_size
            ~at:(Stdlib.max w.w_commit (Simnet.now t.net))
        end
    | None ->
        (* Ack raced ahead of the responder's own apply: bank it. *)
        let l =
          match Hashtbl.find_opt t.early_acks uid with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add t.early_acks uid l;
              l
        in
        l := replica :: !l
  end

(* --- client response handler ----------------------------------------------------- *)

let handle_client_msg t (m : Simnet.msg) prev =
  match m.Simnet.payload with
  | KResp { uid; obs } when Hashtbl.mem t.inflight uid ->
      let inf = Hashtbl.find t.inflight uid in
      Hashtbl.remove t.inflight uid;
      complete t inf ~obs ~res:(Simnet.now t.net)
  | KReadResp { rid; ok; obs } -> begin
      match Hashtbl.find_opt t.pending_reads rid with
      | None -> ()  (* timed out; the ordered fallback owns it now *)
      | Some p ->
          Hashtbl.remove t.pending_reads rid;
          Simnet.cancel t.net p.p_timer;
          if ok then begin
            let now = Simnet.now t.net in
            Slo.add t.slo ~cls:"read-local" (now -. p.p_born);
            record_read t ~key:p.p_key ~obs ~inv:p.p_born ~res:now
          end
          else begin
            Protocol.Counters.incr t.ctrs "kv_local_nacks_seen";
            t.backoff.(p.p_replica) <-
              Simnet.now t.net +. t.cfg.lease_backoff;
            ordered_issue t ~born:p.p_born p.p_arr
          end
    end
  | _ -> prev m

(* --- construction ---------------------------------------------------------------- *)

let create ?on_broadcast ?on_deliver net cfg ~n_clients =
  if n_clients <= 0 then invalid_arg "Kv.create: n_clients";
  let reps =
    Array.init cfg.n_replicas (fun r ->
        (* Same seed: every replica starts from the identical tree. *)
        let svc =
          Smr.Btree_service.create ~initial_keys:cfg.initial_keys
            ~key_range:cfg.key_range ~seed:1 ()
        in
        { r_idx = r;
          r_svc = svc;
          r_exec = None;
          r_leases =
            Array.init cfg.n_replicas (fun _ ->
                { ls_keys = Btree.Keyset.empty; ls_until = 0.0; ls_epoch = 0 }) })
  in
  let init_vals = Hashtbl.create 1024 in
  if cfg.record_history then
    List.iter
      (fun (k, v) -> Hashtbl.replace init_vals k v)
      (Btree.range reps.(0).r_svc.Smr.Btree_service.tree ~lo:min_int
         ~hi:max_int);
  let t =
    { net;
      cfg;
      n_clients;
      mr = None;
      reps;
      ctrs = Protocol.Counters.create ();
      slo = Slo.create ();
      inflight = Hashtbl.create 4096;
      wpend = Hashtbl.create 256;
      early_acks = Hashtbl.create 256;
      done_uids = Hashtbl.create 4096;
      applied = Hashtbl.create 4096;
      pending_reads = Hashtbl.create 1024;
      backoff = Array.make cfg.n_replicas 0.0;
      init_vals;
      hist = [];
      next_rid = 0;
      rr = 0;
      read_rr = 0;
      issued = 0;
      drops = 0;
      broken_leases = false;
      on_broadcast;
      on_deliver }
  in
  let mcfg =
    { Multiring.ring = cfg.ring;
      n_rings = 1;
      n_groups = 0;
      lambda = cfg.lambda;
      delta = cfg.delta;
      m = cfg.merge_m;
      buffer_items = 500_000 }
  in
  let mr =
    Multiring.create net mcfg ~n_learners:cfg.n_replicas
      ~subs:(fun _ -> [ 0 ])
      ~proposers_per_ring:(n_clients + cfg.n_replicas)
      ~deliver:(fun ~learner ~group it -> deliver t ~learner ~group it)
  in
  t.mr <- Some mr;
  Array.iter
    (fun rep ->
      rep.r_exec <-
        Some
          (Psmr.Executor.create
             ?tracer:(Simnet.tracer net)
             ~pid:(Simnet.pid (Multiring.learner_proc mr rep.r_idx))
             ~mode:Psmr.Executor.Pessimistic ~n_workers:cfg.n_workers
             rep.r_svc.Smr.Btree_service.service))
    t.reps;
  (* Replica-side handlers: local read requests and write acks arrive on
     the learner process, chained in front of the ring's own handler. *)
  Array.iter
    (fun rep ->
      let p = Multiring.learner_proc mr rep.r_idx in
      let prev = Simnet.handler_of p in
      Simnet.set_handler p (fun m ->
          match m.Simnet.payload with
          | KReadReq { rid; client; lo; hi } ->
              serve_read t rep ~rid ~client ~lo ~hi
          | KWAck { uid; replica } -> handle_wack t ~uid ~replica
          | _ -> prev m))
    t.reps;
  (* Client handlers on the ring-0 proposer processes. *)
  for c = 0 to n_clients - 1 do
    let p = Multiring.proposer_proc mr ~group:0 ~proposer:c in
    let prev = Simnet.handler_of p in
    Simnet.set_handler p (fun m -> handle_client_msg t m prev)
  done;
  t

(* --- lease grants ----------------------------------------------------------------- *)

(* Replica [r] proposes its own lease renewals through the ordered log as
   ring proposer [n_clients + r]; the grant carries an absolute expiry
   stamped at submit time, so it is identical at every replica whenever it
   is applied (leases strictly shrink while in flight — conservative). *)
let start_leases t ~until =
  if t.cfg.leases then
    Array.iter
      (fun rep ->
        let r = rep.r_idx in
        let rec loop () =
          let now = Simnet.now t.net in
          if now <= until then begin
            let uid =
              Multiring.multicast (the_mr t) ~group:0
                ~proposer:(t.n_clients + r) ~size:64
                (KGrant
                   { replica = r;
                     keys = Btree.Keyset.full;
                     until = now +. t.cfg.lease_dur })
            in
            if uid >= 0 then begin
              Protocol.Counters.incr t.ctrs "kv_lease_grants";
              match t.on_broadcast with Some f -> f ~uid | None -> ()
            end;
            ignore (Simnet.after t.net (t.cfg.lease_dur /. 2.0) loop)
          end
        in
        ignore (Simnet.after t.net (1.0e-4 *. float_of_int (r + 1)) loop))
      t.reps

let start_open t wl ~until =
  start_leases t ~until;
  let engine = Simnet.engine t.net in
  let rec arm () =
    (* Peek, don't consume: the lookahead past the horizon stays in the
       generator (see Workload.Open_loop.peek). *)
    let a = OL.peek wl in
    if a.OL.at <= until then begin
      ignore (OL.next wl);
      ignore
        (Sim.Engine.at engine ~time:a.OL.at (fun () ->
             issue t a;
             arm ()))
    end
  in
  arm ()

(* --- accessors -------------------------------------------------------------------- *)

let slo t = t.slo
let counters t = Protocol.Counters.snapshot t.ctrs
let counter t name = Protocol.Counters.get t.ctrs name
let issued t = t.issued
let drops t = t.drops
let inflight_count t = Hashtbl.length t.inflight
let pending_writes t = Hashtbl.length t.wpend
let pending_local_reads t = Hashtbl.length t.pending_reads

let executed t =
  Array.fold_left (fun acc rep -> acc + Psmr.Executor.executed (exec_of rep)) 0 t.reps

let state_fingerprint_at t r = Smr.Btree_service.fingerprint t.reps.(r).r_svc

let lease_valid t ~replica =
  let e = t.reps.(replica).r_leases.(replica) in
  Simnet.now t.net < e.ls_until

let lease_epoch t ~replica = t.reps.(replica).r_leases.(replica).ls_epoch

let replica_proc t r = learner_proc t r
let client_proc t c = client_proc t c

let history t =
  (* Writes issued but never acknowledged may still have executed; those
     that provably applied somewhere are kept with an open response time
     (the checker may linearize them anywhere after invocation). *)
  let tail =
    Hashtbl.fold
      (fun uid inf acc ->
        match inf.i_hist with
        | Some (HWrite (key, value)) when Hashtbl.mem t.applied uid ->
            { Smr.Linearizability.Kv.key; kind = `Write value;
              inv = inf.i_born; res = infinity }
            :: acc
        | _ -> acc)
      t.inflight []
  in
  tail @ t.hist

let check_history t =
  Smr.Linearizability.Kv.check
    ~init:(fun k -> Hashtbl.find_opt t.init_vals k)
    (history t)

module Testing = struct
  let break_leases t = t.broken_leases <- true
end
