type row = {
  cls : string;
  count : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

type t = {
  meters : (string, Sim.Stats.Latency.t) Hashtbl.t;
  mutable order : string list;  (* first-seen order, for stable tables *)
}

let create () = { meters = Hashtbl.create 8; order = [] }

let meter t cls =
  match Hashtbl.find_opt t.meters cls with
  | Some m -> m
  | None ->
      let m = Sim.Stats.Latency.create () in
      Hashtbl.add t.meters cls m;
      t.order <- t.order @ [ cls ];
      m

let add t ~cls lat = Sim.Stats.Latency.add (meter t cls) lat

let classes t = t.order

let latency t cls = Hashtbl.find_opt t.meters cls

let row_of t cls =
  let m = meter t cls in
  let ms v = v *. 1e3 in
  { cls;
    count = Sim.Stats.Latency.count m;
    mean_ms = ms (Sim.Stats.Latency.mean m);
    p50_ms = ms (Sim.Stats.Latency.percentile m 0.50);
    p99_ms = ms (Sim.Stats.Latency.percentile m 0.99);
    p999_ms = ms (Sim.Stats.Latency.percentile m 0.999);
    max_ms = ms (Sim.Stats.Latency.max m) }

let rows t = List.map (row_of t) t.order

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "  %-12s %8s %9s %9s %9s %9s %9s\n" "class" "count"
       "mean(ms)" "p50(ms)" "p99(ms)" "p999(ms)" "max(ms)");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %8d %9.3f %9.3f %9.3f %9.3f %9.3f\n" r.cls
           r.count r.mean_ms r.p50_ms r.p99_ms r.p999_ms r.max_ms))
    (rows t);
  Buffer.contents b

let json_row r =
  Printf.sprintf
    "{\"class\":%S,\"count\":%d,\"mean_ms\":%.6f,\"p50_ms\":%.6f,\"p99_ms\":%.6f,\"p999_ms\":%.6f,\"max_ms\":%.6f}"
    r.cls r.count r.mean_ms r.p50_ms r.p99_ms r.p999_ms r.max_ms
