module OL = Smr.Workload.Open_loop

type preset = A | B | C | D | E | F

let all = [ A; B; C; D; E; F ]

let name = function
  | A -> "ycsb-a"
  | B -> "ycsb-b"
  | C -> "ycsb-c"
  | D -> "ycsb-d"
  | E -> "ycsb-e"
  | F -> "ycsb-f"

let of_name s =
  List.find_opt (fun p -> name p = s || name p = "ycsb-" ^ s) all

let describe = function
  | A -> "update heavy: 50% read / 50% update, zipf"
  | B -> "read mostly: 95% read / 5% update, zipf"
  | C -> "read only: 100% read, zipf"
  | D -> "read latest: 95% read / 5% insert, latest-key"
  | E -> "short ranges: 95% scan / 5% insert, zipf"
  | F -> "read-modify-write: 50% read / 50% rmw, zipf"

(* The standard YCSB mixes (Cooper et al., SoCC'10), expressed as weighted
   op lists for {!Smr.Workload.Open_loop}. *)
let ops = function
  | A -> [ (OL.Read, 50); (OL.Update, 50) ]
  | B -> [ (OL.Read, 95); (OL.Update, 5) ]
  | C -> [ (OL.Read, 100) ]
  | D -> [ (OL.Read, 95); (OL.Insert, 5) ]
  | E -> [ (OL.Scan, 95); (OL.Insert, 5) ]
  | F -> [ (OL.Read, 50); (OL.Rmw, 50) ]

(* YCSB's scrambled-zipfian constant. *)
let zipf_s = 0.99

let dist = function
  | D -> OL.Latest zipf_s
  | _ -> OL.Zipf zipf_s

let workload ?(key_range = 100_000) ?(query_span = 50) p rng ~rate =
  OL.create ~ops:(ops p) ~dist:(dist p) ~query_span rng ~key_range ~rate
