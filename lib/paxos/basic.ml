type config = {
  dissemination : [ `Mcast | `Ucast ];
  window : int;
  batch_bytes : int;
  batch_timeout : float;
  extra_cpu_per_instance : float;
  hb_period : float;
  hb_timeout : float;
  repair_timeout : float;
  resubmit_timeout : float;
}

let default_config =
  { dissemination = `Mcast;
    window = 32;
    batch_bytes = 0;
    batch_timeout = 5.0e-4;
    extra_cpu_per_instance = 0.0;
    hb_period = 0.02;
    hb_timeout = 0.2;
    repair_timeout = 0.01;
    resubmit_timeout = 0.5 }

let hdr = 64 (* protocol header bytes on every message *)

type Simnet.payload +=
  | Propose of Value.item
  | P1a of { rnd : int; coord : int }
  | P1b of { rnd : int; acc : int; votes : (int * int * Value.t) list }
  | P2a of { inst : int; rnd : int; value : Value.t }
  | P2b of { inst : int; rnd : int; vid : int }
  | Decision of { inst : int; vid : int; value : Value.t option }
  | Ack of { uid : int }
  | RepairReq of { inst : int; learner : int }
  | Heartbeat of { coord : int }
  | NewCoord of { coord : int }

type inst_info = {
  i_value : Value.t;
  mutable i_votes : int;
  mutable i_decided : bool;
}

type coord = {
  c_proc : Simnet.proc;
  c_rank : int;
  mutable c_active : bool;
  mutable c_rnd : int;
  mutable c_phase1_ok : bool;
  mutable c_p1b : int;
  c_claimed : (int, int * Value.t) Hashtbl.t; (* inst -> (vrnd, value) *)
  mutable c_next_inst : int;
  mutable c_outstanding : int;
  c_pending : Value.item Queue.t;
  mutable c_pending_bytes : int;
  mutable c_batch : Value.item list;
  mutable c_batch_size : int;
  mutable c_batch_timer : Sim.Engine.handle option;
  c_insts : (int, inst_info) Hashtbl.t;
  c_decisions : (int, Value.t) Hashtbl.t;
  mutable c_last_hb : float;
  mutable c_decided : int;
}

type acc = {
  a_proc : Simnet.proc;
  a_idx : int;
  mutable a_rnd : int;
  a_votes : (int, int * Value.t) Hashtbl.t; (* inst -> (vrnd, vval) *)
}

type lrn = {
  l_proc : Simnet.proc;
  l_idx : int;
  mutable l_next : int;
  l_ready : (int, Value.t) Hashtbl.t; (* decided, awaiting in-order delivery *)
  l_vals : (int, Value.t) Hashtbl.t; (* vid -> value (mcast dissemination) *)
  l_wait : (int, int) Hashtbl.t; (* inst -> vid, decision without value yet *)
  l_seen : (int, unit) Hashtbl.t; (* delivered uids *)
  mutable l_repairing : bool;
}

type prop = {
  p_proc : Simnet.proc;
  p_idx : int;
  mutable p_coord : int; (* rank of believed-active coordinator *)
  p_unacked : (int, Value.item) Hashtbl.t;
  mutable p_unacked_bytes : int;
  p_last_sent : (int, float) Hashtbl.t;
  mutable p_buffer : int;  (* client-side buffer bound, bytes *)
}

type t = {
  net : Simnet.t;
  cfg : config;
  coords : coord array;
  accs : acc array;
  lrns : lrn array;
  props : prop array;
  g_all : Simnet.group; (* acceptors + learners + coordinators *)
  deliver : learner:int -> inst:int -> Value.t -> unit;
  mutable next_uid : int;
  mutable next_vid : int;
  mutable delivered0 : int;
}

let majority t = (Array.length t.accs / 2) + 1

let active_coord t =
  let found = ref None in
  Array.iter (fun c -> if c.c_active && Simnet.is_alive c.c_proc && !found = None then found := Some c) t.coords;
  !found

(* --- coordinator ----------------------------------------------------- *)

let send_to_acceptors t c ~size payload =
  match t.cfg.dissemination with
  | `Mcast -> Simnet.mcast t.net ~src:c.c_proc t.g_all ~size payload
  | `Ucast ->
      Array.iter (fun a -> Simnet.send t.net ~src:c.c_proc ~dst:a.a_proc ~size payload) t.accs

let announce_decision t c inst (v : Value.t) =
  match t.cfg.dissemination with
  | `Mcast ->
      (* Learners already hold the value from the Phase 2A multicast. *)
      Simnet.mcast t.net ~src:c.c_proc t.g_all ~size:hdr (Decision { inst; vid = v.vid; value = None })
  | `Ucast ->
      Array.iter
        (fun l ->
          Simnet.send t.net ~src:c.c_proc ~dst:l.l_proc ~size:(v.size + hdr)
            (Decision { inst; vid = v.vid; value = Some v }))
        t.lrns

let ack_items t c (v : Value.t) =
  List.iter
    (fun (it : Value.item) ->
      let origin = Value.uid_origin it.uid in
      if origin < Array.length t.props then
        Simnet.send t.net ~src:c.c_proc ~dst:t.props.(origin).p_proc ~size:hdr (Ack { uid = it.uid }))
    v.items

let propose_instance t c inst (v : Value.t) =
  Hashtbl.replace c.c_insts inst { i_value = v; i_votes = 0; i_decided = false };
  c.c_outstanding <- c.c_outstanding + 1;
  Simnet.charge_cpu t.net c.c_proc t.cfg.extra_cpu_per_instance;
  let p2a = P2a { inst; rnd = c.c_rnd; value = v } in
  match t.cfg.dissemination with
  | `Mcast -> Simnet.mcast t.net ~src:c.c_proc t.g_all ~size:(v.size + hdr) p2a
  | `Ucast ->
      Array.iter
        (fun a -> Simnet.send t.net ~src:c.c_proc ~dst:a.a_proc ~size:(v.size + hdr) p2a)
        t.accs

let seal_batch t c =
  (* Pop pending items up to the batch size (or a single item when batching
     is disabled). *)
  if t.cfg.batch_bytes <= 0 then begin
    if Queue.is_empty c.c_pending then []
    else begin
      let it = Queue.pop c.c_pending in
      c.c_pending_bytes <- c.c_pending_bytes - it.Value.isize;
      [ it ]
    end
  end
  else begin
    let items = ref [] and size = ref 0 in
    let continue = ref true in
    while !continue && not (Queue.is_empty c.c_pending) do
      let (it : Value.item) = Queue.peek c.c_pending in
      if !size > 0 && !size + it.isize > t.cfg.batch_bytes then continue := false
      else begin
        ignore (Queue.pop c.c_pending);
        c.c_pending_bytes <- c.c_pending_bytes - it.isize;
        items := it :: !items;
        size := !size + it.isize
      end
    done;
    List.rev !items
  end

let propose_batch t c =
  match seal_batch t c with
  | [] -> ()
  | items ->
      t.next_vid <- t.next_vid + 1;
      let v = Value.make ~vid:t.next_vid items in
      let inst = c.c_next_inst in
      c.c_next_inst <- inst + 1;
      propose_instance t c inst v

(* A consensus instance is triggered when a batch is full or the batch
   timeout fires (§3.5.2), and only while the window has room. *)
let rec drain t c =
  if c.c_phase1_ok && c.c_active && Simnet.is_alive c.c_proc then begin
    (* Re-propose values claimed during Phase 1 first. *)
    let claimed = Hashtbl.fold (fun i (_, v) acc -> (i, v) :: acc) c.c_claimed [] in
    Hashtbl.reset c.c_claimed;
    List.iter
      (fun (inst, v) ->
        if not (Hashtbl.mem c.c_insts inst) then propose_instance t c inst v;
        if inst >= c.c_next_inst then c.c_next_inst <- inst + 1)
      (List.sort compare claimed);
    let batch_ready () =
      (not (Queue.is_empty c.c_pending))
      && (t.cfg.batch_bytes <= 0 || c.c_pending_bytes >= t.cfg.batch_bytes)
    in
    while c.c_outstanding < t.cfg.window && batch_ready () do
      propose_batch t c
    done;
    if (not (Queue.is_empty c.c_pending)) && c.c_batch_timer = None then
      c.c_batch_timer <-
        Some
          (Simnet.after t.net t.cfg.batch_timeout (fun () ->
               c.c_batch_timer <- None;
               if
                 c.c_active && Simnet.is_alive c.c_proc && c.c_phase1_ok
                 && c.c_outstanding < t.cfg.window
               then propose_batch t c;
               drain t c))
  end

let coord_on_decided t c inst (info : inst_info) =
  if not info.i_decided then begin
    info.i_decided <- true;
    c.c_decided <- c.c_decided + 1;
    c.c_outstanding <- c.c_outstanding - 1;
    Hashtbl.replace c.c_decisions inst info.i_value;
    announce_decision t c inst info.i_value;
    ack_items t c info.i_value;
    drain t c
  end

let start_phase1 t c =
  c.c_rnd <- c.c_rnd + Array.length t.coords;
  c.c_phase1_ok <- false;
  c.c_p1b <- 0;
  send_to_acceptors t c ~size:hdr (P1a { rnd = c.c_rnd; coord = c.c_rank })

let coord_handler t c (m : Simnet.msg) =
  match m.payload with
  | Propose item ->
      if c.c_active then begin
        Queue.push item c.c_pending;
        c.c_pending_bytes <- c.c_pending_bytes + item.Value.isize;
        drain t c
      end
  | P1b { rnd; acc = _; votes } ->
      if rnd = c.c_rnd && not c.c_phase1_ok then begin
        List.iter
          (fun (inst, vrnd, vval) ->
            match Hashtbl.find_opt c.c_claimed inst with
            | Some (r, _) when r >= vrnd -> ()
            | _ -> Hashtbl.replace c.c_claimed inst (vrnd, vval))
          votes;
        c.c_p1b <- c.c_p1b + 1;
        if c.c_p1b >= majority t then begin
          c.c_phase1_ok <- true;
          drain t c
        end
      end
  | P2b { inst; rnd; vid = _ } ->
      if rnd = c.c_rnd then begin
        match Hashtbl.find_opt c.c_insts inst with
        | Some info when not info.i_decided ->
            info.i_votes <- info.i_votes + 1;
            if info.i_votes >= majority t then coord_on_decided t c inst info
        | _ -> ()
      end
  | RepairReq { inst; learner } -> begin
      match Hashtbl.find_opt c.c_decisions inst with
      | Some v when c.c_active ->
          Simnet.send t.net ~src:c.c_proc ~dst:t.lrns.(learner).l_proc ~size:(v.size + hdr)
            (Decision { inst; vid = v.vid; value = Some v })
      | _ -> ()
    end
  | Heartbeat { coord } ->
      if coord <> c.c_rank then c.c_last_hb <- Simnet.now t.net
  | NewCoord { coord } -> if coord <> c.c_rank then c.c_active <- false
  | _ -> ()

(* --- acceptor -------------------------------------------------------- *)

let acc_handler t a (m : Simnet.msg) =
  match m.payload with
  | P1a { rnd; coord } ->
      if rnd > a.a_rnd then begin
        a.a_rnd <- rnd;
        let votes = Hashtbl.fold (fun i (vr, vv) l -> (i, vr, vv) :: l) a.a_votes [] in
        let size = hdr + (List.length votes * 16) in
        Simnet.send t.net ~src:a.a_proc ~dst:t.coords.(coord).c_proc ~size
          (P1b { rnd; acc = a.a_idx; votes })
      end
  | P2a { inst; rnd; value } ->
      if rnd >= a.a_rnd then begin
        a.a_rnd <- rnd;
        Hashtbl.replace a.a_votes inst (rnd, value);
        let coord = ref None in
        Array.iter (fun c -> if c.c_rnd = rnd then coord := Some c) t.coords;
        let target =
          match !coord with Some c -> c | None -> t.coords.(0)
        in
        Simnet.send t.net ~src:a.a_proc ~dst:target.c_proc ~size:hdr
          (P2b { inst; rnd; vid = value.vid })
      end
  | _ -> ()

(* --- learner --------------------------------------------------------- *)

let rec lrn_advance t l =
  match Hashtbl.find_opt l.l_ready l.l_next with
  | Some v ->
      Hashtbl.remove l.l_ready l.l_next;
      let inst = l.l_next in
      l.l_next <- inst + 1;
      List.iter
        (fun (it : Value.item) ->
          if not (Hashtbl.mem l.l_seen it.uid) then begin
            Hashtbl.add l.l_seen it.uid ();
            if l.l_idx = 0 then t.delivered0 <- t.delivered0 + 1
          end)
        v.items;
      t.deliver ~learner:l.l_idx ~inst v;
      lrn_advance t l
  | None ->
      if (Hashtbl.length l.l_ready > 0 || Hashtbl.length l.l_wait > 0) && not l.l_repairing
      then begin
        l.l_repairing <- true;
        ignore
          (Simnet.after t.net t.cfg.repair_timeout (fun () ->
               l.l_repairing <- false;
               if Simnet.is_alive l.l_proc
                  && (Hashtbl.length l.l_ready > 0 || Hashtbl.length l.l_wait > 0)
               then begin
                 match active_coord t with
                 | Some c ->
                     Simnet.send t.net ~src:l.l_proc ~dst:c.c_proc ~size:hdr
                       (RepairReq { inst = l.l_next; learner = l.l_idx });
                     lrn_advance t l
                 | None -> ()
               end))
      end

let lrn_record t l inst (v : Value.t) =
  if inst >= l.l_next && not (Hashtbl.mem l.l_ready inst) then begin
    Hashtbl.replace l.l_ready inst v;
    lrn_advance t l
  end

let lrn_handler t l (m : Simnet.msg) =
  match m.payload with
  | P2a { inst = _; rnd = _; value } -> Hashtbl.replace l.l_vals value.vid value
  | Decision { inst; vid; value = Some v } ->
      ignore vid;
      lrn_record t l inst v
  | Decision { inst; vid; value = None } -> begin
      match Hashtbl.find_opt l.l_vals vid with
      | Some v -> lrn_record t l inst v
      | None ->
          Hashtbl.replace l.l_wait inst vid;
          lrn_advance t l
    end
  | _ -> ()

(* --- proposer -------------------------------------------------------- *)

let prop_handler p (m : Simnet.msg) =
  match m.payload with
  | Ack { uid } ->
      (match Hashtbl.find_opt p.p_unacked uid with
      | Some it -> p.p_unacked_bytes <- p.p_unacked_bytes - it.Value.isize
      | None -> ());
      Hashtbl.remove p.p_unacked uid;
      Hashtbl.remove p.p_last_sent uid
  | NewCoord { coord } -> p.p_coord <- coord
  | _ -> ()

let rec resubmit_loop t p =
  ignore
    (Simnet.after t.net t.cfg.resubmit_timeout (fun () ->
         if Simnet.is_alive p.p_proc then begin
           (match active_coord t with
           | Some c ->
               Hashtbl.iter
                 (fun uid (it : Value.item) ->
                   let last =
                     Option.value ~default:0.0 (Hashtbl.find_opt p.p_last_sent uid)
                   in
                   if Simnet.now t.net -. last > t.cfg.resubmit_timeout then begin
                     Hashtbl.replace p.p_last_sent uid (Simnet.now t.net);
                     Simnet.send t.net ~src:p.p_proc ~dst:c.c_proc ~size:(it.isize + hdr)
                       (Propose it)
                   end)
                 p.p_unacked
           | None -> ());
           resubmit_loop t p
         end))

(* --- standby takeover ------------------------------------------------ *)

let monitor_standby t c =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.hb_period (fun () ->
         if Simnet.is_alive c.c_proc && not c.c_active then begin
           let silent = Simnet.now t.net -. c.c_last_hb > t.cfg.hb_timeout in
           let predecessors_dead =
             Array.for_all
               (fun c' -> c'.c_rank >= c.c_rank || not (Simnet.is_alive c'.c_proc))
               t.coords
           in
           if silent && predecessors_dead then begin
             c.c_active <- true;
             Array.iter
               (fun p ->
                 Simnet.send t.net ~src:c.c_proc ~dst:p.p_proc ~size:hdr
                   (NewCoord { coord = c.c_rank }))
               t.props;
             Array.iter
               (fun l ->
                 Simnet.send t.net ~src:c.c_proc ~dst:l.l_proc ~size:hdr
                   (NewCoord { coord = c.c_rank }))
               t.lrns;
             start_phase1 t c
           end
         end)
  in
  ()

let heartbeat_loop t =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.hb_period (fun () ->
         match active_coord t with
         | Some c ->
             Array.iter
               (fun c' ->
                 if c' != c && Simnet.is_alive c'.c_proc then
                   Simnet.send t.net ~src:c.c_proc ~dst:c'.c_proc ~size:hdr
                     (Heartbeat { coord = c.c_rank }))
               t.coords
         | None -> ())
  in
  ()

(* --- construction ---------------------------------------------------- *)

let create net cfg ~n_acceptors ~n_standby ~n_proposers ~n_learners ~deliver =
  let mk_proc role i =
    let node = Simnet.add_node net (Printf.sprintf "%s%d" role i) in
    Simnet.add_proc net node (Printf.sprintf "%s%d" role i)
  in
  let coords =
    Array.init (1 + n_standby) (fun i ->
        { c_proc = mk_proc "coord" i;
          c_rank = i;
          c_active = i = 0;
          c_rnd = i;
          c_phase1_ok = false;
          c_p1b = 0;
          c_claimed = Hashtbl.create 64;
          c_next_inst = 0;
          c_outstanding = 0;
          c_pending = Queue.create ();
          c_pending_bytes = 0;
          c_batch = [];
          c_batch_size = 0;
          c_batch_timer = None;
          c_insts = Hashtbl.create 1024;
          c_decisions = Hashtbl.create 1024;
          c_last_hb = 0.0;
          c_decided = 0 })
  in
  let accs =
    Array.init n_acceptors (fun i ->
        { a_proc = mk_proc "acc" i; a_idx = i; a_rnd = 0; a_votes = Hashtbl.create 1024 })
  in
  let lrns =
    Array.init n_learners (fun i ->
        { l_proc = mk_proc "lrn" i;
          l_idx = i;
          l_next = 0;
          l_ready = Hashtbl.create 1024;
          l_vals = Hashtbl.create 1024;
          l_wait = Hashtbl.create 64;
          l_seen = Hashtbl.create 4096;
          l_repairing = false })
  in
  let props =
    Array.init n_proposers (fun i ->
        { p_proc = mk_proc "prop" i;
          p_idx = i;
          p_coord = 0;
          p_unacked = Hashtbl.create 64;
          p_unacked_bytes = 0;
          p_last_sent = Hashtbl.create 64;
          p_buffer = 2 * 1024 * 1024 })
  in
  let g_all = Simnet.new_group net "paxos-all" in
  Array.iter (fun c -> Simnet.join g_all c.c_proc) coords;
  Array.iter (fun a -> Simnet.join g_all a.a_proc) accs;
  Array.iter (fun l -> Simnet.join g_all l.l_proc) lrns;
  let t =
    { net; cfg; coords; accs; lrns; props; g_all; deliver;
      next_uid = 0; next_vid = 0; delivered0 = 0 }
  in
  Array.iter (fun c -> Simnet.set_handler c.c_proc (coord_handler t c)) coords;
  Array.iter (fun a -> Simnet.set_handler a.a_proc (acc_handler t a)) accs;
  Array.iter (fun l -> Simnet.set_handler l.l_proc (lrn_handler t l)) lrns;
  Array.iter
    (fun p ->
      Simnet.set_handler p.p_proc (prop_handler p);
      resubmit_loop t p)
    props;
  Array.iter (fun c -> if not c.c_active then monitor_standby t c) coords;
  heartbeat_loop t;
  start_phase1 t coords.(0);
  t

let submit t ~proposer ~size app =
  let p = t.props.(proposer) in
  if p.p_unacked_bytes + size > p.p_buffer then -1
  else begin
    t.next_uid <- t.next_uid + 1;
    (* The uid encodes the originating proposer so the coordinator can
       route acknowledgments without extra fields (see Value.make_uid). *)
    let uid = Value.make_uid ~seq:t.next_uid ~origin:proposer in
    let item = { Value.uid; isize = size; app; born = Simnet.now t.net } in
    Hashtbl.replace p.p_unacked uid item;
    p.p_unacked_bytes <- p.p_unacked_bytes + size;
    Hashtbl.replace p.p_last_sent uid (Simnet.now t.net);
    (match active_coord t with
    | Some c -> Simnet.send t.net ~src:p.p_proc ~dst:c.c_proc ~size:(size + hdr) (Propose item)
    | None -> ());
    uid
  end

let coordinator t =
  match active_coord t with Some c -> c.c_proc | None -> t.coords.(0).c_proc

let acceptor t i = t.accs.(i).a_proc
let learner_proc t i = t.lrns.(i).l_proc
let proposer_proc t i = t.props.(i).p_proc

let kill_coordinator t =
  match active_coord t with Some c -> Simnet.kill t.net c.c_proc | None -> ()

let kill_acceptor t i = Simnet.kill t.net t.accs.(i).a_proc

let decided t =
  Array.fold_left (fun acc c -> acc + c.c_decided) 0 t.coords

let delivered_items t = t.delivered0
