type item = { uid : int; isize : int; app : Simnet.payload; born : float }

(* Item uids pack a per-protocol sequence number above the id of the
   originating proposer (ring position for U-Ring), so every consumer that
   routes acknowledgments or responses can recover the origin without extra
   message fields.  20 bits of origin support ~1M proposers — the open-loop
   workloads stand in for millions of clients, and the previous 8-bit field
   silently wrapped past 255 proposers, routing responses to the wrong
   client. *)
let origin_bits = 20
let origin_mask = (1 lsl origin_bits) - 1
let make_uid ~seq ~origin = (seq lsl origin_bits) lor (origin land origin_mask)
let uid_origin uid = uid land origin_mask
let uid_seq uid = uid lsr origin_bits

type t = { vid : int; size : int; items : item list }

let make ~vid items =
  let size = List.fold_left (fun acc i -> acc + i.isize) 0 items in
  { vid; size; items }

let single ~vid ~uid ~size ~born app =
  { vid; size; items = [ { uid; isize = size; app; born } ] }

let skip ~vid = { vid; size = 0; items = [] }

let is_skip v = v.items = []

let pp fmt v = Format.fprintf fmt "value(vid=%d,size=%d,items=%d)" v.vid v.size (List.length v.items)
