(** Values decided by consensus.

    A value is a batch of application items: the coordinator packs proposals
    into fixed-size packets (§3.5.2), and consensus is executed on the batch.
    Each value carries a unique identifier [vid] so protocols that separate
    dissemination from ordering (Ring Paxos) can decide on ids alone. *)

type item = {
  uid : int;  (** globally unique item id, for duplicate suppression *)
  isize : int;  (** application bytes of this item *)
  app : Simnet.payload;  (** opaque application content *)
  born : float;  (** submission time, for end-to-end latency *)
}

type t = {
  vid : int;
  size : int;  (** total application bytes, the sum of item sizes *)
  items : item list;
}

(** {1 Item uid layout}

    Uids pack a per-protocol sequence number above the originating
    proposer id (ring position for U-Ring Paxos): [uid = seq lsl
    origin_bits lor origin].  All encoders and decoders must go through
    these helpers so the field width stays consistent; [origin_bits] is
    20, supporting ~1M proposers. *)

val origin_bits : int

val make_uid : seq:int -> origin:int -> int

(** The originating proposer id packed into a uid. *)
val uid_origin : int -> int

(** The monotone sequence number packed into a uid. *)
val uid_seq : int -> int

(** [make ~vid items] computes the size from the items. *)
val make : vid:int -> item list -> t

(** [single ~vid ~uid ~size ~born app] is a one-item value. *)
val single : vid:int -> uid:int -> size:int -> born:float -> Simnet.payload -> t

(** A zero-sized skip value (Multi-Ring Paxos skip instances). *)
val skip : vid:int -> t

val is_skip : t -> bool

val pp : Format.formatter -> t -> unit
