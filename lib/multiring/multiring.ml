type config = {
  ring : Ringpaxos.Mring.config;
  n_rings : int;
  n_groups : int;  (* 0 = one group per ring *)
  lambda : float;
  delta : float;
  m : int;
  buffer_items : int;
}

let default_config =
  { ring = Ringpaxos.Mring.default_config;
    n_rings = 2;
    n_groups = 0;
    lambda = 9000.0;
    delta = 1.0e-3;
    m = 1;
    buffer_items = 50_000 }

let groups_of cfg = if cfg.n_groups <= 0 then cfg.n_rings else cfg.n_groups

type Simnet.payload += Skip of { count : int }

(* Application payloads are tagged with their group so several groups can
   share one ring (the gamma-groups-to-delta-rings mapping of §5.2.4). *)
type Simnet.payload += Grouped of { group : int; app : Simnet.payload }

type lrn = {
  ml_idx : int;
  ml_subs : int array;  (* subscribed groups, ascending *)
  mutable ml_foreign : int;  (* items received for unsubscribed groups *)
  ml_queues : Paxos.Value.item Queue.t array;  (* one per subscribed group *)
  ml_credit : int array;  (* skip slots banked per subscribed group *)
  ml_recv : int array;  (* per group of the system *)
  mutable ml_cur : int;  (* index into ml_subs *)
  mutable ml_taken : int;  (* slots consumed from the current group *)
  mutable ml_buffered : int;
  mutable ml_halted : bool;
  mutable ml_delivered : int;
}

type t = {
  net : Simnet.t;
  cfg : config;
  mutable rings : Ringpaxos.Mring.t array;
  lrns : lrn array;
  deliver : learner:int -> group:int -> Paxos.Value.item -> unit;
  submitted : int array;  (* per group, messages in the current delta window *)
  skips : int array;  (* per group, total skip slots proposed *)
  deficits : int array;
      (* per group, skip slots owed but not yet submitted (the controller's
         proposal was rejected, e.g. a full buffer while its ring
         reconfigures) — carried into the next delta window so the merge
         never silently loses slots *)
  ring_learners : int array array;  (* ring -> multiring learner ids *)
}

let ring_of_group t g = g mod Array.length t.rings

let sub_slot l group =
  let rec go i = if l.ml_subs.(i) = group then i else go (i + 1) in
  go 0

(* Deterministic merge: consume [m] message slots per subscribed group, in
   ascending group order.  A real message fills one slot and is delivered; a
   skip message banks [count] slots of credit for its group, consumed round
   by round so idle groups never stall the others (§5.2.1). *)
let rec merge t l =
  if not l.ml_halted then begin
    let cur = l.ml_cur in
    let group = l.ml_subs.(cur) in
    let advance_if_done () =
      if l.ml_taken >= t.cfg.m then begin
        l.ml_taken <- 0;
        l.ml_cur <- (cur + 1) mod Array.length l.ml_subs
      end
    in
    if l.ml_credit.(cur) > 0 then begin
      let used = Stdlib.min l.ml_credit.(cur) (t.cfg.m - l.ml_taken) in
      l.ml_credit.(cur) <- l.ml_credit.(cur) - used;
      l.ml_taken <- l.ml_taken + used;
      advance_if_done ();
      merge t l
    end
    else begin
      match Queue.take_opt l.ml_queues.(cur) with
      | None -> () (* wait for traffic or a skip on this group *)
      | Some it ->
          l.ml_buffered <- l.ml_buffered - 1;
          (match it.app with
          | Skip { count } -> l.ml_credit.(cur) <- l.ml_credit.(cur) + count
          | _ ->
              l.ml_delivered <- l.ml_delivered + 1;
              l.ml_taken <- l.ml_taken + 1;
              t.deliver ~learner:l.ml_idx ~group it);
          advance_if_done ();
          merge t l
    end
  end

let subscribed l group = Array.exists (fun g -> g = group) l.ml_subs

let on_ring_deliver t _ring_id l (v : Paxos.Value.t) =
  List.iter
    (fun (it : Paxos.Value.item) ->
      let group, it =
        match it.app with
        | Grouped { group; app } -> (group, { it with app })
        | _ -> (-1, it)
      in
      if group >= 0 && subscribed l group then begin
        l.ml_recv.(group) <- l.ml_recv.(group) + 1;
        Queue.push it l.ml_queues.(sub_slot l group);
        l.ml_buffered <- l.ml_buffered + 1;
        if l.ml_buffered > t.cfg.buffer_items then l.ml_halted <- true
      end
      else
        (* Traffic of a co-hosted group this learner does not subscribe to:
           received, paid for, and discarded (§5.2.4's drawback). *)
        l.ml_foreign <- l.ml_foreign + 1)
    v.items;
  merge t l

(* The skip controller of one group: every delta, top the group's traffic up
   to lambda with a single batched skip message (§5.2.2).  A rejected skip
   proposal is not forgotten: its slots accumulate in the group's deficit
   and ride the next window, so a ring that briefly refuses proposals
   (reconfiguration handoff, full buffer) cannot starve the deterministic
   merge of the groups it carries. *)
let controller_loop t group =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.delta (fun () ->
        let expected = int_of_float (t.cfg.lambda *. t.cfg.delta) in
        let missing = expected - t.submitted.(group) + t.deficits.(group) in
        t.submitted.(group) <- 0;
        t.deficits.(group) <- 0;
        if missing > 0 && t.cfg.lambda > 0.0 then begin
          let uid =
            Ringpaxos.Mring.submit
              t.rings.(ring_of_group t group)
              ~proposer:0 (* the controller's dedicated proposer *)
              ~size:64
              (Grouped { group; app = Skip { count = missing } })
          in
          if uid >= 0 then t.skips.(group) <- t.skips.(group) + missing
          else
            (* Carry the debt, bounded to a second's worth of slots so a
               long outage cannot turn into an unbounded skip burst. *)
            t.deficits.(group) <-
              Stdlib.min missing (int_of_float (Stdlib.max t.cfg.lambda 1.0))
        end)
  in
  ()

let create ?learner_nodes net cfg ~n_learners ~subs ~proposers_per_ring ~deliver =
  let n_groups = groups_of cfg in
  let lrn_nodes =
    match learner_nodes with
    | Some nodes -> nodes
    | None -> Array.init n_learners (fun i -> Simnet.add_node net (Printf.sprintf "mrl%d" i))
  in
  let lrns =
    Array.init n_learners (fun i ->
        let groups = List.sort_uniq compare (subs i) in
        let subs = Array.of_list groups in
        { ml_idx = i;
          ml_subs = subs;
          ml_foreign = 0;
          ml_queues = Array.map (fun _ -> Queue.create ()) subs;
          ml_credit = Array.map (fun _ -> 0) subs;
          ml_recv = Array.make n_groups 0;
          ml_cur = 0;
          ml_taken = 0;
          ml_buffered = 0;
          ml_halted = false;
          ml_delivered = 0 })
  in
  (* A learner joins ring r when any of its groups maps to r. *)
  let ring_learners =
    Array.init cfg.n_rings (fun r ->
        Array.of_list
          (List.filter_map
             (fun l ->
               if Array.exists (fun g -> g mod cfg.n_rings = r) lrns.(l).ml_subs then Some l
               else None)
             (List.init n_learners Fun.id)))
  in
  let t =
    { net;
      cfg;
      rings = [||];
      lrns;
      deliver;
      submitted = Array.make n_groups 0;
      skips = Array.make n_groups 0;
      deficits = Array.make n_groups 0;
      ring_learners }
  in
  let rings =
    Array.init cfg.n_rings (fun r ->
        let members = ring_learners.(r) in
        let nodes = Array.map (fun l -> lrn_nodes.(l)) members in
        Ringpaxos.Mring.create ~learner_nodes:nodes net cfg.ring
          ~n_proposers:(proposers_per_ring + 1) (* +1 for the skip controller *)
          ~n_learners:(Array.length members)
          ~learner_parts:(fun _ -> [ 0 ])
          ~deliver:(fun ~learner ~inst:_ v ->
            match v with
            | Some v -> on_ring_deliver t r t.lrns.(members.(learner)) v
            | None -> ()))
  in
  t.rings <- rings;
  for g = 0 to n_groups - 1 do
    controller_loop t g
  done;
  t

let multicast t ~group ~proposer ~size app =
  (* Proposer 0 of every ring belongs to the skip controller. *)
  let uid =
    Ringpaxos.Mring.submit
      t.rings.(ring_of_group t group)
      ~proposer:(proposer + 1) ~size
      (Grouped { group; app })
  in
  (* Only accepted proposals count against the window: a rejected one will
     never be ordered, and counting it would make the controller under-skip
     and stall the merge at every subscriber of this group. *)
  if uid >= 0 then t.submitted.(group) <- t.submitted.(group) + 1;
  uid

let ring t i = t.rings.(i)

let index_in arr x =
  let rec go i = if arr.(i) = x then i else go (i + 1) in
  go 0

let learner_proc t l =
  let r = ring_of_group t t.lrns.(l).ml_subs.(0) in
  Ringpaxos.Mring.learner_proc t.rings.(r) (index_in t.ring_learners.(r) l)

let proposer_proc t ~group ~proposer =
  Ringpaxos.Mring.proposer_proc t.rings.(ring_of_group t group) (proposer + 1)
let n_rings t = Array.length t.rings
let learner_buffer t i = t.lrns.(i).ml_buffered
let learner_halted t i = t.lrns.(i).ml_halted

let learner_delivered t i = t.lrns.(i).ml_delivered

let received t ~learner ~group = t.lrns.(learner).ml_recv.(group)

let kill_ring_coordinator t r = Ringpaxos.Mring.kill_coordinator t.rings.(r)

(* Per-ring dynamic membership: a reconfiguration of one ring is invisible
   to the merge — the skip controllers of the groups it carries keep
   topping traffic up to lambda (with the deficit carrying over any window
   the handoff refuses), so subscribers merging this ring with others
   never stall or skew. *)
let reconfigure_ring t r ~ring = Ringpaxos.Mring.reconfigure t.rings.(r) ~ring ()
let ring_epoch t r = Ringpaxos.Mring.epoch t.rings.(r)

let skips_proposed t g = t.skips.(g)

let foreign_items t l = t.lrns.(l).ml_foreign
