(** Multi-Ring Paxos — Chapter 5's atomic multicast.

    One M-Ring Paxos instance per group; learners subscribe to one or more
    groups and merge the streams deterministically, delivering [m]
    messages per group in group-id order (Algorithm 1 of Chapter 5).
    Each ring's coordinator side runs a rate controller: every [delta]
    seconds it compares the traffic multicast to its group against
    [lambda] (the maximum expected rate) and proposes {e skip messages} to
    make up the difference, so a slow group never stalls the merge.

    A learner's rings all deliver to the same simulated machine, so the
    aggregate incoming bandwidth and CPU limits of Fig. 5.5 apply.  When a
    learner's unmerged buffer exceeds [buffer_items], the learner halts —
    the overflow behaviour of Fig. 5.9.

    Accounting note (documented substitution): skips are tracked in
    application messages rather than raw consensus instances; one small
    skip message proposed through the ring stands for [count] skipped
    slots, exactly like the paper's batched skip instances. *)

type config = {
  ring : Ringpaxos.Mring.config;  (** configuration of every ring *)
  n_rings : int;  (** rings (delta of §5.2.4) *)
  n_groups : int;
      (** groups (gamma); 0 means one group per ring.  With more groups
          than rings, group [g] is ordered by ring [g mod n_rings] and
          learners may receive (and discard) traffic of co-hosted groups
          they do not subscribe to — §5.2.4's trade-off. *)
  lambda : float;  (** max expected messages per second per group *)
  delta : float;  (** sampling interval of the skip controller *)
  m : int;  (** messages delivered per group per merge round *)
  buffer_items : int;  (** learner halt threshold (Fig. 5.9) *)
}

val default_config : config

type t

(** [create net cfg ~n_learners ~subs ~proposers_per_ring ~deliver] builds
    the ensemble; [subs l] lists the groups learner [l] subscribes to, and
    [deliver] fires in merged order with the originating group. *)
val create :
  ?learner_nodes:Simnet.node array ->
  Simnet.t ->
  config ->
  n_learners:int ->
  subs:(int -> int list) ->
  proposers_per_ring:int ->
  deliver:(learner:int -> group:int -> Paxos.Value.item -> unit) ->
  t

(** [multicast t ~group ~proposer ~size app] sends to one group. *)
val multicast : t -> group:int -> proposer:int -> size:int -> Simnet.payload -> int

val ring : t -> int -> Ringpaxos.Mring.t
val n_rings : t -> int

(** A network process of learner [l] (on its machine), for sending
    application responses. *)
val learner_proc : t -> int -> Simnet.proc

(** The process of application proposer [proposer] on [group]'s ring. *)
val proposer_proc : t -> group:int -> proposer:int -> Simnet.proc

(** Unmerged buffered messages at a learner (all groups). *)
val learner_buffer : t -> int -> int

val learner_halted : t -> int -> bool

(** Messages delivered (merged) at a learner. *)
val learner_delivered : t -> int -> int

(** Per-(learner, group) receive counter — the "receiving throughput"
    series of Fig. 5.11. *)
val received : t -> learner:int -> group:int -> int

val kill_ring_coordinator : t -> int -> unit

(** [reconfigure_ring t r ~ring] submits a membership change to ring [r]
    (see {!Ringpaxos.Mring.reconfigure}); returns the command's item uid.
    The merge is unaffected: the skip controllers of the groups carried by
    [r] keep topping traffic up to [lambda] across the handoff, carrying
    any refused window as a deficit into the next one. *)
val reconfigure_ring : t -> int -> ring:int list -> int

(** Membership epoch of ring [r]. *)
val ring_epoch : t -> int -> int

(** Skip messages proposed so far by the controller of a group. *)
val skips_proposed : t -> int -> int

(** Items learner [l] received for co-hosted groups it does not subscribe
    to (wasted bandwidth of the gamma > delta mapping). *)
val foreign_items : t -> int -> int
