(* Heartbeat times live on the engine tick grid (2^20/s): the [last] table
   maps peer -> int tick, so the per-message [heartbeat] path replaces an
   immediate int instead of boxing a float, and [stale] compares ints. *)
type t = {
  net : Simnet.t;
  hb_timeout_tk : int;
  last : (int, int) Hashtbl.t;
  mutable stopped : bool;
  mutable epoch : int;
  mutable members : (int, unit) Hashtbl.t option;
      (* None until a membership is installed: every peer is monitored,
         which keeps pre-reconfiguration deployments working unchanged. *)
}

let heartbeat ?epoch t peer =
  (* A heartbeat stamped with an older membership epoch is evidence about
     a membership that no longer exists; recording it would let a process
     removed (or demoted) by reconfiguration keep masking real silence. *)
  match epoch with
  | Some e when e < t.epoch -> ()
  | _ -> Hashtbl.replace t.last peer (Simnet.now_tk t.net)

let last_heartbeat_tk t peer =
  match Hashtbl.find t.last peer with x -> x | exception Not_found -> 0

let last_heartbeat t peer = Sim.Engine.time_of_ticks (last_heartbeat_tk t peer)

let is_member t peer =
  match t.members with None -> true | Some m -> Hashtbl.mem m peer

let stale t peer =
  (* A peer outside the current membership can never be suspected: its
     staleness describes a role the reconfiguration already revoked. *)
  is_member t peer && Simnet.now_tk t.net - last_heartbeat_tk t peer > t.hb_timeout_tk

let epoch t = t.epoch

let set_epoch t ~epoch ~members =
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    let m = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.add m p ()) members;
    t.members <- Some m;
    (* Suspicions accrued under the previous epoch must not fire in the
       new one: removed peers lose their entries entirely, surviving
       members get a fresh grace period (the new coordinator has not
       heartbeaten anyone yet). *)
    let now = Simnet.now_tk t.net in
    let doomed =
      Hashtbl.fold (fun p _ acc -> if Hashtbl.mem m p then acc else p :: acc) t.last []
    in
    List.iter (Hashtbl.remove t.last) doomed;
    List.iter (fun p -> Hashtbl.replace t.last p now) members
  end

let create net ~hb_period ~hb_timeout ~leader ~emit ~on_suspect =
  let t =
    { net;
      hb_timeout_tk = Sim.Engine.ticks_of_duration hb_timeout;
      last = Hashtbl.create 16;
      stopped = false;
      epoch = 0;
      members = None }
  in
  let (_stop : unit -> unit) =
    Simnet.every_tk net ~ticks:(Sim.Engine.ticks_of_duration hb_period) (fun () ->
        if not t.stopped then
          if leader () then emit () else on_suspect ~stale:(stale t))
  in
  t

let stop t = t.stopped <- true
