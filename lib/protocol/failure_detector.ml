type t = {
  net : Simnet.t;
  hb_timeout : float;
  last : (int, float) Hashtbl.t;
  mutable stopped : bool;
}

let heartbeat t peer = Hashtbl.replace t.last peer (Simnet.now t.net)

let last_heartbeat t peer =
  match Hashtbl.find_opt t.last peer with Some x -> x | None -> 0.0

let stale t peer = Simnet.now t.net -. last_heartbeat t peer > t.hb_timeout

let create net ~hb_period ~hb_timeout ~leader ~emit ~on_suspect =
  let t = { net; hb_timeout; last = Hashtbl.create 16; stopped = false } in
  let (_stop : unit -> unit) =
    Simnet.every net ~period:hb_period (fun () ->
        if not t.stopped then
          if leader () then emit () else on_suspect ~stale:(stale t))
  in
  t

let stop t = t.stopped <- true
