type t = { r_name : string; r_stop : unit -> unit }

let every ?counters net ~name ~period f =
  let tick =
    match counters with
    | None -> f
    | Some c ->
        let key = name ^ "_tick" in
        fun () ->
          Counters.incr c key;
          f ()
  in
  let tick () =
    (match Simnet.tracer net with
    | Some tr -> Trace.instant tr ~pid:(-1) ~cat:"timer" ~name ~ts:(Simnet.now net)
    | None -> ());
    tick ()
  in
  { r_name = name; r_stop = Simnet.every_tk net ~ticks:(Sim.Engine.ticks_of_duration period) tick }

let name t = t.r_name
let stop t = t.r_stop ()

(* Deadline stamps are engine ticks (int), not floats: [touch] on the
   per-message ack path then replaces an immediate value instead of boxing
   a float per call.  The float [~now] arguments are converted at the API
   boundary (truncating, like [Sim.Engine.ticks_of_time]). *)
type ('k, 'v) tracker = {
  tbl : ('k, 'v) Hashtbl.t;
  last : ('k, int) Hashtbl.t;
}

let tracker () = { tbl = Hashtbl.create 256; last = Hashtbl.create 256 }

let watch tr ~now key v =
  Hashtbl.replace tr.tbl key v;
  Hashtbl.replace tr.last key (Sim.Engine.ticks_of_time now)

let touch tr ~now key = Hashtbl.replace tr.last key (Sim.Engine.ticks_of_time now)

let ack tr key =
  match Hashtbl.find_opt tr.tbl key with
  | Some v ->
      Hashtbl.remove tr.tbl key;
      Hashtbl.remove tr.last key;
      Some v
  | None -> None

let mem tr key = Hashtbl.mem tr.tbl key
let find tr key = Hashtbl.find_opt tr.tbl key
let length tr = Hashtbl.length tr.tbl
let iter tr f = Hashtbl.iter f tr.tbl

let clear tr =
  Hashtbl.reset tr.tbl;
  Hashtbl.reset tr.last

(* Collect the due set before firing callbacks: [f] routinely acks or
   re-watches entries, and mutating [tr.tbl] while iterating over it is
   unspecified behaviour per the Hashtbl contract.  An entry acked by an
   earlier callback in the same sweep must not fire. *)
let iter_due tr ~now ~older_than f =
  let now_tk = Sim.Engine.ticks_of_time now in
  let older_tk = Sim.Engine.ticks_of_duration older_than in
  let due =
    Hashtbl.fold
      (fun key v acc ->
        let last = match Hashtbl.find_opt tr.last key with Some x -> x | None -> 0 in
        if now_tk - last > older_tk then (key, v) :: acc else acc)
      tr.tbl []
  in
  List.iter
    (fun (key, v) ->
      if Hashtbl.mem tr.tbl key then begin
        Hashtbl.replace tr.last key now_tk;
        f key v
      end)
    due
