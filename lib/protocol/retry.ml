type t = { r_name : string; r_stop : unit -> unit }

let every ?counters net ~name ~period f =
  let tick =
    match counters with
    | None -> f
    | Some c ->
        let key = name ^ "_tick" in
        fun () ->
          Counters.incr c key;
          f ()
  in
  let tick () =
    (match Simnet.tracer net with
    | Some tr -> Trace.instant tr ~pid:(-1) ~cat:"timer" ~name ~ts:(Simnet.now net)
    | None -> ());
    tick ()
  in
  { r_name = name; r_stop = Simnet.every net ~period tick }

let name t = t.r_name
let stop t = t.r_stop ()

type ('k, 'v) tracker = {
  tbl : ('k, 'v) Hashtbl.t;
  last : ('k, float) Hashtbl.t;
}

let tracker () = { tbl = Hashtbl.create 256; last = Hashtbl.create 256 }

let watch tr ~now key v =
  Hashtbl.replace tr.tbl key v;
  Hashtbl.replace tr.last key now

let touch tr ~now key = Hashtbl.replace tr.last key now

let ack tr key =
  match Hashtbl.find_opt tr.tbl key with
  | Some v ->
      Hashtbl.remove tr.tbl key;
      Hashtbl.remove tr.last key;
      Some v
  | None -> None

let mem tr key = Hashtbl.mem tr.tbl key
let find tr key = Hashtbl.find_opt tr.tbl key
let length tr = Hashtbl.length tr.tbl
let iter tr f = Hashtbl.iter f tr.tbl

let clear tr =
  Hashtbl.reset tr.tbl;
  Hashtbl.reset tr.last

(* Collect the due set before firing callbacks: [f] routinely acks or
   re-watches entries, and mutating [tr.tbl] while iterating over it is
   unspecified behaviour per the Hashtbl contract.  An entry acked by an
   earlier callback in the same sweep must not fire. *)
let iter_due tr ~now ~older_than f =
  let due =
    Hashtbl.fold
      (fun key v acc ->
        let last = match Hashtbl.find_opt tr.last key with Some x -> x | None -> 0.0 in
        if now -. last > older_than then (key, v) :: acc else acc)
      tr.tbl []
  in
  List.iter
    (fun (key, v) ->
      if Hashtbl.mem tr.tbl key then begin
        Hashtbl.replace tr.last key now;
        f key v
      end)
    due
