type 'k t = {
  queues : ('k, Paxos.Value.item Queue.t) Hashtbl.t;
  bytes : ('k, int ref) Hashtbl.t;
  mutable pending : int;
  batch_bytes : int;
  buffer_bytes : int;
  mutable dropped : int;
  mutable armed : bool;
  mutable epoch : int;
}

let create ?(buffer_bytes = max_int) ~batch_bytes () =
  { queues = Hashtbl.create 8;
    bytes = Hashtbl.create 8;
    pending = 0;
    batch_bytes;
    buffer_bytes;
    dropped = 0;
    armed = false;
    epoch = 0 }

let pending_bytes t = t.pending
let is_empty t = t.pending = 0
let drops t = t.dropped

let bytes_of t key =
  match Hashtbl.find_opt t.bytes key with Some b -> !b | None -> 0

let enqueue t ~key (item : Paxos.Value.item) =
  if t.pending + item.isize > t.buffer_bytes then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    let q =
      match Hashtbl.find_opt t.queues key with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add t.queues key q;
          Hashtbl.add t.bytes key (ref 0);
          q
    in
    Queue.push item q;
    let b = Hashtbl.find t.bytes key in
    b := !b + item.isize;
    t.pending <- t.pending + item.isize;
    true
  end

let largest t =
  Hashtbl.fold
    (fun key b acc ->
      if !b > 0 then
        match acc with
        | Some (_, best) when best >= !b -> acc
        | _ -> Some (key, !b)
      else acc)
    t.bytes None

(* A batch is ready when some key has a full packet's worth of traffic, or
   batching is disabled and anything at all is pending. *)
let ready t =
  if t.pending = 0 then None
  else if t.batch_bytes <= 0 then Option.map fst (largest t)
  else
    Hashtbl.fold
      (fun key b acc -> if acc = None && !b >= t.batch_bytes then Some key else acc)
      t.bytes None

(* Pop items while they fit in one batch.  The first item always pops, so an
   item larger than [batch_bytes] seals alone rather than stalling the
   queue; with [batch_bytes <= 0] every batch is a single item. *)
let seal t key =
  match Hashtbl.find_opt t.queues key with
  | None -> []
  | Some q ->
      let bytes = Hashtbl.find t.bytes key in
      let items = ref [] and size = ref 0 in
      let continue = ref true in
      while !continue && not (Queue.is_empty q) do
        let (it : Paxos.Value.item) = Queue.peek q in
        if !size > 0 && !size + it.isize > t.batch_bytes then continue := false
        else begin
          ignore (Queue.pop q);
          bytes := !bytes - it.isize;
          t.pending <- t.pending - it.isize;
          items := it :: !items;
          size := !size + it.isize
        end
      done;
      List.rev !items

let timer_armed t = t.armed

(* The seal timer cannot be cancelled (Simnet.after_tk returns a handle we
   deliberately drop), so each timer captures the epoch at arming time and
   fires only if no [clear] intervened; otherwise a timeout armed before a
   coordinator re-election would seal from the reset batcher.  The delay is
   armed on the tick grid: no float crosses into the engine. *)
let arm_timeout t net ~timeout f =
  if t.pending > 0 && not t.armed then begin
    t.armed <- true;
    let epoch = t.epoch in
    ignore
      (Simnet.after_tk net ~ticks:(Sim.Engine.ticks_of_duration timeout) (fun () ->
           if t.epoch = epoch then begin
             t.armed <- false;
             (match Simnet.tracer net with
             | Some tr ->
                 Trace.instant tr ~pid:(-1) ~cat:"proto" ~name:"batch-timeout"
                   ~ts:(Simnet.now net)
             | None -> ());
             f ()
           end))
  end

let clear t =
  Hashtbl.reset t.queues;
  Hashtbl.reset t.bytes;
  t.pending <- 0;
  t.armed <- false;
  t.epoch <- t.epoch + 1
