(** Per-instance event counters.

    Every protocol instance carries its own [Counters.t] rather than a
    module-global table, so two instances in one process (e.g. the rings of
    a Multi-Ring deployment) never share or clobber each other's counts.
    [snapshot] feeds [Sim.Stats.Snapshot] so [--json] bench output includes
    protocol-level counters. *)

type t

val create : unit -> t

(** [incr t name] bumps [name] by one, creating it at 0 first if needed. *)
val incr : t -> string -> unit

(** [add t name n] bumps [name] by [n]. *)
val add : t -> string -> int -> unit

(** [get t name] is the current count, 0 when never incremented. *)
val get : t -> string -> int

(** Sorted [(name, count)] view of every counter touched so far. *)
val snapshot : t -> (string * int) list

val reset : t -> unit

(** [dump t ~label] prints the snapshot to stdout, for debug sessions. *)
val dump : t -> label:string -> unit
