(** Fixed-size batching of pending proposals (§3.5.2).

    Items are queued per key — a destination-partition set for Multi-Ring
    coordinators, [unit] for single-queue protocols — with byte accounting
    per key and in aggregate, so one key's traffic never dilutes another's
    batches (§4.2.2).  Sealing follows the dissertation's packing rule: pop
    while the batch stays within [batch_bytes], except that the first item
    always pops, so an oversized item seals alone instead of stalling, and
    [batch_bytes <= 0] disables batching (every batch is one item). *)

type 'k t

(** [create ?buffer_bytes ~batch_bytes ()] — [buffer_bytes] bounds the
    aggregate queued bytes (unbounded by default); [batch_bytes] is the
    seal threshold and packet budget. *)
val create : ?buffer_bytes:int -> batch_bytes:int -> unit -> 'k t

(** [enqueue t ~key item] queues [item]; [false] means the buffer bound
    was hit, the item was rejected, and [drops] was incremented. *)
val enqueue : 'k t -> key:'k -> Paxos.Value.item -> bool

val pending_bytes : 'k t -> int
val bytes_of : 'k t -> 'k -> int
val is_empty : 'k t -> bool

(** Items rejected by the buffer bound so far. *)
val drops : 'k t -> int

(** Some key holding at least [batch_bytes] of traffic, if any; with
    batching disabled, the largest non-empty key. *)
val ready : 'k t -> 'k option

(** The key with the most pending bytes and its byte count, if any. *)
val largest : 'k t -> ('k * int) option

(** [seal t key] pops one batch's worth of items from [key]'s queue. *)
val seal : 'k t -> 'k -> Paxos.Value.item list

(** [arm_timeout t net ~timeout f] starts the seal-on-timeout timer: a
    no-op unless something is pending and no timer is armed; the timer
    disarms itself before running [f], so [f] may re-arm. *)
val arm_timeout : 'k t -> Simnet.t -> timeout:float -> (unit -> unit) -> unit

val timer_armed : 'k t -> bool

(** Drop all queued items (crash recovery).  Keeps the drop counter. *)
val clear : 'k t -> unit
