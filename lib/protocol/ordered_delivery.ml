type 'v t = {
  mutable next : int;
  mutable max_seen : int;
  tbl : (int, 'v) Hashtbl.t;
  spec : (int, unit) Hashtbl.t;
}

let create () = { next = 0; max_seen = -1; tbl = Hashtbl.create 4096; spec = Hashtbl.create 256 }

let next t = t.next
let max_seen t = t.max_seen
let note_max t i = if i > t.max_seen then t.max_seen <- i
let size t = Hashtbl.length t.tbl
let has t i = Hashtbl.mem t.tbl i
let find t i = Hashtbl.find_opt t.tbl i

let offer t ~inst v =
  if inst >= t.next && not (Hashtbl.mem t.tbl inst) then begin
    Hashtbl.replace t.tbl inst v;
    note_max t inst;
    true
  end
  else false

let pump t f =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.tbl t.next with
    | Some v when f t.next v ->
        Hashtbl.remove t.tbl t.next;
        Hashtbl.remove t.spec t.next;
        t.next <- t.next + 1
    | _ -> continue := false
  done

let backlog t = Stdlib.max 0 (t.max_seen + 1 - t.next)

let missing t ?(window = 64) ?(limit = 16) ~complete () =
  let upto = Stdlib.min t.max_seen (t.next + window - 1) in
  let rec collect i acc n =
    if i > upto || n >= limit then List.rev acc
    else
      let miss =
        match Hashtbl.find_opt t.tbl i with
        | None -> true
        | Some v -> not (complete i v)
      in
      if miss then collect (i + 1) (i :: acc) (n + 1) else collect (i + 1) acc n
  in
  collect t.next [] 0

let speculate t ~inst f =
  if inst >= t.next && not (Hashtbl.mem t.spec inst) then begin
    Hashtbl.replace t.spec inst ();
    f ()
  end

let drop_below t floor =
  let prune tbl =
    let doomed = Hashtbl.fold (fun i _ acc -> if i < floor then i :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) doomed
  in
  prune t.tbl;
  (* Speculation marks are keyed by instance too: a GC floor that outruns
     [next] (decisions delivered by other learners in the partition) would
     otherwise strand their marks forever. *)
  prune t.spec

let fast_forward t inst =
  (* Jump the delivery cursor to [inst] without delivering the skipped
     prefix: a learner admitted by reconfiguration starts at the epoch's
     activation instance, and a catching-up acceptor skips the prefix
     already pruned by the garbage-collection floor. *)
  if inst > t.next then begin
    drop_below t inst;
    t.next <- inst;
    if t.max_seen < inst - 1 then t.max_seen <- inst - 1
  end

(* --- gap repair ---------------------------------------------------------- *)

type repair = { mutable active : bool }

let repairer () = { active = false }
let repairing r = r.active

let request_repairs r t net ~timeout ~cooldown ~alive ~complete ~send =
  let rec cycle delay =
    if not r.active && backlog t > 0 then begin
      r.active <- true;
      ignore
        (Simnet.after net delay (fun () ->
             r.active <- false;
             (* The cycle may only end when the gap has closed.  Firing
                with a transiently dead process or an empty missing window
                (e.g. every instance present but incomplete checks racing
                a retransmission) must re-arm, or a gap that opens after a
                quiescent period is never repaired. *)
             if backlog t > 0 then begin
               if alive () then begin
                 match missing t ~complete () with
                 | [] -> ()
                 | insts -> send insts
               end;
               (* Cool down before the next request. *)
               r.active <- true;
               ignore
                 (Simnet.after net cooldown (fun () ->
                      r.active <- false;
                      cycle delay))
             end))
    end
  in
  cycle timeout

(* --- delivery processing queue ------------------------------------------- *)

type 'a sink = { q : 'a Queue.t; mutable busy : bool; mutable draining : bool }

let sink () = { q = Queue.create (); busy = false; draining = false }
let sink_length s = Queue.length s.q
let sink_push s x = Queue.push x s.q

(* Zero-cost entries drain in a loop, not by recursion: [deliver] commonly
   re-enters [drain_sink] (pump -> push -> drain), so the recursive form
   grew one stack frame per queued item.  The [draining] flag makes the
   re-entrant call a no-op; the outer loop picks the new items up. *)
let rec drain_sink s net proc ~cost deliver =
  if (not s.busy) && not s.draining then begin
    s.draining <- true;
    let continue = ref true in
    while !continue && not (Queue.is_empty s.q) do
      let x = Queue.pop s.q in
      let c = cost () in
      if c <= 0.0 then deliver x
      else begin
        s.busy <- true;
        continue := false;
        Simnet.exec net proc ~dur:c (fun () ->
            s.busy <- false;
            deliver x;
            drain_sink s net proc ~cost deliver)
      end
    done;
    s.draining <- false
  end
