type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name n = cell t name := !(cell t name) + n
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let snapshot t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t = Hashtbl.reset t

let dump t ~label =
  Printf.printf "--- %s counters ---\n" label;
  List.iter (fun (k, v) -> Printf.printf "  %-24s %d\n" k v) (snapshot t)
