(** Heartbeat-based leader failure detection.

    One detector serves a whole protocol instance.  Every [hb_period] it
    checks [leader ()]: while a leader is in charge it runs [emit] (the
    leader's alive-duties — heartbeating followers, checking members for
    death); once no leader remains it runs [on_suspect], passing a
    [stale] predicate that is true for a peer whose last recorded leader
    heartbeat is older than [hb_timeout].  The suspicion callback selects
    and promotes a replacement; because promotion makes [leader ()] true
    again, a suspicion that reconfigures does not re-fire for the same
    peer.

    Follower message handlers record leader liveness with [heartbeat];
    peers start stale at time 0, so [hb_timeout] also bounds how long a
    cold start waits before electing. *)

type t

val create :
  Simnet.t ->
  hb_period:float ->
  hb_timeout:float ->
  leader:(unit -> bool) ->
  emit:(unit -> unit) ->
  on_suspect:(stale:(int -> bool) -> unit) ->
  t

(** [heartbeat t peer] — [peer] heard from the leader just now. *)
val heartbeat : t -> int -> unit

(** Time [peer] last heard from the leader; 0.0 if never. *)
val last_heartbeat : t -> int -> float

(** [stale t peer] — no leader heartbeat within the last [hb_timeout]. *)
val stale : t -> int -> bool

(** Permanently disable the monitor (the periodic timer becomes a no-op). *)
val stop : t -> unit
