(** Heartbeat-based leader failure detection with membership epochs.

    One detector serves a whole protocol instance.  Every [hb_period] it
    checks [leader ()]: while a leader is in charge it runs [emit] (the
    leader's alive-duties — heartbeating followers, checking members for
    death); once no leader remains it runs [on_suspect], passing a
    [stale] predicate that is true for a peer whose last recorded leader
    heartbeat is older than [hb_timeout].  The suspicion callback selects
    and promotes a replacement; because promotion makes [leader ()] true
    again, a suspicion that reconfigures does not re-fire for the same
    peer.

    Follower message handlers record leader liveness with [heartbeat];
    peers start stale at time 0, so [hb_timeout] also bounds how long a
    cold start waits before electing.

    Dynamic membership: [set_epoch] installs the membership produced by a
    reconfiguration.  Suspicions carried over from the previous epoch are
    cleared — removed peers are forgotten (and can never go stale again),
    surviving members get a fresh grace period — and heartbeats stamped
    with an older epoch are ignored from then on.  Until the first
    [set_epoch], every peer is monitored (epoch 0, open membership). *)

type t

val create :
  Simnet.t ->
  hb_period:float ->
  hb_timeout:float ->
  leader:(unit -> bool) ->
  emit:(unit -> unit) ->
  on_suspect:(stale:(int -> bool) -> unit) ->
  t

(** [heartbeat ?epoch t peer] — [peer] heard from the leader just now.
    With [epoch] below the installed membership epoch the heartbeat is
    stale evidence and is dropped; omitting [epoch] always records. *)
val heartbeat : ?epoch:int -> t -> int -> unit

(** Time [peer] last heard from the leader; 0.0 if never. *)
val last_heartbeat : t -> int -> float

(** [stale t peer] — no leader heartbeat within the last [hb_timeout].
    Always [false] for a peer outside the installed membership. *)
val stale : t -> int -> bool

(** The installed membership epoch; 0 before any [set_epoch]. *)
val epoch : t -> int

(** [set_epoch t ~epoch ~members] installs a new membership.  No-op
    unless [epoch] is strictly greater than the current epoch.  Clears
    the recorded heartbeats of peers outside [members] and restamps the
    members to now (fresh suspicion grace across the boundary). *)
val set_epoch : t -> epoch:int -> members:int list -> unit

(** Permanently disable the monitor (the periodic timer becomes a no-op). *)
val stop : t -> unit
