(** Per-learner instance-ordered delivery with gap tracking.

    Decisions (or any per-instance payload) arrive out of order; the pump
    releases them strictly in instance order starting from instance 0.
    [max_seen] tracks the highest instance known to exist, so [backlog] and
    [missing] expose the gaps a learner must repair before it can advance
    (M-Ring's retransmission protocol, §3.3.4), and [speculate] gates
    at-most-once speculative delivery of not-yet-ordered values
    (Chapter 4). *)

type 'v t

val create : unit -> 'v t

(** The next instance to deliver. *)
val next : 'v t -> int

(** Highest instance known to exist; [-1] before any [offer]/[note_max]. *)
val max_seen : 'v t -> int

(** Raise [max_seen] (e.g. from a decision addressed to another learner). *)
val note_max : 'v t -> int -> unit

(** [offer t ~inst v] stores the payload for [inst]; [false] when [inst]
    was already delivered or already stored.  Raises [max_seen]. *)
val offer : 'v t -> inst:int -> 'v -> bool

val has : 'v t -> int -> bool
val find : 'v t -> int -> 'v option

(** Number of stored, undelivered instances. *)
val size : 'v t -> int

(** [pump t f] repeatedly calls [f inst v] on the next instance while its
    payload is present; [true] consumes it and advances, [false] stops the
    pump (e.g. the value for a decided id has not arrived yet). *)
val pump : 'v t -> (int -> 'v -> bool) -> unit

(** Instances known to exist but not yet delivered: [max_seen + 1 - next],
    clamped at 0. *)
val backlog : 'v t -> int

(** [missing t ~complete ()] lists up to [limit] instances in
    [next, next + window) that are absent or for which [complete inst v]
    is [false] (decision known but value still missing). *)
val missing : 'v t -> ?window:int -> ?limit:int -> complete:(int -> 'v -> bool) -> unit -> int list

(** [speculate t ~inst f] runs [f] at most once per undelivered instance;
    the mark is cleared when the instance is delivered. *)
val speculate : 'v t -> inst:int -> (unit -> unit) -> unit

(** Forget stored payloads below [floor] (garbage collection). *)
val drop_below : 'v t -> int -> unit

(** [fast_forward t inst] jumps the delivery cursor to [inst], dropping
    any stored payloads below it, without delivering the skipped prefix.
    No-op unless [inst > next].  Used when a membership change admits a
    learner at an epoch's activation instance, and when a joining
    acceptor's catch-up starts at the garbage-collection floor. *)
val fast_forward : 'v t -> int -> unit

(** {1 Gap repair}

    Single-outstanding repair scheduling with a cooldown: while a backlog
    exists, wait [timeout], recompute the missing instances and pass them
    to [send] (a targeted retransmission request), then wait [cooldown]
    before asking again (§3.3.4). *)

type repair

val repairer : unit -> repair

(** A repair request is scheduled or cooling down. *)
val repairing : repair -> bool

(** [request_repairs r t net ~timeout ~cooldown ~alive ~complete ~send]
    starts (or no-ops into) the repair cycle.  The cycle re-arms while a
    backlog persists — a transiently-false [alive ()] or an empty missing
    window does not end it — and stops only once the backlog has drained.
    Caller contract: invoke again whenever a new gap opens after the
    backlog reached zero (e.g. from the decision handler); re-invoking
    while a cycle is active is a no-op. *)
val request_repairs :
  repair ->
  'v t ->
  Simnet.t ->
  timeout:float ->
  cooldown:float ->
  alive:(unit -> bool) ->
  complete:(int -> 'v -> bool) ->
  send:(int list -> unit) ->
  unit

(** {1 Delivery processing queue}

    In-order payloads released by the pump that still need per-item
    processing time on the learner's CPU before the application sees
    them (flow-control experiments use this to create slow learners). *)

type 'a sink

val sink : unit -> 'a sink
val sink_push : 'a sink -> 'a -> unit
val sink_length : 'a sink -> int

(** [drain_sink s net proc ~cost deliver] processes queued entries in
    order, charging [cost ()] seconds of CPU on [proc] per entry
    (zero cost delivers synchronously). *)
val drain_sink :
  'a sink -> Simnet.t -> Simnet.proc -> cost:(unit -> float) -> ('a -> unit) -> unit
