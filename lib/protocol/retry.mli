(** Named periodic retry timers and cancel-on-ack retransmission state.

    A protocol keeps one [tracker] per class of unacknowledged work
    (proposer items awaiting commit, coordinator instances awaiting
    quorum) and drives it from a named [every] timer: each firing walks
    the overdue entries with [iter_due] and retransmits them; an
    acknowledgment ([ack]) cancels the retry. *)

type t

(** [every ?counters net ~name ~period f] runs [f] every [period] seconds
    forever.  With [counters], each firing also bumps the
    ["<name>_tick"] counter. *)
val every :
  ?counters:Counters.t -> Simnet.t -> name:string -> period:float -> (unit -> unit) -> t

val name : t -> string
val stop : t -> unit

(** Unacknowledged work items, each stamped with its last send time. *)
type ('k, 'v) tracker

val tracker : unit -> ('k, 'v) tracker

(** [watch tr ~now key v] registers (or re-registers) an item and stamps
    it as sent at [now]. *)
val watch : ('k, 'v) tracker -> now:float -> 'k -> 'v -> unit

(** Restamp an item's last send time without changing its payload. *)
val touch : ('k, 'v) tracker -> now:float -> 'k -> unit

(** [ack tr key] cancels the retry, returning the payload if it was
    still being watched. *)
val ack : ('k, 'v) tracker -> 'k -> 'v option

val mem : ('k, 'v) tracker -> 'k -> bool
val find : ('k, 'v) tracker -> 'k -> 'v option
val length : ('k, 'v) tracker -> int
val iter : ('k, 'v) tracker -> ('k -> 'v -> unit) -> unit
val clear : ('k, 'v) tracker -> unit

(** [iter_due tr ~now ~older_than f] calls [f] on every item last sent
    more than [older_than] seconds ago, restamping each visited item to
    [now] so it backs off a full period before the next retry. *)
val iter_due :
  ('k, 'v) tracker -> now:float -> older_than:float -> ('k -> 'v -> unit) -> unit
