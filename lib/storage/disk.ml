type config = { bandwidth : float; setup : float; write_unit : int }

let default_config = { bandwidth = 270.0e6; setup = 8.0e-5; write_unit = 32 * 1024 }

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  name : string;
  mutable free_at : float;
  busy : Sim.Stats.Busy.t;
  mutable written : int;
  (* Group commit: writes arriving while the head is busy are coalesced
     into one device operation (the paper writes in 32 KB units). *)
  queue : (int * (unit -> unit) option) Queue.t;
  mutable pumping : bool;
}

let create ?(config = default_config) engine name =
  { engine;
    cfg = config;
    name;
    free_at = 0.0;
    busy = Sim.Stats.Busy.create ();
    written = 0;
    queue = Queue.create ();
    pumping = false }

let config t = t.cfg

let round_up t bytes =
  let u = t.cfg.write_unit in
  (bytes + u - 1) / u * u

let rec pump t =
  if (not t.pumping) && not (Queue.is_empty t.queue) then begin
    t.pumping <- true;
    (* Take everything pending as one device write. *)
    let bytes = ref 0 and callbacks = ref [] in
    while not (Queue.is_empty t.queue) do
      let b, k = Queue.pop t.queue in
      bytes := !bytes + b;
      match k with Some k -> callbacks := k :: !callbacks | None -> ()
    done;
    let bytes = round_up t !bytes in
    let dur = t.cfg.setup +. (float_of_int bytes *. 8.0 /. t.cfg.bandwidth) in
    let now = Sim.Engine.now t.engine in
    let start = if now > t.free_at then now else t.free_at in
    let finish = start +. dur in
    t.free_at <- finish;
    Sim.Stats.Busy.add ~at:start t.busy dur;
    t.written <- t.written + bytes;
    let ks = List.rev !callbacks in
    ignore
      (Sim.Engine.at t.engine ~time:finish (fun () ->
           List.iter (fun k -> k ()) ks;
           t.pumping <- false;
           pump t))
  end

let write_sync t ~bytes k =
  Queue.push (bytes, Some k) t.queue;
  pump t

let write_async t ~bytes =
  Queue.push (bytes, None) t.queue;
  pump t

let written t = t.written

let backlog t ~now = if t.free_at > now then t.free_at -. now else 0.0

let busy t = t.busy
