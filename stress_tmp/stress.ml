(* Adversarial wheel-vs-heap differential stress beyond the in-repo qcheck:
   level-boundary deltas, parked-cursor re-schedules, heavy cancel/purge
   inside callbacks, repeated run ~until segments. *)
let tps = float_of_int Sim.Engine.ticks_per_second

let replay backend seed =
  let e = Sim.Engine.create ~backend () in
  let st = Random.State.make [| seed |] in
  let log = Buffer.create 4096 in
  let handles = ref [] in
  let fire i () = Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Sim.Engine.now e)) in
  let boundary_deltas =
    [| 0.0; 1.0 /. tps; 255.0 /. tps; 256.0 /. tps; 257.0 /. tps;
       65535.0 /. tps; 65536.0 /. tps; 65537.0 /. tps;
       16777216.0 /. tps; 4294967296.0 /. tps; 0.013; 1.7; 42.0; 900.0; 1e7; infinity |]
  in
  let n = ref 0 in
  let rec act depth i () =
    fire i ();
    if depth < 3 && Random.State.int st 100 < 40 then begin
      incr n;
      let d = boundary_deltas.(Random.State.int st (Array.length boundary_deltas)) in
      let h = Sim.Engine.schedule e ~delay:d (act (depth + 1) (10000 + !n)) in
      handles := h :: !handles
    end;
    if Random.State.int st 100 < 30 then
      match !handles with
      | h :: rest -> handles := rest; Sim.Engine.cancel e h
      | [] -> ()
  in
  for i = 1 to 400 do
    let d = boundary_deltas.(Random.State.int st (Array.length boundary_deltas)) in
    let h = Sim.Engine.schedule e ~delay:d (act 0 i) in
    if Random.State.int st 100 < 25 then Sim.Engine.cancel e h else handles := h :: !handles
  done;
  (* Segmented runs park the cursor ahead, then schedule "in the past". *)
  List.iter (fun u ->
      Sim.Engine.run e ~until:u;
      let h = Sim.Engine.schedule e ~delay:(Random.State.float st 2.0) (fire (-1)) in
      if Random.State.bool st then Sim.Engine.cancel e h)
    [ 0.001; 0.5; 3.0; 50.0; 1000.0; 2e6 ];
  Buffer.add_string log (Printf.sprintf "pending=%d;" (Sim.Engine.pending e));
  Buffer.contents log

let () =
  for seed = 0 to 199 do
    let w = replay `Wheel seed and h = replay `Heap seed in
    if not (String.equal w h) then begin
      Printf.printf "MISMATCH seed %d\nwheel: %s\nheap : %s\n" seed
        (String.sub w 0 (min 400 (String.length w)))
        (String.sub h 0 (min 400 (String.length h)));
      exit 1
    end
  done;
  print_endline "all 200 seeds identical across backends"
