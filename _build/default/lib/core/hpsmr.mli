(** High-Performance State-Machine Replication — public facade.

    This library reproduces Marandi & Pedone's {e High-Performance
    State-Machine Replication} (DSN 2011 line of work): the Ring Paxos
    family of atomic broadcast protocols, SMR with speculative execution and
    state partitioning, Multi-Ring Paxos atomic multicast and Parallel SMR,
    all running on a deterministic discrete-event network simulator.

    Quick start:
    {[
      let env = Hpsmr.Env.create ~seed:42 () in
      let kv = Hpsmr.Replicated_kv.create env ~replicas:2 in
      Hpsmr.Replicated_kv.put kv ~key:1 ~value:10 ~k:(fun _ -> ...);
      Hpsmr.Env.run env ~for_:1.0
    ]}

    For full control use the re-exported libraries below — they are the
    real implementation, not wrappers. *)

(** {1 Re-exported libraries} *)

module Sim = Sim
(** Discrete-event engine, RNG, statistics. *)

module Simnet = Simnet
(** Simulated network: nodes, processes, unicast/multicast, failures. *)

module Storage = Storage
(** Simulated disks. *)

module Paxos = Paxos
(** Basic Paxos (Algorithm 1) and consensus values. *)

module Ringpaxos = Ringpaxos
(** M-Ring Paxos and U-Ring Paxos — the core contribution. *)

module Abcast = Abcast
(** Baseline atomic broadcast protocols, presets, measurement helpers. *)

module Btree = Btree
(** The in-memory B+-tree service. *)

module Smr = Smr
(** State-machine replication with speculation and partitioning (Ch. 4). *)

module Multiring = Multiring
(** Multi-Ring Paxos atomic multicast (Ch. 5). *)

module Psmr = Psmr
(** Parallel SMR (Ch. 6). *)

module Cloud = Cloud
(** Cloud evaluation harness (Ch. 7). *)

(** {1 Convenience environment} *)

module Env : sig
  type t = { engine : Sim.Engine.t; net : Simnet.t; rng : Sim.Rng.t }

  (** [create ~seed ()] builds a deterministic simulation environment on a
      gigabit LAN. *)
  val create : ?seed:int -> ?config:Simnet.config -> unit -> t

  (** [run env ~for_] advances the simulation by [for_] seconds. *)
  val run : t -> for_:float -> unit

  val now : t -> float
end

(** {1 A replicated key-value service in three lines} *)

module Replicated_kv : sig
  type t

  (** [create env ~replicas] builds a KV store replicated with M-Ring Paxos
      ([2f+1] acceptors with [f = 2]) and [replicas] executing replicas. *)
  val create : Env.t -> replicas:int -> t

  (** Asynchronous operations; the continuation runs when a replica's
      response reaches the client. *)

  val put : t -> key:int -> value:int -> k:(unit -> unit) -> unit

  val get : t -> key:int -> k:(int option -> unit) -> unit

  (** Commands completed so far. *)
  val completed : t -> int

  (** Crash the current Ring Paxos coordinator; a spare takes over and the
      store keeps serving. *)
  val kill_coordinator : t -> unit
end
