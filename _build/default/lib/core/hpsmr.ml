module Sim = Sim
module Simnet = Simnet
module Storage = Storage
module Paxos = Paxos
module Ringpaxos = Ringpaxos
module Abcast = Abcast
module Btree = Btree
module Smr = Smr
module Multiring = Multiring
module Psmr = Psmr
module Cloud = Cloud

module Env = struct
  type t = { engine : Sim.Engine.t; net : Simnet.t; rng : Sim.Rng.t }

  let create ?(seed = 1) ?config () =
    let engine = Sim.Engine.create () in
    let rng = Sim.Rng.create seed in
    let net = Simnet.create ?config engine rng in
    { engine; net; rng }

  let run t ~for_ = Sim.Engine.run t.engine ~until:(Sim.Engine.now t.engine +. for_)
  let now t = Sim.Engine.now t.engine
end

module Replicated_kv = struct
  type Simnet.payload +=
    | Put of { key : int; value : int }
    | Get of { key : int }
    | KvResp of { uid : int; value : int option }

  type t = {
    env : Env.t;
    mutable mr : Ringpaxos.Mring.t option;
    stores : (int, int) Hashtbl.t array;
    pending : (int, int option -> unit) Hashtbl.t;  (* uid -> continuation *)
    mutable completed : int;
  }

  let the_mr t = match t.mr with Some m -> m | None -> assert false

  let create env ~replicas =
    let stores = Array.init (Stdlib.max 1 replicas) (fun _ -> Hashtbl.create 1024) in
    let t = { env; mr = None; stores; pending = Hashtbl.create 256; completed = 0 } in
    let deliver ~learner ~inst:_ v =
      match v with
      | None -> ()
      | Some (v : Paxos.Value.t) ->
          List.iter
            (fun (it : Paxos.Value.item) ->
              let store = stores.(learner) in
              let result =
                match it.app with
                | Put { key; value } ->
                    Hashtbl.replace store key value;
                    None
                | Get { key } -> Hashtbl.find_opt store key
                | _ -> None
              in
              (* Replica 0 answers. *)
              if learner = 0 then
                Simnet.send env.net
                  ~src:(Ringpaxos.Mring.learner_proc (the_mr t) 0)
                  ~dst:(Ringpaxos.Mring.proposer_proc (the_mr t) 0)
                  ~size:64
                  (KvResp { uid = it.uid; value = result }))
            v.items
    in
    let mr =
      Ringpaxos.Mring.create env.net Ringpaxos.Mring.default_config ~n_proposers:1
        ~n_learners:(Stdlib.max 1 replicas)
        ~learner_parts:(fun _ -> [ 0 ])
        ~deliver
    in
    t.mr <- Some mr;
    let client = Ringpaxos.Mring.proposer_proc mr 0 in
    let prev = Simnet.handler_of client in
    Simnet.set_handler client (fun m ->
        match m.payload with
        | KvResp { uid; value } -> (
            match Hashtbl.find_opt t.pending uid with
            | Some k ->
                Hashtbl.remove t.pending uid;
                t.completed <- t.completed + 1;
                k value
            | None -> ())
        | _ -> prev m);
    t

  let submit t op k =
    let uid = Ringpaxos.Mring.submit (the_mr t) ~proposer:0 ~size:128 op in
    if uid >= 0 then Hashtbl.replace t.pending uid k
    else ignore (Simnet.after t.env.net 1.0e-3 (fun () -> k None))

  let put t ~key ~value ~k = submit t (Put { key; value }) (fun _ -> k ())
  let get t ~key ~k = submit t (Get { key }) k
  let completed t = t.completed
  let kill_coordinator t = Ringpaxos.Mring.kill_coordinator (the_mr t)
end
