(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator owns its own stream obtained
    with {!split}, so adding a new component never perturbs the random
    sequence seen by existing ones — experiments stay reproducible as the
    system grows. *)

type t

(** [create seed] is a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** [split t] derives an independent stream from [t] (advances [t]). *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** [float t x] is uniform in [\[0, x)]. *)
val float : t -> float -> float

(** [bool t p] is [true] with probability [p]. *)
val bool : t -> float -> bool

(** [exponential t ~mean] samples an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)
val uniform : t -> float -> float -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** Zipf-distributed integers over [{0, ..., n-1}] with exponent [s];
    the distribution table is precomputed at creation. *)
module Zipf : sig
  type gen

  val create : t -> n:int -> s:float -> gen

  (** [draw g] samples a rank; rank 0 is the most popular. *)
  val draw : gen -> int
end
