(** Measurement helpers shared by every experiment.

    The conventions follow the paper's evaluation sections: throughput in
    megabits per second of application payload, latency in milliseconds,
    CPU as the fraction of wall (simulation) time a resource was busy. *)

(** Monotonically growing counter of events and bytes, with optional
    per-window time series (used for the timeline figures). *)
module Rate : sig
  type t

  (** [create ()] records nothing until the first {!add}. *)
  val create : unit -> t

  (** [add t ~now ~bytes] records one event of [bytes] payload at time [now]. *)
  val add : t -> now:float -> bytes:int -> unit

  val events : t -> int
  val bytes : t -> int

  (** [mbps t ~from ~till] is payload throughput over the interval, in Mbps. *)
  val mbps : t -> from:float -> till:float -> float

  (** [events_per_sec t ~from ~till] is the event rate over the interval. *)
  val events_per_sec : t -> from:float -> till:float -> float

  (** [series t ~window ~till] buckets recorded events into windows of
      [window] seconds from time 0 and returns [(window_end, mbps)] pairs. *)
  val series : t -> window:float -> till:float -> (float * float) list
end

(** Latency sample recorder with percentiles and CDF extraction. *)
module Latency : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [mean t] in the sample unit; [0.] when empty. *)
  val mean : t -> float

  (** [percentile t p] with [p] in [\[0,1\]]; [0.] when empty. *)
  val percentile : t -> float -> float

  val max : t -> float

  (** [trimmed_mean t ~drop_top] is the mean after discarding the highest
      fraction [drop_top] of samples (the paper discards the top 5 % in the
      recoverable experiments). *)
  val trimmed_mean : t -> drop_top:float -> float

  (** [cdf t ~points] is an evenly spaced [(value, cum_fraction)] sketch. *)
  val cdf : t -> points:int -> (float * float) list
end

(** Busy-time accounting for a serially used resource (CPU, NIC, disk). *)
module Busy : sig
  type t

  val create : unit -> t

  (** [add t dur] accounts [dur] seconds of busy time. *)
  val add : t -> float -> unit

  val total : t -> float

  (** [utilization t ~from ~till] is busy time within the window divided by
      the window length, as a percentage clamped to [\[0,100\]].  Busy time
      is attributed to the instant work starts, so this is approximate at
      window edges. *)
  val utilization : t -> from:float -> till:float -> float

  (** [reset_window t ~now] marks the start of a measurement window. *)
  val reset_window : t -> now:float -> unit

  (** [window_utilization t ~now] is utilization since the last
      {!reset_window}, as a percentage. *)
  val window_utilization : t -> now:float -> float
end
