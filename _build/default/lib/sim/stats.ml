module Rate = struct
  type t = {
    mutable events : int;
    mutable bytes : int;
    mutable samples : (float * int) list; (* newest first *)
  }

  let create () = { events = 0; bytes = 0; samples = [] }

  let add t ~now ~bytes =
    t.events <- t.events + 1;
    t.bytes <- t.bytes + bytes;
    t.samples <- (now, bytes) :: t.samples

  let events t = t.events
  let bytes t = t.bytes

  let in_window t ~from ~till =
    List.fold_left
      (fun (n, b) (time, bytes) ->
        if time >= from && time < till then (n + 1, b + bytes) else (n, b))
      (0, 0) t.samples

  let mbps t ~from ~till =
    let span = till -. from in
    if span <= 0.0 then 0.0
    else
      let _, b = in_window t ~from ~till in
      float_of_int b *. 8.0 /. span /. 1e6

  let events_per_sec t ~from ~till =
    let span = till -. from in
    if span <= 0.0 then 0.0
    else
      let n, _ = in_window t ~from ~till in
      float_of_int n /. span

  let series t ~window ~till =
    let nbuckets = int_of_float (ceil (till /. window)) in
    let buckets = Array.make (Stdlib.max nbuckets 1) 0 in
    List.iter
      (fun (time, bytes) ->
        if time < till then begin
          let i = int_of_float (time /. window) in
          if i >= 0 && i < Array.length buckets then
            buckets.(i) <- buckets.(i) + bytes
        end)
      t.samples;
    List.init (Array.length buckets) (fun i ->
        let wend = window *. float_of_int (i + 1) in
        (wend, float_of_int buckets.(i) *. 8.0 /. window /. 1e6))
end

module Latency = struct
  type t = { mutable samples : float list; mutable n : int }

  let create () = { samples = []; n = 0 }

  let add t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1

  let count t = t.n

  let mean t =
    if t.n = 0 then 0.0 else List.fold_left ( +. ) 0.0 t.samples /. float_of_int t.n

  let sorted t =
    let a = Array.of_list t.samples in
    Array.sort compare a;
    a

  let percentile t p =
    if t.n = 0 then 0.0
    else
      let a = sorted t in
      let idx = int_of_float (p *. float_of_int (t.n - 1)) in
      a.(Stdlib.max 0 (Stdlib.min (t.n - 1) idx))

  let max t = percentile t 1.0

  let trimmed_mean t ~drop_top =
    if t.n = 0 then 0.0
    else
      let a = sorted t in
      let keep = Stdlib.max 1 (int_of_float (float_of_int t.n *. (1.0 -. drop_top))) in
      let sum = ref 0.0 in
      for i = 0 to keep - 1 do
        sum := !sum +. a.(i)
      done;
      !sum /. float_of_int keep

  let cdf t ~points =
    if t.n = 0 then []
    else
      let a = sorted t in
      List.init points (fun i ->
          let frac = float_of_int (i + 1) /. float_of_int points in
          let idx = Stdlib.min (t.n - 1) (int_of_float (frac *. float_of_int (t.n - 1))) in
          (a.(idx), frac))
end

module Busy = struct
  type t = {
    mutable total : float;
    mutable window_start : float;
    mutable window_busy : float;
    mutable log : (float * float) list; (* (start_of_accounting_instant, dur) *)
  }

  let create () = { total = 0.0; window_start = 0.0; window_busy = 0.0; log = [] }

  let add t dur =
    t.total <- t.total +. dur;
    t.window_busy <- t.window_busy +. dur

  let add_at t ~now dur =
    add t dur;
    t.log <- (now, dur) :: t.log

  let _ = add_at

  let total t = t.total

  let utilization t ~from ~till =
    let span = till -. from in
    if span <= 0.0 then 0.0
    else
      let pct = t.total /. span *. 100.0 in
      Stdlib.min 100.0 (Stdlib.max 0.0 pct)

  let reset_window t ~now =
    t.window_start <- now;
    t.window_busy <- 0.0

  let window_utilization t ~now =
    let span = now -. t.window_start in
    if span <= 0.0 then 0.0
    else Stdlib.min 100.0 (Stdlib.max 0.0 (t.window_busy /. span *. 100.0))
end
