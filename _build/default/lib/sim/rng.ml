type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny versus 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let float t x =
  let b = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. b /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = ref (float t 1.0) in
  if !u = 0.0 then u := 1e-300;
  -.mean *. log !u

let uniform t lo hi = lo +. float t (hi -. lo)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

module Zipf = struct
  type gen = { rng : t; cdf : float array }

  let create rng ~n ~s =
    if n <= 0 then invalid_arg "Rng.Zipf.create: n must be positive";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (i + 1) ** s));
      cdf.(i) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do
      cdf.(i) <- cdf.(i) /. total
    done;
    { rng; cdf }

  let draw g =
    let u = float g.rng 1.0 in
    (* Binary search for the first index whose cdf exceeds u. *)
    let lo = ref 0 and hi = ref (Array.length g.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if g.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end
