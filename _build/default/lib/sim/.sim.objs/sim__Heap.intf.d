lib/sim/heap.mli:
