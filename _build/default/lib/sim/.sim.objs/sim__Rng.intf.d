lib/sim/rng.mli:
