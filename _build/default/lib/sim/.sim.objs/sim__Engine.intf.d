lib/sim/engine.mli:
