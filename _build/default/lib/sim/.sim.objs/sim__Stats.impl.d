lib/sim/stats.ml: Array List Stdlib
