lib/sim/stats.mli:
