lib/storage/disk.ml: List Queue Sim
