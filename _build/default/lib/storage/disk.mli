(** Simulated storage device (the OCZ-VERTEX3 SSD of the paper's testbed).

    A disk is a serially used resource: a write of [bytes] occupies it for
    [setup + bytes * 8 / bandwidth] seconds.  {!write_sync} invokes its
    continuation when the data is durable (the caller models an fsync'd
    acceptor); {!write_async} returns immediately and completes in the
    background (the Recoverable Ring Paxos mode of Chapter 5). *)

type t

type config = {
  bandwidth : float;  (** sustained write bandwidth, bits per second *)
  setup : float;  (** fixed per-write latency, seconds *)
  write_unit : int;  (** writes are rounded up to this many bytes *)
}

(** 270 Mbps sustained sync-write bandwidth, 32 KiB units (§3.5.5). *)
val default_config : config

val create : ?config:config -> Sim.Engine.t -> string -> t

val config : t -> config

(** [write_sync d ~bytes k] runs [k] once the write is durable. *)
val write_sync : t -> bytes:int -> (unit -> unit) -> unit

(** [write_async d ~bytes] queues the write and returns immediately. *)
val write_async : t -> bytes:int -> unit

(** Bytes accepted so far (sync + async). *)
val written : t -> int

(** [backlog d ~now] is the queued work in seconds (async pressure). *)
val backlog : t -> now:float -> float

val busy : t -> Sim.Stats.Busy.t
