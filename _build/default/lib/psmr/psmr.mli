(** Parallel State-Machine Replication — Chapter 6.

    Four execution models over the same client interface (Fig. 6.1):

    - [Sequential]: classic SMR; ordering and execution share the replica's
      single thread.
    - [Pipelined]: multithreaded replica stages, still sequential
      execution on a dedicated executor thread.
    - [Sdpe] (sequential delivery, parallel execution — CBASE-like): one
      totally ordered stream; a scheduler thread dispatches commands to
      worker threads, tracking conflicts; the scheduler's per-command cost
      eventually bottlenecks.
    - [Psmr]: Parallel SMR proper (§6.3): one Multi-Ring Paxos group per
      worker plus a group subscribed by all workers; client proxies map
      independent commands to a single worker's group and dependent
      commands to the all-workers group, where execution synchronises on a
      barrier — no replica-side scheduler at all.

    Commands name an abstract object; two commands conflict when they touch
    the same object and at least one writes ([dependent] marks commands
    that conflict with everything, e.g. multi-object updates). *)

type approach = Sequential | Pipelined | Sdpe | Psmr

type command = {
  obj : int;  (** object the command accesses *)
  dependent : bool;  (** conflicts with every other command *)
  size : int;
}

type config = {
  approach : approach;
  n_workers : int;  (** worker threads per replica *)
  n_replicas : int;
  ring : Ringpaxos.Mring.config;
  lambda : float;
  delta : float;
  merge_m : int;
  exec_cost : float;  (** service time per command, seconds *)
  sched_cost : float;  (** SDPE scheduler cost per command, seconds *)
}

val default_config : config

type t

val create : Simnet.t -> config -> n_clients:int -> gen:(int -> command) -> t
val start : t -> unit
val metrics : t -> Smr.Metrics.t

(** Barriers executed (dependent commands) at replica 0. *)
val barriers : t -> int

(** Total commands executed at replica 0 across its workers. *)
val executed : t -> int

(** Worker-thread utilisation at replica 0 over a window, percent. *)
val worker_utilization : t -> from:float -> till:float -> float

(** The qualitative comparison of Table 6.1. *)
val table_6_1 : (string * string * string * string) list

val render_table_6_1 : unit -> string
