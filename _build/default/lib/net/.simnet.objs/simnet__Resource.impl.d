lib/net/resource.ml: Sim
