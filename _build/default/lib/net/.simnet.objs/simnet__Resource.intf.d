lib/net/resource.mli: Sim
