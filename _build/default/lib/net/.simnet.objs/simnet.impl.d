lib/net/simnet.ml: Float Hashtbl List Queue Resource Sim Stdlib
