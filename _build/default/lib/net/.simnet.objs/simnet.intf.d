lib/net/simnet.mli: Sim
