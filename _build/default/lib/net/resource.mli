(** A serially used resource (CPU, NIC link, disk head).

    Acquisitions are FIFO: a request at time [at] starts at
    [max at free_at] and occupies the resource for [dur] seconds.
    Busy time is accounted for utilization reporting. *)

type t

val create : string -> t

val name : t -> string

(** [acquire t ~at ~dur] reserves the resource and returns
    [(start, finish)] of the granted slot. *)
val acquire : t -> at:float -> dur:float -> float * float

(** [free_at t] is the earliest instant a new acquisition can start. *)
val free_at : t -> float

(** [backlog t ~now] is how far the resource is booked past [now]. *)
val backlog : t -> now:float -> float

val busy : t -> Sim.Stats.Busy.t
