lib/abcast/spaxos.mli: Paxos Simnet
