lib/abcast/lcr.ml: Array Fun List Map Paxos Printf Ringpaxos Simnet Stdlib Storage
