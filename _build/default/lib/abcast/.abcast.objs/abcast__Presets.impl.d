lib/abcast/presets.ml: Paxos
