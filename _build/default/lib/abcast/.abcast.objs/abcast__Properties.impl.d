lib/abcast/properties.ml: Hashtbl List
