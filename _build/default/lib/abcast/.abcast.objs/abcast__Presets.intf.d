lib/abcast/presets.mli: Paxos
