lib/abcast/properties.mli:
