lib/abcast/lcr.mli: Paxos Ringpaxos Simnet Storage
