lib/abcast/analysis.ml: Buffer List Printf
