lib/abcast/loadgen.ml: List Simnet
