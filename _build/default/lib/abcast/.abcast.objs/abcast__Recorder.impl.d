lib/abcast/recorder.ml: List Paxos Sim
