lib/abcast/analysis.mli:
