lib/abcast/recorder.mli: Paxos Sim
