lib/abcast/totem.mli: Paxos Simnet
