lib/abcast/totem.ml: Array Hashtbl List Paxos Printf Queue Simnet Stdlib
