lib/abcast/loadgen.mli: Simnet
