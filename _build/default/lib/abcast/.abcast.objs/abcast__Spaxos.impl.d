lib/abcast/spaxos.ml: Array Hashtbl List Paxos Printf Queue Sim Simnet Stdlib
