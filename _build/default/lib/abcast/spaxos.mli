(** S-Paxos (Biely et al.) — the dissemination-balanced Paxos of §3.4/§7.2.1.

    Clients submit to an arbitrary replica; the replica batches requests and
    forwards the batch to every other replica; replicas acknowledge each
    batch to all replicas (the O(n²) ack traffic the paper calls
    CPU-intensive); a batch is {e stable} once f+1 acknowledgements are
    seen.  The leader runs Paxos on batch {e ids} only; a replica delivers a
    batch when it is both ordered and stable.

    The per-batch CPU cost and stochastic garbage-collection pauses are
    calibrated to Table 3.2 (31 % efficiency at 32 KB) and §3.5.4's
    observation that Java GC pushes mean latency above 35 ms. *)

type t

type config = {
  f : int;  (** replicas = 2f+1 *)
  batch_bytes : int;
  batch_timeout : float;
  window : int;
  cpu_per_batch : float;  (** marshaling/dissemination overhead per replica *)
  gc_pause_every : float;  (** mean interval between GC pauses, seconds *)
  gc_pause : float;  (** mean pause length, seconds *)
  hb_period : float;
  hb_timeout : float;
}

val default_config : config

val create :
  Simnet.t -> config -> deliver:(learner:int -> Paxos.Value.t -> unit) -> t

(** [submit t ~replica ~size app] sends a client request to a replica. *)
val submit : t -> replica:int -> size:int -> Simnet.payload -> bool

val replica_proc : t -> int -> Simnet.proc
val n_replicas : t -> int
val kill_leader : t -> unit
val kill_replica : t -> int -> unit
val delivered : t -> int
