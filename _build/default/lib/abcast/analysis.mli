(** Analytic comparisons: Table 3.1 (atomic broadcast algorithms) and the
    qualitative Table 6.1 lives in {!Psmr} (parallel SMR approaches). *)

type row = {
  algorithm : string;
  cls : string;  (** protocol class of §3.4 *)
  comm_steps : string;  (** formula in f *)
  comm_steps_at : int -> int;  (** evaluated at a given f *)
  processes : string;
  processes_at : int -> int;
  synchrony : string;
}

(** The six rows of Table 3.1. *)
val table_3_1 : row list

(** [render ?f ()] formats the table, also evaluating formulas at [f]. *)
val render : ?f:int -> unit -> string
