(** LCR — ring-based, communication-history atomic broadcast
    (Guerraoui et al.), the paper's strongest throughput comparator.

    All [n] processes form a ring and every process may broadcast.  A
    message body travels the ring exactly once (each link carries each byte
    once, which is why LCR's efficiency exceeds 90 %); delivery order is by
    logical timestamp, and a message is delivered once the process knows no
    earlier-stamped message can still arrive — stability is propagated by
    small clock announcements that circulate the ring, giving the
    characteristic two-revolution delivery latency (Table 3.1).

    Simplification versus the original: LCR piggybacks vector clocks on the
    bodies; we gossip Lamport clocks in dedicated small messages, which has
    the same network cost shape.  LCR assumes perfect failure detection:
    {!kill} reconfigures the ring through an oracle, and in-transit messages
    may be lost (the paper's Table 3.1 notes this strong-synchrony
    weakness). *)

type t

type config = {
  n : int;  (** ring size; every process is broadcaster and deliverer *)
  clock_period : float;  (** cadence of stability announcements *)
  durability : Ringpaxos.Mring.durability;
}

val default_config : config

val create :
  Simnet.t ->
  config ->
  deliver:(learner:int -> Paxos.Value.t -> unit) ->
  t

(** [broadcast t ~from ~size app] injects a message at process [from];
    returns false when the process's client buffer is full. *)
val broadcast : t -> from:int -> size:int -> Simnet.payload -> bool

val proc : t -> int -> Simnet.proc
val kill : t -> int -> unit
val delivered : t -> int

(** Disk of process [i] (durable mode). *)
val disk : t -> int -> Storage.Disk.t option
