(** Delivery measurement shared by every throughput/latency experiment.

    Wire a protocol's delivery callback to {!item} (or {!value}); the
    recorder accumulates application bytes, message counts and end-to-end
    latency (delivery time minus the item's [born] stamp). *)

type t

val create : Sim.Engine.t -> t

(** [item r it] records the delivery of one application item. *)
val item : t -> Paxos.Value.item -> unit

(** [value r v] records every item of a decided value. *)
val value : t -> Paxos.Value.t -> unit

(** [mbps r ~from ~till] application-payload throughput. *)
val mbps : t -> from:float -> till:float -> float

val msgs_per_sec : t -> from:float -> till:float -> float

val items : t -> int
val bytes : t -> int

(** Latencies in milliseconds. *)
val lat_mean_ms : t -> float

val lat_p99_ms : t -> float
val lat_max_ms : t -> float

(** The paper's recoverable experiments report the mean after dropping the
    top 5 % (§5.4.2). *)
val lat_trimmed_ms : t -> float

(** [series r ~window ~till] delivery throughput per window, Mbps. *)
val series : t -> window:float -> till:float -> (float * float) list

(** CDF sketch of latencies in ms. *)
val lat_cdf : t -> points:int -> (float * float) list
