(** Open-loop load generation for the throughput experiments. *)

(** [constant net ~rate_mbps ~size submit] calls [submit size] at the
    message rate corresponding to [rate_mbps]; returns a stop thunk.
    [submit] returning [false] (client buffer full) is counted but the
    generator keeps its pace. *)
val constant :
  Simnet.t -> rate_mbps:float -> size:int -> (int -> bool) -> unit -> unit

(** [staircase net ~steps ~size submit] increases the rate at fixed wall
    times: [steps] is a list of [(start_time_s, rate_mbps)]. *)
val staircase :
  Simnet.t -> steps:(float * float) list -> size:int -> (int -> bool) -> unit -> unit

(** [oscillating net ~period ~low ~high ~size submit] alternates between two
    rates every [period] seconds (Fig. 5.10's variable-rate workload). *)
val oscillating :
  Simnet.t ->
  period:float ->
  low_mbps:float ->
  high_mbps:float ->
  size:int ->
  (int -> bool) ->
  unit ->
  unit
