type config = {
  n_daemons : int;
  token_hold : int;
  token_think : float;
  daemon_cpu_per_msg : float;
}

let default_config =
  { n_daemons = 3; token_hold = 16; token_think = 3.0e-5; daemon_cpu_per_msg = 3.5e-4 }

let hdr = 64

type Simnet.payload +=
  | Token of { seq : int; aru : int; aru_id : int; rtr : int list }
  | Data of { seq : int; value : Paxos.Value.t }

type daemon = {
  d_proc : Simnet.proc;
  d_idx : int;
  d_queue : Paxos.Value.t Queue.t;  (* locally submitted, unsent *)
  mutable d_queue_bytes : int;
  d_store : (int, Paxos.Value.t) Hashtbl.t;  (* seq -> body *)
  mutable d_delivered : int;  (* highest seq delivered *)
  mutable d_safe_prev : int;  (* token aru at the previous visit *)
}

type t = {
  net : Simnet.t;
  cfg : config;
  daemons : daemon array;
  group : Simnet.group;
  deliver : learner:int -> Paxos.Value.t -> unit;
  mutable next_uid : int;
  mutable delivered : int;
}

let my_aru d =
  (* Highest sequence number received without gaps. *)
  let rec go s = if Hashtbl.mem d.d_store (s + 1) then go (s + 1) else s in
  go d.d_delivered

(* Deliver contiguous messages up to the safe bound (the aru the token
   carried one full rotation ago). *)
let try_deliver t d =
  let continue = ref true in
  while !continue do
    let next = d.d_delivered + 1 in
    if next <= d.d_safe_prev then begin
      match Hashtbl.find_opt d.d_store next with
      | Some v ->
          d.d_delivered <- next;
          if d.d_idx = 0 then t.delivered <- t.delivered + 1;
          t.deliver ~learner:d.d_idx v
      | None -> continue := false
    end
    else continue := false
  done

let on_token t d seq aru aru_id rtr =
  (* Serve retransmission requests from the local store first. *)
  List.iter
    (fun s ->
      match Hashtbl.find_opt d.d_store s with
      | Some v ->
          Simnet.charge_cpu t.net d.d_proc t.cfg.daemon_cpu_per_msg;
          Simnet.mcast t.net ~src:d.d_proc t.group ~size:(v.Paxos.Value.size + hdr)
            (Data { seq = s; value = v })
      | None -> ())
    rtr;
  (* Multicast pending messages under the token. *)
  let seq = ref seq in
  let sent = ref 0 in
  while !sent < t.cfg.token_hold && not (Queue.is_empty d.d_queue) do
    let v = Queue.pop d.d_queue in
    d.d_queue_bytes <- d.d_queue_bytes - v.Paxos.Value.size;
    incr seq;
    incr sent;
    Hashtbl.replace d.d_store !seq v;
    Simnet.charge_cpu t.net d.d_proc t.cfg.daemon_cpu_per_msg;
    Simnet.mcast t.net ~src:d.d_proc t.group ~size:(v.size + hdr) (Data { seq = !seq; value = v })
  done;
  (* aru bookkeeping (Totem's all-received-up-to rule). *)
  let mine = my_aru d in
  let aru, aru_id =
    if mine < aru then (mine, d.d_idx)
    else if aru_id = d.d_idx then (mine, d.d_idx)
    else (aru, aru_id)
  in
  (* Request retransmission of our gaps on the next rotation. *)
  let rtr = ref [] in
  let upto = Stdlib.min !seq (mine + 64) in
  for s = mine + 1 to upto do
    if not (Hashtbl.mem d.d_store s) then rtr := s :: !rtr
  done;
  (* Safe delivery: everything the token already covered on its previous
     visit has been seen by every daemon for a full rotation. *)
  try_deliver t d;
  d.d_safe_prev <- Stdlib.min aru mine;
  let next = t.daemons.((d.d_idx + 1) mod t.cfg.n_daemons) in
  ignore
    (Simnet.after t.net t.cfg.token_think (fun () ->
         if Simnet.is_alive d.d_proc then
           Simnet.send t.net ~src:d.d_proc ~dst:next.d_proc
             ~size:(hdr + (8 * List.length !rtr))
             (Token { seq = !seq; aru; aru_id; rtr = !rtr })))

let handler t d (msg : Simnet.msg) =
  match msg.payload with
  | Token { seq; aru; aru_id; rtr } -> on_token t d seq aru aru_id rtr
  | Data { seq; value } ->
      Simnet.charge_cpu t.net d.d_proc t.cfg.daemon_cpu_per_msg;
      Hashtbl.replace d.d_store seq value;
      try_deliver t d
  | _ -> ()

let create net cfg ~deliver =
  let group = Simnet.new_group net "totem" in
  let daemons =
    Array.init cfg.n_daemons (fun i ->
        let node = Simnet.add_node net (Printf.sprintf "totem-%d" i) in
        let proc = Simnet.add_proc net node (Printf.sprintf "totem-%d" i) in
        Simnet.join group proc;
        { d_proc = proc;
          d_idx = i;
          d_queue = Queue.create ();
          d_queue_bytes = 0;
          d_store = Hashtbl.create 4096;
          d_delivered = 0;
          d_safe_prev = 0 })
  in
  let t = { net; cfg; daemons; group; deliver; next_uid = 0; delivered = 0 } in
  Array.iter (fun d -> Simnet.set_handler d.d_proc (handler t d)) daemons;
  (* Inject the token at daemon 0. *)
  ignore
    (Simnet.after net 1.0e-4 (fun () -> on_token t daemons.(0) 0 0 0 []));
  t

let broadcast t ~from ~size app =
  let d = t.daemons.(from) in
  if d.d_queue_bytes + size > 2 * 1024 * 1024 then false
  else begin
    t.next_uid <- t.next_uid + 1;
    let v =
      Paxos.Value.single ~vid:t.next_uid ~uid:t.next_uid ~size ~born:(Simnet.now t.net) app
    in
    Queue.push v d.d_queue;
    d.d_queue_bytes <- d.d_queue_bytes + size;
    true
  end

let proc t i = t.daemons.(i).d_proc
let delivered t = t.delivered
