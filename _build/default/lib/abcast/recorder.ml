type t = {
  engine : Sim.Engine.t;
  rate : Sim.Stats.Rate.t;
  lat : Sim.Stats.Latency.t;
}

let create engine =
  { engine; rate = Sim.Stats.Rate.create (); lat = Sim.Stats.Latency.create () }

let item t (it : Paxos.Value.item) =
  let now = Sim.Engine.now t.engine in
  Sim.Stats.Rate.add t.rate ~now ~bytes:it.isize;
  Sim.Stats.Latency.add t.lat (now -. it.born)

let value t (v : Paxos.Value.t) = List.iter (item t) v.items

let mbps t ~from ~till = Sim.Stats.Rate.mbps t.rate ~from ~till
let msgs_per_sec t ~from ~till = Sim.Stats.Rate.events_per_sec t.rate ~from ~till
let items t = Sim.Stats.Rate.events t.rate
let bytes t = Sim.Stats.Rate.bytes t.rate
let lat_mean_ms t = Sim.Stats.Latency.mean t.lat *. 1e3
let lat_p99_ms t = Sim.Stats.Latency.percentile t.lat 0.99 *. 1e3
let lat_max_ms t = Sim.Stats.Latency.max t.lat *. 1e3
let lat_trimmed_ms t = Sim.Stats.Latency.trimmed_mean t.lat ~drop_top:0.05 *. 1e3
let series t ~window ~till = Sim.Stats.Rate.series t.rate ~window ~till

let lat_cdf t ~points =
  List.map (fun (v, f) -> (v *. 1e3, f)) (Sim.Stats.Latency.cdf t.lat ~points)
