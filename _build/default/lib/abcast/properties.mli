(** Test oracles for the Chapter 2 correctness properties.

    Experiments and tests record, per learner, the sequence of delivered
    item uids; these predicates decide whether a set of such logs satisfies
    the atomic broadcast / atomic multicast specifications.  They are used
    by the property-based tests to check every protocol in the repository
    against the same definitions. *)

(** A delivery log: item uids in delivery order at one learner. *)
type log = int list

(** [integrity ~broadcast logs] — uniform integrity: every delivered uid was
    broadcast, and no learner delivers a uid twice. *)
val integrity : broadcast:int list -> log list -> bool

(** [total_order logs] — uniform total order: any two learners deliver
    their common messages in the same relative order (one log's common
    subsequence is a prefix-compatible ordering of the other's). *)
val total_order : log list -> bool

(** [agreement logs] — uniform agreement at quiescence: every learner
    delivered the same set. *)
val agreement : log list -> bool

(** [validity ~broadcast logs] — every broadcast uid was delivered by every
    learner (assumes a failure-free run observed at quiescence). *)
val validity : broadcast:int list -> log list -> bool

(** [atomic_broadcast ~broadcast logs] — all four properties at once. *)
val atomic_broadcast : broadcast:int list -> log list -> bool

(** [partial_order ~group_of logs] — atomic multicast's uniform partial
    order: for learners that deliver messages in common, the common
    messages appear in the same relative order; [group_of] is unused by the
    check itself but documents that logs may cover different groups. *)
val partial_order : log list -> bool
