let period_of ~rate_mbps ~size =
  if rate_mbps <= 0.0 then infinity else float_of_int (size * 8) /. (rate_mbps *. 1e6)

let constant net ~rate_mbps ~size submit =
  let period = period_of ~rate_mbps ~size in
  if period = infinity then fun () -> ()
  else Simnet.every net ~period (fun () -> ignore (submit size))

let staircase net ~steps ~size submit =
  let stopped = ref false in
  let current : (unit -> unit) option ref = ref None in
  List.iter
    (fun (start, rate) ->
      ignore
        (Simnet.after net start (fun () ->
             if not !stopped then begin
               (match !current with Some stop -> stop () | None -> ());
               current := Some (constant net ~rate_mbps:rate ~size submit)
             end)))
    steps;
  fun () ->
    stopped := true;
    match !current with Some stop -> stop () | None -> ()

let oscillating net ~period ~low_mbps ~high_mbps ~size submit =
  let stopped = ref false in
  let current : (unit -> unit) option ref = ref None in
  let high = ref true in
  let rec flip () =
    if not !stopped then begin
      (match !current with Some stop -> stop () | None -> ());
      let rate = if !high then high_mbps else low_mbps in
      high := not !high;
      current := Some (constant net ~rate_mbps:rate ~size submit);
      ignore (Simnet.after net period flip)
    end
  in
  flip ();
  fun () ->
    stopped := true;
    match !current with Some stop -> stop () | None -> ()
