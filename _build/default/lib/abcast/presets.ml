let libpaxos =
  { Paxos.Basic.default_config with
    dissemination = `Mcast;
    window = 4;
    batch_bytes = 0;
    extra_cpu_per_instance = 6.0e-4;
    repair_timeout = 0.05 }

let libpaxos_plus =
  { Paxos.Basic.default_config with
    dissemination = `Mcast;
    window = 32;
    batch_bytes = 8192;
    extra_cpu_per_instance = 2.0e-4;
    repair_timeout = 0.005 }

let pfsb =
  { Paxos.Basic.default_config with
    dissemination = `Ucast;
    window = 64;
    batch_bytes = 0;
    extra_cpu_per_instance = 2.0e-5 }

let openreplica =
  { Paxos.Basic.default_config with
    dissemination = `Ucast;
    window = 8;
    batch_bytes = 0;
    extra_cpu_per_instance = 2.0e-3;
    hb_timeout = 1.0 }

let message_size = function
  | `Libpaxos -> 4 * 1024
  | `Pfsb -> 200
  | `Openreplica -> 1024
  | `Mring -> 8 * 1024
  | `Uring -> 32 * 1024
  | `Lcr -> 32 * 1024
  | `Spaxos -> 32 * 1024
  | `Spread -> 16 * 1024
