(** Configurations of {!Paxos.Basic} reproducing the open-source Paxos
    libraries the dissertation measures (§3.5.3, Ch. 7).

    The per-instance CPU overheads are calibration constants chosen so the
    peak throughput of each preset matches the efficiency the paper reports
    (Table 3.2, Fig. 7.2); the message patterns are structural. *)

(** Libpaxos: ip-multicast Paxos, no batching, small window; ~3 %
    efficiency at 4 KB messages. *)
val libpaxos : Paxos.Basic.config

(** Libpaxos+: the improved variant of §7.2.5 — larger window, batching,
    faster gap repair. *)
val libpaxos_plus : Paxos.Basic.config

(** PFSB ("Paxos for system builders"): unicast-only Paxos, 200-byte
    messages; ~4 % efficiency. *)
val pfsb : Paxos.Basic.config

(** OpenReplica: Python leader-based Paxos over unicast; low throughput,
    long failure-detection timeouts (§7.2.2). *)
val openreplica : Paxos.Basic.config

(** Preferred message sizes per protocol (Table 3.2). *)
val message_size : [ `Libpaxos | `Pfsb | `Openreplica | `Mring | `Uring | `Lcr | `Spaxos | `Spread ] -> int
