(** Totem single-ring total order, the protocol underneath the Spread
    toolkit (§3.4, privilege-based class).

    Daemons form a logical ring around a rotating token.  The token holder
    ip-multicasts its pending messages stamped with global sequence numbers
    taken from the token, updates the token's all-received-up-to field
    ([aru]), serves retransmission requests, and passes the token on.
    A message is safe-delivered once the [aru] has covered it for a full
    token rotation (two rotations end to end), giving the class's
    characteristic high latency (Table 3.1: 4f+3 steps).

    The per-message daemon overhead is calibrated so peak throughput matches
    Spread's measured ~18 % efficiency at 16 KB messages (Table 3.2). *)

type t

type config = {
  n_daemons : int;
  token_hold : int;  (** max messages multicast per token visit *)
  token_think : float;  (** processing time before passing the token *)
  daemon_cpu_per_msg : float;  (** calibrated Spread overhead, seconds *)
}

val default_config : config

val create :
  Simnet.t -> config -> deliver:(learner:int -> Paxos.Value.t -> unit) -> t

(** [broadcast t ~from ~size app] queues a message at daemon [from]. *)
val broadcast : t -> from:int -> size:int -> Simnet.payload -> bool

val proc : t -> int -> Simnet.proc
val delivered : t -> int
