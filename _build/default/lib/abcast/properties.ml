type log = int list

let no_dups l =
  let seen = Hashtbl.create (List.length l) in
  List.for_all
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let integrity ~broadcast logs =
  let sent = Hashtbl.create (List.length broadcast) in
  List.iter (fun u -> Hashtbl.replace sent u ()) broadcast;
  List.for_all (fun log -> no_dups log && List.for_all (Hashtbl.mem sent) log) logs

(* Two logs are order-compatible when their common elements appear in the
   same relative order. *)
let pair_order_compatible a b =
  let in_b = Hashtbl.create (List.length b) in
  List.iteri (fun i x -> Hashtbl.replace in_b x i) b;
  let common_positions = List.filter_map (fun x -> Hashtbl.find_opt in_b x) a in
  let rec ascending = function
    | x :: (y :: _ as rest) -> x < y && ascending rest
    | _ -> true
  in
  ascending common_positions

let rec pairs_ok f = function
  | [] -> true
  | x :: rest -> List.for_all (f x) rest && pairs_ok f rest

let total_order logs = pairs_ok pair_order_compatible logs

let partial_order = total_order

let agreement logs =
  match logs with
  | [] -> true
  | first :: rest ->
      let s = List.sort compare first in
      List.for_all (fun l -> List.sort compare l = s) rest

let validity ~broadcast logs =
  let sent = List.sort_uniq compare broadcast in
  List.for_all
    (fun log ->
      let got = List.sort_uniq compare log in
      List.for_all (fun u -> List.mem u got) sent)
    logs

let atomic_broadcast ~broadcast logs =
  integrity ~broadcast logs && total_order logs && agreement logs
  && validity ~broadcast logs
