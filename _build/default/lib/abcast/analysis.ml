type row = {
  algorithm : string;
  cls : string;
  comm_steps : string;
  comm_steps_at : int -> int;
  processes : string;
  processes_at : int -> int;
  synchrony : string;
}

let table_3_1 =
  [ { algorithm = "LCR";
      cls = "comm. history";
      comm_steps = "2f";
      comm_steps_at = (fun f -> 2 * f);
      processes = "f+1";
      processes_at = (fun f -> f + 1);
      synchrony = "strong" };
    { algorithm = "Totem";
      cls = "privilege";
      comm_steps = "4f+3";
      comm_steps_at = (fun f -> (4 * f) + 3);
      processes = "2f+1";
      processes_at = (fun f -> (2 * f) + 1);
      synchrony = "weak" };
    { algorithm = "Ring+FD";
      cls = "privilege";
      comm_steps = "f^2+2f";
      comm_steps_at = (fun f -> (f * f) + (2 * f));
      processes = "f(f+1)+1";
      processes_at = (fun f -> (f * (f + 1)) + 1);
      synchrony = "weak" };
    { algorithm = "S-Paxos";
      cls = "-";
      comm_steps = "5";
      comm_steps_at = (fun _ -> 5);
      processes = "2f+1";
      processes_at = (fun f -> (2 * f) + 1);
      synchrony = "weak" };
    { algorithm = "M-Ring Paxos";
      cls = "-";
      comm_steps = "f+3";
      comm_steps_at = (fun f -> f + 3);
      processes = "2f+1";
      processes_at = (fun f -> (2 * f) + 1);
      synchrony = "weak" };
    { algorithm = "U-Ring Paxos";
      cls = "-";
      comm_steps = "5f";
      comm_steps_at = (fun f -> 5 * f);
      processes = "2f+1";
      processes_at = (fun f -> (2 * f) + 1);
      synchrony = "weak" } ]

let render ?(f = 2) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-14s %-15s %-12s %-6s %-10s %-6s %s\n" "Algorithm" "Class"
       "Comm.steps" (Printf.sprintf "@f=%d" f) "Processes" (Printf.sprintf "@f=%d" f)
       "Synchrony");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %-15s %-12s %-6d %-10s %-6d %s\n" r.algorithm r.cls
           r.comm_steps (r.comm_steps_at f) r.processes (r.processes_at f) r.synchrony))
    table_3_1;
  Buffer.contents buf
