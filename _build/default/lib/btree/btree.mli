(** In-memory B+-tree over [int] keys and values — the replicated service of
    Chapter 4 (§4.4.2: insert, delete and range queries over 8-byte
    integers).

    Leaves are linked for efficient range scans.  The structure is
    deterministic: replicas applying the same operation sequence hold
    structurally identical trees, which the SMR tests rely on. *)

type t

(** [create ~order ()] makes an empty tree; [order] is the maximum number of
    keys per node (default 64, minimum 4). *)
val create : ?order:int -> unit -> t

(** [insert t k v] inserts or overwrites; returns the previous value. *)
val insert : t -> int -> int -> int option

(** [delete t k] removes [k]; returns the value it had. *)
val delete : t -> int -> int option

val find : t -> int -> int option

(** [range t ~lo ~hi] is the [(key, value)] pairs with [lo <= key <= hi],
    in ascending key order. *)
val range : t -> lo:int -> hi:int -> (int * int) list

(** [range_count t ~lo ~hi] counts without materialising. *)
val range_count : t -> lo:int -> hi:int -> int

(** Number of keys stored. *)
val size : t -> int

val min_key : t -> int option
val max_key : t -> int option

(** [iter t f] visits all pairs in ascending key order. *)
val iter : t -> (int -> int -> unit) -> unit

(** [check t] verifies structural invariants (sorted keys, node occupancy,
    leaf links, consistent depth); raises [Failure] on violation. *)
val check : t -> unit

(** [populate t ~n ~key_range ~seed] inserts [n] distinct random keys
    (value = key), for experiment setup. *)
val populate : t -> n:int -> key_range:int -> seed:int -> unit
