(** Chapter 7 — "Experimenting with Paxos in the Cloud".

    Runs the five open-source Paxos libraries the paper evaluates on an
    EC2-like environment: higher and jittered latency, no performance
    isolation (heterogeneous instances = slower CPUs), and scripted
    failures.  Produces per-window delivery-throughput timelines (the
    series plotted in Figs. 7.2-7.7).

    Substitution note: Amazon EC2 provides no ip-multicast; the paper ran
    multicast-dependent libraries in cluster placement groups.  The model
    keeps multicast available but with a small base loss rate and reduced
    switch capacity, which reproduces the same retransmission behaviour. *)

type lib = S_paxos | Openreplica | U_ring | Libpaxos | Libpaxos_plus

val lib_name : lib -> string
val all_libs : lib list

type result = {
  series : (float * float) list;  (** (window end, delivered Mbps) *)
  mbps : float;  (** steady-state delivery throughput *)
  kcps : float;
  lat_ms : float;
  recovered : bool;  (** delivery resumed after the injected failure *)
  outage : float;  (** seconds with (near-)zero delivery after the kill *)
}

(** [run ~lib ()] executes one scenario.

    @param hetero slow down one non-leader replica (small instance)
    @param kill_leader_at crash the leader/coordinator at this time
    @param rate_mbps offered load (default: near each library's peak)
    @param msg_size application message size (default: per-library best)
    @param duration total simulated seconds (default 15) *)
val run :
  ?seed:int ->
  ?hetero:bool ->
  ?kill_leader_at:float ->
  ?rate_mbps:float ->
  ?msg_size:int ->
  ?duration:float ->
  lib:lib ->
  unit ->
  result

(** Tables 7.1/7.2: the evaluated configurations. *)
val render_configs : unit -> string
