type lib = S_paxos | Openreplica | U_ring | Libpaxos | Libpaxos_plus

let lib_name = function
  | S_paxos -> "S-Paxos"
  | Openreplica -> "OpenReplica"
  | U_ring -> "U-Ring Paxos"
  | Libpaxos -> "Libpaxos"
  | Libpaxos_plus -> "Libpaxos+"

let all_libs = [ S_paxos; Openreplica; U_ring; Libpaxos; Libpaxos_plus ]

type result = {
  series : (float * float) list;
  mbps : float;
  kcps : float;
  lat_ms : float;
  recovered : bool;
  outage : float;
}

(* EC2-like network: higher, jittery latency; some baseline loss; a less
   capable multicast fabric than a dedicated LAN switch. *)
let cloud_config =
  { Simnet.default_config with
    latency = 3.0e-4;
    latency_jitter = 0.5;
    udp_base_loss = 0.001;
    mcast_capacity = 0.7e9 }

let default_rate = function
  | S_paxos -> 120.0
  | Openreplica -> 3.0
  | U_ring -> 300.0
  | Libpaxos -> 18.0
  | Libpaxos_plus -> 120.0

let default_size = function
  | S_paxos -> Abcast.Presets.message_size `Spaxos
  | Openreplica -> Abcast.Presets.message_size `Openreplica
  | U_ring -> 8 * 1024
  | Libpaxos | Libpaxos_plus -> Abcast.Presets.message_size `Libpaxos

(* Emulate a small (slower) instance by scaling a process's CPU costs. *)
let slow_down proc factor =
  let c = Simnet.costs_of proc in
  c.recv_per_msg <- c.recv_per_msg *. factor;
  c.recv_per_byte <- c.recv_per_byte *. factor;
  c.send_per_msg <- c.send_per_msg *. factor;
  c.send_per_byte <- c.send_per_byte *. factor

type Simnet.payload += Load of int

let run ?(seed = 7) ?(hetero = false) ?kill_leader_at ?rate_mbps ?msg_size ?(duration = 15.0)
    ~lib () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create ~config:cloud_config engine (Sim.Rng.create seed) in
  let rec_ = Abcast.Recorder.create engine in
  let rate = Option.value ~default:(default_rate lib) rate_mbps in
  let size = Option.value ~default:(default_size lib) msg_size in
  (* Build the deployment; return (submit, kill_leader). *)
  let submit, kill_leader =
    match lib with
    | S_paxos ->
        let sp =
          Abcast.Spaxos.create net Abcast.Spaxos.default_config
            ~deliver:(fun ~learner v -> if learner = 1 then Abcast.Recorder.value rec_ v)
        in
        if hetero then slow_down (Abcast.Spaxos.replica_proc sp 2) 4.0;
        let turn = ref 0 in
        ( (fun sz ->
            incr turn;
            ignore (Abcast.Spaxos.submit sp ~replica:(!turn mod 3) ~size:sz (Load !turn))),
          fun () -> Abcast.Spaxos.kill_leader sp )
    | U_ring ->
        let cfg = { Ringpaxos.Uring.default_config with f = 1 } in
        let ur =
          Ringpaxos.Uring.create net cfg
            ~positions:(Ringpaxos.Uring.standard_positions ~n:3)
            ~deliver:(fun ~learner ~inst:_ v ->
              if learner = 1 then Abcast.Recorder.value rec_ v)
        in
        if hetero then slow_down (Ringpaxos.Uring.position_proc ur 2) 4.0;
        let turn = ref 0 in
        ( (fun sz ->
            incr turn;
            ignore (Ringpaxos.Uring.submit ur ~proposer:(!turn mod 3) ~size:sz (Load !turn))),
          fun () -> Ringpaxos.Uring.kill_coordinator ur )
    | Openreplica | Libpaxos | Libpaxos_plus ->
        let cfg =
          match lib with
          | Openreplica -> Abcast.Presets.openreplica
          | Libpaxos -> Abcast.Presets.libpaxos
          | _ -> Abcast.Presets.libpaxos_plus
        in
        let bp =
          Paxos.Basic.create net cfg ~n_acceptors:3 ~n_standby:1 ~n_proposers:1 ~n_learners:1
            ~deliver:(fun ~learner ~inst:_ v ->
              if learner = 0 then Abcast.Recorder.value rec_ v)
        in
        if hetero then slow_down (Paxos.Basic.acceptor bp 2) 4.0;
        ( (fun sz -> ignore (Paxos.Basic.submit bp ~proposer:0 ~size:sz (Load 0))),
          fun () -> Paxos.Basic.kill_coordinator bp )
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:rate ~size (fun sz ->
        submit sz;
        true)
  in
  let kill_at = Option.value ~default:infinity kill_leader_at in
  if kill_at < duration then
    ignore (Simnet.after net kill_at (fun () -> kill_leader ()));
  Sim.Engine.run engine ~until:duration;
  stop ();
  let window = 0.5 in
  let series = Abcast.Recorder.series rec_ ~window ~till:duration in
  let warm = 1.0 in
  let steady_till = Stdlib.min duration kill_at in
  let mbps = Abcast.Recorder.mbps rec_ ~from:warm ~till:steady_till in
  let kcps = Abcast.Recorder.msgs_per_sec rec_ ~from:warm ~till:steady_till /. 1e3 in
  let lat_ms = Abcast.Recorder.lat_trimmed_ms rec_ in
  let recovered, outage =
    if kill_at >= duration then (true, 0.0)
    else begin
      let post = List.filter (fun (t, _) -> t > kill_at) series in
      let threshold = mbps *. 0.1 in
      let dead = List.filter (fun (_, v) -> v < threshold) post in
      let tail = match List.rev post with (_, v) :: _ -> v | [] -> 0.0 in
      (tail > mbps *. 0.3, float_of_int (List.length dead) *. window)
    end
  in
  { series; mbps; kcps; lat_ms; recovered; outage }

let render_configs () =
  String.concat "\n"
    [ "Table 7.1 - peak-performance configurations (replicas/acceptors on";
      "large instances, one client machine, per-library best message size):";
      "  S-Paxos      3 replicas (f=1), 32 KB batches, clients spread across replicas";
      "  OpenReplica  3 replicas (f=1), 1 KB messages, single leader";
      "  U-Ring Paxos ring of 3 (proposer+acceptor+learner each), 32 KB batches";
      "  Libpaxos     coordinator + 3 acceptors, 4 KB messages, no batching";
      "  Libpaxos+    Libpaxos with batching, windowing and fast gap repair";
      "";
      "Table 7.2 - heterogeneous/flow-control configurations: one replica on";
      "a small instance (4x slower CPU); leader crash injected mid-run." ]
