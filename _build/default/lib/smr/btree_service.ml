type Simnet.payload +=
  | Insert of { key : int; value : int }
  | Delete of { key : int }
  | Query of { lo : int; hi : int }
  | Batch of Simnet.payload list

type cost_model = {
  update_cost : float;
  query_base : float;
  query_per_key : float;
  cmd_overhead : float;
  update_resp : int;
  query_resp : int;
}

let default_costs =
  { update_cost = 1.2e-6;
    query_base = 3.0e-5;
    query_per_key = 2.0e-7;
    cmd_overhead = 6.0e-7;
    update_resp = 256;
    query_resp = 8192 }

type t = { service : Service.t; tree : Btree.t }

let create ?(costs = default_costs) ?(initial_keys = 0) ?(key_range = 1_000_000) ?(seed = 1)
    () =
  let tree = Btree.create () in
  if initial_keys > 0 then Btree.populate tree ~n:initial_keys ~key_range ~seed;
  let rec exec_one = function
    | Insert { key; value } ->
        let old = Btree.insert tree key value in
        let undo () =
          match old with
          | None -> ignore (Btree.delete tree key)
          | Some v -> ignore (Btree.insert tree key v)
        in
        { Service.resp_size = costs.update_resp; cost = costs.update_cost; undo = Some undo }
    | Delete { key } ->
        let old = Btree.delete tree key in
        let undo () =
          match old with None -> () | Some v -> ignore (Btree.insert tree key v)
        in
        { resp_size = costs.update_resp; cost = costs.update_cost; undo = Some undo }
    | Query { lo; hi } ->
        let hits = Btree.range_count tree ~lo ~hi in
        { resp_size = costs.query_resp;
          cost = costs.query_base +. (costs.query_per_key *. float_of_int hits);
          undo = None }
    | Batch ops ->
        let outcomes = List.map exec_one ops in
        let cost = List.fold_left (fun acc (o : Service.outcome) -> acc +. o.cost) 0.0 outcomes in
        let undos = List.filter_map (fun (o : Service.outcome) -> o.undo) outcomes in
        let undo () = List.iter (fun u -> u ()) (List.rev undos) in
        { resp_size = costs.update_resp; cost; undo = Some undo }
    | _ -> { resp_size = 64; cost = 0.0; undo = None }
  in
  let execute op =
    let o = exec_one op in
    { o with Service.cost = o.Service.cost +. costs.cmd_overhead }
  in
  let service = { Service.execute; rollback_cost = costs.update_cost } in
  { service; tree }

let fingerprint t =
  let h = ref 5381 in
  Btree.iter t.tree (fun k v ->
      h := (((!h lsl 5) + !h) lxor k lxor (v * 2654435761)) land max_int);
  !h lxor Btree.size t.tree
