lib/smr/cs.ml: Array Metrics Printf Service Sim Simnet Stdlib Workload
