lib/smr/metrics.mli: Sim
