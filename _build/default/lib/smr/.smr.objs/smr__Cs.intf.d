lib/smr/cs.mli: Metrics Service Simnet Workload
