lib/smr/linearizability.mli:
