lib/smr/workload.ml: Btree_service List Sim Simnet Stdlib
