lib/smr/btree_service.mli: Btree Service Simnet
