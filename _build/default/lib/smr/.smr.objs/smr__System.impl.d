lib/smr/system.ml: Array Btree_service Hashtbl List Metrics Paxos Ringpaxos Service Sim Simnet Stdlib Workload
