lib/smr/system.mli: Metrics Ringpaxos Service Simnet Workload
