lib/smr/btree_service.ml: Btree List Service Simnet
