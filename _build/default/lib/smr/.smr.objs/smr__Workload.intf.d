lib/smr/workload.mli: Sim Simnet
