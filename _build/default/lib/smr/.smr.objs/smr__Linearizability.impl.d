lib/smr/linearizability.ml: Array List
