lib/smr/metrics.ml: Sim
