lib/smr/service.mli: Simnet
