lib/smr/service.ml: Simnet
