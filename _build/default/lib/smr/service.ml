type outcome = {
  resp_size : int;
  cost : float;
  undo : (unit -> unit) option;
}

type t = {
  execute : Simnet.payload -> outcome;
  rollback_cost : float;
}

let dummy ?(cost = 0.0) ?(resp_size = 64) () =
  { execute = (fun _ -> { resp_size; cost; undo = None }); rollback_cost = 0.0 }
