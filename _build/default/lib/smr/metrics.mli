(** Client-side measurement: completed commands per second and response
    time, as reported in the Chapter 4/6 figures. *)

type t

val create : Sim.Engine.t -> t

(** [command t ~born ~bytes] records a completed command. *)
val command : t -> born:float -> bytes:int -> unit

val completed : t -> int

(** Kilo-commands per second over a window (the paper's Kcps). *)
val kcps : t -> from:float -> till:float -> float

val mbps : t -> from:float -> till:float -> float
val lat_mean_ms : t -> float
val lat_p99_ms : t -> float
