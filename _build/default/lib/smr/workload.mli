(** Workload generators for the Chapter 4 experiments (§4.4.2):

    - [Queries]: range queries over an interval of [query_span] keys, keys
      uniform; a configurable percentage straddles a partition boundary and
      becomes a cross-partition command (§4.4.5).
    - [Ins_del_single]: one insert or delete per command.
    - [Ins_del_batch]: seven updates per command (§4.4.2).

    Commands are 256 bytes on the wire. *)

type kind = Queries | Ins_del_single | Ins_del_batch

type command = {
  op : Simnet.payload;
  parts : int list;  (** partitions the command must reach *)
  size : int;  (** request bytes *)
}

type t

val create :
  ?cross_pct:int ->
  ?query_span:int ->
  Sim.Rng.t ->
  kind ->
  key_range:int ->
  n_partitions:int ->
  t

(** [next t] generates the next command. *)
val next : t -> command

(** [partition_of ~key_range ~n_partitions key] is the owning partition. *)
val partition_of : key_range:int -> n_partitions:int -> int -> int
