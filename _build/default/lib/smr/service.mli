(** The deterministic service a replica executes — command semantics plus a
    virtual-time cost model and an undo for speculative rollback. *)

(** Result of executing one command. *)
type outcome = {
  resp_size : int;  (** bytes of the response sent to the client *)
  cost : float;  (** execution time charged to the replica, seconds *)
  undo : (unit -> unit) option;  (** reverses the command (None = read-only) *)
}

type t = {
  execute : Simnet.payload -> outcome;
  rollback_cost : float;  (** extra time charged when undoing a command *)
}

(** A service that ignores its input: every command costs [cost] and answers
    [resp_size] bytes (the "dummy service" of Fig. 5.2). *)
val dummy : ?cost:float -> ?resp_size:int -> unit -> t
