(** The non-replicated client-server baseline of Chapter 4 (Fig. 4.1):
    clients talk to a single multithreaded server directly, without an
    agreement layer. *)

type t

(** [create net ~n_threads ~service ~n_clients ~gen] builds a server with
    [n_threads] executor threads and [n_clients] closed-loop clients. *)
val create :
  Simnet.t ->
  n_threads:int ->
  service:Service.t ->
  n_clients:int ->
  gen:(int -> Workload.command) ->
  t

val start : t -> unit
val metrics : t -> Metrics.t
val server_proc : t -> Simnet.proc
