type kind = Queries | Ins_del_single | Ins_del_batch

type command = {
  op : Simnet.payload;
  parts : int list;
  size : int;
}

type t = {
  rng : Sim.Rng.t;
  kind : kind;
  key_range : int;
  n_partitions : int;
  cross_pct : int;
  query_span : int;
}

let cmd_size = 256

let partition_of ~key_range ~n_partitions key =
  let p = key * n_partitions / (key_range + 1) in
  Stdlib.max 0 (Stdlib.min (n_partitions - 1) p)

let create ?(cross_pct = 0) ?(query_span = 1000) rng kind ~key_range ~n_partitions =
  { rng; kind; key_range; n_partitions; cross_pct; query_span }

let parts_of_range t lo hi =
  let p1 = partition_of ~key_range:t.key_range ~n_partitions:t.n_partitions lo in
  let p2 = partition_of ~key_range:t.key_range ~n_partitions:t.n_partitions hi in
  if p1 = p2 then [ p1 ] else List.init (p2 - p1 + 1) (fun i -> p1 + i)

let gen_query t =
  let span = t.query_span in
  let lo =
    if t.n_partitions > 1 && Sim.Rng.int t.rng 100 < t.cross_pct then begin
      (* Straddle a random partition boundary. *)
      let b = 1 + Sim.Rng.int t.rng (t.n_partitions - 1) in
      let boundary = b * (t.key_range + 1) / t.n_partitions in
      boundary - (span / 2)
    end
    else begin
      (* Fully inside a random partition. *)
      let p = Sim.Rng.int t.rng t.n_partitions in
      let plo = p * (t.key_range + 1) / t.n_partitions in
      let phi = ((p + 1) * (t.key_range + 1) / t.n_partitions) - span in
      plo + Sim.Rng.int t.rng (Stdlib.max 1 (phi - plo))
    end
  in
  let lo = Stdlib.max 1 lo in
  let hi = lo + span - 1 in
  { op = Btree_service.Query { lo; hi }; parts = parts_of_range t lo hi; size = cmd_size }

let gen_update t =
  let key = 1 + Sim.Rng.int t.rng t.key_range in
  let op =
    if Sim.Rng.bool t.rng 0.5 then Btree_service.Insert { key; value = key }
    else Btree_service.Delete { key }
  in
  (op, partition_of ~key_range:t.key_range ~n_partitions:t.n_partitions key)

let next t =
  match t.kind with
  | Queries -> gen_query t
  | Ins_del_single ->
      let op, p = gen_update t in
      { op; parts = [ p ]; size = cmd_size }
  | Ins_del_batch ->
      (* Seven updates, all in the same partition so the command is
         single-partition (§4.4.2). *)
      let p = Sim.Rng.int t.rng t.n_partitions in
      let plo = p * (t.key_range + 1) / t.n_partitions in
      let phi = ((p + 1) * (t.key_range + 1) / t.n_partitions) - 1 in
      let ops =
        List.init 7 (fun _ ->
            let key = plo + 1 + Sim.Rng.int t.rng (Stdlib.max 1 (phi - plo)) in
            if Sim.Rng.bool t.rng 0.5 then Btree_service.Insert { key; value = key }
            else Btree_service.Delete { key })
      in
      { op = Btree_service.Batch ops; parts = [ p ]; size = cmd_size }
