(** State-machine replication over M-Ring Paxos — the replicated deployments
    of Chapter 4.

    A deployment has [partitions × replicas_per_partition] replicas, each a
    learner of the (optionally partitioned) M-Ring Paxos instance, and a set
    of closed-loop clients acting as proposers.  Per §4.4.2:

    - updates are executed by every replica of the addressed partition and
      answered by one designated replica;
    - range queries are executed and answered by the designated replica
      only;
    - cross-partition queries are split by the client library into
      sub-commands and the partial responses merged at the client;
    - execution runs on a dedicated executor thread per replica, separate
      from the network path (the 3-4 thread server of §4.4.2);
    - with [speculative = true] replicas execute commands when the Phase 2A
      multicast arrives and answer once the order is confirmed, rolling
      back if arrival order and decision order disagree (§4.2.1). *)

type config = {
  mring : Ringpaxos.Mring.config;
  replicas_per_partition : int;
  speculative : bool;
  read_only : Simnet.payload -> bool;
      (** commands only the designated responder must execute *)
}

val default_config : config

type t

(** [create net cfg ~services ~n_clients ~gen] builds the deployment;
    [services learner] supplies each replica's service (replicas of the same
    partition must be observationally identical); [gen client] produces the
    next command of a client's closed loop. *)
val create :
  Simnet.t ->
  config ->
  services:(int -> Service.t) ->
  n_clients:int ->
  gen:(int -> Workload.command) ->
  t

(** [start t] launches every client's closed loop. *)
val start : t -> unit

(** Client-side metrics (completed commands, Kcps, response time). *)
val metrics : t -> Metrics.t

val mring : t -> Ringpaxos.Mring.t

(** Executor-thread utilisation of a replica over a window, percent. *)
val exec_utilization : t -> learner:int -> from:float -> till:float -> float

(** Busy time of the replica's network/response path (its process CPU). *)
val replica_proc : t -> learner:int -> Simnet.proc

(** Commands executed at a replica (for cost accounting). *)
val executed : t -> learner:int -> int

(** Speculative executions that had to be rolled back. *)
val rollbacks : t -> learner:int -> int

val n_replicas : t -> int
