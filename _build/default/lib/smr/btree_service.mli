(** The replicated B+-tree service of Chapter 4 (§4.4.2).

    Commands are [insert(key, value)], [delete(key)] and
    [query(key_min, key_max)] over 8-byte integer tuples.  Execution costs
    are a calibrated virtual-time model (the simulated 2 GHz Opteron);
    state changes are applied to a real {!Btree} so replica equivalence can
    be checked exactly, and undo closures support speculative rollback
    (an insert is rolled back by a delete; a delete by re-inserting the old
    tuple, §4.4.2). *)

(** Command payloads (also produced by {!Workload}). *)
type Simnet.payload +=
  | Insert of { key : int; value : int }
  | Delete of { key : int }
  | Query of { lo : int; hi : int }
  | Batch of Simnet.payload list  (** Ins/Del (batch): several updates *)

type cost_model = {
  update_cost : float;  (** one insert/delete, seconds *)
  query_base : float;
  query_per_key : float;
  cmd_overhead : float;
  update_resp : int;  (** bytes: small status reply (256 B in §4.4.2) *)
  query_resp : int;  (** bytes: 8 KB result for range queries *)
}

val default_costs : cost_model

(** A service together with its backing tree (exposed for replica
    equivalence checks in tests and benches). *)
type t = { service : Service.t; tree : Btree.t }

(** [create ~costs ~initial_keys ~key_range ~seed ()] builds a service over
    a freshly populated tree.  The paper uses 12 M keys; experiments here
    default to a smaller tree with the same cost model (documented
    substitution — costs do not depend on the population). *)
val create :
  ?costs:cost_model -> ?initial_keys:int -> ?key_range:int -> ?seed:int -> unit -> t

(** [fingerprint t] hashes the tree contents (order-sensitive), for cheap
    replica-equivalence checks. *)
val fingerprint : t -> int
