type op = {
  kind : [ `Read of int option | `Write of int ];
  inv : float;
  res : float;
}

let applies state = function
  | `Write _ -> true
  | `Read v -> v = state

let apply state = function `Write v -> Some v | `Read _ -> state

(* Exhaustive search: at each step, an operation may be linearized next only
   if no remaining operation responded before it was invoked. *)
let check ~init history =
  let arr = Array.of_list history in
  let n = Array.length arr in
  let used = Array.make n false in
  let rec go state placed =
    if placed = n then true
    else begin
      let min_res = ref infinity in
      for i = 0 to n - 1 do
        if (not used.(i)) && arr.(i).res < !min_res then min_res := arr.(i).res
      done;
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let op = arr.(!i) in
        if (not used.(!i)) && op.inv <= !min_res && applies state op.kind then begin
          used.(!i) <- true;
          if go (apply state op.kind) (placed + 1) then ok := true
          else used.(!i) <- false
        end;
        incr i
      done;
      !ok
    end
  in
  go init 0

let sequentially_consistent ~init histories =
  (* Search for an interleaving that respects each process's program order
     (by invocation time) and register semantics; real time is ignored. *)
  let queues =
    Array.of_list
      (List.map
         (fun ops -> Array.of_list (List.sort (fun a b -> compare a.inv b.inv) ops))
         histories)
  in
  let idx = Array.make (Array.length queues) 0 in
  let total = Array.fold_left (fun acc q -> acc + Array.length q) 0 queues in
  let rec go state placed =
    if placed = total then true
    else begin
      let ok = ref false in
      let p = ref 0 in
      while (not !ok) && !p < Array.length queues do
        let q = queues.(!p) in
        if idx.(!p) < Array.length q && applies state q.(idx.(!p)).kind then begin
          let op = q.(idx.(!p)) in
          idx.(!p) <- idx.(!p) + 1;
          if go (apply state op.kind) (placed + 1) then ok := true
          else idx.(!p) <- idx.(!p) - 1
        end;
        incr p
      done;
      !ok
    end
  in
  go init 0
