lib/paxos/basic.ml: Array Hashtbl List Option Printf Queue Sim Simnet Value
