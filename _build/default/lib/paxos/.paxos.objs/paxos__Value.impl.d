lib/paxos/value.ml: Format List Simnet
