lib/paxos/basic.mli: Simnet Value
