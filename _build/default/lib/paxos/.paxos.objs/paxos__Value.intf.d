lib/paxos/value.mli: Format Simnet
