type item = { uid : int; isize : int; app : Simnet.payload; born : float }

type t = { vid : int; size : int; items : item list }

let make ~vid items =
  let size = List.fold_left (fun acc i -> acc + i.isize) 0 items in
  { vid; size; items }

let single ~vid ~uid ~size ~born app =
  { vid; size; items = [ { uid; isize = size; app; born } ] }

let skip ~vid = { vid; size = 0; items = [] }

let is_skip v = v.items = []

let pp fmt v = Format.fprintf fmt "value(vid=%d,size=%d,items=%d)" v.vid v.size (List.length v.items)
