(** Basic (optimized) Paxos — Algorithm 1 of the dissertation.

    The deployment runs one active coordinator (plus optional standbys for
    the failure experiments of Chapter 7), [n] acceptors, and any number of
    proposers and learners.  Phase 1 is pre-executed for all instances
    (§3.2's optimization), values are optionally batched into fixed-size
    packets, and at most [window] consensus instances run concurrently.

    Two dissemination modes reproduce two of the paper's comparators:
    - [`Mcast]: Phase 2A ip-multicast to acceptors and learners, decisions
      multicast as value ids — the Libpaxos baseline;
    - [`Ucast]: everything over unicast — the PFSB baseline
      (Paxos for system builders). *)

type t

type config = {
  dissemination : [ `Mcast | `Ucast ];
  window : int;  (** outstanding consensus instances *)
  batch_bytes : int;  (** 0 disables batching *)
  batch_timeout : float;  (** seal a partial batch after this delay *)
  extra_cpu_per_instance : float;
      (** implementation-inefficiency calibration (marshaling, GC, ...) *)
  hb_period : float;
  hb_timeout : float;  (** coordinator failure-detection timeout *)
  repair_timeout : float;  (** learner gap-repair request delay *)
  resubmit_timeout : float;  (** proposer retry for unacknowledged items *)
}

val default_config : config

(** [create net config ~n_acceptors ~n_standby_coordinators ~n_proposers
    ~n_learners ~deliver] builds a deployment on fresh nodes; [deliver] fires
    for every learner, in instance order per learner. *)
val create :
  Simnet.t ->
  config ->
  n_acceptors:int ->
  n_standby:int ->
  n_proposers:int ->
  n_learners:int ->
  deliver:(learner:int -> inst:int -> Value.t -> unit) ->
  t

(** [submit t ~proposer ~size app] injects an application message through
    proposer number [proposer]; returns the item uid, or [-1] when the
    proposer's client buffer is full. *)
val submit : t -> proposer:int -> size:int -> Simnet.payload -> int

(** Process handles, for failure injection and measurement. *)

val coordinator : t -> Simnet.proc
val acceptor : t -> int -> Simnet.proc
val learner_proc : t -> int -> Simnet.proc
val proposer_proc : t -> int -> Simnet.proc

(** [kill_coordinator t] crashes the active coordinator; a standby takes
    over after the failure-detection timeout. *)
val kill_coordinator : t -> unit

val kill_acceptor : t -> int -> unit

(** Number of instances decided at the (active) coordinator. *)
val decided : t -> int

(** Total items delivered at learner 0 (duplicates suppressed). *)
val delivered_items : t -> int
