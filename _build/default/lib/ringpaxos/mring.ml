type durability = Memory | Sync_disk | Async_disk

type config = {
  f : int;
  window : int;
  batch_bytes : int;
  batch_timeout : float;
  durability : durability;
  buffer_bytes : int;
  fc_threshold : int;
  fc_recover_period : float;
  hb_period : float;
  hb_timeout : float;
  retrans_timeout : float;
  gc_period : float;
  partitions : int;
  send_rate : float;  (** coordinator pacing, bits/s of Phase 2A traffic *)
}

let default_config =
  { f = 2;
    window = 64;
    batch_bytes = 8192;
    batch_timeout = 5.0e-4;
    durability = Memory;
    buffer_bytes = 160 * 1024 * 1024;
    fc_threshold = 64;
    fc_recover_period = 0.1;
    hb_period = 0.02;
    hb_timeout = 0.25;
    retrans_timeout = 5.0e-3;
    gc_period = 0.1;
    partitions = 1;
    send_rate = 0.85e9 }

let hdr = 64

let dbg_counters : (string, int ref) Hashtbl.t = Hashtbl.create 16

let dbg name =
  let r =
    match Hashtbl.find_opt dbg_counters name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add dbg_counters name r;
        r
  in
  incr r

let dbg_dump () =
  Hashtbl.iter (fun k v -> Printf.printf "  %s = %d\n" k !v) dbg_counters

(* An application item annotated with its destination partitions. *)
type Simnet.payload +=
  | Propose of { item : Paxos.Value.item; parts : int list }
  | P1a of { rnd : int; ring : int list; coord : int }
  | P1b of { rnd : int; acc : int; floor : int; votes : (int * int * Paxos.Value.t * int list) list }
  | P2a of { inst : int; rnd : int; value : Paxos.Value.t; parts : int list }
  | P2b of { inst : int; rnd : int; vid : int }
  | Decision of { inst : int; vid : int; parts : int list; uids : int list }
  | SlowDown of { learner : int; pending : int }
  | Version of { learner : int; version : int }
  | Gc of { floor : int }
  | RetransReq of { inst : int; count : int; learner : int }
  | RepairReq of { insts : int list; learner : int }
  | Retrans of { inst : int; value : Paxos.Value.t; parts : int list }
  | MaxDec of { upto : int }
  | Hb of { acc : int }
  | NewCoord of { acc : int }

type acc = {
  x_proc : Simnet.proc;
  x_idx : int;  (* global acceptor index *)
  mutable x_rnd : int;
  mutable x_ring : int list;  (* current ring view, coordinator last *)
  mutable x_is_coord : bool;
  x_votes : (int, int * Paxos.Value.t * int list) Hashtbl.t;
  x_decided : (int, int * int list) Hashtbl.t;
  x_durable : (int, bool) Hashtbl.t;  (* inst -> write completed *)
  x_held : (int, int * int) Hashtbl.t;  (* inst -> (rnd, vid): P2B awaiting P2A/durability *)
  x_disk : Storage.Disk.t option;
  mutable x_last_hb : float;
  mutable x_mem : int;
  mutable x_gc_floor : int;
  mutable x_max_dec : int;  (* highest instance known decided *)
  (* coordinator-only state, live on whichever acceptor currently leads *)
  mutable c_rnd : int;
  mutable c_phase1_ok : bool;
  mutable c_p1b : int;
  c_claimed : (int, int * Paxos.Value.t * int list) Hashtbl.t;
  mutable c_next_inst : int;
  mutable c_outstanding : int;
  c_pend : (int list, Paxos.Value.item Queue.t) Hashtbl.t;
      (* pending proposals, batched per destination-partition set *)
  c_pend_bytes : (int list, int ref) Hashtbl.t;
  mutable c_pending_bytes : int;  (* aggregate, for the buffer bound *)
  mutable c_batch_timer : Sim.Engine.handle option;
  c_insts : (int, Paxos.Value.t * int list) Hashtbl.t;  (* proposed, undecided *)
  mutable c_window : int;  (* flow-controlled window *)
  mutable c_decided : int;
  mutable c_drops : int;
  c_versions : (int, int) Hashtbl.t;  (* learner -> version *)
  mutable c_gc_floor : int;
  c_seen_uids : (int, unit) Hashtbl.t;  (* duplicate-proposal suppression *)
  c_inst_born : (int, float) Hashtbl.t;  (* proposal time, for P2A retransmit *)
  mutable c_rate_window : float;  (* start of the pacing window *)
  mutable c_rate_bits : float;  (* Phase 2A bits sent in the window *)
  mutable c_rate_timer : bool;  (* a deferred drain is scheduled *)
  mutable c_rate_limit : float;  (* adaptive pacing limit (AIMD), bit/s *)
}

type lrn = {
  l_proc : Simnet.proc;
  l_idx : int;
  l_parts : int list;
  mutable l_next : int;
  l_vals : (int, Paxos.Value.t) Hashtbl.t;  (* vid -> value *)
  l_dec : (int, int * int list) Hashtbl.t;  (* inst -> (vid, parts) *)
  l_spec_seen : (int, unit) Hashtbl.t;  (* instances already spec-delivered *)
  mutable l_max_dec : int;  (* highest instance seen decided, repair bound *)
  mutable l_delay : float;  (* processing cost per delivered instance *)
  l_queue : (int * Paxos.Value.t option) Queue.t;  (* in-order, unprocessed *)
  mutable l_busy : bool;
  mutable l_fc_sent : bool;
  mutable l_repair : Sim.Engine.handle option;
}

type prop = {
  p_proc : Simnet.proc;
  p_idx : int;
  p_unacked : (int, Paxos.Value.item * int list) Hashtbl.t;
  mutable p_unacked_bytes : int;
  p_last_sent : (int, float) Hashtbl.t;
  mutable p_buffer : int;  (* client-side buffer bound, bytes *)
}

type t = {
  net : Simnet.t;
  cfg : config;
  accs : acc array;  (* 2f+1 acceptors; initial ring = 0..f with f last *)
  lrns : lrn array;
  props : prop array;
  part_groups : Simnet.group array;  (* Phase 2A dissemination, per partition *)
  dec_group : Simnet.group;  (* decisions, gc *)
  deliver : learner:int -> inst:int -> Paxos.Value.t option -> unit;
  speculative : (learner:int -> inst:int -> Paxos.Value.t -> unit) option;
  mutable next_uid : int;
  mutable next_vid : int;
  mutable cur_ring : int list;  (* last installed ring, failover fallback *)
}

let n_acceptors cfg = (2 * cfg.f) + 1

let coord_opt t =
  let found = ref None in
  Array.iter
    (fun a -> if a.x_is_coord && Simnet.is_alive a.x_proc && !found = None then found := Some a)
    t.accs;
  !found

let ring_of t = match coord_opt t with Some c -> c.x_ring | None -> t.cur_ring

(* Successor of acceptor [idx] in the current ring; the ring is stored with
   the coordinator last, and the chain starts at the first element. *)
let successor ring idx =
  let rec go = function
    | a :: b :: rest -> if a = idx then Some b else go (b :: rest)
    | _ -> None
  in
  go ring

let first_of_ring ring = List.hd ring

let intersects l1 l2 = List.exists (fun x -> List.mem x l2) l1

(* --- memory accounting ------------------------------------------------ *)

let acc_update_mem a =
  let bytes = ref 0 in
  Hashtbl.iter (fun _ (_, v, _) -> bytes := !bytes + v.Paxos.Value.size) a.x_votes;
  a.x_mem <- !bytes;
  Simnet.set_mem a.x_proc (!bytes + (Hashtbl.length a.x_decided * 16))

let lrn_update_mem l =
  let bytes = ref 0 in
  Hashtbl.iter (fun _ v -> bytes := !bytes + v.Paxos.Value.size) l.l_vals;
  Simnet.set_mem l.l_proc (!bytes + (Hashtbl.length l.l_dec * 16))

(* --- coordinator ------------------------------------------------------- *)

(* The decision multicast doubles as the commit notification: it carries the
   committed item uids and proposers subscribe to the decision group, so no
   per-proposer acknowledgment traffic is needed (proposers are learners,
   §3.2). *)
let mcast_decision t c inst vid parts (v : Paxos.Value.t) =
  let uids = List.map (fun (it : Paxos.Value.item) -> it.uid) v.items in
  Simnet.mcast t.net ~src:c.x_proc t.dec_group
    ~size:(hdr + (8 * List.length uids))
    (Decision { inst; vid; parts; uids })

(* The coordinator votes locally when it proposes; with synchronous
   durability the vote must reach disk before the final decision can be
   multicast. *)
let coord_local_vote t c inst rnd (v : Paxos.Value.t) parts =
  let duplicate =
    match Hashtbl.find_opt c.x_votes inst with
    | Some (r, v', _) -> r = rnd && v'.Paxos.Value.vid = v.vid
    | None -> false
  in
  if duplicate then ()
  else begin
    Hashtbl.replace c.x_votes inst (rnd, v, parts);
  Hashtbl.replace c.x_durable inst (t.cfg.durability <> Sync_disk);
  (match (t.cfg.durability, c.x_disk) with
  | Sync_disk, Some d ->
      Storage.Disk.write_sync d ~bytes:v.size (fun () -> Hashtbl.replace c.x_durable inst true)
    | Async_disk, Some d -> Storage.Disk.write_async d ~bytes:v.size
    | _ -> ());
    acc_update_mem c
  end

let propose_instance t c inst (v : Paxos.Value.t) parts =
  Hashtbl.replace c.c_insts inst (v, parts);
  Hashtbl.replace c.c_inst_born inst (Simnet.now t.net);
  c.c_rate_bits <-
    c.c_rate_bits +. (float_of_int (v.size + hdr) *. 8.0 *. float_of_int (List.length parts));
  c.c_outstanding <- c.c_outstanding + 1;
  coord_local_vote t c inst c.c_rnd v parts;
  let p2a = P2a { inst; rnd = c.c_rnd; value = v; parts } in
  let sent_to = Hashtbl.create 4 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem sent_to p) then begin
        Hashtbl.add sent_to p ();
        Simnet.mcast t.net ~src:c.x_proc t.part_groups.(p) ~size:(v.size + hdr) p2a
      end)
    parts

(* Pending proposals are queued per destination-partition set so that one
   partition's traffic never dilutes another's batches (§4.2.2). *)
let pend_enqueue c (item : Paxos.Value.item) parts =
  let q =
    match Hashtbl.find_opt c.c_pend parts with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add c.c_pend parts q;
        Hashtbl.add c.c_pend_bytes parts (ref 0);
        q
  in
  Queue.push item q;
  let b = Hashtbl.find c.c_pend_bytes parts in
  b := !b + item.isize;
  c.c_pending_bytes <- c.c_pending_bytes + item.isize

(* The partition set with the most pending bytes, if any. *)
let pend_largest c =
  Hashtbl.fold
    (fun parts b acc ->
      if !b > 0 then
        match acc with
        | Some (_, best) when best >= !b -> acc
        | _ -> Some (parts, !b)
      else acc)
    c.c_pend_bytes None

let pend_empty c = c.c_pending_bytes = 0

let seal_batch t c parts =
  match Hashtbl.find_opt c.c_pend parts with
  | None -> ([], [])
  | Some q ->
      let bytes = Hashtbl.find c.c_pend_bytes parts in
      let items = ref [] and size = ref 0 in
      let continue = ref true in
      while !continue && not (Queue.is_empty q) do
        let (it : Paxos.Value.item) = Queue.peek q in
        if !size > 0 && !size + it.isize > t.cfg.batch_bytes then continue := false
        else begin
          ignore (Queue.pop q);
          bytes := !bytes - it.isize;
          c.c_pending_bytes <- c.c_pending_bytes - it.isize;
          items := it :: !items;
          size := !size + it.isize
        end
      done;
      (List.rev !items, List.sort_uniq compare parts)

let rec drain t c =
  if c.c_phase1_ok && c.x_is_coord && Simnet.is_alive c.x_proc then begin
    let claimed = Hashtbl.fold (fun i x acc -> (i, x) :: acc) c.c_claimed [] in
    Hashtbl.reset c.c_claimed;
    List.iter
      (fun (inst, (_, v, parts)) ->
        if not (Hashtbl.mem c.c_insts inst) && not (Hashtbl.mem c.x_decided inst) then
          propose_instance t c inst v parts;
        if inst >= c.c_next_inst then c.c_next_inst <- inst + 1)
      (List.sort compare claimed);
    (* A batch is ready when some partition set has a full packet's worth
       of traffic (or batching is off and anything is pending). *)
    let batch_ready () =
      if pend_empty c then None
      else if t.cfg.batch_bytes <= 0 then
        Option.map fst (pend_largest c)
      else
        Hashtbl.fold
          (fun parts b acc ->
            if acc = None && !b >= t.cfg.batch_bytes then Some parts else acc)
          c.c_pend_bytes None
    in
    (* Coordinator-side flow control: Phase 2A traffic is paced below the
       rate the network can multicast without loss (§3.3.6). *)
    let pace_ok () =
      let now = Simnet.now t.net in
      if now -. c.c_rate_window > 0.01 then begin
        c.c_rate_window <- now;
        c.c_rate_bits <- 0.0
      end;
      c.c_rate_bits < c.c_rate_limit *. 0.01
    in
    let continue = ref true in
    while !continue && c.c_outstanding < c.c_window && pace_ok () do
      match batch_ready () with
      | Some parts -> propose_batch t c parts
      | None -> continue := false
    done;
    if batch_ready () <> None && c.c_outstanding < c.c_window && (not (pace_ok ()))
       && not c.c_rate_timer
    then begin
      c.c_rate_timer <- true;
      ignore
        (Simnet.after t.net 0.002 (fun () ->
             dbg "rate_timer";
             c.c_rate_timer <- false;
             drain t c))
    end;
    if (not (pend_empty c)) && c.c_batch_timer = None then
      c.c_batch_timer <-
        Some
          (Simnet.after t.net t.cfg.batch_timeout (fun () ->
               dbg "batch_timer";
               c.c_batch_timer <- None;
               if c.x_is_coord && Simnet.is_alive c.x_proc && c.c_phase1_ok
                  && c.c_outstanding < c.c_window
               then begin
                 (* Seal the largest partial batch. *)
                 match pend_largest c with
                 | Some (parts, _) -> propose_batch t c parts
                 | None -> ()
               end;
               drain t c))
  end

and propose_batch t c parts =
  match seal_batch t c parts with
  | [], _ -> ()
  | items, parts ->
      t.next_vid <- t.next_vid + 1;
      let v = Paxos.Value.make ~vid:t.next_vid items in
      let parts = if parts = [] then [ 0 ] else parts in
      let inst = c.c_next_inst in
      c.c_next_inst <- inst + 1;
      propose_instance t c inst v parts

let coord_decide t c inst vid =
  match Hashtbl.find_opt c.c_insts inst with
  | Some (v, parts) when v.vid = vid ->
      (* The coordinator is the last acceptor: the arriving Phase 2B closes
         the majority provided its own vote is durable. *)
      let fire () =
        if not (Hashtbl.mem c.x_decided inst) then begin
          Hashtbl.remove c.c_insts inst;
          Hashtbl.remove c.c_inst_born inst;
          Hashtbl.add c.x_decided inst (vid, parts);
          if inst > c.x_max_dec then c.x_max_dec <- inst;
          c.c_outstanding <- c.c_outstanding - 1;
          c.c_decided <- c.c_decided + 1;
          mcast_decision t c inst vid parts v;
          drain t c
        end
      in
      (* A pruned durability entry means the instance was garbage collected
         after being applied by f+1 learners — treat it as durable. *)
      let durable () =
        match Hashtbl.find_opt c.x_durable inst with Some b -> b | None -> true
      in
      let rec wait_durable () =
        dbg "wait_durable";
        if durable () then fire ()
        else if c.x_is_coord && Simnet.is_alive c.x_proc then
          ignore (Simnet.after t.net 1.0e-4 wait_durable)
      in
      wait_durable ()
  | _ -> ()

let start_phase1 t c =
  c.c_rnd <- Stdlib.max c.c_rnd c.x_rnd + n_acceptors t.cfg + 1;
  c.x_rnd <- Stdlib.max c.x_rnd c.c_rnd;
  c.c_phase1_ok <- false;
  c.c_p1b <- 0;
  Array.iter
    (fun a ->
      if Simnet.is_alive a.x_proc && a.x_idx <> c.x_idx then
        Simnet.send t.net ~src:c.x_proc ~dst:a.x_proc ~size:hdr
          (P1a { rnd = c.c_rnd; ring = c.x_ring; coord = c.x_idx }))
    t.accs

(* --- flow control ------------------------------------------------------ *)

let fc_slow_down t c =
  (* Multiplicative decrease on both the instance window and the pacing
     rate; the recovery loop grows them back additively (§3.3.6). *)
  c.c_window <- Stdlib.max 1 (c.c_window / 2);
  c.c_rate_limit <- Stdlib.max 5.0e7 (c.c_rate_limit /. 2.0);
  drain t c

let fc_recover_loop t =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.fc_recover_period (fun () ->
        match coord_opt t with
        | Some c when c.c_window < t.cfg.window || c.c_rate_limit < t.cfg.send_rate ->
            c.c_window <- Stdlib.min t.cfg.window (c.c_window + Stdlib.max 1 (c.c_window / 2));
            c.c_rate_limit <- Stdlib.min t.cfg.send_rate (c.c_rate_limit *. 1.25);
            drain t c
        | _ -> ())
  in
  ()

(* --- acceptor ---------------------------------------------------------- *)

let forward_p2b t a inst rnd vid =
  match successor a.x_ring a.x_idx with
  | Some next ->
      Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(next).x_proc ~size:hdr (P2b { inst; rnd; vid })
  | None -> if a.x_is_coord then coord_decide t a inst vid

let acc_try_forward t a inst =
  match Hashtbl.find_opt a.x_held inst with
  | Some (rnd, vid) -> begin
      match Hashtbl.find_opt a.x_votes inst with
      | Some (_, v, _) when v.Paxos.Value.vid = vid && Hashtbl.find_opt a.x_durable inst = Some true ->
          Hashtbl.remove a.x_held inst;
          forward_p2b t a inst rnd vid
      | _ -> ()
    end
  | None -> ()

let acc_on_p2a t a inst rnd (v : Paxos.Value.t) parts =
  (* A retransmitted Phase 2A for a value already voted (and possibly still
     being persisted) must not trigger another vote or disk write. *)
  let duplicate =
    match Hashtbl.find_opt a.x_votes inst with
    | Some (r, v', _) -> r = rnd && v'.Paxos.Value.vid = v.vid
    | None -> false
  in
  if duplicate then acc_try_forward t a inst
  else if rnd >= a.x_rnd then begin
    a.x_rnd <- rnd;
    Hashtbl.replace a.x_votes inst (rnd, v, parts);
    acc_update_mem a;
    let after_durable () =
      Hashtbl.replace a.x_durable inst true;
      (* First in-ring acceptor spontaneously starts the Phase 2B chain. *)
      if (not a.x_is_coord) && a.x_ring <> [] && first_of_ring a.x_ring = a.x_idx then
        forward_p2b t a inst rnd v.vid
      else acc_try_forward t a inst
    in
    match (t.cfg.durability, a.x_disk) with
    | Sync_disk, Some d -> Storage.Disk.write_sync d ~bytes:v.size after_durable
    | Async_disk, Some d ->
        (* Asynchronous writes: the vote proceeds immediately unless the
           device has fallen too far behind — a bounded dirty buffer, which
           is what makes Recoverable Ring Paxos disk-bound (Fig. 5.1). *)
        Storage.Disk.write_async d ~bytes:v.size;
        let lag = Storage.Disk.backlog d ~now:(Simnet.now t.net) -. 0.05 in
        if lag > 0.0 then ignore (Simnet.after t.net lag after_durable)
        else after_durable ()
    | _ -> after_durable ()
  end

let acc_on_p2b t a inst rnd vid =
  if a.x_is_coord then coord_decide t a inst vid
  else begin
    match Hashtbl.find_opt a.x_votes inst with
    | Some (_, v, _) when v.Paxos.Value.vid = vid && Hashtbl.find_opt a.x_durable inst = Some true
      ->
        forward_p2b t a inst rnd vid
    | _ ->
        (* Phase 2A not yet ip-delivered (or not yet durable): hold the vote
           and ask the coordinator to retransmit if the gap persists. *)
        Hashtbl.replace a.x_held inst (rnd, vid);
        ignore
          (Simnet.after t.net t.cfg.retrans_timeout (fun () ->
               if Hashtbl.mem a.x_held inst && Simnet.is_alive a.x_proc then begin
                 match coord_opt t with
                 | Some c ->
                     Simnet.send t.net ~src:a.x_proc ~dst:c.x_proc ~size:hdr
                       (RetransReq { inst; count = 1; learner = -1 - a.x_idx })
                 | None -> ()
               end))
  end

(* --- learner ------------------------------------------------------------ *)

let pref_acceptor t l =
  (* Preferential acceptor: spread learners across the ring. *)
  let ring = ring_of t in
  let n = List.length ring in
  let rec pick k =
    if k >= n then None
    else
      let idx = List.nth ring ((l.l_idx + k) mod n) in
      if Simnet.is_alive t.accs.(idx).x_proc then Some t.accs.(idx) else pick (k + 1)
  in
  match pick 0 with Some a -> Some a | None -> coord_opt t

let rec lrn_pump t l =
  if (not l.l_busy) && not (Queue.is_empty l.l_queue) then begin
    let inst, v = Queue.pop l.l_queue in
    if l.l_delay <= 0.0 then begin
      t.deliver ~learner:l.l_idx ~inst v;
      lrn_pump t l
    end
    else begin
      l.l_busy <- true;
      Simnet.exec t.net l.l_proc ~dur:l.l_delay (fun () ->
          l.l_busy <- false;
          t.deliver ~learner:l.l_idx ~inst v;
          lrn_pump t l)
    end
  end

let lrn_fc_check t l =
  (* The learner's buffer pressure is both unprocessed decisions and the
     backlog of decided-but-not-yet-deliverable instances (losses it is
     still repairing) — §3.3.6. *)
  let pending = Queue.length l.l_queue + Stdlib.max 0 (l.l_max_dec + 1 - l.l_next) in
  if pending > t.cfg.fc_threshold && not l.l_fc_sent then begin
    match pref_acceptor t l with
    | Some a ->
        l.l_fc_sent <- true;
        Simnet.send t.net ~src:l.l_proc ~dst:a.x_proc ~size:hdr
          (SlowDown { learner = l.l_idx; pending });
        ignore (Simnet.after t.net 0.05 (fun () -> l.l_fc_sent <- false))
    | None -> ()
  end

(* The instances (at most 16) the learner is actually missing: decided at or
   beyond [l_next] but lacking either the decision or the value. *)
let missing_instances l =
  let upto = Stdlib.min l.l_max_dec (l.l_next + 63) in
  let rec collect i acc n =
    if i > upto || n >= 16 then List.rev acc
    else
      let miss =
        match Hashtbl.find_opt l.l_dec i with
        | None -> i >= l.l_next
        | Some (vid, _) -> not (Hashtbl.mem l.l_vals vid)
      in
      if miss && i >= l.l_next then collect (i + 1) (i :: acc) (n + 1)
      else collect (i + 1) acc n
  in
  collect l.l_next [] 0

(* Single-outstanding repair with a cooldown: ask the preferential acceptor
   for the concrete missing instances, then wait before asking again. *)
let rec repair_cycle t l =
  if l.l_repair = None && l.l_max_dec >= l.l_next then
    l.l_repair <-
      Some
        (Simnet.after t.net t.cfg.retrans_timeout (fun () ->
             if Simnet.is_alive l.l_proc then begin
               match missing_instances l with
               | [] -> l.l_repair <- None
               | insts ->
                   (match pref_acceptor t l with
                   | Some a ->
                       Simnet.send t.net ~src:l.l_proc ~dst:a.x_proc
                         ~size:(hdr + List.length insts)
                         (RepairReq { insts; learner = l.l_idx })
                   | None -> ());
                   (* Cool down before the next request. *)
                   l.l_repair <-
                     Some
                       (Simnet.after t.net (4.0 *. t.cfg.retrans_timeout) (fun () ->
                            l.l_repair <- None;
                            repair_cycle t l))
             end
             else l.l_repair <- None))

let rec lrn_advance t l =
  match Hashtbl.find_opt l.l_dec l.l_next with
  | None ->
      (* A decision at or beyond [l_next] exists but the multicast for
         [l_next] was lost: fetch it from the preferential acceptor. *)
      if l.l_max_dec >= l.l_next then repair_cycle t l
  | Some (vid, parts) ->
      let mine = intersects parts l.l_parts in
      if not mine then begin
        Hashtbl.remove l.l_dec l.l_next;
        let inst = l.l_next in
        l.l_next <- inst + 1;
        Queue.push (inst, None) l.l_queue;
        lrn_fc_check t l;
        lrn_pump t l;
        lrn_advance t l
      end
      else begin
        match Hashtbl.find_opt l.l_vals vid with
        | Some v ->
            Hashtbl.remove l.l_dec l.l_next;
            Hashtbl.remove l.l_vals vid;
            Hashtbl.remove l.l_spec_seen l.l_next;
            lrn_update_mem l;
            let inst = l.l_next in
            l.l_next <- inst + 1;
            Queue.push (inst, Some v) l.l_queue;
            lrn_fc_check t l;
            lrn_pump t l;
            lrn_advance t l
        | None ->
            (* Decision known but value lost: fetch it from the
               preferential acceptor. *)
            ignore vid;
            repair_cycle t l
      end

(* Speculative delivery exposes values in ip-multicast arrival order, before
   their order is decided (Chapter 4); the replica layer detects and rolls
   back the rare arrival/decision mismatches. *)
let lrn_on_p2a t l inst (v : Paxos.Value.t) =
  Hashtbl.replace l.l_vals v.vid v;
  (match t.speculative with
  | Some spec when inst >= l.l_next && not (Hashtbl.mem l.l_spec_seen inst) ->
      Hashtbl.replace l.l_spec_seen inst ();
      spec ~learner:l.l_idx ~inst v
  | _ -> ());
  lrn_update_mem l;
  lrn_advance t l

let lrn_on_decision t l inst vid parts =
  if inst > l.l_max_dec then l.l_max_dec <- inst;
  if inst >= l.l_next && not (Hashtbl.mem l.l_dec inst) then begin
    Hashtbl.replace l.l_dec inst (vid, parts);
    lrn_advance t l
  end;
  lrn_fc_check t l

let version_loop t l =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.gc_period (fun () ->
        if Simnet.is_alive l.l_proc then begin
          match pref_acceptor t l with
          | Some a ->
              Simnet.send t.net ~src:l.l_proc ~dst:a.x_proc ~size:hdr
                (Version { learner = l.l_idx; version = l.l_next })
          | None -> ()
        end)
  in
  ()

(* --- garbage collection ------------------------------------------------- *)

let acc_gc a floor =
  a.x_gc_floor <- Stdlib.max a.x_gc_floor floor;
  let prune tbl = Hashtbl.iter (fun i _ -> if i < floor then Hashtbl.remove tbl i) (Hashtbl.copy tbl) in
  prune a.x_votes;
  prune a.x_decided;
  prune a.x_durable;
  acc_update_mem a

let coord_on_version t c learner version =
  Hashtbl.replace c.c_versions learner version;
  if Hashtbl.length c.c_versions = Array.length t.lrns then begin
    let floor = Hashtbl.fold (fun _ v acc -> Stdlib.min v acc) c.c_versions max_int in
    if floor > c.c_gc_floor then begin
      c.c_gc_floor <- floor;
      Simnet.mcast t.net ~src:c.x_proc t.dec_group ~size:hdr (Gc { floor });
      acc_gc c floor
    end
  end

(* Resubmit items that have gone unacknowledged for a full timeout (lost to
   coordinator buffer overflow or to a coordinator crash). *)
let resubmit_loop t p =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:0.5 (fun () ->
        if Simnet.is_alive p.p_proc then
          match coord_opt t with
          | Some c ->
              Hashtbl.iter
                (fun uid (it, parts) ->
                  let last =
                    Option.value ~default:0.0 (Hashtbl.find_opt p.p_last_sent uid)
                  in
                  if Simnet.now t.net -. last > 0.5 then begin
                    Hashtbl.replace p.p_last_sent uid (Simnet.now t.net);
                    Simnet.send t.net ~src:p.p_proc ~dst:c.x_proc
                      ~size:(it.Paxos.Value.isize + hdr)
                      (Propose { item = it; parts })
                  end)
                p.p_unacked
          | None -> ())
  in
  ()

(* --- failure handling ---------------------------------------------------- *)

let alive_acceptors t = Array.to_list t.accs |> List.filter (fun a -> Simnet.is_alive a.x_proc)

let install_ring t new_coord ring =
  t.cur_ring <- ring;
  Array.iter
    (fun a ->
      a.x_ring <- ring;
      a.x_is_coord <- a.x_idx = new_coord.x_idx;
      (* Group membership follows ring membership so promoted spares start
         receiving Phase 2A and decision multicasts. *)
      if List.mem a.x_idx ring then begin
        Array.iter (fun g -> Simnet.join g a.x_proc) t.part_groups;
        Simnet.join t.dec_group a.x_proc
      end
      else begin
        Array.iter (fun g -> Simnet.leave g a.x_proc) t.part_groups;
        Simnet.leave t.dec_group a.x_proc
      end)
    t.accs

let become_coordinator t a =
  (* Lay out a fresh ring of f+1 alive acceptors with [a] as coordinator
     (last), then run Phase 1 with a higher round. *)
  let alive = alive_acceptors t |> List.filter (fun b -> b.x_idx <> a.x_idx) in
  let needed = t.cfg.f in
  let chosen = List.filteri (fun i _ -> i < needed) alive in
  let ring = List.map (fun b -> b.x_idx) chosen @ [ a.x_idx ] in
  install_ring t a ring;
  a.c_rnd <- Stdlib.max a.c_rnd a.x_rnd;
  a.c_window <- t.cfg.window;
  a.c_next_inst <-
    Hashtbl.fold (fun i _ acc -> Stdlib.max (i + 1) acc) a.x_votes
      (Stdlib.max a.c_next_inst a.x_gc_floor);
  Array.iter
    (fun p -> Simnet.send t.net ~src:a.x_proc ~dst:p.p_proc ~size:hdr (NewCoord { acc = a.x_idx }))
    t.props;
  Array.iter
    (fun l -> Simnet.send t.net ~src:a.x_proc ~dst:l.l_proc ~size:hdr (NewCoord { acc = a.x_idx }))
    t.lrns;
  start_phase1 t a

(* Undecided instances whose Phase 2A multicast may have been lost are
   re-multicast so the ring's Phase 2B chain can restart (§3.3.4). *)
let p2a_retransmit_loop t =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.retrans_timeout (fun () ->
        dbg "p2a_retrans_tick";
        match coord_opt t with
        | Some c ->
            let now = Simnet.now t.net in
            Hashtbl.iter
              (fun inst (v, parts) ->
                match Hashtbl.find_opt c.c_inst_born inst with
                | Some born when now -. born > 2.0 *. t.cfg.retrans_timeout ->
                    Hashtbl.replace c.c_inst_born inst now;
                    let p2a = P2a { inst; rnd = c.c_rnd; value = v; parts } in
                    let sent_to = Hashtbl.create 4 in
                    List.iter
                      (fun p ->
                        if not (Hashtbl.mem sent_to p) then begin
                          Hashtbl.add sent_to p ();
                          Simnet.mcast t.net ~src:c.x_proc t.part_groups.(p)
                            ~size:(v.Paxos.Value.size + hdr) p2a
                        end)
                      parts
                | _ -> ())
              c.c_insts
        | None -> ())
  in
  ()

let monitor_loop t =
  let (_stop : unit -> unit) =
    Simnet.every t.net ~period:t.cfg.hb_period (fun () ->
        match coord_opt t with
        | Some c -> begin
          (* Coordinator heartbeats every acceptor (spares included, so a
             spare's promotion timeout measures real silence) and checks
             ring members for death. *)
          Array.iter
            (fun a ->
              if a.x_idx <> c.x_idx && Simnet.is_alive a.x_proc
                 && not (List.mem a.x_idx c.x_ring)
              then
                Simnet.send t.net ~src:c.x_proc ~dst:a.x_proc ~size:hdr (Hb { acc = c.x_idx }))
            t.accs;
          List.iter
            (fun idx ->
              if idx <> c.x_idx then begin
                let a = t.accs.(idx) in
                if Simnet.is_alive a.x_proc then
                  Simnet.send t.net ~src:c.x_proc ~dst:a.x_proc ~size:hdr (Hb { acc = c.x_idx })
                else begin
                  (* Reconfigure: swap the dead member for a spare. *)
                  let ring = c.x_ring in
                  let spares =
                    alive_acceptors t
                    |> List.filter (fun b -> not (List.mem b.x_idx ring))
                    |> List.map (fun b -> b.x_idx)
                  in
                  match spares with
                  | spare :: _ ->
                      let ring' = List.map (fun i -> if i = idx then spare else i) ring in
                      install_ring t c ring';
                      start_phase1 t c
                  | [] -> ()
                end
              end)
            c.x_ring
          end
        | None -> begin
            (* Coordinator dead: the first alive in-ring acceptor (then any
               spare) takes over once the heartbeat timeout expires. *)
            let stale a = Simnet.now t.net -. a.x_last_hb > t.cfg.hb_timeout in
            let in_ring =
              List.filter_map
                (fun idx ->
                  let a = t.accs.(idx) in
                  if Simnet.is_alive a.x_proc && stale a then Some a else None)
                t.cur_ring
            in
            let candidates =
              if in_ring <> [] then in_ring
              else List.filter stale (alive_acceptors t)
            in
            match candidates with
            | a :: _ -> become_coordinator t a
            | [] -> ()
          end)
  in
  ()

(* --- handlers ------------------------------------------------------------ *)

let acc_handler t a (m : Simnet.msg) =
  match m.payload with
  | Propose { item; parts } ->
      if a.x_is_coord && not (Hashtbl.mem a.c_seen_uids item.Paxos.Value.uid) then begin
        if a.c_pending_bytes + item.Paxos.Value.isize > t.cfg.buffer_bytes then
          a.c_drops <- a.c_drops + 1
        else begin
          Hashtbl.add a.c_seen_uids item.uid ();
          pend_enqueue a item (List.sort_uniq compare parts);
          drain t a
        end
      end
  | P1a { rnd; ring; coord = cidx } ->
      if rnd > a.x_rnd then begin
        a.x_rnd <- rnd;
        a.x_ring <- ring;
        a.x_is_coord <- a.x_idx = cidx;
        let votes =
          Hashtbl.fold (fun i (vr, vv, ps) l -> (i, vr, vv, ps) :: l) a.x_votes []
        in
        Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(cidx).x_proc
          ~size:(hdr + (List.length votes * 24))
          (P1b { rnd; acc = a.x_idx; floor = a.x_gc_floor; votes })
      end
  | P1b { rnd; acc = _; floor; votes } ->
      if a.x_is_coord && rnd = a.c_rnd && not a.c_phase1_ok then begin
        if floor > a.c_next_inst then a.c_next_inst <- floor;
        List.iter
          (fun (inst, vrnd, vval, parts) ->
            match Hashtbl.find_opt a.c_claimed inst with
            | Some (r, _, _) when r >= vrnd -> ()
            | _ -> Hashtbl.replace a.c_claimed inst (vrnd, vval, parts))
          votes;
        a.c_p1b <- a.c_p1b + 1;
        (* Counting its own state, the coordinator needs f more replies for a
           majority of the 2f+1 acceptors. *)
        if a.c_p1b >= t.cfg.f then begin
          a.c_phase1_ok <- true;
          drain t a
        end
      end
  | P2a { inst; rnd; value; parts } -> if not a.x_is_coord then acc_on_p2a t a inst rnd value parts
  | P2b { inst; rnd; vid } -> acc_on_p2b t a inst rnd vid
  | Decision { inst; vid; parts; uids = _ } ->
      if inst > a.x_max_dec then a.x_max_dec <- inst;
      if not a.x_is_coord then Hashtbl.replace a.x_decided inst (vid, parts)
  | SlowDown _ as sd ->
      (* Forward along the ring until the coordinator reacts. *)
      if a.x_is_coord then fc_slow_down t a
      else begin
        match successor a.x_ring a.x_idx with
        | Some next -> Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(next).x_proc ~size:hdr sd
        | None -> ()
      end
  | Version { learner; version } ->
      (* Tell the learner how far decisions actually reach, so a learner
         that lost the tail of the decision stream discovers the gap and
         repairs it through its normal targeted requests. *)
      if version <= a.x_max_dec && learner >= 0 && learner < Array.length t.lrns then
        Simnet.send t.net ~src:a.x_proc ~dst:t.lrns.(learner).l_proc ~size:hdr
          (MaxDec { upto = a.x_max_dec });
      if a.x_is_coord then coord_on_version t a learner version
      else begin
        match successor a.x_ring a.x_idx with
        | Some next ->
            Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(next).x_proc ~size:hdr
              (Version { learner; version })
        | None -> ()
      end
  | Gc { floor } -> acc_gc a floor
  | RetransReq { inst; count; learner } -> begin
      (* learner >= 0: a learner asks for decided values in a range;
         learner < 0 encodes an acceptor asking for a lost Phase 2A. *)
      if learner < 0 then begin
        match Hashtbl.find_opt a.x_votes inst with
        | Some (_, v, ps) ->
            Simnet.send t.net ~src:a.x_proc ~dst:t.accs.(-1 - learner).x_proc
              ~size:(v.size + hdr)
              (Retrans { inst; value = v; parts = ps })
        | None -> ()
      end
      else ignore count
    end
  | RepairReq { insts; learner } -> begin
      (* Serve every decided instance this acceptor knows; hand anything it
         is missing to the coordinator. *)
      let missing = ref [] in
      List.iter
        (fun i ->
          let decided = Hashtbl.mem a.x_decided i || a.x_is_coord in
          match Hashtbl.find_opt a.x_votes i with
          | Some (_, v, ps) when decided ->
              Simnet.send t.net ~src:a.x_proc ~dst:t.lrns.(learner).l_proc
                ~size:(v.size + hdr)
                (Retrans { inst = i; value = v; parts = ps })
          | _ -> missing := i :: !missing)
        insts;
      if !missing <> [] && not a.x_is_coord then begin
        match coord_opt t with
        | Some c when c.x_idx <> a.x_idx ->
            Simnet.send t.net ~src:a.x_proc ~dst:c.x_proc ~size:hdr
              (RepairReq { insts = List.rev !missing; learner })
        | _ -> ()
      end
    end
  | Retrans { inst; value; parts } ->
      (* An acceptor recovering a lost Phase 2A. *)
      acc_on_p2a t a inst a.x_rnd value parts;
      acc_try_forward t a inst
  | Hb { acc = _ } -> a.x_last_hb <- Simnet.now t.net
  | _ -> ()

let lrn_handler t l (m : Simnet.msg) =
  match m.payload with
  | P2a { inst; rnd = _; value; parts = _ } -> lrn_on_p2a t l inst value
  | Decision { inst; vid; parts; uids = _ } -> lrn_on_decision t l inst vid parts
  | Retrans { inst; value; parts } ->
      (* A repair response supplies both the decision and the value. *)
      Hashtbl.replace l.l_vals value.Paxos.Value.vid value;
      if inst > l.l_max_dec then l.l_max_dec <- inst;
      if inst >= l.l_next && not (Hashtbl.mem l.l_dec inst) then
        Hashtbl.replace l.l_dec inst (value.vid, parts);
      lrn_advance t l
  | Gc { floor } ->
      Hashtbl.iter
        (fun i _ -> if i < floor && i < l.l_next then Hashtbl.remove l.l_dec i)
        (Hashtbl.copy l.l_dec);
      ignore floor
  | MaxDec { upto } ->
      if upto > l.l_max_dec then begin
        l.l_max_dec <- upto;
        lrn_advance t l;
        repair_cycle t l
      end
  | NewCoord _ -> ()
  | _ -> ()

let prop_handler t p (m : Simnet.msg) =
  match m.payload with
  | Decision { uids; _ } ->
      List.iter
        (fun uid ->
          (match Hashtbl.find_opt p.p_unacked uid with
          | Some (it, _) ->
              p.p_unacked_bytes <- p.p_unacked_bytes - it.Paxos.Value.isize;
              Hashtbl.remove p.p_unacked uid;
              Hashtbl.remove p.p_last_sent uid
          | None -> ()))
        uids
  | NewCoord { acc } ->
      (* Resubmit everything not yet acknowledged to the new coordinator. *)
      Hashtbl.iter
        (fun uid (it, parts) ->
          Hashtbl.replace p.p_last_sent uid (Simnet.now t.net);
          Simnet.send t.net ~src:p.p_proc ~dst:t.accs.(acc).x_proc
            ~size:(it.Paxos.Value.isize + hdr)
            (Propose { item = it; parts }))
        p.p_unacked
  | _ -> ()

(* --- construction --------------------------------------------------------- *)

let create ?speculative ?learner_nodes net cfg ~n_proposers ~n_learners ~learner_parts
    ~deliver =
  let n_acc = n_acceptors cfg in
  let mk_proc role i =
    let node = Simnet.add_node net (Printf.sprintf "mr-%s%d" role i) in
    Simnet.add_proc net node (Printf.sprintf "mr-%s%d" role i)
  in
  let mk_lrn_proc i =
    match learner_nodes with
    | Some nodes when i < Array.length nodes ->
        Simnet.add_proc net nodes.(i) (Printf.sprintf "mr-lrn%d" i)
    | _ -> mk_proc "lrn" i
  in
  let accs =
    Array.init n_acc (fun i ->
        let proc = mk_proc "acc" i in
        let disk =
          match cfg.durability with
          | Memory -> None
          | Sync_disk | Async_disk ->
              Some (Storage.Disk.create (Simnet.engine net) (Printf.sprintf "disk%d" i))
        in
        { x_proc = proc;
          x_idx = i;
          x_rnd = 0;
          x_ring = [];
          x_is_coord = false;
          x_votes = Hashtbl.create 4096;
          x_decided = Hashtbl.create 4096;
          x_durable = Hashtbl.create 4096;
          x_held = Hashtbl.create 64;
          x_disk = disk;
          x_last_hb = 0.0;
          x_mem = 0;
          x_gc_floor = 0;
          x_max_dec = -1;
          c_rnd = 0;
          c_phase1_ok = false;
          c_p1b = 0;
          c_claimed = Hashtbl.create 64;
          c_next_inst = 0;
          c_outstanding = 0;
          c_pend = Hashtbl.create 8;
          c_pend_bytes = Hashtbl.create 8;
          c_pending_bytes = 0;
          c_batch_timer = None;
          c_insts = Hashtbl.create 256;
          c_window = cfg.window;
          c_decided = 0;
          c_drops = 0;
          c_versions = Hashtbl.create 16;
          c_gc_floor = 0;
          c_seen_uids = Hashtbl.create 4096;
          c_inst_born = Hashtbl.create 256;
          c_rate_window = 0.0;
          c_rate_bits = 0.0;
          c_rate_timer = false;
          c_rate_limit = cfg.send_rate })
  in
  let lrns =
    Array.init n_learners (fun i ->
        { l_proc = mk_lrn_proc i;
          l_idx = i;
          l_parts = learner_parts i;
          l_next = 0;
          l_vals = Hashtbl.create 4096;
          l_dec = Hashtbl.create 4096;
          l_spec_seen = Hashtbl.create 256;
          l_max_dec = -1;
          l_delay = 0.0;
          l_queue = Queue.create ();
          l_busy = false;
          l_fc_sent = false;
          l_repair = None })
  in
  let props =
    Array.init n_proposers (fun i ->
        { p_proc = mk_proc "prop" i;
          p_idx = i;
          p_unacked = Hashtbl.create 256;
          p_unacked_bytes = 0;
          p_last_sent = Hashtbl.create 256;
          p_buffer = 16 * 1024 * 1024 })
  in
  (* Initial ring: acceptors 0..f-1 then f as coordinator. *)
  let ring = List.init (cfg.f + 1) Fun.id in
  let coord_idx = cfg.f in
  let part_groups =
    Array.init (Stdlib.max 1 cfg.partitions) (fun p ->
        Simnet.new_group net (Printf.sprintf "part%d" p))
  in
  let dec_group = Simnet.new_group net "decision" in
  (* In-ring acceptors subscribe everywhere; learners to their partitions. *)
  Array.iter
    (fun a ->
      if List.mem a.x_idx ring then begin
        Array.iter (fun g -> Simnet.join g a.x_proc) part_groups;
        Simnet.join dec_group a.x_proc
      end)
    accs;
  Array.iter
    (fun l ->
      List.iter
        (fun p -> if p < Array.length part_groups then Simnet.join part_groups.(p) l.l_proc)
        l.l_parts;
      Simnet.join dec_group l.l_proc)
    lrns;
  Array.iter (fun p -> Simnet.join dec_group p.p_proc) props;
  let t =
    { net; cfg; accs; lrns; props; part_groups; dec_group; deliver; speculative;
      next_uid = 0; next_vid = 0; cur_ring = ring }
  in
  Array.iter
    (fun a ->
      a.x_ring <- ring;
      a.x_is_coord <- a.x_idx = coord_idx;
      Simnet.set_handler a.x_proc (acc_handler t a))
    accs;
  Array.iter
    (fun l ->
      Simnet.set_handler l.l_proc (lrn_handler t l);
      version_loop t l)
    lrns;
  Array.iter
    (fun p ->
      Simnet.set_handler p.p_proc (prop_handler t p);
      resubmit_loop t p)
    props;
  monitor_loop t;
  fc_recover_loop t;
  p2a_retransmit_loop t;
  start_phase1 t accs.(coord_idx);
  t

let submit t ~proposer ?(parts = [ 0 ]) ~size app =
  let p = t.props.(proposer) in
  if p.p_unacked_bytes + size > p.p_buffer then -1
  else begin
    t.next_uid <- t.next_uid + 1;
    let uid = (t.next_uid * 256) lor (proposer land 0xff) in
    let item = { Paxos.Value.uid; isize = size; app; born = Simnet.now t.net } in
    Hashtbl.replace p.p_unacked uid (item, parts);
    p.p_unacked_bytes <- p.p_unacked_bytes + size;
    Hashtbl.replace p.p_last_sent uid (Simnet.now t.net);
    (match coord_opt t with
    | Some c ->
        Simnet.send t.net ~src:p.p_proc ~dst:c.x_proc ~size:(size + hdr) (Propose { item; parts })
    | None -> () (* resubmitted when a NewCoord announcement arrives *));
    uid
  end

let coordinator_proc t =
  match coord_opt t with
  | Some c -> c.x_proc
  | None -> t.accs.(List.hd (List.rev t.cur_ring)).x_proc
let acceptor_procs t = Array.map (fun a -> a.x_proc) t.accs
let learner_proc t i = t.lrns.(i).l_proc
let proposer_proc t i = t.props.(i).p_proc
let ring_size t = List.length (ring_of t)

let kill_coordinator t =
  match coord_opt t with Some c -> Simnet.kill t.net c.x_proc | None -> ()

(* Crash-recovery model (§3.3.5): a crash loses everything not on stable
   storage.  With [Memory] durability the acceptor restarts empty (safe only
   under the majority-never-fails assumption); with the disk modes its
   promises and votes survive and are reloaded before it rejoins. *)
let crash_acceptor t idx =
  let a = t.accs.(idx) in
  Simnet.kill t.net a.x_proc;
  Hashtbl.reset a.x_held;
  Hashtbl.reset a.c_claimed;
  Hashtbl.reset a.c_insts;
  Hashtbl.reset a.c_pend;
  Hashtbl.reset a.c_pend_bytes;
  a.c_pending_bytes <- 0;
  a.c_phase1_ok <- false;
  a.c_outstanding <- 0;
  if t.cfg.durability = Memory then begin
    Hashtbl.reset a.x_votes;
    Hashtbl.reset a.x_decided;
    Hashtbl.reset a.x_durable;
    a.x_rnd <- 0;
    acc_update_mem a
  end

let restart_acceptor t idx =
  let a = t.accs.(idx) in
  match (t.cfg.durability, a.x_disk) with
  | Memory, _ | _, None -> Simnet.recover t.net a.x_proc
  | _, Some d ->
      (* Reload the persisted state before rejoining. *)
      let bytes = Stdlib.max (64 * 1024) a.x_mem in
      let dur = float_of_int bytes *. 8.0 /. (Storage.Disk.config d).bandwidth in
      ignore (Simnet.after t.net dur (fun () -> Simnet.recover t.net a.x_proc))

let kill_ring_acceptor t pos =
  let ring = ring_of t in
  let idx = List.nth ring pos in
  Simnet.kill t.net t.accs.(idx).x_proc

let set_learner_delay t i d = t.lrns.(i).l_delay <- d

let learner_pending t i = Queue.length t.lrns.(i).l_queue

let decided t = Array.fold_left (fun acc a -> acc + a.c_decided) 0 t.accs

let current_window t =
  match coord_opt t with Some c -> c.c_window | None -> 0

let coord_drops t = Array.fold_left (fun acc a -> acc + a.c_drops) 0 t.accs

let debug_dump t =
  (match coord_opt t with
  | Some c ->
      Printf.printf "  coord=acc%d outst=%d insts=%d pend=%dB decided=%d rate_bits=%.0f\n"
        c.x_idx c.c_outstanding (Hashtbl.length c.c_insts) c.c_pending_bytes c.c_decided
        c.c_rate_bits
  | None -> Printf.printf "  no coord\n");
  Array.iter
    (fun a ->
      if not a.x_is_coord && List.mem a.x_idx t.cur_ring then
        Printf.printf "  acc%d votes=%d held=%d rnd=%d\n" a.x_idx (Hashtbl.length a.x_votes)
          (Hashtbl.length a.x_held) a.x_rnd)
    t.accs;
  Array.iter
    (fun l ->
      Printf.printf "  lrn%d next=%d dec=%d vals=%d queue=%d maxdec=%d repair=%b has_dec_next=%b busy=%b\n"
        l.l_idx l.l_next (Hashtbl.length l.l_dec) (Hashtbl.length l.l_vals)
        (Queue.length l.l_queue) l.l_max_dec (l.l_repair <> None)
        (Hashtbl.mem l.l_dec l.l_next) l.l_busy)
    t.lrns

let disk t pos =
  let ring = ring_of t in
  if pos < List.length ring then t.accs.(List.nth ring pos).x_disk else None
