(** U-Ring Paxos — Algorithm 3 of the dissertation (unicast-based).

    All processes are placed in one logical directed ring and communicate
    over reliable unicast only (no ip-multicast): proposals travel along the
    ring to the coordinator (the first acceptor); combined Phase 2A/2B
    messages flow through the voting acceptors; the last acceptor detects
    the decision, which then circulates around the ring carrying the chosen
    value so every process delivers it.

    A ring position may combine roles (§3.5.4 runs every process as
    proposer + acceptor + learner).  Batching uses 32 KB packets by default
    (§3.5.2); durable modes write to disk before forwarding, which makes
    disk latency sequential along the ring (Fig. 3.9). *)

type t

type role = Acceptor | Proposer | Learner

type config = {
  f : int;  (** tolerated failures; [f + 1] acceptors vote per instance *)
  window : int;
  batch_bytes : int;
  batch_timeout : float;
  durability : Mring.durability;
  buffer_bytes : int;
  hb_period : float;
  hb_timeout : float;
  resubmit_timeout : float;
}

val default_config : config

(** [create net cfg ~positions ~deliver] builds a ring whose i-th position
    carries the given role set.  Acceptors are numbered in ring order (the
    first is the coordinator); there must be at least [2f + 1] of them.
    Proposers and learners are numbered in ring order as well.
    [deliver] fires per learner in instance order. *)
val create :
  Simnet.t ->
  config ->
  positions:role list array ->
  deliver:(learner:int -> inst:int -> Paxos.Value.t -> unit) ->
  t

(** [standard_positions ~n] is [n] positions, each proposer + acceptor +
    learner — the all-roles deployment used in §3.5.4. *)
val standard_positions : n:int -> role list array

(** [submit t ~proposer ~size app] proposes via the given proposer; the
    message is forwarded along the ring to the coordinator. *)
val submit : t -> proposer:int -> size:int -> Simnet.payload -> int

val coordinator_proc : t -> Simnet.proc
val position_proc : t -> int -> Simnet.proc
val learner_proc : t -> int -> Simnet.proc
val proposer_proc : t -> int -> Simnet.proc
val n_positions : t -> int

val kill_position : t -> int -> unit
val kill_coordinator : t -> unit

val decided : t -> int

(** Disk attached to the [i]-th acceptor, when durability is enabled. *)
val disk : t -> int -> Storage.Disk.t option
