lib/ringpaxos/mring.ml: Array Fun Hashtbl List Option Paxos Printf Queue Sim Simnet Stdlib Storage
