lib/ringpaxos/uring.ml: Array Hashtbl List Mring Option Paxos Printf Queue Sim Simnet Stdlib Storage
