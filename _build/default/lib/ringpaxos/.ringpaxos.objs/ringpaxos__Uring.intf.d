lib/ringpaxos/uring.mli: Mring Paxos Simnet Storage
