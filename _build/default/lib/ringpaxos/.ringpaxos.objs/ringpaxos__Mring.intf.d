lib/ringpaxos/mring.mli: Paxos Simnet Storage
