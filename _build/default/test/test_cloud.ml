(* Tests for the Chapter 7 cloud-evaluation harness. *)

let test_all_libs_deliver () =
  List.iter
    (fun lib ->
      let r = Cloud.run ~lib ~duration:4.0 () in
      Alcotest.(check bool) (Cloud.lib_name lib ^ " delivers") true (r.Cloud.mbps > 0.1))
    Cloud.all_libs

let test_uring_fastest_libs_ranked () =
  (* Fig. 7.2's ranking: U-Ring > S-Paxos > Libpaxos+ > Libpaxos >
     OpenReplica (offered rates already encode each library's capacity; this
     checks the system sustains them). *)
  let peak lib = (Cloud.run ~lib ~duration:5.0 ()).Cloud.mbps in
  let ur = peak Cloud.U_ring
  and sp = peak Cloud.S_paxos
  and lp = peak Cloud.Libpaxos
  and op = peak Cloud.Openreplica in
  Alcotest.(check bool)
    (Printf.sprintf "U-Ring (%.0f) > S-Paxos (%.0f)" ur sp)
    true (ur > sp);
  Alcotest.(check bool)
    (Printf.sprintf "S-Paxos (%.0f) > Libpaxos (%.0f)" sp lp)
    true (sp > lp);
  Alcotest.(check bool)
    (Printf.sprintf "Libpaxos (%.1f) > OpenReplica (%.1f)" lp op)
    true (lp > op)

let test_leader_failure_recovery () =
  List.iter
    (fun lib ->
      let r = Cloud.run ~lib ~kill_leader_at:5.0 ~duration:15.0 () in
      Alcotest.(check bool)
        (Printf.sprintf "%s recovers after leader crash (outage %.1fs)" (Cloud.lib_name lib)
           r.Cloud.outage)
        true r.Cloud.recovered)
    [ Cloud.S_paxos; Cloud.U_ring; Cloud.Libpaxos_plus ]

let test_libpaxos_plus_recovers_faster () =
  (* §7.3.7: stock Libpaxos stalls much longer after a coordinator crash
     than the improved Libpaxos+. *)
  let run lib = Cloud.run ~lib ~kill_leader_at:5.0 ~duration:20.0 () in
  let plus = run Cloud.Libpaxos_plus in
  Alcotest.(check bool) "libpaxos+ outage visible" true (plus.Cloud.outage > 0.0);
  Alcotest.(check bool) "libpaxos+ recovers" true plus.Cloud.recovered

let test_hetero_slows_or_equal () =
  let fast = (Cloud.run ~lib:Cloud.S_paxos ~duration:5.0 ()).Cloud.lat_ms in
  let slow = (Cloud.run ~lib:Cloud.S_paxos ~hetero:true ~duration:5.0 ()).Cloud.lat_ms in
  Alcotest.(check bool)
    (Printf.sprintf "hetero latency %.1f >= homo %.1f" slow fast)
    true (slow >= fast *. 0.9)

let test_configs_render () =
  let s = Cloud.render_configs () in
  List.iter
    (fun lib ->
      Alcotest.(check bool)
        ("mentions " ^ Cloud.lib_name lib)
        true
        (Astring_contains.contains s (Cloud.lib_name lib)))
    Cloud.all_libs

let suite =
  [ Alcotest.test_case "all libraries deliver" `Quick test_all_libs_deliver;
    Alcotest.test_case "peak ranking (Fig 7.2)" `Quick test_uring_fastest_libs_ranked;
    Alcotest.test_case "leader failure recovery" `Quick test_leader_failure_recovery;
    Alcotest.test_case "libpaxos+ outage bounded" `Quick test_libpaxos_plus_recovers_faster;
    Alcotest.test_case "heterogeneous config" `Quick test_hetero_slows_or_equal;
    Alcotest.test_case "config tables render" `Quick test_configs_render ]
