test/test_btree.ml: Alcotest Btree Hashtbl List QCheck QCheck_alcotest Stdlib
