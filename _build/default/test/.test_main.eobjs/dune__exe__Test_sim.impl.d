test/test_sim.ml: Alcotest Array Engine Heap List QCheck QCheck_alcotest Rng Sim Stats
