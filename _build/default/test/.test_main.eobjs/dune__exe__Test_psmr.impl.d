test/test_psmr.ml: Alcotest Astring_contains List Printf Psmr Sim Simnet Smr
