test/test_abcast.ml: Abcast Alcotest Array Astring_contains List Paxos Printf QCheck QCheck_alcotest Sim Simnet
