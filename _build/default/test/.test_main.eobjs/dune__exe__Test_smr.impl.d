test/test_smr.ml: Alcotest Array Btree List Printf Ringpaxos Sim Simnet Smr Stdlib
