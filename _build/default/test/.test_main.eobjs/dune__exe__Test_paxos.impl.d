test/test_paxos.ml: Alcotest Fun Hashtbl List Option Paxos QCheck QCheck_alcotest Sim Simnet
