test/test_storage.ml: Alcotest List Printf Sim Storage
