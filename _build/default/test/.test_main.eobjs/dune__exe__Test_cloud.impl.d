test/test_cloud.ml: Alcotest Astring_contains Cloud List Printf
