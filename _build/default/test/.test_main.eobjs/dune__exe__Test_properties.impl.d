test/test_properties.ml: Abcast Alcotest Array List Paxos Printf QCheck QCheck_alcotest Ringpaxos Sim Simnet
