test/test_ringpaxos.ml: Alcotest Hashtbl List Paxos Printf QCheck QCheck_alcotest Ringpaxos Sim Simnet
