test/test_multiring.ml: Alcotest Fun Hashtbl List Multiring Option Paxos Printf QCheck QCheck_alcotest Sim Simnet
