test/test_net.ml: Alcotest Array List Printf Sim Simnet Stdlib Storage
