(* Tests for the simulated disk: group commit, ordering, backlog. *)

let make () =
  let engine = Sim.Engine.create () in
  (engine, Storage.Disk.create engine "d")

let test_sync_callback_order () =
  let engine, d = make () in
  let log = ref [] in
  for i = 1 to 5 do
    Storage.Disk.write_sync d ~bytes:(32 * 1024) (fun () -> log := i :: !log)
  done;
  Sim.Engine.run_all engine;
  Alcotest.(check (list int)) "durability callbacks in submission order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_group_commit_coalesces () =
  (* Five writes submitted together complete as one device operation: the
     last callback fires no later than ~the time of one big write. *)
  let engine, d = make () in
  let last = ref 0.0 in
  for _ = 1 to 5 do
    Storage.Disk.write_sync d ~bytes:(32 * 1024) (fun () -> last := Sim.Engine.now engine)
  done;
  Sim.Engine.run_all engine;
  let one_big =
    (Storage.Disk.config d).setup
    +. (5.0 *. 32.0 *. 1024.0 *. 8.0 /. (Storage.Disk.config d).bandwidth)
  in
  Alcotest.(check bool)
    (Printf.sprintf "coalesced (%.4f <= %.4f + eps)" !last one_big)
    true
    (!last <= one_big +. 1.0e-3)

let test_backlog_drains () =
  let engine, d = make () in
  for _ = 1 to 10 do
    Storage.Disk.write_async d ~bytes:(256 * 1024)
  done;
  Alcotest.(check bool) "backlog visible" true (Storage.Disk.backlog d ~now:0.0 > 0.0);
  Sim.Engine.run_all engine;
  let now = Sim.Engine.now engine in
  Alcotest.(check (float 1e-9)) "drained" 0.0 (Storage.Disk.backlog d ~now)

let test_written_accounting () =
  let engine, d = make () in
  Storage.Disk.write_async d ~bytes:10;
  Sim.Engine.run_all engine;
  Alcotest.(check int) "rounded to the write unit" (32 * 1024) (Storage.Disk.written d);
  Storage.Disk.write_async d ~bytes:(40 * 1024);
  Sim.Engine.run_all engine;
  Alcotest.(check int) "second write rounded up" (32 * 1024 + 64 * 1024)
    (Storage.Disk.written d)

let test_throughput_bounded () =
  let engine, d = make () in
  let done_at = ref 0.0 in
  let total = 200 * 32 * 1024 in
  for _ = 1 to 200 do
    Storage.Disk.write_sync d ~bytes:(32 * 1024) (fun () -> done_at := Sim.Engine.now engine)
  done;
  Sim.Engine.run_all engine;
  let mbps = float_of_int (total * 8) /. !done_at /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "sustained %.0f Mbps near the 270 Mbps device" mbps)
    true
    (mbps > 240.0 && mbps <= 272.0)

let suite =
  [ Alcotest.test_case "sync callback order" `Quick test_sync_callback_order;
    Alcotest.test_case "group commit coalesces" `Quick test_group_commit_coalesces;
    Alcotest.test_case "backlog drains" `Quick test_backlog_drains;
    Alcotest.test_case "written accounting" `Quick test_written_accounting;
    Alcotest.test_case "throughput bounded by device" `Quick test_throughput_bounded ]
