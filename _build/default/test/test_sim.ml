(* Unit and property tests for the simulation substrate (lib/sim). *)

open Sim

let test_heap_order () =
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = List.init (Heap.length h) (fun _ -> Heap.pop h) in
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 5; 7; 8; 9 ] out

let test_heap_empty () =
  let h = Heap.create compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty heap") (fun () ->
      ignore (Heap.pop h))

let test_heap_clear () =
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "length after clear" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create compare in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop h) in
      out = List.sort compare xs)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:0.3 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:0.1 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:0.2 (fun () -> log := 2 :: !log));
  Engine.run_all e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 0.3 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run_all e;
  Alcotest.(check (list int)) "fifo at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:0.5 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run_all e;
  Alcotest.(check bool) "cancelled does not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> incr fired));
  Engine.run e ~until:2.0;
  Alcotest.(check int) "only events before horizon" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock moved to horizon" 2.0 (Engine.now e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:0.1 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:0.1 (fun () -> log := "inner" :: !log))));
  Engine.run_all e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let x = Rng.int r n in
      x >= 0 && x < n)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500 QCheck.small_int (fun seed ->
      let r = Rng.create seed in
      let x = Rng.float r 3.5 in
      x >= 0.0 && x < 3.5)

let test_rng_bool_bias () =
  let r = Rng.create 11 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli(0.3) near 0.3" true (frac > 0.27 && frac < 0.33)

let test_rng_exponential_mean () =
  let r = Rng.create 13 in
  let n = 50000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_zipf_skew () =
  let r = Rng.create 17 in
  let g = Rng.Zipf.create r ~n:100 ~s:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let i = Rng.Zipf.draw g in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 90" true (counts.(10) > counts.(90))

let test_rate_mbps () =
  let r = Stats.Rate.create () in
  (* 10 events of 125000 bytes over 1 second = 10 Mbps. *)
  for i = 0 to 9 do
    Stats.Rate.add r ~now:(0.1 *. float_of_int i) ~bytes:125_000
  done;
  Alcotest.(check (float 1e-6)) "mbps" 10.0 (Stats.Rate.mbps r ~from:0.0 ~till:1.0);
  Alcotest.(check (float 1e-6)) "events/s" 10.0 (Stats.Rate.events_per_sec r ~from:0.0 ~till:1.0)

let test_rate_series () =
  let r = Stats.Rate.create () in
  Stats.Rate.add r ~now:0.5 ~bytes:125_000;
  Stats.Rate.add r ~now:1.5 ~bytes:250_000;
  let s = Stats.Rate.series r ~window:1.0 ~till:2.0 in
  match s with
  | [ (_, a); (_, b) ] ->
      Alcotest.(check (float 1e-6)) "bucket 1" 1.0 a;
      Alcotest.(check (float 1e-6)) "bucket 2" 2.0 b
  | _ -> Alcotest.fail "expected two buckets"

let test_latency_percentiles () =
  let l = Stats.Latency.create () in
  for i = 1 to 100 do
    Stats.Latency.add l (float_of_int i)
  done;
  Alcotest.(check (float 1e-6)) "mean" 50.5 (Stats.Latency.mean l);
  Alcotest.(check bool) "p50 near middle" true (abs_float (Stats.Latency.percentile l 0.5 -. 50.0) <= 1.0);
  Alcotest.(check (float 1e-6)) "max" 100.0 (Stats.Latency.max l)

let test_latency_trimmed () =
  let l = Stats.Latency.create () in
  List.iter (Stats.Latency.add l) [ 1.0; 1.0; 1.0; 1.0; 100.0 ];
  let tm = Stats.Latency.trimmed_mean l ~drop_top:0.2 in
  Alcotest.(check (float 1e-6)) "outlier dropped" 1.0 tm

let test_busy_utilization () =
  let b = Stats.Busy.create () in
  Stats.Busy.add b 0.25;
  Stats.Busy.add b 0.25;
  Alcotest.(check (float 1e-6)) "50%" 50.0 (Stats.Busy.utilization b ~from:0.0 ~till:1.0)

let suite =
  [ Alcotest.test_case "heap: pops sorted" `Quick test_heap_order;
    Alcotest.test_case "heap: empty behaviour" `Quick test_heap_empty;
    Alcotest.test_case "heap: clear" `Quick test_heap_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "engine: time order" `Quick test_engine_order;
    Alcotest.test_case "engine: FIFO at equal times" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: run until horizon" `Quick test_engine_until;
    Alcotest.test_case "engine: nested scheduling" `Quick test_engine_nested_schedule;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_rng_int_bounds;
    QCheck_alcotest.to_alcotest prop_rng_float_bounds;
    Alcotest.test_case "rng: bernoulli bias" `Quick test_rng_bool_bias;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "stats: rate mbps" `Quick test_rate_mbps;
    Alcotest.test_case "stats: rate series" `Quick test_rate_series;
    Alcotest.test_case "stats: latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "stats: trimmed mean" `Quick test_latency_trimmed;
    Alcotest.test_case "stats: busy utilization" `Quick test_busy_utilization ]
