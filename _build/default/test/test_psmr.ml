(* Tests for parallel state-machine replication (Chapter 6). *)

let make ?(config = Psmr.default_config) ?(n_clients = 8) ?(dep_pct = 0) ?(n_objects = 1024)
    ?(seed = 101) () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  let rng = Sim.Rng.create (seed + 1) in
  let gen _ =
    let dependent = Sim.Rng.int rng 100 < dep_pct in
    { Psmr.obj = Sim.Rng.int rng n_objects; dependent; size = 128 }
  in
  let sys = Psmr.create net config ~n_clients ~gen in
  (engine, sys)

let run_kcps ?(until = 1.0) engine sys =
  Psmr.start sys;
  Sim.Engine.run engine ~until;
  Smr.Metrics.kcps (Psmr.metrics sys) ~from:(until /. 2.0) ~till:until

let test_psmr_completes () =
  let engine, sys = make () in
  let kcps = run_kcps engine sys in
  Alcotest.(check bool) "completes commands" true (kcps > 0.1);
  Alcotest.(check bool) "executed at replica 0" true (Psmr.executed sys > 50)

let test_all_approaches_complete () =
  List.iter
    (fun approach ->
      let config = { Psmr.default_config with approach } in
      let engine, sys = make ~config () in
      let kcps = run_kcps ~until:0.5 engine sys in
      Alcotest.(check bool) "completes" true (kcps > 0.05))
    [ Psmr.Sequential; Psmr.Pipelined; Psmr.Sdpe; Psmr.Psmr ]

let test_psmr_scales_with_workers_independent () =
  (* Fig. 6.3/6.6: with independent commands, P-SMR throughput grows with
     workers while sequential stays flat. *)
  let tput approach n_workers =
    let config =
      { Psmr.default_config with approach; n_workers; exec_cost = 4.0e-5 }
    in
    let engine, sys = make ~config ~n_clients:200 () in
    run_kcps ~until:0.6 engine sys
  in
  let p1 = tput Psmr.Psmr 1 and p4 = tput Psmr.Psmr 4 in
  let s1 = tput Psmr.Sequential 1 and s4 = tput Psmr.Sequential 4 in
  Alcotest.(check bool)
    (Printf.sprintf "P-SMR scales (%.1f -> %.1f kcps)" p1 p4)
    true (p4 > p1 *. 2.0);
  Alcotest.(check bool)
    (Printf.sprintf "sequential does not (%.1f -> %.1f kcps)" s1 s4)
    true (s4 < s1 *. 1.5)

let test_dependent_commands_barrier () =
  let config = { Psmr.default_config with n_workers = 4 } in
  let engine, sys = make ~config ~dep_pct:100 ~n_clients:8 () in
  ignore (run_kcps ~until:0.5 engine sys);
  Alcotest.(check bool) "barriers executed" true (Psmr.barriers sys > 20);
  Alcotest.(check int) "every execution was a barrier" (Psmr.barriers sys) (Psmr.executed sys)

let test_dependent_no_scaling () =
  (* Fig. 6.4: with dependent commands P-SMR gains nothing from workers. *)
  let tput n_workers =
    let config = { Psmr.default_config with n_workers; exec_cost = 4.0e-5 } in
    let engine, sys = make ~config ~dep_pct:100 ~n_clients:32 () in
    run_kcps ~until:0.6 engine sys
  in
  let p1 = tput 1 and p4 = tput 4 in
  Alcotest.(check bool)
    (Printf.sprintf "no scaling on dependent (%.1f vs %.1f kcps)" p1 p4)
    true (p4 < p1 *. 1.5)

let test_mixed_workload_between () =
  (* Fig. 6.5: throughput degrades as the dependent share grows. *)
  let tput dep_pct =
    let config = { Psmr.default_config with n_workers = 4; exec_cost = 4.0e-5 } in
    let engine, sys = make ~config ~dep_pct ~n_clients:48 () in
    run_kcps ~until:0.6 engine sys
  in
  let t0 = tput 0 and t50 = tput 50 and t100 = tput 100 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone degradation (%.1f, %.1f, %.1f)" t0 t50 t100)
    true
    (t0 > t50 && t50 > t100)

let test_sdpe_scheduler_bottleneck () =
  (* SDPE is capped by its scheduler even with many workers. *)
  let tput approach =
    let config =
      { Psmr.default_config with
        approach;
        n_workers = 8;
        exec_cost = 4.0e-5;
        sched_cost = 2.0e-5 }
    in
    let engine, sys = make ~config ~n_clients:200 () in
    run_kcps ~until:0.6 engine sys
  in
  let sdpe = tput Psmr.Sdpe and psmr = tput Psmr.Psmr in
  Alcotest.(check bool)
    (Printf.sprintf "P-SMR (%.1f) beats SDPE (%.1f) with 8 workers" psmr sdpe)
    true (psmr > sdpe *. 1.3)

let test_table_6_1 () =
  Alcotest.(check int) "five approaches" 5 (List.length Psmr.table_6_1);
  let s = Psmr.render_table_6_1 () in
  Alcotest.(check bool) "mentions P-SMR" true (Astring_contains.contains s "P-SMR")

let suite =
  [ Alcotest.test_case "psmr completes" `Quick test_psmr_completes;
    Alcotest.test_case "all approaches complete" `Quick test_all_approaches_complete;
    Alcotest.test_case "psmr scales with workers" `Quick
      test_psmr_scales_with_workers_independent;
    Alcotest.test_case "dependent commands barrier" `Quick test_dependent_commands_barrier;
    Alcotest.test_case "dependent: no scaling" `Quick test_dependent_no_scaling;
    Alcotest.test_case "mixed workloads degrade monotonically" `Quick
      test_mixed_workload_between;
    Alcotest.test_case "sdpe scheduler bottleneck" `Quick test_sdpe_scheduler_bottleneck;
    Alcotest.test_case "table 6.1" `Quick test_table_6_1 ]

let test_pipelined_beats_sequential_at_high_exec_cost () =
  (* Sequential SMR executes on the delivery thread, so heavy commands also
     stall its network processing; pipelined SMR moves execution to a
     dedicated thread (Fig. 6.1 b vs c). *)
  let tput approach =
    let config =
      { Psmr.default_config with approach; n_workers = 1; exec_cost = 3.0e-5 }
    in
    let engine, sys = make ~config ~n_clients:100 () in
    run_kcps ~until:0.8 engine sys
  in
  let seq = tput Psmr.Sequential and pipe = tput Psmr.Pipelined in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined (%.1f) >= sequential (%.1f)" pipe seq)
    true (pipe >= seq *. 0.98)

let suite =
  suite
  @ [ Alcotest.test_case "pipelined >= sequential" `Quick
        test_pipelined_beats_sequential_at_high_exec_cost ]
