(* Tests for the baseline atomic broadcast protocols: LCR, Totem/Spread,
   S-Paxos, plus the preset configurations and Table 3.1 analysis. *)

type Simnet.payload += Cmd of int

let cmd_ids (v : Paxos.Value.t) =
  List.filter_map
    (fun (it : Paxos.Value.item) -> match it.app with Cmd i -> Some i | _ -> None)
    v.items

let make_env seed =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  (engine, net)

let collect n =
  let seqs = Array.make n [] in
  let deliver ~learner v = seqs.(learner) <- seqs.(learner) @ cmd_ids v in
  (seqs, deliver)

(* --- LCR ----------------------------------------------------------------- *)

let test_lcr_total_order_single_sender () =
  let engine, net = make_env 31 in
  let seqs, deliver = collect 5 in
  let lcr = Abcast.Lcr.create net Abcast.Lcr.default_config ~deliver in
  for i = 1 to 30 do
    ignore (Abcast.Lcr.broadcast lcr ~from:0 ~size:512 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check (list int)) "fifo from one sender" (List.init 30 (fun i -> i + 1)) seqs.(0);
  for l = 1 to 4 do
    Alcotest.(check (list int)) (Printf.sprintf "learner %d agrees" l) seqs.(0) seqs.(l)
  done

let test_lcr_total_order_all_senders () =
  let engine, net = make_env 32 in
  let seqs, deliver = collect 5 in
  let lcr = Abcast.Lcr.create net Abcast.Lcr.default_config ~deliver in
  for i = 1 to 50 do
    ignore (Abcast.Lcr.broadcast lcr ~from:(i mod 5) ~size:512 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check int) "all delivered" 50 (List.length seqs.(0));
  for l = 1 to 4 do
    Alcotest.(check (list int)) (Printf.sprintf "learner %d agrees" l) seqs.(0) seqs.(l)
  done

let test_lcr_sender_also_delivers_own () =
  let engine, net = make_env 33 in
  let seqs, deliver = collect 3 in
  let cfg = { Abcast.Lcr.default_config with n = 3 } in
  let lcr = Abcast.Lcr.create net cfg ~deliver in
  ignore (Abcast.Lcr.broadcast lcr ~from:1 ~size:100 (Cmd 7));
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check (list int)) "sender delivers its own" [ 7 ] seqs.(1)

let test_lcr_survivors_agree_after_failure () =
  let engine, net = make_env 34 in
  let seqs, deliver = collect 5 in
  let lcr = Abcast.Lcr.create net Abcast.Lcr.default_config ~deliver in
  for i = 1 to 10 do
    ignore (Abcast.Lcr.broadcast lcr ~from:(i mod 5) ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Abcast.Lcr.kill lcr 3;
  for i = 11 to 20 do
    ignore (Abcast.Lcr.broadcast lcr ~from:(i mod 3) ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.5;
  Alcotest.(check (list int)) "survivors agree" seqs.(0) seqs.(1);
  Alcotest.(check bool) "new messages delivered after reconfiguration" true
    (List.exists (fun c -> c > 10) seqs.(0))

let prop_lcr_agreement =
  QCheck.Test.make ~name:"lcr: agreement under random multi-sender load" ~count:15
    QCheck.(pair (int_range 1 60) (int_range 3 7))
    (fun (n_msgs, n) ->
      let engine, net = make_env (n_msgs * 3) in
      let seqs, deliver = collect n in
      let cfg = { Abcast.Lcr.default_config with n } in
      let lcr = Abcast.Lcr.create net cfg ~deliver in
      for i = 1 to n_msgs do
        ignore (Abcast.Lcr.broadcast lcr ~from:(i mod n) ~size:(64 + (i mod 512)) (Cmd i))
      done;
      Sim.Engine.run engine ~until:1.0;
      List.length seqs.(0) = n_msgs
      && Array.for_all (fun s -> s = seqs.(0)) seqs)

(* --- Totem / Spread -------------------------------------------------------- *)

let test_totem_total_order () =
  let engine, net = make_env 41 in
  let seqs, deliver = collect 3 in
  let tot = Abcast.Totem.create net Abcast.Totem.default_config ~deliver in
  for i = 1 to 40 do
    ignore (Abcast.Totem.broadcast tot ~from:(i mod 3) ~size:512 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check int) "all delivered" 40 (List.length seqs.(0));
  Alcotest.(check (list int)) "daemon 1 agrees" seqs.(0) seqs.(1);
  Alcotest.(check (list int)) "daemon 2 agrees" seqs.(0) seqs.(2)

let test_totem_sender_fifo () =
  let engine, net = make_env 42 in
  let seqs, deliver = collect 3 in
  let tot = Abcast.Totem.create net Abcast.Totem.default_config ~deliver in
  for i = 1 to 20 do
    ignore (Abcast.Totem.broadcast tot ~from:0 ~size:512 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check (list int)) "single-sender FIFO preserved"
    (List.init 20 (fun i -> i + 1))
    seqs.(0)

let test_totem_latency_exceeds_token_rotation () =
  (* Safe delivery needs the aru to cover a message for a full rotation, so
     latency is at least two token rotations. *)
  let engine, net = make_env 43 in
  let delivered_at = ref 0.0 in
  let deliver ~learner:_ _ = delivered_at := Sim.Engine.now engine in
  let tot = Abcast.Totem.create net Abcast.Totem.default_config ~deliver in
  let sent_at = 0.01 in
  ignore
    (Simnet.after net sent_at (fun () ->
         ignore (Abcast.Totem.broadcast tot ~from:0 ~size:512 (Cmd 1))));
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check bool) "delivered" true (!delivered_at > 0.0);
  let rotation = 3.0 *. (Abcast.Totem.default_config.token_think +. 1.0e-4) in
  Alcotest.(check bool) "latency >= one further rotation" true
    (!delivered_at -. sent_at >= rotation)

(* --- S-Paxos ---------------------------------------------------------------- *)

let no_gc cfg = { cfg with Abcast.Spaxos.gc_pause = 0.0 }

let test_spaxos_total_order () =
  let engine, net = make_env 51 in
  let seqs, deliver = collect 3 in
  let sp = Abcast.Spaxos.create net (no_gc Abcast.Spaxos.default_config) ~deliver in
  for i = 1 to 30 do
    ignore (Abcast.Spaxos.submit sp ~replica:(i mod 3) ~size:512 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check int) "all delivered" 30 (List.length seqs.(0));
  Alcotest.(check (list int)) "replica 1 agrees" seqs.(0) seqs.(1);
  Alcotest.(check (list int)) "replica 2 agrees" seqs.(0) seqs.(2)

let test_spaxos_leader_failover () =
  let engine, net = make_env 52 in
  let seqs, deliver = collect 3 in
  let sp = Abcast.Spaxos.create net (no_gc Abcast.Spaxos.default_config) ~deliver in
  for i = 1 to 10 do
    ignore (Abcast.Spaxos.submit sp ~replica:(i mod 3) ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.3;
  Abcast.Spaxos.kill_leader sp;
  Sim.Engine.run engine ~until:1.5;
  for i = 11 to 20 do
    ignore (Abcast.Spaxos.submit sp ~replica:1 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:3.0;
  let got = List.sort_uniq compare seqs.(1) in
  Alcotest.(check bool) "new commands delivered after failover" true
    (List.exists (fun c -> c > 10) got);
  Alcotest.(check (list int)) "survivors agree" seqs.(1) seqs.(2)

let test_spaxos_non_leader_crash_tolerated () =
  let engine, net = make_env 53 in
  let seqs, deliver = collect 3 in
  let sp = Abcast.Spaxos.create net (no_gc Abcast.Spaxos.default_config) ~deliver in
  Abcast.Spaxos.kill_replica sp 2;
  for i = 1 to 10 do
    ignore (Abcast.Spaxos.submit sp ~replica:(i mod 2) ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.0;
  Alcotest.(check int) "f=1 tolerates one crash" 10 (List.length seqs.(0));
  Alcotest.(check (list int)) "replica 1 agrees" seqs.(0) seqs.(1)

(* --- presets + analysis ------------------------------------------------------- *)

let test_presets_deliver () =
  List.iter
    (fun (name, cfg) ->
      let engine, net = make_env 61 in
      let delivered = ref 0 in
      let t =
        Paxos.Basic.create net cfg ~n_acceptors:3 ~n_standby:0 ~n_proposers:1 ~n_learners:1
          ~deliver:(fun ~learner:_ ~inst:_ _ -> incr delivered)
      in
      for i = 1 to 10 do
        ignore (Paxos.Basic.submit t ~proposer:0 ~size:200 (Cmd i))
      done;
      Sim.Engine.run engine ~until:1.0;
      Alcotest.(check bool) (name ^ " delivers") true (!delivered >= 1))
    [ ("libpaxos", Abcast.Presets.libpaxos);
      ("libpaxos+", Abcast.Presets.libpaxos_plus);
      ("pfsb", Abcast.Presets.pfsb);
      ("openreplica", Abcast.Presets.openreplica) ]

let test_libpaxos_plus_faster () =
  let run cfg =
    let engine, net = make_env 62 in
    let bytes = ref 0 in
    let t =
      Paxos.Basic.create net cfg ~n_acceptors:3 ~n_standby:0 ~n_proposers:1 ~n_learners:1
        ~deliver:(fun ~learner:_ ~inst:_ (v : Paxos.Value.t) -> bytes := !bytes + v.size)
    in
    let stop =
      Simnet.every net ~period:2.0e-4 (fun () ->
          ignore (Paxos.Basic.submit t ~proposer:0 ~size:4096 (Cmd 0)))
    in
    Sim.Engine.run engine ~until:1.0;
    stop ();
    !bytes
  in
  let plain = run Abcast.Presets.libpaxos in
  let plus = run Abcast.Presets.libpaxos_plus in
  Alcotest.(check bool) "libpaxos+ outperforms libpaxos" true (plus > plain)

let test_table_3_1_formulas () =
  let find name =
    List.find (fun r -> r.Abcast.Analysis.algorithm = name) Abcast.Analysis.table_3_1
  in
  Alcotest.(check int) "M-Ring steps at f=2" 5 ((find "M-Ring Paxos").comm_steps_at 2);
  Alcotest.(check int) "U-Ring steps at f=2" 10 ((find "U-Ring Paxos").comm_steps_at 2);
  Alcotest.(check int) "LCR processes at f=4" 5 ((find "LCR").processes_at 4);
  Alcotest.(check int) "Ring+FD processes at f=3" 13 ((find "Ring+FD").processes_at 3);
  Alcotest.(check bool) "render mentions every algorithm" true
    (let s = Abcast.Analysis.render () in
     List.for_all
       (fun r -> Astring_contains.contains s r.Abcast.Analysis.algorithm)
       Abcast.Analysis.table_3_1)

let suite =
  [ Alcotest.test_case "lcr: single-sender total order" `Quick test_lcr_total_order_single_sender;
    Alcotest.test_case "lcr: multi-sender total order" `Quick test_lcr_total_order_all_senders;
    Alcotest.test_case "lcr: sender self-delivery" `Quick test_lcr_sender_also_delivers_own;
    Alcotest.test_case "lcr: survivors agree after failure" `Quick
      test_lcr_survivors_agree_after_failure;
    QCheck_alcotest.to_alcotest prop_lcr_agreement;
    Alcotest.test_case "totem: total order" `Quick test_totem_total_order;
    Alcotest.test_case "totem: sender FIFO" `Quick test_totem_sender_fifo;
    Alcotest.test_case "totem: safe-delivery latency" `Quick
      test_totem_latency_exceeds_token_rotation;
    Alcotest.test_case "spaxos: total order" `Quick test_spaxos_total_order;
    Alcotest.test_case "spaxos: leader failover" `Quick test_spaxos_leader_failover;
    Alcotest.test_case "spaxos: non-leader crash" `Quick test_spaxos_non_leader_crash_tolerated;
    Alcotest.test_case "presets deliver" `Quick test_presets_deliver;
    Alcotest.test_case "libpaxos+ faster than libpaxos" `Quick test_libpaxos_plus_faster;
    Alcotest.test_case "table 3.1 formulas" `Quick test_table_3_1_formulas ]
