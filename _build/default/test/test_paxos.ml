(* Tests for Basic Paxos (Algorithm 1). *)

type Simnet.payload += Cmd of int

let make ?(config = Paxos.Basic.default_config) ?(n_acceptors = 3) ?(n_standby = 0)
    ?(n_proposers = 1) ?(n_learners = 2) ?(seed = 3) () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create seed in
  let net = Simnet.create engine rng in
  let deliveries = Hashtbl.create 16 in
  (* learner -> reversed list of (inst, item payloads) *)
  let deliver ~learner ~inst v =
    let prev = Option.value ~default:[] (Hashtbl.find_opt deliveries learner) in
    Hashtbl.replace deliveries learner ((inst, v) :: prev)
  in
  let t =
    Paxos.Basic.create net config ~n_acceptors ~n_standby ~n_proposers ~n_learners ~deliver
  in
  (engine, net, t, deliveries)

let delivered_of deliveries learner =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt deliveries learner))

let cmd_ids v =
  List.filter_map
    (fun (it : Paxos.Value.item) -> match it.app with Cmd i -> Some i | _ -> None)
    v.Paxos.Value.items

let test_single_decision () =
  let engine, _, t, deliveries = make () in
  ignore (Paxos.Basic.submit t ~proposer:0 ~size:100 (Cmd 1));
  Sim.Engine.run engine ~until:0.4;
  let d0 = delivered_of deliveries 0 in
  Alcotest.(check int) "one instance delivered" 1 (List.length d0);
  let _, v = List.hd d0 in
  Alcotest.(check (list int)) "correct command" [ 1 ] (cmd_ids v)

let test_many_decisions_in_order () =
  let engine, _, t, deliveries = make () in
  for i = 1 to 50 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:100 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.45;
  let d0 = delivered_of deliveries 0 in
  let cmds = List.concat_map (fun (_, v) -> cmd_ids v) d0 in
  Alcotest.(check (list int)) "all commands in submission order" (List.init 50 (fun i -> i + 1)) cmds;
  let insts = List.map fst d0 in
  Alcotest.(check (list int)) "consecutive instances" (List.init (List.length insts) Fun.id) insts

let test_learners_agree () =
  let engine, _, t, deliveries = make ~n_learners:3 () in
  for i = 1 to 30 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:200 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.45;
  let seqs =
    List.init 3 (fun l -> List.concat_map (fun (_, v) -> cmd_ids v) (delivered_of deliveries l))
  in
  match seqs with
  | [ a; b; c ] ->
      Alcotest.(check (list int)) "learner 1 = learner 0" a b;
      Alcotest.(check (list int)) "learner 2 = learner 0" a c
  | _ -> Alcotest.fail "expected three learners"

let test_batching_packs_items () =
  let config = { Paxos.Basic.default_config with batch_bytes = 8192 } in
  let engine, _, t, deliveries = make ~config () in
  for i = 1 to 64 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.4;
  let d0 = delivered_of deliveries 0 in
  let n_inst = List.length d0 in
  let n_items = List.fold_left (fun acc (_, v) -> acc + List.length v.Paxos.Value.items) 0 d0 in
  Alcotest.(check int) "all items delivered" 64 n_items;
  Alcotest.(check bool) "batching used fewer instances" true (n_inst < 32)

let test_ucast_mode () =
  let config = { Paxos.Basic.default_config with dissemination = `Ucast } in
  let engine, _, t, deliveries = make ~config () in
  for i = 1 to 10 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:200 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.4;
  let cmds = List.concat_map (fun (_, v) -> cmd_ids v) (delivered_of deliveries 0) in
  Alcotest.(check (list int)) "unicast mode delivers in order" (List.init 10 (fun i -> i + 1)) cmds

let test_acceptor_crash_tolerated () =
  let engine, _, t, deliveries = make ~n_acceptors:3 () in
  ignore (Paxos.Basic.submit t ~proposer:0 ~size:100 (Cmd 1));
  Sim.Engine.run engine ~until:0.2;
  Paxos.Basic.kill_acceptor t 2;
  for i = 2 to 10 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:100 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.8;
  let cmds = List.concat_map (fun (_, v) -> cmd_ids v) (delivered_of deliveries 0) in
  Alcotest.(check (list int)) "majority suffices" (List.init 10 (fun i -> i + 1)) cmds

let test_coordinator_failover () =
  let engine, _, t, deliveries = make ~n_standby:1 () in
  for i = 1 to 5 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:100 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.3;
  Paxos.Basic.kill_coordinator t;
  Sim.Engine.run engine ~until:1.5;
  (* Submit through the new coordinator. *)
  for i = 6 to 10 do
    ignore (Paxos.Basic.submit t ~proposer:0 ~size:100 (Cmd i))
  done;
  Sim.Engine.run engine ~until:3.5;
  let cmds = List.concat_map (fun (_, v) -> cmd_ids v) (delivered_of deliveries 0) in
  let uniq = List.sort_uniq compare cmds in
  Alcotest.(check (list int)) "all commands eventually delivered" (List.init 10 (fun i -> i + 1)) uniq

let test_no_creation_no_duplicates () =
  (* Uniform integrity: delivered items were submitted, each at most once. *)
  let engine, _, t, deliveries = make ~n_proposers:2 () in
  for i = 1 to 20 do
    ignore (Paxos.Basic.submit t ~proposer:(i mod 2) ~size:100 (Cmd i))
  done;
  Sim.Engine.run engine ~until:1.0;
  let cmds = List.concat_map (fun (_, v) -> cmd_ids v) (delivered_of deliveries 0) in
  let sorted = List.sort compare cmds in
  Alcotest.(check (list int)) "exactly the submitted set" (List.init 20 (fun i -> i + 1)) sorted

let prop_total_order =
  (* Uniform total order across random loads: every pair of learners
     delivers the same sequence. *)
  QCheck.Test.make ~name:"paxos: learners deliver identical sequences" ~count:20
    QCheck.(pair (int_range 1 60) (int_range 1 4))
    (fun (n_cmds, n_proposers) ->
      let engine, _, t, deliveries = make ~n_proposers ~n_learners:3 ~seed:n_cmds () in
      for i = 1 to n_cmds do
        ignore (Paxos.Basic.submit t ~proposer:(i mod n_proposers) ~size:(64 + (i mod 512)) (Cmd i))
      done;
      Sim.Engine.run engine ~until:2.0;
      let seq l =
        List.concat_map (fun (_, v) -> cmd_ids v) (delivered_of deliveries l)
      in
      let s0 = seq 0 and s1 = seq 1 and s2 = seq 2 in
      List.length s0 = n_cmds && s0 = s1 && s1 = s2)

let suite =
  [ Alcotest.test_case "single decision" `Quick test_single_decision;
    Alcotest.test_case "many decisions in order" `Quick test_many_decisions_in_order;
    Alcotest.test_case "learners agree" `Quick test_learners_agree;
    Alcotest.test_case "batching packs items" `Quick test_batching_packs_items;
    Alcotest.test_case "unicast dissemination" `Quick test_ucast_mode;
    Alcotest.test_case "acceptor crash tolerated" `Quick test_acceptor_crash_tolerated;
    Alcotest.test_case "coordinator failover" `Quick test_coordinator_failover;
    Alcotest.test_case "integrity: no creation, no dups" `Quick test_no_creation_no_duplicates;
    QCheck_alcotest.to_alcotest prop_total_order ]
