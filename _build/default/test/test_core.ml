(* Tests for the Hpsmr facade (lib/core). *)

let test_kv_put_get () =
  let env = Hpsmr.Env.create ~seed:2 () in
  let kv = Hpsmr.Replicated_kv.create env ~replicas:3 in
  let got = ref None in
  Hpsmr.Replicated_kv.put kv ~key:7 ~value:49 ~k:(fun () ->
      Hpsmr.Replicated_kv.get kv ~key:7 ~k:(fun v -> got := v));
  Hpsmr.Env.run env ~for_:0.5;
  Alcotest.(check (option int)) "read back" (Some 49) !got;
  Alcotest.(check int) "two commands completed" 2 (Hpsmr.Replicated_kv.completed kv)

let test_kv_get_missing () =
  let env = Hpsmr.Env.create ~seed:3 () in
  let kv = Hpsmr.Replicated_kv.create env ~replicas:1 in
  let got = ref (Some 1) in
  Hpsmr.Replicated_kv.get kv ~key:12345 ~k:(fun v -> got := v);
  Hpsmr.Env.run env ~for_:0.5;
  Alcotest.(check (option int)) "missing key" None !got

let test_kv_survives_coordinator_crash () =
  let env = Hpsmr.Env.create ~seed:4 () in
  let kv = Hpsmr.Replicated_kv.create env ~replicas:2 in
  for i = 1 to 20 do
    Hpsmr.Replicated_kv.put kv ~key:i ~value:i ~k:(fun () -> ())
  done;
  Hpsmr.Env.run env ~for_:0.3;
  Hpsmr.Replicated_kv.kill_coordinator kv;
  Hpsmr.Env.run env ~for_:1.5;
  let got = ref None in
  Hpsmr.Replicated_kv.put kv ~key:99 ~value:990 ~k:(fun () ->
      Hpsmr.Replicated_kv.get kv ~key:99 ~k:(fun v -> got := v));
  Hpsmr.Env.run env ~for_:2.0;
  Alcotest.(check (option int)) "post-failover write+read" (Some 990) !got

let test_env_determinism () =
  let run () =
    let env = Hpsmr.Env.create ~seed:5 () in
    let kv = Hpsmr.Replicated_kv.create env ~replicas:2 in
    let trace = ref [] in
    for i = 1 to 10 do
      Hpsmr.Replicated_kv.put kv ~key:i ~value:i ~k:(fun () ->
          trace := (i, Hpsmr.Env.now env) :: !trace)
    done;
    Hpsmr.Env.run env ~for_:1.0;
    !trace
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, identical completion trace" true (a = b && a <> [])

let suite =
  [ Alcotest.test_case "kv put/get" `Quick test_kv_put_get;
    Alcotest.test_case "kv missing key" `Quick test_kv_get_missing;
    Alcotest.test_case "kv survives coordinator crash" `Quick
      test_kv_survives_coordinator_crash;
    Alcotest.test_case "deterministic runs" `Quick test_env_determinism ]
