(* Additional coverage: loss injection, recovery, load generators, and
   calibration regression checks that pin the headline numbers. *)

type Simnet.payload += Cmd of int

let cmd_ids (v : Paxos.Value.t) =
  List.filter_map
    (fun (it : Paxos.Value.item) -> match it.app with Cmd i -> Some i | _ -> None)
    v.items

(* --- M-Ring Paxos under injected multicast loss ----------------------------- *)

let test_mring_total_order_under_loss () =
  (* 2% random multicast loss: repairs must preserve gap-free total order. *)
  let cfg = { Simnet.default_config with udp_base_loss = 0.02 } in
  let engine = Sim.Engine.create () in
  let net = Simnet.create ~config:cfg engine (Sim.Rng.create 123) in
  let seqs = Array.make 2 [] in
  let mr =
    Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:1 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner ~inst:_ v ->
        match v with
        | Some v -> seqs.(learner) <- seqs.(learner) @ cmd_ids v
        | None -> ())
  in
  for i = 1 to 200 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:512 (Cmd i))
  done;
  Sim.Engine.run engine ~until:3.0;
  Alcotest.(check (list int)) "lossy network, gap-free order"
    (List.init 200 (fun i -> i + 1))
    seqs.(0);
  Alcotest.(check (list int)) "both learners agree" seqs.(0) seqs.(1)

let test_mring_acceptor_crash_and_recover () =
  (* Crash-recovery model: a crashed acceptor recovers and can later serve
     as a spare again while the system keeps making progress. *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 7) in
  let delivered = ref 0 in
  let mr =
    Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:1 ~n_learners:1
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ v ->
        match v with
        | Some (v : Paxos.Value.t) -> delivered := !delivered + List.length v.items
        | None -> ())
  in
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.3;
  let acc0 = (Ringpaxos.Mring.acceptor_procs mr).(0) in
  Simnet.kill net acc0;
  Sim.Engine.run engine ~until:1.0;
  Simnet.recover net acc0;
  for i = 11 to 30 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:3.0;
  Alcotest.(check bool)
    (Printf.sprintf "progress through crash + recovery (%d commands)" !delivered)
    true (!delivered >= 30)

let test_mring_double_failure_f2 () =
  (* f = 2 tolerates two acceptor crashes (ring member + promoted spare). *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 8) in
  let got = ref [] in
  let mr =
    Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:1 ~n_learners:1
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ v ->
        match v with Some v -> got := !got @ cmd_ids v | None -> ())
  in
  for i = 1 to 5 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.3;
  Ringpaxos.Mring.kill_ring_acceptor mr 0;
  Sim.Engine.run engine ~until:1.2;
  Ringpaxos.Mring.kill_ring_acceptor mr 1;
  Sim.Engine.run engine ~until:2.4;
  for i = 6 to 15 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:4.5;
  Alcotest.(check (list int)) "all commands despite two crashes"
    (List.init 15 (fun i -> i + 1))
    (List.sort_uniq compare !got)

(* --- load generators ---------------------------------------------------------- *)

let test_loadgen_constant_rate () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 1) in
  let count = ref 0 in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:8.0 ~size:1000 (fun _ ->
        incr count;
        true)
  in
  Sim.Engine.run engine ~until:1.0;
  stop ();
  (* 8 Mbps of 1000-byte messages = 1000 msg/s. *)
  Alcotest.(check bool)
    (Printf.sprintf "about 1000 submissions (%d)" !count)
    true
    (!count > 950 && !count < 1050)

let test_loadgen_staircase () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 1) in
  let stamps = ref [] in
  let stop =
    Abcast.Loadgen.staircase net
      ~steps:[ (0.0, 4.0); (0.5, 16.0) ]
      ~size:1000
      (fun _ ->
        stamps := Sim.Engine.now engine :: !stamps;
        true)
  in
  Sim.Engine.run engine ~until:1.0;
  stop ();
  let early = List.length (List.filter (fun t -> t < 0.5) !stamps) in
  let late = List.length (List.filter (fun t -> t >= 0.5) !stamps) in
  Alcotest.(check bool)
    (Printf.sprintf "rate quadruples after the step (%d then %d)" early late)
    true
    (late > 3 * early)

let test_loadgen_oscillating () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 1) in
  let count = ref 0 in
  let stop =
    Abcast.Loadgen.oscillating net ~period:0.25 ~low_mbps:4.0 ~high_mbps:16.0 ~size:1000
      (fun _ ->
        incr count;
        true)
  in
  Sim.Engine.run engine ~until:1.0;
  stop ();
  (* Mean rate = 10 Mbps = 1250 msg/s. *)
  Alcotest.(check bool)
    (Printf.sprintf "oscillation averages out (%d)" !count)
    true
    (!count > 1000 && !count < 1500)

(* --- calibration regression: the headline numbers must not rot ---------------- *)

let test_mring_peak_calibration () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 5) in
  let bytes = ref 0 in
  let mr =
    Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:2 ~n_learners:2
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner ~inst:_ v ->
        match v with
        | Some (v : Paxos.Value.t) when learner = 0 -> bytes := !bytes + v.size
        | _ -> ())
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:1400.0 ~size:8192 (fun sz ->
        ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz (Cmd 0));
        ignore (Ringpaxos.Mring.submit mr ~proposer:1 ~size:sz (Cmd 0));
        true)
  in
  let mark = ref 0 in
  ignore (Simnet.after net 1.0 (fun () -> mark := !bytes));
  Sim.Engine.run engine ~until:2.0;
  stop ();
  let mbps = float_of_int (!bytes - !mark) *. 8.0 /. 1.0 /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "M-Ring Paxos peak %.0f Mbps in [780, 1000] (Table 3.2: ~90%%)" mbps)
    true
    (mbps > 780.0 && mbps < 1000.0)

let test_disk_bound_calibration () =
  (* Recoverable deployments must be disk-bound near 270 Mbps (§3.5.5). *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 5) in
  let bytes = ref 0 in
  let cfg = { Ringpaxos.Mring.default_config with durability = Ringpaxos.Mring.Sync_disk } in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:1 ~n_learners:1
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ v ->
        match v with Some (v : Paxos.Value.t) -> bytes := !bytes + v.size | None -> ())
  in
  let stop =
    Abcast.Loadgen.constant net ~rate_mbps:800.0 ~size:8192 (fun sz ->
        ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz (Cmd 0));
        true)
  in
  let mark = ref 0 in
  ignore (Simnet.after net 1.0 (fun () -> mark := !bytes));
  Sim.Engine.run engine ~until:2.0;
  stop ();
  let mbps = float_of_int (!bytes - !mark) *. 8.0 /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "sync-disk M-Ring %.0f Mbps in [150, 280]" mbps)
    true
    (mbps > 150.0 && mbps < 280.0)

let prop_agreement_under_random_failures =
  (* Kill a random in-ring acceptor (possibly the coordinator) at a random
     time under load: surviving learners must still deliver identical,
     gap-free command sequences. *)
  QCheck.Test.make ~name:"mring: agreement under a random crash" ~count:8
    QCheck.(pair (int_range 0 2) (int_range 1 40))
    (fun (victim, kill_step) ->
      let engine = Sim.Engine.create () in
      let net = Simnet.create engine (Sim.Rng.create (victim + (kill_step * 17))) in
      let seqs = Array.make 2 [] in
      let mr =
        Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:1
          ~n_learners:2
          ~learner_parts:(fun _ -> [ 0 ])
          ~deliver:(fun ~learner ~inst:_ v ->
            match v with
            | Some v -> seqs.(learner) <- seqs.(learner) @ cmd_ids v
            | None -> ())
      in
      for i = 1 to 60 do
        ignore
          (Simnet.after net (0.005 *. float_of_int i) (fun () ->
               ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))))
      done;
      ignore
        (Simnet.after net (0.005 *. float_of_int kill_step) (fun () ->
             Ringpaxos.Mring.kill_ring_acceptor mr victim));
      Sim.Engine.run engine ~until:5.0;
      let uniq = List.sort_uniq compare seqs.(0) in
      List.length uniq = 60 && seqs.(0) = seqs.(1))

let suite =
  [ Alcotest.test_case "mring: order under 2% multicast loss" `Slow
      test_mring_total_order_under_loss;
    Alcotest.test_case "mring: acceptor crash + recover" `Quick
      test_mring_acceptor_crash_and_recover;
    Alcotest.test_case "mring: two crashes at f=2" `Quick test_mring_double_failure_f2;
    Alcotest.test_case "loadgen: constant" `Quick test_loadgen_constant_rate;
    Alcotest.test_case "loadgen: staircase" `Quick test_loadgen_staircase;
    Alcotest.test_case "loadgen: oscillating" `Quick test_loadgen_oscillating;
    Alcotest.test_case "calibration: M-Ring peak ~90%" `Slow test_mring_peak_calibration;
    Alcotest.test_case "calibration: disk-bound ~270Mbps" `Slow test_disk_bound_calibration;
    QCheck_alcotest.to_alcotest prop_agreement_under_random_failures ]

let test_crash_wipe_memory_mode () =
  (* Memory durability: a crashed acceptor restarts empty; the system keeps
     working because a majority never crashed. *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 9) in
  let got = ref [] in
  let mr =
    Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:1 ~n_learners:1
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ v ->
        match v with Some v -> got := !got @ cmd_ids v | None -> ())
  in
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.3;
  Ringpaxos.Mring.crash_acceptor mr 0;
  Sim.Engine.run engine ~until:1.2;
  Ringpaxos.Mring.restart_acceptor mr 0;
  for i = 11 to 25 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:3.5;
  Alcotest.(check (list int)) "progress around the wiped acceptor"
    (List.init 25 (fun i -> i + 1))
    (List.sort_uniq compare !got)

let test_crash_recover_durable_mode () =
  (* Sync-disk durability: the crashed acceptor reloads its promises and
     votes and can serve again. *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 10) in
  let got = ref [] in
  let cfg = { Ringpaxos.Mring.default_config with durability = Ringpaxos.Mring.Sync_disk } in
  let mr =
    Ringpaxos.Mring.create net cfg ~n_proposers:1 ~n_learners:1
      ~learner_parts:(fun _ -> [ 0 ])
      ~deliver:(fun ~learner:_ ~inst:_ v ->
        match v with Some v -> got := !got @ cmd_ids v | None -> ())
  in
  for i = 1 to 10 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:0.5;
  Ringpaxos.Mring.crash_acceptor mr 0;
  Sim.Engine.run engine ~until:1.5;
  Ringpaxos.Mring.restart_acceptor mr 0;
  Sim.Engine.run engine ~until:2.0;
  for i = 11 to 25 do
    ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:256 (Cmd i))
  done;
  Sim.Engine.run engine ~until:4.5;
  Alcotest.(check (list int)) "durable acceptor rejoins"
    (List.init 25 (fun i -> i + 1))
    (List.sort_uniq compare !got)

let suite =
  suite
  @ [ Alcotest.test_case "crash wipe (memory mode)" `Quick test_crash_wipe_memory_mode;
      Alcotest.test_case "crash + durable reload" `Quick test_crash_recover_durable_mode ]

let test_uring_single_crossing_efficiency () =
  (* §3.3.3: each value crosses each link once, so a member's incoming
     application bytes stay close to the bytes it delivers. *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 12) in
  let delivered = ref 0 in
  let ur =
    Ringpaxos.Uring.create net Ringpaxos.Uring.default_config
      ~positions:(Ringpaxos.Uring.standard_positions ~n:5)
      ~deliver:(fun ~learner ~inst:_ (v : Paxos.Value.t) ->
        if learner = 4 then delivered := !delivered + v.size)
  in
  for i = 1 to 200 do
    ignore (Ringpaxos.Uring.submit ur ~proposer:0 ~size:8192 (Cmd i))
  done;
  Sim.Engine.run engine ~until:2.0;
  let received =
    Sim.Stats.Rate.bytes (Simnet.recv_rate (Ringpaxos.Uring.position_proc ur 4))
  in
  Alcotest.(check bool) "everything delivered" true (!delivered >= 200 * 8192);
  let ratio = float_of_int received /. float_of_int !delivered in
  Alcotest.(check bool)
    (Printf.sprintf "incoming/delivered ratio %.2f stays near 1" ratio)
    true
    (ratio < 1.4)

let test_recorder_basics () =
  let engine = Sim.Engine.create () in
  let r = Abcast.Recorder.create engine in
  ignore (Sim.Engine.schedule engine ~delay:1.0 (fun () ->
      Abcast.Recorder.item r { Paxos.Value.uid = 1; isize = 125_000; app = Simnet.Noop; born = 0.5 }));
  Sim.Engine.run_all engine;
  Alcotest.(check int) "items" 1 (Abcast.Recorder.items r);
  Alcotest.(check int) "bytes" 125_000 (Abcast.Recorder.bytes r);
  Alcotest.(check (float 1e-6)) "mbps over 1s window" 1.0
    (Abcast.Recorder.mbps r ~from:0.5 ~till:1.5);
  Alcotest.(check (float 1e-6)) "latency ms" 500.0 (Abcast.Recorder.lat_mean_ms r);
  Alcotest.(check int) "cdf points" 4 (List.length (Abcast.Recorder.lat_cdf r ~points:4))

let suite =
  suite
  @ [ Alcotest.test_case "uring: single-crossing efficiency" `Quick
        test_uring_single_crossing_efficiency;
      Alcotest.test_case "recorder basics" `Quick test_recorder_basics ]
