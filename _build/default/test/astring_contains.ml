(* Tiny substring helper for tests (no external string library needed). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = if i + nn > nh then false else String.sub haystack i nn = needle || go (i + 1) in
  nn = 0 || go 0
