(* Every protocol in the repository checked against the same Chapter 2
   specifications, via the Abcast.Properties oracle. *)

type Simnet.payload += Cmd of int

let cmd_ids (v : Paxos.Value.t) =
  List.filter_map
    (fun (it : Paxos.Value.item) -> match it.app with Cmd i -> Some i | _ -> None)
    v.items

type deployment = {
  submit : int -> bool;  (* submit command id; false = client buffer full *)
  logs : unit -> int list list;
  engine : Sim.Engine.t;
}

let n_learners = 3

let make_deployment proto seed =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  let logs = Array.make n_learners [] in
  let record l ids = logs.(l) <- List.rev_append ids logs.(l) in
  let logs_fn () = Array.to_list (Array.map List.rev logs) in
  let submit =
    match proto with
    | `Mring ->
        let mr =
          Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:2
            ~n_learners
            ~learner_parts:(fun _ -> [ 0 ])
            ~deliver:(fun ~learner ~inst:_ v ->
              match v with Some v -> record learner (cmd_ids v) | None -> ())
        in
        fun i -> Ringpaxos.Mring.submit mr ~proposer:(i mod 2) ~size:300 (Cmd i) >= 0
    | `Uring ->
        let ur =
          Ringpaxos.Uring.create net Ringpaxos.Uring.default_config
            ~positions:(Ringpaxos.Uring.standard_positions ~n:5)
            ~deliver:(fun ~learner ~inst:_ v ->
              if learner < n_learners then record learner (cmd_ids v))
        in
        fun i -> Ringpaxos.Uring.submit ur ~proposer:(i mod 5) ~size:300 (Cmd i) >= 0
    | `Lcr ->
        let lcr =
          Abcast.Lcr.create net Abcast.Lcr.default_config ~deliver:(fun ~learner v ->
              if learner < n_learners then record learner (cmd_ids v))
        in
        fun i -> Abcast.Lcr.broadcast lcr ~from:(i mod 5) ~size:300 (Cmd i)
    | `Totem ->
        let tot =
          Abcast.Totem.create net Abcast.Totem.default_config ~deliver:(fun ~learner v ->
              if learner < n_learners then record learner (cmd_ids v))
        in
        fun i -> Abcast.Totem.broadcast tot ~from:(i mod 3) ~size:300 (Cmd i)
    | `Spaxos ->
        let sp =
          Abcast.Spaxos.create net
            { Abcast.Spaxos.default_config with gc_pause = 0.0 }
            ~deliver:(fun ~learner v -> if learner < n_learners then record learner (cmd_ids v))
        in
        fun i -> Abcast.Spaxos.submit sp ~replica:(i mod 3) ~size:300 (Cmd i)
    | `Basic_mcast | `Basic_ucast ->
        let cfg =
          { Paxos.Basic.default_config with
            dissemination = (if proto = `Basic_mcast then `Mcast else `Ucast) }
        in
        let bp =
          Paxos.Basic.create net cfg ~n_acceptors:3 ~n_standby:0 ~n_proposers:2
            ~n_learners
            ~deliver:(fun ~learner ~inst:_ v -> record learner (cmd_ids v))
        in
        fun i -> Paxos.Basic.submit bp ~proposer:(i mod 2) ~size:300 (Cmd i) >= 0
  in
  { submit; logs = logs_fn; engine }

let protocols =
  [ ("M-Ring Paxos", `Mring);
    ("U-Ring Paxos", `Uring);
    ("LCR", `Lcr);
    ("Totem", `Totem);
    ("S-Paxos", `Spaxos);
    ("Basic Paxos (mcast)", `Basic_mcast);
    ("Basic Paxos (ucast)", `Basic_ucast) ]

let prop_atomic_broadcast (name, proto) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s satisfies atomic broadcast" name)
    ~count:8
    QCheck.(int_range 5 60)
    (fun n_msgs ->
      let d = make_deployment proto (n_msgs * 41) in
      let broadcast = ref [] in
      for i = 1 to n_msgs do
        if d.submit i then broadcast := i :: !broadcast
      done;
      Sim.Engine.run d.engine ~until:2.5;
      Abcast.Properties.atomic_broadcast ~broadcast:!broadcast (d.logs ()))

(* Direct unit tests of the oracle itself. *)

let test_oracle_accepts_valid () =
  let logs = [ [ 1; 2; 3 ]; [ 1; 2; 3 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check bool) "valid logs pass" true
    (Abcast.Properties.atomic_broadcast ~broadcast:[ 1; 2; 3 ] logs)

let test_oracle_rejects_reorder () =
  Alcotest.(check bool) "reordered logs fail" false
    (Abcast.Properties.total_order [ [ 1; 2; 3 ]; [ 1; 3; 2 ] ])

let test_oracle_rejects_duplicate () =
  Alcotest.(check bool) "duplicate delivery fails" false
    (Abcast.Properties.integrity ~broadcast:[ 1; 2 ] [ [ 1; 1; 2 ] ])

let test_oracle_rejects_creation () =
  Alcotest.(check bool) "delivering an unsent message fails" false
    (Abcast.Properties.integrity ~broadcast:[ 1 ] [ [ 1; 9 ] ])

let test_oracle_rejects_lost () =
  Alcotest.(check bool) "a missing message fails validity" false
    (Abcast.Properties.validity ~broadcast:[ 1; 2 ] [ [ 1 ] ])

let test_oracle_partial_order () =
  (* Different groups: disjoint logs are trivially compatible; common
     messages must agree. *)
  Alcotest.(check bool) "disjoint logs ok" true
    (Abcast.Properties.partial_order [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check bool) "common messages in order" true
    (Abcast.Properties.partial_order [ [ 1; 5; 2 ]; [ 5; 3; 4 ] ]);
  Alcotest.(check bool) "conflicting common order fails" false
    (Abcast.Properties.partial_order [ [ 5; 6 ]; [ 6; 5 ] ])

let suite =
  [ Alcotest.test_case "oracle: accepts valid histories" `Quick test_oracle_accepts_valid;
    Alcotest.test_case "oracle: rejects reordering" `Quick test_oracle_rejects_reorder;
    Alcotest.test_case "oracle: rejects duplicates" `Quick test_oracle_rejects_duplicate;
    Alcotest.test_case "oracle: rejects creation" `Quick test_oracle_rejects_creation;
    Alcotest.test_case "oracle: rejects loss" `Quick test_oracle_rejects_lost;
    Alcotest.test_case "oracle: partial order" `Quick test_oracle_partial_order ]
  @ List.map (fun p -> QCheck_alcotest.to_alcotest (prop_atomic_broadcast p)) protocols
