examples/replicated_btree.ml: Array Hpsmr Printf
