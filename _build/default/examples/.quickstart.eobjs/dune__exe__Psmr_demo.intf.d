examples/psmr_demo.mli:
