examples/quickstart.mli:
