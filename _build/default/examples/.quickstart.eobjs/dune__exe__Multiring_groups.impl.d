examples/multiring_groups.ml: Array Hpsmr List Printf Simnet String
