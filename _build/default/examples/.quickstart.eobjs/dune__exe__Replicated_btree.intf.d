examples/replicated_btree.mli:
