examples/psmr_demo.ml: Hpsmr Printf
