examples/quickstart.ml: Hpsmr Printf
