examples/multiring_groups.mli:
