(* Quickstart: a fault-tolerant key-value store replicated with
   M-Ring Paxos, in a few lines.

     dune exec examples/quickstart.exe

   The store survives the crash of its coordinator: the demo kills it
   mid-run and keeps serving. *)

let () =
  let env = Hpsmr.Env.create ~seed:42 () in
  let kv = Hpsmr.Replicated_kv.create env ~replicas:3 in

  (* Write 1..100, then read a few keys back. *)
  let writes_done = ref 0 in
  for i = 1 to 100 do
    Hpsmr.Replicated_kv.put kv ~key:i ~value:(i * i) ~k:(fun () -> incr writes_done)
  done;
  Hpsmr.Env.run env ~for_:0.5;
  Printf.printf "after 0.5 s: %d/100 writes acknowledged\n" !writes_done;

  Hpsmr.Replicated_kv.get kv ~key:7 ~k:(fun v ->
      Printf.printf "get 7 -> %s\n"
        (match v with Some v -> string_of_int v | None -> "none"));
  Hpsmr.Env.run env ~for_:0.1;

  (* Crash the Ring Paxos coordinator; a spare acceptor takes over. *)
  Printf.printf "killing the coordinator...\n";
  Hpsmr.Replicated_kv.kill_coordinator kv;
  Hpsmr.Env.run env ~for_:0.1;

  let before = Hpsmr.Replicated_kv.completed kv in
  for i = 101 to 150 do
    Hpsmr.Replicated_kv.put kv ~key:i ~value:i ~k:(fun () -> ())
  done;
  Hpsmr.Env.run env ~for_:2.0;
  Printf.printf "after the fault window: %d commands completed (was %d)\n"
    (Hpsmr.Replicated_kv.completed kv)
    before;

  Hpsmr.Replicated_kv.get kv ~key:150 ~k:(fun v ->
      Printf.printf "get 150 -> %s\n"
        (match v with Some v -> string_of_int v | None -> "none"));
  Hpsmr.Env.run env ~for_:0.2;
  print_endline "quickstart done"
