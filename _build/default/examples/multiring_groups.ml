(* Atomic multicast with Multi-Ring Paxos: two groups, three subscribers.

   Learner A subscribes to group 0, learner B to group 1, and learner C to
   both.  C's deterministic merge interleaves the groups identically with
   any other all-group subscriber, and skip messages keep C going even when
   one group is idle.

     dune exec examples/multiring_groups.exe *)

type Simnet.payload += Msg of string

let () =
  let env = Hpsmr.Env.create ~seed:5 () in
  let deliveries = Array.make 3 [] in
  let cfg = { Hpsmr.Multiring.default_config with n_rings = 2; lambda = 2000.0 } in
  let subs = function 0 -> [ 0 ] | 1 -> [ 1 ] | _ -> [ 0; 1 ] in
  let mr =
    Hpsmr.Multiring.create env.net cfg ~n_learners:3 ~subs ~proposers_per_ring:1
      ~deliver:(fun ~learner ~group (it : Hpsmr.Paxos.Value.item) ->
        match it.app with
        | Msg s -> deliveries.(learner) <- (group, s) :: deliveries.(learner)
        | _ -> ())
  in
  (* Interleaved traffic on both groups, then group 1 goes silent. *)
  List.iteri
    (fun i name ->
      let group = i mod 2 in
      ignore
        (Hpsmr.Multiring.multicast mr ~group ~proposer:0 ~size:200 (Msg name)))
    [ "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot" ];
  Hpsmr.Env.run env ~for_:0.3;
  ignore (Hpsmr.Multiring.multicast mr ~group:0 ~proposer:0 ~size:200 (Msg "golf"));
  ignore (Hpsmr.Multiring.multicast mr ~group:0 ~proposer:0 ~size:200 (Msg "hotel"));
  Hpsmr.Env.run env ~for_:0.7;
  let show l =
    String.concat ", "
      (List.rev_map (fun (g, s) -> Printf.sprintf "%s@g%d" s g) deliveries.(l))
  in
  Printf.printf "learner A (group 0):    %s\n" (show 0);
  Printf.printf "learner B (group 1):    %s\n" (show 1);
  Printf.printf "learner C (merged 0+1): %s\n" (show 2);
  Printf.printf "skips proposed for idle group 1: %d\n"
    (Hpsmr.Multiring.skips_proposed mr 1);
  assert (List.length deliveries.(2) = 8);
  print_endline "multi-ring demo done"
