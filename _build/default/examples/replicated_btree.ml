(* The Chapter 4 scenario: a B+-tree service replicated with M-Ring Paxos,
   comparing plain SMR, speculative execution and state partitioning on the
   same workload.

     dune exec examples/replicated_btree.exe *)

module W = Hpsmr.Smr.Workload
module BS = Hpsmr.Smr.Btree_service

let key_range = 50_000

let dense_service ~n_parts p =
  let bs = BS.create () in
  let plo = (p * (key_range + 1) / n_parts) + if p = 0 then 1 else 0 in
  let phi = ((p + 1) * (key_range + 1) / n_parts) - 1 in
  for k = max 1 plo to phi do
    ignore (Hpsmr.Btree.insert bs.tree k k)
  done;
  bs

let run ~name ~partitions ~speculative =
  let env = Hpsmr.Env.create ~seed:9 () in
  let replicas = 2 in
  let services =
    Array.init (partitions * replicas) (fun l ->
        dense_service ~n_parts:partitions (l / replicas))
  in
  let wl =
    W.create ~cross_pct:20 ~query_span:500 (Hpsmr.Sim.Rng.create 5) W.Queries ~key_range
      ~n_partitions:partitions
  in
  let cfg =
    { Hpsmr.Smr.System.default_config with
      mring = { Hpsmr.Ringpaxos.Mring.default_config with partitions };
      replicas_per_partition = replicas;
      speculative }
  in
  let sys =
    Hpsmr.Smr.System.create env.net cfg
      ~services:(fun l -> services.(l).service)
      ~n_clients:150
      ~gen:(fun _ -> W.next wl)
  in
  Hpsmr.Smr.System.start sys;
  Hpsmr.Env.run env ~for_:2.0;
  let m = Hpsmr.Smr.System.metrics sys in
  Printf.printf "%-28s %8.1f kcps %8.2f ms  (replica state fingerprints %s)\n" name
    (Hpsmr.Smr.Metrics.kcps m ~from:0.7 ~till:2.0)
    (Hpsmr.Smr.Metrics.lat_mean_ms m)
    (if
       Array.for_all
         (fun s -> BS.fingerprint s = BS.fingerprint services.(0))
         (Array.sub services 0 replicas)
     then "agree"
     else "DISAGREE!")

let () =
  print_endline "Replicated B+-tree, range-query workload, 150 clients:";
  run ~name:"plain SMR (1 partition)" ~partitions:1 ~speculative:false;
  run ~name:"speculative SMR" ~partitions:1 ~speculative:true;
  run ~name:"partitioned SMR (2 parts)" ~partitions:2 ~speculative:false;
  run ~name:"speculation + partitioning" ~partitions:2 ~speculative:true
