(* Parallel State-Machine Replication: the same workload on sequential SMR
   and P-SMR, showing multi-core scaling on independent commands and the
   barrier cost of dependent ones.

     dune exec examples/psmr_demo.exe *)

let run ?(sched_cost = 2.0e-6) ~name ~approach ~n_workers ~dep_pct () =
  let env = Hpsmr.Env.create ~seed:3 () in
  let rng = Hpsmr.Sim.Rng.create 4 in
  let gen _ =
    { Hpsmr.Psmr.obj = Hpsmr.Sim.Rng.int rng 4096;
      dependent = Hpsmr.Sim.Rng.int rng 100 < dep_pct;
      size = 128 }
  in
  let config =
    { Hpsmr.Psmr.default_config with approach; n_workers; exec_cost = 2.0e-5; sched_cost }
  in
  let sys = Hpsmr.Psmr.create env.net config ~n_clients:120 ~gen in
  Hpsmr.Psmr.start sys;
  Hpsmr.Env.run env ~for_:1.0;
  let m = Hpsmr.Psmr.metrics sys in
  Printf.printf "%-34s %8.1f kcps %8.2f ms  (barriers: %d)\n" name
    (Hpsmr.Smr.Metrics.kcps m ~from:0.4 ~till:1.0)
    (Hpsmr.Smr.Metrics.lat_mean_ms m)
    (Hpsmr.Psmr.barriers sys)

let () =
  print_endline "Independent commands (no conflicts):";
  run ~name:"  sequential SMR" ~approach:Hpsmr.Psmr.Sequential ~n_workers:1 ~dep_pct:0 ();
  run ~name:"  P-SMR, 2 workers" ~approach:Hpsmr.Psmr.Psmr ~n_workers:2 ~dep_pct:0 ();
  run ~name:"  P-SMR, 8 workers" ~approach:Hpsmr.Psmr.Psmr ~n_workers:8 ~dep_pct:0 ();
  print_endline "10% dependent commands (SDPE pays a 20us/command scheduler):";
  run ~name:"  SDPE (scheduler), 8 workers" ~approach:Hpsmr.Psmr.Sdpe ~n_workers:8
    ~dep_pct:10 ~sched_cost:2.0e-5 ();
  run ~name:"  P-SMR, 8 workers" ~approach:Hpsmr.Psmr.Psmr ~n_workers:8 ~dep_pct:10 ();
  print_endline "psmr demo done"
