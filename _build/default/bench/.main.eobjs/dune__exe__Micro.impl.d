bench/micro.ml: Analyze Bechamel Benchmark Btree Hashtbl Instance List Measure Printf Ringpaxos Sim Simnet Smr Staged Test Time Toolkit Util
