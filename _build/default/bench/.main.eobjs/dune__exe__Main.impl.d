bench/main.ml: Array Fig3 Fig4 Fig5 Fig6 Fig7 List Micro Printf Sys
