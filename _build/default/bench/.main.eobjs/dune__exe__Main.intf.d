bench/main.mli:
