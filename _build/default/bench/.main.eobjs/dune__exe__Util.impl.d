bench/util.ml: Printf Sim Simnet String
