bench/fig3.ml: Abcast Array List Option Paxos Printf Ringpaxos Sim Simnet Stdlib Util
