bench/fig7.ml: Cloud Float List Printf Util
