bench/fig6.ml: List Printf Psmr Sim Simnet Smr Util
