bench/fig5.ml: Abcast Array Fig3 Fun List Multiring Option Paxos Printf Ringpaxos Sim Simnet Util
