bench/fig4.ml: Array Btree List Printf Ringpaxos Sim Simnet Smr Stdlib Util
