(* Bechamel micro-benchmarks of the core data structures and a full
   simulated consensus instance. *)

open Bechamel
open Toolkit

let btree_insert =
  Test.make ~name:"btree.insert(seq)"
    (Staged.stage (fun () ->
         let t = Btree.create () in
         for i = 1 to 1000 do
           ignore (Btree.insert t i i)
         done))

let btree_mixed =
  Test.make ~name:"btree.insert+delete"
    (Staged.stage (fun () ->
         let t = Btree.create ~order:16 () in
         for i = 1 to 500 do
           ignore (Btree.insert t (i * 7 mod 997) i)
         done;
         for i = 1 to 500 do
           ignore (Btree.delete t (i * 13 mod 997))
         done))

let btree_range =
  let t = Btree.create () in
  let () =
    for i = 1 to 100_000 do
      ignore (Btree.insert t i i)
    done
  in
  Test.make ~name:"btree.range(1000 keys)"
    (Staged.stage (fun () -> ignore (Btree.range_count t ~lo:40_000 ~hi:41_000)))

let heap_ops =
  Test.make ~name:"heap.push+pop(1000)"
    (Staged.stage (fun () ->
         let h = Sim.Heap.create compare in
         for i = 999 downto 0 do
           Sim.Heap.push h i
         done;
         while not (Sim.Heap.is_empty h) do
           ignore (Sim.Heap.pop h)
         done))

let rng_draws =
  let r = Sim.Rng.create 1 in
  Test.make ~name:"rng.int(1000 draws)"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Sim.Rng.int r 1_000_000)
         done))

let zipf_draws =
  let r = Sim.Rng.create 2 in
  let z = Sim.Rng.Zipf.create r ~n:10_000 ~s:1.0 in
  Test.make ~name:"rng.zipf(1000 draws)"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Sim.Rng.Zipf.draw z)
         done))

type Simnet.payload += MicroCmd

let consensus_instance =
  Test.make ~name:"mring.one consensus instance (simulated)"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let net = Simnet.create engine (Sim.Rng.create 3) in
         let delivered = ref 0 in
         let mr =
           Ringpaxos.Mring.create net Ringpaxos.Mring.default_config ~n_proposers:1
             ~n_learners:1
             ~learner_parts:(fun _ -> [ 0 ])
             ~deliver:(fun ~learner:_ ~inst:_ _ -> incr delivered)
         in
         ignore (Ringpaxos.Mring.submit mr ~proposer:0 ~size:1024 MicroCmd);
         Sim.Engine.run engine ~until:0.05))

let lin_check =
  let history =
    List.init 8 (fun i ->
        { Smr.Linearizability.kind = (if i mod 2 = 0 then `Write i else `Read (Some (i - 1)));
          inv = float_of_int i;
          res = float_of_int i +. 0.5 })
  in
  Test.make ~name:"linearizability.check(8 ops)"
    (Staged.stage (fun () -> ignore (Smr.Linearizability.check ~init:None history)))

let benchmarks =
  Test.make_grouped ~name:"micro"
    [ btree_insert; btree_mixed; btree_range; heap_ops; rng_draws; zipf_draws;
      consensus_instance; lin_check ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances benchmarks in
  let results =
    List.map (fun inst -> Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) inst raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  Util.header "Micro-benchmarks (bechamel, monotonic clock, ns/run)";
  Hashtbl.iter
    (fun name tbl ->
      ignore name;
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-44s %12.1f ns\n" test est
          | _ -> Printf.printf "%-44s %12s\n" test "-")
        tbl)
    results
