(* Shared plumbing for the experiment harness: environments, load
   generation and paper-style output formatting. *)

type Simnet.payload += Payload of int

let fresh ?(seed = 7) ?config () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create ?config engine (Sim.Rng.create seed) in
  (engine, net)

let header title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n%!" title line

let cpu_pct busy ~from ~till = Sim.Stats.Busy.utilization busy ~from ~till
