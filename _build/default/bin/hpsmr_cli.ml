(* Command-line front end: quick demos and scenario runs without writing
   OCaml.  `hpsmr_cli --help` lists the commands. *)

open Cmdliner

type Simnet.payload += CliLoad

let peak_cmd =
  let proto =
    Arg.(
      required
      & pos 0 (some (enum [ ("mring", `Mring); ("uring", `Uring) ])) None
      & info [] ~docv:"PROTOCOL" ~doc:"mring or uring")
  in
  let duration =
    Arg.(value & opt float 2.0 & info [ "d"; "duration" ] ~doc:"Simulated seconds.")
  in
  let run proto duration =
    let env = Hpsmr.Env.create ~seed:11 () in
    let rec_ = Hpsmr.Abcast.Recorder.create env.engine in
    let stop =
      match proto with
      | `Mring ->
          let mr =
            Hpsmr.Ringpaxos.Mring.create env.net Hpsmr.Ringpaxos.Mring.default_config
              ~n_proposers:2 ~n_learners:2
              ~learner_parts:(fun _ -> [ 0 ])
              ~deliver:(fun ~learner ~inst:_ v ->
                if learner = 0 then Option.iter (Hpsmr.Abcast.Recorder.value rec_) v)
          in
          Hpsmr.Abcast.Loadgen.constant env.net ~rate_mbps:1500.0 ~size:8192 (fun sz ->
              ignore (Hpsmr.Ringpaxos.Mring.submit mr ~proposer:0 ~size:sz CliLoad);
              ignore (Hpsmr.Ringpaxos.Mring.submit mr ~proposer:1 ~size:sz CliLoad);
              true)
      | `Uring ->
          let ur =
            Hpsmr.Ringpaxos.Uring.create env.net Hpsmr.Ringpaxos.Uring.default_config
              ~positions:(Hpsmr.Ringpaxos.Uring.standard_positions ~n:5)
              ~deliver:(fun ~learner ~inst:_ v ->
                if learner = 0 then Hpsmr.Abcast.Recorder.value rec_ v)
          in
          let turn = ref 0 in
          Hpsmr.Abcast.Loadgen.constant env.net ~rate_mbps:1500.0 ~size:8192 (fun sz ->
              incr turn;
              ignore
                (Hpsmr.Ringpaxos.Uring.submit ur ~proposer:(!turn mod 5) ~size:sz CliLoad);
              true)
    in
    Hpsmr.Env.run env ~for_:duration;
    stop ();
    Printf.printf "delivered %.1f Mbps, %.0f msg/s, latency %.2f ms (trimmed mean)\n"
      (Hpsmr.Abcast.Recorder.mbps rec_ ~from:(duration /. 3.0) ~till:duration)
      (Hpsmr.Abcast.Recorder.msgs_per_sec rec_ ~from:(duration /. 3.0) ~till:duration)
      (Hpsmr.Abcast.Recorder.lat_trimmed_ms rec_)
  in
  Cmd.v
    (Cmd.info "peak" ~doc:"Measure peak throughput of M-Ring or U-Ring Paxos.")
    Term.(const run $ proto $ duration)

let cloud_cmd =
  let libs =
    [ ("spaxos", Hpsmr.Cloud.S_paxos);
      ("openreplica", Hpsmr.Cloud.Openreplica);
      ("uring", Hpsmr.Cloud.U_ring);
      ("libpaxos", Hpsmr.Cloud.Libpaxos);
      ("libpaxos+", Hpsmr.Cloud.Libpaxos_plus) ]
  in
  let lib =
    Arg.(required & pos 0 (some (enum libs)) None & info [] ~docv:"LIB" ~doc:"Paxos library.")
  in
  let kill =
    Arg.(
      value
      & opt (some float) None
      & info [ "kill-leader-at" ] ~doc:"Crash the leader at this time (seconds).")
  in
  let hetero = Arg.(value & flag & info [ "hetero" ] ~doc:"One replica 4x slower.") in
  let run lib kill hetero =
    let r = Hpsmr.Cloud.run ~lib ?kill_leader_at:kill ~hetero () in
    Printf.printf "steady %.1f Mbps, %.1f kcps, latency %.2f ms\n" r.Hpsmr.Cloud.mbps
      r.Hpsmr.Cloud.kcps r.Hpsmr.Cloud.lat_ms;
    (match kill with
    | Some _ ->
        Printf.printf "after the crash: outage %.1fs, recovered=%b\n" r.Hpsmr.Cloud.outage
          r.Hpsmr.Cloud.recovered
    | None -> ());
    List.iter (fun (t, v) -> Printf.printf "  t=%5.1f  %8.1f Mbps\n" t v) r.Hpsmr.Cloud.series
  in
  Cmd.v
    (Cmd.info "cloud" ~doc:"Run a Paxos library in the EC2-like environment (Ch. 7).")
    Term.(const run $ lib $ kill $ hetero)

let kv_cmd =
  let ops = Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Operations to run.") in
  let run n =
    let env = Hpsmr.Env.create ~seed:3 () in
    let kv = Hpsmr.Replicated_kv.create env ~replicas:3 in
    let remaining = ref n in
    let rec step i =
      if i <= n then
        Hpsmr.Replicated_kv.put kv ~key:i ~value:(2 * i) ~k:(fun () ->
            decr remaining;
            step (i + 1))
    in
    step 1;
    Hpsmr.Env.run env ~for_:30.0;
    Printf.printf "completed %d/%d puts in %.2f simulated seconds\n" (n - !remaining) n
      (Hpsmr.Env.now env)
  in
  Cmd.v
    (Cmd.info "kv" ~doc:"Closed-loop puts against the replicated KV quickstart service.")
    Term.(const run $ ops)

let () =
  let doc = "High-performance state-machine replication demos" in
  exit (Cmd.eval (Cmd.group (Cmd.info "hpsmr_cli" ~doc) [ peak_cmd; cloud_cmd; kv_cmd ]))
