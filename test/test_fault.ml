(* Tests for the fault-injection harness (lib/fault): the safety auditor's
   incremental checks, determinism of seeded chaos runs, and regression
   pins on the exact (protocol, seed) pairs that exposed latent protocol
   bugs — each pinned seed failed before its fix and must stay green. *)

(* --- Safety auditor -------------------------------------------------------- *)

let test_auditor_accepts_clean_history () =
  let s = Fault.Safety.create ~name:"clean" ~n_learners:3 in
  for uid = 1 to 50 do
    Fault.Safety.broadcast s uid
  done;
  for uid = 1 to 50 do
    for l = 0 to 2 do
      Fault.Safety.delivered s ~learner:l uid
    done
  done;
  let v = Fault.Safety.verdict s in
  Alcotest.(check bool) "ok" true v.ok;
  Alcotest.(check (list string)) "no violations" [] v.violations;
  Alcotest.(check int) "broadcasts" 50 v.broadcast

let test_auditor_flags_duplicate () =
  let s = Fault.Safety.create ~name:"dup" ~n_learners:2 in
  Fault.Safety.broadcast s 7;
  Fault.Safety.delivered s ~learner:0 7;
  Fault.Safety.delivered s ~learner:1 7;
  Fault.Safety.delivered s ~learner:0 7;
  let v = Fault.Safety.verdict s in
  Alcotest.(check bool) "not ok" false v.ok;
  Alcotest.(check bool) "names the duplicate" true
    (List.exists
       (fun msg ->
         let has needle =
           let nl = String.length needle and ml = String.length msg in
           let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
           at 0
         in
         has "no-duplication")
       v.violations)

let test_auditor_flags_order_divergence () =
  let s = Fault.Safety.create ~name:"order" ~n_learners:2 in
  Fault.Safety.broadcast s 1;
  Fault.Safety.broadcast s 2;
  (* Learner 0 fixes the canonical order 1;2 — learner 1 swaps it. *)
  Fault.Safety.delivered s ~learner:0 1;
  Fault.Safety.delivered s ~learner:0 2;
  Fault.Safety.delivered s ~learner:1 2;
  Fault.Safety.delivered s ~learner:1 1;
  let v = Fault.Safety.verdict s in
  Alcotest.(check bool) "not ok" false v.ok

let test_auditor_flags_creation () =
  let s = Fault.Safety.create ~name:"creation" ~n_learners:1 in
  Fault.Safety.delivered s ~learner:0 99 (* never broadcast *);
  let v = Fault.Safety.verdict s in
  Alcotest.(check bool) "not ok" false v.ok

let test_auditor_agreement_at_quiescence () =
  (* Learner 2 stops one delivery short of the others.  Violations
     accumulate in the auditor, so the two verdicts use separate
     instances fed the same history. *)
  let feed () =
    let s = Fault.Safety.create ~name:"agree" ~n_learners:3 in
    Fault.Safety.broadcast s 1;
    Fault.Safety.broadcast s 2;
    List.iter (fun l -> Fault.Safety.delivered s ~learner:l 1) [ 0; 1; 2 ];
    Fault.Safety.delivered s ~learner:0 2;
    Fault.Safety.delivered s ~learner:1 2;
    s
  in
  (* Uniform agreement must flag the laggard... *)
  let v = Fault.Safety.verdict (feed ()) in
  Alcotest.(check bool) "lagging learner breaks agreement" false v.ok;
  (* ...unless it is dead, in which case only alive learners count. *)
  let v' = Fault.Safety.verdict ~alive:[ 0; 1 ] (feed ()) in
  Alcotest.(check bool) "dead learner excused" true v'.ok

(* --- Chaos determinism ----------------------------------------------------- *)

let test_same_seed_same_outcome () =
  (* The seed is the repro: two runs of the same (protocol, seed) must
     produce identical verdicts, fault timelines and delivery counts. *)
  List.iter
    (fun protocol ->
      let a = Fault.Chaos.run_one ~protocol ~seed:3 ~duration:2.0 () in
      let b = Fault.Chaos.run_one ~protocol ~seed:3 ~duration:2.0 () in
      Alcotest.(check bool) (protocol ^ ": same verdict") a.Fault.Chaos.ok b.Fault.Chaos.ok;
      Alcotest.(check string) (protocol ^ ": same summary") a.summary b.summary;
      Alcotest.(check (list string))
        (protocol ^ ": same violations")
        a.violations b.violations;
      Alcotest.(check (list (pair (float 1e-9) string)))
        (protocol ^ ": same fault timeline")
        a.events b.events)
    [ "mring"; "uring"; "lcr" ]

let test_different_seeds_different_timelines () =
  let a = Fault.Chaos.run_one ~protocol:"mring" ~seed:1 ~duration:2.0 () in
  let b = Fault.Chaos.run_one ~protocol:"mring" ~seed:2 ~duration:2.0 () in
  Alcotest.(check bool) "timelines differ" false (a.Fault.Chaos.events = b.Fault.Chaos.events)

(* --- Regression pins ------------------------------------------------------- *)

(* Each of these (protocol, seed, duration) triples produced a safety
   violation before a protocol fix landed; the seed replays the exact
   fault schedule that exposed the bug.

   - mring seed 16:     coordinator crash after GC had pruned votes for
                        decided values; the new coordinator re-proposed
                        them (duplicate delivery).  Fixed by remembering
                        pruned vote uids ([x_done_uids]).
   - uring seed 18:     two position kills; decisions in flight through
                        the dead member were lost for everyone downstream
                        (uniform-agreement violation at quiescence).
                        Fixed by the Phase-1 catch-up protocol
                        ([m_log] + [UP1b.next]) and the outstanding-window
                        reset in [rebuild_ring].
   - multiring 12/13:   the mring failover-duplicate bug surfacing through
                        Multi-Ring's merge layer after [kill_coord].
   - lcr seed 1:        a body whose sender left the ring circulated
                        forever (the forwarding stop condition never
                        triggered), re-delivering on every revolution.
                        Fixed by the per-sender timestamp watermark.
   - mring-pressure
     seeds 1/13:        an acceptor killed with bytes still in service:
                        the stale service completions landing after
                        [Simnet.recover] drove the receive-buffer gauge
                        negative, and the crashed sender's connection
                        backlog replayed into the ring after the restart.
                        Fixed by the per-proc [rcvbuf_epoch] / per-conn
                        [c_epoch] guards and by [Simnet.kill] clearing the
                        victim's outgoing backlogs.
   - mring-reconfig
     seed 16:           the founding coordinator served its own undecided
                        vote to a learner's gap repair (repair responses
                        are taken as decisions) and then crashed inside
                        the handoff window: the takeover correctly no-op
                        filled the instance and the proposer's
                        resubmission re-decided the item under a second
                        instance — one learner delivered it twice.  Fixed
                        by serving only genuinely decided instances from
                        [RepairReq].
   - mring-join
     seed 0:            the chain head voted and its spontaneous Phase 2B
                        was lost to the joiner partition; with the round
                        unchanged, every retransmitted Phase 2A was a
                        duplicate and nothing restarted the chain — the
                        epoch's first instance hung forever and both
                        learners stalled behind it.  Fixed by having the
                        chain head re-send its Phase 2B on duplicate
                        Phase 2As. *)
let pinned =
  [ ("mring", 16); ("uring", 18); ("multiring", 12); ("multiring", 13); ("lcr", 1);
    ("mring-pressure", 1); ("mring-pressure", 13); ("mring-reconfig", 16);
    ("mring-join", 0) ]

let test_pinned_seeds_stay_green () =
  List.iter
    (fun (protocol, seed) ->
      let o = Fault.Chaos.run_one ~protocol ~seed ~duration:4.0 () in
      if not o.Fault.Chaos.ok then
        Alcotest.failf "%s seed %d regressed: %s" protocol seed
          (String.concat "; " o.violations))
    pinned

let test_smoke_every_protocol () =
  List.iter
    (fun protocol ->
      let o = Fault.Chaos.run_one ~protocol ~seed:0 ~duration:2.0 () in
      if not o.Fault.Chaos.ok then
        Alcotest.failf "%s seed 0 failed: %s" protocol (String.concat "; " o.violations))
    Fault.Chaos.protocols

let suite =
  [ Alcotest.test_case "safety: accepts a clean history" `Quick test_auditor_accepts_clean_history;
    Alcotest.test_case "safety: flags duplicate delivery" `Quick test_auditor_flags_duplicate;
    Alcotest.test_case "safety: flags order divergence" `Quick test_auditor_flags_order_divergence;
    Alcotest.test_case "safety: flags delivery without broadcast" `Quick
      test_auditor_flags_creation;
    Alcotest.test_case "safety: uniform agreement at quiescence" `Quick
      test_auditor_agreement_at_quiescence;
    Alcotest.test_case "chaos: same seed replays the same run" `Quick test_same_seed_same_outcome;
    Alcotest.test_case "chaos: different seeds diverge" `Quick
      test_different_seeds_different_timelines;
    Alcotest.test_case "chaos: pinned regression seeds stay green" `Slow
      test_pinned_seeds_stay_green;
    Alcotest.test_case "chaos: every protocol survives seed 0" `Slow test_smoke_every_protocol ]
