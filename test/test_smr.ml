(* Tests for the SMR layer: replicated B+-tree over M-Ring Paxos with
   speculation and state partitioning (Chapter 4), the client-server
   baseline, and the linearizability checker. *)

module BS = Smr.Btree_service
module W = Smr.Workload
module L = Smr.Linearizability

let make_env seed =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  (engine, net)

(* Populate partition [p] of [n_parts] with every key it owns. *)
let dense_service ~key_range ~n_parts p =
  let bs = BS.create () in
  let plo = (p * (key_range + 1) / n_parts) + if p = 0 then 1 else 0 in
  let phi = ((p + 1) * (key_range + 1) / n_parts) - 1 in
  for k = Stdlib.max 1 plo to phi do
    ignore (Btree.insert bs.tree k k)
  done;
  bs

let key_range = 20_000

let make_system ?(partitions = 1) ?(replicas = 2) ?(speculative = false) ?(clients = 4)
    ?(kind = W.Ins_del_single) ?(cross_pct = 0) net =
  let cfg =
    { Smr.System.default_config with
      mring = { Ringpaxos.Mring.default_config with partitions };
      replicas_per_partition = replicas;
      speculative }
  in
  let services = Array.init (partitions * replicas) (fun l ->
      dense_service ~key_range ~n_parts:partitions (l / replicas))
  in
  let wl =
    W.create ~cross_pct ~query_span:100 (Sim.Rng.create 5) kind ~key_range
      ~n_partitions:partitions
  in
  let sys =
    Smr.System.create net cfg
      ~services:(fun l -> services.(l).service)
      ~n_clients:clients
      ~gen:(fun _ -> W.next wl)
  in
  (sys, services)

let test_smr_executes_and_responds () =
  let engine, net = make_env 71 in
  let sys, _ = make_system net in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.5;
  let m = Smr.System.metrics sys in
  Alcotest.(check bool) "commands complete" true (Smr.Metrics.completed m > 50);
  Alcotest.(check bool) "latency sane (<20ms)" true (Smr.Metrics.lat_mean_ms m < 20.0)

let test_smr_replicas_identical () =
  let engine, net = make_env 72 in
  let sys, services = make_system ~replicas:3 ~clients:8 net in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.5;
  (* Stop clients by running past the horizon and comparing state. *)
  let f0 = BS.fingerprint services.(0) in
  Alcotest.(check bool) "work was done" true (Smr.System.executed sys ~learner:0 > 50);
  Alcotest.(check int) "replica 1 state = replica 0" f0 (BS.fingerprint services.(1));
  Alcotest.(check int) "replica 2 state = replica 0" f0 (BS.fingerprint services.(2));
  Btree.check services.(0).tree

let test_smr_queries_designated_responder () =
  let engine, net = make_env 73 in
  let sys, _ = make_system ~kind:W.Queries ~replicas:2 net in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.5;
  (* Only one replica executes each query: total executions across the two
     replicas should be about the number of completed commands, not 2x. *)
  let m = Smr.System.metrics sys in
  let total = Smr.System.executed sys ~learner:0 + Smr.System.executed sys ~learner:1 in
  let completed = Smr.Metrics.completed m in
  Alcotest.(check bool) "completed > 0" true (completed > 0);
  Alcotest.(check bool) "queries not executed by all replicas" true
    (total < completed + (completed / 2) + 8)

let test_smr_updates_executed_by_all () =
  let engine, net = make_env 74 in
  let sys, _ = make_system ~kind:W.Ins_del_single ~replicas:2 net in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.3;
  let m = Smr.System.metrics sys in
  let completed = Smr.Metrics.completed m in
  Alcotest.(check bool) "both replicas executed every update" true
    (Smr.System.executed sys ~learner:0 >= completed
    && Smr.System.executed sys ~learner:1 >= completed)

let test_smr_speculation_reduces_latency () =
  let run speculative =
    let engine, net = make_env 75 in
    let sys, _ = make_system ~kind:W.Queries ~speculative ~clients:2 net in
    Smr.System.start sys;
    Sim.Engine.run engine ~until:0.6;
    let m = Smr.System.metrics sys in
    (Smr.Metrics.lat_mean_ms m, Smr.Metrics.completed m)
  in
  let lat_plain, n_plain = run false in
  let lat_spec, n_spec = run true in
  Alcotest.(check bool) "both complete work" true (n_plain > 20 && n_spec > 20);
  Alcotest.(check bool)
    (Printf.sprintf "speculation not slower (%.3f vs %.3f ms)" lat_spec lat_plain)
    true
    (lat_spec <= lat_plain *. 1.02)

let test_smr_speculation_state_correct () =
  let engine, net = make_env 76 in
  let sys, services = make_system ~kind:W.Ins_del_batch ~speculative:true ~clients:4 net in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.5;
  Alcotest.(check int) "speculative replicas agree"
    (BS.fingerprint services.(0))
    (BS.fingerprint services.(1));
  Btree.check services.(0).tree

let test_smr_partitioning_splits_load () =
  let engine, net = make_env 77 in
  let sys, _ =
    make_system ~partitions:2 ~replicas:2 ~kind:W.Ins_del_single ~clients:8 net
  in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.5;
  let per_learner = List.init 4 (fun l -> Smr.System.executed sys ~learner:l) in
  (* Partition 0 replicas execute only their keys, likewise partition 1. *)
  let m = Smr.System.metrics sys in
  let completed = Smr.Metrics.completed m in
  let total = List.fold_left ( + ) 0 per_learner in
  Alcotest.(check bool) "completed" true (completed > 50);
  (* Each command executed by the 2 replicas of exactly one partition. *)
  Alcotest.(check bool)
    (Printf.sprintf "total %d ~ 2x completed %d" total completed)
    true
    (total <= (2 * completed) + 16 && total >= 2 * (completed - 16))

let test_smr_cross_partition_query_merged () =
  let engine, net = make_env 78 in
  let sys, _ =
    make_system ~partitions:2 ~replicas:2 ~kind:W.Queries ~cross_pct:100 ~clients:4 net
  in
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.5;
  let m = Smr.System.metrics sys in
  Alcotest.(check bool) "cross-partition queries complete" true
    (Smr.Metrics.completed m > 20)

let test_cs_baseline_faster_than_smr () =
  (* Fig. 4.1/4.3: the non-replicated server has lower latency. *)
  let engine, net = make_env 79 in
  let wl = W.create (Sim.Rng.create 5) W.Queries ~key_range ~n_partitions:1 in
  let bs = dense_service ~key_range ~n_parts:1 0 in
  let cs =
    Smr.Cs.create net ~n_threads:1 ~service:bs.service ~n_clients:4
      ~gen:(fun _ -> W.next wl)
  in
  Smr.Cs.start cs;
  Sim.Engine.run engine ~until:0.5;
  let cs_lat = Smr.Metrics.lat_mean_ms (Smr.Cs.metrics cs) in
  let engine2, net2 = make_env 79 in
  let sys, _ = make_system ~kind:W.Queries ~clients:4 net2 in
  Smr.System.start sys;
  Sim.Engine.run engine2 ~until:0.5;
  let smr_lat = Smr.Metrics.lat_mean_ms (Smr.System.metrics sys) in
  Alcotest.(check bool) "cs completed" true (Smr.Metrics.completed (Smr.Cs.metrics cs) > 50);
  Alcotest.(check bool)
    (Printf.sprintf "CS latency (%.3f) < SMR latency (%.3f)" cs_lat smr_lat)
    true (cs_lat < smr_lat)

let test_workload_partition_of () =
  Alcotest.(check int) "low key" 0 (W.partition_of ~key_range:1000 ~n_partitions:2 10);
  Alcotest.(check int) "high key" 1 (W.partition_of ~key_range:1000 ~n_partitions:2 900);
  Alcotest.(check int) "clamped" 3 (W.partition_of ~key_range:1000 ~n_partitions:4 1000)

let test_workload_cross_partition () =
  let wl =
    W.create ~cross_pct:100 ~query_span:100 (Sim.Rng.create 3) W.Queries ~key_range:10_000
      ~n_partitions:2
  in
  let all_cross =
    List.init 50 (fun _ -> W.next wl) |> List.for_all (fun c -> List.length c.W.parts = 2)
  in
  Alcotest.(check bool) "100% cross-partition" true all_cross;
  let wl0 =
    W.create ~cross_pct:0 ~query_span:100 (Sim.Rng.create 3) W.Queries ~key_range:10_000
      ~n_partitions:2
  in
  let none_cross =
    List.init 50 (fun _ -> W.next wl0) |> List.for_all (fun c -> List.length c.W.parts = 1)
  in
  Alcotest.(check bool) "0% cross-partition" true none_cross

(* --- linearizability checker ----------------------------------------------- *)

let test_lin_accepts_sequential () =
  let h =
    [ { L.kind = `Write 1; inv = 0.0; res = 1.0 };
      { L.kind = `Read (Some 1); inv = 2.0; res = 3.0 } ]
  in
  Alcotest.(check bool) "sequential history ok" true (L.check ~init:None h)

let test_lin_rejects_stale_read () =
  (* Fig 2.1(a): read overlapping nothing returns a stale value after a
     write completed. *)
  let h =
    [ { L.kind = `Write 20; inv = 0.0; res = 1.0 };
      { L.kind = `Read (Some 10); inv = 2.0; res = 3.0 } ]
  in
  Alcotest.(check bool) "stale read rejected" false (L.check ~init:(Some 10) h)

let test_lin_accepts_concurrent_reorder () =
  (* Fig 2.1(b): the read overlaps the write, so either order is fine. *)
  let h =
    [ { L.kind = `Write 20; inv = 0.0; res = 2.0 };
      { L.kind = `Read (Some 10); inv = 0.5; res = 1.0 };
      { L.kind = `Read (Some 20); inv = 2.5; res = 3.0 } ]
  in
  Alcotest.(check bool) "concurrent reorder ok" true (L.check ~init:(Some 10) h)

let test_seq_consistent_but_not_linearizable () =
  (* Sequential consistency permits reading the old value even after the
     write responded, if issued by another process. *)
  let writer = [ { L.kind = `Write 20; inv = 0.0; res = 1.0 } ] in
  let reader = [ { L.kind = `Read (Some 10); inv = 2.0; res = 3.0 } ] in
  Alcotest.(check bool) "not linearizable" false
    (L.check ~init:(Some 10) (writer @ reader));
  Alcotest.(check bool) "but sequentially consistent" true
    (L.sequentially_consistent ~init:(Some 10) [ writer; reader ])

let test_smr_history_linearizable () =
  (* End to end: run a small replicated register through the SMR system and
     check the observed history. *)
  let engine, net = make_env 80 in
  let value = ref None in
  let service =
    { Smr.Service.execute =
        (fun op ->
          match op with
          | BS.Insert { key = _; value = v } ->
              value := Some v;
              { resp_size = 64; cost = 1.0e-5; undo = None }
          | BS.Query _ ->
              let observed = match !value with Some v -> v | None -> -1 in
              { resp_size = 64 + observed; cost = 1.0e-5; undo = None }
          | _ -> { resp_size = 64; cost = 0.0; undo = None });
      rollback_cost = 0.0 }
  in
  (* Intercept executions to build the history: wrap execute. *)
  let history = ref [] in
  let wrapped l =
    ignore l;
    { service with
      Smr.Service.execute =
        (fun op ->
          let o = service.Smr.Service.execute op in
          o) }
  in
  let ops = [| BS.Insert { key = 1; value = 42 }; BS.Query { lo = 1; hi = 1 } |] in
  let count = ref 0 in
  let cfg = { Smr.System.default_config with replicas_per_partition = 1 } in
  let sys =
    Smr.System.create net cfg
      ~services:(fun l -> wrapped l)
      ~n_clients:2
      ~gen:(fun client ->
        incr count;
        { W.op = ops.(client mod 2); parts = [ 0 ]; size = 128 })
  in
  ignore history;
  Smr.System.start sys;
  Sim.Engine.run engine ~until:0.2;
  Alcotest.(check bool) "register SMR runs" true
    (Smr.Metrics.completed (Smr.System.metrics sys) > 10)

let suite =
  [ Alcotest.test_case "smr executes and responds" `Quick test_smr_executes_and_responds;
    Alcotest.test_case "replicas identical state" `Quick test_smr_replicas_identical;
    Alcotest.test_case "queries: designated responder" `Quick
      test_smr_queries_designated_responder;
    Alcotest.test_case "updates: executed by all" `Quick test_smr_updates_executed_by_all;
    Alcotest.test_case "speculation reduces latency" `Quick
      test_smr_speculation_reduces_latency;
    Alcotest.test_case "speculation keeps state correct" `Quick
      test_smr_speculation_state_correct;
    Alcotest.test_case "partitioning splits load" `Quick test_smr_partitioning_splits_load;
    Alcotest.test_case "cross-partition merge" `Quick test_smr_cross_partition_query_merged;
    Alcotest.test_case "CS latency < SMR latency" `Quick test_cs_baseline_faster_than_smr;
    Alcotest.test_case "workload partition_of" `Quick test_workload_partition_of;
    Alcotest.test_case "workload cross-partition control" `Quick test_workload_cross_partition;
    Alcotest.test_case "lin: sequential ok" `Quick test_lin_accepts_sequential;
    Alcotest.test_case "lin: stale read rejected" `Quick test_lin_rejects_stale_read;
    Alcotest.test_case "lin: concurrent reorder" `Quick test_lin_accepts_concurrent_reorder;
    Alcotest.test_case "seq-consistent vs linearizable (Fig 2.1)" `Quick
      test_seq_consistent_but_not_linearizable;
    Alcotest.test_case "register SMR end-to-end" `Quick test_smr_history_linearizable ]

let test_batch_undo_restores_tree () =
  let bs = BS.create () in
  for k = 1 to 100 do
    ignore (Btree.insert bs.tree k k)
  done;
  let before = BS.fingerprint bs in
  let outcome =
    bs.service.execute
      (BS.Batch
         [ BS.Insert { key = 500; value = 5 };
           BS.Delete { key = 50 };
           BS.Insert { key = 50; value = 999 };
           BS.Delete { key = 501 } ])
  in
  Alcotest.(check bool) "state changed" true (BS.fingerprint bs <> before);
  (match outcome.undo with Some u -> u () | None -> Alcotest.fail "batch must be undoable");
  Alcotest.(check int) "undo restores the exact tree" before (BS.fingerprint bs);
  Btree.check bs.tree

let test_workload_batch_single_partition () =
  let wl = W.create (Sim.Rng.create 9) W.Ins_del_batch ~key_range:10_000 ~n_partitions:4 in
  for _ = 1 to 50 do
    let c = W.next wl in
    (match c.op with
    | BS.Batch ops ->
        Alcotest.(check int) "seven updates" 7 (List.length ops);
        let parts =
          List.map
            (fun op ->
              match op with
              | BS.Insert { key; _ } | BS.Delete { key } ->
                  W.partition_of ~key_range:10_000 ~n_partitions:4 key
              | _ -> -1)
            ops
        in
        Alcotest.(check int) "all in the command's partition" 1
          (List.length (List.sort_uniq compare parts));
        Alcotest.(check (list int)) "matches declared parts"
          (List.sort_uniq compare parts) c.parts
    | _ -> Alcotest.fail "expected a batch")
  done

let suite =
  suite
  @ [ Alcotest.test_case "batch undo restores tree" `Quick test_batch_undo_restores_tree;
      Alcotest.test_case "batch workload partition containment" `Quick
        test_workload_batch_single_partition ]

(* --- open-loop workload generator --------------------------------------------- *)

module OL = W.Open_loop

let test_open_loop_arrivals_monotone_and_paced () =
  let wl = OL.create (Sim.Rng.create 3) ~key_range:10_000 ~rate:(OL.Constant 10_000.0) in
  let last = ref 0.0 and n = ref 0 in
  while OL.clock wl < 1.0 do
    let a = OL.next wl in
    Alcotest.(check bool) "arrival times monotone" true (a.OL.at >= !last);
    last := a.OL.at;
    incr n
  done;
  Alcotest.(check int) "generated counter" !n (OL.generated wl);
  (* Poisson with rate 10k over 1s: well within 20% of the mean. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate in the ballpark (%d arrivals)" !n)
    true
    (!n > 8_000 && !n < 12_000)

let test_open_loop_keysets_match_ops () =
  let wl =
    OL.create ~read_pct:40 (Sim.Rng.create 4) ~key_range:10_000
      ~rate:(OL.Constant 5_000.0)
  in
  for _ = 1 to 2_000 do
    let a = OL.next wl in
    match a.OL.op with
    | BS.Insert { key; _ } | BS.Delete { key } ->
        (* Read-modify-write: both sets cover exactly the touched key. *)
        Alcotest.(check bool) "write set covers the key" true
          (Btree.Keyset.overlaps a.OL.writes (Btree.Keyset.singleton key));
        Alcotest.(check bool) "read set covers the key" true
          (Btree.Keyset.overlaps a.OL.reads (Btree.Keyset.singleton key))
    | BS.Query { lo; hi } ->
        Alcotest.(check bool) "queries write nothing" true
          (Btree.Keyset.is_empty a.OL.writes);
        Alcotest.(check bool) "read set covers the range" true
          (Btree.Keyset.overlaps a.OL.reads (Btree.Keyset.range ~lo ~hi))
    | _ -> Alcotest.fail "unexpected op"
  done

let test_open_loop_zipf_skew () =
  (* With zipf skew the bottom 1% of the key space absorbs far more than
     its uniform share of updates. *)
  let updates_in_hot_1pct ~zipf_s =
    let wl =
      OL.create ~zipf_s ~read_pct:0 (Sim.Rng.create 5) ~key_range:100_000
        ~rate:(OL.Constant 10_000.0)
    in
    let hot = ref 0 and total = ref 0 in
    for _ = 1 to 10_000 do
      match (OL.next wl).OL.op with
      | BS.Insert { key; _ } | BS.Delete { key } ->
          incr total;
          if key <= 1_000 then incr hot
      | _ -> ()
    done;
    float_of_int !hot /. float_of_int !total
  in
  let uniform = updates_in_hot_1pct ~zipf_s:0.0 in
  let skewed = updates_in_hot_1pct ~zipf_s:1.2 in
  Alcotest.(check bool)
    (Printf.sprintf "uniform ~1%% (%.3f), zipf much more (%.3f)" uniform skewed)
    true
    (uniform < 0.05 && skewed > 10.0 *. uniform)

let test_open_loop_storm_and_rate_curve () =
  (* A hot-partition storm redirects keys to the bottom 1% during its
     window, and the Storm curve raises the arrival rate there. *)
  let wl =
    OL.create ~read_pct:0 ~hot_storm:(0.4, 0.2, 80) (Sim.Rng.create 6)
      ~key_range:100_000
      ~rate:(OL.Storm { base = 5_000.0; peak = 20_000.0; at = 0.4; len = 0.2 })
  in
  Alcotest.(check bool) "rate follows the curve" true
    (OL.rate_at wl 0.1 = 5_000.0 && OL.rate_at wl 0.5 = 20_000.0);
  let in_hot = ref 0 and in_total = ref 0 in
  let out_hot = ref 0 and out_total = ref 0 in
  while OL.clock wl < 1.0 do
    let a = OL.next wl in
    match a.OL.op with
    | BS.Insert { key; _ } | BS.Delete { key } ->
        let stormy = a.OL.at >= 0.4 && a.OL.at < 0.6 in
        if stormy then incr in_total else incr out_total;
        if key <= 1_000 then if stormy then incr in_hot else incr out_hot
    | _ -> ()
  done;
  let frac h t = float_of_int !h /. float_of_int (max 1 !t) in
  Alcotest.(check bool)
    (Printf.sprintf "storm concentrates keys (%.2f in, %.2f out)"
       (frac in_hot in_total) (frac out_hot out_total))
    true
    (frac in_hot in_total > 0.5 && frac out_hot out_total < 0.05);
  (* The storm window also saw ~4x the arrivals of an equal quiet window. *)
  Alcotest.(check bool)
    (Printf.sprintf "storm raises arrival rate (%d vs %d)" !in_total !out_total)
    true
    (float_of_int !in_total > 2.0 *. (float_of_int !out_total /. 4.0))

let suite =
  suite
  @ [ Alcotest.test_case "open loop: monotone, Poisson-paced" `Quick
        test_open_loop_arrivals_monotone_and_paced;
      Alcotest.test_case "open loop: keysets match ops" `Quick
        test_open_loop_keysets_match_ops;
      Alcotest.test_case "open loop: zipf skew" `Quick test_open_loop_zipf_skew;
      Alcotest.test_case "open loop: storm + rate curve" `Quick
        test_open_loop_storm_and_rate_curve ]

(* --- open loop: peek / YCSB mixes / piecewise curves --------------------- *)

let test_open_loop_peek_semantics () =
  let wl =
    OL.create (Sim.Rng.create 3) ~key_range:1_000 ~rate:(OL.Constant 1_000.0)
  in
  let p1 = OL.peek wl in
  Alcotest.(check int) "peek does not count" 0 (OL.generated wl);
  let p2 = OL.peek wl in
  Alcotest.(check bool) "peek is idempotent" true
    (p1.OL.at = p2.OL.at && p1.OL.op == p2.OL.op);
  let a = OL.next wl in
  Alcotest.(check bool) "next returns the peeked arrival" true
    (a.OL.at = p1.OL.at && a.OL.op == p1.OL.op);
  Alcotest.(check int) "next counts" 1 (OL.generated wl);
  let b = OL.next wl in
  Alcotest.(check bool) "arrivals stay monotone past a peek" true
    (b.OL.at > a.OL.at);
  Alcotest.(check int) "two consumed" 2 (OL.generated wl)

let test_open_loop_seq_boundaries () =
  (* Half-open segments: the boundary instant belongs to the next segment
     only, inner curves see segment-local time, the last runs forever. *)
  let wl =
    OL.create (Sim.Rng.create 4) ~key_range:1_000
      ~rate:
        (OL.Seq
           [ (OL.Constant 100.0, 1.0);
             (OL.Ramp { from_rate = 200.0; to_rate = 400.0; over = 2.0 }, 2.0);
             (OL.Constant 50.0, 1.0) ])
  in
  Alcotest.(check (float 1e-9)) "first segment" 100.0 (OL.rate_at wl 0.5);
  Alcotest.(check (float 1e-9)) "boundary belongs to next segment" 200.0
    (OL.rate_at wl 1.0);
  Alcotest.(check (float 1e-6)) "ramp sees segment-local time" 300.0
    (OL.rate_at wl 2.0);
  Alcotest.(check (float 1e-9)) "boundary into last segment" 50.0
    (OL.rate_at wl 3.0);
  Alcotest.(check (float 1e-9)) "last segment runs forever" 50.0
    (OL.rate_at wl 10.0)

let test_open_loop_op_mix_and_inserts () =
  let key_range = 10_000 in
  let wl =
    OL.create
      ~ops:[ (OL.Read, 40); (OL.Update, 30); (OL.Insert, 20); (OL.Scan, 10) ]
      ~dist:OL.Uniform (Sim.Rng.create 5) ~key_range
      ~rate:(OL.Constant 10_000.0)
  in
  let reads = ref 0 and updates = ref 0 and inserts = ref 0 and scans = ref 0 in
  let n = 4_000 in
  for _ = 1 to n do
    match (OL.next wl).OL.op with
    | BS.Query { lo; hi } -> if lo = hi then incr reads else incr scans
    | BS.Insert { key; _ } ->
        (* Inserts allocate fresh keys above the preloaded range. *)
        if key > key_range then incr inserts else incr updates
    | BS.Delete _ -> incr updates
    | _ -> ()
  done;
  let frac r = float_of_int !r /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mix close to weights (%.2f/%.2f/%.2f/%.2f)" (frac reads)
       (frac updates) (frac inserts) (frac scans))
    true
    (abs_float (frac reads -. 0.40) < 0.05
    && abs_float (frac updates -. 0.30) < 0.05
    && abs_float (frac inserts -. 0.20) < 0.05
    && abs_float (frac scans -. 0.10) < 0.05);
  Alcotest.(check int) "max_key tracks allocations" (key_range + !inserts)
    (OL.max_key wl)

let test_open_loop_latest_skew () =
  (* Latest-key distribution (YCSB-D): reads concentrate near the newest
     inserted keys, not near key 0 as plain zipf would. *)
  let wl =
    OL.create
      ~ops:[ (OL.Read, 95); (OL.Insert, 5) ]
      ~dist:(OL.Latest 0.99) (Sim.Rng.create 6) ~key_range:100_000
      ~rate:(OL.Constant 10_000.0)
  in
  let near = ref 0 and total = ref 0 in
  for _ = 1 to 5_000 do
    match (OL.next wl).OL.op with
    | BS.Query { lo; hi } when lo = hi ->
        incr total;
        if OL.max_key wl - lo < 1_000 then incr near
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "reads concentrate near newest keys (%.2f)"
       (float_of_int !near /. float_of_int (max 1 !total)))
    true
    (float_of_int !near /. float_of_int (max 1 !total) > 0.5)

let test_open_loop_update_values_unique () =
  (* Every update carries a unique value — what makes write responses
     identifiable in a linearizability history. *)
  let wl =
    OL.create
      ~ops:[ (OL.Update, 100) ]
      ~dist:OL.Uniform (Sim.Rng.create 7) ~key_range:100
      ~rate:(OL.Constant 10_000.0)
  in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 2_000 do
    match (OL.next wl).OL.op with
    | BS.Insert { value; _ } ->
        Alcotest.(check bool) "value not reused" false (Hashtbl.mem seen value);
        Hashtbl.replace seen value ()
    | _ -> ()
  done;
  Alcotest.(check bool) "updates flowed" true (Hashtbl.length seen > 1_000)

(* --- multi-key linearizability checker ----------------------------------- *)

let test_kv_checker_accepts () =
  let h =
    [ { L.Kv.key = 1; kind = `Write (Some 10); inv = 0.0; res = 1.0 };
      { L.Kv.key = 2; kind = `Read None; inv = 0.5; res = 0.6 };
      { L.Kv.key = 1; kind = `Read (Some 10); inv = 1.5; res = 1.6 };
      { L.Kv.key = 1; kind = `Write None; inv = 2.0; res = 3.0 };
      { L.Kv.key = 1; kind = `Read None; inv = 3.5; res = 3.6 };
      (* Applied but never acknowledged: open response time. *)
      { L.Kv.key = 2; kind = `Write (Some 7); inv = 3.0; res = infinity } ]
  in
  Alcotest.(check bool) "interleaved multi-key history with delete" true
    (L.Kv.check ~init:(fun _ -> None) h)

let test_kv_checker_rejects_stale_read () =
  let init k = if k = 1 then Some 1 else None in
  let with_read inv =
    [ { L.Kv.key = 1; kind = `Write (Some 2); inv = 1.0; res = 2.0 };
      { L.Kv.key = 1; kind = `Read (Some 1); inv; res = inv +. 0.1 } ]
  in
  (* A read overlapping the write may still observe the old value... *)
  Alcotest.(check bool) "overlapping read of old value ok" true
    (L.Kv.check ~init (with_read 1.2));
  (* ...but a read invoked after the write responded may not: this is the
     stale-local-read shape a broken lease produces. *)
  Alcotest.(check bool) "stale read rejected" false
    (L.Kv.check ~init (with_read 3.0))

let test_kv_checker_respects_init () =
  let h = [ { L.Kv.key = 5; kind = `Read (Some 42); inv = 0.0; res = 0.1 } ] in
  Alcotest.(check bool) "read of initial value" true
    (L.Kv.check ~init:(fun k -> if k = 5 then Some 42 else None) h);
  Alcotest.(check bool) "read of absent key rejected" false
    (L.Kv.check ~init:(fun _ -> None) h)

let suite =
  suite
  @ [ Alcotest.test_case "open loop: peek semantics" `Quick
        test_open_loop_peek_semantics;
      Alcotest.test_case "open loop: seq curve boundaries" `Quick
        test_open_loop_seq_boundaries;
      Alcotest.test_case "open loop: op mix + fresh inserts" `Quick
        test_open_loop_op_mix_and_inserts;
      Alcotest.test_case "open loop: latest-key skew" `Quick
        test_open_loop_latest_skew;
      Alcotest.test_case "open loop: unique update values" `Quick
        test_open_loop_update_values_unique;
      Alcotest.test_case "kv checker: accepts valid history" `Quick
        test_kv_checker_accepts;
      Alcotest.test_case "kv checker: rejects stale read" `Quick
        test_kv_checker_rejects_stale_read;
      Alcotest.test_case "kv checker: respects init" `Quick
        test_kv_checker_respects_init ]
