(* Tests for the replicated KV service and its lease-based read tier. *)

module OL = Smr.Workload.Open_loop

let mk ?(config = Kv.default_config) ?(n_clients = 4) ?(seed = 7) () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create seed) in
  let sys = Kv.create net config ~n_clients in
  (engine, net, sys)

(* A small verify-sized deployment: tiny key space, empty initial tree,
   history recording on, short leases so expiry paths run. *)
let verify_config =
  { Kv.default_config with
    n_replicas = 3;
    n_workers = 2;
    leases = true;
    lease_dur = 0.05;
    lease_backoff = 0.02;
    read_timeout = 0.05;
    initial_keys = 0;
    key_range = 32;
    record_history = true }

let drive ?(seed = 7) ?(until = 1.0) ?(drain = 0.5) ~config ~rate () =
  let engine, net, sys = mk ~config ~seed () in
  let wl =
    OL.create
      ~ops:[ (OL.Read, 50); (OL.Update, 50) ]
      ~dist:(OL.Zipf 0.99) (Sim.Rng.create (seed + 1))
      ~key_range:config.Kv.key_range ~rate:(OL.Constant rate)
  in
  Kv.start_open sys wl ~until;
  Sim.Engine.run engine ~until:(until +. drain);
  ignore net;
  (sys, wl)

let test_kv_completes () =
  let config = { Kv.default_config with initial_keys = 1_000; key_range = 10_000 } in
  let sys, wl = drive ~config ~rate:2_000.0 ~until:0.5 () in
  Alcotest.(check bool) "arrivals generated" true (OL.generated wl > 500);
  Alcotest.(check bool) "commands executed" true (Kv.executed sys > 100);
  let classes = Kv.Slo.classes (Kv.slo sys) in
  Alcotest.(check bool) "update class measured" true
    (List.mem "update" classes);
  Alcotest.(check bool) "some read class measured" true
    (List.mem "read-local" classes || List.mem "read" classes);
  Alcotest.(check bool) "no stuck write responses" true
    (Kv.pending_writes sys = 0)

let test_kv_local_reads_served () =
  let config =
    { Kv.default_config with initial_keys = 1_000; key_range = 10_000 }
  in
  let engine, _net, sys = mk ~config () in
  (* Read-only workload: leases stay valid, so reads are served locally. *)
  let wl =
    OL.create ~ops:[ (OL.Read, 100) ] ~dist:(OL.Zipf 0.99)
      (Sim.Rng.create 11) ~key_range:10_000 ~rate:(OL.Constant 2_000.0)
  in
  Kv.start_open sys wl ~until:0.5;
  Sim.Engine.run engine ~until:1.0;
  Alcotest.(check bool) "local reads served" true
    (Kv.counter sys "kv_local_reads" > 500);
  Alcotest.(check bool) "grants flowed" true
    (Kv.counter sys "kv_lease_grants" > 0);
  (* Read-only: nothing ever invalidates a lease. *)
  Alcotest.(check int) "no invalidations" 0
    (Kv.counter sys "kv_lease_invalidations")

let test_kv_writes_invalidate_leases () =
  let sys, _ = drive ~config:verify_config ~rate:500.0 ~until:0.5 () in
  Alcotest.(check bool) "invalidations happened" true
    (Kv.counter sys "kv_lease_invalidations" > 0);
  Alcotest.(check bool) "epochs bumped" true
    (Kv.lease_epoch sys ~replica:0 > 0)

let test_kv_replicas_agree () =
  let sys, _ = drive ~config:verify_config ~rate:500.0 () in
  let f0 = Kv.state_fingerprint_at sys 0 in
  for r = 1 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d fingerprint" r)
      f0
      (Kv.state_fingerprint_at sys r)
  done

let test_kv_linearizable () =
  let sys, _ = drive ~config:verify_config ~rate:300.0 () in
  Alcotest.(check bool) "history non-trivial" true
    (List.length (Kv.history sys) > 100);
  Alcotest.(check bool) "local reads occurred" true
    (Kv.counter sys "kv_local_reads" > 0);
  Alcotest.(check bool) "linearizable" true (Kv.check_history sys)

(* The deliberately-broken-lease regression: replica 2 keeps serving local
   reads after its lease expired or was invalidated, while a fault rule
   hides all other traffic from it (so its tree goes stale but reads and
   their responses still flow).  Conflicting writes commit and respond via
   the lease-expiry deadline; later local reads at the stale replica then
   return overwritten values — which the Kv linearizability checker must
   reject. *)
let test_kv_broken_lease_caught () =
  let config = verify_config in
  let engine, net, sys = mk ~config ~seed:13 () in
  Kv.Testing.break_leases sys;
  let inj = Fault.Injector.create net ~seed:13 in
  let stale_pid = Simnet.pid (Kv.replica_proc sys 2) in
  Fault.Injector.rule inj ~at:0.2 ~dur:10.0 ~drop:1.0
    ~applies:(fun m ~dst ->
      Simnet.pid dst = stale_pid
      && match m.Simnet.payload with Kv.KReadReq _ -> false | _ -> true)
    "isolate replica 2 (reads still reach it)";
  let wl =
    OL.create
      ~ops:[ (OL.Read, 50); (OL.Update, 50) ]
      ~dist:(OL.Zipf 0.99) (Sim.Rng.create 14) ~key_range:32
      ~rate:(OL.Constant 300.0)
  in
  Kv.start_open sys wl ~until:1.2;
  Sim.Engine.run engine ~until:1.7;
  Alcotest.(check bool) "writes responded via lease deadline" true
    (Kv.counter sys "kv_deadline_responses" > 0);
  Alcotest.(check bool) "stale local reads served" true
    (Kv.counter sys "kv_local_reads" > 0);
  Alcotest.(check bool) "checker rejects stale reads" false
    (Kv.check_history sys)

(* Same isolation without the broken flag: the stale replica's lease
   expires, it refuses local reads, clients fall back — linearizable. *)
let test_kv_lease_expiry_protects () =
  let config = verify_config in
  let engine, net, sys = mk ~config ~seed:13 () in
  let inj = Fault.Injector.create net ~seed:13 in
  let stale_pid = Simnet.pid (Kv.replica_proc sys 2) in
  Fault.Injector.rule inj ~at:0.2 ~dur:10.0 ~drop:1.0
    ~applies:(fun m ~dst ->
      Simnet.pid dst = stale_pid
      && match m.Simnet.payload with Kv.KReadReq _ -> false | _ -> true)
    "isolate replica 2 (reads still reach it)";
  let wl =
    OL.create
      ~ops:[ (OL.Read, 50); (OL.Update, 50) ]
      ~dist:(OL.Zipf 0.99) (Sim.Rng.create 14) ~key_range:32
      ~rate:(OL.Constant 300.0)
  in
  Kv.start_open sys wl ~until:1.2;
  Sim.Engine.run engine ~until:1.7;
  Alcotest.(check bool) "stale replica refused reads" true
    (Kv.counter sys "kv_local_nacks" > 0);
  Alcotest.(check bool) "linearizable" true (Kv.check_history sys)

let test_ycsb_presets_wellformed () =
  List.iter
    (fun p ->
      let ops = Kv.Ycsb.ops p in
      let total = List.fold_left (fun a (_, w) -> a + w) 0 ops in
      Alcotest.(check int) (Kv.Ycsb.name p ^ " weights") 100 total;
      Alcotest.(check bool)
        (Kv.Ycsb.name p ^ " roundtrips")
        true
        (Kv.Ycsb.of_name (Kv.Ycsb.name p) = Some p))
    Kv.Ycsb.all

let test_ycsb_d_uses_latest () =
  Alcotest.(check bool) "D is latest-key" true
    (match Kv.Ycsb.dist Kv.Ycsb.D with
    | Smr.Workload.Open_loop.Latest _ -> true
    | _ -> false)

let test_slo_percentiles () =
  let slo = Kv.Slo.create () in
  for i = 1 to 1000 do
    Kv.Slo.add slo ~cls:"read" (float_of_int i *. 1e-3)
  done;
  let r = Kv.Slo.row_of slo "read" in
  Alcotest.(check int) "count" 1000 r.Kv.Slo.count;
  Alcotest.(check bool) "p50 ~ 500ms" true
    (r.Kv.Slo.p50_ms > 450.0 && r.Kv.Slo.p50_ms < 550.0);
  Alcotest.(check bool) "p99 ~ 990ms" true
    (r.Kv.Slo.p99_ms > 950.0 && r.Kv.Slo.p99_ms <= 1000.0);
  Alcotest.(check bool) "p999 >= p99" true (r.Kv.Slo.p999_ms >= r.Kv.Slo.p99_ms)

let suite =
  [ Alcotest.test_case "kv ycsb-a end to end" `Quick test_kv_completes;
    Alcotest.test_case "kv leases serve local reads" `Quick
      test_kv_local_reads_served;
    Alcotest.test_case "kv writes invalidate leases" `Quick
      test_kv_writes_invalidate_leases;
    Alcotest.test_case "kv replicas agree" `Quick test_kv_replicas_agree;
    Alcotest.test_case "kv linearizable with leases" `Quick test_kv_linearizable;
    Alcotest.test_case "kv broken lease caught by checker" `Quick
      test_kv_broken_lease_caught;
    Alcotest.test_case "kv lease expiry protects reads" `Quick
      test_kv_lease_expiry_protects;
    Alcotest.test_case "ycsb presets well-formed" `Quick
      test_ycsb_presets_wellformed;
    Alcotest.test_case "ycsb D latest-key" `Quick test_ycsb_d_uses_latest;
    Alcotest.test_case "slo percentiles" `Quick test_slo_percentiles ]
