(* Tests for the shared protocol runtime components (lib/protocol):
   batching edge cases and failure-detector suspicion timing. *)

type Simnet.payload += Blob

let fresh () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 3) in
  (engine, net)

let item ?(uid = 0) isize = { Paxos.Value.uid; isize; app = Blob; born = 0.0 }

let sizes items = List.map (fun (it : Paxos.Value.item) -> it.isize) items

(* --- Batcher -------------------------------------------------------------- *)

let test_oversized_item_seals_alone () =
  let b = Protocol.Batcher.create ~batch_bytes:1000 () in
  ignore (Protocol.Batcher.enqueue b ~key:() (item ~uid:1 300));
  ignore (Protocol.Batcher.enqueue b ~key:() (item ~uid:2 5000));
  (* 5300 pending bytes exceed the threshold, so the key is ready... *)
  Alcotest.(check bool) "ready" true (Protocol.Batcher.ready b <> None);
  (* ...but the first seal stops before the oversized item. *)
  Alcotest.(check (list int)) "first batch" [ 300 ] (sizes (Protocol.Batcher.seal b ()));
  (* The oversized item does not stall: it seals alone. *)
  Alcotest.(check (list int)) "oversized alone" [ 5000 ] (sizes (Protocol.Batcher.seal b ()));
  Alcotest.(check bool) "drained" true (Protocol.Batcher.is_empty b)

let test_timeout_flushes_partial_batch () =
  let engine, net = fresh () in
  let b = Protocol.Batcher.create ~batch_bytes:100_000 () in
  ignore (Protocol.Batcher.enqueue b ~key:() (item 128));
  let flushed = ref [] in
  let fired_at = ref 0.0 in
  Protocol.Batcher.arm_timeout b net ~timeout:0.01 (fun () ->
      fired_at := Sim.Engine.now engine;
      flushed := Protocol.Batcher.seal b ());
  Alcotest.(check bool) "timer armed" true (Protocol.Batcher.timer_armed b);
  (* Arming again while a timer is pending is a no-op. *)
  Protocol.Batcher.arm_timeout b net ~timeout:0.01 (fun () -> Alcotest.fail "double arm");
  Sim.Engine.run engine ~until:1.0;
  Alcotest.(check (list int)) "sub-threshold batch flushed" [ 128 ] (sizes !flushed);
  Alcotest.(check bool) "fired at the timeout, not later" true
    (!fired_at >= 0.01 && !fired_at < 0.02);
  Alcotest.(check bool) "timer disarmed after firing" false (Protocol.Batcher.timer_armed b)

let test_timeout_noop_when_empty () =
  let engine, net = fresh () in
  let b = Protocol.Batcher.create ~batch_bytes:100_000 () in
  Protocol.Batcher.arm_timeout b net ~timeout:0.01 (fun () ->
      Alcotest.fail "timer armed with nothing pending");
  Alcotest.(check bool) "not armed" false (Protocol.Batcher.timer_armed b);
  Sim.Engine.run engine ~until:1.0

let test_zero_batch_bytes_disables_batching () =
  let b = Protocol.Batcher.create ~batch_bytes:0 () in
  ignore (Protocol.Batcher.enqueue b ~key:() (item ~uid:1 100));
  ignore (Protocol.Batcher.enqueue b ~key:() (item ~uid:2 100));
  ignore (Protocol.Batcher.enqueue b ~key:() (item ~uid:3 100));
  (* Every enqueue leaves the key ready, and every seal is a single item. *)
  for i = 1 to 3 do
    Alcotest.(check bool) (Printf.sprintf "ready %d" i) true (Protocol.Batcher.ready b <> None);
    Alcotest.(check int) (Printf.sprintf "singleton %d" i) 1
      (List.length (Protocol.Batcher.seal b ()))
  done;
  Alcotest.(check bool) "drained" true (Protocol.Batcher.is_empty b)

let test_buffer_bound_drops () =
  let b = Protocol.Batcher.create ~buffer_bytes:1000 ~batch_bytes:100_000 () in
  Alcotest.(check bool) "fits" true (Protocol.Batcher.enqueue b ~key:() (item 900));
  Alcotest.(check bool) "overflow rejected" false (Protocol.Batcher.enqueue b ~key:() (item 200));
  Alcotest.(check int) "drop counted" 1 (Protocol.Batcher.drops b);
  Alcotest.(check int) "accepted bytes kept" 900 (Protocol.Batcher.pending_bytes b)

let test_clear_disarms_pending_timeout () =
  let engine, net = fresh () in
  let b = Protocol.Batcher.create ~batch_bytes:100_000 () in
  ignore (Protocol.Batcher.enqueue b ~key:() (item 128));
  Protocol.Batcher.arm_timeout b net ~timeout:0.01 (fun () ->
      Alcotest.fail "timer armed before the clear fired");
  Protocol.Batcher.clear b;
  (* The pending timer must neither fire its stale callback nor block a
     fresh timer from arming (a crashed-and-cleared coordinator would
     otherwise never flush partial batches again). *)
  Alcotest.(check bool) "disarmed by clear" false (Protocol.Batcher.timer_armed b);
  ignore (Protocol.Batcher.enqueue b ~key:() (item 64));
  let flushed = ref [] in
  Protocol.Batcher.arm_timeout b net ~timeout:0.05 (fun () ->
      flushed := Protocol.Batcher.seal b ());
  Sim.Engine.run engine ~until:1.0;
  Alcotest.(check (list int)) "fresh timer flushes the new item" [ 64 ] (sizes !flushed)

(* --- Retry ----------------------------------------------------------------- *)

let test_iter_due_ack_during_iteration () =
  (* An item acknowledged from inside an [iter_due] callback must not
     fire later in the same pass — retransmitting acknowledged work
     re-proposes values that were already decided.  This is exactly what
     a Decision processed during a retransmission does: it acks many
     uids while the tracker is still being walked.  The hazard only
     bites when the acked key shares a bucket chain with the firing key,
     so exercise every adjacent pair of the iteration order. *)
  let n = 512 in
  let build () =
    let tr : (int, unit) Protocol.Retry.tracker = Protocol.Retry.tracker () in
    for k = 0 to n - 1 do
      Protocol.Retry.watch tr ~now:0.0 k ()
    done;
    tr
  in
  let order = ref [] in
  Protocol.Retry.iter (build ()) (fun k () -> order := k :: !order);
  let order = Array.of_list (List.rev !order) in
  Alcotest.(check int) "snapshot sees every key" n (Array.length order);
  for i = 0 to n - 2 do
    let a = order.(i) and b = order.(i + 1) in
    let tr = build () in
    let acked = ref false in
    Protocol.Retry.iter_due tr ~now:10.0 ~older_than:1.0 (fun k () ->
        if k = b && !acked then
          Alcotest.failf "key %d fired after being acked (while visiting %d)" b a;
        if k = a then begin
          ignore (Protocol.Retry.ack tr b);
          acked := true
        end)
  done;
  (* Items that do fire are restamped, so they back off a full period. *)
  let tr : (int, unit) Protocol.Retry.tracker = Protocol.Retry.tracker () in
  Protocol.Retry.watch tr ~now:0.0 0 ();
  Protocol.Retry.iter_due tr ~now:10.0 ~older_than:1.0 (fun _ () -> ());
  Protocol.Retry.iter_due tr ~now:10.5 ~older_than:1.0 (fun _ () ->
      Alcotest.fail "restamped item fired again within the back-off")

(* --- Ordered delivery ------------------------------------------------------ *)

let test_drop_below_frees_speculation_marks () =
  let od : int Protocol.Ordered_delivery.t = Protocol.Ordered_delivery.create () in
  (* A learner partitioned away from the decision stream speculates on
     instances it never delivers; the GC floor (driven by the other
     learners) outruns [next].  Marks below the floor must be freed. *)
  for round = 0 to 63 do
    let base = round * 1024 in
    for i = 0 to 1023 do
      Protocol.Ordered_delivery.speculate od ~inst:(base + i) (fun () -> ())
    done;
    Protocol.Ordered_delivery.drop_below od (base + 1024)
  done;
  let words = Obj.reachable_words (Obj.repr od) in
  Alcotest.(check bool)
    (Printf.sprintf "speculation marks freed (reachable = %d words)" words)
    true (words < 20_000)

let test_drain_sink_does_not_recurse_per_item () =
  let _engine, net = fresh () in
  let node = Simnet.add_node net "sink-node" in
  let proc = Simnet.add_proc net node "sink-proc" in
  let s : int Protocol.Ordered_delivery.sink = Protocol.Ordered_delivery.sink () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Protocol.Ordered_delivery.sink_push s i
  done;
  let depth = ref 0 and max_depth = ref 0 and delivered = ref 0 in
  let rec deliver _ =
    incr depth;
    if !depth > !max_depth then max_depth := !depth;
    incr delivered;
    (* Delivery re-enters the drain, as learner pumps do; with one stack
       frame per queued item this overflows long before 100k. *)
    Protocol.Ordered_delivery.drain_sink s net proc ~cost:(fun () -> 0.0) deliver;
    decr depth
  in
  Protocol.Ordered_delivery.drain_sink s net proc ~cost:(fun () -> 0.0) deliver;
  Alcotest.(check int) "all items delivered" n !delivered;
  Alcotest.(check int) "sink drained" 0 (Protocol.Ordered_delivery.sink_length s);
  Alcotest.(check bool)
    (Printf.sprintf "bounded nesting (max depth = %d)" !max_depth)
    true (!max_depth <= 2)

let test_repair_rearms_through_transient_death () =
  (* The repair timer firing while the learner is transiently dead (e.g.
     mid crash/recover) used to end the cycle forever: the gap was never
     requested again even though the backlog persisted. *)
  let _engine, net = fresh () in
  let od : unit Protocol.Ordered_delivery.t = Protocol.Ordered_delivery.create () in
  let r = Protocol.Ordered_delivery.repairer () in
  let alive = ref false in
  let sent = ref 0 in
  Protocol.Ordered_delivery.note_max od 5 (* instances 0..5 missing *);
  Protocol.Ordered_delivery.request_repairs r od net ~timeout:0.01 ~cooldown:0.04
    ~alive:(fun () -> !alive)
    ~complete:(fun _ _ -> true)
    ~send:(fun insts ->
      incr sent;
      Alcotest.(check bool) "asks for concrete instances" true (insts <> []));
  (* Dead at the first firing (t=0.01), back before the second. *)
  ignore (Simnet.after net 0.02 (fun () -> alive := true));
  Sim.Engine.run (Simnet.engine net) ~until:0.5;
  Alcotest.(check bool) "repairs resume after the transient death" true (!sent > 0)

let test_fast_forward_starts_at_boundary () =
  (* A learner activated mid-run (a staged learner joining at a
     reconfiguration boundary) fast-forwards to the activation instance:
     everything below is forgotten — never delivered, never treated as a
     gap — and delivery starts exactly at the boundary. *)
  let od : int Protocol.Ordered_delivery.t = Protocol.Ordered_delivery.create () in
  Protocol.Ordered_delivery.note_max od 99 (* pre-activation history *);
  Protocol.Ordered_delivery.fast_forward od 100;
  Alcotest.(check int) "next is the boundary" 100 (Protocol.Ordered_delivery.next od);
  (* Pre-boundary decisions arriving late are ignored... *)
  Alcotest.(check bool) "stale offer rejected" false
    (Protocol.Ordered_delivery.offer od ~inst:42 42);
  (* ...and open no gaps: nothing below the boundary is missing. *)
  Alcotest.(check (list int)) "no pre-boundary gaps" []
    (Protocol.Ordered_delivery.missing od ~limit:10 ~complete:(fun _ _ -> true) ());
  let got = ref [] in
  ignore (Protocol.Ordered_delivery.offer od ~inst:100 100);
  ignore (Protocol.Ordered_delivery.offer od ~inst:101 101);
  Protocol.Ordered_delivery.pump od (fun inst v ->
      got := (inst, v) :: !got;
      true);
  Alcotest.(check (list (pair int int)))
    "delivery starts at the boundary"
    [ (100, 100); (101, 101) ]
    (List.rev !got)

let test_repair_retargets_when_source_leaves () =
  (* The repair cycle asks one source per attempt; when that source leaves
     the membership mid-cycle (a retired acceptor), its reply never comes
     and the cycle must keep re-asking so the caller's rotation reaches a
     live source.  The first attempts here go to the departed source and
     vanish; the cycle may not wind down until a later attempt is served. *)
  let _engine, net = fresh () in
  let od : int Protocol.Ordered_delivery.t = Protocol.Ordered_delivery.create () in
  let r = Protocol.Ordered_delivery.repairer () in
  let attempt = ref 0 in
  let unanswered = ref 0 in
  Protocol.Ordered_delivery.note_max od 3 (* instances 0..3 missing *);
  Protocol.Ordered_delivery.request_repairs r od net ~timeout:0.01 ~cooldown:0.02
    ~alive:(fun () -> true)
    ~complete:(fun _ _ -> true)
    ~send:(fun insts ->
      incr attempt;
      (* Rotation over two sources, like the learners' preferential
         acceptors; source 0 has left the ring and never answers. *)
      if !attempt mod 2 = 1 then incr unanswered
      else begin
        List.iter (fun i -> ignore (Protocol.Ordered_delivery.offer od ~inst:i i)) insts;
        Protocol.Ordered_delivery.pump od (fun _ _ -> true)
      end);
  Sim.Engine.run (Simnet.engine net) ~until:1.0;
  Alcotest.(check bool) "first target silently departed" true (!unanswered > 0);
  Alcotest.(check int) "gap healed via the live source" 4
    (Protocol.Ordered_delivery.next od);
  Alcotest.(check bool) "cycle quiescent once healed" false
    (Protocol.Ordered_delivery.repairing r)

let test_repair_gap_after_quiescence () =
  (* A gap heals, the cycle winds down; a second gap opening later must be
     repairable by re-invoking [request_repairs] (the caller contract). *)
  let _engine, net = fresh () in
  let engine = Simnet.engine net in
  let od : unit Protocol.Ordered_delivery.t = Protocol.Ordered_delivery.create () in
  let r = Protocol.Ordered_delivery.repairer () in
  let sent = ref 0 in
  let start () =
    Protocol.Ordered_delivery.request_repairs r od net ~timeout:0.01 ~cooldown:0.02
      ~alive:(fun () -> true)
      ~complete:(fun _ _ -> true)
      ~send:(fun _ -> incr sent)
  in
  Protocol.Ordered_delivery.note_max od 1;
  start ();
  Sim.Engine.run engine ~until:0.015;
  Alcotest.(check bool) "first gap requested" true (!sent > 0);
  (* Heal the gap; the cycle must reach quiescence... *)
  ignore (Protocol.Ordered_delivery.offer od ~inst:0 ());
  ignore (Protocol.Ordered_delivery.offer od ~inst:1 ());
  Protocol.Ordered_delivery.pump od (fun _ _ -> true);
  Sim.Engine.run engine ~until:0.2;
  Alcotest.(check bool) "cycle quiescent once healed" false
    (Protocol.Ordered_delivery.repairing r);
  let healed = !sent in
  (* ...and a later second gap must be repaired again. *)
  Protocol.Ordered_delivery.note_max od 5;
  start ();
  Sim.Engine.run engine ~until:0.4;
  Alcotest.(check bool) "second gap requested" true (!sent > healed)

(* --- Failure detector ------------------------------------------------------ *)

let hb_period = 0.02
let hb_timeout = 0.25

(* A follower-side detector: [leader ()] is false, so every tick consults
   [on_suspect] with the staleness predicate for peer 0. *)
let follower_fd net ~leader ~on_suspect =
  Protocol.Failure_detector.create net ~hb_period ~hb_timeout ~leader
    ~emit:(fun () -> ())
    ~on_suspect

let test_no_false_suspicion_under_heartbeats () =
  let engine, net = fresh () in
  let suspected = ref false in
  let fd =
    follower_fd net
      ~leader:(fun () -> false)
      ~on_suspect:(fun ~stale -> if stale 0 then suspected := true)
  in
  (* The leader's heartbeats arrive on schedule for the whole run. *)
  let stop =
    Simnet.every net ~period:hb_period (fun () -> Protocol.Failure_detector.heartbeat fd 0)
  in
  Sim.Engine.run engine ~until:2.0;
  stop ();
  Alcotest.(check bool) "never suspected" false !suspected

let test_suspicion_within_timeout_of_crash () =
  let engine, net = fresh () in
  let crash_at = 0.5 in
  let first_suspect = ref nan in
  let fd =
    follower_fd net
      ~leader:(fun () -> false)
      ~on_suspect:(fun ~stale ->
        if stale 0 && Float.is_nan !first_suspect then
          first_suspect := Sim.Engine.now engine)
  in
  (* Heartbeats flow until the "leader" crashes at [crash_at]. *)
  let stop =
    Simnet.every net ~period:hb_period (fun () ->
        if Sim.Engine.now engine < crash_at then Protocol.Failure_detector.heartbeat fd 0)
  in
  Sim.Engine.run engine ~until:2.0;
  stop ();
  Alcotest.(check bool) "suspected" false (Float.is_nan !first_suspect);
  Alcotest.(check bool) "not before the timeout" true (!first_suspect >= crash_at +. hb_timeout -. hb_period);
  Alcotest.(check bool) "within timeout plus two periods" true
    (!first_suspect <= crash_at +. hb_timeout +. (2.0 *. hb_period))

let test_suspicion_does_not_refire_after_reconfiguration () =
  let engine, net = fresh () in
  let am_leader = ref false in
  let suspicions = ref 0 in
  let emissions = ref 0 in
  ignore
    (Protocol.Failure_detector.create net ~hb_period ~hb_timeout
       ~leader:(fun () -> !am_leader)
       ~emit:(fun () -> incr emissions)
       ~on_suspect:(fun ~stale ->
         if stale 0 then begin
           (* Reconfigure: this process takes over the leadership, exactly
              as Mring's become_coordinator / Uring's rebuild_ring do. *)
           incr suspicions;
           am_leader := true
         end));
  (* No heartbeats at all: peer 0 goes stale once hb_timeout elapses. *)
  Sim.Engine.run engine ~until:2.0;
  Alcotest.(check int) "exactly one suspicion" 1 !suspicions;
  Alcotest.(check bool) "leader duties running after takeover" true (!emissions > 0)

let test_epoch_change_grants_fresh_grace () =
  (* A reconfiguration must clear suspicions carried over from the previous
     epoch: a peer that went silent in the old membership gets a fresh
     [hb_timeout] of grace after [set_epoch] (before the fix, the stale
     timestamp survived the boundary and the suspicion re-fired at once).
     A peer silent through the whole new epoch must still be caught. *)
  let engine, net = fresh () in
  let reconf_at = 1.0 in
  let epoch_installed = ref false in
  let first_post_epoch = ref nan in
  let fd =
    follower_fd net
      ~leader:(fun () -> false)
      ~on_suspect:(fun ~stale ->
        if stale 0 && !epoch_installed && Float.is_nan !first_post_epoch then
          first_post_epoch := Sim.Engine.now engine)
  in
  (* Heartbeats for peer 0 stop well before the reconfiguration, so it is
     already (legitimately) stale in the old epoch when the boundary
     crosses... *)
  let stop =
    Simnet.every net ~period:hb_period (fun () ->
        if Sim.Engine.now engine < reconf_at -. (2.0 *. hb_timeout) then
          Protocol.Failure_detector.heartbeat fd 0)
  in
  (* ...the epoch turns over with peer 0 still a member... *)
  ignore
    (Simnet.after net reconf_at (fun () ->
         Protocol.Failure_detector.set_epoch fd ~epoch:1 ~members:[ 0; 1 ];
         epoch_installed := true;
         (* The carried-over staleness must not re-fire at the boundary. *)
         Alcotest.(check bool) "not stale right after set_epoch" false
           (Protocol.Failure_detector.stale fd 0)));
  Sim.Engine.run engine ~until:3.0;
  stop ();
  Alcotest.(check bool) "member silent through the new epoch is suspected" false
    (Float.is_nan !first_post_epoch);
  Alcotest.(check bool) "but only after a fresh post-epoch grace" true
    (!first_post_epoch >= reconf_at +. hb_timeout -. hb_period)

let test_removed_peer_never_goes_stale () =
  (* A peer dropped from the membership must never fire a suspicion again,
     no matter how long it stays silent. *)
  let engine, net = fresh () in
  let suspected = ref false in
  let fd =
    follower_fd net
      ~leader:(fun () -> false)
      ~on_suspect:(fun ~stale -> if stale 0 then suspected := true)
  in
  Protocol.Failure_detector.set_epoch fd ~epoch:1 ~members:[ 1; 2 ];
  Sim.Engine.run engine ~until:3.0;
  Alcotest.(check bool) "removed peer never suspected" false !suspected;
  Alcotest.(check bool) "stale is false outside the membership" false
    (Protocol.Failure_detector.stale fd 0)

let test_old_epoch_heartbeats_dropped () =
  (* Heartbeats stamped with a pre-reconfiguration epoch are stale
     evidence of liveness: they must not refresh the peer.  Same-epoch
     (and unstamped) heartbeats keep counting. *)
  let engine, net = fresh () in
  let fd =
    follower_fd net ~leader:(fun () -> false) ~on_suspect:(fun ~stale:_ -> ())
  in
  Protocol.Failure_detector.set_epoch fd ~epoch:2 ~members:[ 0; 1 ];
  let stamped = Protocol.Failure_detector.last_heartbeat fd 0 in
  ignore
    (Simnet.after net 0.5 (fun () ->
         Protocol.Failure_detector.heartbeat ~epoch:1 fd 0 (* pre-epoch: dropped *)));
  ignore
    (Simnet.after net 0.75 (fun () -> Protocol.Failure_detector.heartbeat ~epoch:2 fd 1));
  Sim.Engine.run engine ~until:1.0;
  Alcotest.(check (float 1e-9)) "old-epoch heartbeat dropped" stamped
    (Protocol.Failure_detector.last_heartbeat fd 0);
  Alcotest.(check (float 1e-9)) "current-epoch heartbeat recorded" 0.75
    (Protocol.Failure_detector.last_heartbeat fd 1);
  (* Epochs only move forward: a late set_epoch from a superseded
     reconfiguration is a no-op. *)
  Protocol.Failure_detector.set_epoch fd ~epoch:1 ~members:[ 5 ];
  Alcotest.(check int) "epoch monotonic" 2 (Protocol.Failure_detector.epoch fd)

let test_stop_silences_detector () =
  let engine, net = fresh () in
  let calls = ref 0 in
  let fd =
    follower_fd net
      ~leader:(fun () -> false)
      ~on_suspect:(fun ~stale:_ -> incr calls)
  in
  ignore (Simnet.after net 0.1 (fun () -> Protocol.Failure_detector.stop fd));
  Sim.Engine.run engine ~until:2.0;
  let after_stop = !calls in
  Alcotest.(check bool) "ticked before stop" true (after_stop > 0);
  Alcotest.(check bool) "bounded by stop time" true
    (after_stop <= int_of_float (0.1 /. hb_period) + 2)

let suite =
  [ Alcotest.test_case "batcher: oversized item seals alone" `Quick
      test_oversized_item_seals_alone;
    Alcotest.test_case "batcher: timeout flushes sub-threshold batch" `Quick
      test_timeout_flushes_partial_batch;
    Alcotest.test_case "batcher: timer is a no-op when empty" `Quick test_timeout_noop_when_empty;
    Alcotest.test_case "batcher: batch_bytes <= 0 disables batching" `Quick
      test_zero_batch_bytes_disables_batching;
    Alcotest.test_case "batcher: buffer bound rejects and counts drops" `Quick
      test_buffer_bound_drops;
    Alcotest.test_case "batcher: clear disarms a pending timeout" `Quick
      test_clear_disarms_pending_timeout;
    Alcotest.test_case "retry: ack during iter_due does not fire stale entries" `Quick
      test_iter_due_ack_during_iteration;
    Alcotest.test_case "od: drop_below frees speculation marks" `Quick
      test_drop_below_frees_speculation_marks;
    Alcotest.test_case "od: drain_sink is iterative, not per-item recursive" `Quick
      test_drain_sink_does_not_recurse_per_item;
    Alcotest.test_case "od: repair re-arms through a transient death" `Quick
      test_repair_rearms_through_transient_death;
    Alcotest.test_case "od: fast_forward starts delivery at the boundary" `Quick
      test_fast_forward_starts_at_boundary;
    Alcotest.test_case "od: repair retargets when the source leaves" `Quick
      test_repair_retargets_when_source_leaves;
    Alcotest.test_case "od: repair handles a gap after quiescence" `Quick
      test_repair_gap_after_quiescence;
    Alcotest.test_case "fd: no false suspicion while heartbeats flow" `Quick
      test_no_false_suspicion_under_heartbeats;
    Alcotest.test_case "fd: suspicion within hb_timeout of a crash" `Quick
      test_suspicion_within_timeout_of_crash;
    Alcotest.test_case "fd: reconfiguring suspicion does not re-fire" `Quick
      test_suspicion_does_not_refire_after_reconfiguration;
    Alcotest.test_case "fd: epoch change grants fresh suspicion grace" `Quick
      test_epoch_change_grants_fresh_grace;
    Alcotest.test_case "fd: removed peer never goes stale" `Quick
      test_removed_peer_never_goes_stale;
    Alcotest.test_case "fd: old-epoch heartbeats are dropped" `Quick
      test_old_epoch_heartbeats_dropped;
    Alcotest.test_case "fd: stop silences the monitor" `Quick test_stop_silences_detector ]
