(* Golden equivalence of the two event-queue backends: the timing wheel
   must be observationally identical to the reference binary heap — same
   fire order, same clock readings, byte-identical trace exports — on
   real protocol runs and on adversarial random schedules. *)

let with_backend backend f =
  let saved = Sim.Engine.get_default_backend () in
  Sim.Engine.set_default_backend backend;
  Fun.protect ~finally:(fun () -> Sim.Engine.set_default_backend saved) f

(* A full M-Ring run traced under each backend: the Chrome export embeds
   every event timestamp, so byte equality is a strong golden check. *)
let test_mring_trace_identical () =
  let run backend =
    with_backend backend (fun () ->
        let tr = Trace.create () in
        let delivered = Test_trace.mring_smoke ~tracer:tr ~seed:7 () in
        (delivered, Trace.to_chrome_json tr))
  in
  let dw, jw = run `Wheel in
  let dh, jh = run `Heap in
  Alcotest.(check bool) "run did something" true (dw > 0);
  Alcotest.(check int) "same deliveries" dh dw;
  Alcotest.(check string) "byte-identical trace export" jh jw

(* A chaos scenario (crashes, partitions, drops, restarts) replayed
   under each backend must reach the identical verdict and fault
   timeline. *)
let test_chaos_seed_identical () =
  let run backend =
    with_backend backend (fun () ->
        Fault.Chaos.run_one ~protocol:"mring" ~seed:5 ~duration:2.0 ())
  in
  let a = run `Wheel in
  let b = run `Heap in
  Alcotest.(check bool) "wheel verdict ok" true a.Fault.Chaos.ok;
  Alcotest.(check bool) "same verdict" a.Fault.Chaos.ok b.Fault.Chaos.ok;
  Alcotest.(check string) "same summary" b.Fault.Chaos.summary a.Fault.Chaos.summary;
  Alcotest.(check (list string)) "same violations" b.Fault.Chaos.violations
    a.Fault.Chaos.violations;
  Alcotest.(check int) "same timeline length"
    (List.length b.Fault.Chaos.events)
    (List.length a.Fault.Chaos.events);
  List.iter2
    (fun (ta, ea) (tb, eb) ->
      Alcotest.(check (float 0.0)) "same fault time" tb ta;
      Alcotest.(check string) "same fault event" eb ea)
    a.Fault.Chaos.events b.Fault.Chaos.events

(* Random schedule/cancel/nested-schedule programs replayed on both
   backends.  Delays cover sub-tick spacing, equal times (FIFO), every
   wheel level and the far-future overflow heap. *)
let delays =
  [| 0.0; 1.0e-7; 2.4e-7; 1.0e-6; 3.3e-4; 0.001; 0.5; 1.0; 1.0; 300.0; 5000.0 |]

let replay backend ops =
  let e = Sim.Engine.create ~backend () in
  let log = Buffer.create 256 in
  let handles = Hashtbl.create 16 in
  let fire i () =
    Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Sim.Engine.now e))
  in
  List.iteri
    (fun i (di, k) ->
      let d = delays.(di mod Array.length delays) in
      if k < 6 then begin
        (* Every third schedule arms a nested follow-up from inside its
           own callback. *)
        let h =
          if i mod 3 = 0 then
            Sim.Engine.schedule e ~delay:d (fun () ->
                fire i ();
                ignore
                  (Sim.Engine.schedule e
                     ~delay:(delays.((i * 3 + k) mod Array.length delays))
                     (fire (1000 + i))))
          else Sim.Engine.schedule e ~delay:d (fire i)
        in
        Hashtbl.replace handles i h
      end
      else begin
        let j = (di * 13 + k) mod (i + 1) in
        match Hashtbl.find_opt handles j with
        | Some h -> Sim.Engine.cancel e h
        | None -> ()
      end)
    ops;
  Sim.Engine.run e ~until:600.0;
  Sim.Engine.run_all e;
  Buffer.contents log

let prop_backends_fire_identically =
  QCheck.Test.make ~name:"wheel and heap fire identically" ~count:150
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 0 10) (int_range 0 7)))
    (fun ops -> String.equal (replay `Wheel ops) (replay `Heap ops))

let suite =
  [ Alcotest.test_case "mring trace byte-identical across backends" `Quick
      test_mring_trace_identical;
    Alcotest.test_case "chaos seed identical across backends" `Quick
      test_chaos_seed_identical;
    QCheck_alcotest.to_alcotest prop_backends_fire_identically ]
