(* Golden equivalence of the two event-queue backends: the timing wheel
   must be observationally identical to the reference binary heap — same
   fire order, same clock readings, byte-identical trace exports — on
   real protocol runs and on adversarial random schedules. *)

let with_backend backend f =
  let saved = Sim.Engine.get_default_backend () in
  Sim.Engine.set_default_backend backend;
  Fun.protect ~finally:(fun () -> Sim.Engine.set_default_backend saved) f

(* A full M-Ring run traced under each backend: the Chrome export embeds
   every event timestamp, so byte equality is a strong golden check. *)
let test_mring_trace_identical () =
  let run backend =
    with_backend backend (fun () ->
        let tr = Trace.create () in
        let delivered = Test_trace.mring_smoke ~tracer:tr ~seed:7 () in
        (delivered, Trace.to_chrome_json tr))
  in
  let dw, jw = run `Wheel in
  let dh, jh = run `Heap in
  Alcotest.(check bool) "run did something" true (dw > 0);
  Alcotest.(check int) "same deliveries" dh dw;
  Alcotest.(check string) "byte-identical trace export" jh jw

(* A chaos scenario (crashes, partitions, drops, restarts) replayed
   under each backend must reach the identical verdict and fault
   timeline. *)
let test_chaos_seed_identical () =
  let run backend =
    with_backend backend (fun () ->
        Fault.Chaos.run_one ~protocol:"mring" ~seed:5 ~duration:2.0 ())
  in
  let a = run `Wheel in
  let b = run `Heap in
  Alcotest.(check bool) "wheel verdict ok" true a.Fault.Chaos.ok;
  Alcotest.(check bool) "same verdict" a.Fault.Chaos.ok b.Fault.Chaos.ok;
  Alcotest.(check string) "same summary" b.Fault.Chaos.summary a.Fault.Chaos.summary;
  Alcotest.(check (list string)) "same violations" b.Fault.Chaos.violations
    a.Fault.Chaos.violations;
  Alcotest.(check int) "same timeline length"
    (List.length b.Fault.Chaos.events)
    (List.length a.Fault.Chaos.events);
  List.iter2
    (fun (ta, ea) (tb, eb) ->
      Alcotest.(check (float 0.0)) "same fault time" tb ta;
      Alcotest.(check string) "same fault event" eb ea)
    a.Fault.Chaos.events b.Fault.Chaos.events

(* Random schedule/cancel/nested-schedule programs replayed on both
   backends.  Delays cover sub-tick spacing, equal times (FIFO), every
   wheel level and the far-future overflow heap. *)
let delays =
  [| 0.0; 1.0e-7; 2.4e-7; 1.0e-6; 3.3e-4; 0.001; 0.5; 1.0; 1.0; 300.0; 5000.0 |]

let replay backend ops =
  let e = Sim.Engine.create ~backend () in
  let log = Buffer.create 256 in
  let handles = Hashtbl.create 16 in
  let fire i () =
    Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Sim.Engine.now e))
  in
  List.iteri
    (fun i (di, k) ->
      let d = delays.(di mod Array.length delays) in
      if k < 6 then begin
        (* Every third schedule arms a nested follow-up from inside its
           own callback. *)
        let h =
          if i mod 3 = 0 then
            Sim.Engine.schedule e ~delay:d (fun () ->
                fire i ();
                ignore
                  (Sim.Engine.schedule e
                     ~delay:(delays.((i * 3 + k) mod Array.length delays))
                     (fire (1000 + i))))
          else Sim.Engine.schedule e ~delay:d (fire i)
        in
        Hashtbl.replace handles i h
      end
      else begin
        let j = (di * 13 + k) mod (i + 1) in
        match Hashtbl.find_opt handles j with
        | Some h -> Sim.Engine.cancel e h
        | None -> ()
      end)
    ops;
  Sim.Engine.run e ~until:600.0;
  Sim.Engine.run_all e;
  Buffer.contents log

let prop_backends_fire_identically =
  QCheck.Test.make ~name:"wheel and heap fire identically" ~count:150
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 0 10) (int_range 0 7)))
    (fun ops -> String.equal (replay `Wheel ops) (replay `Heap ops))

(* Adversarial wheel-vs-heap differential beyond the qcheck property:
   delays pinned to every wheel-level boundary (±1 tick), nested
   schedules from inside callbacks, heavy cancellation, and segmented
   [run ~until] calls that park the cursor far ahead before scheduling
   "in the past" — the regression surface of the wheel's cursor
   arithmetic.  Each seeded program must produce byte-identical fire
   logs (and final pending counts) on both backends. *)
let boundary_tps = float_of_int Sim.Engine.ticks_per_second

let boundary_deltas =
  [| 0.0; 1.0 /. boundary_tps; 255.0 /. boundary_tps; 256.0 /. boundary_tps;
     257.0 /. boundary_tps; 65535.0 /. boundary_tps; 65536.0 /. boundary_tps;
     65537.0 /. boundary_tps; 16777216.0 /. boundary_tps;
     4294967296.0 /. boundary_tps; 0.013; 1.7; 42.0; 900.0; 1e7; infinity |]

let boundary_replay backend seed =
  let e = Sim.Engine.create ~backend () in
  let st = Random.State.make [| seed |] in
  let log = Buffer.create 4096 in
  let handles = ref [] in
  let fire i () =
    Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Sim.Engine.now e))
  in
  let n = ref 0 in
  let rec act depth i () =
    fire i ();
    if depth < 3 && Random.State.int st 100 < 40 then begin
      incr n;
      let d = boundary_deltas.(Random.State.int st (Array.length boundary_deltas)) in
      let h = Sim.Engine.schedule e ~delay:d (act (depth + 1) (10000 + !n)) in
      handles := h :: !handles
    end;
    if Random.State.int st 100 < 30 then
      match !handles with
      | h :: rest ->
          handles := rest;
          Sim.Engine.cancel e h
      | [] -> ()
  in
  for i = 1 to 400 do
    let d = boundary_deltas.(Random.State.int st (Array.length boundary_deltas)) in
    let h = Sim.Engine.schedule e ~delay:d (act 0 i) in
    if Random.State.int st 100 < 25 then Sim.Engine.cancel e h
    else handles := h :: !handles
  done;
  (* Segmented runs park the cursor ahead, then schedule "in the past". *)
  List.iter
    (fun u ->
      Sim.Engine.run e ~until:u;
      let h = Sim.Engine.schedule e ~delay:(Random.State.float st 2.0) (fire (-1)) in
      if Random.State.bool st then Sim.Engine.cancel e h)
    [ 0.001; 0.5; 3.0; 50.0; 1000.0; 2e6 ];
  Buffer.add_string log (Printf.sprintf "pending=%d;" (Sim.Engine.pending e));
  Buffer.contents log

let test_boundary_stress () =
  for seed = 0 to 49 do
    let w = boundary_replay `Wheel seed and h = boundary_replay `Heap seed in
    if not (String.equal w h) then
      Alcotest.failf "backend mismatch at seed %d\nwheel: %s\nheap : %s" seed
        (String.sub w 0 (Stdlib.min 400 (String.length w)))
        (String.sub h 0 (Stdlib.min 400 (String.length h)))
  done

let suite =
  [ Alcotest.test_case "mring trace byte-identical across backends" `Quick
      test_mring_trace_identical;
    Alcotest.test_case "chaos seed identical across backends" `Quick
      test_chaos_seed_identical;
    QCheck_alcotest.to_alcotest prop_backends_fire_identically;
    Alcotest.test_case "level-boundary and parked-cursor stress" `Quick
      test_boundary_stress ]
