(* Unit and property tests for the simulation substrate (lib/sim). *)

open Sim

let test_heap_order () =
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = List.init (Heap.length h) (fun _ -> Heap.pop h) in
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 5; 7; 8; 9 ] out

let test_heap_empty () =
  let h = Heap.create compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty heap") (fun () ->
      ignore (Heap.pop h))

let test_heap_clear () =
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check int) "length after clear" 0 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create compare in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop h) in
      out = List.sort compare xs)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:0.3 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:0.1 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:0.2 (fun () -> log := 2 :: !log));
  Engine.run_all e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 0.3 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run_all e;
  Alcotest.(check (list int)) "fifo at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:0.5 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run_all e;
  Alcotest.(check bool) "cancelled does not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> incr fired));
  Engine.run e ~until:2.0;
  Alcotest.(check int) "only events before horizon" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock moved to horizon" 2.0 (Engine.now e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:0.1 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:0.1 (fun () -> log := "inner" :: !log))));
  Engine.run_all e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let x = Rng.int r n in
      x >= 0 && x < n)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in bounds" ~count:500 QCheck.small_int (fun seed ->
      let r = Rng.create seed in
      let x = Rng.float r 3.5 in
      x >= 0.0 && x < 3.5)

let test_rng_bool_bias () =
  let r = Rng.create 11 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli(0.3) near 0.3" true (frac > 0.27 && frac < 0.33)

let test_rng_exponential_mean () =
  let r = Rng.create 13 in
  let n = 50000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean near 2.0" true (mean > 1.9 && mean < 2.1)

let test_zipf_skew () =
  let r = Rng.create 17 in
  let g = Rng.Zipf.create r ~n:100 ~s:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let i = Rng.Zipf.draw g in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 90" true (counts.(10) > counts.(90))

let test_rate_mbps () =
  let r = Stats.Rate.create () in
  (* 10 events of 125000 bytes over 1 second = 10 Mbps. *)
  for i = 0 to 9 do
    Stats.Rate.add r ~now:(0.1 *. float_of_int i) ~bytes:125_000
  done;
  Alcotest.(check (float 1e-6)) "mbps" 10.0 (Stats.Rate.mbps r ~from:0.0 ~till:1.0);
  Alcotest.(check (float 1e-6)) "events/s" 10.0 (Stats.Rate.events_per_sec r ~from:0.0 ~till:1.0)

let test_rate_series () =
  let r = Stats.Rate.create () in
  Stats.Rate.add r ~now:0.5 ~bytes:125_000;
  Stats.Rate.add r ~now:1.5 ~bytes:250_000;
  let s = Stats.Rate.series r ~window:1.0 ~till:2.0 in
  match s with
  | [ (_, a); (_, b) ] ->
      Alcotest.(check (float 1e-6)) "bucket 1" 1.0 a;
      Alcotest.(check (float 1e-6)) "bucket 2" 2.0 b
  | _ -> Alcotest.fail "expected two buckets"

let test_latency_percentiles () =
  let l = Stats.Latency.create () in
  for i = 1 to 100 do
    Stats.Latency.add l (float_of_int i)
  done;
  Alcotest.(check (float 1e-6)) "mean" 50.5 (Stats.Latency.mean l);
  Alcotest.(check bool) "p50 near middle" true (abs_float (Stats.Latency.percentile l 0.5 -. 50.0) <= 1.0);
  Alcotest.(check (float 1e-6)) "max" 100.0 (Stats.Latency.max l)

let test_latency_trimmed () =
  let l = Stats.Latency.create () in
  List.iter (Stats.Latency.add l) [ 1.0; 1.0; 1.0; 1.0; 100.0 ];
  let tm = Stats.Latency.trimmed_mean l ~drop_top:0.2 in
  Alcotest.(check (float 1e-6)) "outlier dropped" 1.0 tm

let test_busy_utilization () =
  let b = Stats.Busy.create () in
  Stats.Busy.add b 0.25;
  Stats.Busy.add b 0.25;
  Alcotest.(check (float 1e-6)) "50%" 50.0 (Stats.Busy.utilization b ~from:0.0 ~till:1.0)

let test_busy_windowed_utilization () =
  let b = Stats.Busy.create () in
  (* 0.6 s of work, all inside [0, 1). *)
  Stats.Busy.add ~at:0.2 b 0.3;
  Stats.Busy.add ~at:0.6 b 0.3;
  Alcotest.(check (float 1e-6)) "busy window" 60.0 (Stats.Busy.utilization b ~from:0.0 ~till:1.0);
  (* The old code divided lifetime busy time by the span, reporting 60%
     here instead of 0%. *)
  Alcotest.(check (float 1e-6)) "idle window" 0.0 (Stats.Busy.utilization b ~from:1.0 ~till:2.0);
  Stats.Busy.add ~at:2.2 b 0.5;
  Alcotest.(check (float 1e-6)) "later window" 50.0 (Stats.Busy.utilization b ~from:2.0 ~till:3.0);
  Alcotest.(check (float 1e-6)) "total still lifetime" 1.1 (Stats.Busy.total b)

let test_busy_interval_straddles_window () =
  let b = Stats.Busy.create () in
  (* [0.95, 1.05): half before the window edge, half after. *)
  Stats.Busy.add ~at:0.95 b 0.1;
  Alcotest.(check (float 1e-6)) "first half" 5.0 (Stats.Busy.utilization b ~from:0.0 ~till:1.0);
  Alcotest.(check (float 1e-6)) "second half" 5.0 (Stats.Busy.utilization b ~from:1.0 ~till:2.0)

let test_latency_edge_cases () =
  let l = Stats.Latency.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Stats.Latency.percentile l 0.5);
  Alcotest.(check (float 0.0)) "empty max" 0.0 (Stats.Latency.max l);
  Stats.Latency.add l 7.0;
  Alcotest.(check (float 1e-9)) "n=1 p0" 7.0 (Stats.Latency.percentile l 0.0);
  Alcotest.(check (float 1e-9)) "n=1 p1" 7.0 (Stats.Latency.percentile l 1.0);
  Stats.Latency.add l Float.nan;
  Alcotest.(check int) "NaN dropped from count" 1 (Stats.Latency.count l);
  Alcotest.(check int) "NaN drop recorded" 1 (Stats.Latency.dropped_nan l);
  Alcotest.(check (float 1e-9)) "mean unaffected by NaN" 7.0 (Stats.Latency.mean l);
  Stats.Latency.add l 1.0;
  Stats.Latency.add l 1.0;
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Stats.Latency.percentile l 0.0);
  Alcotest.(check (float 1e-9)) "p1 is max" 7.0 (Stats.Latency.percentile l 1.0);
  Alcotest.(check (float 1e-9)) "p out of range clamped" 7.0 (Stats.Latency.percentile l 1.5);
  Alcotest.(check (float 1e-9)) "NaN p treated as 0" 1.0 (Stats.Latency.percentile l Float.nan)

let test_latency_reservoir () =
  let l = Stats.Latency.create ~reservoir:128 () in
  for i = 1 to 100_000 do
    Stats.Latency.add l (float_of_int i)
  done;
  Alcotest.(check int) "count exact" 100_000 (Stats.Latency.count l);
  Alcotest.(check (float 1e-3)) "mean exact" 50000.5 (Stats.Latency.mean l);
  Alcotest.(check (float 1e-9)) "max exact" 100000.0 (Stats.Latency.max l);
  let p50 = Stats.Latency.percentile l 0.5 in
  Alcotest.(check bool) "p50 estimate in range" true (p50 > 25000.0 && p50 < 75000.0);
  Alcotest.(check bool) "reservoir bounds memory" true
    (Obj.reachable_words (Obj.repr l) < 4096)

let test_rate_bucket_boundary () =
  let r = Stats.Rate.create () in
  (* Exactly on a bucket edge: must land in the bucket starting at 0.5. *)
  Stats.Rate.add r ~now:0.5 ~bytes:1000;
  Alcotest.(check (float 1e-9)) "excluded before the edge" 0.0
    (Stats.Rate.mbps r ~from:0.0 ~till:0.5);
  Alcotest.(check (float 1e-6)) "included from the edge" 0.016
    (Stats.Rate.mbps r ~from:0.5 ~till:1.0);
  Alcotest.(check (float 1e-6)) "events prorated exactly" 2.0
    (Stats.Rate.events_per_sec r ~from:0.5 ~till:1.0)

let test_rate_bounded_memory () =
  let r = Stats.Rate.create () in
  (* 1M samples over 1000 s: far beyond the ring horizon. *)
  for i = 0 to 999_999 do
    Stats.Rate.add r ~now:(0.001 *. float_of_int i) ~bytes:100
  done;
  Alcotest.(check int) "lifetime totals exact" 1_000_000 (Stats.Rate.events r);
  Alcotest.(check int) "bytes exact" 100_000_000 (Stats.Rate.bytes r);
  (* Recent windows stay queryable after eviction of old buckets. *)
  Alcotest.(check (float 1e-6)) "recent window rate" 0.8
    (Stats.Rate.mbps r ~from:999.0 ~till:1000.0);
  Alcotest.(check bool) "memory is O(buckets), not O(samples)" true
    (Obj.reachable_words (Obj.repr r) < 50_000)

let test_heap_releases_popped () =
  let h = Heap.create (fun (a, _) (b, _) -> Stdlib.compare a b) in
  Heap.push h (0, Bytes.create 8);
  for i = 1 to 50 do
    Heap.push h (i, Bytes.create 100_000)
  done;
  for _ = 1 to 40 do
    ignore (Heap.pop h)
  done;
  (* 11 big elements remain (~138k words); stale slots would pin ~500k more. *)
  Alcotest.(check bool) "popped elements are collectable" true
    (Obj.reachable_words (Obj.repr h) < 200_000);
  for _ = 1 to 11 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check bool) "empty heap releases storage" true
    (Obj.reachable_words (Obj.repr h) < 100)

let test_engine_pending_cancel () =
  let e = Engine.create () in
  let h1 = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.cancel e h1;
  Alcotest.(check int) "cancel uncounts immediately" 1 (Engine.pending e);
  Engine.cancel e h1;
  Alcotest.(check int) "cancel idempotent" 1 (Engine.pending e);
  Engine.run e ~until:2.0;
  Alcotest.(check int) "still one pending after horizon" 1 (Engine.pending e)

(* The old loop counted (`incr fired`) before checking (`> max_events`),
   so max_events + 1 events fired before the guard tripped.  Exactly
   [max_events] may fire; one more live event must trip it. *)
let test_engine_budget_boundary () =
  List.iter
    (fun backend ->
      let e = Engine.create ~backend () in
      let fired = ref 0 in
      for i = 1 to 5 do
        ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
      done;
      Engine.run_all ~max_events:5 e;
      Alcotest.(check int) "exact budget fires all" 5 !fired;
      let e = Engine.create ~backend () in
      let fired = ref 0 in
      for i = 1 to 6 do
        ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
      done;
      Alcotest.check_raises "budget + 1 trips"
        (Failure "Engine.run_all: event budget exhausted") (fun () ->
          Engine.run_all ~max_events:5 e);
      Alcotest.(check int) "budget events fired before the trip" 5 !fired)
    [ `Wheel; `Heap ]

(* Cancelled records drain for free: they used to be charged against the
   run budget, making long failure-detector runs trip spuriously. *)
let test_engine_budget_ignores_cancelled () =
  List.iter
    (fun backend ->
      let e = Engine.create ~backend () in
      let fired = ref 0 in
      for i = 1 to 10 do
        let d = 0.1 *. float_of_int i in
        let h = Engine.schedule e ~delay:d (fun () -> ()) in
        ignore (Engine.schedule e ~delay:d (fun () -> incr fired));
        Engine.cancel e h
      done;
      Engine.run_all ~max_events:10 e;
      Alcotest.(check int) "live events all fired within budget" 10 !fired)
    [ `Wheel; `Heap ]

(* Cancel-without-fire workloads must not accumulate dead records: the
   wheel sweeps them once they are half the queue. *)
let test_engine_cancel_memory_bound () =
  let e = Engine.create ~backend:`Wheel () in
  for _ = 1 to 200_000 do
    let h = Engine.schedule e ~delay:1.0 (fun () -> ()) in
    Engine.cancel e h
  done;
  Alcotest.(check int) "no live events" 0 (Engine.pending e);
  Alcotest.(check bool) "cancelled records are swept" true
    (Obj.reachable_words (Obj.repr e) < 100_000)

(* A heap that ping-pongs between empty and one element must keep its
   backing storage: the old [pop] released it on every transient empty. *)
let test_heap_pingpong_capacity () =
  let h = Heap.create compare in
  for i = 1 to 64 do
    Heap.push h i
  done;
  for _ = 1 to 64 do
    ignore (Heap.pop h)
  done;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Heap.push h i;
    ignore (Heap.pop h)
  done;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check bool) "no allocation across transient empties" true (words < 1000.0)

(* [run ~until] can park the wheel cursor far ahead of the clock; a
   later schedule "in the past" relative to the cursor must still fire,
   and in time order. *)
let test_engine_past_schedule_after_jump () =
  List.iter
    (fun backend ->
      let e = Engine.create ~backend () in
      let log = ref [] in
      ignore (Engine.schedule e ~delay:100.0 (fun () -> log := 100 :: !log));
      Engine.run e ~until:2.0;
      ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 3 :: !log));
      Engine.run_all e;
      Alcotest.(check (list int)) "late schedule fires first" [ 3; 100 ] (List.rev !log))
    [ `Wheel; `Heap ]

let test_snapshot_json () =
  let r = Stats.Rate.create () in
  let l = Stats.Latency.create () in
  let b = Stats.Busy.create () in
  Stats.Rate.add r ~now:0.25 ~bytes:125_000;
  Stats.Latency.add l 0.004;
  Stats.Busy.add ~at:0.1 b 0.2;
  let s = Stats.Snapshot.make ~rate:r ~latency:l ~busy:b ~label:"t" ~from:0.0 ~till:1.0 () in
  Alcotest.(check (float 1e-6)) "snapshot mbps" 1.0 s.Stats.Snapshot.mbps;
  Alcotest.(check (float 1e-6)) "snapshot cpu" 20.0 s.Stats.Snapshot.cpu_pct;
  let j = Stats.Snapshot.to_json s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %s" needle) true
        (Astring_contains.contains j needle))
    [ {|"label":"t"|}; {|"events":1|}; {|"bytes":125000|}; {|"lat_count":1|}; {|"cpu_pct":20|} ]

let suite =
  [ Alcotest.test_case "heap: pops sorted" `Quick test_heap_order;
    Alcotest.test_case "heap: empty behaviour" `Quick test_heap_empty;
    Alcotest.test_case "heap: clear" `Quick test_heap_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "engine: time order" `Quick test_engine_order;
    Alcotest.test_case "engine: FIFO at equal times" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: run until horizon" `Quick test_engine_until;
    Alcotest.test_case "engine: nested scheduling" `Quick test_engine_nested_schedule;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_rng_int_bounds;
    QCheck_alcotest.to_alcotest prop_rng_float_bounds;
    Alcotest.test_case "rng: bernoulli bias" `Quick test_rng_bool_bias;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "stats: rate mbps" `Quick test_rate_mbps;
    Alcotest.test_case "stats: rate series" `Quick test_rate_series;
    Alcotest.test_case "stats: latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "stats: trimmed mean" `Quick test_latency_trimmed;
    Alcotest.test_case "stats: busy utilization" `Quick test_busy_utilization;
    Alcotest.test_case "stats: windowed busy utilization" `Quick test_busy_windowed_utilization;
    Alcotest.test_case "stats: busy interval straddles window" `Quick
      test_busy_interval_straddles_window;
    Alcotest.test_case "stats: latency edge cases" `Quick test_latency_edge_cases;
    Alcotest.test_case "stats: latency reservoir" `Quick test_latency_reservoir;
    Alcotest.test_case "stats: rate bucket boundary" `Quick test_rate_bucket_boundary;
    Alcotest.test_case "stats: rate bounded memory" `Quick test_rate_bounded_memory;
    Alcotest.test_case "heap: releases popped elements" `Quick test_heap_releases_popped;
    Alcotest.test_case "engine: pending tracks cancel" `Quick test_engine_pending_cancel;
    Alcotest.test_case "engine: budget boundary is exact" `Quick test_engine_budget_boundary;
    Alcotest.test_case "engine: budget ignores cancelled" `Quick
      test_engine_budget_ignores_cancelled;
    Alcotest.test_case "engine: cancelled records are swept" `Quick
      test_engine_cancel_memory_bound;
    Alcotest.test_case "heap: ping-pong keeps capacity" `Quick test_heap_pingpong_capacity;
    Alcotest.test_case "engine: past schedule after clock jump" `Quick
      test_engine_past_schedule_after_jump;
    Alcotest.test_case "stats: snapshot json" `Quick test_snapshot_json ]
