(* Tests for the simulated network (lib/net) and disk (lib/storage). *)

type Simnet.payload += Ping of int

let make_net ?config () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 1 in
  let net = Simnet.create ?config engine rng in
  (engine, net)

let no_jitter =
  { Simnet.default_config with latency_jitter = 0.0 }

let test_unicast_delivery () =
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  let got = ref [] in
  Simnet.set_handler b (fun m ->
      match m.payload with Ping i -> got := i :: !got | _ -> ());
  Simnet.send net ~src:a ~dst:b ~size:100 (Ping 1);
  Simnet.send net ~src:a ~dst:b ~size:100 (Ping 2);
  Sim.Engine.run_all engine;
  Alcotest.(check (list int)) "both delivered in order" [ 1; 2 ] (List.rev !got)

let test_unicast_latency () =
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  let arrival = ref 0.0 in
  Simnet.set_handler b (fun _ -> arrival := Sim.Engine.now engine);
  Simnet.send net ~src:a ~dst:b ~size:100 (Ping 0);
  Sim.Engine.run_all engine;
  (* Propagation is 50 us one way; CPU and serialisation add a little. *)
  Alcotest.(check bool) "arrives after latency" true (!arrival >= 5.0e-5);
  Alcotest.(check bool) "arrives quickly" true (!arrival < 3.0e-4)

let test_bandwidth_bound () =
  (* 1 Gbps link: pushing 125 MB takes about a second. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  let done_at = ref 0.0 in
  let received = ref 0 in
  let msg_size = 125_000 in
  let n_msgs = 1000 in
  Simnet.set_handler b (fun m ->
      received := !received + m.size;
      done_at := Sim.Engine.now engine);
  for _ = 1 to n_msgs do
    Simnet.send net ~src:a ~dst:b ~size:msg_size (Ping 0)
  done;
  Sim.Engine.run_all engine;
  Alcotest.(check int) "all bytes received" (msg_size * n_msgs) !received;
  let gbit = float_of_int (msg_size * n_msgs) *. 8.0 /. !done_at /. 1e9 in
  Alcotest.(check bool) "goodput below line rate" true (gbit < 1.0);
  Alcotest.(check bool) "goodput above half line rate" true (gbit > 0.5)

let test_mcast_fanout () =
  let engine, net = make_net ~config:no_jitter () in
  let ns = Simnet.add_node net "s" in
  let s = Simnet.add_proc net ns "s" in
  let g = Simnet.new_group net "g" in
  let hits = ref 0 in
  for i = 0 to 9 do
    let n = Simnet.add_node net (Printf.sprintf "r%d" i) in
    let p = Simnet.add_proc net n (Printf.sprintf "r%d" i) in
    Simnet.set_handler p (fun _ -> incr hits);
    Simnet.join g p
  done;
  Simnet.join g s;
  Simnet.mcast net ~src:s g ~size:1000 (Ping 0);
  Sim.Engine.run_all engine;
  (* Sender excluded by default. *)
  Alcotest.(check int) "all receivers got it" 10 !hits

let test_mcast_unavailable () =
  let cfg = { Simnet.default_config with multicast_available = false } in
  let _, net = make_net ~config:cfg () in
  let ns = Simnet.add_node net "s" in
  let s = Simnet.add_proc net ns "s" in
  let g = Simnet.new_group net "g" in
  Alcotest.check_raises "raises"
    (Failure "Simnet.mcast: ip-multicast unavailable in this deployment") (fun () ->
      Simnet.mcast net ~src:s g ~size:10 (Ping 0))

let test_udp_buffer_overflow () =
  (* A tiny receive buffer and a slow receiver must drop UDP packets. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  Simnet.set_rcvbuf b 10_000;
  let c = Simnet.costs_of b in
  c.recv_per_msg <- 1.0e-3 (* pathological slow consumer *);
  let got = ref 0 in
  Simnet.set_handler b (fun _ -> incr got);
  for _ = 1 to 100 do
    Simnet.udp net ~src:a ~dst:b ~size:5_000 (Ping 0)
  done;
  Sim.Engine.run_all engine;
  Alcotest.(check bool) "some delivered" true (!got > 0);
  Alcotest.(check bool) "some dropped" true (Simnet.drops b > 0);
  Alcotest.(check int) "conservation" 100 (!got + Simnet.drops b)

let test_tcp_no_loss_under_pressure () =
  (* Same pressure over the reliable transport: nothing may be lost. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  Simnet.set_rcvbuf b 10_000;
  let c = Simnet.costs_of b in
  c.recv_per_msg <- 1.0e-4;
  let got = ref 0 in
  Simnet.set_handler b (fun _ -> incr got);
  for _ = 1 to 100 do
    Simnet.send net ~src:a ~dst:b ~size:5_000 (Ping 0)
  done;
  Sim.Engine.run_all engine;
  Alcotest.(check int) "all delivered" 100 !got;
  Alcotest.(check int) "no drops" 0 (Simnet.drops b)

let test_kill_and_recover () =
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  let got = ref 0 in
  Simnet.set_handler b (fun _ -> incr got);
  Simnet.send net ~src:a ~dst:b ~size:10 (Ping 0);
  Sim.Engine.run_all engine;
  Simnet.kill net b;
  Simnet.send net ~src:a ~dst:b ~size:10 (Ping 1);
  Sim.Engine.run_all engine;
  Alcotest.(check int) "dead process gets nothing" 1 !got;
  Simnet.recover net b;
  Simnet.send net ~src:a ~dst:b ~size:10 (Ping 2);
  Sim.Engine.run_all engine;
  Alcotest.(check int) "recovered process receives again" 2 !got

let test_cpu_accounting () =
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" in
  let a = Simnet.add_proc net na "a" in
  Simnet.charge_cpu net a 0.5;
  Sim.Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "busy total" 0.5 (Sim.Stats.Busy.total (Simnet.cpu_busy na))

let test_exec_callback () =
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" in
  let a = Simnet.add_proc net na "a" in
  let at = ref 0.0 in
  Simnet.exec net a ~dur:0.25 (fun () -> at := Sim.Engine.now engine);
  Sim.Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "completion time" 0.25 !at

let test_slow_node_cpu_factor () =
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node ~cpu_factor:4.0 net "slow" in
  let a = Simnet.add_proc net na "slow" in
  let at = ref 0.0 in
  Simnet.exec net a ~dur:0.1 (fun () -> at := Sim.Engine.now engine);
  Sim.Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "4x slower" 0.4 !at

let test_wire_size () =
  let _, net = make_net () in
  (* One frame: size + one frame overhead. *)
  Alcotest.(check int) "small frame" (100 + 52) (Simnet.wire_size net 100);
  (* 8 KB crosses several MTU frames. *)
  Alcotest.(check bool) "8K has multiple frames" true (Simnet.wire_size net 8192 > 8192 + 52 * 4)

let test_mcast_loss_grows_with_senders () =
  (* Drive the switch near capacity from 1 vs 5 senders; more senders must
     lose packets at the same (or lower) aggregate rate — Fig. 3.3. *)
  let run n_senders =
    let engine, net = make_net ~config:no_jitter () in
    let g = Simnet.new_group net "g" in
    let senders =
      Array.init n_senders (fun i ->
          let n = Simnet.add_node net (Printf.sprintf "s%d" i) in
          Simnet.add_proc net n (Printf.sprintf "s%d" i))
    in
    for i = 0 to 13 do
      let n = Simnet.add_node net (Printf.sprintf "r%d" i) in
      let p = Simnet.add_proc net n (Printf.sprintf "r%d" i) in
      Simnet.join g p
    done;
    (* Aggregate 0.95 Gbps in 8 KB packets across senders. *)
    let pkt = 8192 in
    let agg_rate = 0.95e9 in
    let interval = float_of_int (pkt * 8) /. (agg_rate /. float_of_int n_senders) in
    Array.iteri
      (fun si s ->
        let stop =
          Simnet.every net ~period:interval (fun () ->
              Simnet.mcast net ~src:s g ~size:pkt (Ping si))
        in
        ignore (Sim.Engine.schedule engine ~delay:1.0 (fun () -> stop ())))
      senders;
    Sim.Engine.run engine ~until:1.2;
    let sent = Simnet.mcast_packets net in
    let dropped = Simnet.switch_drops net in
    float_of_int dropped /. float_of_int (Stdlib.max 1 (sent * 14))
  in
  let loss1 = run 1 and loss5 = run 5 in
  Alcotest.(check bool) "5 senders lose more than 1" true (loss5 > loss1)

let test_disk_sync_write_latency () =
  let engine = Sim.Engine.create () in
  let d = Storage.Disk.create engine "d" in
  let at = ref 0.0 in
  Storage.Disk.write_sync d ~bytes:(32 * 1024) (fun () -> at := Sim.Engine.now engine);
  Sim.Engine.run_all engine;
  (* 32 KiB at 270 Mbps is about 0.97 ms plus setup. *)
  Alcotest.(check bool) "durable after ~1ms" true (!at > 8.0e-4 && !at < 2.0e-3)

let test_disk_bandwidth_bound () =
  let engine = Sim.Engine.create () in
  let d = Storage.Disk.create engine "d" in
  let last = ref 0.0 in
  let n = 100 in
  for _ = 1 to n do
    Storage.Disk.write_sync d ~bytes:(32 * 1024) (fun () -> last := Sim.Engine.now engine)
  done;
  Sim.Engine.run_all engine;
  let mbps = float_of_int (n * 32 * 1024 * 8) /. !last /. 1e6 in
  Alcotest.(check bool) "sustained near 270 Mbps" true (mbps > 200.0 && mbps < 270.0)

let test_disk_rounds_up () =
  let engine = Sim.Engine.create () in
  let d = Storage.Disk.create engine "d" in
  Storage.Disk.write_async d ~bytes:1;
  Alcotest.(check int) "rounded to write unit" (32 * 1024) (Storage.Disk.written d)

let suite =
  [ Alcotest.test_case "unicast delivery + order" `Quick test_unicast_delivery;
    Alcotest.test_case "unicast latency" `Quick test_unicast_latency;
    Alcotest.test_case "bandwidth bound" `Quick test_bandwidth_bound;
    Alcotest.test_case "multicast fanout" `Quick test_mcast_fanout;
    Alcotest.test_case "multicast unavailable" `Quick test_mcast_unavailable;
    Alcotest.test_case "udp buffer overflow drops" `Quick test_udp_buffer_overflow;
    Alcotest.test_case "tcp reliable under pressure" `Quick test_tcp_no_loss_under_pressure;
    Alcotest.test_case "kill and recover" `Quick test_kill_and_recover;
    Alcotest.test_case "cpu accounting" `Quick test_cpu_accounting;
    Alcotest.test_case "exec callback timing" `Quick test_exec_callback;
    Alcotest.test_case "heterogeneous cpu factor" `Quick test_slow_node_cpu_factor;
    Alcotest.test_case "wire size framing" `Quick test_wire_size;
    Alcotest.test_case "multicast loss vs #senders" `Quick test_mcast_loss_grows_with_senders;
    Alcotest.test_case "disk sync write latency" `Quick test_disk_sync_write_latency;
    Alcotest.test_case "disk bandwidth bound" `Quick test_disk_bandwidth_bound;
    Alcotest.test_case "disk write unit rounding" `Quick test_disk_rounds_up ]

let test_tcp_fifo_under_backpressure () =
  (* Messages queued behind a full window must still arrive in order. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  Simnet.set_rcvbuf b 20_000;
  (Simnet.costs_of b).recv_per_msg <- 5.0e-4;
  let got = ref [] in
  Simnet.set_handler b (fun m ->
      match m.payload with Ping i -> got := i :: !got | _ -> ());
  for i = 1 to 50 do
    Simnet.send net ~src:a ~dst:b ~size:10_000 (Ping i)
  done;
  Sim.Engine.run_all engine;
  Alcotest.(check (list int)) "FIFO preserved through backpressure"
    (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let test_engine_event_budget () =
  let e = Sim.Engine.create () in
  let rec spin () = ignore (Sim.Engine.schedule e ~delay:0.0 spin) in
  spin ();
  Alcotest.check_raises "runaway loops are caught"
    (Failure "Engine.run: event budget exhausted") (fun () ->
      Sim.Engine.run ~max_events:1000 e ~until:1.0)

let test_charge_cpu_delays_later_messages () =
  (* Booked CPU work delays subsequent message handling on the same node. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  let served_at = ref 0.0 in
  Simnet.set_handler b (fun _ -> served_at := Sim.Engine.now engine);
  Simnet.charge_cpu net b 0.1;
  Simnet.send net ~src:a ~dst:b ~size:100 (Ping 1);
  Sim.Engine.run_all engine;
  Alcotest.(check bool) "handler waited for the busy CPU" true (!served_at >= 0.1)

let test_recover_resets_rcvbuf_accounting () =
  (* Deliveries accepted before a crash used to decrement the (reset)
     buffer accounting when their service completed after recovery,
     driving the counter negative and disabling overflow drops forever. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  Simnet.set_rcvbuf b 10_000;
  (Simnet.costs_of b).recv_per_msg <- 1.0e-2 (* buffered for 10ms each *);
  Simnet.set_handler b (fun _ -> ());
  Simnet.udp net ~src:a ~dst:b ~size:5_000 (Ping 0);
  Simnet.udp net ~src:a ~dst:b ~size:5_000 (Ping 1);
  (* Crash and recover while both packets still sit in the buffer. *)
  ignore
    (Simnet.after net 2.0e-3 (fun () ->
         Simnet.kill net b;
         Simnet.recover net b));
  Sim.Engine.run_all engine;
  Alcotest.(check int) "accounting back to zero" 0 (Simnet.rcvbuf_used b);
  (* The recovered buffer must still enforce its bound. *)
  let drops0 = Simnet.drops b in
  for _ = 1 to 100 do
    Simnet.udp net ~src:a ~dst:b ~size:5_000 (Ping 2)
  done;
  Sim.Engine.run_all engine;
  Alcotest.(check bool) "overflow drops still occur" true (Simnet.drops b > drops0);
  Alcotest.(check bool) "never negative" true (Simnet.rcvbuf_used b >= 0)

let test_kill_clears_crashed_senders_backlog () =
  (* TCP messages queued behind the receiver's window on the CRASHED
     sender's connections must die with the sender.  They used to stay
     queued and replay into the receiver as it drained its window —
     ghost traffic from a dead process. *)
  let engine, net = make_net ~config:no_jitter () in
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  let a = Simnet.add_proc net na "a" and b = Simnet.add_proc net nb "b" in
  Simnet.set_rcvbuf b 10_000;
  (Simnet.costs_of b).recv_per_msg <- 1.0e-3;
  let got = ref 0 in
  Simnet.set_handler b (fun _ -> incr got);
  for _ = 1 to 10 do
    Simnet.send net ~src:a ~dst:b ~size:5_000 (Ping 0)
  done;
  (* Two messages fit the window; the rest are backlogged when [a] dies. *)
  ignore (Simnet.after net 1.0e-4 (fun () -> Simnet.kill net a));
  Sim.Engine.run_all engine;
  Alcotest.(check bool) "backlogged messages are not replayed" true (!got < 10);
  let at_quiescence = !got in
  (* Nor may the stale backlog resurface when the sender recovers. *)
  Simnet.recover net a;
  Sim.Engine.run_all engine;
  Alcotest.(check int) "recovery does not resurrect the backlog" at_quiescence !got

let test_fig32_unicast_regression () =
  (* Mirrors bench/fig3.ml one_to_many `Unicast 2 and pins the throughput
     measured before the streaming-stats rewrite (481.645909 Mbps), so a
     change in Rate bucketing that shifts figure outputs by more than 1%
     fails here rather than silently skewing the reproduction. *)
  let engine = Sim.Engine.create () in
  let net = Simnet.create engine (Sim.Rng.create 7) in
  let sender_node = Simnet.add_node net "sender" in
  let sender = Simnet.add_proc net sender_node "sender" in
  let receivers =
    Array.init 2 (fun i ->
        let nd = Simnet.add_node net (Printf.sprintf "r%d" i) in
        Simnet.add_proc net nd (Printf.sprintf "r%d" i))
  in
  let group = Simnet.new_group net "g" in
  Array.iter (fun r -> Simnet.join group r) receivers;
  let pkt = 8192 in
  let stop =
    Simnet.every net ~period:(float_of_int (pkt * 8) /. 1.0e9) (fun () ->
        Array.iter
          (fun r -> Simnet.send net ~src:sender ~dst:r ~size:pkt (Ping 0))
          receivers)
  in
  Sim.Engine.run engine ~until:2.0;
  stop ();
  let thr = Sim.Stats.Rate.mbps (Simnet.recv_rate receivers.(0)) ~from:0.5 ~till:2.0 in
  let expected = 481.645909 in
  Alcotest.(check bool)
    (Printf.sprintf "fig3.2 unicast/2 throughput %.3f within 1%% of %.3f" thr expected)
    true
    (Float.abs (thr -. expected) /. expected < 0.01)

let suite =
  suite
  @ [ Alcotest.test_case "tcp FIFO under backpressure" `Quick
        test_tcp_fifo_under_backpressure;
      Alcotest.test_case "engine event budget guard" `Quick test_engine_event_budget;
      Alcotest.test_case "charge_cpu delays handlers" `Quick
        test_charge_cpu_delays_later_messages;
      Alcotest.test_case "recover resets rcvbuf accounting" `Quick
        test_recover_resets_rcvbuf_accounting;
      Alcotest.test_case "kill clears crashed sender's backlog" `Quick
        test_kill_clears_crashed_senders_backlog;
      Alcotest.test_case "fig3.2 unicast throughput regression" `Quick
        test_fig32_unicast_regression ]
