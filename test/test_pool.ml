(* Tests for the pooled message path (lib/net): record lifecycle
   (borrow / retain / release, generation stamps), pool-epoch safety
   across kill/recover, bounded backlog-ring memory, allocation-free
   steady state, and byte-identical behaviour between the pooled and
   boxed scheduling modes. *)

type Simnet.payload += Ping of int

let quiet = { Simnet.default_config with latency_jitter = 0.0 }

let make ?(config = quiet) ?(mode = `Pooled) ?(seed = 1) () =
  let engine = Sim.Engine.create () in
  let net = Simnet.create ~config ~mode engine (Sim.Rng.create seed) in
  (engine, net)

let pair net =
  let na = Simnet.add_node net "a" and nb = Simnet.add_node net "b" in
  (Simnet.add_proc net na "a", Simnet.add_proc net nb "b")

(* --- lifecycle: borrow, retain, release ------------------------------- *)

let test_borrow_reclaimed_after_handler () =
  let engine, net = make () in
  let a, b = pair net in
  let seen = ref 0 in
  Simnet.set_handler b (fun m ->
      incr seen;
      Alcotest.(check int) "borrowed rc is 1" 1 (Simnet.msg_refcount m));
  Simnet.send net ~src:a ~dst:b ~size:64 (Ping 1);
  Sim.Engine.run_all engine;
  Alcotest.(check int) "delivered" 1 !seen;
  Alcotest.(check int) "all records back on the freelist"
    (Simnet.pool_allocated net) (Simnet.pool_free net)

let test_retain_keeps_record_release_returns_it () =
  let engine, net = make () in
  let a, b = pair net in
  let kept = ref None in
  Simnet.set_handler b (fun m ->
      Simnet.retain net m;
      kept := Some m);
  Simnet.send net ~src:a ~dst:b ~size:64 (Ping 42);
  Sim.Engine.run_all engine;
  let m = Option.get !kept in
  (* The record outlives the handler: payload still readable. *)
  (match m.payload with
  | Ping i -> Alcotest.(check int) "payload intact after handler" 42 i
  | _ -> Alcotest.fail "payload clobbered");
  Alcotest.(check int) "retained record held out of the pool" 1
    (Simnet.pool_allocated net - Simnet.pool_free net);
  let gen = Simnet.msg_generation m in
  Simnet.release net m;
  Alcotest.(check int) "release returns it"
    (Simnet.pool_allocated net) (Simnet.pool_free net);
  Alcotest.(check bool) "generation bumped on reclaim" true
    (Simnet.msg_generation m <> gen)

let test_double_release_rejected () =
  let engine, net = make () in
  let a, b = pair net in
  let kept = ref None in
  Simnet.set_handler b (fun m ->
      Simnet.retain net m;
      kept := Some m);
  Simnet.send net ~src:a ~dst:b ~size:64 (Ping 0);
  Sim.Engine.run_all engine;
  let m = Option.get !kept in
  Simnet.release net m;
  Alcotest.check_raises "second release is a double free"
    (Invalid_argument "Simnet: message released twice") (fun () ->
      Simnet.release net m)

let test_generation_distinguishes_reuse () =
  let engine, net = make () in
  let a, b = pair net in
  (* Record the (record, generation) pair of the first delivery without
     retaining it; after the pool reuses the slot, the stale stamp no
     longer matches — exactly the check a consumer would use to detect
     a dangling borrow. *)
  let stale = ref None in
  Simnet.set_handler b (fun m ->
      if !stale = None then stale := Some (m, Simnet.msg_generation m));
  Simnet.send net ~src:a ~dst:b ~size:64 (Ping 1);
  Sim.Engine.run_all engine;
  let m, gen0 = Option.get !stale in
  (* Same single record gets reused for the next send. *)
  Simnet.send net ~src:a ~dst:b ~size:64 (Ping 2);
  Sim.Engine.run_all engine;
  Alcotest.(check int) "pool did not grow" 1 (Simnet.pool_allocated net);
  Alcotest.(check bool) "stale generation stamp voided" true
    (Simnet.msg_generation m <> gen0)

(* --- pool-epoch safety across kill/recover ---------------------------- *)

let test_pool_consistent_across_kill_recover () =
  let engine, net = make () in
  let a, b = pair net in
  let delivered = ref 0 in
  Simnet.set_handler b (fun _ -> incr delivered);
  for i = 1 to 50 do
    Simnet.send net ~src:a ~dst:b ~size:256 (Ping i)
  done;
  (* Kill the receiver while messages are in flight and parked on the
     connection, recover it, and keep sending: every record must come
     back to the freelist exactly once. *)
  ignore (Sim.Engine.at engine ~time:2.0e-4 (fun () -> Simnet.kill net b));
  ignore (Sim.Engine.at engine ~time:8.0e-4 (fun () -> Simnet.recover net b));
  ignore
    (Sim.Engine.at engine ~time:9.0e-4 (fun () ->
         for i = 1 to 20 do
           Simnet.send net ~src:a ~dst:b ~size:256 (Ping i)
         done));
  Sim.Engine.run_all engine;
  Alcotest.(check bool) "some messages were lost to the crash" true
    (!delivered < 70);
  Alcotest.(check bool) "some messages survived" true (!delivered > 0);
  Alcotest.(check int) "no leak, no double free"
    (Simnet.pool_allocated net) (Simnet.pool_free net)

let prop_random_lifecycle =
  (* Random interleaving of sends, kills and recoveries over three
     processes; at quiescence the freelist must hold every record the
     pool ever created (each terminal path reclaimed exactly once), and
     the generation stamps retained mid-run must all be voided. *)
  QCheck.Test.make ~name:"random send/kill/recover keeps the pool consistent"
    ~count:30
    QCheck.(pair small_int (list (int_bound 9)))
    (fun (seed, ops) ->
      let engine, net = make ~seed:(seed + 1) () in
      let na = Simnet.add_node net "a"
      and nb = Simnet.add_node net "b"
      and nc = Simnet.add_node net "c" in
      let procs =
        [| Simnet.add_proc net na "a"; Simnet.add_proc net nb "b";
           Simnet.add_proc net nc "c" |]
      in
      Array.iter (fun p -> Simnet.set_handler p (fun _ -> ())) procs;
      let t = ref 0.0 in
      List.iter
        (fun op ->
          t := !t +. 5.0e-5;
          let time = !t in
          match op with
          | 0 | 1 | 2 | 3 | 4 | 5 ->
              let src = procs.(op mod 3) and dst = procs.((op + 1) mod 3) in
              ignore
                (Sim.Engine.at engine ~time (fun () ->
                     Simnet.send net ~src ~dst ~size:(64 + (op * 100)) (Ping op)))
          | 6 | 7 ->
              ignore
                (Sim.Engine.at engine ~time (fun () ->
                     Simnet.kill net procs.(op - 6)))
          | _ ->
              ignore
                (Sim.Engine.at engine ~time (fun () ->
                     Simnet.recover net procs.(op - 8))))
        ops;
      Sim.Engine.run_all engine;
      Simnet.pool_allocated net = Simnet.pool_free net)

(* --- satellite 2: backlog ring stays bounded --------------------------- *)

let test_backlog_ring_memory_bounded () =
  let engine, net = make () in
  let a, b = pair net in
  Simnet.set_rcvbuf b 2048;
  Simnet.set_handler b (fun _ -> ());
  (* One fill/drain cycle deep enough to size the ring. *)
  let cycle n =
    for i = 1 to n do
      Simnet.send net ~src:a ~dst:b ~size:512 (Ping i)
    done;
    Sim.Engine.run_all engine
  in
  cycle 256;
  let baseline = Obj.reachable_words (Obj.repr net) in
  (* Many more cycles of the same depth: the ring and pool are already
     grown, so the network's whole object graph must not keep growing. *)
  for _ = 1 to 10 do
    cycle 256
  done;
  let after = Obj.reachable_words (Obj.repr net) in
  Alcotest.(check bool)
    (Printf.sprintf "backlog memory bounded (%d -> %d words)" baseline after)
    true
    (after <= baseline + 512)

(* --- satellite 4: allocation-free steady state, trace equivalence ------ *)

let test_steady_unicast_allocates_nothing () =
  let engine, net = make () in
  let a, b = pair net in
  let fires = ref 0 in
  Simnet.set_handler b (fun m ->
      incr fires;
      Simnet.send net ~src:b ~dst:a ~size:m.size m.payload);
  Simnet.set_handler a (fun m ->
      incr fires;
      Simnet.send net ~src:a ~dst:b ~size:m.size m.payload);
  Simnet.send net ~src:a ~dst:b ~size:512 (Ping 0);
  (* Warm up: pool, rings, wheel slots and stats buckets reach steady
     state. *)
  Sim.Engine.run engine ~until:0.1;
  let w0 = Gc.minor_words () in
  Sim.Engine.run engine ~until:0.2;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check bool) "the run made progress" true (!fires > 1000);
  Alcotest.(check (float 0.0)) "zero minor words in steady state" 0.0 words

let test_disabled_tracer_allocates_nothing () =
  let engine, net = make () in
  let a, b = pair net in
  let tr = Trace.create () in
  Trace.set_enabled tr false;
  Simnet.set_tracer net (Some tr);
  Simnet.set_handler b (fun m -> Simnet.send net ~src:b ~dst:a ~size:m.size m.payload);
  Simnet.set_handler a (fun m -> Simnet.send net ~src:a ~dst:b ~size:m.size m.payload);
  Simnet.send net ~src:a ~dst:b ~size:512 (Ping 0);
  Sim.Engine.run engine ~until:0.1;
  let w0 = Gc.minor_words () in
  Sim.Engine.run engine ~until:0.2;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.0)) "disabled tracer stays allocation-free" 0.0 words

(* A seeded run with a tracer attached, parameterized by mode; used to
   check the two scheduling disciplines are observationally identical. *)
let traced_run mode =
  let engine, net = make ~mode ~seed:77 () in
  let a, b = pair net in
  Simnet.set_rcvbuf b 4096;
  let tr = Trace.create () in
  Simnet.set_tracer net (Some tr);
  let fires = ref 0 in
  Simnet.set_handler b (fun m ->
      incr fires;
      if m.size < 2048 then Simnet.send net ~src:b ~dst:a ~size:(m.size * 2) m.payload);
  Simnet.set_handler a (fun m ->
      incr fires;
      Simnet.send net ~src:a ~dst:b ~size:512 m.payload);
  for i = 1 to 16 do
    Simnet.send net ~src:a ~dst:b ~size:(256 + (16 * i)) (Ping i)
  done;
  ignore (Sim.Engine.at engine ~time:2.0e-3 (fun () -> Simnet.kill net b));
  ignore (Sim.Engine.at engine ~time:4.0e-3 (fun () -> Simnet.recover net b));
  ignore
    (Sim.Engine.at engine ~time:4.5e-3 (fun () ->
         for i = 1 to 8 do
           Simnet.send net ~src:a ~dst:b ~size:512 (Ping i)
         done));
  Sim.Engine.run engine ~until:0.05;
  (!fires, Trace.to_chrome_json tr)

let test_modes_byte_identical_trace () =
  let fp, jp = traced_run `Pooled in
  let fb, jb = traced_run `Boxed in
  Alcotest.(check bool) "the run did something" true (fp > 10);
  Alcotest.(check int) "same deliveries in both modes" fp fb;
  Alcotest.(check bool) "trace is non-trivial" true (String.length jp > 1024);
  Alcotest.(check string) "byte-identical trace across modes" jp jb

let suite =
  [ Alcotest.test_case "handler borrow is reclaimed" `Quick
      test_borrow_reclaimed_after_handler;
    Alcotest.test_case "retain keeps, release returns" `Quick
      test_retain_keeps_record_release_returns_it;
    Alcotest.test_case "double release rejected" `Quick test_double_release_rejected;
    Alcotest.test_case "generation stamp voids reuse" `Quick
      test_generation_distinguishes_reuse;
    Alcotest.test_case "pool consistent across kill/recover" `Quick
      test_pool_consistent_across_kill_recover;
    QCheck_alcotest.to_alcotest prop_random_lifecycle;
    Alcotest.test_case "backlog ring memory bounded" `Quick
      test_backlog_ring_memory_bounded;
    Alcotest.test_case "steady unicast allocates nothing" `Quick
      test_steady_unicast_allocates_nothing;
    Alcotest.test_case "disabled tracer allocates nothing" `Quick
      test_disabled_tracer_allocates_nothing;
    Alcotest.test_case "pooled and boxed traces byte-identical" `Quick
      test_modes_byte_identical_trace ]
