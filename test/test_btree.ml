(* Tests for the B+-tree service substrate. *)

module B = Btree

let test_empty () =
  let t = B.create () in
  Alcotest.(check int) "size" 0 (B.size t);
  Alcotest.(check (option int)) "find" None (B.find t 5);
  Alcotest.(check (option int)) "min" None (B.min_key t);
  Alcotest.(check (list (pair int int))) "range" [] (B.range t ~lo:0 ~hi:100);
  B.check t

let test_insert_find () =
  let t = B.create ~order:4 () in
  for i = 1 to 100 do
    Alcotest.(check (option int)) "fresh insert" None (B.insert t i (i * 10))
  done;
  B.check t;
  Alcotest.(check int) "size" 100 (B.size t);
  for i = 1 to 100 do
    Alcotest.(check (option int)) "find" (Some (i * 10)) (B.find t i)
  done;
  Alcotest.(check (option int)) "overwrite returns old" (Some 50) (B.insert t 5 99);
  Alcotest.(check int) "size unchanged" 100 (B.size t);
  Alcotest.(check (option int)) "new value" (Some 99) (B.find t 5)

let test_delete () =
  let t = B.create ~order:4 () in
  for i = 1 to 200 do
    ignore (B.insert t i i)
  done;
  for i = 1 to 200 do
    if i mod 2 = 0 then
      Alcotest.(check (option int)) "delete present" (Some i) (B.delete t i)
  done;
  B.check t;
  Alcotest.(check int) "half left" 100 (B.size t);
  Alcotest.(check (option int)) "deleted gone" None (B.find t 2);
  Alcotest.(check (option int)) "delete absent" None (B.delete t 2);
  for i = 1 to 199 do
    if i mod 2 = 1 then Alcotest.(check (option int)) "odd kept" (Some i) (B.find t i)
  done

let test_delete_everything () =
  let t = B.create ~order:4 () in
  for i = 1 to 500 do
    ignore (B.insert t i i)
  done;
  for i = 500 downto 1 do
    ignore (B.delete t i)
  done;
  B.check t;
  Alcotest.(check int) "empty again" 0 (B.size t)

let test_range () =
  let t = B.create ~order:8 () in
  for i = 0 to 99 do
    ignore (B.insert t (i * 10) i)
  done;
  let r = B.range t ~lo:95 ~hi:155 in
  Alcotest.(check (list (pair int int))) "inclusive bounds" [ (100, 10); (110, 11); (120, 12); (130, 13); (140, 14); (150, 15) ] r;
  Alcotest.(check int) "range_count agrees" (List.length r) (B.range_count t ~lo:95 ~hi:155);
  Alcotest.(check int) "full range" 100 (B.range_count t ~lo:min_int ~hi:max_int);
  Alcotest.(check (list (pair int int))) "empty window" [] (B.range t ~lo:1 ~hi:9)

let test_min_max () =
  let t = B.create ~order:4 () in
  List.iter (fun k -> ignore (B.insert t k k)) [ 42; 7; 99; 13 ];
  Alcotest.(check (option int)) "min" (Some 7) (B.min_key t);
  Alcotest.(check (option int)) "max" (Some 99) (B.max_key t)

let test_populate () =
  let t = B.create () in
  B.populate t ~n:5000 ~key_range:1_000_000 ~seed:7;
  Alcotest.(check int) "exactly n distinct keys" 5000 (B.size t);
  B.check t

let prop_matches_reference =
  (* Random interleavings of insert/delete/overwrite against Stdlib.Map. *)
  QCheck.Test.make ~name:"btree: agrees with Map reference" ~count:120
    QCheck.(list (pair (int_range 0 200) (int_range 0 2)))
    (fun ops ->
      let t = B.create ~order:4 () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (k, op) ->
          match op with
          | 0 ->
              let prev = B.insert t k (k * 2) in
              let expect = Hashtbl.find_opt reference k in
              Hashtbl.replace reference k (k * 2);
              if prev <> expect then failwith "insert mismatch"
          | 1 ->
              let prev = B.delete t k in
              let expect = Hashtbl.find_opt reference k in
              Hashtbl.remove reference k;
              if prev <> expect then failwith "delete mismatch"
          | _ ->
              if B.find t k <> Hashtbl.find_opt reference k then failwith "find mismatch")
        ops;
      B.check t;
      B.size t = Hashtbl.length reference)

let prop_range_matches_reference =
  QCheck.Test.make ~name:"btree: range agrees with filtered reference" ~count:80
    QCheck.(triple (list (int_range 0 500)) (int_range 0 500) (int_range 0 500))
    (fun (keys, a, b) ->
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let t = B.create ~order:4 () in
      List.iter (fun k -> ignore (B.insert t k k)) keys;
      let expected =
        List.sort_uniq compare keys
        |> List.filter (fun k -> k >= lo && k <= hi)
        |> List.map (fun k -> (k, k))
      in
      B.range t ~lo ~hi = expected)

let prop_deterministic_replay =
  (* Two trees fed the same operation sequence are observationally equal —
     the property SMR correctness rests on. *)
  QCheck.Test.make ~name:"btree: deterministic replay" ~count:50
    QCheck.(list (pair (int_range 0 300) bool))
    (fun ops ->
      let a = B.create ~order:8 () and b = B.create ~order:8 () in
      List.iter
        (fun (k, ins) ->
          if ins then (
            ignore (B.insert a k k);
            ignore (B.insert b k k))
          else (
            ignore (B.delete a k);
            ignore (B.delete b k)))
        ops;
      B.range a ~lo:min_int ~hi:max_int = B.range b ~lo:min_int ~hi:max_int)

let suite =
  [ Alcotest.test_case "empty tree" `Quick test_empty;
    Alcotest.test_case "insert + find + overwrite" `Quick test_insert_find;
    Alcotest.test_case "delete with rebalancing" `Quick test_delete;
    Alcotest.test_case "delete everything" `Quick test_delete_everything;
    Alcotest.test_case "range queries" `Quick test_range;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "populate distinct" `Quick test_populate;
    QCheck_alcotest.to_alcotest prop_matches_reference;
    QCheck_alcotest.to_alcotest prop_range_matches_reference;
    QCheck_alcotest.to_alcotest prop_deterministic_replay ]

(* --- Keyset: range-edge audit + differential vs a naive set oracle ------- *)

module KS = B.Keyset
module IS = Set.Make (Int)

let set_of_ranges l =
  List.fold_left
    (fun acc (lo, hi) ->
      let acc = ref acc in
      if lo <= hi then
        for k = lo to hi do
          acc := IS.add k !acc
        done;
      !acc)
    IS.empty l

let test_keyset_edges () =
  let ks = KS.of_ranges in
  (* Range endpoints are inclusive: a shared endpoint is a conflict... *)
  Alcotest.(check bool) "shared endpoint overlaps" true
    (KS.overlaps (ks [ (1, 5) ]) (ks [ (5, 9) ]));
  (* ...adjacent ranges are not, but normalisation merges them. *)
  Alcotest.(check bool) "adjacent ranges disjoint" false
    (KS.overlaps (ks [ (1, 5) ]) (ks [ (6, 9) ]));
  Alcotest.(check (list (pair int int))) "adjacent ranges merge" [ (1, 9) ]
    (KS.ranges (ks [ (6, 9); (1, 5) ]));
  Alcotest.(check bool) "singleton self-overlap" true
    (KS.overlaps (KS.singleton 5) (ks [ (5, 5) ]));
  Alcotest.(check bool) "distinct singletons disjoint" false
    (KS.overlaps (KS.singleton 5) (KS.singleton 6));
  (* Inverted ranges are empty and dropped by normalisation. *)
  let empty = ks [ (4, 2) ] in
  Alcotest.(check bool) "inverted range is empty" true (KS.is_empty empty);
  Alcotest.(check bool) "empty overlaps nothing" false
    (KS.overlaps empty (ks [ (0, 100) ]));
  Alcotest.(check bool) "empty is subset of anything" true
    (KS.subset empty (KS.singleton 7));
  Alcotest.(check bool) "non-empty is not subset of empty" false
    (KS.subset (KS.singleton 7) empty);
  (* A gap in the cover defeats subset even when the hull covers. *)
  Alcotest.(check bool) "gap defeats subset" false
    (KS.subset (ks [ (1, 10) ]) (ks [ (1, 4); (6, 10) ]));
  Alcotest.(check bool) "exact cover across pieces" true
    (KS.subset (ks [ (1, 4); (6, 10) ]) (ks [ (1, 10) ]));
  Alcotest.(check bool) "full covers everything" true
    (KS.subset (ks [ (min_int, 0); (max_int, max_int) ]) KS.full)

let range_list =
  QCheck.(list_of_size Gen.(int_range 0 8) (pair (int_range 0 60) (int_range 0 60)))

let prop_keyset_overlaps_oracle =
  QCheck.Test.make ~name:"keyset: overlaps matches set oracle" ~count:300
    QCheck.(pair range_list range_list)
    (fun (la, lb) ->
      let sa = set_of_ranges la and sb = set_of_ranges lb in
      KS.overlaps (KS.of_ranges la) (KS.of_ranges lb)
      = not (IS.disjoint sa sb))

let prop_keyset_subset_oracle =
  QCheck.Test.make ~name:"keyset: subset matches set oracle" ~count:300
    QCheck.(pair range_list range_list)
    (fun (la, lb) ->
      let sa = set_of_ranges la and sb = set_of_ranges lb in
      KS.subset (KS.of_ranges la) (KS.of_ranges lb) = IS.subset sa sb)

let prop_keyset_normalised =
  (* of_ranges produces ascending, disjoint, non-adjacent ranges denoting
     exactly the oracle set. *)
  QCheck.Test.make ~name:"keyset: of_ranges normalises" ~count:300 range_list
    (fun l ->
      let rs = KS.ranges (KS.of_ranges l) in
      let s = set_of_ranges l in
      let rec well_formed = function
        | [] -> true
        | [ (lo, hi) ] -> lo <= hi
        | (lo, hi) :: ((lo', _) :: _ as rest) ->
            lo <= hi && hi + 1 < lo' && well_formed rest
      in
      well_formed rs && IS.equal s (set_of_ranges rs))

let suite =
  suite
  @ [ Alcotest.test_case "keyset range edges" `Quick test_keyset_edges;
      QCheck_alcotest.to_alcotest prop_keyset_overlaps_oracle;
      QCheck_alcotest.to_alcotest prop_keyset_subset_oracle;
      QCheck_alcotest.to_alcotest prop_keyset_normalised ]
